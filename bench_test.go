// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per experiment id — see DESIGN.md's per-experiment index),
// plus micro-benchmarks of the scanning substrates. The experiment
// benchmarks report virtual-time metrics (what the paper's tables show)
// alongside Go's wall-clock numbers.
//
// Run: go test -bench=. -benchmem
package main

import (
	"fmt"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/experiments"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/hive"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/workload"
)

// benchExperiment runs one full experiment per iteration and asserts it
// stays mismatch-free.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig2Techniques regenerates Figure 2 (file-hiding taxonomy).
func BenchmarkFig2Techniques(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3HiddenFiles regenerates Figure 3 (hidden-file detection
// for the 10-program corpus).
func BenchmarkFig3HiddenFiles(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4HiddenASEP regenerates Figure 4 (hidden ASEP hooks).
func BenchmarkFig4HiddenASEP(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5ProcTaxonomy regenerates Figure 5 (process-hiding
// taxonomy).
func BenchmarkFig5ProcTaxonomy(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6HiddenProcs regenerates Figure 6 (hidden processes and
// modules, including FU's advanced-mode requirement).
func BenchmarkFig6HiddenProcs(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkScanTimeByDisk regenerates the §2/§3/§4 scan-time tables
// across the 9-machine fleet.
func BenchmarkScanTimeByDisk(b *testing.B) { benchExperiment(b, "scantime") }

// BenchmarkOutsideFalsePositives regenerates the outside-the-box FP
// experiment including the CCM 7->2 ablation.
func BenchmarkOutsideFalsePositives(b *testing.B) { benchExperiment(b, "fp") }

// BenchmarkRegistryCorruptionFP regenerates the §3 corrupted
// AppInit_DLLs false positive and its export/delete/re-import fix.
func BenchmarkRegistryCorruptionFP(b *testing.B) { benchExperiment(b, "regfp") }

// BenchmarkProcScanAndDump regenerates the §4 process/module scan and
// crash-dump timing table.
func BenchmarkProcScanAndDump(b *testing.B) { benchExperiment(b, "procscan") }

// BenchmarkTargeting regenerates the §5 targeting + injection + AV
// dilemma table.
func BenchmarkTargeting(b *testing.B) { benchExperiment(b, "targeting") }

// BenchmarkDecoyAnomaly regenerates the §5 mass-hiding decoy table.
func BenchmarkDecoyAnomaly(b *testing.B) { benchExperiment(b, "decoy") }

// BenchmarkVMScan regenerates the §5 VM-based zero-FP outside scan.
func BenchmarkVMScan(b *testing.B) { benchExperiment(b, "vm") }

// BenchmarkLinuxRootkits regenerates the §5 Unix rootkit table.
func BenchmarkLinuxRootkits(b *testing.B) { benchExperiment(b, "linux") }

// BenchmarkHDLifecycle regenerates the §6 detect/disable/remove
// timeline.
func BenchmarkHDLifecycle(b *testing.B) { benchExperiment(b, "hdlifecycle") }

// BenchmarkCrossTimeComparison regenerates the §1 cross-view vs
// cross-time contrast.
func BenchmarkCrossTimeComparison(b *testing.B) { benchExperiment(b, "crosstime") }

// BenchmarkHookDetectComparison regenerates the §1 hook-detection
// baseline contrast.
func BenchmarkHookDetectComparison(b *testing.B) { benchExperiment(b, "hookdetect") }

// --- substrate micro-benchmarks -------------------------------------------------

func benchMachine(b *testing.B) *machine.Machine {
	b.Helper()
	p := workload.SmallProfile()
	p.Churn = nil
	m, err := workload.NewPaperMachine(p)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRawMFTScan measures the low-level file scanner (parse the
// device bytes, reconstruct every path).
func BenchmarkRawMFTScan(b *testing.B) {
	m := benchMachine(b)
	img := m.Disk.Device()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, _, err := ntfs.RawScan(img)
		if err != nil {
			b.Fatal(err)
		}
		if len(entries) == 0 {
			b.Fatal("no entries")
		}
	}
}

// BenchmarkHighFileScan measures the hooked Win32 recursive walk.
func BenchmarkHighFileScan(b *testing.B) {
	m := benchMachine(b)
	call := m.SystemCall()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := m.API.WalkTreeWin32(call, machine.Drive)
		if err != nil {
			b.Fatal(err)
		}
		if len(entries) == 0 {
			b.Fatal("no entries")
		}
	}
}

// BenchmarkHighFileScanHooked measures the same walk with Hacker
// Defender's detours installed — the interception overhead.
func BenchmarkHighFileScanHooked(b *testing.B) {
	m := benchMachine(b)
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		b.Fatal(err)
	}
	call := m.SystemCall()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.API.WalkTreeWin32(call, machine.Drive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHiveRawParse measures the low-level Registry scanner.
func BenchmarkHiveRawParse(b *testing.B) {
	m := benchMachine(b)
	h, ok := m.Reg.HiveAt(`HKLM\SOFTWARE`)
	if !ok {
		b.Fatal("no SOFTWARE hive")
	}
	img := h.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hive.Parse(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossViewFileDiff measures the diff engine itself on a
// realistic snapshot pair.
func BenchmarkCrossViewFileDiff(b *testing.B) {
	m := benchMachine(b)
	if err := ghostware.NewVanquish().Install(m); err != nil {
		b.Fatal(err)
	}
	high, err := core.ScanFilesHigh(m, m.SystemCall())
	if err != nil {
		b.Fatal(err)
	}
	low, err := core.ScanFilesLow(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Diff(high, low, core.DiffOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Hidden) != 3 {
			b.Fatalf("hidden = %d", len(r.Hidden))
		}
	}
}

// BenchmarkProcessLowScan measures the kernel-structure traversals.
func BenchmarkProcessLowScan(b *testing.B) {
	m := benchMachine(b)
	for i := 0; i < 30; i++ {
		if _, err := m.StartProcess("svc.exe", `C:\svc.exe`); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("active-process-list", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Kern.Processes(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cid-table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Kern.ProcessesAdvanced(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMachineBuild measures full machine construction+population
// (the per-experiment fixed cost).
func BenchmarkMachineBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := workload.SmallProfile()
		p.Churn = nil
		if _, err := workload.NewPaperMachine(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- incremental scanning & fleet scheduler benchmarks ---------------------

// BenchmarkInsideSweep measures one full inside-the-box detection sweep
// (all four resource types, advanced mode), cold vs warm. Cold drops the
// generation-tracked cache every iteration, so every sweep reparses the
// full MFT image and every hive; warm keeps it, so repeat sweeps of the
// unchanged disk charge only generation verify passes. The warm/cold
// wall-clock ratio is the payoff of the incremental layer.
func BenchmarkInsideSweep(b *testing.B) {
	run := func(warm bool) func(*testing.B) {
		return func(b *testing.B) {
			// A real boot volume's MFT carries far more records than live
			// files (slack from deletions and preallocation), and the
			// truth-side scan must decode all of them. The default test
			// headroom (4096 records) understates that, so size the MFT
			// like a modest real disk.
			p := workload.SmallProfile()
			p.Churn = nil
			p.MFTHeadroom = 32768
			m, err := workload.NewPaperMachine(p)
			if err != nil {
				b.Fatal(err)
			}
			d := core.NewCachedDetector(m)
			d.Advanced = true
			if _, err := d.ScanAll(); err != nil { // prime the cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !warm {
					d.Cache.Invalidate()
				}
				reports, err := d.ScanAll()
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) != 4 {
					b.Fatalf("reports = %d", len(reports))
				}
			}
		}
	}
	b.Run("cold", run(false))
	b.Run("warm", run(true))
}

// BenchmarkScanAllParallel measures the intra-host fan-out: one cold
// inside sweep (cache dropped every iteration, so both truth sides
// reparse) at 1, 2, and 4 lanes. The lanes split the eight scan units
// across goroutines; the 4-lane wall-clock should come in well under
// half of sequential on a multi-core host.
func BenchmarkScanAllParallel(b *testing.B) {
	for _, lanes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("lanes-%d", lanes), func(b *testing.B) {
			p := workload.SmallProfile()
			p.Churn = nil
			p.MFTHeadroom = 32768
			m, err := workload.NewPaperMachine(p)
			if err != nil {
				b.Fatal(err)
			}
			d := core.NewCachedDetector(m)
			d.Advanced = true
			d.Parallelism = lanes
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Cache.Invalidate()
				reports, err := d.ScanAll()
				if err != nil {
					b.Fatal(err)
				}
				if len(reports) != 4 {
					b.Fatalf("reports = %d", len(reports))
				}
			}
		})
	}
}

// benchFleet builds n minimal hosts (tiny format headroom, no churn, no
// population) so fleet-scale scheduler benchmarks stay in memory.
func benchFleet(b *testing.B, n int) *fleet.Manager {
	b.Helper()
	mgr := fleet.NewManager()
	for i := 0; i < n; i++ {
		p := machine.DefaultProfile()
		p.DiskUsedGB = 0.05
		p.Churn = nil
		p.Seed = int64(i + 1)
		p.MFTHeadroom = 64
		p.ClusterHeadroom = 64
		m, err := machine.New(p)
		if err != nil {
			b.Fatal(err)
		}
		mgr.Add(fmt.Sprintf("host-%04d", i), m)
	}
	return mgr
}

// benchFleetSweep measures a bounded parallel inside sweep across n
// hosts. The scheduler runs a fixed worker pool regardless of n, and
// per-host caches make repeat sweeps incremental — together this is the
// fleet-scale hot path.
func benchFleetSweep(b *testing.B, hosts int) {
	mgr := benchFleet(b, hosts)
	mgr.ParallelInsideSweep() // prime host caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := mgr.ParallelInsideSweep()
		if len(results) != hosts {
			b.Fatalf("results = %d", len(results))
		}
		for _, r := range results {
			if r.Err != "" {
				b.Fatalf("%s: %s", r.Host, r.Err)
			}
		}
	}
}

// BenchmarkFleetInsideSweep100 sweeps a 100-host fleet.
func BenchmarkFleetInsideSweep100(b *testing.B) { benchFleetSweep(b, 100) }

// BenchmarkFleetInsideSweep1000 sweeps a 1000-host fleet.
func BenchmarkFleetInsideSweep1000(b *testing.B) { benchFleetSweep(b, 1000) }

// BenchmarkRaceWindow regenerates the scan-ordering race ablation.
func BenchmarkRaceWindow(b *testing.B) { benchExperiment(b, "race") }

// BenchmarkExtensions regenerates the extension-surface table (ADS,
// driver diff, AskStrider, Gatekeeper, deleted-file forensics).
func BenchmarkExtensions(b *testing.B) { benchExperiment(b, "extensions") }
