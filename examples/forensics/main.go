// Forensics tour: the detection surfaces beyond the paper's four
// resource types — alternate data streams, driver-list hiding,
// AskStrider's recent-change shortlist, and deleted-file recovery — on
// one machine attacked three different ways.
package main

import (
	"fmt"
	"log"
	"strings"

	"ghostbuster/internal/askstrider"
	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/workload"
)

func main() {
	m, err := workload.NewPaperMachine(workload.SmallProfile())
	if err != nil {
		log.Fatal(err)
	}
	since := m.Now()
	m.Clock.Advance(1)

	// Attack 1: payload tucked into alternate data streams of an
	// innocent file — no hook installed anywhere.
	if err := ghostware.NewADSGhost().Install(m); err != nil {
		log.Fatal(err)
	}
	// Attack 2: a rootkit that hides its driver from the driver list.
	if err := ghostware.NewDriverHider().Install(m); err != nil {
		log.Fatal(err)
	}
	// Attack 3: a dropper that deleted itself after running — but first
	// it started a (visible) worker process from a freshly written file.
	if err := m.DropFile(`C:\tmp\dropper.exe`, []byte("MZ installer")); err != nil {
		log.Fatal(err)
	}
	if err := m.DropFile(`C:\WINDOWS\system32\worker.exe`, []byte("MZ worker")); err != nil {
		log.Fatal(err)
	}
	if _, err := m.StartProcess("worker.exe", `C:\WINDOWS\system32\worker.exe`); err != nil {
		log.Fatal(err)
	}
	if err := m.RemoveFile(`C:\tmp\dropper.exe`); err != nil {
		log.Fatal(err)
	}

	d := core.NewDetector(m)

	fmt.Println("== file diff (catches the ADS payload and the hidden driver file) ==")
	files, err := d.ScanFiles()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range files.Hidden {
		kind := "file"
		if strings.Contains(f.ID[2:], ":") { // a colon past the drive prefix marks a stream
			kind = "ADS "
		}
		fmt.Printf("  HIDDEN %s %s\n", kind, f.Display)
	}

	fmt.Println("\n== driver diff (catches the driver-list filtering) ==")
	drivers, err := d.ScanDrivers()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range drivers.Hidden {
		fmt.Printf("  HIDDEN DRIVER %s\n", f.Display)
	}

	fmt.Println("\n== AskStrider (what changed lately?) ==")
	as, err := askstrider.Run(m, since)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range as.Recent {
		fmt.Printf("  recent %-8s %s\n", it.Kind, it.Display)
	}

	fmt.Println("\n== deleted-file forensics (what ran and erased itself?) ==")
	deleted, err := core.ScanDeletedFiles(m)
	if err != nil {
		log.Fatal(err)
	}
	for _, df := range deleted {
		fmt.Printf("  stale MFT record %d: %s (%d bytes)\n", df.Record, df.Name, df.Size)
	}

	if files.Infected() && drivers.Infected() && len(deleted) > 0 {
		fmt.Println("\nall three attacks left evidence; none survived the combined sweep")
	}
}
