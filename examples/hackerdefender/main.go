// The paper's §6 headline story, end to end: detect Hacker Defender —
// "the most popular Windows rootkit today" — within seconds via
// hidden-process detection, locate its hidden auto-start keys within a
// minute, delete the keys to disable it, reboot, and delete the
// now-visible files. Every step prints its virtual-time cost.
package main

import (
	"fmt"
	"log"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/workload"
)

func main() {
	m, err := workload.NewPaperMachine(workload.SmallProfile())
	if err != nil {
		log.Fatal(err)
	}
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine infected with Hacker Defender 1.0 (hxdef100.exe running, hidden)")

	d := core.NewDetector(m)

	// Step 1 — hidden-process detection ("within 5 seconds").
	sw := vtime.NewStopwatch(m.Clock)
	procReport, err := d.ScanProcesses()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[1] hidden-process scan: %s\n", vtime.String(sw.Elapsed()))
	for _, f := range procReport.Hidden {
		fmt.Printf("    HIDDEN PROCESS %s\n", f.Display)
	}
	if !procReport.Infected() {
		log.Fatal("no infection detected — something is wrong")
	}

	// Step 2 — locate the hidden ASEP hooks ("within one minute").
	sw = vtime.NewStopwatch(m.Clock)
	asepReport, err := d.ScanASEPs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[2] hidden-ASEP scan: %s\n", vtime.String(sw.Elapsed()))
	for _, f := range asepReport.Hidden {
		fmt.Printf("    HIDDEN HOOK %s\n", f.Display)
	}

	// Step 3 — delete the keys. GhostBuster knows the exact key paths
	// even though RegEdit cannot show them.
	for _, spec := range hd.HiddenASEPs() {
		if err := m.Reg.DeleteKeyTree(spec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[3] deleted %s", spec)
	}
	fmt.Println()

	// Step 4 — reboot: the service hooks are gone, so the rootkit never
	// starts and nothing is hidden anymore.
	if err := m.Reboot(); err != nil {
		log.Fatal(err)
	}
	after, err := d.ScanFiles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[4] rebooted; hidden-file diff now reports %d entries\n", len(after.Hidden))

	// Step 5 — the files are visible; delete them.
	files := hd.HiddenFiles()
	for i := len(files) - 1; i >= 0; i-- {
		if err := m.RemoveFile(files[i]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[5] deleted %s\n", files[i])
	}

	// Final verification.
	final, err := d.ScanAll()
	if err != nil {
		log.Fatal(err)
	}
	clean := true
	for _, r := range final {
		if r.Infected() {
			clean = false
		}
	}
	if clean {
		fmt.Println("\nmachine is clean; total virtual time", vtime.String(m.Clock.Now()))
	} else {
		fmt.Println("\nmachine still infected!")
	}
}
