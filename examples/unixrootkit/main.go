// Linux/Unix ghostware detection (§5): install the four Unix rootkits
// the paper experimented with — Darkside (FreeBSD LKM), Superkit and
// Synapsis (Linux LKM), and T0rnkit (trojanized ls) — and expose each
// with the ls-vs-clean-CD cross-view diff, daemon churn included.
package main

import (
	"fmt"
	"log"

	"ghostbuster/internal/unixfs"
)

func main() {
	cases := []struct {
		os      string
		install func(m *unixfs.Machine) (*unixfs.Rootkit, error)
	}{
		{"FreeBSD", unixfs.InstallDarkside},
		{"Linux", unixfs.InstallSuperkit},
		{"Linux", unixfs.InstallSynapsis},
		{"Linux", unixfs.InstallT0rnkit},
	}
	for _, tc := range cases {
		m, err := unixfs.NewMachine(tc.os)
		if err != nil {
			log.Fatal(err)
		}
		rk, err := tc.install(m)
		if err != nil {
			log.Fatal(err)
		}
		// The host has been running for a while: daemons write logs.
		if err := m.RunDaemons(45); err != nil {
			log.Fatal(err)
		}

		// Inside view: the (possibly trojaned) ls through the (possibly
		// hooked) getdents syscall.
		inside, err := m.LS("/")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s on %s (%s) ===\n", rk.Name, tc.os, rk.Kind)
		fmt.Printf("inside ls sees %d paths; rootkit files absent\n", len(inside))

		// Outside view: boot the clean CD, run the same scan, diff.
		hidden, fps, err := m.OutsideCheck()
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range hidden {
			fmt.Printf("  HIDDEN %s\n", p)
		}
		fmt.Printf("  %d hidden paths, %d benign daemon-churn false positives", len(hidden), len(fps))
		if len(fps) > 0 {
			fmt.Printf(" (%v)", fps)
		}
		fmt.Println()
		if len(hidden) != len(rk.HiddenPaths) {
			log.Fatalf("expected %d hidden paths, found %d", len(rk.HiddenPaths), len(hidden))
		}
	}
	fmt.Println("\nall four Unix rootkits detected; false positives within the paper's <= 4 bound")
}
