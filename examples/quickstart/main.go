// Quickstart: build a simulated Windows machine, infect it with Hacker
// Defender, and expose everything it hides with the four cross-view
// diffs — the whole GhostBuster API in ~60 lines.
package main

import (
	"fmt"
	"log"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/workload"
)

func main() {
	// A populated machine: NTFS volume, Registry hives, kernel, API stack.
	m, err := workload.NewPaperMachine(workload.SmallProfile())
	if err != nil {
		log.Fatal(err)
	}

	// Infect it. The rootkit drops files, sets (and hides) its service
	// hooks, starts its (hidden) process, and detours the query APIs.
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		log.Fatal(err)
	}

	// The lie: the Win32 view has no trace of it.
	call := m.SystemCall()
	entries, err := m.API.EnumDirWin32(call, `C:`)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(strings.ToLower(e.Name), "hxdef") {
			fmt.Println("!? rootkit visible:", e.Path)
		}
	}
	fmt.Printf("dir C:\\ shows %d entries, none of them the rootkit\n", len(entries))

	// The truth: cross-view diffs on all four resource types.
	d := core.NewDetector(m)
	d.Advanced = true // CID-table traversal, catches DKOM too
	reports, err := d.ScanAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("\n%s  (virtual scan time %s)\n", r.Summary(), vtime.String(r.Elapsed))
		for _, f := range r.Hidden {
			fmt.Printf("  HIDDEN %s\n", f.Display)
		}
	}
}
