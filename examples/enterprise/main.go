// Enterprise fleet scan: the paper's deployment story (§1: "corporate IT
// organizations can remotely deploy the solution on a large number of
// desktops without requiring user cooperation", and §5's RIS-based
// automation). This example builds the paper's 9-machine fleet, infects
// a few hosts with different ghostware, runs the inside-the-box
// detection remotely on every machine, and prints a fleet report.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/workload"
)

// fleetHost is one managed desktop.
type fleetHost struct {
	m        *machine.Machine
	profile  machine.Profile
	infected string // ground truth, unknown to the scanner
}

func main() {
	profiles := workload.PaperMachines()
	// Keep the demo snappy: scale populations down; the virtual-time
	// model still reflects each machine's size.
	infections := map[string]func() ghostware.Ghostware{
		"corp-2": func() ghostware.Ghostware { return ghostware.NewHackerDefender() },
		"home-1": func() ghostware.Ghostware { return ghostware.NewProBotSE() },
		"laptop": func() ghostware.Ghostware { return ghostware.NewUrbin() },
	}

	var fleet []*fleetHost
	for _, p := range profiles {
		p.FilesPerGB = 8
		p.RegNoiseKeys = 120
		m, err := workload.NewPaperMachine(p)
		if err != nil {
			log.Fatal(err)
		}
		host := &fleetHost{m: m, profile: p}
		if mk, ok := infections[p.Name]; ok {
			g := mk()
			if err := g.Install(m); err != nil {
				log.Fatal(err)
			}
			host.infected = g.Name()
		}
		fleet = append(fleet, host)
	}

	fmt.Println("fleet scan: inside-the-box GhostBuster on every managed desktop")
	fmt.Printf("%-12s %-22s %-10s %-34s %-12s %s\n",
		"host", "kind", "disk", "verdict", "scan time", "ground truth")
	correct := 0
	for _, h := range fleet {
		d := core.NewDetector(h.m)
		d.Advanced = true
		reports, err := d.ScanAll()
		if err != nil {
			log.Fatal(err)
		}
		var hidden []string
		var elapsed time.Duration
		for _, r := range reports {
			elapsed += r.Elapsed
			for _, f := range r.Hidden {
				hidden = append(hidden, f.Display)
			}
		}
		verdict := "clean"
		if len(hidden) > 0 {
			verdict = fmt.Sprintf("INFECTED (%d hidden)", len(hidden))
		}
		truth := h.infected
		if truth == "" {
			truth = "-"
		}
		if (len(hidden) > 0) == (h.infected != "") {
			correct++
		}
		fmt.Printf("%-12s %-22s %-10s %-34s %-12s %s\n",
			h.profile.Name, h.profile.Kind,
			fmt.Sprintf("%.0fGB", h.profile.DiskUsedGB),
			verdict, vtime.String(elapsed), truth)
		for _, path := range hidden {
			if len(path) > 0 {
				fmt.Printf("             -> %s\n", strings.ReplaceAll(path, "\x00", `\0`))
			}
		}
	}
	fmt.Printf("\n%d/%d hosts classified correctly; no false positives on clean hosts\n", correct, len(fleet))
}
