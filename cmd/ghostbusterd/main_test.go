package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke boots the daemon end to end on an ephemeral port, drives
// the API, and drains it via the stop channel — the same path a SIGTERM
// takes. Run under -race in CI (scripts/check.sh).
func TestRunSmoke(t *testing.T) {
	state := t.TempDir()
	addrc := make(chan string, 1)
	stop := make(chan struct{})
	exitc := make(chan int, 1)
	go func() {
		exitc <- run(
			[]string{"-state", state, "-listen", "127.0.0.1:0", "-fleet", "2", "-infect", "Urbin", "-poll", "0"},
			func(addr string) { addrc <- addr }, stop)
	}()

	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case code := <-exitc:
		t.Fatalf("daemon exited early with code %d", code)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/v1/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if code, body := get("/v1/hosts"); code != 200 || !strings.Contains(body, "host-001") {
		t.Fatalf("hosts: %d %s", code, body)
	}

	resp, err := http.Post(base+"/v1/sweeps", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	var info struct {
		Infected []string `json:"infected"`
		Digest   string   `json:"digest"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("sweep response: %v (%s)", err, body)
	}
	if len(info.Infected) != 1 || info.Infected[0] != "host-000" || info.Digest == "" {
		t.Fatalf("sweep did not flag the infected host: %s", body)
	}

	close(stop)
	select {
	case code := <-exitc:
		if code != exitClean {
			t.Fatalf("drain exit code %d, want %d", code, exitClean)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after stop")
	}
}

// TestRunFlagValidation: every bad invocation is exit 2 and starts
// nothing (no ready callback fires).
func TestRunFlagValidation(t *testing.T) {
	state := t.TempDir()
	cases := []struct {
		name string
		args []string
	}{
		{"missing state", []string{}},
		{"unknown flag", []string{"-state", state, "-bogus"}},
		{"shards one", []string{"-state", state, "-shards", "1"}},
		{"shards negative", []string{"-state", state, "-shards", "-3"}},
		{"negative poll", []string{"-state", state, "-poll", "-1s"}},
		{"negative fleet", []string{"-state", state, "-fleet", "-1"}},
		{"infect without fleet", []string{"-state", state, "-infect", "Urbin"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ready := func(addr string) { t.Errorf("daemon started with bad flags %v (addr %s)", tc.args, addr) }
			if code := run(tc.args, ready, nil); code != exitUsage {
				t.Errorf("args %v: exit %d, want %d", tc.args, code, exitUsage)
			}
		})
	}
}

// TestRunStartupFailureIsRuntimeError: valid flags, but the daemon
// cannot start (corrupt persisted profile) — exit 4, not 2 and not a
// silent fallback.
func TestRunStartupFailureIsRuntimeError(t *testing.T) {
	state := t.TempDir()
	stop := make(chan struct{})
	close(stop)
	if code := run([]string{"-state", state, "-listen", "127.0.0.1:0", "-poll", "0"}, nil, stop); code != exitClean {
		t.Fatalf("seed run exit %d", code)
	}
	corruptProfile(t, state)
	if code := run([]string{"-state", state, "-listen", "127.0.0.1:0", "-poll", "0"}, nil, stop); code != exitError {
		t.Fatalf("corrupt state exit %d, want %d", code, exitError)
	}
}

func corruptProfile(t *testing.T, state string) {
	t.Helper()
	path := filepath.Join(state, "profile.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
