// Command ghostbusterd is the resident GhostBuster monitoring daemon:
// the long-running form of the one-shot scanner. Hosts register (and
// deregister) at runtime, a priority scheduler re-sweeps them when
// their substrate generation counters move (incremental delta scans)
// and on the active profile's jittered interval, every sweep is
// journaled for crash resume, and results stream over a JSON/HTTP API
// while sweeps run.
//
// Usage:
//
//	ghostbusterd -state /var/lib/ghostbusterd
//	ghostbusterd -state dir -listen 127.0.0.1:8099 -profile paranoid -lock-profile
//	ghostbusterd -state dir -fleet 8 -infect "Hacker Defender 1.0" -poll 2s
//	ghostbusterd -state dir -shards 4            # sharded sweep backend
//	ghostbusterd -state dir -shards 4 -watchdog 2s   # wedged shards fail over mid-sweep
//	ghostbusterd -state dir -admit-queue 8 -request-deadline 30s
//
// The API (see internal/daemon): GET/POST /v1/hosts, DELETE
// /v1/hosts/{name}, GET/POST /v1/sweeps, GET /v1/results (SSE stream),
// GET/POST /v1/profile, GET /v1/healthz, GET /v1/readyz, GET
// /v1/metrics. POST /v1/sweeps is admission-gated: past the bounded
// queue it sheds with 429 + Retry-After; while draining it returns 503
// and /v1/readyz flips unready so load balancers route away.
//
// Exit codes:
//
//	0  clean shutdown (SIGINT/SIGTERM drained gracefully)
//	2  usage error — bad flags or flag values; nothing was started
//	4  runtime error — startup or serve failure
//
// SIGTERM/SIGINT drain gracefully: the scheduler stops, the in-flight
// sweep completes and seals its journal, streams close, then the
// process exits. kill -9 mid-sweep is the crash-resume path: the next
// start finds the unsealed journal and resumes it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ghostbuster/internal/daemon"
	"ghostbuster/internal/supervise"
)

const (
	exitClean = 0
	exitUsage = 2
	exitError = 4
)

func main() {
	os.Exit(run(os.Args[1:], nil, nil))
}

// run is the testable body: ready (if set) receives the bound listen
// address once the API is serving, and closing stop triggers the same
// graceful drain a SIGTERM does.
func run(args []string, ready func(addr string), stop <-chan struct{}) int {
	fs := flag.NewFlagSet("ghostbusterd", flag.ContinueOnError)
	stateDir := fs.String("state", "", "state directory: host registry, active profile, sweep journals (required)")
	listen := fs.String("listen", "127.0.0.1:8099", "HTTP API listen address")
	profName := fs.String("profile", "", "initial scan-policy profile (quick|standard|paranoid|forensic or imported); persisted state wins")
	profDir := fs.String("profile-dir", "", "directory of imported custom profiles")
	lockProfile := fs.Bool("lock-profile", false, "lock the active profile: no override or API call can weaken it (one-way)")
	shards := fs.Int("shards", 0, "route sweeps through this many consistent-hash shards (>= 2; 0 = single-node)")
	poll := fs.Duration("poll", 5*time.Second, "scheduler cadence; 0 disables the background loop (API-triggered sweeps only)")
	seed := fs.Int64("seed", 1, "scheduler jitter/shuffle seed")
	fleetN := fs.Int("fleet", 0, "pre-register this many deterministic simulated hosts (host-000...)")
	infect := fs.String("infect", "", "infect the first pre-registered host with the named ghostware")
	watchdog := fs.Duration("watchdog", 0, "sharded sweeps: declare a shard wedged after missing heartbeats for this long and fail its hosts over mid-sweep (0 disables)")
	jitterSeed := fs.Int64("jitter-seed", 0, "deterministic full jitter on retry backoff (0 keeps the doubling schedule)")
	admitQueue := fs.Int("admit-queue", 4, "sweep requests allowed to wait behind the running sweep; overflow gets 429 + Retry-After")
	reqDeadline := fs.Duration("request-deadline", 2*time.Minute, "max time a sweep request may wait in the admission queue (0 = client-controlled)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	// Flag validation is a usage error (exit 2): nothing has started,
	// no scan is owed a verdict.
	fail := func(format string, a ...any) int {
		fmt.Fprintf(os.Stderr, "ghostbusterd: %s\n", fmt.Sprintf(format, a...))
		return exitUsage
	}
	if *stateDir == "" {
		return fail("-state is required")
	}
	if *shards < 0 || *shards == 1 {
		return fail("-shards must be 0 (single-node) or >= 2, got %d", *shards)
	}
	if *poll < 0 {
		return fail("-poll must be >= 0, got %s", *poll)
	}
	if *fleetN < 0 {
		return fail("-fleet must be >= 0, got %d", *fleetN)
	}
	if *infect != "" && *fleetN == 0 {
		return fail("-infect requires -fleet")
	}
	if *watchdog < 0 {
		return fail("-watchdog must be >= 0, got %s", *watchdog)
	}
	if *watchdog > 0 && *shards == 0 {
		return fail("-watchdog requires -shards >= 2 (heartbeats supervise shard workers)")
	}
	if *admitQueue < 0 {
		return fail("-admit-queue must be >= 0, got %d", *admitQueue)
	}
	if *reqDeadline < 0 {
		return fail("-request-deadline must be >= 0, got %s", *reqDeadline)
	}

	logger := log.New(os.Stderr, "ghostbusterd: ", log.LstdFlags)
	cfg := daemon.Config{
		StateDir:          *stateDir,
		ProfileDir:        *profDir,
		Profile:           *profName,
		LockProfile:       *lockProfile,
		Shards:            *shards,
		Poll:              *poll,
		Seed:              *seed,
		BackoffJitterSeed: *jitterSeed,
		AdmitQueue:        *admitQueue,
		RequestDeadline:   *reqDeadline,
		Logf:              logger.Printf,
	}
	if *watchdog > 0 {
		// Three missed beacons on a one-third cadence: the shard gets the
		// full -watchdog window of silence before failover fires.
		cfg.Watchdog = supervise.Policy{Deadline: *watchdog / 3, Misses: 3}
	}
	d, err := daemon.New(cfg)
	if err != nil {
		logger.Print(err)
		return exitError
	}

	for i := 0; i < *fleetN; i++ {
		spec := daemon.HostSpec{Name: fmt.Sprintf("host-%03d", i), Seed: int64(i + 1)}
		if i == 0 {
			spec.Infect = *infect
		}
		err := d.Register(spec)
		if err != nil && !errors.Is(err, daemon.ErrDuplicateHost) {
			logger.Print(err)
			return exitError
		}
	}

	resumed, err := d.Start()
	for _, info := range resumed {
		logger.Printf("resumed sweep %d: %d hosts, %d infected, digest %.12s",
			info.ID, len(info.Hosts), len(info.Infected), info.Digest)
	}
	if err != nil {
		logger.Print(err)
		return exitError
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Print(err)
		return exitError
	}
	// Hardened server: slow-loris headers, stalled reads, and dead
	// keep-alives all get bounded. The SSE result stream clears its own
	// write deadline per-connection (see daemon.Handler), so WriteTimeout
	// can stay strict for every other route.
	srv := &http.Server{
		Handler:           d.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	p := d.ActiveProfile()
	logger.Printf("serving on %s (profile %s, locked=%v, shards=%d, poll=%s)",
		ln.Addr(), p.Name, p.Locked, *shards, *poll)
	if ready != nil {
		ready(ln.Addr().String())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		logger.Printf("received %s, draining...", s)
	case <-stop:
		logger.Print("stop requested, draining...")
	case err := <-serveErr:
		logger.Print(err)
		return exitError
	}

	// Graceful drain: finish the in-flight sweep and seal its journal,
	// close every subscriber stream, then stop accepting requests.
	d.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Print(err)
		return exitError
	}
	logger.Print("drained, exiting")
	return exitClean
}
