package main

import "testing"

func TestCleanOutsideScan(t *testing.T) {
	// A clean machine: churn is classified as noise, verdict is clean,
	// and run returns without hitting the infected exit path.
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownGhostwareErrors(t *testing.T) {
	if err := run([]string{"-infect", "NotReal"}); err == nil {
		t.Fatal("unknown ghostware should error")
	}
}
