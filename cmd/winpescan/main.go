// Command winpescan demonstrates the outside-the-box solution: it
// builds an (optionally infected) machine, takes the inside high-level
// scans, boots the simulated WinPE CD, scans the disk and hives from the
// clean environment, and prints the cross-view diff with the standard
// noise filters applied.
//
// Usage:
//
//	winpescan                        # clean machine: expect only churn noise
//	winpescan -infect "Vanquish"     # expect the rootkit's hidden files
//	winpescan -ccm                   # enable the CCM service (the 7-FP machine)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winpe"
	"ghostbuster/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "winpescan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("winpescan", flag.ContinueOnError)
	infect := fs.String("infect", "", "install the named ghostware before scanning")
	ccm := fs.Bool("ccm", false, "enable the CCM agent (reproduces the noisy machine)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := workload.SmallProfile()
	if *ccm {
		p.Churn = append(p.Churn, machine.ChurnCCM)
	}
	m, err := workload.NewPaperMachine(p)
	if err != nil {
		return err
	}
	if err := m.DropFile(`C:\Private\diary.txt`, []byte("user data")); err != nil {
		return err
	}
	if *infect != "" {
		var target ghostware.Ghostware
		for _, g := range ghostware.Fig3Corpus() {
			if strings.EqualFold(g.Name(), *infect) {
				target = g
			}
		}
		if target == nil {
			return fmt.Errorf("unknown ghostware %q (one of the Figure 3 corpus)", *infect)
		}
		fmt.Printf("installing %s...\n", target.Name())
		if err := target.Install(m); err != nil {
			return err
		}
	}

	fmt.Println("taking inside-the-box high-level scans...")
	fmt.Println("shutting down and booting the WinPE CD (1.5-3 minutes)...")
	fileReport, err := winpe.OutsideFileCheck(m, core.DiffOptions{})
	if err != nil {
		return err
	}
	asepReport, err := winpe.OutsideASEPCheck(m, core.DiffOptions{})
	if err != nil {
		return err
	}

	for _, r := range []*core.Report{fileReport, asepReport} {
		fmt.Println(r.Summary())
		fmt.Printf("           total virtual time: %s\n", vtime.String(r.Elapsed))
		for _, f := range r.Hidden {
			fmt.Printf("    HIDDEN %s\n", f.Display)
		}
		for _, f := range r.Noise {
			fmt.Printf("    noise  %s  [%s]\n", f.Display, f.Reason)
		}
	}
	if fileReport.Infected() || asepReport.Infected() {
		fmt.Println("\nVERDICT: machine is INFECTED")
		os.Exit(2)
	}
	fmt.Println("\nVERDICT: clean (reboot churn classified as noise)")
	return nil
}
