package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSmallRunEmitsDeterministicJSON(t *testing.T) {
	args := []string{"-seed", "3", "-n", "2"}
	a := capture(t, args)
	if !strings.Contains(a, `"cases": 2`) {
		t.Errorf("unexpected output: %s", a)
	}
	if b := capture(t, args); a != b {
		t.Errorf("same seed produced different JSON:\n%s\n%s", a, b)
	}
}

func TestReplayInlineSpec(t *testing.T) {
	out := capture(t, []string{"-replay", "ghostfuzz-v1 seed=7 atoms=ads/1/all"})
	if !strings.Contains(out, `"violations": null`) {
		t.Errorf("replay of a passing spec reported violations: %s", out)
	}
}

func TestSupervisedModeRunsMatrix(t *testing.T) {
	out := capture(t, []string{"-seed", "131", "-supervised", "1", "-shards", "3"})
	if !strings.Contains(out, `"variants": 5`) {
		t.Errorf("supervised mode did not run the 5-variant matrix: %s", out)
	}
	if strings.Contains(out, `"violations"`) {
		t.Errorf("supervised mode reported violations: %s", out)
	}
}

func TestReplayBadSpecErrors(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-replay", "not-a-spec"}, f); err == nil {
		t.Fatal("malformed spec should error")
	}
}
