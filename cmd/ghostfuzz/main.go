// Command ghostfuzz drives the adversarial ghostware fuzzer: it
// generates composed hiding techniques, installs each on a randomized
// machine, runs every detection configuration, and checks the
// differential oracle's invariants. Output is deterministic JSON — the
// same seed and count yield byte-identical bytes, run after run.
//
// Usage:
//
//	ghostfuzz -seed 1 -n 200                  # fuzz 200 cases
//	ghostfuzz -seed 1 -n 5000 -budget 2m      # bounded batch
//	ghostfuzz -seed 1 -n 50 -faulted          # chaos mode: seeded fault plans
//	ghostfuzz -replay 'ghostfuzz-v1 seed=7 atoms=ads/1/all'
//	ghostfuzz -replay @testdata/ghostfuzz/corpus/1a2b3c4d.spec
//	ghostfuzz -corpus testdata/ghostfuzz/corpus -n 500   # record shrunk repros
//	ghostfuzz -fleet 16 -lanes 4              # fuzz across a fleet sweep
//	ghostfuzz -crashed 5                      # kill/resume journaled sweeps
//	ghostfuzz -crashed 5 -shards 4            # sharded: kill K of N shard journals
//	ghostfuzz -supervised 3 -shards 4         # wedge/straggle sharded sweeps and check self-healing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ghostbuster/internal/ghostfuzz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ghostfuzz:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("ghostfuzz", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "base seed; case i derives from it deterministically")
	n := fs.Int("n", 100, "number of generated cases")
	budget := fs.Duration("budget", 0, "wall-clock budget; 0 means unlimited")
	faulted := fs.Bool("faulted", false, "chaos mode: layer seeded fault plans over each case and check degradation invariants")
	replay := fs.String("replay", "", "replay one spec line (or @file containing one) instead of generating")
	corpus := fs.String("corpus", "", "directory to write shrunk failure specs into")
	fleetN := fs.Int("fleet", 0, "fuzz across a fleet sweep with this many hosts instead of single cases")
	crashed := fs.Int("crashed", 0, "crash mode: kill this many seeded journaled sweeps at varied offsets and check each resume against the uninterrupted run")
	shards := fs.Int("shards", 0, "with -crashed: sweep each seeded fleet across this many journaled shards and kill subsets of shard journals instead of single-journal offsets")
	supervised := fs.Int("supervised", 0, "supervision chaos: run this many seeded sharded sweeps through the wedge/straggler/jitter matrix and check every healed run reproduces the uninterrupted digest")
	lanes := fs.Int("lanes", 1, "per-host scan lanes in fleet mode")
	workers := fs.Int("workers", 4, "fleet scheduler worker pool size")
	if err := fs.Parse(args); err != nil {
		return err
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")

	if *replay != "" {
		line := *replay
		if rest, ok := strings.CutPrefix(line, "@"); ok {
			data, err := os.ReadFile(rest)
			if err != nil {
				return err
			}
			line = firstSpecLine(string(data))
		}
		violations, err := ghostfuzz.Replay(line, nil)
		if err != nil {
			return err
		}
		if err := enc.Encode(map[string]any{"spec": line, "violations": violations}); err != nil {
			return err
		}
		if len(violations) > 0 {
			os.Exit(2)
		}
		return nil
	}

	if *supervised > 0 {
		sh := *shards
		if sh == 0 {
			sh = 3
		}
		var summaries []*ghostfuzz.CrashSummary
		violations := 0
		for i := 0; i < *supervised; i++ {
			s, err := ghostfuzz.RunSupervisionChaos(ghostfuzz.CaseSeed(*seed, i), sh)
			if err != nil {
				return err
			}
			summaries = append(summaries, s)
			violations += len(s.Violations)
		}
		if err := enc.Encode(summaries); err != nil {
			return err
		}
		if violations > 0 {
			os.Exit(2)
		}
		return nil
	}

	if *crashed > 0 {
		var summaries []*ghostfuzz.CrashSummary
		violations := 0
		for i := 0; i < *crashed; i++ {
			var s *ghostfuzz.CrashSummary
			var err error
			if *shards > 0 {
				s, err = ghostfuzz.RunShardCrashResume(ghostfuzz.CaseSeed(*seed, i), *shards)
			} else {
				s, err = ghostfuzz.RunCrashResume(ghostfuzz.CaseSeed(*seed, i))
			}
			if err != nil {
				return err
			}
			summaries = append(summaries, s)
			violations += len(s.Violations)
		}
		if err := enc.Encode(summaries); err != nil {
			return err
		}
		if violations > 0 {
			os.Exit(2)
		}
		return nil
	}

	if *fleetN > 0 {
		summary, err := ghostfuzz.RunFleet(ghostfuzz.FleetOptions{
			Seed: *seed, Hosts: *fleetN,
			Parallelism: *workers, HostParallelism: *lanes,
		})
		if err != nil {
			return err
		}
		if err := enc.Encode(summary); err != nil {
			return err
		}
		if len(summary.Violations) > 0 {
			os.Exit(2)
		}
		return nil
	}

	summary, err := ghostfuzz.Run(ghostfuzz.Options{
		Seed: *seed, N: *n, Budget: time.Duration(*budget), CorpusDir: *corpus,
		Faulted: *faulted,
	})
	if err != nil {
		return err
	}
	if err := enc.Encode(summary); err != nil {
		return err
	}
	if len(summary.Failures) > 0 {
		os.Exit(2)
	}
	return nil
}

// firstSpecLine returns the first non-comment, non-blank line of a
// corpus file.
func firstSpecLine(data string) string {
	for _, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			return line
		}
	}
	return ""
}
