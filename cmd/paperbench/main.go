// Command paperbench regenerates every table and figure from the
// paper's evaluation on simulated machines and prints them with
// paper-vs-measured notes.
//
// Usage:
//
//	paperbench            # run the full matrix
//	paperbench -list      # list experiment ids
//	paperbench -exp fig3  # run one experiment (figN or a named exp)
//	paperbench -sweepbench -out BENCH_sweep.json
//	                      # time cold-vs-warm inside sweeps and a fleet
//	                      # sweep; write machine-readable JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"ghostbuster/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	exp := fs.String("exp", "", "run a single experiment by id (e.g. fig3, scantime, linux)")
	fig := fs.Int("fig", 0, "run a single figure by number (2-6)")
	sweepbench := fs.Bool("sweepbench", false, "benchmark cold-vs-warm sweeps, the diff engines, and the fleet scheduler, write JSON")
	out := fs.String("out", "BENCH_sweep.json", "output path for -sweepbench")
	reps := fs.Int("reps", 5, "repetitions per -sweepbench timing")
	hosts := fs.Int("hosts", 100, "fleet size for the -sweepbench fleet timing")
	diffEntries := fs.Int("diffEntries", 1000000, "snapshot entry count for the -sweepbench diff microbench")
	fleetLarge := fs.Int("fleetLarge", 1000, "host count for the -sweepbench large-fleet timing")
	shardHosts := fs.Int("shardHosts", 1000, "host count for the -sweepbench 1→64 shard-scaling curve")
	megaHosts := fs.Int("megaHosts", 1000000, "host count for the -sweepbench bounded-memory mega sweep")
	benchgate := fs.Bool("benchgate", false, "compare -candidate against -baseline, fail on >tolerance regression")
	baseline := fs.String("baseline", "BENCH_sweep.json", "baseline JSON for -benchgate")
	candidate := fs.String("candidate", "", "candidate JSON for -benchgate (a fresh -sweepbench output)")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional regression for -benchgate")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: memprofile:", err)
			}
		}()
	}
	if *benchgate {
		if *candidate == "" {
			return fmt.Errorf("-benchgate needs -candidate (a fresh -sweepbench output)")
		}
		return runBenchGate(*baseline, *candidate, *tolerance)
	}
	if *sweepbench {
		return runSweepBench(*out, *reps, *hosts, *diffEntries, *fleetLarge, *shardHosts, *megaHosts)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Description)
		}
		return nil
	}
	id := *exp
	if *fig != 0 {
		id = fmt.Sprintf("fig%d", *fig)
	}
	if id != "" {
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		return runOne(e)
	}
	fmt.Println("Strider GhostBuster reproduction — full evaluation matrix")
	for _, e := range experiments.All() {
		if err := runOne(e); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

func runOne(e experiments.Experiment) error {
	table, err := e.Run()
	if err != nil {
		return err
	}
	table.Render(os.Stdout)
	return nil
}
