// Shard benchmark mode: the fleet-of-fleets scaling curve and the
// million-host bounded-memory sweep. Both run the real control plane —
// consistent-hash partitioning, per-shard streamed sweeps, merged
// digest chain — over a synthetic deterministic workload, so the gated
// metrics (virtual makespan, speedup, peak resident results, per-host
// allocations) are identical on any hardware for the same flags.
package main

import (
	"fmt"
	"runtime"
	"time"

	"ghostbuster/internal/fleet"
	"ghostbuster/internal/fleetshard"
	"ghostbuster/internal/supervise"
)

// shardScaleResult is one shard-count entry of the scaling curve.
type shardScaleResult struct {
	Shards int `json:"shards"`
	Hosts  int `json:"hosts"`
	WallNs int64 `json:"wallNs"`
	// MakespanNs is the sweep's virtual completion time: shards sweep in
	// parallel, so it is the max per-shard virtual cost — deterministic,
	// and the quantity the near-linear-scaling gate tracks.
	MakespanNs   int64   `json:"makespanNs"`
	Speedup      float64 `json:"speedup"` // 1-shard makespan / this makespan
	PeakResident int     `json:"peakResident"`
}

// megaSweepResult is the million-host section: completes a simulated
// sweep at full scale with the resident-results ceiling pinned.
type megaSweepResult struct {
	Hosts            int   `json:"hosts"`
	Shards           int   `json:"shards"`
	ShardParallelism int   `json:"shardParallelism"`
	ShardWorkers     int   `json:"shardWorkers"`
	WallNs           int64 `json:"wallNs"`
	VirtualNs        int64 `json:"virtualNs"`
	MakespanNs       int64 `json:"makespanNs"`
	// Speedup is VirtualNs/MakespanNs: how evenly the ring spread the
	// virtual work across shards (ideal = Shards).
	Speedup  float64 `json:"speedup"`
	Infected int     `json:"infected"`
	// PeakResident must stay at or under ResidentBound =
	// ShardParallelism × (ShardWorkers + 1): the bounded-memory
	// invariant, enforced here and gated against the baseline.
	PeakResident  int     `json:"peakResident"`
	ResidentBound int     `json:"residentBound"`
	AllocsPerHost float64 `json:"allocsPerHost"`
	MergedDigest  string  `json:"mergedDigest"`
}

// supervisionBenchResult is the idle-supervision section: the same
// sharded synthetic sweep run bare and with the full supervision layer
// armed (watchdog heartbeats, hedging, jittered backoff) but never
// firing. Supervision is wall-clock-only machinery, so the virtual
// makespan and merged digest must be identical; the gated metrics are
// that equality plus the supervised run's allocation cost.
type supervisionBenchResult struct {
	Hosts  int `json:"hosts"`
	Shards int `json:"shards"`
	// Wall times are informational (noisy on shared runners); the
	// overhead ratio is printed, never gated.
	BareWallNs       int64   `json:"bareWallNs"`
	SupervisedWallNs int64   `json:"supervisedWallNs"`
	WallOverhead     float64 `json:"wallOverhead"`
	// VirtualDeltaNs is supervised makespan minus bare makespan; idle
	// supervision must hold it at exactly zero.
	MakespanNs     int64   `json:"makespanNs"`
	VirtualDeltaNs int64   `json:"virtualDeltaNs"`
	DigestMatch    bool    `json:"digestMatch"`
	AllocsPerHost  float64 `json:"allocsPerHost"`
}

// runSupervisionBench measures what an armed-but-idle supervision layer
// costs: heartbeat beacons, watchdog timers, and the hedge tracker all
// run, but nothing wedges or straggles, so the sweep must be
// byte-identical to the bare run.
func runSupervisionBench(hosts int) (supervisionBenchResult, error) {
	const shards = 8
	res := supervisionBenchResult{Hosts: hosts, Shards: shards}
	bare := fleetshard.Config{
		Shards: shards, ShardParallelism: runtime.GOMAXPROCS(0),
		ScanHost: fleetshard.SyntheticScan(1),
	}
	src := fleetshard.SyntheticSource{N: hosts}
	run := func(cfg fleetshard.Config) (*fleetshard.Report, int64, uint64, error) {
		coord, err := fleetshard.New(cfg, src)
		if err != nil {
			return nil, 0, 0, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		rep, err := coord.Sweep()
		wall := int64(time.Since(start))
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, 0, 0, err
		}
		if rep.Scanned != hosts {
			return nil, 0, 0, fmt.Errorf("supervision bench scanned %d of %d hosts", rep.Scanned, hosts)
		}
		if err := rep.Verify(); err != nil {
			return nil, 0, 0, fmt.Errorf("supervision bench: %w", err)
		}
		return rep, wall, after.Mallocs - before.Mallocs, nil
	}

	bareRep, bareWall, _, err := run(bare)
	if err != nil {
		return res, err
	}
	sup := bare
	sup.Watchdog = supervise.Policy{Deadline: 30 * time.Second, Misses: 3}
	sup.Hedge = &fleet.HedgePolicy{Floor: time.Hour} // armed, never triggers
	sup.BackoffJitterSeed = 1
	supRep, supWall, supAllocs, err := run(sup)
	if err != nil {
		return res, err
	}

	res.BareWallNs, res.SupervisedWallNs = bareWall, supWall
	if bareWall > 0 {
		res.WallOverhead = float64(supWall) / float64(bareWall)
	}
	res.MakespanNs = supRep.MakespanNs
	res.VirtualDeltaNs = supRep.MakespanNs - bareRep.MakespanNs
	res.DigestMatch = supRep.MergedDigest == bareRep.MergedDigest
	res.AllocsPerHost = float64(supAllocs) / float64(hosts)
	if !res.DigestMatch {
		return res, fmt.Errorf("supervision bench: idle supervision changed the merged digest (%.12s vs %.12s)",
			supRep.MergedDigest, bareRep.MergedDigest)
	}
	return res, nil
}

// shardScaleCounts is the 1→64 curve the acceptance criteria name.
var shardScaleCounts = []int{1, 2, 4, 8, 16, 32, 64}

// runShardScaling sweeps the same synthetic fleet at each shard count
// and reports the virtual-makespan curve.
func runShardScaling(hosts int) ([]shardScaleResult, error) {
	src := fleetshard.SyntheticSource{N: hosts}
	scan := fleetshard.SyntheticScan(1)
	var out []shardScaleResult
	var base int64
	for _, shards := range shardScaleCounts {
		coord, err := fleetshard.New(fleetshard.Config{
			Shards: shards, ShardParallelism: runtime.GOMAXPROCS(0), ScanHost: scan,
		}, src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := coord.Sweep()
		if err != nil {
			return nil, err
		}
		wall := int64(time.Since(start))
		if rep.Scanned != hosts {
			return nil, fmt.Errorf("shard scaling: %d shards scanned %d of %d hosts", shards, rep.Scanned, hosts)
		}
		if err := rep.Verify(); err != nil {
			return nil, fmt.Errorf("shard scaling: %d shards: %w", shards, err)
		}
		r := shardScaleResult{
			Shards: shards, Hosts: hosts, WallNs: wall,
			MakespanNs: rep.MakespanNs, PeakResident: rep.PeakResident,
		}
		if base == 0 {
			base = rep.MakespanNs
		}
		if rep.MakespanNs > 0 {
			r.Speedup = float64(base) / float64(rep.MakespanNs)
		}
		out = append(out, r)
	}
	return out, nil
}

// runMegaSweep completes the full-scale simulated sweep and pins the
// bounded-memory invariant.
func runMegaSweep(hosts int) (megaSweepResult, error) {
	const shards, workers = 64, 1
	parallelism := runtime.GOMAXPROCS(0)
	res := megaSweepResult{
		Hosts: hosts, Shards: shards,
		ShardParallelism: parallelism, ShardWorkers: workers,
		ResidentBound: parallelism * (workers + 1),
	}
	coord, err := fleetshard.New(fleetshard.Config{
		Shards: shards, ShardParallelism: parallelism, ShardWorkers: workers,
		ScanHost: fleetshard.SyntheticScan(1),
	}, fleetshard.SyntheticSource{N: hosts})
	if err != nil {
		return res, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := coord.Sweep()
	res.WallNs = int64(time.Since(start))
	runtime.ReadMemStats(&after)
	if err != nil {
		return res, err
	}
	if rep.Scanned != hosts {
		return res, fmt.Errorf("mega sweep scanned %d of %d hosts", rep.Scanned, hosts)
	}
	if err := rep.Verify(); err != nil {
		return res, fmt.Errorf("mega sweep: %w", err)
	}
	res.VirtualNs = rep.VirtualNs
	res.MakespanNs = rep.MakespanNs
	if rep.MakespanNs > 0 {
		res.Speedup = float64(rep.VirtualNs) / float64(rep.MakespanNs)
	}
	res.Infected = rep.Infected
	res.PeakResident = rep.PeakResident
	res.MergedDigest = rep.MergedDigest
	res.AllocsPerHost = float64(after.Mallocs-before.Mallocs) / float64(hosts)
	if rep.PeakResident > res.ResidentBound {
		return res, fmt.Errorf("mega sweep: peak resident results %d exceeds the bounded-memory ceiling %d",
			rep.PeakResident, res.ResidentBound)
	}
	return res, nil
}
