// Benchgate mode: compare a freshly measured sweep benchmark against
// the committed baseline and fail on regression. Only deterministic or
// scale-invariant metrics are gated — virtual-time costs (identical on
// any hardware for the same flags) and per-entry allocation counts —
// never raw wall-clock, so the gate is stable on shared CI runners.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// loadSweepBench reads a BENCH_sweep.json produced by -sweepbench.
func loadSweepBench(path string) (*sweepBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res sweepBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &res, nil
}

// runBenchGate compares candidate against baseline, failing if any
// gated metric regresses by more than tol (a fraction, e.g. 0.15), or
// if a hard floor from the columnar-engine contract is violated:
// warm incremental diffs must stay allocation-free, and the columnar
// engine must hold at least a 2x allocation win and any speed win over
// the retired map engine.
func runBenchGate(baselinePath, candidatePath string, tol float64) error {
	base, err := loadSweepBench(baselinePath)
	if err != nil {
		return err
	}
	cand, err := loadSweepBench(candidatePath)
	if err != nil {
		return err
	}
	var fails []string
	// ceiling: candidate must not exceed base*(1+tol). base==0 means the
	// baseline predates the metric; nothing to gate.
	ceiling := func(name string, baseV, candV float64) {
		if baseV == 0 {
			return
		}
		limit := baseV * (1 + tol)
		ok := candV <= limit
		mark := "ok  "
		if !ok {
			mark = "FAIL"
			fails = append(fails, name)
		}
		fmt.Printf("  %s %-32s base %14.1f  cand %14.1f  (limit %14.1f)\n", mark, name, baseV, candV, limit)
	}
	floor := func(name string, minV, candV float64) {
		ok := candV >= minV
		mark := "ok  "
		if !ok {
			mark = "FAIL"
			fails = append(fails, name)
		}
		fmt.Printf("  %s %-32s floor %13.1f  cand %14.1f\n", mark, name, minV, candV)
	}

	fmt.Printf("benchgate: %s vs baseline %s (tolerance %.0f%%)\n", candidatePath, baselinePath, tol*100)
	ceiling("coldVirtualNs", float64(base.ColdVirtualNs), float64(cand.ColdVirtualNs))
	ceiling("warmVirtualNs", float64(base.WarmVirtualNs), float64(cand.WarmVirtualNs))
	for _, bp := range base.Parallel {
		for _, cp := range cand.Parallel {
			if cp.Lanes == bp.Lanes {
				ceiling(fmt.Sprintf("parallel[lanes=%d].coldVirtualNs", bp.Lanes),
					float64(bp.VirtualNs), float64(cp.VirtualNs))
			}
		}
	}
	ceiling("diff.colAllocsPerEntry", base.Diff.ColAllocsPerEntry, cand.Diff.ColAllocsPerEntry)
	if cand.Diff.Entries > 0 {
		ceiling("diff.warmDiffAllocsPerOp", 0.0001, cand.Diff.WarmDiffAllocsPerOp) // base 0.0001: "stay at zero"
		floor("diff.allocRatio (>= 2x)", 2, cand.Diff.AllocRatio)
		floor("diff.speedRatio (>= 1x)", 1, cand.Diff.SpeedRatio)
	}
	if base.FleetLarge.Hosts > 0 && cand.FleetLarge.Hosts > 0 {
		ceiling("fleetLarge.virtualPerHostNs",
			float64(base.FleetLarge.VirtualNs)/float64(base.FleetLarge.Hosts),
			float64(cand.FleetLarge.VirtualNs)/float64(cand.FleetLarge.Hosts))
	}
	// Shard scaling: virtual makespans are deterministic for a given
	// (hosts, shards), so a ceiling catches any scheduling or balance
	// regression; the speedup floor keeps the curve near-linear. Peak
	// resident counts depend on the runner's core count and are gated as
	// the machine-local invariant in the mega section instead.
	for _, bs := range base.ShardScaling {
		for _, cs := range cand.ShardScaling {
			if cs.Shards == bs.Shards && cs.Hosts == bs.Hosts {
				name := fmt.Sprintf("shardScaling[%d]", bs.Shards)
				ceiling(name+".makespanNs", float64(bs.MakespanNs), float64(cs.MakespanNs))
				if bs.Shards > 1 {
					floor(name+".speedup", bs.Speedup*(1-tol), cs.Speedup)
				}
			}
		}
	}
	if base.MegaSweep.Hosts > 0 && cand.MegaSweep.Hosts == base.MegaSweep.Hosts &&
		cand.MegaSweep.Shards == base.MegaSweep.Shards {
		ceiling("megaSweep.makespanNs", float64(base.MegaSweep.MakespanNs), float64(cand.MegaSweep.MakespanNs))
		ceiling("megaSweep.allocsPerHost", base.MegaSweep.AllocsPerHost, cand.MegaSweep.AllocsPerHost)
		floor("megaSweep.speedup", base.MegaSweep.Speedup*(1-tol), cand.MegaSweep.Speedup)
	}
	if cand.MegaSweep.Hosts > 0 {
		// The bounded-memory invariant, machine-local: the candidate's own
		// ceiling, not the baseline's (core counts differ across runners).
		floor("megaSweep.residentBound-peak", 0,
			float64(cand.MegaSweep.ResidentBound-cand.MegaSweep.PeakResident))
	}
	if cs := cand.Supervision; cs != nil {
		// Idle-supervision invariants are machine-local: armed watchdog +
		// hedging that never fire must not move virtual time or digests.
		digestMatch := 0.0
		if cs.DigestMatch {
			digestMatch = 1
		}
		floor("supervision.digestMatch", 1, digestMatch)
		delta := cs.VirtualDeltaNs
		if delta < 0 {
			delta = -delta
		}
		floor("supervision.zeroVirtualDelta", 0, float64(-delta))
		if bs := base.Supervision; bs != nil && bs.Hosts == cs.Hosts && bs.Shards == cs.Shards {
			ceiling("supervision.allocsPerHost", bs.AllocsPerHost, cs.AllocsPerHost)
			ceiling("supervision.makespanNs", float64(bs.MakespanNs), float64(cs.MakespanNs))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("benchgate: %d metric(s) regressed: %v", len(fails), fails)
	}
	fmt.Println("benchgate: PASS")
	return nil
}
