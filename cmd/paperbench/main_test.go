package main

import "testing"

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleExperimentByID(t *testing.T) {
	if err := run([]string{"-exp", "regfp"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleFigureByNumber(t *testing.T) {
	if err := run([]string{"-fig", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentErrors(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
