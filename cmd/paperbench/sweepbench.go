// Sweep benchmark mode: machine-readable wall-clock timings for the
// incremental-scanning layer (cold vs warm inside sweeps) and the
// bounded fleet scheduler, written as JSON for tooling to track.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/workload"
)

// sweepBenchResult is the schema of BENCH_sweep.json.
type sweepBenchResult struct {
	// Single-host inside sweep, wall-clock, averaged over Reps.
	Reps          int     `json:"reps"`
	MFTRecords    int     `json:"mftRecords"`
	ColdSweepNs   int64   `json:"coldSweepNs"`
	WarmSweepNs   int64   `json:"warmSweepNs"`
	WarmSpeedup   float64 `json:"warmSpeedup"`
	ColdVirtualNs int64   `json:"coldVirtualNs"`
	WarmVirtualNs int64   `json:"warmVirtualNs"`
	// Fleet warm sweeps through the bounded scheduler.
	FleetHosts       int   `json:"fleetHosts"`
	FleetParallelism int   `json:"fleetParallelism"`
	FleetSweepNs     int64 `json:"fleetSweepNs"`
	// Parallel intra-host sweeps: one cold sweep timed at each lane
	// count, with the wall-clock speedup over the 1-lane run. On a
	// single-core host the speedups hover around 1x; the lanes only pay
	// off with real hardware parallelism.
	Parallel []parallelSweepResult `json:"parallel"`
	// Diff microbench: retired map engine vs columnar merge-join.
	Diff diffBenchResult `json:"diff"`
	// Large fleet warm sweep through the bounded scheduler.
	FleetLarge fleetBenchResult `json:"fleetLarge"`
	// Shard-scaling curve: the same synthetic fleet swept at 1→64
	// shards through the fleet-of-fleets control plane; makespan and
	// speedup are virtual-time, deterministic on any hardware.
	ShardScaling []shardScaleResult `json:"shardScaling,omitempty"`
	// Million-host simulated sweep with the bounded-memory invariant
	// pinned (peak resident results ≤ shard parallelism × (workers+1)).
	MegaSweep megaSweepResult `json:"megaSweep,omitempty"`
	// Idle-supervision cost: watchdog + hedging armed but never firing
	// must leave the virtual makespan and digest untouched.
	Supervision *supervisionBenchResult `json:"supervision,omitempty"`
}

// fleetBenchResult times one warm fleet sweep; VirtualNs sums per-host
// virtual scan cost (Elapsed + RetryNs), which is deterministic for a
// given fleet build and is what benchgate compares per host.
type fleetBenchResult struct {
	Hosts     int   `json:"hosts"`
	SweepNs   int64 `json:"sweepNs"`
	VirtualNs int64 `json:"virtualNs"`
}

// parallelSweepResult is one lane-count entry of the parallel section.
type parallelSweepResult struct {
	Lanes       int     `json:"lanes"`
	ColdSweepNs int64   `json:"coldSweepNs"`
	VirtualNs   int64   `json:"coldVirtualNs"`
	Speedup     float64 `json:"speedup"` // vs the 1-lane cold sweep
}

// buildFleet assembles a fleet of small deterministic hosts and primes
// their per-host caches with one sweep.
func buildFleet(hosts int) (*fleet.Manager, error) {
	mgr := fleet.NewManager()
	for i := 0; i < hosts; i++ {
		fp := machine.DefaultProfile()
		fp.DiskUsedGB = 0.05
		fp.Churn = nil
		fp.Seed = int64(i + 1)
		fp.MFTHeadroom = 64
		fp.ClusterHeadroom = 64
		fm, err := machine.New(fp)
		if err != nil {
			return nil, err
		}
		mgr.Add(fmt.Sprintf("host-%04d", i), fm)
	}
	mgr.ParallelInsideSweep() // prime per-host caches
	return mgr, nil
}

// timeFleetSweep runs one warm sweep and reports wall time plus the
// summed per-host virtual cost.
func timeFleetSweep(mgr *fleet.Manager, hosts int) (fleetBenchResult, error) {
	res := fleetBenchResult{Hosts: hosts}
	start := time.Now()
	results := mgr.ParallelInsideSweep()
	res.SweepNs = int64(time.Since(start))
	for _, r := range results {
		if r.Err != "" {
			return res, fmt.Errorf("fleet sweep: %s: %s", r.Host, r.Err)
		}
		res.VirtualNs += int64(r.Elapsed + r.RetryNs)
	}
	return res, nil
}

// runSweepBench measures cold-vs-warm single-host sweeps, the diff
// microbench, and fleet sweeps, then writes the JSON report to out.
func runSweepBench(out string, reps, hosts, diffEntries, largeHosts, shardHosts, megaHosts int) error {
	p := workload.SmallProfile()
	p.Churn = nil
	p.MFTHeadroom = 32768 // size the MFT like a modest real disk
	m, err := workload.NewPaperMachine(p)
	if err != nil {
		return err
	}
	d := core.NewCachedDetector(m)
	d.Advanced = true
	if _, err := d.ScanAll(); err != nil { // prime cache + page warmup
		return err
	}

	res := sweepBenchResult{Reps: reps, MFTRecords: int(m.Disk.Geometry().MFTRecords)}
	sweep := func(cold bool) (wall, virtual int64, err error) {
		for i := 0; i < reps; i++ {
			if cold {
				d.Cache.Invalidate()
			}
			vStart := m.Clock.Now()
			wStart := time.Now()
			if _, err := d.ScanAll(); err != nil {
				return 0, 0, err
			}
			wall += int64(time.Since(wStart))
			virtual += int64(m.Clock.Now() - vStart)
		}
		return wall / int64(reps), virtual / int64(reps), nil
	}
	if res.ColdSweepNs, res.ColdVirtualNs, err = sweep(true); err != nil {
		return err
	}
	if res.WarmSweepNs, res.WarmVirtualNs, err = sweep(false); err != nil {
		return err
	}
	if res.WarmSweepNs > 0 {
		res.WarmSpeedup = float64(res.ColdSweepNs) / float64(res.WarmSweepNs)
	}

	for _, lanes := range []int{1, 2, 4} {
		d.Parallelism = lanes
		var wall, virtual int64
		for i := 0; i < reps; i++ {
			d.Cache.Invalidate()
			vStart := m.Clock.Now()
			wStart := time.Now()
			if _, err := d.ScanAll(); err != nil {
				return err
			}
			wall += int64(time.Since(wStart))
			virtual += int64(m.Clock.Now() - vStart)
		}
		pr := parallelSweepResult{Lanes: lanes, ColdSweepNs: wall / int64(reps), VirtualNs: virtual / int64(reps)}
		if base := res.Parallel; len(base) > 0 && pr.ColdSweepNs > 0 {
			pr.Speedup = float64(base[0].ColdSweepNs) / float64(pr.ColdSweepNs)
		} else {
			pr.Speedup = 1
		}
		res.Parallel = append(res.Parallel, pr)
	}
	d.Parallelism = 0

	if res.Diff, err = runDiffBench(diffEntries, diffEntries/10000+8); err != nil {
		return err
	}

	mgr, err := buildFleet(hosts)
	if err != nil {
		return err
	}
	res.FleetHosts = hosts
	res.FleetParallelism = runtime.GOMAXPROCS(0)
	fr, err := timeFleetSweep(mgr, hosts)
	if err != nil {
		return err
	}
	res.FleetSweepNs = fr.SweepNs

	largeMgr, err := buildFleet(largeHosts)
	if err != nil {
		return err
	}
	if res.FleetLarge, err = timeFleetSweep(largeMgr, largeHosts); err != nil {
		return err
	}

	if res.ShardScaling, err = runShardScaling(shardHosts); err != nil {
		return err
	}
	if res.MegaSweep, err = runMegaSweep(megaHosts); err != nil {
		return err
	}
	sup, err := runSupervisionBench(shardHosts)
	if err != nil {
		return err
	}
	res.Supervision = &sup

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("sweep bench: cold %v, warm %v (%.1fx), fleet(%d hosts) %v -> %s\n",
		time.Duration(res.ColdSweepNs), time.Duration(res.WarmSweepNs), res.WarmSpeedup,
		hosts, time.Duration(res.FleetSweepNs), out)
	for _, pr := range res.Parallel {
		fmt.Printf("  parallel lanes=%d: cold %v (%.2fx)\n", pr.Lanes, time.Duration(pr.ColdSweepNs), pr.Speedup)
	}
	fmt.Printf("  diff %d entries: map %v / %d allocs, columnar %v / %d allocs (%.1fx fewer, %.1fx faster), warm %.2f allocs/op\n",
		res.Diff.Entries,
		time.Duration(res.Diff.MapBuildNs+res.Diff.MapDiffNs), res.Diff.MapAllocs,
		time.Duration(res.Diff.ColBuildNs+res.Diff.ColDiffNs), res.Diff.ColAllocs,
		res.Diff.AllocRatio, res.Diff.SpeedRatio, res.Diff.WarmDiffAllocsPerOp)
	fmt.Printf("  fleet %d hosts: %v wall, %v virtual/host\n",
		res.FleetLarge.Hosts, time.Duration(res.FleetLarge.SweepNs),
		time.Duration(res.FleetLarge.VirtualNs/int64(max(res.FleetLarge.Hosts, 1))))
	for _, sr := range res.ShardScaling {
		fmt.Printf("  shards=%-3d makespan %12v  speedup %6.2fx  peak resident %d\n",
			sr.Shards, time.Duration(sr.MakespanNs), sr.Speedup, sr.PeakResident)
	}
	mg := res.MegaSweep
	fmt.Printf("  mega %d hosts / %d shards: %v wall, makespan %v (%.1fx over serial), %d infected, peak resident %d (bound %d), %.1f allocs/host\n",
		mg.Hosts, mg.Shards, time.Duration(mg.WallNs), time.Duration(mg.MakespanNs),
		mg.Speedup, mg.Infected, mg.PeakResident, mg.ResidentBound, mg.AllocsPerHost)
	if s := res.Supervision; s != nil {
		fmt.Printf("  supervision idle (%d hosts / %d shards): wall %.2fx, virtual delta %dns, digest match %v, %.1f allocs/host\n",
			s.Hosts, s.Shards, s.WallOverhead, s.VirtualDeltaNs, s.DigestMatch, s.AllocsPerHost)
	}
	return nil
}
