// Diff-engine microbenchmark: the retired map engine (fresh strings
// into map snapshots, map-probe diff) head-to-head against the columnar
// engine (interned build, merge-join diff) over a synthetic volume pair.
// Allocation counts come from runtime.MemStats on a quiesced heap, so
// they are stable enough to gate on per-entry.
package main

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"ghostbuster/internal/core"
)

// diffBenchResult is the "diff" section of BENCH_sweep.json.
type diffBenchResult struct {
	Entries int `json:"entries"`
	Hidden  int `json:"hidden"`
	// Map engine: build high+low map snapshots and diff by map probes.
	MapBuildNs int64  `json:"mapBuildNs"`
	MapDiffNs  int64  `json:"mapDiffNs"`
	MapAllocs  uint64 `json:"mapAllocs"`
	MapBytes   uint64 `json:"mapBytes"`
	// Columnar engine: interned builders and the sorted merge-join.
	ColBuildNs int64  `json:"colBuildNs"`
	ColDiffNs  int64  `json:"colDiffNs"`
	ColAllocs  uint64 `json:"colAllocs"`
	ColBytes   uint64 `json:"colBytes"`
	// Scale-invariant derived metrics — these are what benchgate compares.
	MapAllocsPerEntry float64 `json:"mapAllocsPerEntry"`
	ColAllocsPerEntry float64 `json:"colAllocsPerEntry"`
	AllocRatio        float64 `json:"allocRatio"` // map/columnar, build+diff
	SpeedRatio        float64 `json:"speedRatio"` // map/columnar ns, build+diff
	// Per-op allocations of a warm incremental diff (report storage
	// reused, both sides already interned). Pinned to zero.
	WarmDiffAllocsPerOp float64 `json:"warmDiffAllocsPerOp"`
}

// appendBenchRow formats the i-th synthetic file's ID, display, and
// detail into the three scratch buffers, mirroring how scanners build
// entry strings byte-wise before interning (or, in the retired map
// engine, before a fresh string conversion per entry).
func appendBenchRow(id, disp, det []byte, i int) (idB, dispB, detB []byte) {
	id = append(id[:0], `\WINDOWS\SYSTEM32\BENCH-`...)
	id = strconv.AppendInt(id, int64(i), 10)
	id = append(id, `.DLL`...)
	disp = append(disp[:0], `C:\Windows\System32\bench-`...)
	disp = strconv.AppendInt(disp, int64(i), 10)
	disp = append(disp, `.dll`...)
	det = append(det[:0], "size "...)
	det = strconv.AppendInt(det, int64(i*7%4096), 10)
	return id, disp, det
}

// measured runs f on a quiesced heap and returns its wall time and the
// allocations it performed. Single-goroutine by construction.
func measured(f func()) (ns int64, allocs, bytes uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	ns = int64(time.Since(start))
	runtime.ReadMemStats(&after)
	return ns, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// benchSink keeps benchmark results live so the compiler cannot elide
// the measured work.
var benchSink any

// runDiffBench compares the two diff engines over a pair of synthetic
// file snapshots: the low view holds every high entry plus `hidden`
// extras (the ghostware), so the diff finds exactly `hidden` findings.
func runDiffBench(entries, hidden int) (diffBenchResult, error) {
	res := diffBenchResult{Entries: entries, Hidden: hidden}
	opts := core.DiffOptions{}

	// --- map engine: fresh string per entry, map-backed snapshots.
	var mapHigh, mapLow *core.Snapshot
	buildMap := func(n int, view core.View) *core.Snapshot {
		s := &core.Snapshot{Kind: core.KindFiles, View: view, Entries: make(map[string]core.Entry, n)}
		var idB, dispB, detB []byte
		for i := 0; i < n; i++ {
			idB, dispB, detB = appendBenchRow(idB, dispB, detB, i)
			id := string(idB)
			s.Entries[id] = core.Entry{ID: id, Display: string(dispB), Detail: string(detB)}
		}
		return s
	}
	ns, allocs, bytes := measured(func() {
		mapHigh = buildMap(entries, core.ViewWin32Inside)
		mapLow = buildMap(entries+hidden, core.ViewRawMFT)
	})
	res.MapBuildNs, res.MapAllocs, res.MapBytes = ns, allocs, bytes
	var mapReport *core.Report
	ns, allocs, bytes = measured(func() {
		var err error
		if mapReport, err = core.Diff(mapHigh, mapLow, opts); err != nil {
			panic(err)
		}
	})
	res.MapDiffNs = ns
	res.MapAllocs += allocs
	res.MapBytes += bytes
	benchSink = mapReport
	if len(mapReport.Hidden) != hidden {
		return res, fmt.Errorf("map diff found %d hidden, want %d", len(mapReport.Hidden), hidden)
	}

	// --- columnar engine: one shared intern table; the low build's
	// common IDs are warm intern hits, exactly as in a real sweep where
	// both views describe the same volume. The table is pre-sized like
	// the map engine's pre-sized maps (~3 distinct strings per entry).
	tab := core.NewInternTableHint(3 * entries)
	var colHigh, colLow *core.ColumnarSnapshot
	buildCol := func(n int, view core.View) *core.ColumnarSnapshot {
		b := core.NewColumnarBuilder(tab, core.KindFiles, view, n)
		var idB, dispB, detB []byte
		for i := 0; i < n; i++ {
			idB, dispB, detB = appendBenchRow(idB, dispB, detB, i)
			b.AddRow(tab.InternBytes(idB), tab.InternStrBytes(dispB), tab.InternStrBytes(detB))
		}
		return b.Build()
	}
	ns, allocs, bytes = measured(func() {
		colHigh = buildCol(entries, core.ViewWin32Inside)
		colLow = buildCol(entries+hidden, core.ViewRawMFT)
	})
	res.ColBuildNs, res.ColAllocs, res.ColBytes = ns, allocs, bytes
	var colReport *core.Report
	ns, allocs, bytes = measured(func() {
		var err error
		if colReport, err = core.DiffColumnar(colHigh, colLow, opts); err != nil {
			panic(err)
		}
	})
	res.ColDiffNs = ns
	res.ColAllocs += allocs
	res.ColBytes += bytes
	benchSink = colReport
	if len(colReport.Hidden) != hidden {
		return res, fmt.Errorf("columnar diff found %d hidden, want %d", len(colReport.Hidden), hidden)
	}

	// --- warm incremental diff: unchanged volume, report reused.
	colLowClean := buildCol(entries, core.ViewRawMFT)
	warm := new(core.Report)
	if err := core.DiffColumnarInto(warm, colHigh, colLowClean, opts); err != nil {
		return res, err
	}
	const warmOps = 20
	_, allocs, _ = measured(func() {
		for i := 0; i < warmOps; i++ {
			if err := core.DiffColumnarInto(warm, colHigh, colLowClean, opts); err != nil {
				panic(err)
			}
		}
	})
	benchSink = warm
	res.WarmDiffAllocsPerOp = float64(allocs) / warmOps

	n := float64(entries)
	res.MapAllocsPerEntry = float64(res.MapAllocs) / n
	res.ColAllocsPerEntry = float64(res.ColAllocs) / n
	if res.ColAllocs > 0 {
		res.AllocRatio = float64(res.MapAllocs) / float64(res.ColAllocs)
	}
	colNs := res.ColBuildNs + res.ColDiffNs
	if colNs > 0 {
		res.SpeedRatio = float64(res.MapBuildNs+res.MapDiffNs) / float64(colNs)
	}
	return res, nil
}
