package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ghostbuster/internal/fleet"
)

func TestListGhostware(t *testing.T) {
	if code, err := run([]string{"-list-ghostware"}); err != nil || code != exitClean {
		t.Fatalf("code %d, err %v", code, err)
	}
}

func TestCleanMachineScan(t *testing.T) {
	if code, err := run([]string{"-scan", "procs"}); err != nil || code != exitClean {
		t.Fatalf("clean machine: code %d, err %v", code, err)
	}
}

func TestInfectedExitCode(t *testing.T) {
	code, err := run([]string{"-infect", "FU", "-scan", "procs", "-advanced"})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitFindings {
		t.Fatalf("infected machine exit = %d, want %d", code, exitFindings)
	}
}

func TestUnknownGhostwareErrors(t *testing.T) {
	if _, err := run([]string{"-infect", "NotARootkit"}); err == nil {
		t.Fatal("unknown ghostware should error")
	}
}

func TestUnknownScanKindErrors(t *testing.T) {
	if _, err := run([]string{"-scan", "bogus"}); err == nil {
		t.Fatal("unknown scan kind should error")
	}
}

func TestResumeRequiresJournal(t *testing.T) {
	if _, err := run([]string{"-fleet", "2", "-resume"}); err == nil {
		t.Fatal("-resume without -journal should error")
	}
}

// TestFleetSweepExitCodes: the documented contract — findings beat
// degradation, clean fleet is 0 — through the real CLI path.
func TestFleetSweepExitCodes(t *testing.T) {
	code, err := run([]string{"-fleet", "2"})
	if err != nil || code != exitClean {
		t.Fatalf("clean fleet: code %d, err %v", code, err)
	}
	code, err = run([]string{"-fleet", "2", "-infect", "Hacker Defender 1.0"})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitFindings {
		t.Fatalf("infected fleet exit = %d, want %d", code, exitFindings)
	}
}

// TestFleetJournalAndResume: a journaled sweep leaves a resumable
// journal; re-running with -resume replays it without error and agrees
// on the verdict.
func TestFleetJournalAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	code, err := run([]string{"-fleet", "3", "-journal", path, "-infect", "Hacker Defender 1.0"})
	if err != nil || code != exitFindings {
		t.Fatalf("journaled sweep: code %d, err %v", code, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	// Resuming a completed sweep replays every host and re-reports.
	code, err = run([]string{"-fleet", "3", "-journal", path, "-resume", "-infect", "Hacker Defender 1.0"})
	if err != nil || code != exitFindings {
		t.Fatalf("resume: code %d, err %v", code, err)
	}
}

func TestVerifyReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.gbj")
	report := filepath.Join(dir, "report.json")

	// Capture the JSON report by swapping stdout for a file.
	old := os.Stdout
	f, err := os.Create(report)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	code, err := run([]string{"-fleet", "2", "-journal", journal, "-json"})
	os.Stdout = old
	f.Close()
	if err != nil || code != exitClean {
		t.Fatalf("json sweep: code %d, err %v", code, err)
	}

	if code, err := run([]string{"-verify-report", report}); err != nil || code != exitClean {
		t.Fatalf("untouched report: code %d, err %v", code, err)
	}
	// Rewriting a verdict in the saved report must fail verification.
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep fleet.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	rep.Results[0].Infected = true
	tampered, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(report, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-verify-report", report}); err == nil {
		t.Fatal("tampered report verified")
	}
}

func TestCorpusIsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range catalogOrdered() {
		names[e.Name] = true
	}
	for _, want := range []string{
		"Urbin", "Mersting", "Vanquish", "Aphex", "Hacker Defender 1.0",
		"ProBot SE", "Hide Files 3.3", "Hide Folders XP", "Advanced Hide Folders",
		"File & Folder Protector", "Berbew", "FU",
		"Win32NameGhost", "RegNullGhost", "ADSGhost", "DriverHider", "Targeted", "Decoy",
	} {
		if !names[want] {
			t.Errorf("corpus missing %s", want)
		}
	}
}

// TestSupervisionFlags: -hedge runs a normal sweep (idle hedging is
// digest- and verdict-invisible), -watchdog composes with the sharded
// control plane, and -watchdog without shards is a usage error.
func TestSupervisionFlags(t *testing.T) {
	code, err := run([]string{"-fleet", "3", "-hedge", "500ms", "-infect", "Hacker Defender 1.0"})
	if err != nil || code != exitFindings {
		t.Fatalf("hedged fleet: code %d, err %v", code, err)
	}
	dir := t.TempDir()
	code, err = run([]string{"-fleet", "8", "-shards", "2", "-shard-journal-dir", dir,
		"-watchdog", "2s", "-hedge", "500ms", "-infect", "Hacker Defender 1.0"})
	if err != nil || code != exitFindings {
		t.Fatalf("supervised sharded fleet: code %d, err %v", code, err)
	}
	if code, err := run([]string{"-fleet", "3", "-watchdog", "1s"}); err == nil || code != exitUsage {
		t.Fatalf("-watchdog without shards: code %d, err %v", code, err)
	}
	if code, err := run([]string{"-fleet", "3", "-hedge", "-1s"}); err == nil || code != exitUsage {
		t.Fatalf("negative -hedge: code %d, err %v", code, err)
	}
}
