package main

import "testing"

func TestListGhostware(t *testing.T) {
	if err := run([]string{"-list-ghostware"}); err != nil {
		t.Fatal(err)
	}
}

func TestCleanMachineScan(t *testing.T) {
	// A clean machine never reaches the infected os.Exit path.
	if err := run([]string{"-scan", "procs"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownGhostwareErrors(t *testing.T) {
	if err := run([]string{"-infect", "NotARootkit"}); err == nil {
		t.Fatal("unknown ghostware should error")
	}
}

func TestUnknownScanKindErrors(t *testing.T) {
	if err := run([]string{"-scan", "bogus"}); err == nil {
		t.Fatal("unknown scan kind should error")
	}
}

func TestCorpusIsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range catalogOrdered() {
		names[e.Name] = true
	}
	for _, want := range []string{
		"Urbin", "Mersting", "Vanquish", "Aphex", "Hacker Defender 1.0",
		"ProBot SE", "Hide Files 3.3", "Hide Folders XP", "Advanced Hide Folders",
		"File & Folder Protector", "Berbew", "FU",
		"Win32NameGhost", "RegNullGhost", "ADSGhost", "DriverHider", "Targeted", "Decoy",
	} {
		if !names[want] {
			t.Errorf("corpus missing %s", want)
		}
	}
}
