// Command ghostbuster is the interactive face of the reproduction: it
// builds a simulated Windows machine, optionally infects it with any of
// the paper's ghostware corpus, and runs the inside-the-box GhostBuster
// scans, printing the cross-view diff report.
//
// Usage:
//
//	ghostbuster -list-ghostware
//	ghostbuster -infect "Hacker Defender 1.0" -scan all -advanced
//	ghostbuster -infect FU -scan procs            # shows the normal-mode miss
//	ghostbuster -infect FU -scan procs -advanced  # and the advanced-mode catch
//	ghostbuster -infect Vanquish -inject          # scan from inside every process
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/injection"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghostbuster:", err)
		os.Exit(1)
	}
}

// catalogOrdered lists every installable program: the paper's 12-sample
// corpus followed by the extension adversaries, all from the shared
// ghostware catalog.
func catalogOrdered() []ghostware.CatalogEntry {
	return append(ghostware.Catalog(), ghostware.Extensions()...)
}

func run(args []string) error {
	fs := flag.NewFlagSet("ghostbuster", flag.ContinueOnError)
	listGW := fs.Bool("list-ghostware", false, "list the installable ghostware corpus and exit")
	infect := fs.String("infect", "", "install the named ghostware before scanning")
	scan := fs.String("scan", "all", "what to scan: files|aseps|procs|mods|drivers|all")
	advanced := fs.Bool("advanced", false, "use the CID-table traversal for the process low-level scan (catches DKOM)")
	inject := fs.Bool("inject", false, "run the scans from inside every process (the §5 DLL-injection extension)")
	jsonOut := fs.Bool("json", false, "emit reports as JSON instead of text")
	verbose := fs.Bool("v", false, "print every finding, not just the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listGW {
		for _, e := range catalogOrdered() {
			fmt.Printf("  %-24s %-28s hides: %s\n", e.Name, e.Class, hideSummary(e.New()))
		}
		return nil
	}

	p := workload.SmallProfile()
	fmt.Printf("building machine %q (%s, %.0f GB used, %d MHz)...\n", p.Name, p.Kind, p.DiskUsedGB, p.CPUMHz)
	m, err := workload.NewPaperMachine(p)
	if err != nil {
		return err
	}
	// Content the commercial hiders protect, so every corpus entry works.
	for _, f := range []string{`C:\Private\diary.txt`, `C:\Shared\docs.txt`} {
		if err := m.DropFile(f, []byte("user data")); err != nil {
			return err
		}
	}

	if *infect != "" {
		e, ok := ghostware.Lookup(*infect)
		if !ok {
			return fmt.Errorf("unknown ghostware %q (try -list-ghostware)", *infect)
		}
		g := e.New()
		fmt.Printf("installing %s (%s)...\n", g.Name(), g.Class())
		if err := g.Install(m); err != nil {
			return err
		}
		if e.Arm != nil {
			if err := e.Arm(m, g); err != nil {
				return err
			}
			fmt.Printf("armed %s (post-install step)\n", g.Name())
		}
	}

	if *inject {
		return runInjected(m, *verbose)
	}
	return runPlain(m, *scan, *advanced, *verbose, *jsonOut)
}

func runPlain(m *machine.Machine, scan string, advanced, verbose, jsonOut bool) error {
	d := core.NewDetector(m)
	d.Advanced = advanced
	var reports []*core.Report
	runScan := func(name string, f func() (*core.Report, error)) error {
		r, err := f()
		if err != nil {
			return fmt.Errorf("%s scan: %w", name, err)
		}
		reports = append(reports, r)
		return nil
	}
	switch scan {
	case "files":
		if err := runScan("file", d.ScanFiles); err != nil {
			return err
		}
	case "aseps":
		if err := runScan("ASEP", d.ScanASEPs); err != nil {
			return err
		}
	case "procs":
		if err := runScan("process", d.ScanProcesses); err != nil {
			return err
		}
	case "mods":
		if err := runScan("module", d.ScanModules); err != nil {
			return err
		}
	case "drivers":
		if err := runScan("driver", d.ScanDrivers); err != nil {
			return err
		}
	case "all":
		all, err := d.ScanAll()
		if err != nil {
			return err
		}
		reports = all
		if err := runScan("driver", d.ScanDrivers); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scan kind %q", scan)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
		for _, r := range reports {
			if r.Infected() {
				os.Exit(2)
			}
		}
		return nil
	}
	infected := false
	for _, r := range reports {
		fmt.Println(r.Summary())
		fmt.Printf("           scan time: %s\n", vtime.String(r.Elapsed))
		if r.MassHiding != nil {
			fmt.Println("           " + r.MassHiding.String())
		}
		if verbose || len(r.Hidden) <= 10 {
			for _, f := range r.Hidden {
				fmt.Printf("    HIDDEN %s  (%s)\n", strings.ReplaceAll(f.Display, "\x00", `\0`), f.Detail)
			}
		} else {
			fmt.Printf("    (%d hidden entries; rerun with -v to list)\n", len(r.Hidden))
		}
		if r.Infected() {
			infected = true
		}
	}
	if infected {
		fmt.Println("\nVERDICT: machine is INFECTED with resource-hiding software")
		os.Exit(2)
	}
	fmt.Println("\nVERDICT: no hidden resources detected")
	return nil
}

func runInjected(m *machine.Machine, verbose bool) error {
	fmt.Println("injecting GhostBuster DLL into every running process...")
	files, err := injection.ScanFilesEverywhere(m)
	if err != nil {
		return err
	}
	procs, err := injection.ScanProcsEverywhere(m)
	if err != nil {
		return err
	}
	union := append(append([]core.Finding(nil), files.Union...), procs.Union...)
	for _, pp := range append(files.PerProc, procs.PerProc...) {
		fmt.Printf("  via %-20s %d hidden\n", pp.Process, len(pp.Hidden))
		if verbose {
			for _, f := range pp.Hidden {
				fmt.Printf("      HIDDEN %s\n", f.Display)
			}
		}
	}
	if len(union) > 0 {
		fmt.Printf("\nVERDICT: INFECTED — %d hidden resources across all identities\n", len(union))
		os.Exit(2)
	}
	fmt.Println("\nVERDICT: no hidden resources detected from any process identity")
	return nil
}

func hideSummary(g ghostware.Ghostware) string {
	var parts []string
	if n := len(g.HiddenFiles()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d files", n))
	}
	if n := len(g.HiddenASEPs()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d ASEP hooks", n))
	}
	if n := len(g.HiddenProcs()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d processes", n))
	}
	if len(parts) == 0 {
		return "configured at runtime"
	}
	return strings.Join(parts, ", ")
}
