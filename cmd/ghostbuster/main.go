// Command ghostbuster is the interactive face of the reproduction: it
// builds a simulated Windows machine, optionally infects it with any of
// the paper's ghostware corpus, and runs the inside-the-box GhostBuster
// scans, printing the cross-view diff report. With -fleet it sweeps a
// whole simulated fleet, optionally journaling every host state
// transition so an interrupted sweep can be resumed with -resume.
//
// Usage:
//
//	ghostbuster -list-ghostware
//	ghostbuster -infect "Hacker Defender 1.0" -scan all -advanced
//	ghostbuster -infect FU -scan procs            # shows the normal-mode miss
//	ghostbuster -infect FU -scan procs -advanced  # and the advanced-mode catch
//	ghostbuster -infect Vanquish -inject          # scan from inside every process
//	ghostbuster -infect Chameleon -scan all -advanced             # adaptive evasion: fixed order misses
//	ghostbuster -infect Chameleon -scan all -advanced -order-seed 2   # randomized order catches
//	ghostbuster -infect PhantomProc -profile paranoid             # memory-only: kmem pool carve
//	ghostbuster -infect BootViper -profile paranoid               # bootkit: boot-chain pair
//	ghostbuster -infect USBcat -profile standard                  # removable-device truth source
//	ghostbuster -fleet 8 -journal sweep.gbj -json # durable fleet sweep
//	ghostbuster -fleet 8 -journal sweep.gbj -resume
//	ghostbuster -fleet 64 -shards 4 -shard-journal-dir sweepdir  # fleet of fleets
//	ghostbuster -fleet 64 -shards 4 -shard-journal-dir sweepdir -resume
//	ghostbuster -fleet 64 -shards 4 -watchdog 2s  # wedged shards fail over mid-sweep
//	ghostbuster -fleet 64 -hedge 500ms            # stragglers get a duplicate scan
//	ghostbuster -list-profiles
//	ghostbuster -fleet 8 -profile paranoid -lock-profile          # scan-policy profile
//	ghostbuster -verify-report report.json        # check tamper evidence
//
// Exit codes (stable, for scripted callers):
//
//	0  clean — every scan completed, nothing hidden
//	1  findings — hidden resources detected
//	2  degraded but clean — no findings, but some scan units or hosts
//	   were lost (faults, deadlines, quarantine), so absence of findings
//	   is not proof of absence; OR a usage error — invalid flags or a
//	   locked-profile violation rejected before any scan started. The
//	   two cannot be confused: a usage error prints to stderr and emits
//	   no report, a degraded sweep emits a full report.
//	3  sweep aborted — the fleet error budget stopped the sweep early
//	4  runtime error
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/fleetshard"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/injection"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/profile"
	"ghostbuster/internal/supervise"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/workload"
)

// The exit-code contract. Documented in the package comment and README;
// scripted callers branch on these.
const (
	exitClean    = 0
	exitFindings = 1
	exitDegraded = 2
	exitAborted  = 3
	exitError    = 4
	// exitUsage shares 2 with exitDegraded deliberately: a usage error
	// is rejected before any scan starts, so there is never a report to
	// confuse it with (see the package comment's exit-code table).
	exitUsage = 2
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghostbuster:", err)
		if code == exitClean {
			code = exitError
		}
	}
	os.Exit(code)
}

// catalogOrdered lists every installable program: the paper's 12-sample
// corpus followed by the extension adversaries, all from the shared
// ghostware catalog.
func catalogOrdered() []ghostware.CatalogEntry {
	return append(ghostware.Catalog(), ghostware.Extensions()...)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("ghostbuster", flag.ContinueOnError)
	listGW := fs.Bool("list-ghostware", false, "list the installable ghostware corpus and exit")
	infect := fs.String("infect", "", "install the named ghostware before scanning (fleet mode: on the first host)")
	scan := fs.String("scan", "all", "what to scan: files|aseps|procs|mods|drivers|all")
	advanced := fs.Bool("advanced", false, "use the CID-table traversal for the process low-level scan (catches DKOM)")
	orderSeed := fs.Int64("order-seed", 0, "randomize scan-unit execution order with this seed (0 = the paper's fixed order); defeats scan-detecting adversaries")
	inject := fs.Bool("inject", false, "run the scans from inside every process (the §5 DLL-injection extension)")
	contain := fs.Bool("contain", false, "contain per-unit faults as degraded reports instead of failing the scan")
	jsonOut := fs.Bool("json", false, "emit reports as JSON instead of text")
	verbose := fs.Bool("v", false, "print every finding, not just the summary")
	fleetN := fs.Int("fleet", 0, "sweep a simulated fleet of this many hosts instead of one machine")
	workers := fs.Int("workers", 1, "fleet mode: concurrent host scans")
	journalPath := fs.String("journal", "", "fleet mode: journal every host state transition to this file")
	resume := fs.Bool("resume", false, "fleet mode: resume the interrupted sweep recorded in -journal")
	breaker := fs.Int("breaker", 0, "fleet mode: quarantine a host after this many consecutive failed attempts")
	abortFraction := fs.Float64("abort-fraction", 0, "fleet mode: abort the sweep when more than this fraction of hosts fail")
	maxRetries := fs.Int("max-retries", 0, "fleet mode: extra scan attempts per failed or degraded host")
	shards := fs.Int("shards", 0, "fleet mode: consistent-hash the hosts across this many sweeper shards (the fleet-of-fleets control plane)")
	shardJournalDir := fs.String("shard-journal-dir", "", "sharded fleet mode: directory holding one journal per shard plus the coordinator manifest; enables -resume after losing any subset of shards")
	watchdog := fs.Duration("watchdog", 0, "sharded fleet mode: declare a shard wedged after this much heartbeat silence and fail its unfinished hosts over to surviving shards mid-sweep (0 disables)")
	hedge := fs.Duration("hedge", 0, "fleet mode: launch a duplicate scan for any host still running this far past the fleet's observed latency; the first sealed result wins (0 disables)")
	verifyReport := fs.String("verify-report", "", "verify a saved fleet report's tamper-evidence chain and exit")
	profName := fs.String("profile", "", "scan-policy profile: quick|standard|paranoid|forensic or an imported name")
	profDir := fs.String("profile-dir", "", "directory of imported custom profiles (checksummed JSON)")
	lockProfile := fs.Bool("lock-profile", false, "lock the profile: overrides that would weaken it are rejected")
	listProfiles := fs.Bool("list-profiles", false, "list the resolvable scan-policy profiles and exit")
	if err := fs.Parse(args); err != nil {
		return exitUsage, err
	}

	// Flag-value validation: rejected before any scan starts, so the
	// caller gets a usage error, not a half-run sweep.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["shards"] && *shards < 1 {
		return exitUsage, fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if explicit["workers"] && *workers < 1 {
		return exitUsage, fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	if *abortFraction < 0 || *abortFraction > 1 {
		return exitUsage, fmt.Errorf("-abort-fraction must be within [0,1], got %v", *abortFraction)
	}
	if *watchdog < 0 {
		return exitUsage, fmt.Errorf("-watchdog must be >= 0, got %s", *watchdog)
	}
	if *watchdog > 0 && *shards < 2 {
		return exitUsage, fmt.Errorf("-watchdog requires -shards >= 2 (the watchdog supervises shard heartbeats)")
	}
	if *hedge < 0 {
		return exitUsage, fmt.Errorf("-hedge must be >= 0, got %s", *hedge)
	}

	if *listProfiles {
		ps, err := profile.NewStore(*profDir).List()
		if err != nil {
			return exitError, err
		}
		for _, p := range ps {
			lock := ""
			if p.Locked {
				lock = "  [locked]"
			}
			fmt.Printf("  %-12s rank %d  %s%s\n", p.Name, p.Rank, p.Description, lock)
		}
		return exitClean, nil
	}

	// Resolve the scan-policy profile and fold the explicit tuning flags
	// into it as overrides — the same profile.Apply path the daemon API
	// uses, so a locked profile rejects weakening identically here.
	var prof *profile.Profile
	if *profName != "" || *lockProfile {
		name := *profName
		if name == "" {
			name = "standard"
		}
		p, err := profile.NewStore(*profDir).Resolve(name)
		if err != nil {
			return exitUsage, err
		}
		if *lockProfile {
			p.Locked = true
		}
		var ov profile.Override
		if explicit["advanced"] {
			ov.Advanced = advanced
		}
		if explicit["contain"] {
			ov.Contain = contain
		}
		if explicit["workers"] {
			ov.Workers = workers
		}
		if explicit["max-retries"] {
			ov.MaxRetries = maxRetries
		}
		if explicit["breaker"] {
			ov.BreakerThreshold = breaker
		}
		if explicit["abort-fraction"] {
			ov.AbortAfterFailureFraction = abortFraction
		}
		p, err = p.Apply(ov)
		if err != nil {
			return exitUsage, err
		}
		prof = &p
	}

	if *listGW {
		for _, e := range catalogOrdered() {
			fmt.Printf("  %-24s %-28s hides: %s\n", e.Name, e.Class, hideSummary(e.New()))
		}
		return exitClean, nil
	}
	if *verifyReport != "" {
		return runVerifyReport(*verifyReport)
	}
	if *resume && *journalPath == "" && *shardJournalDir == "" {
		return exitError, fmt.Errorf("-resume requires -journal (or -shards with -shard-journal-dir)")
	}
	if *shards > 0 && *fleetN <= 0 {
		return exitError, fmt.Errorf("-shards requires -fleet")
	}
	if *fleetN > 0 {
		opts := fleetOptions{
			hosts: *fleetN, workers: *workers, infect: *infect,
			journal: *journalPath, resume: *resume,
			breaker: *breaker, abortFraction: *abortFraction, maxRetries: *maxRetries,
			jsonOut: *jsonOut,
			shards:  *shards, shardJournalDir: *shardJournalDir,
			watchdog: *watchdog, hedge: *hedge,
			prof: prof,
		}
		if *shards > 0 {
			return runShardedFleet(opts)
		}
		return runFleet(opts)
	}

	p := workload.SmallProfile()
	fmt.Printf("building machine %q (%s, %.0f GB used, %d MHz)...\n", p.Name, p.Kind, p.DiskUsedGB, p.CPUMHz)
	m, err := workload.NewPaperMachine(p)
	if err != nil {
		return exitError, err
	}
	// Content the commercial hiders protect, so every corpus entry works.
	for _, f := range []string{`C:\Private\diary.txt`, `C:\Shared\docs.txt`} {
		if err := m.DropFile(f, []byte("user data")); err != nil {
			return exitError, err
		}
	}

	if *infect != "" {
		if err := installGhostware(m, *infect); err != nil {
			return exitError, err
		}
	}

	if *inject {
		return runInjected(m, *verbose)
	}
	return runPlain(m, *scan, *advanced, *contain, *verbose, *jsonOut, *orderSeed, prof)
}

func installGhostware(m *machine.Machine, name string) error {
	e, ok := ghostware.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown ghostware %q (try -list-ghostware)", name)
	}
	g := e.New()
	fmt.Printf("installing %s (%s)...\n", g.Name(), g.Class())
	if err := g.Install(m); err != nil {
		return err
	}
	if e.Arm != nil {
		if err := e.Arm(m, g); err != nil {
			return err
		}
		fmt.Printf("armed %s (post-install step)\n", g.Name())
	}
	return nil
}

func runPlain(m *machine.Machine, scan string, advanced, contain, verbose, jsonOut bool, orderSeed int64, prof *profile.Profile) (int, error) {
	d := core.NewDetector(m)
	d.Advanced = advanced
	d.Contain = contain
	if prof != nil {
		// The explicit flags were already folded into the profile as
		// overrides (through the locked-profile check), so the profile
		// is the single source of truth for the detector.
		prof.ConfigureDetector(d)
	}
	// An explicit -order-seed wins over the profile's auto-drawn seed:
	// the operator is pinning a reproducible execution order.
	if orderSeed != 0 {
		d.OrderSeed = orderSeed
	}
	var reports []*core.Report
	runScan := func(name string, f func() (*core.Report, error)) error {
		r, err := f()
		if err != nil {
			return fmt.Errorf("%s scan: %w", name, err)
		}
		reports = append(reports, r)
		return nil
	}
	switch scan {
	case "files":
		if err := runScan("file", d.ScanFiles); err != nil {
			return exitError, err
		}
	case "aseps":
		if err := runScan("ASEP", d.ScanASEPs); err != nil {
			return exitError, err
		}
	case "procs":
		if err := runScan("process", d.ScanProcesses); err != nil {
			return exitError, err
		}
	case "mods":
		if err := runScan("module", d.ScanModules); err != nil {
			return exitError, err
		}
	case "drivers":
		if err := runScan("driver", d.ScanDrivers); err != nil {
			return exitError, err
		}
	case "all":
		all, err := d.ScanAll()
		if err != nil {
			return exitError, err
		}
		reports = all
		if err := runScan("driver", d.ScanDrivers); err != nil {
			return exitError, err
		}
	default:
		return exitError, fmt.Errorf("unknown scan kind %q", scan)
	}
	infected, degraded := false, false
	for _, r := range reports {
		if r.Infected() {
			infected = true
		}
		if r.Degraded() {
			degraded = true
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return exitError, err
		}
		return verdictCode(infected, degraded, false), nil
	}
	for _, r := range reports {
		fmt.Println(r.Summary())
		fmt.Printf("           scan time: %s\n", vtime.String(r.Elapsed))
		if r.MassHiding != nil {
			fmt.Println("           " + r.MassHiding.String())
		}
		if verbose || len(r.Hidden) <= 10 {
			for _, f := range r.Hidden {
				fmt.Printf("    HIDDEN %s  (%s)\n", strings.ReplaceAll(f.Display, "\x00", `\0`), f.Detail)
			}
		} else {
			fmt.Printf("    (%d hidden entries; rerun with -v to list)\n", len(r.Hidden))
		}
	}
	printVerdict(infected, degraded, false)
	return verdictCode(infected, degraded, false), nil
}

func runInjected(m *machine.Machine, verbose bool) (int, error) {
	fmt.Println("injecting GhostBuster DLL into every running process...")
	files, err := injection.ScanFilesEverywhere(m)
	if err != nil {
		return exitError, err
	}
	procs, err := injection.ScanProcsEverywhere(m)
	if err != nil {
		return exitError, err
	}
	union := append(append([]core.Finding(nil), files.Union...), procs.Union...)
	for _, pp := range append(files.PerProc, procs.PerProc...) {
		fmt.Printf("  via %-20s %d hidden\n", pp.Process, len(pp.Hidden))
		if verbose {
			for _, f := range pp.Hidden {
				fmt.Printf("      HIDDEN %s\n", f.Display)
			}
		}
	}
	if len(union) > 0 {
		fmt.Printf("\nVERDICT: INFECTED — %d hidden resources across all identities\n", len(union))
		return exitFindings, nil
	}
	fmt.Println("\nVERDICT: no hidden resources detected from any process identity")
	return exitClean, nil
}

type fleetOptions struct {
	hosts, workers, breaker, maxRetries int
	infect, journal                     string
	resume, jsonOut                     bool
	abortFraction                       float64
	shards                              int
	shardJournalDir                     string
	// watchdog is the heartbeat-silence budget before a shard is
	// declared wedged and failed over (sharded mode only); hedge is the
	// straggler floor past which a duplicate scan launches.
	watchdog, hedge time.Duration
	// prof, when set, is the resolved scan policy (flag overrides
	// already folded in); it configures the sweep end to end.
	prof *profile.Profile
}

// buildCLIFleet assembles the simulated fleet deterministically: host i
// is seeded with i+1, so -resume on a new process rebuilds the same
// hosts the crashed sweep journaled. Hosts enroll lazily (the same
// on-demand construction the sharded control plane uses), which also
// makes them hedge-capable: a straggler's duplicate scan gets its own
// clean rebuild instead of racing the original's machine.
func buildCLIFleet(opts fleetOptions) (*fleet.Manager, error) {
	mgr := fleet.NewManager()
	mgr.MaxRetries = opts.maxRetries
	mgr.BreakerThreshold = opts.breaker
	mgr.AbortAfterFailureFraction = opts.abortFraction
	if opts.hedge > 0 {
		mgr.Hedge = hedgePolicy(opts.hedge)
	}
	src := cliHostSource{n: opts.hosts, infect: opts.infect}
	for i := 0; i < opts.hosts; i++ {
		i := i
		mgr.AddLazy(src.Name(i), func() (*machine.Machine, error) { return src.Build(i) })
	}
	return mgr, nil
}

// hedgePolicy maps the -hedge floor onto the straggler policy: after a
// few observed completions, any scan running past max(floor, 2x the
// fleet's median latency) gets a duplicate; the first sealed result
// wins.
func hedgePolicy(floor time.Duration) *fleet.HedgePolicy {
	return &fleet.HedgePolicy{MinSamples: 3, Multiplier: 2, Floor: floor}
}

func runFleet(opts fleetOptions) (int, error) {
	mgr, err := buildCLIFleet(opts)
	if err != nil {
		return exitError, err
	}
	workers := opts.workers
	if opts.prof != nil {
		opts.prof.ConfigureManager(mgr)
		workers = opts.prof.Workers
	}
	var rep *fleet.Report
	switch {
	case opts.resume:
		fmt.Fprintf(os.Stderr, "resuming journaled sweep from %s...\n", opts.journal)
		rep, err = mgr.Resume(fleet.SweepInside, workers, opts.journal)
	case opts.journal != "":
		fmt.Fprintf(os.Stderr, "sweeping %d hosts (journal: %s)...\n", opts.hosts, opts.journal)
		rep, err = mgr.SweepJournaled(fleet.SweepInside, workers, opts.journal)
	default:
		// Unjournaled sweeps reuse the durable path against a throwaway
		// journal in the OS temp dir, so every fleet run is sealed.
		tmp, terr := os.CreateTemp("", "ghostbuster-sweep-*.gbj")
		if terr != nil {
			return exitError, terr
		}
		tmp.Close()
		defer os.Remove(tmp.Name())
		fmt.Fprintf(os.Stderr, "sweeping %d hosts...\n", opts.hosts)
		rep, err = mgr.SweepJournaled(fleet.SweepInside, workers, tmp.Name())
	}
	if err != nil {
		return exitError, err
	}

	infected := len(rep.Infected()) > 0
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return exitError, err
		}
		return verdictCode(infected, rep.Degraded(), rep.Aborted), nil
	}
	for _, hr := range rep.Results {
		status := "clean"
		switch {
		case hr.Quarantined:
			status = "QUARANTINED"
		case hr.Err != "":
			status = "error: " + hr.Err
		case hr.Infected:
			status = fmt.Sprintf("INFECTED (%d hidden)", hr.Hidden)
		case hr.Degraded > 0:
			status = fmt.Sprintf("degraded (%d units lost)", hr.Degraded)
		}
		replayed := ""
		for _, h := range rep.Replayed {
			if h == hr.Host {
				replayed = "  [replayed from journal]"
			}
		}
		fmt.Printf("  %-10s %-28s %s%s\n", hr.Host, status, vtime.String(hr.Elapsed), replayed)
	}
	if rep.Aborted {
		fmt.Printf("\nSWEEP ABORTED: %s (unscanned: %s)\n", rep.AbortReason, strings.Join(rep.NotScanned, ", "))
	}
	fmt.Printf("report digest: %s\n", rep.Digest)
	printVerdict(infected, rep.Degraded(), rep.Aborted)
	return verdictCode(infected, rep.Degraded(), rep.Aborted), nil
}

// cliHostSource builds CLI fleet hosts on demand for the sharded
// control plane: the same deterministic construction as buildCLIFleet
// (host i seeded with i+1), so a -resume after losing shards rebuilds
// hosts whose scans hash identically to the journaled ones.
type cliHostSource struct {
	n      int
	infect string
}

func (s cliHostSource) Len() int { return s.n }

func (s cliHostSource) Name(i int) string { return fmt.Sprintf("host-%03d", i) }

func (s cliHostSource) Build(i int) (*machine.Machine, error) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	p.Seed = int64(i + 1)
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	for _, f := range []string{`C:\Private\diary.txt`, `C:\Shared\docs.txt`} {
		if err := m.DropFile(f, []byte("user data")); err != nil {
			return nil, err
		}
	}
	if i == 0 && s.infect != "" {
		e, ok := ghostware.Lookup(s.infect)
		if !ok {
			return nil, fmt.Errorf("unknown ghostware %q (try -list-ghostware)", s.infect)
		}
		g := e.New()
		if err := g.Install(m); err != nil {
			return nil, err
		}
		if e.Arm != nil {
			if err := e.Arm(m, g); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// runShardedFleet sweeps the fleet through the fleet-of-fleets control
// plane: hosts consistent-hashed across -shards sweeper shards, results
// streamed and folded shard by shard, the merged report sealed with the
// cross-shard digest layer.
func runShardedFleet(opts fleetOptions) (int, error) {
	src := cliHostSource{n: opts.hosts, infect: opts.infect}
	cfg := fleetshard.Config{
		Shards:                    opts.shards,
		ShardWorkers:              opts.workers,
		JournalDir:                opts.shardJournalDir,
		MaxRetries:                opts.maxRetries,
		BreakerThreshold:          opts.breaker,
		AbortAfterFailureFraction: opts.abortFraction,
	}
	if opts.watchdog > 0 {
		// Three missed beacons on a one-third cadence: a shard gets the
		// full -watchdog window of silence before failover fires.
		cfg.Watchdog = supervise.Policy{Deadline: opts.watchdog / 3, Misses: 3}
	}
	if opts.hedge > 0 {
		cfg.Hedge = hedgePolicy(opts.hedge)
	}
	if p := opts.prof; p != nil {
		cfg.ShardWorkers = p.Workers
		cfg.HostParallelism = p.HostParallelism
		cfg.MaxRetries = p.MaxRetries
		cfg.RetryBackoff = p.RetryBackoff
		cfg.HostDeadline = p.Deadline
		cfg.BreakerThreshold = p.BreakerThreshold
		cfg.AbortAfterFailureFraction = p.AbortAfterFailureFraction
		cfg.ConfigureDetector = p.ConfigureDetector
	}
	coord, err := fleetshard.New(cfg, src)
	if err != nil {
		return exitError, err
	}
	var rep *fleetshard.Report
	if opts.resume {
		if opts.shardJournalDir == "" {
			return exitError, fmt.Errorf("-resume with -shards requires -shard-journal-dir")
		}
		fmt.Fprintf(os.Stderr, "resuming sharded sweep from %s...\n", opts.shardJournalDir)
		rep, err = coord.Resume()
	} else {
		fmt.Fprintf(os.Stderr, "sweeping %d hosts across %d shards...\n", opts.hosts, opts.shards)
		rep, err = coord.Sweep()
	}
	if err != nil {
		return exitError, err
	}

	infected := rep.Infected > 0
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return exitError, err
		}
		return verdictCode(infected, rep.Degraded(), rep.Aborted), nil
	}
	for _, sr := range rep.ShardResults {
		status := "clean"
		switch {
		case sr.Lost:
			status = "LOST (hosts re-hashed to survivors)"
		case sr.Quarantined:
			status = "QUARANTINED"
		case sr.Err != "":
			status = "error: " + sr.Err
		case sr.Summary != nil && sr.Summary.Infected > 0:
			status = fmt.Sprintf("INFECTED (%d hosts, %d hidden)", sr.Summary.Infected, sr.Summary.HiddenTotal)
		case sr.Summary != nil && sr.Summary.Failed+sr.Summary.DegradedHosts > 0:
			status = "degraded"
		}
		extra := ""
		if sr.Resumed {
			extra += "  [resumed]"
		}
		if sr.Adopted > 0 {
			extra += fmt.Sprintf("  [+%d adopted]", sr.Adopted)
		}
		scanned := 0
		if sr.Summary != nil {
			scanned = sr.Summary.Scanned
		}
		fmt.Printf("  shard %03d  %4d hosts  %4d scanned  %-36s%s\n", sr.Shard, sr.Hosts, scanned, status, extra)
	}
	if rep.Aborted {
		fmt.Printf("\nSWEEP ABORTED: %s (%d hosts unscanned)\n", rep.AbortReason, rep.NotScanned)
	}
	fmt.Printf("virtual makespan: %s (total scan cost %s, peak resident results %d)\n",
		vtime.String(time.Duration(rep.MakespanNs)), vtime.String(time.Duration(rep.VirtualNs)), rep.PeakResident)
	fmt.Printf("merged digest: %s\n", rep.MergedDigest)
	fmt.Printf("report digest: %s\n", rep.Digest)
	printVerdict(infected, rep.Degraded(), rep.Aborted)
	return verdictCode(infected, rep.Degraded(), rep.Aborted), nil
}

// runVerifyReport checks a saved fleet report's tamper-evidence chain:
// fleet digest, per-host result hashes, per-report digests.
func runVerifyReport(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return exitError, err
	}
	var rep fleet.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return exitError, fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := rep.Verify(); err != nil {
		return exitError, fmt.Errorf("%s FAILS verification: %w", path, err)
	}
	fmt.Printf("%s verifies: %d hosts, digest %s\n", path, len(rep.Results), rep.Digest)
	return exitClean, nil
}

func verdictCode(infected, degraded, aborted bool) int {
	switch {
	case aborted:
		return exitAborted
	case infected:
		return exitFindings
	case degraded:
		return exitDegraded
	default:
		return exitClean
	}
}

func printVerdict(infected, degraded, aborted bool) {
	switch {
	case aborted && infected:
		fmt.Println("\nVERDICT: INFECTED (sweep aborted early — findings are a lower bound)")
	case aborted:
		fmt.Println("\nVERDICT: sweep aborted before completion — no verdict for unscanned hosts")
	case infected:
		fmt.Println("\nVERDICT: machine is INFECTED with resource-hiding software")
	case degraded:
		fmt.Println("\nVERDICT: no hidden resources detected, but the scan was degraded — absence of findings is not proof of absence")
	default:
		fmt.Println("\nVERDICT: no hidden resources detected")
	}
}

func hideSummary(g ghostware.Ghostware) string {
	var parts []string
	if n := len(g.HiddenFiles()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d files", n))
	}
	if n := len(g.HiddenASEPs()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d ASEP hooks", n))
	}
	if n := len(g.HiddenProcs()); n > 0 {
		parts = append(parts, fmt.Sprintf("%d processes", n))
	}
	if len(parts) == 0 {
		return "configured at runtime"
	}
	return strings.Join(parts, ", ")
}
