// Command asepmon demonstrates the Gatekeeper-style ASEP monitor
// [WRV+04] correlated with GhostBuster's cross-view diff: it baselines a
// machine's auto-start hooks, simulates a day of activity including a
// benign install and a rootkit infection, and prints the triaged change
// report — new visible hooks are "review", new hidden hooks are
// CRITICAL.
package main

import (
	"fmt"
	"os"

	"ghostbuster/internal/gatekeeper"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asepmon:", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := workload.NewPaperMachine(workload.SmallProfile())
	if err != nil {
		return err
	}
	fmt.Println("taking ASEP baseline...")
	baseline, err := gatekeeper.Take(m)
	if err != nil {
		return err
	}
	fmt.Printf("baseline: %d auto-start hooks\n\n", len(baseline.Hooks))

	fmt.Println("a day passes: the user installs a legitimate updater...")
	if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
		"AcmeUpdater", `C:\Program Files\Acme\update.exe`); err != nil {
		return err
	}
	if err := m.RunChurn(60); err != nil {
		return err
	}
	fmt.Println("...and Hacker Defender sneaks in.")
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		return err
	}

	report, err := gatekeeper.Check(m, baseline)
	if err != nil {
		return err
	}
	fmt.Printf("\nASEP monitor report (%d changes):\n", len(report.Changes))
	for _, c := range report.Changes {
		fmt.Println("  " + c.String())
	}
	critical := report.HiddenAdditions()
	if len(critical) > 0 {
		fmt.Printf("\nVERDICT: %d CRITICAL hidden auto-start hooks — machine compromised\n", len(critical))
		os.Exit(2)
	}
	fmt.Println("\nVERDICT: changes are visible; review as routine software churn")
	return nil
}
