#!/bin/sh
# Perf-regression gate: re-measure the sweep benchmark and compare it
# against the committed baseline (BENCH_sweep.json), failing on >15%
# regression. Only deterministic metrics are gated — virtual-time sweep
# costs and per-entry allocation counts — so the gate is hardware- and
# load-independent. The diff microbench and fleet run at a lighter scale
# than the committed baseline; the gated metrics are scale-invariant.
# The shard-scaling curve and the million-host mega sweep run at full
# scale (they are synthetic and finish in seconds) so their virtual
# makespans match the baseline's (hosts, shards) keys exactly.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp /tmp/bench_candidate.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT

go run ./cmd/paperbench -sweepbench -reps 2 -hosts 20 -fleetLarge 100 -diffEntries 200000 -out "$tmp"
go run ./cmd/paperbench -benchgate -baseline BENCH_sweep.json -candidate "$tmp"
