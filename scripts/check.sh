#!/bin/sh
# Full local gate: vet, build, and the whole test suite under the race
# detector (the fleet scheduler is the main concurrency surface), plus
# the chaos suite, a coverage floor on the core detection packages, and
# the deterministic ghostfuzz smoke runs.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos suite under -race (fault-injection property tests)"
go test -race -run 'TestChaos|TestEmptyFaultPlanByteIdentity' ./internal/ghostfuzz/

echo "==> crash-resume matrix under -race (kill at sched/mid/last offsets, torn tail, bit flip)"
go test -race -run 'TestChaosCrashResume' ./internal/ghostfuzz/
go test -race -run 'TestResumeReplaysCommittedHosts|TestResumeContinuesAttemptNumbering|TestResumeRejects|TestResumeInteriorCorruptionIsLoud|TestBreaker|TestAbortAfterFailureFraction' ./internal/fleet/
go test -race -run 'TestTornTailRecovered|TestBitFlipIsLoud|TestInteriorTruncationIsLoud' ./internal/journal/

echo "==> sharded control-plane matrix under -race (shard loss, topology independence, bounded residency)"
go test -race -run 'TestShardCrashResumeReproducesMergedDigest|TestResumeAfterTotalLoss|TestResumeRestartsHeaderlessShardJournal|TestMergedDigestIndependentOfShardTopology|TestBoundedResidentResults|TestShardBreakerQuarantines|TestShardErrorBudgetAborts' ./internal/fleetshard/

echo "==> daemon smoke under -race (boot, API sweep, graceful drain; locked-profile API rejections)"
go test -race -run 'TestRunSmoke|TestRunFlagValidation' ./cmd/ghostbusterd/
go test -race -run 'TestHTTPLockedProfileRejectsWeakening|TestCrashResumeDigestEquality|TestGracefulShutdownDrainsInFlightSweep' ./internal/daemon/

echo "==> supervision matrix under -race (wedge failover, wedge-crash resume, hedged stragglers, jittered retries, cancel-seal)"
go test -race -run 'TestSupervisionChaos' ./internal/ghostfuzz/
go test -race -run 'TestWatchdog|TestWedge|TestResumeOfCompletedWedgeRun' ./internal/fleetshard/
go test -race -run 'TestHedged|TestCancelSealsPartialSummaryAndResumes|TestJittered|TestResultCancelledDetectsCasualties' ./internal/fleet/

echo "==> daemon overload control under -race (admission 429/Retry-After, readyz draining, slow SSE consumers never stall sweeps)"
go test -race -run 'TestSweepAdmission|TestReadyzTracksDraining|TestSlowSubscriberDropsWithoutStallingSweeps|TestSubscriberChurnDuringSweeps' ./internal/daemon/

echo "==> next-gen family matrix under -race (evasive differential, naive-miss/counter-catch, boot+removable chaos, removable delta scheduling)"
go test -race -run 'TestEvasive|TestNextGenNaiveMissCounterCatch|TestChaosBootRemovableLoudNeverSilent' ./internal/ghostfuzz/
go test -race -run 'TestRemovableHotplugTriggersDeltaSweep' ./internal/daemon/

echo "==> randomized-order alloc gate (nonzero OrderSeed adds nothing per entry to the warm diff path)"
go test -run 'TestScanOrderAllocs|TestOrderedWarmSweepAllocs' ./internal/core/

echo "==> coverage floor (>= 70% on the detection core, cross-time/kmem truth sources, daemon, supervision, and profile store)"
go test -cover ./internal/core/ ./internal/ntfs/ ./internal/hive/ ./internal/crosstime/ ./internal/kmem/ ./internal/fleet/ ./internal/fleetshard/ ./internal/journal/ ./internal/daemon/ ./internal/profile/ ./internal/supervise/ |
	awk '
		/coverage:/ {
			pct = $5; sub(/%.*/, "", pct)
			printf "    %-32s %s%%\n", $2, pct
			if (pct + 0 < 70) { printf "FAIL: %s coverage %s%% < 70%%\n", $2, pct; bad = 1 }
		}
		END { exit bad }
	'

echo "==> perf gate (sweepbench vs committed BENCH_sweep.json, deterministic metrics)"
sh scripts/benchgate.sh

echo "==> ghostfuzz smoke (fixed seed, 50 cases)"
go run ./cmd/ghostfuzz -seed 1 -n 50 > /dev/null

echo "==> ghostfuzz chaos smoke (fixed seed, 25 faulted cases)"
go run ./cmd/ghostfuzz -seed 1 -n 25 -faulted > /dev/null

echo "==> ghostfuzz crash-resume smoke (fixed seed, 2 killed sweeps)"
go run ./cmd/ghostfuzz -seed 1 -crashed 2 > /dev/null

echo "==> ghostfuzz sharded crash-resume smoke (fixed seed, 2 sweeps, 3 shards)"
go run ./cmd/ghostfuzz -seed 1 -crashed 2 -shards 3 > /dev/null

echo "==> ghostfuzz supervision chaos smoke (fixed seed, wedge/straggler/jitter matrix, 3 shards)"
go run ./cmd/ghostfuzz -seed 131 -supervised 1 -shards 3 > /dev/null

echo "OK"
