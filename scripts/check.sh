#!/bin/sh
# Full local gate: vet, build, and the whole test suite under the race
# detector (the fleet scheduler is the main concurrency surface).
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> ghostfuzz smoke (fixed seed, 50 cases)"
go run ./cmd/ghostfuzz -seed 1 -n 50 > /dev/null

echo "OK"
