module ghostbuster

go 1.22
