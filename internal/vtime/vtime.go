// Package vtime provides a deterministic virtual clock.
//
// Every component of the simulated machine charges virtual time for the
// work it performs (disk reads, API round trips, reboots). Scan durations
// reported by the benchmarks are therefore reproducible and depend only on
// the workload, never on the host. This mirrors how the paper reports
// scan times as a function of disk usage and machine profile.
package vtime

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value starts at virtual time zero.
// Clock is not safe for concurrent use; the simulated machine is
// single-threaded by design (the paper's scans are sequential).
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from boot.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// ChargeBytes advances the clock by the time needed to transfer n bytes at
// the given throughput (bytes per second). A zero or negative throughput
// charges nothing.
func (c *Clock) ChargeBytes(n int64, bytesPerSecond int64) {
	if n <= 0 || bytesPerSecond <= 0 {
		return
	}
	c.Advance(time.Duration(n * int64(time.Second) / bytesPerSecond))
}

// ChargeOps advances the clock by n operations at the given cost each.
func (c *Clock) ChargeOps(n int64, costPerOp time.Duration) {
	if n <= 0 || costPerOp <= 0 {
		return
	}
	c.Advance(time.Duration(n) * costPerOp)
}

// Stopwatch measures elapsed virtual time between Start and Elapsed.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch returns a stopwatch that reads from clock and starts now.
func NewStopwatch(clock *Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Elapsed returns virtual time elapsed since the stopwatch was created.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// FileTime converts a virtual time to the 64-bit timestamp format stored
// in on-disk structures (100 ns ticks, like Windows FILETIME).
func FileTime(t time.Duration) uint64 { return uint64(t / 100) }

// String formats a duration the way the experiment reports print it.
func String(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.String()
	case d < time.Second:
		return d.Round(time.Millisecond).String()
	case d < time.Minute:
		return d.Round(10 * time.Millisecond).String()
	default:
		return fmt.Sprintf("%dm%ds", int(d.Minutes()), int(d.Seconds())%60)
	}
}
