// Package vtime provides a deterministic virtual clock.
//
// Every component of the simulated machine charges virtual time for the
// work it performs (disk reads, API round trips, reboots). Scan durations
// reported by the benchmarks are therefore reproducible and depend only on
// the workload, never on the host. This mirrors how the paper reports
// scan times as a function of disk usage and machine profile.
//
// Scans that run concurrently model time with lanes: Fork splits a clock
// into n lanes that each charge independently, and Join advances the
// parent by the longest lane — the wall-clock a set of parallel scanners
// would have taken is the maximum of their individual durations.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. The zero value starts at virtual time zero.
// All methods are safe for concurrent use, so parallel scan lanes may
// charge a shared clock; determinism is preserved as long as the total
// work charged does not depend on goroutine interleaving.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now returns the current virtual time as an offset from boot.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.mu.Lock()
		c.now += d
		c.mu.Unlock()
	}
}

// ChargeBytes advances the clock by the time needed to transfer n bytes at
// the given throughput (bytes per second). A zero or negative throughput
// charges nothing.
func (c *Clock) ChargeBytes(n int64, bytesPerSecond int64) {
	if n <= 0 || bytesPerSecond <= 0 {
		return
	}
	c.Advance(time.Duration(n * int64(time.Second) / bytesPerSecond))
}

// ChargeOps advances the clock by n operations at the given cost each.
func (c *Clock) ChargeOps(n int64, costPerOp time.Duration) {
	if n <= 0 || costPerOp <= 0 {
		return
	}
	c.Advance(time.Duration(n) * costPerOp)
}

// Region is a parallel region of virtual time: n lanes forked from a
// parent clock. Each lane is an independent Clock starting at the
// parent's fork time; the work charged to different lanes overlaps
// rather than accumulating. Join collapses the region back into the
// parent by advancing it by the longest lane.
type Region struct {
	parent *Clock
	start  time.Duration
	lanes  []*Clock
}

// Fork opens a parallel region with n lanes (at least one). The parent
// clock is not advanced until Join.
func (c *Clock) Fork(n int) *Region {
	if n < 1 {
		n = 1
	}
	start := c.Now()
	lanes := make([]*Clock, n)
	for i := range lanes {
		lanes[i] = &Clock{now: start}
	}
	return &Region{parent: c, start: start, lanes: lanes}
}

// Lanes returns the number of lanes in the region.
func (r *Region) Lanes() int { return len(r.lanes) }

// Lane returns lane i's clock. Work running on that lane charges it like
// any other clock (including nested Fork for sub-regions).
func (r *Region) Lane(i int) *Clock { return r.lanes[i] }

// Join closes the region: the parent clock advances by the elapsed time
// of the longest lane, and that elapsed time is returned. Virtual time
// spent on shorter lanes is shadowed, which is exactly the wall-clock
// behavior of independent scanners running concurrently.
func (r *Region) Join() time.Duration {
	var longest time.Duration
	for _, l := range r.lanes {
		if e := l.Now() - r.start; e > longest {
			longest = e
		}
	}
	r.parent.Advance(longest)
	return longest
}

// Stopwatch measures elapsed virtual time between Start and Elapsed.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch returns a stopwatch that reads from clock and starts now.
func NewStopwatch(clock *Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Elapsed returns virtual time elapsed since the stopwatch was created.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// FileTime converts a virtual time to the 64-bit timestamp format stored
// in on-disk structures (100 ns ticks, like Windows FILETIME).
func FileTime(t time.Duration) uint64 { return uint64(t / 100) }

// String formats a duration the way the experiment reports print it.
func String(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.String()
	case d < time.Second:
		return d.Round(time.Millisecond).String()
	case d < time.Minute:
		return d.Round(10 * time.Millisecond).String()
	default:
		return fmt.Sprintf("%dm%ds", int(d.Minutes()), int(d.Seconds())%60)
	}
}
