package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAdvanceMonotonic(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Second)
	if c.Now() != 5*time.Second {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(-time.Hour)
	if c.Now() != 5*time.Second {
		t.Error("negative advance must be ignored")
	}
	c.Advance(0)
	if c.Now() != 5*time.Second {
		t.Error("zero advance must be a no-op")
	}
}

func TestChargeBytes(t *testing.T) {
	var c Clock
	c.ChargeBytes(50<<20, 25<<20) // 50 MB at 25 MB/s
	if c.Now() != 2*time.Second {
		t.Errorf("50MB @ 25MB/s = %v, want 2s", c.Now())
	}
	before := c.Now()
	c.ChargeBytes(-1, 25<<20)
	c.ChargeBytes(100, 0)
	if c.Now() != before {
		t.Error("degenerate charges must be no-ops")
	}
}

func TestChargeOps(t *testing.T) {
	var c Clock
	c.ChargeOps(1000, 3*time.Millisecond)
	if c.Now() != 3*time.Second {
		t.Errorf("1000 ops @ 3ms = %v", c.Now())
	}
	c.ChargeOps(0, time.Second)
	c.ChargeOps(5, 0)
	if c.Now() != 3*time.Second {
		t.Error("degenerate op charges must be no-ops")
	}
}

func TestStopwatch(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	sw := NewStopwatch(&c)
	c.Advance(90 * time.Second)
	if sw.Elapsed() != 90*time.Second {
		t.Errorf("Elapsed = %v", sw.Elapsed())
	}
}

func TestFileTime(t *testing.T) {
	if FileTime(time.Second) != 10_000_000 {
		t.Errorf("FileTime(1s) = %d, want 1e7 (100ns ticks)", FileTime(time.Second))
	}
	if FileTime(0) != 0 {
		t.Error("FileTime(0) != 0")
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Microsecond, "500µs"},
		{250 * time.Millisecond, "250ms"},
		{5400 * time.Millisecond, "5.4s"},
		{150 * time.Second, "2m30s"},
		{3900 * time.Second, "65m0s"},
	}
	for _, tc := range cases {
		if got := String(tc.d); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestForkJoinMaxOfLanes(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Second)
	r := c.Fork(3)
	if r.Lanes() != 3 {
		t.Fatalf("Lanes = %d, want 3", r.Lanes())
	}
	r.Lane(0).Advance(2 * time.Second)
	r.Lane(1).Advance(7 * time.Second)
	// Lane 2 charges nothing.
	if got := r.Join(); got != 7*time.Second {
		t.Errorf("Join = %v, want max lane 7s", got)
	}
	if c.Now() != 17*time.Second {
		t.Errorf("parent after Join = %v, want 17s", c.Now())
	}
}

func TestForkLanesStartAtParentNow(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	r := c.Fork(2)
	if r.Lane(0).Now() != time.Minute || r.Lane(1).Now() != time.Minute {
		t.Error("lanes must start at the parent's fork time")
	}
	// A stopwatch on a lane sees only that lane's charges.
	sw := NewStopwatch(r.Lane(1))
	r.Lane(0).Advance(time.Hour)
	r.Lane(1).Advance(3 * time.Second)
	if sw.Elapsed() != 3*time.Second {
		t.Errorf("lane stopwatch Elapsed = %v, want 3s", sw.Elapsed())
	}
}

func TestForkClampsToOneLane(t *testing.T) {
	var c Clock
	if got := c.Fork(0).Lanes(); got != 1 {
		t.Errorf("Fork(0) lanes = %d, want 1", got)
	}
	if got := c.Fork(-5).Lanes(); got != 1 {
		t.Errorf("Fork(-5) lanes = %d, want 1", got)
	}
}

func TestNestedRegions(t *testing.T) {
	var c Clock
	outer := c.Fork(2)
	outer.Lane(0).Advance(time.Second)
	inner := outer.Lane(1).Fork(2)
	inner.Lane(0).Advance(4 * time.Second)
	inner.Lane(1).Advance(2 * time.Second)
	if got := inner.Join(); got != 4*time.Second {
		t.Errorf("inner Join = %v, want 4s", got)
	}
	if got := outer.Join(); got != 4*time.Second {
		t.Errorf("outer Join = %v, want 4s", got)
	}
	if c.Now() != 4*time.Second {
		t.Errorf("root after joins = %v, want 4s", c.Now())
	}
}

// Concurrent charging must be safe and lose no time (run with -race).
func TestConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	const workers, steps = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if want := time.Duration(workers*steps) * time.Microsecond; c.Now() != want {
		t.Errorf("Now = %v, want %v", c.Now(), want)
	}
}

// Property: any sequence of non-negative advances sums exactly.
func TestQuickAdvanceSums(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		var want time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			c.Advance(d)
			want += d
		}
		return c.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
