package kmem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndGrowth(t *testing.T) {
	a := New()
	p1 := a.Alloc(1)
	p2 := a.Alloc(9)
	p3 := a.Alloc(16)
	if p1%8 != 0 || p2%8 != 0 || p3%8 != 0 {
		t.Fatalf("allocations not 8-byte aligned: %#x %#x %#x", p1, p2, p3)
	}
	if p2 != p1+8 {
		t.Errorf("1-byte alloc should consume 8 bytes: p1=%#x p2=%#x", p1, p2)
	}
	if p3 != p2+16 {
		t.Errorf("9-byte alloc should consume 16 bytes: p2=%#x p3=%#x", p2, p3)
	}
	// Force growth well past the initial page.
	big := a.Alloc(1 << 16)
	if err := a.WriteU64(big+(1<<16)-8, 0xdeadbeef); err != nil {
		t.Fatalf("write at end of big alloc: %v", err)
	}
}

func TestAllocZeroSize(t *testing.T) {
	a := New()
	p := a.Alloc(0)
	q := a.Alloc(0)
	if p == q {
		t.Fatal("zero-size allocations must still return distinct addresses")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := New()
	p := a.Alloc(32)
	if err := a.WriteU64(p, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := a.ReadU64(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Errorf("ReadU64 = %#x, want 0x1122334455667788", v)
	}
	if err := a.WriteU32(p+8, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	u, err := a.ReadU32(p + 8)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0xcafebabe {
		t.Errorf("ReadU32 = %#x, want 0xcafebabe", u)
	}
}

func TestBadAddress(t *testing.T) {
	a := New()
	cases := []uint64{0, Base - 1, Base + uint64(len(a.Snapshot())) + 1<<20}
	for _, addr := range cases {
		if _, err := a.ReadU64(addr); err == nil {
			t.Errorf("ReadU64(%#x) should fail", addr)
		} else {
			var bad *ErrBadAddress
			if !errors.As(err, &bad) {
				t.Errorf("ReadU64(%#x) error type = %T, want *ErrBadAddress", addr, err)
			}
		}
	}
	if err := a.WriteU64(Base+1<<30, 1); err == nil {
		t.Error("WriteU64 past end should fail")
	}
}

func TestCStringRoundTrip(t *testing.T) {
	a := New()
	p := a.Alloc(16)
	if err := a.WriteCString(p, "explorer.exe", 16); err != nil {
		t.Fatal(err)
	}
	s, err := a.ReadCString(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s != "explorer.exe" {
		t.Errorf("ReadCString = %q, want explorer.exe", s)
	}
}

func TestCStringTruncation(t *testing.T) {
	a := New()
	p := a.Alloc(8)
	if err := a.WriteCString(p, "averylongprocessname.exe", 8); err != nil {
		t.Fatal(err)
	}
	s, err := a.ReadCString(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s != "averylo" {
		t.Errorf("truncated ReadCString = %q, want averylo (7 chars + NUL)", s)
	}
}

func TestListInitIsEmpty(t *testing.T) {
	a := New()
	head := a.Alloc(ListEntrySize)
	if err := a.ListInit(head); err != nil {
		t.Fatal(err)
	}
	got, err := a.ListWalk(head, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty list walk returned %d entries", len(got))
	}
}

func TestListInsertAndWalkOrder(t *testing.T) {
	a := New()
	head := a.Alloc(ListEntrySize)
	if err := a.ListInit(head); err != nil {
		t.Fatal(err)
	}
	var entries []uint64
	for i := 0; i < 5; i++ {
		e := a.Alloc(ListEntrySize)
		entries = append(entries, e)
		if err := a.ListInsertTail(head, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.ListWalk(head, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("walk returned %d entries, want 5", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("walk[%d] = %#x, want %#x (insertion order)", i, got[i], entries[i])
		}
	}
}

// TestListRemoveMiddle is the DKOM scenario: unlink an entry and confirm
// the walk no longer sees it while the rest of the list stays intact.
func TestListRemoveMiddle(t *testing.T) {
	a := New()
	head := a.Alloc(ListEntrySize)
	if err := a.ListInit(head); err != nil {
		t.Fatal(err)
	}
	var entries []uint64
	for i := 0; i < 4; i++ {
		e := a.Alloc(ListEntrySize)
		entries = append(entries, e)
		if err := a.ListInsertTail(head, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.ListRemove(entries[1]); err != nil {
		t.Fatal(err)
	}
	got, err := a.ListWalk(head, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{entries[0], entries[2], entries[3]}
	if len(got) != len(want) {
		t.Fatalf("after remove, walk = %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("walk[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	// The removed entry must be self-linked, as FU leaves it.
	flink, _ := a.ReadU64(entries[1])
	blink, _ := a.ReadU64(entries[1] + 8)
	if flink != entries[1] || blink != entries[1] {
		t.Errorf("removed entry not self-linked: flink=%#x blink=%#x", flink, blink)
	}
}

func TestListWalkDetectsRunaway(t *testing.T) {
	a := New()
	head := a.Alloc(ListEntrySize)
	if err := a.ListInit(head); err != nil {
		t.Fatal(err)
	}
	e1 := a.Alloc(ListEntrySize)
	e2 := a.Alloc(ListEntrySize)
	// Hand-build a cycle that never returns to head: e1 -> e2 -> e1.
	if err := a.WriteU64(head, e1); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteU64(e1, e2); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteU64(e2, e1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ListWalk(head, 16); err == nil {
		t.Error("walking a corrupt cyclic list should error, not loop forever")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	a := New()
	p := a.Alloc(8)
	if err := a.WriteU64(p, 42); err != nil {
		t.Fatal(err)
	}
	img := a.Snapshot()
	if err := a.WriteU64(p, 99); err != nil {
		t.Fatal(err)
	}
	r := NewImageReader(img)
	v, err := r.ReadU64(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("snapshot value = %d, want 42 (must not alias live memory)", v)
	}
	live, _ := a.ReadU64(p)
	if live != 99 {
		t.Errorf("live value = %d, want 99", live)
	}
}

func TestImageReaderMatchesArena(t *testing.T) {
	a := New()
	p := a.Alloc(64)
	if err := a.WriteCString(p, "services.exe", 32); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteU64(p+32, 0xabcd); err != nil {
		t.Fatal(err)
	}
	r := NewImageReader(a.Snapshot())
	s, err := r.ReadCString(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s != "services.exe" {
		t.Errorf("image ReadCString = %q", s)
	}
	v, err := r.ReadU64(p + 32)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xabcd {
		t.Errorf("image ReadU64 = %#x", v)
	}
	if _, err := r.ReadU64(Base + uint64(len(a.Snapshot()))); err == nil {
		t.Error("image read past end should fail")
	}
}

func TestWalkListOverImageEqualsLive(t *testing.T) {
	a := New()
	head := a.Alloc(ListEntrySize)
	if err := a.ListInit(head); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e := a.Alloc(ListEntrySize)
		if err := a.ListInsertTail(head, e); err != nil {
			t.Fatal(err)
		}
	}
	live, err := a.ListWalk(head, 10)
	if err != nil {
		t.Fatal(err)
	}
	img, err := WalkList(NewImageReader(a.Snapshot()), head, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != len(img) {
		t.Fatalf("live walk %d entries, image walk %d", len(live), len(img))
	}
	for i := range live {
		if live[i] != img[i] {
			t.Errorf("entry %d differs: live %#x image %#x", i, live[i], img[i])
		}
	}
}

// Property: a round trip through WriteU64/ReadU64 preserves any value at
// any allocated slot.
func TestQuickU64RoundTrip(t *testing.T) {
	a := New()
	slots := make([]uint64, 64)
	for i := range slots {
		slots[i] = a.Alloc(8)
	}
	f := func(idx uint8, v uint64) bool {
		p := slots[int(idx)%len(slots)]
		if err := a.WriteU64(p, v); err != nil {
			return false
		}
		got, err := a.ReadU64(p)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: inserting N entries then removing any subset leaves exactly
// the complement on the list, in insertion order.
func TestQuickListInsertRemove(t *testing.T) {
	f := func(n uint8, removeMask uint16) bool {
		count := int(n%12) + 1
		a := New()
		head := a.Alloc(ListEntrySize)
		if err := a.ListInit(head); err != nil {
			return false
		}
		entries := make([]uint64, count)
		for i := range entries {
			entries[i] = a.Alloc(ListEntrySize)
			if err := a.ListInsertTail(head, entries[i]); err != nil {
				return false
			}
		}
		var want []uint64
		for i, e := range entries {
			if removeMask&(1<<uint(i)) != 0 {
				if err := a.ListRemove(e); err != nil {
					return false
				}
			} else {
				want = append(want, e)
			}
		}
		got, err := a.ListWalk(head, count+1)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
