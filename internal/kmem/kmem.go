// Package kmem implements a flat, byte-addressable kernel memory arena.
//
// The simulated kernel lays out its object structures (EPROCESS, ETHREAD,
// loader entries, the CID table) inside this arena with real intrusive
// doubly-linked lists: LIST_ENTRY fields hold 64-bit addresses of other
// arena locations. Direct Kernel Object Manipulation — the technique the
// FU rootkit uses to hide processes — is therefore literal pointer
// surgery on these bytes, and the GhostBuster low-level scanners traverse
// the same bytes the way a kernel debugger walks a crash dump.
package kmem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Base is the virtual address at which the arena begins. It mimics the
// canonical x64 kernel-space base so that arena addresses look like
// kernel pointers in reports and are never confused with small integers.
const Base uint64 = 0xFFFF_8000_0000_0000

// ListEntrySize is the size in bytes of a LIST_ENTRY (flink + blink).
const ListEntrySize = 16

// ErrBadAddress reports an access outside the allocated arena.
type ErrBadAddress struct {
	Addr uint64
	Size int
}

func (e *ErrBadAddress) Error() string {
	return fmt.Sprintf("kmem: bad address %#x (size %d)", e.Addr, e.Size)
}

// Arena is a growable kernel address space with a bump allocator.
// The zero value is not usable; call New.
//
// Individual accesses are guarded by a read-write lock so concurrent
// scanners can traverse structures while the kernel (or a DKOM rootkit)
// mutates them. Only single accesses are atomic — a multi-word update
// such as a LIST_ENTRY unlink can be observed half-done, which is the
// same race window a real kernel walker faces.
type Arena struct {
	mu   sync.RWMutex
	mem  []byte
	next uint64 // next free offset
}

// New returns an empty arena.
func New() *Arena {
	// Burn the first 64 bytes so that Base itself is never handed out and
	// a zero offset can act as a null-like sentinel in object fields.
	return &Arena{mem: make([]byte, 64), next: 64}
}

// Alloc reserves size bytes (8-byte aligned) and returns their address.
func (a *Arena) Alloc(size int) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if size <= 0 {
		size = 8
	}
	aligned := (size + 7) &^ 7
	off := a.next
	a.next += uint64(aligned)
	for uint64(len(a.mem)) < a.next {
		a.mem = append(a.mem, make([]byte, 4096)...)
	}
	return Base + off
}

// Size returns the number of bytes currently allocated.
func (a *Arena) Size() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return int(a.next)
}

func (a *Arena) offset(addr uint64, size int) (uint64, error) {
	if addr < Base {
		return 0, &ErrBadAddress{Addr: addr, Size: size}
	}
	off := addr - Base
	if off+uint64(size) > uint64(len(a.mem)) || size < 0 {
		return 0, &ErrBadAddress{Addr: addr, Size: size}
	}
	return off, nil
}

// ReadU64 reads a 64-bit little-endian value at addr.
func (a *Arena) ReadU64(addr uint64) (uint64, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	off, err := a.offset(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(a.mem[off:]), nil
}

// WriteU64 writes a 64-bit little-endian value at addr.
func (a *Arena) WriteU64(addr, v uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	off, err := a.offset(addr, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(a.mem[off:], v)
	return nil
}

// ReadU32 reads a 32-bit little-endian value at addr.
func (a *Arena) ReadU32(addr uint64) (uint32, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	off, err := a.offset(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(a.mem[off:]), nil
}

// WriteU32 writes a 32-bit little-endian value at addr.
func (a *Arena) WriteU32(addr uint64, v uint32) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	off, err := a.offset(addr, 4)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(a.mem[off:], v)
	return nil
}

// ReadBytes copies n bytes starting at addr.
func (a *Arena) ReadBytes(addr uint64, n int) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	off, err := a.offset(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, a.mem[off:])
	return out, nil
}

// WriteBytes stores b starting at addr.
func (a *Arena) WriteBytes(addr uint64, b []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	off, err := a.offset(addr, len(b))
	if err != nil {
		return err
	}
	copy(a.mem[off:], b)
	return nil
}

// ReadCString reads a NUL-padded byte string of at most maxLen bytes.
func (a *Arena) ReadCString(addr uint64, maxLen int) (string, error) {
	b, err := a.ReadBytes(addr, maxLen)
	if err != nil {
		return "", err
	}
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), nil
		}
	}
	return string(b), nil
}

// WriteCString stores s NUL-padded into a field of maxLen bytes,
// truncating if necessary (one byte is always reserved for the NUL).
func (a *Arena) WriteCString(addr uint64, s string, maxLen int) error {
	b := make([]byte, maxLen)
	copy(b[:maxLen-1], s)
	return a.WriteBytes(addr, b)
}

// Snapshot returns a copy of the raw arena contents. The crash-dump
// writer embeds this image in the dump file; offline analysis then
// resolves addresses as Base+offset exactly like a debugger.
func (a *Arena) Snapshot() []byte {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]byte, a.next)
	copy(out, a.mem[:a.next])
	return out
}

// Restore overwrites the arena contents from a snapshot. Used by the VM
// extension to clone guest kernel state.
func (a *Arena) Restore(img []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mem = make([]byte, len(img))
	copy(a.mem, img)
	a.next = uint64(len(img))
}

// --- LIST_ENTRY manipulation -------------------------------------------
//
// A LIST_ENTRY occupies 16 bytes: Flink (u64) then Blink (u64). A list
// head is itself a LIST_ENTRY; an empty list points at itself, exactly
// like the NT kernel's InitializeListHead.

// ListInit makes head an empty circular list.
func (a *Arena) ListInit(head uint64) error {
	if err := a.WriteU64(head, head); err != nil {
		return err
	}
	return a.WriteU64(head+8, head)
}

// ListInsertTail links entry in front of head (i.e., at the list tail).
func (a *Arena) ListInsertTail(head, entry uint64) error {
	blink, err := a.ReadU64(head + 8)
	if err != nil {
		return err
	}
	if err := a.WriteU64(entry, head); err != nil { // entry.Flink = head
		return err
	}
	if err := a.WriteU64(entry+8, blink); err != nil { // entry.Blink = old tail
		return err
	}
	if err := a.WriteU64(blink, entry); err != nil { // old tail.Flink = entry
		return err
	}
	return a.WriteU64(head+8, entry) // head.Blink = entry
}

// ListRemove unlinks entry from whatever list it is on. This is the DKOM
// primitive: after removal the entry's own pointers are made
// self-referential (the FU rootkit does the same so that the hidden
// process does not crash the dispatcher).
func (a *Arena) ListRemove(entry uint64) error {
	flink, err := a.ReadU64(entry)
	if err != nil {
		return err
	}
	blink, err := a.ReadU64(entry + 8)
	if err != nil {
		return err
	}
	if err := a.WriteU64(blink, flink); err != nil {
		return err
	}
	if err := a.WriteU64(flink+8, blink); err != nil {
		return err
	}
	if err := a.WriteU64(entry, entry); err != nil {
		return err
	}
	return a.WriteU64(entry+8, entry)
}

// ListWalk returns the addresses of all entries on the circular list at
// head, excluding the head itself. It guards against corrupt or cyclic
// lists by refusing to walk more than maxEntries entries.
func (a *Arena) ListWalk(head uint64, maxEntries int) ([]uint64, error) {
	var out []uint64
	cur, err := a.ReadU64(head)
	if err != nil {
		return nil, err
	}
	for cur != head {
		if len(out) >= maxEntries {
			return nil, fmt.Errorf("kmem: list at %#x exceeds %d entries (corrupt?)", head, maxEntries)
		}
		out = append(out, cur)
		cur, err = a.ReadU64(cur)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Reader is the read-only view shared by the live arena and parsed crash
// dumps, so the same traversal code scans both (the paper applies
// "similar kernel data structure traversal code to the dump file").
type Reader interface {
	ReadU64(addr uint64) (uint64, error)
	ReadU32(addr uint64) (uint32, error)
	ReadBytes(addr uint64, n int) ([]byte, error)
	ReadCString(addr uint64, maxLen int) (string, error)
}

var _ Reader = (*Arena)(nil)

// ImageReader adapts a raw memory image (e.g. extracted from a crash
// dump) to the Reader interface.
type ImageReader struct {
	img []byte
}

// NewImageReader wraps a raw arena image.
func NewImageReader(img []byte) *ImageReader { return &ImageReader{img: img} }

// Size returns the image length in bytes, so pool-carving scans can
// bound their sweep over a dump the same way they bound it over the
// live arena.
func (r *ImageReader) Size() int { return len(r.img) }

var _ Reader = (*ImageReader)(nil)

func (r *ImageReader) offset(addr uint64, size int) (uint64, error) {
	if addr < Base {
		return 0, &ErrBadAddress{Addr: addr, Size: size}
	}
	off := addr - Base
	if off+uint64(size) > uint64(len(r.img)) || size < 0 {
		return 0, &ErrBadAddress{Addr: addr, Size: size}
	}
	return off, nil
}

// ReadU64 reads a 64-bit little-endian value at addr.
func (r *ImageReader) ReadU64(addr uint64) (uint64, error) {
	off, err := r.offset(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(r.img[off:]), nil
}

// ReadU32 reads a 32-bit little-endian value at addr.
func (r *ImageReader) ReadU32(addr uint64) (uint32, error) {
	off, err := r.offset(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(r.img[off:]), nil
}

// ReadBytes copies n bytes starting at addr.
func (r *ImageReader) ReadBytes(addr uint64, n int) ([]byte, error) {
	off, err := r.offset(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, r.img[off:])
	return out, nil
}

// ReadCString reads a NUL-padded byte string of at most maxLen bytes.
func (r *ImageReader) ReadCString(addr uint64, maxLen int) (string, error) {
	b, err := r.ReadBytes(addr, maxLen)
	if err != nil {
		return "", err
	}
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), nil
		}
	}
	return string(b), nil
}

// WalkList is ListWalk generalized over any Reader, used by both live
// scans and crash-dump analysis.
func WalkList(r Reader, head uint64, maxEntries int) ([]uint64, error) {
	var out []uint64
	cur, err := r.ReadU64(head)
	if err != nil {
		return nil, err
	}
	for cur != head {
		if len(out) >= maxEntries {
			return nil, fmt.Errorf("kmem: list at %#x exceeds %d entries (corrupt?)", head, maxEntries)
		}
		out = append(out, cur)
		cur, err = r.ReadU64(cur)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
