// Package crosstime implements the Tripwire-style cross-TIME diff the
// paper contrasts with its cross-VIEW diff (§1): snapshot persistent
// state at two points in time and report what changed. It catches a
// broader class of malware (hiding or not) but "typically includes a
// significant number of false positives stemming from legitimate
// changes" — the ablation benchmarks quantify exactly that trade-off on
// the same machines.
package crosstime

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
)

// FileState is the integrity record for one file.
type FileState struct {
	Size     uint64
	Modified uint64
	Hash     uint64 // content hash (FNV-1a), 0 for directories
}

// Checkpoint is one point-in-time integrity snapshot.
type Checkpoint struct {
	Taken time.Duration
	Files map[string]FileState // upper-cased full path
}

// TakeCheckpoint records the integrity state of every file. Like
// Tripwire, it assumes the system is trustworthy at baseline time; it
// reads the raw MFT so the snapshot itself is hiding-proof.
func TakeCheckpoint(m *machine.Machine) (*Checkpoint, error) {
	var raw []ntfs.RawEntry
	err := m.Disk.WithDevice(func(dev []byte) error {
		var err error
		raw, _, err = ntfs.RawScan(dev)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("crosstime: checkpoint scan: %w", err)
	}
	cp := &Checkpoint{Taken: m.Clock.Now(), Files: make(map[string]FileState, len(raw))}
	for _, e := range raw {
		full := strings.ToUpper(machine.FullPath(e.Path))
		st := FileState{Size: e.Size, Modified: e.Modified}
		if !e.Dir {
			if data, err := m.Disk.ReadFile(e.Path); err == nil {
				st.Hash = fnv1a(data)
			}
		}
		cp.Files[full] = st
	}
	// Hashing every file costs real disk time.
	m.Clock.ChargeBytes(int64(float64(len(raw))*m.Profile.RepFileFactor())*4096, 25<<20)
	return cp, nil
}

// Change is one cross-time difference.
type Change struct {
	Path string
	Kind string // "added", "removed", "modified"
}

// Report is the outcome of comparing two checkpoints.
type Report struct {
	Added    []Change
	Removed  []Change
	Modified []Change
}

// Total returns the total number of reported changes — the triage burden
// a cross-time user faces.
func (r *Report) Total() int { return len(r.Added) + len(r.Removed) + len(r.Modified) }

// Compare diffs two checkpoints taken at different times.
func Compare(before, after *Checkpoint) *Report {
	r := &Report{}
	for path, st := range after.Files {
		old, existed := before.Files[path]
		if !existed {
			r.Added = append(r.Added, Change{Path: path, Kind: "added"})
			continue
		}
		if old != st {
			r.Modified = append(r.Modified, Change{Path: path, Kind: "modified"})
		}
	}
	for path := range before.Files {
		if _, still := after.Files[path]; !still {
			r.Removed = append(r.Removed, Change{Path: path, Kind: "removed"})
		}
	}
	sortChanges(r.Added)
	sortChanges(r.Removed)
	sortChanges(r.Modified)
	return r
}

// PathsMatching returns every changed path (added, removed, or
// modified) whose upper-cased form contains frag. This is the
// cross-time counter to adaptive evasion: a ghost can lie to any
// point-in-time enumeration it can see coming, but its payload's
// arrival is still a difference between two raw checkpoints.
func (r *Report) PathsMatching(frag string) []string {
	frag = strings.ToUpper(frag)
	var out []string
	for _, set := range [][]Change{r.Added, r.Removed, r.Modified} {
		for _, c := range set {
			if strings.Contains(c.Path, frag) {
				out = append(out, c.Path)
			}
		}
	}
	sort.Strings(out)
	return out
}

func sortChanges(cs []Change) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Path < cs[j].Path })
}

func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}
