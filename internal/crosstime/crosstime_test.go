package crosstime

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func churnMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNoChangesOnIdleMachine(t *testing.T) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	cp1, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	if r := Compare(cp1, cp2); r.Total() != 0 {
		t.Errorf("idle machine changed: %+v", r)
	}
}

func TestDetectsAddRemoveModify(t *testing.T) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DropFile(`C:\doomed.txt`, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := m.DropFile(`C:\stable.txt`, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	cp1, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DropFile(`C:\new.txt`, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveFile(`C:\doomed.txt`); err != nil {
		t.Fatal(err)
	}
	if err := m.DropFile(`C:\stable.txt`, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	cp2, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(cp1, cp2)
	if len(r.Added) != 1 || !strings.Contains(r.Added[0].Path, "NEW.TXT") {
		t.Errorf("added = %+v", r.Added)
	}
	if len(r.Removed) != 1 || !strings.Contains(r.Removed[0].Path, "DOOMED.TXT") {
		t.Errorf("removed = %+v", r.Removed)
	}
	if len(r.Modified) != 1 || !strings.Contains(r.Modified[0].Path, "STABLE.TXT") {
		t.Errorf("modified = %+v", r.Modified)
	}
}

func TestContentChangeWithSameSizeDetected(t *testing.T) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DropFile(`C:\bin.dat`, []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	cp1, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	// Same size, same declared mtime semantics — content differs.
	if err := m.DropFile(`C:\bin.dat`, []byte("AAAB")); err != nil {
		t.Fatal(err)
	}
	cp2, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(cp1, cp2)
	if len(r.Modified) != 1 {
		t.Errorf("content hash should catch same-size change: %+v", r)
	}
}

// TestCrossTimeVsCrossViewFalsePositiveBurden is the paper's §1
// contrast: a day of normal churn makes the cross-time diff noisy while
// the cross-view diff stays at zero.
func TestCrossTimeVsCrossViewFalsePositiveBurden(t *testing.T) {
	m := churnMachine(t)
	cp1, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunChurn(8 * 60); err != nil { // a working day
		t.Fatal(err)
	}
	cp2, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	timeDiff := Compare(cp1, cp2)
	if timeDiff.Total() < 10 {
		t.Errorf("cross-time diff on a churny day = %d changes, expected many", timeDiff.Total())
	}
	viewReport, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(viewReport.Hidden) != 0 {
		t.Errorf("cross-view diff should be zero on the same machine: %+v", viewReport.Hidden)
	}
}

// TestCrossTimeCatchesNonHidingMalware: the flip side — cross-time
// catches malware that does NOT hide, which cross-view by design ignores.
func TestCrossTimeCatchesNonHidingMalware(t *testing.T) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	cp1, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	// A non-hiding backdoor: drops a file, hides nothing.
	if err := m.DropFile(`C:\WINDOWS\system32\openbackdoor.exe`, []byte("MZ visible")); err != nil {
		t.Fatal(err)
	}
	cp2, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(cp1, cp2)
	if len(r.Added) != 1 {
		t.Errorf("cross-time should flag the new binary: %+v", r.Added)
	}
	viewReport, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(viewReport.Hidden) != 0 {
		t.Error("cross-view targets only hiding; a visible backdoor is out of scope")
	}
}

// TestCheckpointSeesHiddenFiles: because the checkpoint reads the raw
// MFT, hidden malware files appear as cross-time additions too.
func TestCheckpointSeesHiddenFiles(t *testing.T) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	cp1, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ghostware.NewVanquish().Install(m); err != nil {
		t.Fatal(err)
	}
	cp2, err := TakeCheckpoint(m)
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(cp1, cp2)
	hidden := 0
	for _, c := range r.Added {
		if strings.Contains(c.Path, "VANQUISH") {
			hidden++
		}
	}
	if hidden != 3 {
		t.Errorf("cross-time additions include %d vanquish files, want 3", hidden)
	}
}
