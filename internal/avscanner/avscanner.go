// Package avscanner models a signature-based on-demand anti-virus
// scanner (the paper's eTrust / InocIT.exe). It enumerates files through
// the normal Win32 APIs — which is exactly why a resource-hiding rootkit
// defeats it even when its signatures are current: files that are never
// enumerated are never scanned (§5).
//
// Combined with the injection package this reproduces the paper's
// dilemma demo: hide from InocIT.exe and the injected GhostBuster diff
// flags you; show yourself and the signature engine flags you.
package avscanner

import (
	"bytes"
	"fmt"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// Signature is one known-bad content pattern.
type Signature struct {
	Name    string
	Pattern []byte
}

// Detection is one signature match.
type Detection struct {
	Path      string
	Signature string
}

// DefaultSignatures knows the corpus malware that drops recognizable
// content.
func DefaultSignatures() []Signature {
	return []Signature{
		{Name: "Win32/HackerDefender", Pattern: []byte("hxdef")},
		{Name: "Win32/Vanquish", Pattern: []byte("vanquish")},
		{Name: "Win32/Berbew", Pattern: []byte("berbew")},
		{Name: "Win32/AFXRootkit", Pattern: []byte("afx")},
		{Name: "Win32/Urbin", Pattern: []byte("trojan Urbin")},
	}
}

// Scanner is an installed AV product.
type Scanner struct {
	ProcessName string // the scanning process identity (InocIT.exe)
	Signatures  []Signature
}

// New installs the scanner's process on the machine and returns it.
func New(m *machine.Machine, sigs []Signature) (*Scanner, error) {
	const proc = "InocIT.exe"
	if _, err := m.Kern.PidByName(proc); err != nil {
		if _, err := m.StartProcess(proc, `C:\Program Files\eTrust\InocIT.exe`); err != nil {
			return nil, fmt.Errorf("avscanner: starting %s: %w", proc, err)
		}
	}
	return &Scanner{ProcessName: proc, Signatures: sigs}, nil
}

// OnDemandScan walks the filesystem through the Win32 API (as the
// scanner process) and matches file contents against the signatures.
// Files hidden from the enumeration are silently missed — that is the
// point.
func (s *Scanner) OnDemandScan(m *machine.Machine) ([]Detection, error) {
	call, err := m.CallAs(s.ProcessName)
	if err != nil {
		return nil, err
	}
	entries, err := m.API.WalkTreeWin32(call, machine.Drive)
	if err != nil {
		return nil, err
	}
	var out []Detection
	for _, e := range entries {
		if e.Dir {
			continue
		}
		det, err := s.scanOne(m, e)
		if err != nil {
			continue // unreadable file: skip, keep scanning
		}
		out = append(out, det...)
	}
	return out, nil
}

// ScanPaths scans specific files (e.g. the paths GhostBuster's diff just
// exposed) against the signatures, reading below the API layer so hiding
// cannot block the read.
func (s *Scanner) ScanPaths(m *machine.Machine, paths []string) ([]Detection, error) {
	var out []Detection
	for _, p := range paths {
		vp, err := machine.VolumePath(p)
		if err != nil {
			continue
		}
		data, err := m.Disk.ReadFile(vp)
		if err != nil {
			continue
		}
		for _, sig := range s.Signatures {
			if bytes.Contains(bytes.ToUpper(data), bytes.ToUpper(sig.Pattern)) {
				out = append(out, Detection{Path: p, Signature: sig.Name})
			}
		}
	}
	return out, nil
}

func (s *Scanner) scanOne(m *machine.Machine, e winapi.DirEntry) ([]Detection, error) {
	vp, err := machine.VolumePath(e.Path)
	if err != nil {
		return nil, err
	}
	data, err := m.Disk.ReadFile(vp)
	if err != nil {
		return nil, err
	}
	var out []Detection
	for _, sig := range s.Signatures {
		if bytes.Contains(bytes.ToUpper(data), bytes.ToUpper(sig.Pattern)) {
			out = append(out, Detection{Path: e.Path, Signature: sig.Name})
		}
	}
	return out, nil
}
