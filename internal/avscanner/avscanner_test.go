package avscanner

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func avMachine(t *testing.T) (*machine.Machine, *Scanner) {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, DefaultSignatures())
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestCleanMachineNoDetections(t *testing.T) {
	m, s := avMachine(t)
	dets, err := s.OnDemandScan(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("detections on clean machine: %+v", dets)
	}
}

func TestSignatureScanFindsUnhiddenMalware(t *testing.T) {
	m, s := avMachine(t)
	// Drop Hacker Defender files WITHOUT activating the rootkit: the
	// signatures catch them.
	if err := m.DropFile(`C:\drop\hxdef100.exe`, []byte("MZ hxdef payload")); err != nil {
		t.Fatal(err)
	}
	dets, err := s.OnDemandScan(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].Signature != "Win32/HackerDefender" {
		t.Errorf("detections = %+v", dets)
	}
}

// TestHidingDefeatsSignatureScan reproduces the §5 observation: "The
// scanner could not detect Hacker Defender, even though it did have the
// known-bad signatures."
func TestHidingDefeatsSignatureScan(t *testing.T) {
	m, s := avMachine(t)
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		t.Fatal(err)
	}
	dets, err := s.OnDemandScan(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dets {
		if d.Signature == "Win32/HackerDefender" {
			t.Errorf("signature scan should be blinded by hiding: %+v", d)
		}
	}
}

// TestInjectedGhostBusterRestoresDetection: running the cross-view diff
// *as InocIT.exe* exposes the hidden files, whose paths the signature
// engine then confirms — the paper's injection demo.
func TestInjectedGhostBusterRestoresDetection(t *testing.T) {
	m, s := avMachine(t)
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		t.Fatal(err)
	}
	d := core.NewDetector(m)
	d.AsProcess = s.ProcessName
	r, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) == 0 {
		t.Fatal("injected diff found nothing")
	}
	var paths []string
	for _, f := range r.Hidden {
		paths = append(paths, f.Display)
	}
	dets, err := s.ScanPaths(m, paths)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, det := range dets {
		if det.Signature == "Win32/HackerDefender" {
			found = true
		}
	}
	if !found {
		t.Errorf("signatures should confirm the exposed files: %+v", dets)
	}
}

// TestDilemma: if the rootkit exempts InocIT.exe from hiding (to evade
// the injected GhostBuster), the plain signature scan catches it.
func TestDilemma(t *testing.T) {
	m, s := avMachine(t)
	if err := ghostware.NewHackerDefenderExempting([]string{s.ProcessName}).Install(m); err != nil {
		t.Fatal(err)
	}
	// Horn 1: the injected GhostBuster diff (as InocIT.exe) sees nothing
	// hidden — InocIT sees the truth.
	d := core.NewDetector(m)
	d.AsProcess = s.ProcessName
	r, err := d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("exempted scanner should see no hiding: %+v", r.Hidden)
	}
	// Horn 2: but then the signature scan works.
	dets, err := s.OnDemandScan(m)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, det := range dets {
		if det.Signature == "Win32/HackerDefender" {
			found = true
		}
	}
	if !found {
		t.Error("signature scan should now catch the visible rootkit")
	}
	// Other processes still experience the hiding.
	d.AsProcess = "explorer.exe"
	r, err = d.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) == 0 {
		t.Error("hiding should still apply to non-exempt processes")
	}
	for _, f := range r.Hidden {
		if !strings.Contains(f.ID, "HXDEF") {
			t.Errorf("unexpected finding %s", f.ID)
		}
	}
}
