package fleetshard

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ghostbuster/internal/fleet"
	"ghostbuster/internal/supervise"
)

// wedgeOnce wraps a scan body so the victim host's first scan blocks on
// a gate until the test releases it — a wall-clock stall the watchdog
// must detect. Later scans of the same host (the failover re-scan on an
// adopter, or a resume) pass straight through, so the re-homed work
// produces the exact result an unwedged run would.
func wedgeOnce(victim string, base func(*fleet.Host, fleet.SweepKind) fleet.HostResult) (scan func(*fleet.Host, fleet.SweepKind) fleet.HostResult, release func()) {
	gate := make(chan struct{})
	var once, releaseOnce sync.Once
	scan = func(h *fleet.Host, kind fleet.SweepKind) fleet.HostResult {
		if h.Name == victim {
			first := false
			once.Do(func() { first = true })
			if first {
				<-gate
			}
		}
		return base(h, kind)
	}
	return scan, func() { releaseOnce.Do(func() { close(gate) }) }
}

func testWatchdog() supervise.Policy {
	return supervise.Policy{Deadline: 50 * time.Millisecond, Misses: 2}
}

// TestWatchdogFailoverPreservesMergedDigest is the tentpole invariant:
// a sweep with one shard wedged mid-flight (its only worker stuck in a
// scan that never returns) completes without restart — the watchdog
// cancels the wedged shard, survivors adopt its unfinished hosts while
// the sweep is still running, and the final merged digest is
// byte-identical to an uninterrupted run's, with every verification
// layer passing.
func TestWatchdogFailoverPreservesMergedDigest(t *testing.T) {
	const shards = 4
	src := SyntheticSource{N: 400}
	base := SyntheticScan(1)

	clean, err := New(Config{Shards: shards, ScanHost: base}, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	scan, release := wedgeOnce(src.Name(7), base)
	defer release()
	dir := t.TempDir()
	coord, err := New(Config{
		Shards: shards, JournalDir: dir, ScanHost: scan,
		Watchdog: testWatchdog(),
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	wedgedRows, failoverRows := 0, 0
	for _, sr := range rep.ShardResults {
		if sr.Wedged {
			wedgedRows++
			if sr.Err != "" {
				t.Errorf("wedged shard %d carries an error: %q", sr.Shard, sr.Err)
			}
			if sr.Summary == nil || !sr.Summary.Interrupted {
				t.Errorf("wedged shard %d summary not marked Interrupted", sr.Shard)
			}
		}
		if sr.Failover {
			failoverRows++
			if sr.Adopted == 0 {
				t.Errorf("failover row for shard %d adopted nothing", sr.Shard)
			}
		}
	}
	if wedgedRows != 1 {
		t.Fatalf("wedged rows = %d, want exactly 1", wedgedRows)
	}
	if failoverRows == 0 {
		t.Fatal("no failover rows — the wedged shard's hosts were never adopted")
	}
	if rep.Aborted {
		t.Errorf("wedge failover aborted the run: %s", rep.AbortReason)
	}
	if rep.Scanned != src.N || rep.NotScanned != 0 {
		t.Fatalf("scanned %d, not scanned %d — every host must complete", rep.Scanned, rep.NotScanned)
	}
	if rep.MergedDigest != want.MergedDigest {
		t.Errorf("wedged run sealed %.12s, uninterrupted run %.12s", rep.MergedDigest, want.MergedDigest)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("wedged run fails verification: %v", err)
	}
	release() // let the stuck scan finish before auditing journals
	if err := rep.VerifyJournals(dir); err != nil {
		t.Errorf("journal audit after wedge failover: %v", err)
	}

	// The wedge markers must be on disk for a later resume.
	markers, err := filepath.Glob(filepath.Join(dir, "*.gbj.wedged"))
	if err != nil || len(markers) == 0 {
		t.Errorf("no wedge markers written (err=%v)", err)
	}
}

// TestWatchdogFailoverUnjournaled: supervision works without journals —
// a wedged shard in an unjournaled sweep still fails over mid-flight
// and seals the reference digest.
func TestWatchdogFailoverUnjournaled(t *testing.T) {
	src := SyntheticSource{N: 300}
	base := SyntheticScan(1)
	clean, err := New(Config{Shards: 3, ScanHost: base}, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	scan, release := wedgeOnce(src.Name(11), base)
	defer release()
	coord, err := New(Config{Shards: 3, ScanHost: scan, Watchdog: testWatchdog()}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != src.N || rep.MergedDigest != want.MergedDigest {
		t.Errorf("unjournaled wedge: scanned %d, digest %.12s (want %d, %.12s)",
			rep.Scanned, rep.MergedDigest, src.N, want.MergedDigest)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("report fails verification: %v", err)
	}
}

// TestWedgeCrashResumeReproducesMergedDigest: crash after a wedge but
// before (or while) the adopters ran — simulated by completing a wedged
// sweep and deleting every recovery journal. Resume must read the wedge
// markers: the wedged journal replays without re-scanning its committed
// hosts, the marker's unfinished hosts re-hash onto the same survivors,
// and the final digest equals the uninterrupted run's.
func TestWedgeCrashResumeReproducesMergedDigest(t *testing.T) {
	const shards = 4
	src := SyntheticSource{N: 400}
	base := SyntheticScan(1)

	clean, err := New(Config{Shards: shards, ScanHost: base}, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	scan, release := wedgeOnce(src.Name(7), base)
	dir := t.TempDir()
	coord, err := New(Config{
		Shards: shards, JournalDir: dir, ScanHost: scan,
		Watchdog: testWatchdog(),
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sweep(); err != nil {
		t.Fatal(err)
	}
	release()

	// The crash: every recovery journal the live failover created is
	// lost; only the sealed primaries and the wedge markers survive.
	recov, err := filepath.Glob(filepath.Join(dir, "*.recover*.gbj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recov) == 0 {
		t.Fatal("wedged sweep left no recovery journals — nothing to crash")
	}
	for _, p := range recov {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := New(Config{Shards: shards, JournalDir: dir, ScanHost: base}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != src.N || rep.NotScanned != 0 {
		t.Fatalf("resume scanned %d, not scanned %d", rep.Scanned, rep.NotScanned)
	}
	if rep.Replayed == 0 {
		t.Error("resume replayed nothing — sealed journals were ignored")
	}
	if rep.MergedDigest != want.MergedDigest {
		t.Errorf("resumed digest %.12s != uninterrupted %.12s", rep.MergedDigest, want.MergedDigest)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("resumed report fails verification: %v", err)
	}
	if err := rep.VerifyJournals(dir); err != nil {
		t.Errorf("journal audit after wedge-crash resume: %v", err)
	}
}

// TestResumeOfCompletedWedgeRunReplaysEverything: resuming a journal
// dir whose wedge failover already completed must not re-scan anything
// — every journal (wedged primaries replay-only, survivors and recovery
// journals in full) replays, and the digest still matches.
func TestResumeOfCompletedWedgeRunReplaysEverything(t *testing.T) {
	src := SyntheticSource{N: 300}
	base := SyntheticScan(1)
	scan, release := wedgeOnce(src.Name(3), base)
	dir := t.TempDir()
	coord, err := New(Config{
		Shards: 3, JournalDir: dir, ScanHost: scan, Watchdog: testWatchdog(),
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	first, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	release()

	rescanned := 0
	resumed, err := New(Config{
		Shards: 3, JournalDir: dir,
		ScanHost: func(h *fleet.Host, kind fleet.SweepKind) fleet.HostResult {
			rescanned++
			return base(h, kind)
		},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if rescanned != 0 {
		t.Errorf("resume of a completed run re-scanned %d hosts", rescanned)
	}
	if rep.Scanned != src.N || rep.MergedDigest != first.MergedDigest {
		t.Errorf("full replay: scanned %d, digest %.12s (want %d, %.12s)",
			rep.Scanned, rep.MergedDigest, src.N, first.MergedDigest)
	}
}

// TestWedgeWithNoSurvivorsStaysLoud: a single-shard fleet has nowhere
// to fail over — the wedged shard's unfinished hosts must stay visibly
// NotScanned (never silently dropped) and the row must carry the error.
func TestWedgeWithNoSurvivorsStaysLoud(t *testing.T) {
	src := SyntheticSource{N: 40}
	scan, release := wedgeOnce(src.Name(0), SyntheticScan(1))
	defer release()
	coord, err := New(Config{Shards: 1, ScanHost: scan, Watchdog: testWatchdog()}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NotScanned == 0 {
		t.Error("wedge with no survivors reported nothing NotScanned")
	}
	if rep.Scanned+rep.NotScanned != src.N {
		t.Errorf("scanned %d + not scanned %d != %d", rep.Scanned, rep.NotScanned, src.N)
	}
	found := false
	for _, sr := range rep.ShardResults {
		if sr.Wedged && sr.Err != "" {
			found = true
		}
	}
	if !found {
		t.Error("no wedged row carries the no-survivors error")
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("report fails verification: %v", err)
	}
}
