// Package fleetshard is the two-tier fleet control plane: a Coordinator
// consistent-hashes hosts across N sweeper shards, each shard running
// the journaled fleet.Manager, with per-shard results folded into a
// streaming fleet-of-fleets report. The package exists so a simulated
// million-host sweep completes in bounded memory — no more than
// O(shards + in-flight hosts) results are ever resident — and so losing
// any subset of shards is recoverable: surviving shards replay their
// own journals, lost shards' hosts are re-hashed across the survivors,
// and the merged (fourth-layer) digest provably equals the
// uninterrupted run's.
package fleetshard

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per shard. More vnodes mean a
// smoother host distribution (and a tighter near-linear scaling curve);
// 128 keeps the max/mean shard load within a few percent at fleet
// scale while the ring stays a few thousand points.
const defaultVNodes = 128

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over a set of shard ids. Assignment is
// deterministic and total: every host name maps to exactly one shard,
// and removing a shard moves only that shard's hosts (the defining
// consistent-hashing property the rebalance tests pin).
type Ring struct {
	vnodes int
	ids    []int
	points []ringPoint
}

// NewRing builds a ring over shard ids 0..shards-1.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("fleetshard: ring needs at least one shard (got %d)", shards)
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	return newRingFrom(ids, vnodes)
}

// newRingFrom builds a ring over an explicit shard id set.
func newRingFrom(ids []int, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("fleetshard: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &Ring{vnodes: vnodes, ids: append([]int(nil), ids...)}
	sort.Ints(r.ids)
	r.points = make([]ringPoint, 0, len(ids)*vnodes)
	var scratch [32]byte
	for _, id := range r.ids {
		for v := 0; v < vnodes; v++ {
			key := append(scratch[:0], "shard/"...)
			key = appendInt(key, id)
			key = append(key, "/vnode/"...)
			key = appendInt(key, v)
			r.points = append(r.points, ringPoint{hash: mix64(hash64(key)), shard: id})
		}
	}
	// Ties broken by shard id so the ring is deterministic regardless of
	// insertion order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Assign maps a host name to its shard: the first virtual node at or
// after the host's hash, wrapping at the top of the circle.
func (r *Ring) Assign(host string) int {
	h := mix64(hashString(host))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Without returns a ring with the lost shards removed. Surviving
// shards keep their exact virtual nodes, so every host previously
// assigned to a survivor stays put; only the lost shards' hosts move.
func (r *Ring) Without(lost map[int]bool) (*Ring, error) {
	var keep []int
	for _, id := range r.ids {
		if !lost[id] {
			keep = append(keep, id)
		}
	}
	return newRingFrom(keep, r.vnodes)
}

// Shards returns the shard ids on the ring, sorted.
func (r *Ring) Shards() []int { return append([]int(nil), r.ids...) }

// FNV-1a, inlined so a million Assign calls cost zero allocations:
// fast, stable across runs and platforms, good enough spread for vnode
// placement.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hash64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is a 64-bit finalizer (splitmix64's): sequential FNV outputs —
// vnode keys and zero-padded host names differ in a handful of low
// bytes — cluster on the circle without it, skewing shard loads past
// the balance bound the tests pin.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// appendInt appends the decimal form of a small non-negative int
// without an allocation.
func appendInt(b []byte, n int) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}
