package fleetshard

import (
	"fmt"
	"testing"
)

func ringHosts(n int) []string {
	hosts := make([]string, n)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("host-%07d", i)
	}
	return hosts
}

// TestRingAssignmentIsAPartition: every host maps to exactly one live
// shard, and the per-shard lists cover the fleet with no overlap — the
// "no host ever assigned to two shards" half of the rebalance contract.
func TestRingAssignmentIsAPartition(t *testing.T) {
	const shards = 16
	ring, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	hosts := ringHosts(10000)
	owner := map[string]int{}
	counts := map[int]int{}
	for _, h := range hosts {
		s := ring.Assign(h)
		if s < 0 || s >= shards {
			t.Fatalf("host %s assigned to shard %d, outside [0,%d)", h, s, shards)
		}
		if prev, dup := owner[h]; dup && prev != s {
			t.Fatalf("host %s assigned to shards %d and %d", h, prev, s)
		}
		owner[h] = s
		counts[s]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(hosts) {
		t.Fatalf("partition covers %d hosts, want %d", total, len(hosts))
	}
	// Re-assigning must be a pure function of the name.
	for _, h := range hosts {
		if ring.Assign(h) != owner[h] {
			t.Fatalf("host %s moved between identical Assign calls", h)
		}
	}
}

// TestRingDeterministicAcrossConstruction: two rings built from the
// same parameters agree on every assignment — required for resume,
// where the coordinator reconstructs the ring from the manifest.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a, err := NewRing(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ringHosts(2000) {
		if a.Assign(h) != b.Assign(h) {
			t.Fatalf("rings built from identical parameters disagree on %s", h)
		}
	}
}

// TestRingRemovalMovesOnlyLostHosts: dropping shards via Without moves
// exactly the lost shards' hosts — survivors keep every host they had.
// This is the property that makes resume-after-shard-loss sound: no
// committed (surviving-shard) work is ever re-assigned.
func TestRingRemovalMovesOnlyLostHosts(t *testing.T) {
	ring, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	hosts := ringHosts(20000)
	before := make(map[string]int, len(hosts))
	for _, h := range hosts {
		before[h] = ring.Assign(h)
	}
	lost := map[int]bool{2: true, 5: true}
	survivor, err := ring.Without(lost)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, h := range hosts {
		after := survivor.Assign(h)
		if lost[after] {
			t.Fatalf("host %s assigned to lost shard %d", h, after)
		}
		if lost[before[h]] {
			moved++
			continue
		}
		if after != before[h] {
			t.Fatalf("host %s moved from surviving shard %d to %d — survivors must keep their hosts", h, before[h], after)
		}
	}
	lostCount := 0
	for _, h := range hosts {
		if lost[before[h]] {
			lostCount++
		}
	}
	if moved != lostCount {
		t.Fatalf("moved %d hosts, want exactly the lost shards' %d", moved, lostCount)
	}
}

// TestRingAddRemoveRebalanceBound: growing N→N+1 shards (or shrinking
// back) moves roughly 1/(N+1) of the fleet — pinned at 2× the ideal
// fraction, the consistent-hashing guarantee that makes re-sharding a
// million-host fleet incremental instead of a full reshuffle.
func TestRingAddRemoveRebalanceBound(t *testing.T) {
	hosts := ringHosts(20000)
	for _, n := range []int{4, 8, 16} {
		small, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		big, err := NewRing(n+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, h := range hosts {
			if small.Assign(h) != big.Assign(h) {
				moved++
			}
		}
		ideal := float64(len(hosts)) / float64(n+1)
		if float64(moved) > 2*ideal {
			t.Errorf("%d→%d shards moved %d hosts; bound is 2× ideal %.0f", n, n+1, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("%d→%d shards moved no hosts — the new shard got nothing", n, n+1)
		}
	}
}

// TestRingBalance: with the default vnode count no shard carries more
// than twice the mean load. Looser than the rebalance bound on purpose:
// FNV spread over 128 vnodes is good, not perfect.
func TestRingBalance(t *testing.T) {
	const shards = 16
	ring, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	hosts := ringHosts(50000)
	for _, h := range hosts {
		counts[ring.Assign(h)]++
	}
	mean := float64(len(hosts)) / shards
	for s, c := range counts {
		if float64(c) > 2*mean {
			t.Errorf("shard %d carries %d hosts, more than 2× the mean %.0f", s, c, mean)
		}
		if c == 0 {
			t.Errorf("shard %d carries no hosts", s)
		}
	}
}

// TestRingRejectsEmpty: a ring with no shards is a configuration
// error, not a panic site.
func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Error("NewRing(0) succeeded")
	}
	ring, err := NewRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ring.Without(map[int]bool{0: true, 1: true}); err == nil {
		t.Error("Without(everything) succeeded — must refuse an empty ring")
	}
}
