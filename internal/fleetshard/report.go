// Sealing and verification for the fleet-of-fleets report: the fourth
// layer of the evidence chain. Layer 1 is each scan report's canonical
// digest (core.Report.Digest), layer 2 each host result's content hash
// (fleet.ResultHash), layer 3 each shard summary's digest
// (fleet.SweepSummary.Digest), and layer 4 is here — the cross-shard
// report digest over the shard breakdown plus the topology-independent
// MergedDigest over the aggregate verdict and the host-contribution
// accumulator.
package fleetshard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ghostbuster/internal/fleet"
	"ghostbuster/internal/journal"
)

// mergedDigestBody is the canonical form MergedDigest covers: the
// aggregate verdict and the accumulator sum — nothing about which shard
// scanned which host, so an uninterrupted run and a resume that
// re-hashed lost shards' hosts seal identically when every host
// produced the same verdict.
type mergedDigestBody struct {
	Kind             fleet.SweepKind `json:"kind"`
	Hosts            int             `json:"hosts"`
	Scanned          int             `json:"scanned"`
	Infected         int             `json:"infected"`
	HiddenTotal      int             `json:"hiddenTotal"`
	Failed           int             `json:"failed"`
	DegradedHosts    int             `json:"degradedHosts"`
	QuarantinedHosts int             `json:"quarantinedHosts"`
	NotScanned       int             `json:"notScanned,omitempty"`
	Aborted          bool            `json:"aborted,omitempty"`
	Acc              string          `json:"acc"`
}

// shardDigestRow is one shard's contribution to the full (layer-4)
// report digest: identity and verdict, never timing or provenance.
type shardDigestRow struct {
	Shard       int    `json:"shard"`
	Hosts       int    `json:"hosts"`
	Digest      string `json:"digest,omitempty"` // the shard summary's seal
	Lost        bool   `json:"lost,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	Err         string `json:"error,omitempty"`
}

// reportDigestBody is the canonical form the full report digest covers.
type reportDigestBody struct {
	Merged mergedDigestBody `json:"merged"`
	Shards []shardDigestRow `json:"shards"`
	Abort  string           `json:"abortReason,omitempty"`
}

// mergedAcc folds every shard summary's accumulator into the
// fleet-wide one.
func mergedAcc(r *Report) fleet.Accumulator {
	var acc fleet.Accumulator
	for _, sr := range r.ShardResults {
		if sr.Summary != nil {
			acc.Merge(sr.Summary.Acc)
		}
	}
	return acc
}

func (r *Report) mergedBody() mergedDigestBody {
	return mergedDigestBody{
		Kind: r.Kind, Hosts: r.Hosts, Scanned: r.Scanned,
		Infected: r.Infected, HiddenTotal: r.HiddenTotal,
		Failed: r.Failed, DegradedHosts: r.DegradedHosts,
		QuarantinedHosts: r.QuarantinedHosts, NotScanned: r.NotScanned,
		Aborted: r.Aborted, Acc: r.Acc.Sum(),
	}
}

// ComputeMergedDigest returns the topology-independent fourth-layer
// digest: the invariant a crash-resume run must reproduce exactly.
func (r *Report) ComputeMergedDigest() string {
	data, err := json.Marshal(r.mergedBody())
	if err != nil {
		panic(fmt.Sprintf("fleetshard: merged digest marshal: %v", err))
	}
	return journal.Hash(data)
}

// ComputeDigest returns the full report digest over the merged body and
// the per-shard breakdown.
func (r *Report) ComputeDigest() string {
	body := reportDigestBody{Merged: r.mergedBody(), Abort: r.AbortReason}
	for _, sr := range r.ShardResults {
		row := shardDigestRow{Shard: sr.Shard, Hosts: sr.Hosts, Lost: sr.Lost,
			Quarantined: sr.Quarantined, Err: sr.Err}
		if sr.Summary != nil {
			row.Digest = sr.Summary.Digest
		}
		body.Shards = append(body.Shards, row)
	}
	data, err := json.Marshal(body)
	if err != nil {
		panic(fmt.Sprintf("fleetshard: report digest marshal: %v", err))
	}
	return journal.Hash(data)
}

// Seal stamps both digests.
func (r *Report) Seal() {
	r.MergedDigest = r.ComputeMergedDigest()
	r.Digest = r.ComputeDigest()
}

// Verify checks the cross-shard digest layer end to end: every shard
// summary's seal, the aggregate counters against the summaries they
// claim to aggregate, the merged accumulator, and both report digests.
// Any mutation after sealing fails here.
func (r *Report) Verify() error {
	if r.Digest == "" || r.MergedDigest == "" {
		return fmt.Errorf("fleetshard: report is unsealed")
	}
	var agg Report
	for _, sr := range r.ShardResults {
		if sr.Summary == nil {
			continue
		}
		if err := sr.Summary.VerifyDigest(); err != nil {
			return fmt.Errorf("fleetshard: shard %d: %w", sr.Shard, err)
		}
		s := sr.Summary
		agg.Scanned += s.Scanned
		agg.Infected += s.Infected
		agg.HiddenTotal += s.HiddenTotal
		agg.Failed += s.Failed
		agg.DegradedHosts += s.DegradedHosts
		agg.QuarantinedHosts += s.Quarantined
	}
	if agg.Scanned != r.Scanned || agg.Infected != r.Infected || agg.HiddenTotal != r.HiddenTotal ||
		agg.Failed != r.Failed || agg.DegradedHosts != r.DegradedHosts || agg.QuarantinedHosts != r.QuarantinedHosts {
		return fmt.Errorf("fleetshard: aggregate counters do not match the shard summaries — report altered after sealing")
	}
	if got := mergedAcc(r); got.Sum() != r.Acc.Sum() {
		return fmt.Errorf("fleetshard: merged accumulator does not match the shard accumulators")
	}
	if got := r.ComputeMergedDigest(); got != r.MergedDigest {
		return fmt.Errorf("fleetshard: merged digest mismatch: sealed %.12s, content hashes %.12s", r.MergedDigest, got)
	}
	if got := r.ComputeDigest(); got != r.Digest {
		return fmt.Errorf("fleetshard: report digest mismatch: sealed %.12s, content hashes %.12s", r.Digest, got)
	}
	return nil
}

// VerifyJournals is the deep audit: it replays every shard journal
// under dir (primary and recovery), verifies each committed host result
// down the whole chain — layer-2 content hash, then every layer-1 scan
// report digest — checks that no host committed twice across the
// journal set, and re-folds the accumulator from the journals to prove
// it matches the sealed report. The audit holds O(hosts) hashes (a seen
// set), not O(hosts) results; it is a forensic tool, not the sweep hot
// path.
func (r *Report) VerifyJournals(dir string) error {
	if err := r.Verify(); err != nil {
		return err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.gbj"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("fleetshard: no shard journals under %s", dir)
	}
	sort.Strings(paths)
	var acc fleet.Accumulator
	scanned := 0
	seen := map[string]bool{}
	for _, path := range paths {
		recs, dropped, err := journal.Read(path)
		if err != nil {
			return fmt.Errorf("fleetshard: %s: %w", filepath.Base(path), err)
		}
		if dropped != 0 {
			return fmt.Errorf("fleetshard: %s carries a torn tail (%d bytes) after the sweep completed", filepath.Base(path), dropped)
		}
		for _, rec := range recs {
			if !rec.State.Terminal() {
				continue
			}
			var res fleet.HostResult
			if err := json.Unmarshal(rec.Result, &res); err != nil {
				return fmt.Errorf("fleetshard: %s: result for %s unparseable: %w", filepath.Base(path), rec.Host, err)
			}
			if got := fleet.ResultHash(res); got != rec.ResultHash || rec.ResultHash == "" {
				return fmt.Errorf("fleetshard: %s: host %s result fails hash verification", filepath.Base(path), rec.Host)
			}
			for _, rep := range res.Reports {
				if err := rep.VerifyDigest(); err != nil {
					return fmt.Errorf("fleetshard: %s: host %s: %w", filepath.Base(path), rec.Host, err)
				}
			}
			if seen[rec.Host] {
				return fmt.Errorf("fleetshard: host %s committed in two journals — a host must belong to exactly one shard", rec.Host)
			}
			seen[rec.Host] = true
			acc.Fold(rec.Host, rec.ResultHash)
			scanned++
		}
	}
	if scanned != r.Scanned {
		return fmt.Errorf("fleetshard: journals commit %d hosts, report claims %d", scanned, r.Scanned)
	}
	if acc.Sum() != r.Acc.Sum() {
		return fmt.Errorf("fleetshard: accumulator re-folded from journals does not match the sealed report")
	}
	return nil
}

// Degraded reports whether any part of the fleet's verdict is weaker
// than a clean full scan: failed or quarantined hosts, quarantined
// shards, degraded scans, or hosts never visited. Lost-and-recovered
// shards alone do not degrade the verdict — their hosts were re-scanned
// in full.
func (r *Report) Degraded() bool {
	return r.Failed > 0 || r.DegradedHosts > 0 || r.QuarantinedHosts > 0 ||
		r.NotScanned > 0 || len(r.QuarantinedShards) > 0
}

// WriteJSON renders the report for the management console.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
