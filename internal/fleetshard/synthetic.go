// Synthetic fleets: deterministic host sources and scan bodies for
// exercising the control plane at million-host scale. The shard
// scheduler, streaming aggregation, journaling, and digest chain are
// all real; only the per-host scan is replaced by a seeded synthetic
// verdict, so a 1M-host sweep costs microseconds per host instead of a
// full simulated-machine build — the per-host scan engine has its own
// benchmarks (cold/warm sweep, diff microbench).
package fleetshard

import (
	"fmt"
	"time"

	"ghostbuster/internal/fleet"
	"ghostbuster/internal/machine"
)

// SyntheticSource names n hosts with no machines behind them; it is
// only usable with a synthetic ScanHost.
type SyntheticSource struct {
	N      int
	Prefix string // host name prefix; empty means "host-"
}

func (s SyntheticSource) Len() int { return s.N }

func (s SyntheticSource) Name(i int) string {
	p := s.Prefix
	if p == "" {
		p = "host-"
	}
	return fmt.Sprintf("%s%07d", p, i)
}

func (s SyntheticSource) Build(i int) (*machine.Machine, error) {
	return nil, fmt.Errorf("fleetshard: synthetic host %s has no machine (set Config.ScanHost)", s.Name(i))
}

// SyntheticScan returns a deterministic scan body: each host's virtual
// cost and infection verdict derive from its name and the seed, so the
// same fleet yields byte-identical summaries and digests on every run,
// under any shard topology — exactly what the scaling curve and the
// crash-resume equality checks need.
func SyntheticScan(seed int64) func(h *fleet.Host, kind fleet.SweepKind) fleet.HostResult {
	return func(h *fleet.Host, kind fleet.SweepKind) fleet.HostResult {
		x := hashString(h.Name) ^ uint64(seed)*fnvPrime64
		// Mix once more so consecutive names don't share low bits.
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		res := fleet.HostResult{Host: h.Name, Kind: kind}
		// Virtual scan cost: 1–17ms, the spread a small fleet of mixed
		// desktops shows between cache-warm and churned hosts.
		res.Elapsed = time.Duration(1+x%17) * time.Millisecond
		// ~1% of hosts carry planted ghostware.
		if x%97 == 0 {
			res.Infected = true
			res.Hidden = 1 + int(x>>8%7)
		}
		return res
	}
}
