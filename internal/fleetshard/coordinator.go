// The Coordinator: tier two of the fleet-of-fleets control plane. It
// partitions hosts across sweeper shards with the consistent-hash ring,
// drives each shard's journaled fleet.Manager with bounded shard
// parallelism, folds the shards' streamed summaries into one merged
// report, and applies the shard-level reliability controls — retry with
// the shared saturating backoff, a per-shard circuit breaker, and a
// fleet-of-fleets error budget — one level above the per-host versions
// in internal/fleet.
package fleetshard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/machine"
)

// HostSource names and (lazily) builds the fleet's hosts. Sources must
// be deterministic: Resume rebuilds lost hosts from scratch and their
// re-scanned results must hash identically to the uninterrupted run's.
type HostSource interface {
	// Len is the total host count.
	Len() int
	// Name returns host i's stable name. Names must be unique.
	Name(i int) string
	// Build constructs host i's machine. Called on demand when the
	// host's scan starts; the shard releases the machine afterwards.
	Build(i int) (*machine.Machine, error)
}

// Config tunes a Coordinator. The host-level knobs are forwarded to
// every shard's fleet.Manager; the shard-level knobs mirror them one
// tier up.
type Config struct {
	// Kind is the sweep flavor; empty means fleet.SweepInside.
	Kind fleet.SweepKind
	// Shards is the sweeper shard count (required, >= 1).
	Shards int
	// VNodes is the consistent-hash virtual-node count per shard;
	// 0 means the package default.
	VNodes int
	// ShardParallelism bounds how many shards sweep concurrently;
	// 0 means runtime.GOMAXPROCS(0).
	ShardParallelism int
	// ShardWorkers is each shard manager's worker-pool size; 0 means 1
	// (a shard models one sweeper process).
	ShardWorkers int
	// JournalDir, when set, holds one journal per shard plus the
	// coordinator manifest; sweeps are then resumable after losing any
	// subset of shards. Empty disables journaling (and resume).
	JournalDir string

	// Host-level knobs, forwarded verbatim to each shard manager.
	HostParallelism           int
	MaxRetries                int
	RetryBackoff              time.Duration
	HostDeadline              time.Duration
	BreakerThreshold          int
	AbortAfterFailureFraction float64

	// ShardMaxRetries re-runs a failed shard sweep this many extra
	// times, with a doubling backoff capped by the same saturation rule
	// as host retries (fleet.NextBackoff).
	ShardMaxRetries int
	// ShardRetryBackoff is the first shard retry wait; 0 means 2s.
	ShardRetryBackoff time.Duration
	// ShardBreakerThreshold quarantines a shard after this many
	// consecutive failed sweep attempts — BreakerThreshold one level
	// up. Zero disables it.
	ShardBreakerThreshold int
	// AbortAfterShardFailureFraction aborts the whole run once more
	// than this fraction of shards has failed or been quarantined —
	// AbortAfterFailureFraction one level up. Zero disables it.
	AbortAfterShardFailureFraction float64

	// ConfigureDetector is forwarded to every shard manager (see
	// fleet.Manager.ConfigureDetector): the seam scan-policy profiles
	// reach sharded per-host scans through. May be nil.
	ConfigureDetector func(d *core.Detector)
	// ScanHost is the simulation seam forwarded to shard managers (see
	// fleet.Manager.ScanHost). Production sweeps leave it nil.
	ScanHost func(h *fleet.Host, kind fleet.SweepKind) fleet.HostResult
	// OnResult streams every committed host result (shard id attached)
	// to the caller as it happens; the coordinator itself never retains
	// results. May be nil.
	OnResult func(shard int, res fleet.HostResult)
	// ShardFault injects an infrastructure failure into a shard sweep
	// attempt (chaos/testing seam): a non-nil error fails the attempt
	// before any host is scanned.
	ShardFault func(shard, attempt int) error
	// Resident, when set, is the shared bounded-memory gauge; the
	// coordinator creates one per run otherwise.
	Resident *fleet.ResidentGauge
}

// defaultShardRetryBackoff mirrors the fleet manager's default.
const defaultShardRetryBackoff = 2 * time.Second

// manifestName is the coordinator manifest file inside JournalDir.
const manifestName = "coordinator.json"

// manifest records the sweep topology so Resume can validate that the
// rebuilt fleet matches the journaled one. Host names are not listed —
// at a million hosts that would defeat the bounded-memory point; the
// per-shard journal headers carry each shard's exact host set.
type manifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Shards  int    `json:"shards"`
	VNodes  int    `json:"vnodes"`
	Hosts   int    `json:"hosts"`
}

// ShardResult is one shard's row in the fleet-of-fleets report.
type ShardResult struct {
	Shard int `json:"shard"`
	// Hosts is how many hosts the shard was responsible for this run
	// (primary assignment plus adopted hosts).
	Hosts int `json:"hosts"`
	// Summary is the shard's streamed sweep summary (nil if the shard
	// never produced one: lost, quarantined, failed, or unvisited).
	Summary *fleet.SweepSummary `json:"summary,omitempty"`
	// Adopted counts hosts re-hashed onto this shard from lost shards.
	Adopted int `json:"adopted,omitempty"`
	// Lost marks a shard whose journal did not survive; its hosts were
	// re-hashed across the survivors.
	Lost bool `json:"lost,omitempty"`
	// Resumed marks a shard that replayed its own journal.
	Resumed bool `json:"resumed,omitempty"`
	// Quarantined marks a shard whose circuit breaker opened.
	Quarantined bool   `json:"quarantined,omitempty"`
	Err         string `json:"error,omitempty"`
	// Attempts and RetryNs account shard-level retries; like the host
	// versions they are bookkeeping, excluded from every digest.
	Attempts int   `json:"attempts,omitempty"`
	RetryNs  int64 `json:"retryNs,omitempty"`
}

// Report is the merged fleet-of-fleets outcome. Per-shard digests are
// the fourth layer of the verification chain (scan report -> host
// result -> shard summary -> cross-shard report), and MergedDigest is
// the topology-independent seal: any shard count, completion order, or
// resume-after-loss re-hashing yields the same MergedDigest as long as
// every host contributed the same verdict exactly once.
type Report struct {
	Kind   fleet.SweepKind `json:"kind"`
	Shards int             `json:"shards"`
	Hosts  int             `json:"hosts"`

	ShardResults []ShardResult `json:"shardResults"`
	// LostShards lists shards whose journals did not survive the crash,
	// sorted. Provenance, excluded from digests.
	LostShards []int `json:"lostShards,omitempty"`
	// QuarantinedShards lists shards whose breaker opened, sorted.
	QuarantinedShards []int `json:"quarantinedShards,omitempty"`

	// Aggregated host verdicts across every shard summary.
	Scanned          int `json:"scanned"`
	Infected         int `json:"infected"`
	HiddenTotal      int `json:"hiddenTotal"`
	Failed           int `json:"failed"`
	DegradedHosts    int `json:"degradedHosts"`
	QuarantinedHosts int `json:"quarantinedHosts"`
	Replayed         int `json:"replayed,omitempty"`
	NotScanned       int `json:"notScanned,omitempty"`

	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abortReason,omitempty"`

	// VirtualNs is the fleet's total virtual scan cost; MakespanNs is
	// the sweep's virtual completion time — shards sweep in parallel,
	// so the makespan is the max over shards (plus that shard's retry
	// backoff), the quantity the 1→64 scaling curve tracks.
	VirtualNs  int64 `json:"virtualNs"`
	MakespanNs int64 `json:"makespanNs"`
	// PeakResident is the bounded-memory high-water mark: the most host
	// results in flight or awaiting aggregation at any instant, across
	// all shards.
	PeakResident int `json:"peakResident"`

	// Acc is the merged host-contribution accumulator.
	Acc fleet.Accumulator `json:"acc"`
	// MergedDigest seals the aggregate verdict + accumulator (fourth
	// layer, topology-independent).
	MergedDigest string `json:"mergedDigest"`
	// Digest seals the full report including the per-shard breakdown.
	Digest string `json:"digest"`
}

// Coordinator drives one sharded fleet.
type Coordinator struct {
	cfg  Config
	src  HostSource
	ring *Ring
}

// New builds a coordinator over the source's hosts.
func New(cfg Config, src HostSource) (*Coordinator, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("fleetshard: Config.Shards must be >= 1 (got %d)", cfg.Shards)
	}
	if cfg.Kind == "" {
		cfg.Kind = fleet.SweepInside
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, src: src, ring: ring}, nil
}

// partition assigns every host index to its shard on the given ring.
// O(hosts) ints — host descriptors, machines, and results stay lazy.
func (c *Coordinator) partition(r *Ring) map[int][]int {
	out := make(map[int][]int, c.cfg.Shards)
	for i, n := 0, c.src.Len(); i < n; i++ {
		s := r.Assign(c.src.Name(i))
		out[s] = append(out[s], i)
	}
	return out
}

// shardTask is one journal-scoped unit of a shard's work: its primary
// assignment or a recovery pass over hosts adopted from a lost shard.
type shardTask struct {
	indices []int
	path    string // "" = unjournaled
	resume  bool
}

// shardJob is everything one shard must sweep this run.
type shardJob struct {
	shard   int
	tasks   []shardTask
	adopted int
}

func (j *shardJob) hostCount() int {
	n := 0
	for _, t := range j.tasks {
		n += len(t.indices)
	}
	return n
}

// shardJournalPath is shard i's primary journal; recoveryJournalPath
// the journal for hosts it adopts from lost shards.
func shardJournalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.gbj", shard))
}

func recoveryJournalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.recover.gbj", shard))
}

// Sweep runs a fresh sharded sweep.
func (c *Coordinator) Sweep() (*Report, error) {
	dir := c.cfg.JournalDir
	if dir != "" {
		if err := c.writeManifest(dir); err != nil {
			return nil, err
		}
	}
	parts := c.partition(c.ring)
	jobs := make([]shardJob, 0, c.cfg.Shards)
	for s := 0; s < c.cfg.Shards; s++ {
		path := ""
		if dir != "" {
			path = shardJournalPath(dir, s)
		}
		jobs = append(jobs, shardJob{shard: s, tasks: []shardTask{{indices: parts[s], path: path}}})
	}
	return c.run(jobs, nil)
}

// Resume continues an interrupted sharded sweep from JournalDir.
// Shards whose journal survived replay it; shards whose journal is gone
// are lost — their hosts are re-hashed across the surviving shards
// (consistent hashing keeps every surviving assignment in place) and
// re-run under recovery journals. Committed results are never
// re-scanned, and the merged digest of a completed resume equals the
// uninterrupted run's.
func (c *Coordinator) Resume() (*Report, error) {
	dir := c.cfg.JournalDir
	if dir == "" {
		return nil, fmt.Errorf("fleetshard: Resume requires Config.JournalDir")
	}
	if err := c.readManifest(dir); err != nil {
		return nil, err
	}
	lost := map[int]bool{}
	var lostIDs []int
	for s := 0; s < c.cfg.Shards; s++ {
		if _, err := os.Stat(shardJournalPath(dir, s)); err != nil {
			lost[s] = true
			lostIDs = append(lostIDs, s)
		}
	}
	if len(lost) == c.cfg.Shards {
		// Every journal is gone: nothing to replay; start over under the
		// original topology.
		return c.Sweep()
	}

	parts := c.partition(c.ring)
	jobs := make([]shardJob, 0, c.cfg.Shards)
	if len(lost) == 0 {
		for s := 0; s < c.cfg.Shards; s++ {
			jobs = append(jobs, shardJob{shard: s, tasks: []shardTask{
				{indices: parts[s], path: shardJournalPath(dir, s), resume: true},
			}})
		}
		return c.run(jobs, nil)
	}

	survivorRing, err := c.ring.Without(lost)
	if err != nil {
		return nil, err
	}
	// Adopted assignment: deterministic given the lost set, so a resume
	// of a resume recovers the same recovery journals.
	adopted := map[int][]int{}
	for s := range lost {
		for _, i := range parts[s] {
			a := survivorRing.Assign(c.src.Name(i))
			adopted[a] = append(adopted[a], i)
		}
	}
	for s := 0; s < c.cfg.Shards; s++ {
		if lost[s] {
			continue
		}
		job := shardJob{shard: s, tasks: []shardTask{
			{indices: parts[s], path: shardJournalPath(dir, s), resume: true},
		}}
		if ad := adopted[s]; len(ad) > 0 {
			rp := recoveryJournalPath(dir, s)
			_, statErr := os.Stat(rp)
			job.tasks = append(job.tasks, shardTask{indices: ad, path: rp, resume: statErr == nil})
			job.adopted = len(ad)
		}
		jobs = append(jobs, job)
	}
	return c.run(jobs, lostIDs)
}

// run executes the shard jobs with bounded shard parallelism, shard
// retry/breaker, the fleet-of-fleets error budget, and streaming
// aggregation, then seals the merged report.
func (c *Coordinator) run(jobs []shardJob, lostIDs []int) (*Report, error) {
	rep := &Report{Kind: c.cfg.Kind, Shards: c.cfg.Shards, Hosts: c.src.Len(), LostShards: lostIDs}
	gauge := c.cfg.Resident
	if gauge == nil {
		gauge = &fleet.ResidentGauge{}
	}

	workers := c.cfg.ShardParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		mu          sync.Mutex
		failed      int
		stop        = make(chan struct{})
		stopOnce    sync.Once
		wg          sync.WaitGroup
		jobCh       = make(chan int)
		totalShards = len(jobs)
	)
	rep.ShardResults = make([]ShardResult, len(jobs))
	for i, job := range jobs {
		rep.ShardResults[i] = ShardResult{Shard: job.shard, Hosts: job.hostCount(), Adopted: job.adopted}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				job := jobs[idx]
				sr := &rep.ShardResults[idx]
				sum, attempts, retryNs, quarantined, err := c.runShardWithRetry(job, gauge)
				mu.Lock()
				sr.Summary = sum
				sr.Attempts = attempts
				sr.RetryNs = retryNs
				sr.Quarantined = quarantined
				sr.Resumed = len(job.tasks) > 0 && job.tasks[0].resume
				if err != nil {
					sr.Err = err.Error()
				}
				if err != nil || quarantined {
					failed++
					if f := c.cfg.AbortAfterShardFailureFraction; f > 0 &&
						float64(failed) > f*float64(totalShards) && !rep.Aborted {
						rep.Aborted = true
						rep.AbortReason = fmt.Sprintf(
							"shard error budget exceeded: %d of %d shards failed (budget %.0f%%) — aborting sweep",
							failed, totalShards, f*100)
						stopOnce.Do(func() { close(stop) })
					}
				}
				mu.Unlock()
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for i := range jobs {
			select {
			case jobCh <- i:
			case <-stop:
				return
			}
		}
	}()
	wg.Wait()

	// Lost shards get explicit rows: their hosts are accounted inside
	// the adopters' summaries, so the row carries provenance only.
	for _, id := range lostIDs {
		rep.ShardResults = append(rep.ShardResults, ShardResult{Shard: id, Lost: true})
	}
	sort.Slice(rep.ShardResults, func(i, j int) bool {
		return rep.ShardResults[i].Shard < rep.ShardResults[j].Shard
	})

	// Fold: aggregate every summary; unvisited and summary-less shards
	// contribute their host counts to NotScanned, never silently vanish.
	for i := range rep.ShardResults {
		sr := &rep.ShardResults[i]
		if sr.Quarantined {
			rep.QuarantinedShards = append(rep.QuarantinedShards, sr.Shard)
		}
		if sr.Summary == nil {
			// A lost shard's hosts are accounted by their adopters; any
			// other summary-less shard leaves its hosts unscanned.
			rep.NotScanned += sr.Hosts
			continue
		}
		s := sr.Summary
		rep.Scanned += s.Scanned
		rep.Infected += s.Infected
		rep.HiddenTotal += s.HiddenTotal
		rep.Failed += s.Failed
		rep.DegradedHosts += s.DegradedHosts
		rep.QuarantinedHosts += s.Quarantined
		rep.Replayed += s.Replayed
		rep.NotScanned += s.NotScanned
		if s.Aborted && !rep.Aborted {
			rep.Aborted = true
			rep.AbortReason = fmt.Sprintf("shard %d: %s", sr.Shard, s.AbortReason)
		}
		rep.VirtualNs += s.VirtualNs
		if span := s.VirtualNs + sr.RetryNs; span > rep.MakespanNs {
			rep.MakespanNs = span
		}
	}
	sort.Ints(rep.QuarantinedShards)
	rep.PeakResident = gauge.Peak()
	rep.Acc = mergedAcc(rep)
	rep.Seal()
	return rep, nil
}

// runShardWithRetry runs one shard's tasks with the shard-level retry
// loop: doubling backoff capped by the shared fleet.NextBackoff rule, a
// consecutive-failure circuit breaker, and journal-aware retries (a
// retried journaled task resumes the journal its failed attempt left
// behind instead of re-scanning committed hosts).
func (c *Coordinator) runShardWithRetry(job shardJob, gauge *fleet.ResidentGauge) (sum *fleet.SweepSummary, attempts int, retryNs int64, quarantined bool, err error) {
	backoff := c.cfg.ShardRetryBackoff
	if backoff <= 0 {
		backoff = defaultShardRetryBackoff
	}
	if backoff > fleet.MaxRetryBackoff {
		backoff = fleet.MaxRetryBackoff
	}
	consecFailed := 0
	for attempt := 1; ; attempt++ {
		attempts = attempt
		sum, err = c.runShardOnce(job, attempt, gauge)
		if err == nil {
			return sum, attempts, retryNs, false, nil
		}
		consecFailed++
		if t := c.cfg.ShardBreakerThreshold; t > 0 && consecFailed >= t {
			return nil, attempts, retryNs, true, err
		}
		if attempt > c.cfg.ShardMaxRetries {
			return nil, attempts, retryNs, false, err
		}
		// Virtual wait: the coordinator has no machine clock; the backoff
		// is charged to the shard's retry accounting.
		retryNs += int64(backoff)
		backoff = fleet.NextBackoff(backoff)
		// A failed journaled attempt may have committed progress; resume
		// what it left rather than re-scanning it.
		for i := range job.tasks {
			if job.tasks[i].path != "" {
				if _, statErr := os.Stat(job.tasks[i].path); statErr == nil {
					job.tasks[i].resume = true
				}
			}
		}
	}
}

// runShardOnce executes one attempt of a shard's tasks and merges the
// per-task summaries into one sealed shard summary.
func (c *Coordinator) runShardOnce(job shardJob, attempt int, gauge *fleet.ResidentGauge) (*fleet.SweepSummary, error) {
	if c.cfg.ShardFault != nil {
		if err := c.cfg.ShardFault(job.shard, attempt); err != nil {
			return nil, fmt.Errorf("fleetshard: shard %d attempt %d: %w", job.shard, attempt, err)
		}
	}
	var combined *fleet.SweepSummary
	for _, t := range job.tasks {
		mgr := c.newShardManager(t.indices, gauge)
		var sink func(fleet.HostResult)
		if c.cfg.OnResult != nil {
			shard := job.shard
			sink = func(res fleet.HostResult) { c.cfg.OnResult(shard, res) }
		}
		var (
			sum *fleet.SweepSummary
			err error
		)
		switch {
		case t.path == "":
			sum, err = mgr.SweepStreamed(c.cfg.Kind, c.shardWorkers(), sink)
		case t.resume:
			sum, err = mgr.ResumeStream(c.cfg.Kind, c.shardWorkers(), t.path, sink)
			if errors.Is(err, fleet.ErrEmptyJournal) {
				// The shard died before its journal header committed:
				// nothing in the file is trusted or replayable, and this
				// coordinator owns the shard's host assignment, so restart
				// the task's sweep from scratch (Create truncates the husk).
				sum, err = mgr.SweepJournaledStream(c.cfg.Kind, c.shardWorkers(), t.path, sink)
			}
		default:
			sum, err = mgr.SweepJournaledStream(c.cfg.Kind, c.shardWorkers(), t.path, sink)
		}
		if err != nil {
			return nil, fmt.Errorf("fleetshard: shard %d: %w", job.shard, err)
		}
		if combined == nil {
			combined = sum
		} else {
			combined.Merge(sum)
		}
	}
	if combined == nil {
		combined = &fleet.SweepSummary{Kind: c.cfg.Kind}
	}
	combined.Seal()
	return combined, nil
}

func (c *Coordinator) shardWorkers() int {
	if c.cfg.ShardWorkers <= 0 {
		return 1
	}
	return c.cfg.ShardWorkers
}

// newShardManager builds the fleet.Manager for one task's host subset,
// forwarding the host-level knobs and lazy-building every host.
func (c *Coordinator) newShardManager(indices []int, gauge *fleet.ResidentGauge) *fleet.Manager {
	mgr := fleet.NewManager()
	mgr.Parallelism = c.shardWorkers()
	mgr.HostParallelism = c.cfg.HostParallelism
	mgr.MaxRetries = c.cfg.MaxRetries
	mgr.RetryBackoff = c.cfg.RetryBackoff
	mgr.HostDeadline = c.cfg.HostDeadline
	mgr.BreakerThreshold = c.cfg.BreakerThreshold
	mgr.AbortAfterFailureFraction = c.cfg.AbortAfterFailureFraction
	mgr.ConfigureDetector = c.cfg.ConfigureDetector
	mgr.ScanHost = c.cfg.ScanHost
	mgr.Resident = gauge
	for _, i := range indices {
		i := i
		mgr.AddLazy(c.src.Name(i), func() (*machine.Machine, error) { return c.src.Build(i) })
	}
	return mgr
}

// writeManifest records the sweep topology at the start of a journaled
// sweep; readManifest validates it on resume.
func (c *Coordinator) writeManifest(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleetshard: journal dir: %w", err)
	}
	m := manifest{Version: 1, Kind: string(c.cfg.Kind), Shards: c.cfg.Shards,
		VNodes: c.cfg.VNodes, Hosts: c.src.Len()}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

func (c *Coordinator) readManifest(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("fleetshard: reading coordinator manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("fleetshard: coordinator manifest unparseable: %w", err)
	}
	if m.Shards != c.cfg.Shards {
		return fmt.Errorf("fleetshard: manifest records %d shards, resuming with %d — shard topology must match", m.Shards, c.cfg.Shards)
	}
	if m.Kind != string(c.cfg.Kind) {
		return fmt.Errorf("fleetshard: manifest records a %q sweep, resuming as %q", m.Kind, c.cfg.Kind)
	}
	if m.VNodes != c.cfg.VNodes {
		return fmt.Errorf("fleetshard: manifest records vnodes=%d, resuming with %d — ring geometry must match", m.VNodes, c.cfg.VNodes)
	}
	if m.Hosts != c.src.Len() {
		return fmt.Errorf("fleetshard: manifest records %d hosts, source has %d", m.Hosts, c.src.Len())
	}
	return nil
}
