// The Coordinator: tier two of the fleet-of-fleets control plane. It
// partitions hosts across sweeper shards with the consistent-hash ring,
// drives each shard's journaled fleet.Manager with bounded shard
// parallelism, folds the shards' streamed summaries into one merged
// report, and applies the shard-level reliability controls — retry with
// the shared saturating backoff, a per-shard circuit breaker, and a
// fleet-of-fleets error budget — one level above the per-host versions
// in internal/fleet.
package fleetshard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/journal"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/supervise"
)

// HostSource names and (lazily) builds the fleet's hosts. Sources must
// be deterministic: Resume rebuilds lost hosts from scratch and their
// re-scanned results must hash identically to the uninterrupted run's.
type HostSource interface {
	// Len is the total host count.
	Len() int
	// Name returns host i's stable name. Names must be unique.
	Name(i int) string
	// Build constructs host i's machine. Called on demand when the
	// host's scan starts; the shard releases the machine afterwards.
	Build(i int) (*machine.Machine, error)
}

// Config tunes a Coordinator. The host-level knobs are forwarded to
// every shard's fleet.Manager; the shard-level knobs mirror them one
// tier up.
type Config struct {
	// Kind is the sweep flavor; empty means fleet.SweepInside.
	Kind fleet.SweepKind
	// Shards is the sweeper shard count (required, >= 1).
	Shards int
	// VNodes is the consistent-hash virtual-node count per shard;
	// 0 means the package default.
	VNodes int
	// ShardParallelism bounds how many shards sweep concurrently;
	// 0 means runtime.GOMAXPROCS(0).
	ShardParallelism int
	// ShardWorkers is each shard manager's worker-pool size; 0 means 1
	// (a shard models one sweeper process).
	ShardWorkers int
	// JournalDir, when set, holds one journal per shard plus the
	// coordinator manifest; sweeps are then resumable after losing any
	// subset of shards. Empty disables journaling (and resume).
	JournalDir string

	// Host-level knobs, forwarded verbatim to each shard manager.
	HostParallelism           int
	MaxRetries                int
	RetryBackoff              time.Duration
	HostDeadline              time.Duration
	BreakerThreshold          int
	AbortAfterFailureFraction float64

	// ShardMaxRetries re-runs a failed shard sweep this many extra
	// times, with a doubling backoff capped by the same saturation rule
	// as host retries (fleet.NextBackoff).
	ShardMaxRetries int
	// ShardRetryBackoff is the first shard retry wait; 0 means 2s.
	ShardRetryBackoff time.Duration
	// ShardBreakerThreshold quarantines a shard after this many
	// consecutive failed sweep attempts — BreakerThreshold one level
	// up. Zero disables it.
	ShardBreakerThreshold int
	// AbortAfterShardFailureFraction aborts the whole run once more
	// than this fraction of shards has failed or been quarantined —
	// AbortAfterFailureFraction one level up. Zero disables it.
	AbortAfterShardFailureFraction float64

	// ConfigureDetector is forwarded to every shard manager (see
	// fleet.Manager.ConfigureDetector): the seam scan-policy profiles
	// reach sharded per-host scans through. May be nil.
	ConfigureDetector func(d *core.Detector)
	// ScanHost is the simulation seam forwarded to shard managers (see
	// fleet.Manager.ScanHost). Production sweeps leave it nil.
	ScanHost func(h *fleet.Host, kind fleet.SweepKind) fleet.HostResult
	// OnResult streams every committed host result (shard id attached)
	// to the caller as it happens; the coordinator itself never retains
	// results. May be nil.
	OnResult func(shard int, res fleet.HostResult)
	// ShardFault injects an infrastructure failure into a shard sweep
	// attempt (chaos/testing seam): a non-nil error fails the attempt
	// before any host is scanned.
	ShardFault func(shard, attempt int) error
	// Resident, when set, is the shared bounded-memory gauge; the
	// coordinator creates one per run otherwise.
	Resident *fleet.ResidentGauge

	// Watchdog, when enabled (nonzero Deadline), supervises every shard
	// job with progress beacons: each committed host result beats the
	// job's watch, and a job silent past Deadline × Misses of wall time
	// is declared wedged — its shard manager is cancelled (journal
	// sealed at the last committed record) and its unfinished hosts are
	// re-hashed onto the surviving shards mid-sweep. The final
	// MergedDigest equals the uninterrupted run's. Tune Deadline well
	// above the slowest single host scan's wall time: beacons only fire
	// when a host commits.
	Watchdog supervise.Policy
	// Hedge enables straggler hedging inside every shard manager (see
	// fleet.HedgePolicy).
	Hedge *fleet.HedgePolicy
	// BackoffJitterSeed applies deterministic full jitter to host- and
	// shard-level retry backoff waits (see fleet.JitteredBackoff). Zero
	// keeps the exact doubling schedule.
	BackoffJitterSeed int64
}

// defaultShardRetryBackoff mirrors the fleet manager's default.
const defaultShardRetryBackoff = 2 * time.Second

// manifestName is the coordinator manifest file inside JournalDir.
const manifestName = "coordinator.json"

// manifest records the sweep topology so Resume can validate that the
// rebuilt fleet matches the journaled one. Host names are not listed —
// at a million hosts that would defeat the bounded-memory point; the
// per-shard journal headers carry each shard's exact host set.
type manifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Shards  int    `json:"shards"`
	VNodes  int    `json:"vnodes"`
	Hosts   int    `json:"hosts"`
}

// ShardResult is one shard's row in the fleet-of-fleets report.
type ShardResult struct {
	Shard int `json:"shard"`
	// Hosts is how many hosts the shard was responsible for this run
	// (primary assignment plus adopted hosts).
	Hosts int `json:"hosts"`
	// Summary is the shard's streamed sweep summary (nil if the shard
	// never produced one: lost, quarantined, failed, or unvisited).
	Summary *fleet.SweepSummary `json:"summary,omitempty"`
	// Adopted counts hosts re-hashed onto this shard from lost shards.
	Adopted int `json:"adopted,omitempty"`
	// Lost marks a shard whose journal did not survive; its hosts were
	// re-hashed across the survivors.
	Lost bool `json:"lost,omitempty"`
	// Resumed marks a shard that replayed its own journal.
	Resumed bool `json:"resumed,omitempty"`
	// Wedged marks a shard job the watchdog cancelled mid-sweep: its
	// journal is sealed at the last committed record and its unfinished
	// hosts were re-hashed onto survivors in flight. Provenance,
	// excluded from the merged digest.
	Wedged bool `json:"wedged,omitempty"`
	// Failover marks a row created by mid-sweep wedge failover: the
	// shard adopting another's unfinished hosts while the sweep was
	// still running.
	Failover bool `json:"failover,omitempty"`
	// Quarantined marks a shard whose circuit breaker opened.
	Quarantined bool   `json:"quarantined,omitempty"`
	Err         string `json:"error,omitempty"`
	// Attempts and RetryNs account shard-level retries; like the host
	// versions they are bookkeeping, excluded from every digest.
	Attempts int   `json:"attempts,omitempty"`
	RetryNs  int64 `json:"retryNs,omitempty"`
}

// Report is the merged fleet-of-fleets outcome. Per-shard digests are
// the fourth layer of the verification chain (scan report -> host
// result -> shard summary -> cross-shard report), and MergedDigest is
// the topology-independent seal: any shard count, completion order, or
// resume-after-loss re-hashing yields the same MergedDigest as long as
// every host contributed the same verdict exactly once.
type Report struct {
	Kind   fleet.SweepKind `json:"kind"`
	Shards int             `json:"shards"`
	Hosts  int             `json:"hosts"`

	ShardResults []ShardResult `json:"shardResults"`
	// LostShards lists shards whose journals did not survive the crash,
	// sorted. Provenance, excluded from digests.
	LostShards []int `json:"lostShards,omitempty"`
	// QuarantinedShards lists shards whose breaker opened, sorted.
	QuarantinedShards []int `json:"quarantinedShards,omitempty"`

	// Aggregated host verdicts across every shard summary.
	Scanned          int `json:"scanned"`
	Infected         int `json:"infected"`
	HiddenTotal      int `json:"hiddenTotal"`
	Failed           int `json:"failed"`
	DegradedHosts    int `json:"degradedHosts"`
	QuarantinedHosts int `json:"quarantinedHosts"`
	Replayed         int `json:"replayed,omitempty"`
	NotScanned       int `json:"notScanned,omitempty"`

	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abortReason,omitempty"`

	// VirtualNs is the fleet's total virtual scan cost; MakespanNs is
	// the sweep's virtual completion time — shards sweep in parallel,
	// so the makespan is the max over shards (plus that shard's retry
	// backoff), the quantity the 1→64 scaling curve tracks.
	VirtualNs  int64 `json:"virtualNs"`
	MakespanNs int64 `json:"makespanNs"`
	// PeakResident is the bounded-memory high-water mark: the most host
	// results in flight or awaiting aggregation at any instant, across
	// all shards.
	PeakResident int `json:"peakResident"`

	// Acc is the merged host-contribution accumulator.
	Acc fleet.Accumulator `json:"acc"`
	// MergedDigest seals the aggregate verdict + accumulator (fourth
	// layer, topology-independent).
	MergedDigest string `json:"mergedDigest"`
	// Digest seals the full report including the per-shard breakdown.
	Digest string `json:"digest"`
}

// Coordinator drives one sharded fleet.
type Coordinator struct {
	cfg  Config
	src  HostSource
	ring *Ring
}

// New builds a coordinator over the source's hosts.
func New(cfg Config, src HostSource) (*Coordinator, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("fleetshard: Config.Shards must be >= 1 (got %d)", cfg.Shards)
	}
	if cfg.Kind == "" {
		cfg.Kind = fleet.SweepInside
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	return &Coordinator{cfg: cfg, src: src, ring: ring}, nil
}

// partition assigns every host index to its shard on the given ring.
// O(hosts) ints — host descriptors, machines, and results stay lazy.
func (c *Coordinator) partition(r *Ring) map[int][]int {
	out := make(map[int][]int, c.cfg.Shards)
	for i, n := 0, c.src.Len(); i < n; i++ {
		s := r.Assign(c.src.Name(i))
		out[s] = append(out[s], i)
	}
	return out
}

// shardTask is one journal-scoped unit of a shard's work: its primary
// assignment or a recovery pass over hosts adopted from a lost shard.
type shardTask struct {
	indices []int
	path    string // "" = unjournaled
	resume  bool
	// replayOnly folds the journal's committed results without running
	// anything: how a resume accounts for a journal whose owner was
	// declared wedged — the unfinished hosts belong to the shards that
	// adopted them, so re-scanning them here would commit them twice.
	replayOnly bool
}

// shardJob is everything one shard must sweep this run.
type shardJob struct {
	shard   int
	tasks   []shardTask
	adopted int
}

func (j *shardJob) hostCount() int {
	n := 0
	for _, t := range j.tasks {
		n += len(t.indices)
	}
	return n
}

// shardJournalPath is shard i's primary journal; recoveryJournalPath
// the journal for hosts it adopts from lost shards.
func shardJournalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.gbj", shard))
}

func recoveryJournalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.recover.gbj", shard))
}

// failoverJournalPath is the n-th recovery journal for a shard: wedge
// failover can hand one adopter several distinct host sets over a run's
// lifetime (and a later resume may add more), and each needs its own
// journal so analyzeJournal's exact-host-set check keeps holding.
func failoverJournalPath(dir string, shard, n int) string {
	if n == 0 {
		return recoveryJournalPath(dir, shard)
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.recover-%d.gbj", shard, n+1))
}

// wedgeMarkerPath is the sidecar recording a journal's wedge: written
// before any failover job is enqueued, so a crash mid-failover can
// reconstruct which hosts left the journal's ownership. The suffix is
// not .gbj, so VerifyJournals' glob never reads markers as journals.
func wedgeMarkerPath(journalPath string) string { return journalPath + ".wedged" }

// wedgeMarker is the marker's JSON body.
type wedgeMarker struct {
	Shard int `json:"shard"`
	// Unfinished lists the hosts that had no terminal record when the
	// watchdog fired — the ones adopted by survivors.
	Unfinished []string `json:"unfinished"`
}

// Sweep runs a fresh sharded sweep.
func (c *Coordinator) Sweep() (*Report, error) {
	dir := c.cfg.JournalDir
	if dir != "" {
		if err := c.writeManifest(dir); err != nil {
			return nil, err
		}
	}
	parts := c.partition(c.ring)
	jobs := make([]shardJob, 0, c.cfg.Shards)
	for s := 0; s < c.cfg.Shards; s++ {
		path := ""
		if dir != "" {
			path = shardJournalPath(dir, s)
		}
		jobs = append(jobs, shardJob{shard: s, tasks: []shardTask{{indices: parts[s], path: path}}})
	}
	return c.run(jobs, nil, nil)
}

// Resume continues an interrupted sharded sweep from JournalDir.
// Shards whose journal survived replay it; shards whose journal is gone
// are lost — their hosts are re-hashed across the surviving shards
// (consistent hashing keeps every surviving assignment in place) and
// re-run under recovery journals. Shards a watchdog had declared wedged
// before the crash (wedge marker present) are replay-only: their
// journals' committed results are folded without re-scanning, and the
// marker's unfinished hosts re-hash exactly as the live failover did.
// Committed results are never re-scanned, and the merged digest of a
// completed resume equals the uninterrupted run's.
func (c *Coordinator) Resume() (*Report, error) {
	dir := c.cfg.JournalDir
	if dir == "" {
		return nil, fmt.Errorf("fleetshard: Resume requires Config.JournalDir")
	}
	if err := c.readManifest(dir); err != nil {
		return nil, err
	}
	lost := map[int]bool{}
	var lostIDs []int
	for s := 0; s < c.cfg.Shards; s++ {
		if _, err := os.Stat(shardJournalPath(dir, s)); err != nil {
			lost[s] = true
			lostIDs = append(lostIDs, s)
		}
	}
	if len(lost) == c.cfg.Shards {
		// Every journal is gone: nothing to replay; start over under the
		// original topology.
		return c.Sweep()
	}

	// Wedge markers: journals whose owner was cancelled mid-sweep before
	// the crash. A marker whose journal is itself gone is stale — the
	// shard is simply lost and its whole assignment re-hashes.
	markers, err := readWedgeMarkers(dir)
	if err != nil {
		return nil, err
	}
	unavailable := map[int]bool{}
	for s := range lost {
		unavailable[s] = true
	}
	for path, m := range markers {
		if _, err := os.Stat(path); err != nil {
			delete(markers, path)
			continue
		}
		if lost[m.Shard] {
			delete(markers, path)
			continue
		}
		unavailable[m.Shard] = true
	}

	parts := c.partition(c.ring)
	nameIdx := make(map[string]int, c.src.Len())
	for i, n := 0, c.src.Len(); i < n; i++ {
		nameIdx[c.src.Name(i)] = i
	}
	if len(unavailable) == 0 {
		jobs := make([]shardJob, 0, c.cfg.Shards)
		for s := 0; s < c.cfg.Shards; s++ {
			job := shardJob{shard: s, tasks: []shardTask{
				{indices: parts[s], path: shardJournalPath(dir, s), resume: true},
			}}
			if err := c.appendRecoveryTasks(&job, dir, markers, nil, nameIdx); err != nil {
				return nil, err
			}
			jobs = append(jobs, job)
		}
		return c.run(jobs, nil, nil)
	}

	survivorRing, err := c.ring.Without(unavailable)
	if err != nil {
		return nil, err
	}
	committed, err := journalCommittedHosts(dir)
	if err != nil {
		return nil, err
	}
	// The adoption pool: every host needing a (re)scan — lost shards'
	// full assignments plus every marker's unfinished hosts. A host can
	// reach the pool through several routes (unfinished when its owner
	// wedged, then again when its adopter wedged), so entries dedupe; a
	// pooled host already committed in some sealed journal folds from
	// there instead, and one uncommitted but owned by a survivor's
	// recovery journal is claimed back by that journal's resume task
	// (appendRecoveryTasks marks it covered). Assignment over the final
	// unavailable set is deterministic, and consistent-hash monotonicity
	// makes it agree with whatever per-wedge-event assignments the live
	// run already journaled.
	adopted := map[int][]int{}
	pooled := map[int]bool{}
	assign := func(i int) {
		if pooled[i] {
			return
		}
		pooled[i] = true
		name := c.src.Name(i)
		if committed[name] {
			return
		}
		a := survivorRing.Assign(name)
		adopted[a] = append(adopted[a], i)
	}
	for s := range lost {
		for _, i := range parts[s] {
			assign(i)
		}
	}
	for _, m := range markers {
		for _, name := range m.Unfinished {
			i, ok := nameIdx[name]
			if !ok {
				return nil, fmt.Errorf("fleetshard: wedge marker for shard %d names unknown host %q", m.Shard, name)
			}
			assign(i)
		}
	}

	jobs := make([]shardJob, 0, c.cfg.Shards)
	for s := 0; s < c.cfg.Shards; s++ {
		if lost[s] {
			continue
		}
		primary := shardTask{indices: parts[s], path: shardJournalPath(dir, s), resume: true}
		if _, wedged := markers[primary.path]; wedged {
			primary.replayOnly = true
		}
		job := shardJob{shard: s, tasks: []shardTask{primary}}
		if err := c.appendRecoveryTasks(&job, dir, markers, adopted[s], nameIdx); err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	return c.run(jobs, lostIDs, unavailable)
}

// journalCommittedHosts scans every journal under dir for terminal
// records and returns the committed host set — the hosts Resume must
// never hand to a fresh recovery task, whatever markers claim.
func journalCommittedHosts(dir string) (map[string]bool, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.gbj"))
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, p := range paths {
		recs, _, err := journal.Read(p)
		if err != nil {
			continue // husk or torn head: nothing committed in it
		}
		for _, rec := range recs {
			if rec.State.Terminal() {
				out[rec.Host] = true
			}
		}
	}
	return out, nil
}

// readWedgeMarkers loads every wedge marker under dir, keyed by the
// journal path it marks.
func readWedgeMarkers(dir string) (map[string]wedgeMarker, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.gbj.wedged"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]wedgeMarker, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("fleetshard: reading wedge marker %s: %w", filepath.Base(p), err)
		}
		var m wedgeMarker
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("fleetshard: wedge marker %s unparseable: %w", filepath.Base(p), err)
		}
		out[strings.TrimSuffix(p, ".wedged")] = m
	}
	return out, nil
}

// appendRecoveryTasks rebuilds a shard's recovery work at resume time:
// every existing recovery journal becomes its own task (host set read
// from the journal header — the set the live run assigned it), and
// adopted hosts not yet covered by one get a fresh recovery journal.
// A headerless husk (the shard died before its recovery journal's
// header committed) is reused for the fresh task, or removed: nothing
// in it is trusted or replayable, and leaving it would trip
// VerifyJournals after the sweep completes.
func (c *Coordinator) appendRecoveryTasks(job *shardJob, dir string, markers map[string]wedgeMarker, adoptedIdx []int, nameIdx map[string]int) error {
	paths, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d.recover*.gbj", job.shard)))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	covered := map[string]bool{}
	var husks []string
	for _, p := range paths {
		names, readable := journalHeaderHosts(p)
		if !readable {
			husks = append(husks, p)
			continue
		}
		var indices []int
		for _, name := range names {
			i, ok := nameIdx[name]
			if !ok {
				return fmt.Errorf("fleetshard: recovery journal %s names unknown host %q", filepath.Base(p), name)
			}
			indices = append(indices, i)
			covered[name] = true
		}
		t := shardTask{indices: indices, path: p, resume: true}
		if _, wedged := markers[p]; wedged {
			t.replayOnly = true
		}
		job.tasks = append(job.tasks, t)
		job.adopted += len(indices)
	}
	var fresh []int
	for _, i := range adoptedIdx {
		if !covered[c.src.Name(i)] {
			fresh = append(fresh, i)
		}
	}
	if len(fresh) > 0 {
		path := ""
		if len(husks) > 0 {
			path, husks = husks[0], husks[1:]
		} else {
			for n := 0; ; n++ {
				p := failoverJournalPath(dir, job.shard, n)
				if _, err := os.Stat(p); err != nil {
					path = p
					break
				}
			}
		}
		job.tasks = append(job.tasks, shardTask{indices: fresh, path: path})
		job.adopted += len(fresh)
	}
	for _, husk := range husks {
		if err := os.Remove(husk); err != nil {
			return fmt.Errorf("fleetshard: removing headerless recovery journal: %w", err)
		}
	}
	return nil
}

// journalHeaderHosts reads a journal's header host list; readable is
// false for husks that never committed a header.
func journalHeaderHosts(path string) (names []string, readable bool) {
	recs, _, err := journal.Read(path)
	if err != nil || len(recs) == 0 || recs[0].State != journal.StateSweep {
		return nil, false
	}
	return recs[0].Hosts, true
}

// liveJob is a shardJob in flight: its report row, the hosts it has
// committed terminal results for (fed by the manager sink), and the
// failover generation it belongs to. Rows are pointers so failover can
// add rows while earlier ones are still being filled in.
type liveJob struct {
	job shardJob
	row *ShardResult
	seq int

	mu        sync.Mutex
	committed map[string]bool
}

func (lj *liveJob) commit(name string) {
	lj.mu.Lock()
	lj.committed[name] = true
	lj.mu.Unlock()
}

func (lj *liveJob) done(name string) bool {
	lj.mu.Lock()
	defer lj.mu.Unlock()
	return lj.committed[name]
}

// jobQueue is the dynamic shard work queue: mid-sweep failover pushes
// adopter jobs while workers are draining it, so the queue is done only
// when it is empty AND nothing in flight could push more.
type jobQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []*liveJob
	active  int
	stopped bool
}

func newJobQueue(initial []*liveJob) *jobQueue {
	q := &jobQueue{items: initial}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pop blocks until a job is available; false means drained or stopped.
func (q *jobQueue) pop() (*liveJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.stopped {
			return nil, false
		}
		if len(q.items) > 0 {
			lj := q.items[0]
			q.items = q.items[1:]
			q.active++
			return lj, true
		}
		if q.active == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

func (q *jobQueue) push(lj *liveJob) {
	q.mu.Lock()
	q.items = append(q.items, lj)
	q.mu.Unlock()
	q.cond.Broadcast()
}

// finish retires one popped job. Call it after any failover pushes the
// job makes: active stays >0 across the handoff, so idle workers never
// see a momentary empty-and-inactive queue and drain early.
func (q *jobQueue) finish() {
	q.mu.Lock()
	q.active--
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *jobQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// sweepState is the run-scoped mutable state shared by shard workers:
// the report rows, which shards are unavailable for adoption (lost at
// resume, wedged in flight), which journal paths are spoken for, and
// the failover generation counter. One mutex serializes all of it —
// every access is O(shards), far off the per-host hot path.
type sweepState struct {
	mu          sync.Mutex
	rows        []*ShardResult
	unavailable map[int]bool
	claimed     map[string]bool
	seq         int
	failed      int
}

// run executes the shard jobs with bounded shard parallelism, watchdog
// supervision with mid-sweep failover, shard retry/breaker, the
// fleet-of-fleets error budget, and streaming aggregation, then seals
// the merged report.
func (c *Coordinator) run(jobs []shardJob, lostIDs []int, unavailable map[int]bool) (*Report, error) {
	rep := &Report{Kind: c.cfg.Kind, Shards: c.cfg.Shards, Hosts: c.src.Len(), LostShards: lostIDs}
	gauge := c.cfg.Resident
	if gauge == nil {
		gauge = &fleet.ResidentGauge{}
	}

	workers := c.cfg.ShardParallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var sup *supervise.Supervisor
	if c.cfg.Watchdog.Enabled() {
		sup = supervise.New(c.cfg.Watchdog)
		sup.Start()
		defer sup.Stop()
	}

	st := &sweepState{unavailable: map[int]bool{}, claimed: map[string]bool{}}
	for s := range unavailable {
		st.unavailable[s] = true
	}
	initial := make([]*liveJob, 0, len(jobs))
	for _, job := range jobs {
		row := &ShardResult{Shard: job.shard, Hosts: job.hostCount(), Adopted: job.adopted}
		st.rows = append(st.rows, row)
		initial = append(initial, &liveJob{job: job, row: row, committed: map[string]bool{}})
		for _, t := range job.tasks {
			if t.path != "" {
				st.claimed[t.path] = true
			}
		}
	}
	queue := newJobQueue(initial)

	var wg sync.WaitGroup
	totalShards := len(jobs)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lj, ok := queue.pop()
				if !ok {
					return
				}
				sum, attempts, retryNs, quarantined, wedged, err := c.runShardWithRetry(lj, sup, gauge)
				var failoverErr error
				if wedged {
					failoverErr = c.failoverWedged(lj, sum, st, queue)
				}
				st.mu.Lock()
				lj.row.Summary = sum
				lj.row.Attempts = attempts
				lj.row.RetryNs = retryNs
				lj.row.Quarantined = quarantined
				lj.row.Resumed = len(lj.job.tasks) > 0 && lj.job.tasks[0].resume
				lj.row.Wedged = wedged
				if err != nil {
					lj.row.Err = err.Error()
				} else if failoverErr != nil {
					lj.row.Err = failoverErr.Error()
				}
				// A cleanly failed-over wedge does not spend the shard error
				// budget: its work completed elsewhere. A wedge that could
				// not fail over does.
				if err != nil || quarantined || failoverErr != nil {
					st.failed++
					if f := c.cfg.AbortAfterShardFailureFraction; f > 0 &&
						float64(st.failed) > f*float64(totalShards) && !rep.Aborted {
						rep.Aborted = true
						rep.AbortReason = fmt.Sprintf(
							"shard error budget exceeded: %d of %d shards failed (budget %.0f%%) — aborting sweep",
							st.failed, totalShards, f*100)
						queue.stop()
					}
				}
				st.mu.Unlock()
				queue.finish()
			}
		}()
	}
	wg.Wait()

	// Lost shards get explicit rows: their hosts are accounted inside
	// the adopters' summaries, so the row carries provenance only.
	for _, id := range lostIDs {
		st.rows = append(st.rows, &ShardResult{Shard: id, Lost: true})
	}
	// Stable: primary rows sort before a shard's failover rows, and
	// failover rows keep their enqueue order.
	sort.SliceStable(st.rows, func(i, j int) bool {
		if st.rows[i].Shard != st.rows[j].Shard {
			return st.rows[i].Shard < st.rows[j].Shard
		}
		return !st.rows[i].Failover && st.rows[j].Failover
	})
	rep.ShardResults = make([]ShardResult, len(st.rows))
	for i, row := range st.rows {
		rep.ShardResults[i] = *row
	}

	// Fold: aggregate every summary; unvisited and summary-less shards
	// contribute their host counts to NotScanned, never silently vanish.
	for i := range rep.ShardResults {
		sr := &rep.ShardResults[i]
		if sr.Quarantined {
			rep.QuarantinedShards = append(rep.QuarantinedShards, sr.Shard)
		}
		if sr.Summary == nil {
			// A lost shard's hosts are accounted by their adopters; any
			// other summary-less shard leaves its hosts unscanned.
			if !sr.Lost {
				rep.NotScanned += sr.Hosts
			}
			continue
		}
		s := sr.Summary
		rep.Scanned += s.Scanned
		rep.Infected += s.Infected
		rep.HiddenTotal += s.HiddenTotal
		rep.Failed += s.Failed
		rep.DegradedHosts += s.DegradedHosts
		rep.QuarantinedHosts += s.Quarantined
		rep.Replayed += s.Replayed
		rep.NotScanned += s.NotScanned
		if s.Aborted && !rep.Aborted {
			rep.Aborted = true
			rep.AbortReason = fmt.Sprintf("shard %d: %s", sr.Shard, s.AbortReason)
		}
		rep.VirtualNs += s.VirtualNs
		if span := s.VirtualNs + sr.RetryNs; span > rep.MakespanNs {
			rep.MakespanNs = span
		}
	}
	sort.Ints(rep.QuarantinedShards)
	rep.PeakResident = gauge.Peak()
	rep.Acc = mergedAcc(rep)
	rep.Seal()
	return rep, nil
}

// failoverWedged re-homes a wedged job's unfinished hosts onto the
// surviving shards while the sweep is still running. The wedged job's
// journals are already sealed at their last committed records (the
// collector loop that owns terminal appends has exited); this method
// writes the wedge markers first (crash consistency: a resume that
// finds no marker simply resumes the journal, which is still correct —
// the failover jobs have not run yet), then shrinks the wedged summary
// to exactly the hosts it committed, then enqueues one failover job per
// adopting shard. An error means nothing was adopted: the summary keeps
// its NotScanned accounting and the unfinished hosts stay loudly
// unscanned in the merged report.
func (c *Coordinator) failoverWedged(lj *liveJob, sum *fleet.SweepSummary, st *sweepState, queue *jobQueue) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.unavailable[lj.job.shard] = true

	var unfinished []int
	for _, t := range lj.job.tasks {
		for _, i := range t.indices {
			if !lj.done(c.src.Name(i)) {
				unfinished = append(unfinished, i)
			}
		}
	}
	if len(unfinished) == 0 {
		// The watchdog fired between the last commit and the seal; there
		// is nothing to move.
		return nil
	}
	ring, err := c.ring.Without(st.unavailable)
	if err != nil {
		return fmt.Errorf("fleetshard: shard %d wedged with no survivors to adopt %d hosts: %w",
			lj.job.shard, len(unfinished), err)
	}

	// Markers before failover jobs: the adopters must never run before
	// the disk records that these hosts left the wedged journals.
	if c.cfg.JournalDir != "" {
		names := make([]string, 0, len(unfinished))
		for _, i := range unfinished {
			names = append(names, c.src.Name(i))
		}
		for ti, t := range lj.job.tasks {
			if t.path == "" {
				continue
			}
			if _, statErr := os.Stat(t.path); statErr != nil {
				continue // task never started; its hosts ride the first marker
			}
			m := wedgeMarker{Shard: lj.job.shard}
			if ti == 0 {
				m.Unfinished = names // the job's full unfinished set
			}
			data, err := json.Marshal(m)
			if err != nil {
				return err
			}
			if err := os.WriteFile(wedgeMarkerPath(t.path), append(data, '\n'), 0o644); err != nil {
				return fmt.Errorf("fleetshard: writing wedge marker: %w", err)
			}
		}
	}

	adopted := map[int][]int{}
	for _, i := range unfinished {
		a := ring.Assign(c.src.Name(i))
		adopted[a] = append(adopted[a], i)
	}
	st.seq++
	shards := make([]int, 0, len(adopted))
	for s := range adopted {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		idx := adopted[s]
		path := ""
		if dir := c.cfg.JournalDir; dir != "" {
			for n := 0; ; n++ {
				p := failoverJournalPath(dir, s, n)
				if st.claimed[p] {
					continue
				}
				if _, statErr := os.Stat(p); statErr == nil {
					st.claimed[p] = true
					continue
				}
				path = p
				st.claimed[p] = true
				break
			}
		}
		row := &ShardResult{Shard: s, Hosts: len(idx), Adopted: len(idx), Failover: true}
		st.rows = append(st.rows, row)
		queue.push(&liveJob{
			job:       shardJob{shard: s, tasks: []shardTask{{indices: idx, path: path}}, adopted: len(idx)},
			row:       row,
			seq:       st.seq,
			committed: map[string]bool{},
		})
	}
	// Shrink the wedged summary to the hosts it actually accounts: the
	// adopters account the rest, so the fold counts every host exactly
	// once and the merged digest matches the uninterrupted run's.
	sum.Hosts = sum.Scanned
	sum.NotScanned = 0
	sum.Seal()
	return nil
}

// runShardWithRetry runs one shard's tasks with the shard-level retry
// loop: doubling backoff capped by the shared fleet.NextBackoff rule
// (with deterministic full jitter when Config.BackoffJitterSeed is
// set), a consecutive-failure circuit breaker, and journal-aware
// retries (a retried journaled task resumes the journal its failed
// attempt left behind instead of re-scanning committed hosts). A wedged
// attempt returns immediately, never retried: its unfinished work is
// failing over to other shards, and re-running it here would commit
// those hosts twice.
func (c *Coordinator) runShardWithRetry(lj *liveJob, sup *supervise.Supervisor, gauge *fleet.ResidentGauge) (sum *fleet.SweepSummary, attempts int, retryNs int64, quarantined, wedged bool, err error) {
	job := lj.job
	backoff := c.cfg.ShardRetryBackoff
	if backoff <= 0 {
		backoff = defaultShardRetryBackoff
	}
	if backoff > fleet.MaxRetryBackoff {
		backoff = fleet.MaxRetryBackoff
	}
	consecFailed := 0
	for attempt := 1; ; attempt++ {
		attempts = attempt
		sum, wedged, err = c.runShardOnce(lj, attempt, sup, gauge)
		if err == nil {
			return sum, attempts, retryNs, false, wedged, nil
		}
		consecFailed++
		if t := c.cfg.ShardBreakerThreshold; t > 0 && consecFailed >= t {
			return nil, attempts, retryNs, true, false, err
		}
		if attempt > c.cfg.ShardMaxRetries {
			return nil, attempts, retryNs, false, false, err
		}
		// Virtual wait: the coordinator has no machine clock; the backoff
		// is charged to the shard's retry accounting.
		wait := backoff
		if c.cfg.BackoffJitterSeed != 0 {
			wait = fleet.JitteredBackoff(backoff, c.cfg.BackoffJitterSeed, uint64(job.shard), uint64(attempt))
		}
		retryNs += int64(wait)
		backoff = fleet.NextBackoff(backoff)
		// A failed journaled attempt may have committed progress; resume
		// what it left rather than re-scanning it.
		for i := range job.tasks {
			if job.tasks[i].path != "" {
				if _, statErr := os.Stat(job.tasks[i].path); statErr == nil {
					job.tasks[i].resume = true
				}
			}
		}
	}
}

// runShardOnce executes one attempt of a shard's tasks and merges the
// per-task summaries into one sealed shard summary. With a supervisor,
// each task runs under a watch beaten by every committed host result;
// when the watch expires the task's manager is cancelled through its
// Cancel channel, the task returns its partial (Interrupted) summary,
// and the remaining tasks are skipped — their hosts join the failover
// pool with the interrupted task's unfinished ones.
func (c *Coordinator) runShardOnce(lj *liveJob, attempt int, sup *supervise.Supervisor, gauge *fleet.ResidentGauge) (*fleet.SweepSummary, bool, error) {
	job := lj.job
	if c.cfg.ShardFault != nil {
		if err := c.cfg.ShardFault(job.shard, attempt); err != nil {
			return nil, false, fmt.Errorf("fleetshard: shard %d attempt %d: %w", job.shard, attempt, err)
		}
	}
	var combined *fleet.SweepSummary
	wedged := false
	for ti, t := range job.tasks {
		var cancel chan struct{}
		watchID := ""
		if sup != nil {
			ch := make(chan struct{})
			cancel = ch
			watchID = fmt.Sprintf("shard-%03d#%d.%d.%d", job.shard, lj.seq, attempt, ti)
			sup.Watch(watchID, func() { close(ch) })
		}
		mgr := c.newShardManager(t.indices, gauge, cancel)
		shard := job.shard
		sink := func(res fleet.HostResult) {
			lj.commit(res.Host)
			if sup != nil {
				sup.Beat(watchID)
			}
			if c.cfg.OnResult != nil {
				c.cfg.OnResult(shard, res)
			}
		}
		var (
			sum *fleet.SweepSummary
			err error
		)
		switch {
		case t.replayOnly:
			sum, err = mgr.ReplayStream(c.cfg.Kind, t.path, sink)
			if err == nil {
				// The journal's unfinished hosts belong to the shards that
				// adopted them; this summary accounts only what it replayed.
				sum.Hosts = sum.Scanned
				sum.NotScanned = 0
			}
		case t.path == "":
			sum, err = mgr.SweepStreamed(c.cfg.Kind, c.shardWorkers(), sink)
		case t.resume:
			sum, err = mgr.ResumeStream(c.cfg.Kind, c.shardWorkers(), t.path, sink)
			if errors.Is(err, fleet.ErrEmptyJournal) {
				// The shard died before its journal header committed:
				// nothing in the file is trusted or replayable, and this
				// coordinator owns the shard's host assignment, so restart
				// the task's sweep from scratch (Create truncates the husk).
				sum, err = mgr.SweepJournaledStream(c.cfg.Kind, c.shardWorkers(), t.path, sink)
			}
		default:
			sum, err = mgr.SweepJournaledStream(c.cfg.Kind, c.shardWorkers(), t.path, sink)
		}
		if sup != nil {
			sup.Done(watchID)
		}
		if err != nil {
			return nil, false, fmt.Errorf("fleetshard: shard %d: %w", job.shard, err)
		}
		if combined == nil {
			combined = sum
		} else {
			combined.Merge(sum)
		}
		if sum.Interrupted && !t.replayOnly {
			// Watchdog cancellation. Skip the remaining tasks: their hosts
			// are unfinished too and fail over with this task's.
			wedged = true
			break
		}
	}
	if combined == nil {
		combined = &fleet.SweepSummary{Kind: c.cfg.Kind}
	}
	combined.Seal()
	return combined, wedged, nil
}

func (c *Coordinator) shardWorkers() int {
	if c.cfg.ShardWorkers <= 0 {
		return 1
	}
	return c.cfg.ShardWorkers
}

// newShardManager builds the fleet.Manager for one task's host subset,
// forwarding the host-level knobs (including the supervision trio:
// cancel channel, hedge policy, jitter seed) and lazy-building every
// host.
func (c *Coordinator) newShardManager(indices []int, gauge *fleet.ResidentGauge, cancel <-chan struct{}) *fleet.Manager {
	mgr := fleet.NewManager()
	mgr.Parallelism = c.shardWorkers()
	mgr.HostParallelism = c.cfg.HostParallelism
	mgr.MaxRetries = c.cfg.MaxRetries
	mgr.RetryBackoff = c.cfg.RetryBackoff
	mgr.HostDeadline = c.cfg.HostDeadline
	mgr.BreakerThreshold = c.cfg.BreakerThreshold
	mgr.AbortAfterFailureFraction = c.cfg.AbortAfterFailureFraction
	mgr.ConfigureDetector = c.cfg.ConfigureDetector
	mgr.ScanHost = c.cfg.ScanHost
	mgr.Resident = gauge
	mgr.Cancel = cancel
	mgr.Hedge = c.cfg.Hedge
	mgr.BackoffJitterSeed = c.cfg.BackoffJitterSeed
	for _, i := range indices {
		i := i
		mgr.AddLazy(c.src.Name(i), func() (*machine.Machine, error) { return c.src.Build(i) })
	}
	return mgr
}

// writeManifest records the sweep topology at the start of a journaled
// sweep; readManifest validates it on resume.
func (c *Coordinator) writeManifest(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleetshard: journal dir: %w", err)
	}
	m := manifest{Version: 1, Kind: string(c.cfg.Kind), Shards: c.cfg.Shards,
		VNodes: c.cfg.VNodes, Hosts: c.src.Len()}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

func (c *Coordinator) readManifest(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("fleetshard: reading coordinator manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("fleetshard: coordinator manifest unparseable: %w", err)
	}
	if m.Shards != c.cfg.Shards {
		return fmt.Errorf("fleetshard: manifest records %d shards, resuming with %d — shard topology must match", m.Shards, c.cfg.Shards)
	}
	if m.Kind != string(c.cfg.Kind) {
		return fmt.Errorf("fleetshard: manifest records a %q sweep, resuming as %q", m.Kind, c.cfg.Kind)
	}
	if m.VNodes != c.cfg.VNodes {
		return fmt.Errorf("fleetshard: manifest records vnodes=%d, resuming with %d — ring geometry must match", m.VNodes, c.cfg.VNodes)
	}
	if m.Hosts != c.src.Len() {
		return fmt.Errorf("fleetshard: manifest records %d hosts, source has %d", m.Hosts, c.src.Len())
	}
	return nil
}
