package fleetshard

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/fleet"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/journal"
	"ghostbuster/internal/machine"
)

// testSource builds small deterministic machines: the same profile as
// the fleet package's tiny fleets, seeded by host index, so every
// Build(i) call — including the rebuilds a resume does — produces a
// machine whose scan results hash identically.
type testSource struct {
	n      int
	infect map[int]func() ghostware.Ghostware
}

func (s testSource) Len() int { return s.n }

func (s testSource) Name(i int) string { return fmt.Sprintf("node-%03d", i) }

func (s testSource) Build(i int) (*machine.Machine, error) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 0.05
	p.Churn = nil
	p.Seed = int64(i + 1)
	p.MFTHeadroom = 64
	p.ClusterHeadroom = 64
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	if g, ok := s.infect[i]; ok {
		if err := g().Install(m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func infectedSource(n int) testSource {
	return testSource{n: n, infect: map[int]func() ghostware.Ghostware{
		1: func() ghostware.Ghostware { return ghostware.NewHackerDefender() },
		4: func() ghostware.Ghostware { return ghostware.NewUrbin() },
	}}
}

// TestShardedSweepMatchesClassicFleet: the fleet-of-fleets report over
// real machines must carry the same verdicts and the same
// host-contribution accumulator as a classic single-manager sweep of
// the identical fleet — and the merged digest must not depend on the
// shard count.
func TestShardedSweepMatchesClassicFleet(t *testing.T) {
	src := infectedSource(6)

	classic := fleet.NewManager()
	for i := 0; i < src.Len(); i++ {
		m, err := src.Build(i)
		if err != nil {
			t.Fatal(err)
		}
		classic.Add(src.Name(i), m)
	}
	want, err := classic.SweepStreamed(fleet.SweepInside, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Infected != 2 {
		t.Fatalf("classic sweep found %d infected, want 2", want.Infected)
	}

	var digests []string
	for _, shards := range []int{1, 3} {
		coord, err := New(Config{Shards: shards}, src)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := coord.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scanned != 6 || rep.Infected != want.Infected || rep.HiddenTotal != want.HiddenTotal {
			t.Fatalf("%d shards: report = scanned %d infected %d hidden %d, classic = %d/%d/%d",
				shards, rep.Scanned, rep.Infected, rep.HiddenTotal, want.Scanned, want.Infected, want.HiddenTotal)
		}
		if rep.Acc.Sum() != want.Acc.Sum() {
			t.Errorf("%d shards: accumulator %.12s != classic %.12s", shards, rep.Acc.Sum(), want.Acc.Sum())
		}
		if err := rep.Verify(); err != nil {
			t.Errorf("%d shards: report fails verification: %v", shards, err)
		}
		digests = append(digests, rep.MergedDigest)
	}
	if digests[0] != digests[1] {
		t.Errorf("merged digest depends on shard count: 1 shard %.12s, 3 shards %.12s", digests[0], digests[1])
	}
}

// TestShardCrashResumeReproducesMergedDigest is the headline resilience
// invariant: complete a journaled sharded sweep, then lose one shard's
// journal entirely and tear a survivor's mid-record — the resumed run
// must replay survivors without re-scanning, re-hash the lost shard's
// hosts across survivors, and seal the exact MergedDigest of the
// uninterrupted run, with the whole journal set passing the deep audit.
func TestShardCrashResumeReproducesMergedDigest(t *testing.T) {
	const shards = 3
	src := infectedSource(24)

	refDir := t.TempDir()
	refCoord, err := New(Config{Shards: shards, JournalDir: refDir}, src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refCoord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Scanned != 24 || ref.Infected != 2 {
		t.Fatalf("reference sweep = scanned %d infected %d", ref.Scanned, ref.Infected)
	}

	dir := t.TempDir()
	coord, err := New(Config{Shards: shards, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sweep(); err != nil {
		t.Fatal(err)
	}
	// The crash: shard 1's journal is gone, shard 0's is torn after a
	// few records (mid-sweep kill), shard 2's survived intact.
	if err := os.Remove(shardJournalPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.TruncateRecords(shardJournalPath(dir, 0), 6, true); err != nil {
		t.Fatal(err)
	}

	resumedCoord, err := New(Config{Shards: shards, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := resumedCoord.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostShards) != 1 || rep.LostShards[0] != 1 {
		t.Fatalf("LostShards = %v, want [1]", rep.LostShards)
	}
	if rep.Scanned != 24 {
		t.Fatalf("resume scanned %d of 24", rep.Scanned)
	}
	if rep.Replayed == 0 {
		t.Error("resume replayed nothing — surviving journals were ignored")
	}
	if rep.MergedDigest != ref.MergedDigest {
		t.Errorf("resumed merged digest %.12s != uninterrupted %.12s", rep.MergedDigest, ref.MergedDigest)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("resumed report fails verification: %v", err)
	}
	if err := rep.VerifyJournals(dir); err != nil {
		t.Errorf("journal audit after resume: %v", err)
	}

	adopted := 0
	for _, sr := range rep.ShardResults {
		if sr.Lost && sr.Shard != 1 {
			t.Errorf("shard %d marked lost", sr.Shard)
		}
		adopted += sr.Adopted
	}
	if adopted == 0 {
		t.Error("no survivor adopted the lost shard's hosts")
	}
}

// TestResumeAfterTotalLossStartsOver: when every journal is gone there
// is nothing to replay; Resume must rerun the sweep under the original
// topology and still seal the reference digest.
func TestResumeAfterTotalLossStartsOver(t *testing.T) {
	src := infectedSource(12)
	dir := t.TempDir()
	coord, err := New(Config{Shards: 3, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if err := os.Remove(shardJournalPath(dir, s)); err != nil {
			t.Fatal(err)
		}
	}
	again, err := New(Config{Shards: 3, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := again.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 {
		t.Errorf("total loss replayed %d hosts from nowhere", rep.Replayed)
	}
	if rep.MergedDigest != ref.MergedDigest {
		t.Errorf("restarted merged digest %.12s != reference %.12s", rep.MergedDigest, ref.MergedDigest)
	}
	if err := rep.VerifyJournals(dir); err != nil {
		t.Errorf("journal audit after restart: %v", err)
	}
}

// TestResumeRestartsHeaderlessShardJournal: a shard that died before
// its journal header committed leaves an empty file behind. Resume must
// not trust it, not error out — it restarts that shard's sweep and
// still seals the reference digest.
func TestResumeRestartsHeaderlessShardJournal(t *testing.T) {
	src := infectedSource(18)
	dir := t.TempDir()
	coord, err := New(Config{Shards: 3, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(shardJournalPath(dir, 1), 0); err != nil {
		t.Fatal(err)
	}
	again, err := New(Config{Shards: 3, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := again.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 18 || rep.MergedDigest != ref.MergedDigest {
		t.Errorf("resume after headerless journal: scanned %d, digest %.12s (reference %.12s)",
			rep.Scanned, rep.MergedDigest, ref.MergedDigest)
	}
	if err := rep.VerifyJournals(dir); err != nil {
		t.Errorf("journal audit: %v", err)
	}
}

// TestResumeValidatesManifest: resuming under a different shard count
// than the manifest records must refuse loudly, not silently re-hash.
func TestResumeValidatesManifest(t *testing.T) {
	src := infectedSource(8)
	dir := t.TempDir()
	coord, err := New(Config{Shards: 4, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Sweep(); err != nil {
		t.Fatal(err)
	}
	wrong, err := New(Config{Shards: 5, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrong.Resume(); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Errorf("resume with wrong shard count: %v", err)
	}
}

// TestMergedDigestIndependentOfShardTopology: at synthetic scale, every
// shard count seals the same merged digest, and adding shards shrinks
// the virtual makespan — the scaling property paperbench curves in full.
func TestMergedDigestIndependentOfShardTopology(t *testing.T) {
	src := SyntheticSource{N: 5000}
	scan := SyntheticScan(1)
	var first *Report
	var makespan1 int64
	for _, shards := range []int{1, 2, 7, 64} {
		coord, err := New(Config{Shards: shards, ShardParallelism: 8, ScanHost: scan}, src)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := coord.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scanned != src.N {
			t.Fatalf("%d shards scanned %d of %d", shards, rep.Scanned, src.N)
		}
		if err := rep.Verify(); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if first == nil {
			first = rep
			makespan1 = rep.MakespanNs
			if rep.Infected == 0 {
				t.Fatal("synthetic fleet carries no infections — the digest equality below would be vacuous")
			}
			continue
		}
		if rep.MergedDigest != first.MergedDigest {
			t.Errorf("%d shards sealed %.12s, 1 shard sealed %.12s", shards, rep.MergedDigest, first.MergedDigest)
		}
		if rep.VirtualNs != first.VirtualNs {
			t.Errorf("%d shards charged %d virtual ns, 1 shard %d — total work must not depend on topology", shards, rep.VirtualNs, first.VirtualNs)
		}
	}
	coord, err := New(Config{Shards: 64, ShardParallelism: 8, ScanHost: scan}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanNs*8 > makespan1 {
		t.Errorf("64 shards makespan %d ns is not even 8× better than 1 shard's %d ns", rep.MakespanNs, makespan1)
	}
}

// TestBoundedResidentResults pins the bounded-memory invariant: across
// a synthetic sweep far larger than the worker pool, peak resident
// results never exceed O(shards in flight × workers) — concretely
// ShardParallelism × (ShardWorkers + 1).
func TestBoundedResidentResults(t *testing.T) {
	const (
		hosts            = 4000
		shards           = 8
		shardParallelism = 4
		shardWorkers     = 2
	)
	coord, err := New(Config{
		Shards: shards, ShardParallelism: shardParallelism,
		ShardWorkers: shardWorkers, ScanHost: SyntheticScan(1),
	}, SyntheticSource{N: hosts})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != hosts {
		t.Fatalf("scanned %d of %d", rep.Scanned, hosts)
	}
	bound := shardParallelism * (shardWorkers + 1)
	if rep.PeakResident == 0 || rep.PeakResident > bound {
		t.Errorf("peak resident results %d, bound is parallelism×(workers+1) = %d", rep.PeakResident, bound)
	}
}

// TestShardRetryRecoversTransientFault: a shard that fails twice and
// then succeeds must deliver its full summary, account the saturating
// backoff as virtual retry time, and leave the merged digest identical
// to a fault-free run.
func TestShardRetryRecoversTransientFault(t *testing.T) {
	src := SyntheticSource{N: 600}
	scan := SyntheticScan(1)
	clean, err := New(Config{Shards: 4, ScanHost: scan}, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Sweep()
	if err != nil {
		t.Fatal(err)
	}

	coord, err := New(Config{
		Shards: 4, ScanHost: scan, ShardMaxRetries: 3,
		ShardFault: func(shard, attempt int) error {
			if shard == 1 && attempt <= 2 {
				return fmt.Errorf("injected: sweeper process crashed")
			}
			return nil
		},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MergedDigest != want.MergedDigest {
		t.Errorf("faulted run sealed %.12s, clean run %.12s", rep.MergedDigest, want.MergedDigest)
	}
	var row *ShardResult
	for i := range rep.ShardResults {
		if rep.ShardResults[i].Shard == 1 {
			row = &rep.ShardResults[i]
		}
	}
	if row == nil || row.Attempts != 3 {
		t.Fatalf("shard 1 attempts = %+v, want 3", row)
	}
	// 2s first wait, doubled once: 6s of virtual retry backoff.
	if got := time.Duration(row.RetryNs); got != 6*time.Second {
		t.Errorf("shard 1 retry backoff %v, want 6s (2s + 4s)", got)
	}
	if rep.MakespanNs <= want.MakespanNs {
		t.Error("retry backoff did not lengthen the virtual makespan")
	}
}

// TestShardBreakerQuarantines: a shard failing past its breaker
// threshold is quarantined — its hosts are reported NotScanned, never
// silently dropped — and the report still verifies.
func TestShardBreakerQuarantines(t *testing.T) {
	src := SyntheticSource{N: 800}
	coord, err := New(Config{
		Shards: 4, ScanHost: SyntheticScan(1),
		ShardMaxRetries: 10, ShardBreakerThreshold: 2,
		ShardFault: func(shard, attempt int) error {
			if shard == 2 {
				return fmt.Errorf("injected: shard storage offline")
			}
			return nil
		},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.QuarantinedShards) != 1 || rep.QuarantinedShards[0] != 2 {
		t.Fatalf("QuarantinedShards = %v, want [2]", rep.QuarantinedShards)
	}
	var quarantinedHosts int
	for _, sr := range rep.ShardResults {
		if sr.Shard == 2 {
			quarantinedHosts = sr.Hosts
			if sr.Attempts != 2 {
				t.Errorf("breaker opened after %d attempts, want 2", sr.Attempts)
			}
			if sr.Summary != nil {
				t.Error("quarantined shard delivered a summary")
			}
		}
	}
	if quarantinedHosts == 0 {
		t.Fatal("shard 2 owned no hosts — quarantine test is vacuous")
	}
	if rep.NotScanned != quarantinedHosts {
		t.Errorf("NotScanned = %d, want the quarantined shard's %d hosts", rep.NotScanned, quarantinedHosts)
	}
	if rep.Scanned+rep.NotScanned != src.N {
		t.Errorf("scanned %d + not scanned %d != %d hosts", rep.Scanned, rep.NotScanned, src.N)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("report with quarantined shard fails verification: %v", err)
	}
}

// TestShardErrorBudgetAborts: once more than the budgeted fraction of
// shards has failed, the coordinator stops dispatching and marks the
// run aborted — AbortAfterFailureFraction one tier up.
func TestShardErrorBudgetAborts(t *testing.T) {
	src := SyntheticSource{N: 1600}
	bad := map[int]bool{1: true, 3: true, 5: true}
	coord, err := New(Config{
		Shards: 8, ShardParallelism: 1, ScanHost: SyntheticScan(1),
		AbortAfterShardFailureFraction: 0.25,
		ShardFault: func(shard, attempt int) error {
			if bad[shard] {
				return fmt.Errorf("injected: shard unreachable")
			}
			return nil
		},
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted || !strings.Contains(rep.AbortReason, "shard error budget") {
		t.Fatalf("aborted=%v reason=%q", rep.Aborted, rep.AbortReason)
	}
	if rep.NotScanned == 0 {
		t.Error("abort left no hosts unscanned — budget tripped too late to matter")
	}
	if rep.Scanned+rep.NotScanned != src.N {
		t.Errorf("scanned %d + not scanned %d != %d", rep.Scanned, rep.NotScanned, src.N)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("aborted report fails verification: %v", err)
	}
}

// TestReportVerifyDetectsTamper: any post-seal edit — aggregate
// counters, a shard summary, or a journal byte — must fail the matching
// verification layer.
func TestReportVerifyDetectsTamper(t *testing.T) {
	src := infectedSource(9)
	dir := t.TempDir()
	coord, err := New(Config{Shards: 3, JournalDir: dir}, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("fresh report fails verification: %v", err)
	}
	if err := rep.VerifyJournals(dir); err != nil {
		t.Fatalf("fresh journals fail audit: %v", err)
	}

	tampered := *rep
	tampered.Infected = 0
	if err := tampered.Verify(); err == nil {
		t.Error("hiding infections from the aggregate passed verification")
	}

	tampered = *rep
	tampered.ShardResults = append([]ShardResult(nil), rep.ShardResults...)
	for i := range tampered.ShardResults {
		if s := tampered.ShardResults[i].Summary; s != nil && s.Infected > 0 {
			edited := *s
			edited.Infected = 0
			edited.Scanned = s.Scanned // counters must re-aggregate, so adjust nothing else
			tampered.ShardResults[i].Summary = &edited
			break
		}
	}
	if err := tampered.Verify(); err == nil {
		t.Error("editing a shard summary passed verification")
	}

	// Flip one byte inside a shard journal: the audit must refuse.
	path := shardJournalPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := rep.VerifyJournals(dir); err == nil {
		t.Error("corrupted journal passed the deep audit")
	}
}
