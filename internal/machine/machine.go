// Package machine composes the substrates — NTFS volume, Registry,
// kernel, API stack — into a simulated Windows machine. It owns the
// lifecycle the paper's experiments need: boot (which executes ASEP
// hooks, starting ghostware), background service churn (the source of
// outside-the-box false positives), and reboot (volatile state dies,
// persistent state survives, ASEPs re-fire).
package machine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ghostbuster/internal/kernel"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/registry"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
)

// Drive is the system drive prefix.
const Drive = "C:"

// ErrBadPath reports a path not under the system drive.
var ErrBadPath = errors.New("machine: path not under " + Drive)

// Profile describes one of the paper's test machines. Scan-time
// experiments (§2: 30 s–38 min depending on disk usage and CPU) are
// reproduced by charging virtual time proportional to these parameters.
type Profile struct {
	Name       string
	Kind       string  // "corporate desktop", "home machine", "laptop", "workstation"
	DiskGB     float64 // disk capacity
	DiskUsedGB float64 // used space; drives file population and scan cost
	CPUMHz     int
	// FilesPerGB scales how many real MFT records represent 1 GB of
	// declared usage. Kept modest so the simulation stays in memory; the
	// virtual-time cost model compensates via RealFilesPerGB.
	FilesPerGB int
	// RealFilesPerGB is the file density the profile *represents* (a
	// typical 2004 desktop held 1000–5000 files per GB). Scanners charge
	// virtual time for the represented files, so scan durations land in
	// the paper's ranges even though the simulation stores fewer records.
	RealFilesPerGB int
	// RegNoiseKeys is how many synthetic Registry keys workload
	// population creates; RealRegKeys is the represented total ("hundreds
	// of thousands of files and Registry entries", §4).
	RegNoiseKeys int
	RealRegKeys  int
	// DiskMBps is sequential read throughput for low-level scans.
	DiskMBps   int
	RebootTime time.Duration // WinPE CD boot adds 1.5–3 min (paper §2)
	Seed       int64
	Churn      []ChurnKind // always-running services on this machine
	// MFTHeadroom and ClusterHeadroom override the format-time slack
	// added on top of the populated file count (MFT records and data
	// clusters respectively). Zero keeps the generous defaults; fleet
	// benchmarks use small values to build thousands of tiny hosts.
	MFTHeadroom     int
	ClusterHeadroom int
}

// RepFileFactor returns how many represented files each stored MFT
// record stands for.
func (p Profile) RepFileFactor() float64 {
	if p.FilesPerGB <= 0 || p.RealFilesPerGB <= 0 {
		return 1
	}
	return float64(p.RealFilesPerGB) / float64(p.FilesPerGB)
}

// RepRegFactor returns how many represented Registry keys each stored
// key stands for.
func (p Profile) RepRegFactor() float64 {
	if p.RegNoiseKeys <= 0 || p.RealRegKeys <= 0 {
		return 1
	}
	return float64(p.RealRegKeys) / float64(p.RegNoiseKeys)
}

// CPUScale returns the slowdown factor relative to the 1.5 GHz baseline.
func (p Profile) CPUScale() float64 {
	if p.CPUMHz <= 0 {
		return 1
	}
	return 1500.0 / float64(p.CPUMHz)
}

// DefaultProfile is a mid-range corporate desktop.
func DefaultProfile() Profile {
	return Profile{
		Name: "desktop-1", Kind: "corporate desktop",
		DiskGB: 40, DiskUsedGB: 10, CPUMHz: 1500, FilesPerGB: 60,
		RealFilesPerGB: 1500, RegNoiseKeys: 1200, RealRegKeys: 80000, DiskMBps: 30,
		RebootTime: 2 * time.Minute, Seed: 1,
		Churn: []ChurnKind{ChurnAVLogger, ChurnPrefetch, ChurnSystemRestore, ChurnBrowserTemp},
	}
}

// Activation is ghostware (or service) code that runs when its image is
// started: it may create processes, install API hooks, load drivers, or
// perform DKOM.
type Activation func(m *Machine) error

// Machine is one simulated Windows box.
type Machine struct {
	Profile Profile
	Clock   *vtime.Clock
	Disk    *ntfs.Volume
	Reg     *registry.Registry
	Kern    *kernel.Kernel
	API     *winapi.Stack
	Rand    *rand.Rand

	// FaultEpoch, when set by a fault-injection layer, returns a counter
	// that advances whenever an injected fault fires. Cache layers
	// compare epochs around a parse and refuse to memoize results that
	// may have consumed damaged bytes.
	FaultEpoch func() uint64

	// bootBaseline is the pristine boot sector captured at format time,
	// before any software (ghost or honest) ran. It is the trust anchor
	// for the boot-chain scan: a bootkit can lie about the current sector
	// but cannot rewrite what the sector held before it arrived.
	bootBaseline []byte

	// removable is the optional hot-pluggable volume at RemovableDrive
	// (nil when no media is attached). removableEvents counts attach and
	// detach transitions so cache layers can tell "same stick, new
	// writes" from "different stick with coincidentally equal
	// generation". Guarded by remMu: scan units read the pointer in
	// parallel while tests hot-plug from another goroutine.
	remMu           sync.Mutex
	removable       *ntfs.Volume
	removableEvents uint64
	removableFault  ntfs.DeviceFault // re-applied to each attached stick

	images    map[string]Activation // upper-cased image path -> activation
	churn     []*churnState
	bootCount int
	// startNotifiers mirror PsSetCreateProcessNotifyRoutine: callbacks
	// invoked for every newly created process. Rootkits register
	// injectors here so that processes started after infection get
	// patched too. Volatile: cleared at shutdown like everything else.
	startNotifiers []ProcessNotifier
}

// ProcessNotifier observes (and may tamper with) newly created
// processes.
type ProcessNotifier func(m *Machine, pid uint64, name string) error

// New builds a machine with the standard Windows skeleton, boots it
// (base services start), and returns it. The population is minimal;
// workload.Populate adds bulk files and Registry noise.
func New(p Profile) (*Machine, error) {
	if p.FilesPerGB <= 0 {
		p.FilesPerGB = 60
	}
	clock := &vtime.Clock{}
	// Size the volume for the profile: records for the populated files
	// plus headroom for churn and ghostware.
	recHead, clusHead := p.MFTHeadroom, p.ClusterHeadroom
	if recHead <= 0 {
		recHead = 4096
	}
	if clusHead <= 0 {
		clusHead = 8192
	}
	wantRecords := int(p.DiskUsedGB*float64(p.FilesPerGB)) + recHead
	dataClusters := wantRecords + clusHead
	vol, err := ntfs.Format(dataClusters, wantRecords)
	if err != nil {
		return nil, fmt.Errorf("machine: formatting disk: %w", err)
	}
	baseline, err := vol.ReadDeviceRange(0, ntfs.BytesPerSector)
	if err != nil {
		return nil, fmt.Errorf("machine: capturing boot baseline: %w", err)
	}
	reg, err := registry.New()
	if err != nil {
		return nil, fmt.Errorf("machine: building registry: %w", err)
	}
	kern, err := kernel.New()
	if err != nil {
		return nil, fmt.Errorf("machine: booting kernel: %w", err)
	}
	m := &Machine{
		Profile:      p,
		Clock:        clock,
		Disk:         vol,
		Reg:          reg,
		Kern:         kern,
		Rand:         rand.New(rand.NewSource(p.Seed)),
		bootBaseline: baseline,
		images:       map[string]Activation{},
	}
	m.API = winapi.NewStack(m.bases(), clock, m.costModel())
	if err := m.buildSkeleton(); err != nil {
		return nil, err
	}
	for _, kind := range p.Churn {
		svc, err := newChurn(kind, m)
		if err != nil {
			return nil, err
		}
		m.churn = append(m.churn, svc)
	}
	if err := m.Boot(); err != nil {
		return nil, err
	}
	return m, nil
}

// costModel derives per-call API pricing from the CPU speed.
func (m *Machine) costModel() winapi.CostModel {
	base := winapi.DefaultCosts()
	scale := 1500.0 / float64(m.Profile.CPUMHz)
	return winapi.CostModel{
		PerAPICall: time.Duration(float64(base.PerAPICall) * scale),
		PerEntry:   time.Duration(float64(base.PerEntry) * scale),
	}
}

// VolumePath converts a full Win32 path ("C:\Windows") to a volume path
// ("\Windows").
func VolumePath(full string) (string, error) {
	if !strings.HasPrefix(strings.ToUpper(full), Drive+`\`) && !strings.EqualFold(full, Drive) {
		return "", fmt.Errorf("%w: %s", ErrBadPath, full)
	}
	return full[len(Drive):], nil
}

// FullPath converts a volume path to a full Win32 path.
func FullPath(volPath string) string {
	if volPath == "" || volPath == `\` {
		return Drive + `\`
	}
	return Drive + volPath
}

// bases wires the substrate implementations as the bottom of the API
// chains.
func (m *Machine) bases() winapi.Bases {
	return winapi.Bases{
		FileEnum: func(call *winapi.Call, dir string) ([]winapi.DirEntry, error) {
			if strings.HasPrefix(strings.ToUpper(dir), RemovableDrive) {
				vol := m.RemovableVolume()
				if vol == nil {
					return nil, fmt.Errorf("%w: %s", ErrNoMedia, dir)
				}
				vp, err := drivePath(RemovableDrive, dir)
				if err != nil {
					return nil, err
				}
				return enumVolume(vol, dir, vp)
			}
			vp, err := VolumePath(dir)
			if err != nil {
				return nil, err
			}
			return enumVolume(m.Disk, dir, vp)
		},
		BootRead: func(call *winapi.Call) ([]byte, error) {
			// The inside-the-box read of sector 0: the filesystem driver
			// reading its own disk. Bootkits hook this API level to hand
			// back the pristine pre-infection sector.
			return m.Disk.ReadDeviceRange(0, ntfs.BytesPerSector)
		},
		RegQuery: func(call *winapi.Call, keyPath string) (winapi.KeySnapshot, error) {
			subs, err := m.Reg.EnumKeys(keyPath)
			if err != nil {
				return winapi.KeySnapshot{}, err
			}
			vals, err := m.Reg.EnumValues(keyPath)
			if err != nil {
				return winapi.KeySnapshot{}, err
			}
			snap := winapi.KeySnapshot{Subkeys: subs}
			for _, v := range vals {
				snap.Values = append(snap.Values, winapi.KeyValue{Name: v.Name, Type: v.Type, Data: v.Data})
			}
			return snap, nil
		},
		ProcEnum: func(call *winapi.Call) ([]winapi.ProcEntry, error) {
			procs, err := m.Kern.Processes()
			if err != nil {
				return nil, err
			}
			out := make([]winapi.ProcEntry, 0, len(procs))
			for _, p := range procs {
				out = append(out, winapi.ProcEntry{Pid: p.Pid, Name: p.Name, Path: p.ImagePath, ParentPid: p.ParentPid})
			}
			return out, nil
		},
		ModEnum: func(call *winapi.Call, pid uint64) ([]winapi.ModEntry, error) {
			mods, err := m.Kern.Modules(pid)
			if err != nil {
				return nil, err
			}
			out := make([]winapi.ModEntry, 0, len(mods))
			for _, mod := range mods {
				out = append(out, winapi.ModEntry{Base: mod.Base, Size: mod.Size, Path: mod.Path})
			}
			return out, nil
		},
		DriverEnum: func(call *winapi.Call) ([]winapi.ModEntry, error) {
			drvs, err := m.Kern.Drivers()
			if err != nil {
				return nil, err
			}
			out := make([]winapi.ModEntry, 0, len(drvs))
			for _, d := range drvs {
				out = append(out, winapi.ModEntry{Base: d.Base, Size: d.Size, Path: d.Path})
			}
			return out, nil
		},
	}
}

// enumVolume lists a directory on vol and shapes the result as Win32
// directory entries whose paths keep the caller's drive prefix.
func enumVolume(vol *ntfs.Volume, dir, vp string) ([]winapi.DirEntry, error) {
	infos, err := vol.ReadDir(vp)
	if err != nil {
		return nil, err
	}
	out := make([]winapi.DirEntry, 0, len(infos))
	prefix := strings.TrimSuffix(dir, `\`)
	for _, inf := range infos {
		out = append(out, winapi.DirEntry{
			Name: inf.Name, Path: prefix + `\` + inf.Name,
			Size: inf.Size, Dir: inf.Dir,
			Created: inf.Created, Modified: inf.Modified, Attrs: inf.Attrs,
		})
	}
	return out, nil
}

// BootBaseline returns a copy of the pristine boot sector captured at
// format time.
func (m *Machine) BootBaseline() []byte {
	return append([]byte(nil), m.bootBaseline...)
}

// Now returns the current virtual time as FILETIME-style ticks for
// on-disk timestamps.
func (m *Machine) Now() uint64 { return vtime.FileTime(m.Clock.Now()) }

// --- filesystem convenience (the "admin-privilege" mutation surface) ----------

// MkdirAll creates a directory path (full Win32 path).
func (m *Machine) MkdirAll(full string) error {
	vp, err := VolumePath(full)
	if err != nil {
		return err
	}
	return m.Disk.MkdirAll(vp, m.Now())
}

// DropFile writes a file (creating parents), as software with admin
// rights does — directly at the driver level, not through the hook
// chain.
func (m *Machine) DropFile(full string, data []byte) error {
	return m.DropFileSized(full, data, 0)
}

// DropFileSized writes a file advertising declaredSize bytes.
func (m *Machine) DropFileSized(full string, data []byte, declaredSize uint64) error {
	vp, err := VolumePath(full)
	if err != nil {
		return err
	}
	if dir, _ := splitFull(full); dir != Drive {
		dvp, err := VolumePath(dir)
		if err != nil {
			return err
		}
		if err := m.Disk.MkdirAll(dvp, m.Now()); err != nil {
			return err
		}
	}
	if m.Disk.Exists(vp) {
		return m.Disk.WriteFile(vp, data, m.Now())
	}
	return m.Disk.Create(vp, ntfs.CreateOptions{Data: data, DeclaredSize: declaredSize, Created: m.Now(), Modified: m.Now()})
}

// AppendFile appends to a file, creating it if needed.
func (m *Machine) AppendFile(full string, data []byte) error {
	vp, err := VolumePath(full)
	if err != nil {
		return err
	}
	return m.Disk.Append(vp, data, m.Now())
}

// RemoveFile deletes one file or empty directory.
func (m *Machine) RemoveFile(full string) error {
	vp, err := VolumePath(full)
	if err != nil {
		return err
	}
	return m.Disk.Remove(vp)
}

// WriteDeviceBytes patches raw device bytes at the given offset — the
// lowest mutation surface the simulation offers, used by ghostware that
// edits on-disk structures behind the filesystem driver's back (the way
// a kernel rootkit issues IRPs straight to the disk class driver). It
// deliberately bypasses the Volume index, but it still bumps the
// volume's mutation generation: in this simulation the device is only
// reachable through the machine, so every byte-level write is visible
// to the incremental-scan cache and can never be masked by a stale
// parse.
func (m *Machine) WriteDeviceBytes(off int, data []byte) error {
	return m.Disk.PatchDevice(off, data)
}

// FileExists reports whether the path exists on disk (driver view).
func (m *Machine) FileExists(full string) bool {
	vp, err := VolumePath(full)
	if err != nil {
		return false
	}
	return m.Disk.Exists(vp)
}

func splitFull(full string) (dir, base string) {
	i := strings.LastIndexByte(full, '\\')
	if i < 0 {
		return Drive, full
	}
	d := full[:i]
	if strings.EqualFold(d, Drive) {
		d = Drive
	}
	return d, full[i+1:]
}

// --- process identity ----------------------------------------------------------

// CallAs builds a Call context for queries issued by the named running
// process. It resolves the pid via the kernel truth so even hidden
// processes can issue calls.
func (m *Machine) CallAs(imageName string) (*winapi.Call, error) {
	pid, err := m.Kern.PidByName(imageName)
	if err != nil {
		return nil, err
	}
	return &winapi.Call{Proc: winapi.Proc{Pid: pid, Name: imageName}}, nil
}

// StartProcess creates a process and fires the process-creation
// notifiers (so resident rootkits can patch the newcomer).
func (m *Machine) StartProcess(name, imagePath string) (uint64, error) {
	pid, err := m.Kern.CreateProcess(name, imagePath, kernel.SystemPid)
	if err != nil {
		return 0, err
	}
	m.Clock.Advance(20 * time.Millisecond)
	for _, n := range m.startNotifiers {
		if err := n(m, pid, name); err != nil {
			return 0, fmt.Errorf("machine: process notifier: %w", err)
		}
	}
	return pid, nil
}

// RegisterProcessNotifier installs a process-creation callback (the
// PsSetCreateProcessNotifyRoutine analog). Like API hooks, notifiers are
// volatile: they die at shutdown.
func (m *Machine) RegisterProcessNotifier(n ProcessNotifier) {
	m.startNotifiers = append(m.startNotifiers, n)
}

// RegisterImage associates an on-disk image path with the code that runs
// when the boot sequence (or a Run-key hook) starts it.
func (m *Machine) RegisterImage(imagePath string, act Activation) {
	m.images[strings.ToUpper(imagePath)] = act
}

// activationFor resolves an image path (possibly with arguments or a
// relative service path) to a registered activation.
func (m *Machine) activationFor(data string) (Activation, string) {
	cmd := strings.TrimSpace(data)
	if cmd == "" {
		return nil, ""
	}
	// Strip arguments: take up to first space unless the path is quoted.
	if strings.HasPrefix(cmd, `"`) {
		if end := strings.Index(cmd[1:], `"`); end >= 0 {
			cmd = cmd[1 : 1+end]
		}
	} else if sp := strings.IndexByte(cmd, ' '); sp > 0 {
		cmd = cmd[:sp]
	}
	full := cmd
	if !strings.HasPrefix(strings.ToUpper(full), Drive) {
		// Service ImagePath values are often system32-relative.
		full = Drive + `\WINDOWS\` + strings.TrimPrefix(cmd, `\`)
	}
	if act, ok := m.images[strings.ToUpper(full)]; ok {
		return act, full
	}
	if act, ok := m.images[strings.ToUpper(cmd)]; ok {
		return act, cmd
	}
	return nil, full
}
