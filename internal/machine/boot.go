package machine

import (
	"fmt"
	"strings"

	"ghostbuster/internal/hive"
	"ghostbuster/internal/kernel"
	"ghostbuster/internal/registry"
	"ghostbuster/internal/winapi"
)

// Base processes started at every boot, parent-ordered.
var bootProcesses = []struct{ name, path string }{
	{"smss.exe", `C:\WINDOWS\system32\smss.exe`},
	{"csrss.exe", `C:\WINDOWS\system32\csrss.exe`},
	{"winlogon.exe", `C:\WINDOWS\system32\winlogon.exe`},
	{"services.exe", `C:\WINDOWS\system32\services.exe`},
	{"lsass.exe", `C:\WINDOWS\system32\lsass.exe`},
	{"svchost.exe", `C:\WINDOWS\system32\svchost.exe`},
	{"svchost.exe", `C:\WINDOWS\system32\svchost.exe`},
	{"explorer.exe", `C:\WINDOWS\explorer.exe`},
}

var systemFiles = []string{
	`C:\WINDOWS\explorer.exe`,
	`C:\WINDOWS\system32\ntoskrnl.exe`,
	`C:\WINDOWS\system32\ntdll.dll`,
	`C:\WINDOWS\system32\kernel32.dll`,
	`C:\WINDOWS\system32\user32.dll`,
	`C:\WINDOWS\system32\advapi32.dll`,
	`C:\WINDOWS\system32\smss.exe`,
	`C:\WINDOWS\system32\csrss.exe`,
	`C:\WINDOWS\system32\winlogon.exe`,
	`C:\WINDOWS\system32\services.exe`,
	`C:\WINDOWS\system32\lsass.exe`,
	`C:\WINDOWS\system32\svchost.exe`,
	`C:\WINDOWS\system32\cmd.exe`,
	`C:\WINDOWS\system32\taskmgr.exe`,
	`C:\WINDOWS\system32\tlist.exe`,
	`C:\WINDOWS\regedit.exe`,
	`C:\WINDOWS\notepad.exe`,
}

var systemDrivers = []string{
	`C:\WINDOWS\system32\drivers\disk.sys`,
	`C:\WINDOWS\system32\drivers\ndis.sys`,
	`C:\WINDOWS\system32\drivers\tcpip.sys`,
}

var skeletonDirs = []string{
	`C:\WINDOWS`,
	`C:\WINDOWS\system32`,
	`C:\WINDOWS\system32\drivers`,
	`C:\WINDOWS\system32\config`,
	`C:\WINDOWS\Prefetch`,
	`C:\Program Files`,
	`C:\Program Files\Common Files`,
	`C:\Documents and Settings\user`,
	`C:\Documents and Settings\user\Local Settings\Temp`,
	`C:\Documents and Settings\user\Local Settings\Temporary Internet Files`,
	`C:\System Volume Information\_restore{B7A4-11D9}`,
}

// buildSkeleton lays down the stock Windows filesystem and Registry.
func (m *Machine) buildSkeleton() error {
	for _, d := range skeletonDirs {
		if err := m.MkdirAll(d); err != nil {
			return fmt.Errorf("machine: skeleton dir %s: %w", d, err)
		}
	}
	for _, f := range systemFiles {
		if err := m.DropFileSized(f, []byte("MZ"), 64<<10); err != nil {
			return fmt.Errorf("machine: skeleton file %s: %w", f, err)
		}
	}
	for _, f := range systemDrivers {
		if err := m.DropFileSized(f, []byte("MZ"), 32<<10); err != nil {
			return err
		}
	}
	// Hive backing files: placeholders whose logical content is the live
	// hive buffers (the raw Registry scan copies Hive.Snapshot()).
	for _, f := range []string{
		`C:\WINDOWS\system32\config\system`,
		`C:\WINDOWS\system32\config\software`,
		`C:\Documents and Settings\user\ntuser.dat`,
	} {
		if err := m.DropFileSized(f, []byte("regf"), 4<<20); err != nil {
			return err
		}
	}
	// Stock driver services.
	for _, drv := range systemDrivers {
		name := drv[strings.LastIndexByte(drv, '\\')+1:]
		svc := strings.TrimSuffix(name, ".sys")
		key := `HKLM\SYSTEM\CurrentControlSet\Services\` + svc
		if err := m.Reg.CreateKey(key); err != nil {
			return err
		}
		if err := m.Reg.SetString(key, "ImagePath", `system32\drivers\`+name); err != nil {
			return err
		}
		if err := m.Reg.SetValue(key, hive.DwordValue("Start", 1)); err != nil {
			return err
		}
	}
	// Winlogon defaults.
	wl := `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Winlogon`
	if err := m.Reg.SetString(wl, "Shell", "Explorer.exe"); err != nil {
		return err
	}
	return m.Reg.SetString(wl, "Userinit", `C:\WINDOWS\system32\userinit.exe,`)
}

// BootCount returns how many times the machine has booted.
func (m *Machine) BootCount() int { return m.bootCount }

// Boot starts the base processes and drivers, fires every ASEP hook
// (starting registered ghostware — *hidden* hooks still execute: hiding
// evades detection, not the boot path), and runs boot-time churn.
func (m *Machine) Boot() error {
	m.bootCount++
	for _, p := range bootProcesses {
		if _, err := m.StartProcess(p.name, p.path); err != nil {
			return fmt.Errorf("machine: starting %s: %w", p.name, err)
		}
	}
	for _, d := range systemDrivers {
		if _, err := m.Kern.LoadDriver(d); err != nil {
			return err
		}
	}
	if err := m.fireASEPs(); err != nil {
		return err
	}
	for _, c := range m.churn {
		if err := c.onBoot(m); err != nil {
			return err
		}
	}
	return nil
}

// fireASEPs executes every hook in the ASEP catalog, reading the truth
// (the configuration manager directly — the boot path is below any
// user-mode hiding).
func (m *Machine) fireASEPs() error {
	q := func(keyPath string) (registry.KeyView, error) {
		subs, err := m.Reg.EnumKeys(keyPath)
		if err != nil {
			return registry.KeyView{}, err
		}
		vals, err := m.Reg.EnumValues(keyPath)
		if err != nil {
			return registry.KeyView{}, err
		}
		view := registry.KeyView{Subkeys: subs}
		for _, v := range vals {
			view.Values = append(view.Values, registry.ValueView{Name: v.Name, Data: v.String()})
		}
		return view, nil
	}
	hooks, err := registry.CollectHooks(q, registry.StandardASEPs())
	if err != nil {
		return err
	}
	for _, h := range hooks {
		// AppInit_DLLs may carry several comma/space separated DLLs.
		targets := []string{h.Data}
		if h.ASEP == "AppInit_DLLs" {
			targets = splitList(h.Data)
		}
		for _, tgt := range targets {
			act, _ := m.activationFor(tgt)
			if act == nil {
				continue
			}
			if err := act(m); err != nil {
				return fmt.Errorf("machine: ASEP %s activation: %w", h.String(), err)
			}
		}
	}
	return nil
}

func splitList(s string) []string {
	f := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' })
	out := make([]string, 0, len(f))
	for _, x := range f {
		if x != "" {
			out = append(out, x)
		}
	}
	return out
}

// Shutdown stops the OS: always-running services flush their state to
// disk (the paper's outside-the-box false-positive source), then the
// volatile state — kernel objects and every installed API hook — is
// discarded.
func (m *Machine) Shutdown() error {
	for _, c := range m.churn {
		if err := c.onShutdown(m); err != nil {
			return err
		}
	}
	kern, err := kernel.New()
	if err != nil {
		return err
	}
	m.Kern = kern
	m.API = winapi.NewStack(m.bases(), m.Clock, m.costModel())
	m.startNotifiers = nil
	return nil
}

// Reboot is Shutdown followed by Boot, charging the profile's reboot
// time.
func (m *Machine) Reboot() error {
	if err := m.Shutdown(); err != nil {
		return err
	}
	m.Clock.Advance(m.Profile.RebootTime)
	return m.Boot()
}

// RunChurn advances virtual time by roughly the given number of minutes
// of normal desktop activity, letting always-running services write
// their periodic files.
func (m *Machine) RunChurn(minutes int) error {
	for i := 0; i < minutes; i++ {
		m.Clock.Advance(minuteTick)
		for _, c := range m.churn {
			if err := c.onTick(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Pid resolves an image name to the pid of a live process (truth view).
func (m *Machine) Pid(imageName string) (uint64, error) {
	return m.Kern.PidByName(imageName)
}

// SystemCall returns a Call issued from explorer.exe, the default
// vantage point for user-level scans.
func (m *Machine) SystemCall() *winapi.Call {
	call, err := m.CallAs("explorer.exe")
	if err != nil {
		// explorer always exists after boot; fall back to a synthetic id.
		return &winapi.Call{Proc: winapi.Proc{Pid: 0, Name: "explorer.exe"}}
	}
	return call
}
