package machine

import (
	"fmt"
	"strings"
	"testing"

	"ghostbuster/internal/winapi"
)

func mustMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultProfile())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestBootStartsBaseProcesses(t *testing.T) {
	m := mustMachine(t)
	procs, err := m.Kern.Processes()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"System": false, "explorer.exe": false, "services.exe": false, "winlogon.exe": false}
	for _, p := range procs {
		if _, ok := want[p.Name]; ok {
			want[p.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("base process %s not running", name)
		}
	}
	drvs, err := m.Kern.Drivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(drvs) != len(systemDrivers) {
		t.Errorf("drivers = %d, want %d", len(drvs), len(systemDrivers))
	}
}

func TestSkeletonVisibleThroughAPI(t *testing.T) {
	m := mustMachine(t)
	call := m.SystemCall()
	entries, err := m.API.EnumDirWin32(call, `C:\WINDOWS\system32`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.EqualFold(e.Name, "kernel32.dll") {
			found = true
			if e.Path != `C:\WINDOWS\system32\kernel32.dll` {
				t.Errorf("full path = %q", e.Path)
			}
		}
	}
	if !found {
		t.Error("kernel32.dll not visible via API")
	}
	snap, err := m.API.QueryKeyWin32(call, `HKLM\SYSTEM\CurrentControlSet\Services`)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Subkeys) < 3 {
		t.Errorf("service keys = %v", snap.Subkeys)
	}
}

func TestVolumePathConversion(t *testing.T) {
	vp, err := VolumePath(`C:\WINDOWS\system32`)
	if err != nil || vp != `\WINDOWS\system32` {
		t.Errorf("VolumePath = %q err %v", vp, err)
	}
	if _, err := VolumePath(`D:\other`); err == nil {
		t.Error("wrong drive should fail")
	}
	if FullPath(`\x`) != `C:\x` || FullPath(``) != `C:\` {
		t.Error("FullPath broken")
	}
}

func TestDropAppendRemove(t *testing.T) {
	m := mustMachine(t)
	if err := m.DropFile(`C:\newdir\deep\f.txt`, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !m.FileExists(`C:\newdir\deep\f.txt`) {
		t.Error("dropped file missing")
	}
	if err := m.AppendFile(`C:\newdir\deep\f.txt`, []byte("y")); err != nil {
		t.Fatal(err)
	}
	data, err := m.Disk.ReadFile(`\newdir\deep\f.txt`)
	if err != nil || string(data) != "xy" {
		t.Errorf("append result = %q err %v", data, err)
	}
	if err := m.RemoveFile(`C:\newdir\deep\f.txt`); err != nil {
		t.Fatal(err)
	}
	if m.FileExists(`C:\newdir\deep\f.txt`) {
		t.Error("file should be removed")
	}
}

func TestASEPActivationRunsAtBoot(t *testing.T) {
	m := mustMachine(t)
	started := 0
	m.RegisterImage(`C:\evil\mal.exe`, func(m *Machine) error {
		started++
		_, err := m.StartProcess("mal.exe", `C:\evil\mal.exe`)
		return err
	})
	if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`, "mal", `C:\evil\mal.exe -s`); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if started != 1 {
		t.Errorf("activation ran %d times, want 1", started)
	}
	if _, err := m.Pid("mal.exe"); err != nil {
		t.Errorf("mal.exe not running after reboot: %v", err)
	}
	// Removing the ASEP hook disables the malware across reboot — the
	// paper's removal story.
	if err := m.Reg.DeleteValue(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`, "mal"); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if started != 1 {
		t.Errorf("activation ran %d times after hook removal, want still 1", started)
	}
	if _, err := m.Pid("mal.exe"); err == nil {
		t.Error("mal.exe should not run after its hook was deleted")
	}
}

func TestServiceASEPActivation(t *testing.T) {
	m := mustMachine(t)
	ran := false
	m.RegisterImage(`C:\WINDOWS\hxdef100.exe`, func(m *Machine) error {
		ran = true
		return nil
	})
	key := `HKLM\SYSTEM\CurrentControlSet\Services\HackerDefender100`
	if err := m.Reg.CreateKey(key); err != nil {
		t.Fatal(err)
	}
	// Service paths are often system32-relative; activationFor resolves.
	if err := m.Reg.SetString(key, "ImagePath", `hxdef100.exe`); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("service activation did not run")
	}
}

func TestRebootClearsVolatileState(t *testing.T) {
	m := mustMachine(t)
	m.API.Install(winapi.NewFileHideHook("mal", winapi.LevelSSDT, "test", nil,
		func(*winapi.Call, winapi.DirEntry) bool { return true }))
	if _, err := m.StartProcess("transient.exe", `C:\t.exe`); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if len(m.API.Hooks()) != 0 {
		t.Errorf("hooks survived reboot: %v", m.API.Hooks())
	}
	if _, err := m.Pid("transient.exe"); err == nil {
		t.Error("transient process survived reboot")
	}
	if m.BootCount() != 2 {
		t.Errorf("BootCount = %d", m.BootCount())
	}
	// Persistent state survives.
	if !m.FileExists(`C:\WINDOWS\system32\kernel32.dll`) {
		t.Error("disk state lost across reboot")
	}
}

func TestRebootAdvancesClock(t *testing.T) {
	m := mustMachine(t)
	before := m.Clock.Now()
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Now()-before < m.Profile.RebootTime {
		t.Errorf("reboot advanced only %v", m.Clock.Now()-before)
	}
}

func TestShutdownChurnCreatesNewFiles(t *testing.T) {
	m := mustMachine(t)
	before := m.Disk.FileCount()
	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	after := m.Disk.FileCount()
	// Default profile: AV log rotation + SR change log = 2 new files.
	if after-before != 2 {
		t.Errorf("shutdown created %d files, want 2", after-before)
	}
}

func TestCCMChurnCreatesMore(t *testing.T) {
	p := DefaultProfile()
	p.Churn = append(p.Churn, ChurnCCM)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Disk.FileCount()
	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := m.Disk.FileCount() - before; got != 7 {
		t.Errorf("CCM machine shutdown created %d files, want 7", got)
	}
	// Disabling CCM drops it back to 2 (the paper's experiment).
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	m.DisableChurn(ChurnCCM)
	before = m.Disk.FileCount()
	if err := m.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := m.Disk.FileCount() - before; got != 2 {
		t.Errorf("after disabling CCM, shutdown created %d files, want 2", got)
	}
}

func TestRunChurnWritesPeriodically(t *testing.T) {
	m := mustMachine(t)
	before := m.Clock.Now()
	if err := m.RunChurn(30); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Now()-before != 30*minuteTick {
		t.Errorf("churn advanced %v", m.Clock.Now()-before)
	}
	// Browser temp files appear over time.
	entries, err := m.Disk.ReadDir(`\Documents and Settings\user\Local Settings\Temporary Internet Files`)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("no browser temp churn")
	}
}

func TestCallAsResolvesRunningProcess(t *testing.T) {
	m := mustMachine(t)
	call, err := m.CallAs("explorer.exe")
	if err != nil {
		t.Fatal(err)
	}
	if call.Proc.Name != "explorer.exe" || call.Proc.Pid == 0 {
		t.Errorf("call = %+v", call)
	}
	if _, err := m.CallAs("nonexistent.exe"); err == nil {
		t.Error("CallAs on missing process should fail")
	}
}

// TestActivationCommandParsing: ASEP hook data comes in several shapes —
// bare paths, quoted paths with arguments, system32-relative service
// paths — and all must resolve to the registered image.
func TestActivationCommandParsing(t *testing.T) {
	cases := []struct {
		image string // registered image path
		data  string // ASEP hook data
	}{
		{`C:\Program Files\App One\app.exe`, `"C:\Program Files\App One\app.exe" -tray -s`},
		{`C:\simple\app.exe`, `C:\simple\app.exe`},
		{`C:\args\app.exe`, `C:\args\app.exe -service`},
		{`C:\WINDOWS\system32\drivers\drv.sys`, `system32\drivers\drv.sys`},
	}
	for _, tc := range cases {
		m := mustMachine(t)
		ran := 0
		m.RegisterImage(tc.image, func(m *Machine) error {
			ran++
			return nil
		})
		if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`, "tc", tc.data); err != nil {
			t.Fatal(err)
		}
		if err := m.Reboot(); err != nil {
			t.Fatal(err)
		}
		if ran != 1 {
			t.Errorf("data %q: activation ran %d times, want 1", tc.data, ran)
		}
	}
}

// TestUnregisteredASEPDataIsIgnored: hooks pointing at binaries with no
// registered behaviour (benign or missing software) must not break boot.
func TestUnregisteredASEPDataIsIgnored(t *testing.T) {
	m := mustMachine(t)
	if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`, "ghostentry", `C:\gone\nothere.exe`); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Errorf("boot with dangling hook failed: %v", err)
	}
}

// TestAppInitMultipleDLLs: AppInit_DLLs can carry several entries.
func TestAppInitMultipleDLLs(t *testing.T) {
	m := mustMachine(t)
	ranA, ranB := 0, 0
	m.RegisterImage(`C:\WINDOWS\a.dll`, func(m *Machine) error { ranA++; return nil })
	m.RegisterImage(`C:\WINDOWS\b.dll`, func(m *Machine) error { ranB++; return nil })
	key := `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`
	if err := m.Reg.SetString(key, "AppInit_DLLs", `C:\WINDOWS\a.dll C:\WINDOWS\b.dll`); err != nil {
		t.Fatal(err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatal(err)
	}
	if ranA != 1 || ranB != 1 {
		t.Errorf("AppInit activations = %d/%d, want 1/1", ranA, ranB)
	}
}

// TestLargeMachineStress builds a big populated volume end to end; run
// without -short.
func TestLargeMachineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	p := DefaultProfile()
	p.DiskUsedGB = 40
	p.FilesPerGB = 60 // 2400 records
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := m.DropFile(fmt.Sprintf(`C:\bulk\dir%02d\f%04d.dat`, i%50, i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := m.API.WalkTreeWin32(m.SystemCall(), Drive)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2000 {
		t.Errorf("walk = %d entries", len(entries))
	}
}
