package machine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"ghostbuster/internal/ntfs"
)

// RemovableDrive is the drive letter the hot-pluggable volume mounts at.
const RemovableDrive = "E:"

// ErrNoMedia reports an access to the removable drive while nothing is
// attached.
var ErrNoMedia = errors.New("machine: no media in " + RemovableDrive)

// Removable-volume geometry: a small stick — enough records for
// ghostware payloads plus a little user content.
const (
	removableClusters = 512
	removableRecords  = 128
)

// drivePath strips a drive prefix from a full Win32 path, yielding the
// volume-relative path.
func drivePath(drive, full string) (string, error) {
	if !strings.HasPrefix(strings.ToUpper(full), drive+`\`) && !strings.EqualFold(full, drive) {
		return "", fmt.Errorf("%w: %s", ErrBadPath, full)
	}
	return full[len(drive):], nil
}

// AttachRemovable plugs in a freshly formatted removable volume,
// replacing any currently attached media. Every attach is a new device:
// the hot-plug event counter advances so caches keyed on the old
// stick's generation can never validate against the new one.
func (m *Machine) AttachRemovable() error {
	vol, err := ntfs.Format(removableClusters, removableRecords)
	if err != nil {
		return fmt.Errorf("machine: formatting removable volume: %w", err)
	}
	m.remMu.Lock()
	if m.removableFault != nil {
		vol.SetDeviceFault(m.removableFault)
	}
	m.removable = vol
	m.removableEvents++
	m.remMu.Unlock()
	return nil
}

// SetRemovableFault installs (or, with nil, removes) the raw-read fault
// hook for the removable volume. The hook outlives hot-plug churn: it
// is stored on the machine and re-applied to every freshly attached
// stick, because a fault plan armed before the attach must still fire.
func (m *Machine) SetRemovableFault(f ntfs.DeviceFault) {
	m.remMu.Lock()
	m.removableFault = f
	if m.removable != nil {
		m.removable.SetDeviceFault(f)
	}
	m.remMu.Unlock()
}

// DetachRemovable unplugs the removable volume. Its contents are gone
// from the machine's point of view (the stick left with them).
func (m *Machine) DetachRemovable() {
	m.remMu.Lock()
	if m.removable != nil {
		m.removable = nil
		m.removableEvents++
	}
	m.remMu.Unlock()
}

// EnsureRemovable attaches media only if none is present, so several
// ghostware atoms can share one stick.
func (m *Machine) EnsureRemovable() error {
	if m.RemovableVolume() != nil {
		return nil
	}
	return m.AttachRemovable()
}

// RemovableVolume returns the attached volume, or nil when the bay is
// empty.
func (m *Machine) RemovableVolume() *ntfs.Volume {
	m.remMu.Lock()
	defer m.remMu.Unlock()
	return m.removable
}

// RemovableEvents returns the hot-plug transition count.
func (m *Machine) RemovableEvents() uint64 {
	m.remMu.Lock()
	defer m.remMu.Unlock()
	return m.removableEvents
}

// RemovableKey is the removable drive's cache-generation key: the
// hot-plug event count plus the attached volume's mutation generation
// ("-" when detached). Any attach, detach, or on-stick write changes
// the key.
func (m *Machine) RemovableKey() string {
	m.remMu.Lock()
	defer m.remMu.Unlock()
	if m.removable == nil {
		return strconv.FormatUint(m.removableEvents, 10) + ":-"
	}
	return strconv.FormatUint(m.removableEvents, 10) + ":" + strconv.FormatUint(m.removable.Generation(), 10)
}

// DropRemovableFile writes a file on the removable volume (creating
// parent directories), at the driver level like DropFile.
func (m *Machine) DropRemovableFile(full string, data []byte) error {
	vol := m.RemovableVolume()
	if vol == nil {
		return fmt.Errorf("%w: dropping %s", ErrNoMedia, full)
	}
	vp, err := drivePath(RemovableDrive, full)
	if err != nil {
		return err
	}
	if dir := removableDir(full); dir != RemovableDrive {
		dvp, err := drivePath(RemovableDrive, dir)
		if err != nil {
			return err
		}
		if err := vol.MkdirAll(dvp, m.Now()); err != nil {
			return err
		}
	}
	if vol.Exists(vp) {
		return vol.WriteFile(vp, data, m.Now())
	}
	return vol.Create(vp, ntfs.CreateOptions{Data: data, Created: m.Now(), Modified: m.Now()})
}

// RemovableFileExists reports whether the path exists on the attached
// removable volume (driver view). Detached media holds nothing.
func (m *Machine) RemovableFileExists(full string) bool {
	vol := m.RemovableVolume()
	if vol == nil {
		return false
	}
	vp, err := drivePath(RemovableDrive, full)
	if err != nil {
		return false
	}
	return vol.Exists(vp)
}

func removableDir(full string) string {
	i := strings.LastIndexByte(full, '\\')
	if i < 0 {
		return RemovableDrive
	}
	d := full[:i]
	if strings.EqualFold(d, RemovableDrive) {
		return RemovableDrive
	}
	return d
}
