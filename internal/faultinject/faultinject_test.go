package faultinject

import (
	"reflect"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return m
}

func armed(t *testing.T, m *machine.Machine, faults ...Fault) *Injector {
	t.Helper()
	inj, err := New(m, Plan{Seed: 1, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	return inj
}

func containedScan(t *testing.T, m *machine.Machine) []*core.Report {
	t.Helper()
	d := core.NewDetector(m)
	d.Advanced = true
	d.Contain = true
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatalf("contained ScanAll: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	return reports
}

func degradedUnits(reports []*core.Report) []string {
	var out []string
	for _, r := range reports {
		for _, du := range r.DegradedUnits {
			out = append(out, du.Unit)
		}
	}
	return out
}

func assertNoFindings(t *testing.T, reports []*core.Report) {
	t.Helper()
	for _, r := range reports {
		if len(r.Hidden) != 0 || len(r.Phantom) != 0 {
			t.Errorf("%s: fault induced findings: hidden=%v phantom=%v", r.Kind, r.Hidden, r.Phantom)
		}
	}
}

func TestPlanGrammarRoundTrip(t *testing.T) {
	faults := []Fault{
		{SourceDisk, KindTorn, 1, 1},
		{SourceDisk, KindMut, 2, 1},
		{SourceHive, KindFlip, 3, 2},
		{SourceKmem, KindErr, 40, 5},
		{SourceAPI, KindLag, 7, 1},
	}
	line := FormatFaults(faults)
	back, err := ParseFaults(line)
	if err != nil {
		t.Fatalf("ParseFaults(%q): %v", line, err)
	}
	if !reflect.DeepEqual(faults, back) {
		t.Fatalf("round trip changed faults:\n in: %+v\nout: %+v", faults, back)
	}
	if line != "disk:torn@1;disk:mut@2;hive:flip@3x2;kmem:err@40x5;api:lag@7" {
		t.Errorf("unexpected grammar rendering: %q", line)
	}
}

func TestValidateEnforcesMatrix(t *testing.T) {
	for src, kinds := range allowedKinds {
		for kind := range kinds {
			if err := (Fault{src, kind, 1, 1}).Validate(); err != nil {
				t.Errorf("allowed %s:%s rejected: %v", src, kind, err)
			}
		}
	}
	for _, f := range []Fault{
		{SourceRemovable, KindMut, 1, 1},
		{SourceHive, KindMut, 1, 1},
		{SourceKmem, KindLag, 1, 1},
		{SourceAPI, KindTorn, 1, 1},
		{Source("tape"), KindErr, 1, 1},
		{SourceDisk, KindErr, 0, 1},
		{SourceDisk, KindErr, 1, 0},
	} {
		if err := f.Validate(); err == nil {
			t.Errorf("invalid fault %+v accepted", f)
		}
	}
}

func TestParseFaultsRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"disk", "disk:torn", "disk@1", ":torn@1", "disk:torn@",
		"disk:torn@x2", "disk:torn@1x", "disk:torn@1;;",
	} {
		if _, err := ParseFaults(s); err == nil {
			t.Errorf("ParseFaults accepted %q", s)
		}
	}
}

// TestDiskErrDegradesFilesLow: a failed raw device read must surface as
// a degraded files/low unit — never as findings — and leave the rest of
// the sweep intact.
func TestDiskErrDegradesFilesLow(t *testing.T) {
	m := testMachine(t)
	armed(t, m, Fault{SourceDisk, KindErr, 1, 1})
	reports := containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 1 || got[0] != "files/low" {
		t.Fatalf("degraded units = %v, want [files/low]", got)
	}
	assertNoFindings(t, reports)
}

// TestHiveErrDegradesASEPLow: a corrupted hive snapshot fails the raw
// ASEP parse loudly.
func TestHiveErrDegradesASEPLow(t *testing.T) {
	m := testMachine(t)
	armed(t, m, Fault{SourceHive, KindErr, 1, 1})
	reports := containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 1 || got[0] != "ASEPs/low" {
		t.Fatalf("degraded units = %v, want [ASEPs/low]", got)
	}
	assertNoFindings(t, reports)
}

// TestAPIErrDegradesFilesHigh: the first API access of a sweep is the
// high-level file walk; failing it degrades files/high only.
func TestAPIErrDegradesFilesHigh(t *testing.T) {
	m := testMachine(t)
	armed(t, m, Fault{SourceAPI, KindErr, 1, 1})
	reports := containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 1 || got[0] != "files/high" {
		t.Fatalf("degraded units = %v, want [files/high]", got)
	}
	assertNoFindings(t, reports)
}

// TestKmemErrDegradesProcsLow: the first scanner-facing kernel-memory
// read belongs to the low-level process walk.
func TestKmemErrDegradesProcsLow(t *testing.T) {
	m := testMachine(t)
	armed(t, m, Fault{SourceKmem, KindErr, 1, 1})
	reports := containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 1 || got[0] != "processes/low" {
		t.Fatalf("degraded units = %v, want [processes/low]", got)
	}
	assertNoFindings(t, reports)
}

// TestDiskMutDemotesFilesPair: a file dropped mid-scan moves the device
// generation, so the files comparison is demoted to a degraded pair
// instead of reporting the mutation race as a hidden file.
func TestDiskMutDemotesFilesPair(t *testing.T) {
	m := testMachine(t)
	armed(t, m, Fault{SourceDisk, KindMut, 1, 1})
	reports := containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 1 || got[0] != "files/pair" {
		t.Fatalf("degraded units = %v, want [files/pair]", got)
	}
	assertNoFindings(t, reports)
}

// TestAPILagChargesVirtualTime: a latency spike slows the scan by the
// spike, it does not fail anything.
func TestAPILagChargesVirtualTime(t *testing.T) {
	base := testMachine(t)
	start := base.Clock.Now()
	containedScan(t, base)
	cleanElapsed := base.Clock.Now() - start

	m := testMachine(t)
	armed(t, m, Fault{SourceAPI, KindLag, 1, 1})
	start = m.Clock.Now()
	reports := containedScan(t, m)
	laggedElapsed := m.Clock.Now() - start
	if got := degradedUnits(reports); len(got) != 0 {
		t.Fatalf("lag degraded units %v", got)
	}
	if laggedElapsed < cleanElapsed+lagSpike {
		t.Errorf("lagged sweep took %v, want >= clean %v + spike %v", laggedElapsed, cleanElapsed, lagSpike)
	}
}

// TestFireLogDeterministic: the same plan against the same machine
// build fires the same faults in the same order, and Reset replays them.
func TestFireLogDeterministic(t *testing.T) {
	run := func() ([]string, []string) {
		m := testMachine(t)
		inj := armed(t, m,
			Fault{SourceAPI, KindErr, 3, 2}, Fault{SourceKmem, KindErr, 10, 1})
		containedScan(t, m)
		first := inj.Fired()
		inj.Reset()
		containedScan(t, m)
		return first, inj.Fired()
	}
	a1, a2 := run()
	b1, b2 := run()
	if len(a1) == 0 {
		t.Fatal("plan never fired")
	}
	if !reflect.DeepEqual(a1, b1) {
		t.Errorf("fire log differs across identical runs:\n%v\n%v", a1, b1)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("fire log differs after Reset:\n%v\n%v", a1, a2)
	}
	if !reflect.DeepEqual(a2, b2) {
		t.Errorf("post-reset fire log differs across runs:\n%v\n%v", a2, b2)
	}
}

func TestExhaustedAndEpoch(t *testing.T) {
	m := testMachine(t)
	inj := armed(t, m, Fault{SourceAPI, KindErr, 1, 2})
	if inj.Exhausted() {
		t.Fatal("fresh injector reports exhausted")
	}
	if inj.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", inj.Epoch())
	}
	containedScan(t, m)
	if !inj.Exhausted() {
		t.Fatalf("plan not exhausted after scan; fired: %v", inj.Fired())
	}
	if inj.Epoch() != 2 {
		t.Errorf("epoch = %d after 2 fires", inj.Epoch())
	}
	// Exhausted layer is transparent: a further scan is clean.
	reports := containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 0 {
		t.Errorf("exhausted injector still degrades: %v", got)
	}
}

func TestDisarmRestoresCleanScans(t *testing.T) {
	m := testMachine(t)
	inj := armed(t, m,
		Fault{SourceDisk, KindFlip, 1, 1}, Fault{SourceHive, KindTorn, 1, 1})
	reports := containedScan(t, m)
	if len(degradedUnits(reports)) == 0 {
		t.Fatalf("plan did not degrade anything; fired: %v", inj.Fired())
	}
	inj.Disarm()
	reports = containedScan(t, m)
	if got := degradedUnits(reports); len(got) != 0 {
		t.Errorf("disarmed machine still degraded: %v", got)
	}
	assertNoFindings(t, reports)
	// Uncontained sweeps must also pass: no permanent damage.
	d := core.NewDetector(m)
	d.Advanced = true
	if _, err := d.ScanAll(); err != nil {
		t.Errorf("strict ScanAll after disarm: %v", err)
	}
}

// TestArmWithoutFiringIsFreeOfCharge: hooks that never fire must not
// consume virtual time.
func TestArmWithoutFiringIsFreeOfCharge(t *testing.T) {
	base := testMachine(t)
	start := base.Clock.Now()
	containedScan(t, base)
	cleanElapsed := base.Clock.Now() - start

	m := testMachine(t)
	armed(t, m, Fault{SourceAPI, KindErr, 1 << 30, 1})
	start = m.Clock.Now()
	containedScan(t, m)
	if got := m.Clock.Now() - start; got != cleanElapsed {
		t.Errorf("armed-but-idle sweep charged %v, clean sweep %v", got, cleanElapsed)
	}
}
