// Package faultinject is a seeded, deterministic fault layer for the
// simulated machine's byte-level truth sources: raw NTFS device reads,
// hive snapshots, kernel-memory reads and crash-dump images, and Win32
// API calls. A fault plan describes which source misbehaves, how, and on
// which access; arming the plan against a machine wires concrete hooks
// into each substrate.
//
// Every injected fault is structurally loud: it produces a read error,
// an unparseable record, or a pointer that dereferences outside the
// arena — never a silently altered name, path, or pid. Loud corruption
// is what keeps the detector's degradation honest: a damaged unit
// surfaces in Report.DegradedUnits instead of contaminating the
// cross-view diff with false positives.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Source names a byte-level truth source a fault attaches to.
type Source string

const (
	// SourceDisk faults raw NTFS device reads (WithDevice, SnapshotImage).
	SourceDisk Source = "disk"
	// SourceHive faults hive file snapshots taken for raw parsing.
	SourceHive Source = "hive"
	// SourceKmem faults kernel-memory scan reads and crash-dump images.
	SourceKmem Source = "kmem"
	// SourceAPI faults Win32 API calls made by the high-level scanners.
	SourceAPI Source = "api"
	// SourceRemovable faults raw reads of the removable (E:) volume's
	// device image — flaky media, the common failure mode of real sticks.
	SourceRemovable Source = "removable"
)

// Kind names the failure mode a fault injects.
type Kind string

const (
	// KindErr fails the access outright with an injected error.
	KindErr Kind = "err"
	// KindTorn delivers a partial result: a half-written MFT record, a
	// hive header whose sequence numbers disagree, a truncated dump, or
	// an address range that has become unreadable mid-walk.
	KindTorn Kind = "torn"
	// KindFlip flips bits in a way that breaks structure (bad record
	// magic, out-of-bounds root cell, wild kernel pointer) rather than
	// content, so parsers fail instead of reading wrong values.
	KindFlip Kind = "flip"
	// KindLag injects a latency spike. On the API source the access
	// succeeds but charges a large burst of virtual time. On the disk
	// source it is a *wall-clock* stall seam instead: device reads have
	// no reachable lane clock, so the read blocks in the injector's
	// stall gate (see Injector.SetStall) the way a dying spindle or a
	// wedged fsync blocks a real scanner — which is exactly what the
	// supervision watchdogs exist to detect.
	KindLag Kind = "lag"
	// KindMut mutates the filesystem mid-scan — a file appears between
	// the high-level walk and the raw MFT pass (disk source only).
	KindMut Kind = "mut"
)

// allowedKinds is the per-source fault matrix. Only disk supports
// mid-scan mutation; disk lag is the wall-clock stall seam (no virtual
// charge — device reads have no reachable lane clock).
var allowedKinds = map[Source]map[Kind]bool{
	SourceDisk:      {KindErr: true, KindTorn: true, KindFlip: true, KindMut: true, KindLag: true},
	SourceHive:      {KindErr: true, KindTorn: true, KindFlip: true},
	SourceKmem:      {KindErr: true, KindTorn: true, KindFlip: true},
	SourceAPI:       {KindErr: true, KindLag: true},
	SourceRemovable: {KindErr: true, KindTorn: true, KindFlip: true},
}

// Fault is one injectable failure: starting at the After-th access to
// Source (1-based), the next Count accesses misbehave with Kind.
type Fault struct {
	Source Source
	Kind   Kind
	After  int
	Count  int
}

// Validate checks the fault against the per-source kind matrix.
func (f Fault) Validate() error {
	kinds, ok := allowedKinds[f.Source]
	if !ok {
		return fmt.Errorf("faultinject: unknown source %q", f.Source)
	}
	if !kinds[f.Kind] {
		return fmt.Errorf("faultinject: source %s does not support kind %q", f.Source, f.Kind)
	}
	if f.After < 1 {
		return fmt.Errorf("faultinject: fault %s:%s after must be >= 1", f.Source, f.Kind)
	}
	if f.Count < 1 {
		return fmt.Errorf("faultinject: fault %s:%s count must be >= 1", f.Source, f.Kind)
	}
	return nil
}

// String renders one fault in the compact plan grammar,
// "source:kind@afterxN" (the "xN" suffix is omitted when Count is 1).
func (f Fault) String() string {
	s := fmt.Sprintf("%s:%s@%d", f.Source, f.Kind, f.After)
	if f.Count != 1 {
		s += "x" + strconv.Itoa(f.Count)
	}
	return s
}

// Plan is a seeded set of faults. The seed drives every offset choice
// the injector makes (which MFT record to tear, which dump word to
// flip), so the same plan against the same machine corrupts the same
// bytes every run.
type Plan struct {
	Seed   int64
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// String renders the fault list as a semicolon-joined spec fragment,
// e.g. "disk:torn@2;api:err@1x3". The seed is carried separately (it is
// the owning spec's seed).
func (p Plan) String() string { return FormatFaults(p.Faults) }

// FormatFaults renders faults in the compact plan grammar.
func FormatFaults(faults []Fault) string {
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// ParseFaults parses the compact plan grammar produced by FormatFaults:
// semicolon-joined "source:kind@after[xcount]" terms.
func ParseFaults(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Fault
	for _, term := range strings.Split(s, ";") {
		f, err := parseFault(term)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseFault(term string) (Fault, error) {
	var f Fault
	colon := strings.IndexByte(term, ':')
	at := strings.IndexByte(term, '@')
	if colon <= 0 || at <= colon {
		return f, fmt.Errorf("faultinject: bad fault term %q (want source:kind@after[xN])", term)
	}
	f.Source = Source(term[:colon])
	f.Kind = Kind(term[colon+1 : at])
	rest := term[at+1:]
	f.Count = 1
	if x := strings.IndexByte(rest, 'x'); x >= 0 {
		n, err := strconv.Atoi(rest[x+1:])
		if err != nil {
			return f, fmt.Errorf("faultinject: bad fault count in %q: %w", term, err)
		}
		f.Count = n
		rest = rest[:x]
	}
	after, err := strconv.Atoi(rest)
	if err != nil {
		return f, fmt.Errorf("faultinject: bad fault offset in %q: %w", term, err)
	}
	f.After = after
	if err := f.Validate(); err != nil {
		return f, err
	}
	return f, nil
}

// Sources returns the distinct sources the plan touches, sorted.
func (p Plan) Sources() []Source {
	seen := map[Source]bool{}
	for _, f := range p.Faults {
		seen[f.Source] = true
	}
	out := make([]Source, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mix is the seeded offset mixer shared by every fault seam: a
// splitmix64 finalizer over a plan seed and a set of discriminators.
// All injector offset choices flow through it, and external fault
// seams (the sweep journal's torn/flip corruption) reuse it so their
// "which byte breaks" decisions are deterministic the same way.
func Mix(seed int64, vals ...uint64) uint64 { return mix(seed, vals...) }

// mix is a splitmix64 finalizer over the plan seed and a set of
// discriminators; all injector offset choices flow through it.
func mix(seed int64, vals ...uint64) uint64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		x = z
	}
	return x
}
