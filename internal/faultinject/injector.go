package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ghostbuster/internal/hive"
	"ghostbuster/internal/kmem"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/ntfs"
	"ghostbuster/internal/winapi"
)

// ErrInjected marks every error the fault layer fabricates. Scanners
// treat it like any other I/O failure; tests use it to tell injected
// damage from real bugs.
var ErrInjected = errors.New("faultinject: injected fault")

// lagSpike is the virtual-time burst a KindLag fault charges to the
// faulted call's clock — large enough to dominate a scan unit's budget,
// the way a hung RPC or a disk timeout would.
const lagSpike = 15 * time.Second

// Injector arms a Plan against one machine. All decisions are
// deterministic in (plan seed, access order); per-source access
// counters make "the 2nd raw disk read fails" reproducible.
type Injector struct {
	plan Plan
	m    *machine.Machine

	mu         sync.Mutex
	counts     map[Source]int // accesses seen per source
	fires      []int          // per plan fault: times fired
	fired      []string       // human-readable fire log
	pending    *pendingDisk   // disk corruption chosen in BeforeRead, applied in CorruptImage
	pendingRem *pendingDisk   // same, for the removable volume's reads
	armed      bool
	stall      func(Source)   // wall-clock stall gate for disk KindLag fires

	epoch atomic.Uint64
}

type pendingDisk struct {
	fault Fault
	n     int // access index that chose it
}

// New builds an (unarmed) injector for plan against m.
func New(m *machine.Machine, plan Plan) (*Injector, error) {
	for _, f := range plan.Faults {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	return &Injector{
		plan:   plan,
		m:      m,
		counts: map[Source]int{},
		fires:  make([]int, len(plan.Faults)),
	}, nil
}

// Arm wires the plan's hooks into every substrate the plan touches and
// publishes the fault epoch on the machine. Idempotent.
func (i *Injector) Arm() {
	i.mu.Lock()
	if i.armed {
		i.mu.Unlock()
		return
	}
	i.armed = true
	i.mu.Unlock()

	i.m.FaultEpoch = i.Epoch
	for _, src := range i.plan.Sources() {
		switch src {
		case SourceDisk:
			i.m.Disk.SetDeviceFault((*diskFault)(i))
		case SourceHive:
			for _, root := range i.m.Reg.Roots() {
				if h, ok := i.m.Reg.HiveAt(root); ok {
					h.SetSnapshotFault((*hiveFault)(i))
				}
			}
		case SourceKmem:
			i.m.Kern.SetScanFault((*kmemFault)(i))
		case SourceAPI:
			i.m.API.SetCallFault(i.callFault)
		case SourceRemovable:
			i.m.SetRemovableFault((*removableFault)(i))
		}
	}
}

// Disarm removes every hook. The machine scans cleanly afterwards; the
// fire log and epoch survive for inspection.
func (i *Injector) Disarm() {
	i.mu.Lock()
	i.armed = false
	i.pending = nil
	i.pendingRem = nil
	i.mu.Unlock()

	i.m.FaultEpoch = nil
	i.m.Disk.SetDeviceFault(nil)
	for _, root := range i.m.Reg.Roots() {
		if h, ok := i.m.Reg.HiveAt(root); ok {
			h.SetSnapshotFault(nil)
		}
	}
	i.m.Kern.SetScanFault(nil)
	i.m.API.SetCallFault(nil)
	i.m.SetRemovableFault(nil)
}

// Reset rewinds access counters and fire state so the same armed plan
// replays from the first access (a fresh scan sees the same faults).
func (i *Injector) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts = map[Source]int{}
	i.fires = make([]int, len(i.plan.Faults))
	i.fired = nil
	i.pending = nil
	i.pendingRem = nil
}

// SetStall installs the wall-clock stall gate invoked (outside the
// injector lock) when a disk KindLag fault fires. Supervision chaos
// tests hand in a closure that blocks on a channel until released —
// a deterministic stand-in for a wedged device read. A nil gate makes
// disk lag fires no-ops beyond the fire log and epoch.
func (i *Injector) SetStall(fn func(Source)) {
	i.mu.Lock()
	i.stall = fn
	i.mu.Unlock()
}

// Epoch returns a counter that advances on every fired fault. Cache
// layers compare epochs around a parse: a change means the parse may
// have consumed damaged bytes and must not be memoized.
func (i *Injector) Epoch() uint64 { return i.epoch.Load() }

// Fired returns the log of faults that actually triggered, in order.
func (i *Injector) Fired() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.fired...)
}

// Exhausted reports whether every planned fault has fired its full
// count — an armed-but-exhausted injector behaves like a clean machine.
func (i *Injector) Exhausted() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	for idx, f := range i.plan.Faults {
		if i.fires[idx] < f.Count {
			return false
		}
	}
	return true
}

// fire counts one access to src and returns the fault that triggers on
// it, if any. First matching plan entry wins; its fire count and the
// global epoch advance.
func (i *Injector) fire(src Source) (Fault, int, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fireLocked(src)
}

func (i *Injector) fireLocked(src Source) (Fault, int, bool) {
	if !i.armed {
		return Fault{}, 0, false
	}
	i.counts[src]++
	n := i.counts[src]
	for idx, f := range i.plan.Faults {
		if f.Source != src || n < f.After || i.fires[idx] >= f.Count {
			continue
		}
		i.fires[idx]++
		i.logFire(f, n, "")
		return f, n, true
	}
	return Fault{}, n, false
}

func (i *Injector) logFire(f Fault, n int, note string) {
	i.epoch.Add(1)
	msg := fmt.Sprintf("%s fired on %s access %d", f, f.Source, n)
	if note != "" {
		msg += " (" + note + ")"
	}
	i.fired = append(i.fired, msg)
}

// ---------------------------------------------------------------------
// Disk: ntfs.DeviceFault

type diskFault Injector

func (d *diskFault) inj() *Injector { return (*Injector)(d) }

// BeforeRead runs before the volume lock is taken, so a mid-scan
// mutation (KindMut) can write through the normal mutator path without
// deadlocking. KindErr fails the read; KindTorn/KindFlip stash the
// damage for CorruptImage on the same access.
func (d *diskFault) BeforeRead(op string) error {
	i := d.inj()
	i.mu.Lock()
	f, n, ok := i.fireLocked(SourceDisk)
	if ok && (f.Kind == KindTorn || f.Kind == KindFlip) {
		i.pending = &pendingDisk{fault: f, n: n}
	}
	stall := i.stall
	i.mu.Unlock()
	if !ok {
		return nil
	}
	switch f.Kind {
	case KindLag:
		// Wall-clock stall: block in the gate (outside the injector lock
		// so other sources keep firing) and then let the read succeed.
		// No virtual charge — the point is that virtual time STOPS while
		// real time runs on, which is what the watchdogs key on.
		if stall != nil {
			stall(SourceDisk)
		}
		return nil
	case KindErr:
		return fmt.Errorf("%w: device read error on %s access %d", ErrInjected, op, n)
	case KindMut:
		// The scan already enumerated the high-level view; a file that
		// appears now is the classic mid-scan mutation race. The marker
		// path is deterministic in the access index.
		path := fmt.Sprintf(`C:\WINDOWS\Temp\fi-mut-%d.tmp`, n)
		if err := i.m.DropFile(path, []byte("mid-scan mutation")); err != nil {
			// A full disk still counts as a fired mutation attempt; the
			// scan itself must not fail because of it.
			return nil
		}
	}
	return nil
}

// CorruptImage applies a pending torn/flip fault to a copy of the
// device image. It never modifies dev in place. The damaged record is
// always a user record (never metadata records 0..5): tearing the root
// directory would orphan the whole tree and turn innocent files into
// findings, which is content corruption, not structural damage.
func (d *diskFault) CorruptImage(op string, dev []byte) []byte {
	i := d.inj()
	i.mu.Lock()
	p := i.pending
	i.pending = nil
	i.mu.Unlock()
	return i.corruptRecord(p, dev)
}

// corruptRecord applies a pending torn/flip fault to a copy of a volume
// image (the system disk's or the removable stick's) by damaging one
// user MFT record structurally.
func (i *Injector) corruptRecord(p *pendingDisk, dev []byte) []byte {
	if p == nil {
		return nil
	}
	geo, err := ntfs.DecodeBootSector(dev)
	if err != nil || geo.MFTRecords <= ntfs.FirstUserRecord {
		return nil
	}
	userRecs := geo.MFTRecords - ntfs.FirstUserRecord
	rec := ntfs.FirstUserRecord + mix(i.plan.Seed, uint64(p.n), 0xd15c)%userRecs
	off := geo.MFTStart*ntfs.ClusterSize + rec*ntfs.RecordSize
	if off+ntfs.RecordSize > uint64(len(dev)) {
		return nil
	}
	cp := append([]byte(nil), dev...)
	switch p.fault.Kind {
	case KindTorn:
		// Keep the FILE magic but zero the rest of the record: a
		// half-written record that fails header validation loudly.
		for j := off + 4; j < off+ntfs.RecordSize; j++ {
			cp[j] = 0
		}
	case KindFlip:
		// Break the record magic; the parser reports a corrupt record
		// instead of decoding garbage names.
		cp[off] ^= 0x01
	}
	return cp
}

// ---------------------------------------------------------------------
// Removable volume: ntfs.DeviceFault on the hot-pluggable stick

type removableFault Injector

func (d *removableFault) inj() *Injector { return (*Injector)(d) }

// BeforeRead mirrors the disk fault for the removable volume's raw
// reads: KindErr models the stick dropping off the bus mid-read,
// torn/flip stash record damage for CorruptImage. The machine re-applies
// this hook to every freshly attached stick, so a plan armed before the
// hot-plug still fires.
func (d *removableFault) BeforeRead(op string) error {
	i := d.inj()
	i.mu.Lock()
	f, n, ok := i.fireLocked(SourceRemovable)
	if ok && (f.Kind == KindTorn || f.Kind == KindFlip) {
		i.pendingRem = &pendingDisk{fault: f, n: n}
	}
	i.mu.Unlock()
	if ok && f.Kind == KindErr {
		return fmt.Errorf("%w: removable device read error on %s access %d", ErrInjected, op, n)
	}
	return nil
}

// CorruptImage applies a pending torn/flip fault to a copy of the
// stick's image, damaging one user record structurally (loud, never a
// silently altered name).
func (d *removableFault) CorruptImage(op string, dev []byte) []byte {
	i := d.inj()
	i.mu.Lock()
	p := i.pendingRem
	i.pendingRem = nil
	i.mu.Unlock()
	return i.corruptRecord(p, dev)
}

// ---------------------------------------------------------------------
// Hive: hive.SnapshotFault

type hiveFault Injector

// CorruptSnapshot damages the freshly copied hive image in place. All
// three kinds target the header, where hive.Open validates magic,
// sequence pair, and root cell — whole-file parse failure, never a
// silently altered key.
func (h *hiveFault) CorruptSnapshot(name string, img []byte) {
	i := (*Injector)(h)
	f, _, ok := i.fire(SourceHive)
	if !ok {
		return
	}
	switch f.Kind {
	case KindErr:
		hive.CorruptImageHeader(img, "magic")
	case KindTorn:
		hive.CorruptImageHeader(img, "torn")
	case KindFlip:
		hive.CorruptImageHeader(img, "root")
	}
}

// ---------------------------------------------------------------------
// Kernel memory + crash dumps: kernel.ScanFault

type kmemFault Injector

func (k *kmemFault) inj() *Injector { return (*Injector)(k) }

// WrapReader interposes on scanner-facing kernel-memory reads. The OS's
// own structure walks use the raw arena; only cross-view scan reads are
// fault candidates.
func (k *kmemFault) WrapReader(r kmem.Reader) kmem.Reader {
	return &faultReader{inj: k.inj(), r: r}
}

// CorruptDump damages a crash-dump image copy: empty (err), truncated
// (torn), or with one pointer-shaped word's bit 45 flipped so the dump
// walker dereferences outside the arena (flip).
func (k *kmemFault) CorruptDump(img []byte) []byte {
	i := k.inj()
	f, n, ok := i.fire(SourceKmem)
	if !ok {
		return nil
	}
	switch f.Kind {
	case KindErr:
		return []byte{}
	case KindTorn:
		return append([]byte(nil), img[:len(img)/2]...)
	case KindFlip:
		cp := append([]byte(nil), img...)
		flipPointerWord(cp, mix(i.plan.Seed, uint64(n), 0xf11b))
		return cp
	}
	return nil
}

// flipPointerWord flips bit 45 of the pick-th pointer-shaped (>= Base)
// 8-aligned word in img, sending it outside the arena. Names, pids, and
// filetimes are all far below Base, so content is never altered.
func flipPointerWord(img []byte, pick uint64) {
	var ptrs int
	for off := 0; off+8 <= len(img); off += 8 {
		if readLE64(img[off:]) >= kmem.Base {
			ptrs++
		}
	}
	if ptrs == 0 {
		return
	}
	target := int(pick % uint64(ptrs))
	for off := 0; off+8 <= len(img); off += 8 {
		if readLE64(img[off:]) >= kmem.Base {
			if target == 0 {
				img[off+5] ^= 0x20 // bit 45
				return
			}
			target--
		}
	}
}

func readLE64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// faultReader wraps a kmem.Reader with per-read fault decisions.
type faultReader struct {
	inj *Injector
	r   kmem.Reader
}

// kmemDecision: what to do with one scan read.
const (
	kmemPass = iota
	kmemFail
	kmemMaybeFlip
)

// kmemAccess counts one scan read and decides its fate. KindErr fails
// any read. KindTorn fails reads into the arena's upper half (an
// address range gone unreadable mid-walk) and stays pending otherwise.
// KindFlip only ever applies to pointer-shaped u64 values, so it stays
// pending (unconsumed) until confirmKmemFlip sees one.
func (i *Injector) kmemAccess(addr uint64, canFlip bool) (act int, idx int, n int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.armed {
		return kmemPass, 0, 0
	}
	i.counts[SourceKmem]++
	n = i.counts[SourceKmem]
	cutoff := kmem.Base + uint64(i.m.Kern.Mem.Size())/2
	for fi, f := range i.plan.Faults {
		if f.Source != SourceKmem || n < f.After || i.fires[fi] >= f.Count {
			continue
		}
		switch f.Kind {
		case KindErr:
			i.fires[fi]++
			i.logFire(f, n, "")
			return kmemFail, fi, n
		case KindTorn:
			if addr >= cutoff {
				i.fires[fi]++
				i.logFire(f, n, "upper-half read")
				return kmemFail, fi, n
			}
		case KindFlip:
			if canFlip {
				return kmemMaybeFlip, fi, n
			}
		}
	}
	return kmemPass, 0, n
}

// confirmKmemFlip consumes a pending flip once a pointer-shaped value
// actually passed through the reader.
func (i *Injector) confirmKmemFlip(idx, n int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if idx >= len(i.plan.Faults) || i.fires[idx] >= i.plan.Faults[idx].Count {
		return
	}
	i.fires[idx]++
	i.logFire(i.plan.Faults[idx], n, "pointer flip")
}

func injectedRead(addr uint64, n int) error {
	return fmt.Errorf("%w: kernel read at %#x failed (access %d)", ErrInjected, addr, n)
}

func (fr *faultReader) ReadU64(addr uint64) (uint64, error) {
	act, idx, n := fr.inj.kmemAccess(addr, true)
	if act == kmemFail {
		return 0, injectedRead(addr, n)
	}
	v, err := fr.r.ReadU64(addr)
	if err != nil {
		return v, err
	}
	if act == kmemMaybeFlip && v >= kmem.Base {
		fr.inj.confirmKmemFlip(idx, n)
		return v ^ 1<<45, nil
	}
	return v, nil
}

func (fr *faultReader) ReadU32(addr uint64) (uint32, error) {
	act, _, n := fr.inj.kmemAccess(addr, false)
	if act == kmemFail {
		return 0, injectedRead(addr, n)
	}
	return fr.r.ReadU32(addr)
}

func (fr *faultReader) ReadBytes(addr uint64, n int) ([]byte, error) {
	act, _, acc := fr.inj.kmemAccess(addr, false)
	if act == kmemFail {
		return nil, injectedRead(addr, acc)
	}
	return fr.r.ReadBytes(addr, n)
}

func (fr *faultReader) ReadCString(addr uint64, max int) (string, error) {
	act, _, acc := fr.inj.kmemAccess(addr, false)
	if act == kmemFail {
		return "", injectedRead(addr, acc)
	}
	return fr.r.ReadCString(addr, max)
}

// ---------------------------------------------------------------------
// Win32 API: winapi.CallFault

// callFault fires on high-level scanner API entry points. KindErr fails
// the call with the winapi sentinel (so high scanners can fail loudly
// rather than silently skipping entries); KindLag charges a latency
// spike to the call's clock.
func (i *Injector) callFault(api winapi.API, call *winapi.Call) error {
	f, n, ok := i.fire(SourceAPI)
	if !ok {
		return nil
	}
	switch f.Kind {
	case KindErr:
		return fmt.Errorf("%w: %s failed (access %d)", winapi.ErrInjectedFault, api, n)
	case KindLag:
		if call != nil && call.Clock != nil {
			call.Clock.Advance(lagSpike)
		} else {
			i.m.Clock.Advance(lagSpike)
		}
	}
	return nil
}
