package profile

import (
	"strings"
	"testing"
	"time"
)

func TestBuiltinsValidateAndRankOrder(t *testing.T) {
	bs := Builtins()
	if len(bs) != 4 {
		t.Fatalf("want 4 built-ins, got %d", len(bs))
	}
	wantOrder := []string{"quick", "standard", "paranoid", "forensic"}
	for i, p := range bs {
		if p.Name != wantOrder[i] {
			t.Errorf("builtin %d = %q, want %q", i, p.Name, wantOrder[i])
		}
		if p.Rank != i {
			t.Errorf("builtin %q rank = %d, want %d", p.Name, p.Rank, i)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q fails validation: %v", p.Name, err)
		}
	}
}

// TestValidateNameRejectsHostileNames is the path-traversal gate: none
// of these may ever reach filepath.Join.
func TestValidateNameRejectsHostileNames(t *testing.T) {
	hostile := []string{
		"", "../evil", "..", "a/b", `a\b`, "./x", "a..b",
		"evil\x00name", "UPPER", "Standard", "-lead", "trail-",
		"has space", "dots.json", "~root", "a" + strings.Repeat("b", 32),
		"профиль", "..-", "con/..",
	}
	for _, name := range hostile {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) accepted a hostile name", name)
		}
	}
	for _, name := range []string{"a", "quick", "my-profile", "a2-b3", "x" + strings.Repeat("y", 31)} {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) rejected a legal name: %v", name, err)
		}
	}
}

func locked(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := Builtin(name)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	p.Locked = true
	return p
}

func boolp(b bool) *bool                  { return &b }
func intp(i int) *int                     { return &i }
func strp(s string) *string               { return &s }
func durp(d time.Duration) *time.Duration { return &d }

// TestLockedProfileRejectsEveryWeakening walks each security-critical
// field: the weakening direction errors, the strengthening direction
// applies.
func TestLockedProfileRejectsEveryWeakening(t *testing.T) {
	cases := []struct {
		field  string
		base   string
		weaken Override
	}{
		{"advanced", "paranoid", Override{Advanced: boolp(false)}},
		{"noiseFilter", "paranoid", Override{NoiseFilter: strp(NoiseStandard)}},
		{"deadline introduced", "paranoid", Override{Deadline: durp(time.Second)}},
		{"deadline shortened", "standard", Override{Deadline: durp(time.Second)}},
		{"maxRetries", "paranoid", Override{MaxRetries: intp(0)}},
		{"journal", "paranoid", Override{Journal: boolp(false)}},
		{"interval", "paranoid", Override{Interval: durp(48 * time.Hour)}},
		{"contain", "forensic", Override{Contain: boolp(true)}},
		{"unlock", "paranoid", Override{Lock: boolp(false)}},
	}
	for _, tc := range cases {
		p := locked(t, tc.base)
		if _, err := p.Apply(tc.weaken); err == nil {
			t.Errorf("%s: locked %q accepted weakening override", tc.field, tc.base)
		} else if !strings.Contains(err.Error(), "is locked") {
			t.Errorf("%s: error does not name the lock: %v", tc.field, err)
		}
	}

	// Strengthening a locked profile is always allowed.
	p := locked(t, "standard")
	got, err := p.Apply(Override{
		Advanced:    boolp(true),
		NoiseFilter: strp(NoiseBaseline),
		Deadline:    durp(0),
		MaxRetries:  intp(5),
		Interval:    durp(time.Minute),
	})
	if err != nil {
		t.Fatalf("strengthening a locked profile rejected: %v", err)
	}
	if got.NoiseFilter != NoiseBaseline || got.Deadline != 0 || got.MaxRetries != 5 {
		t.Fatalf("strengthening not applied: %+v", got)
	}
	if !got.Locked {
		t.Fatal("lock dropped by Apply")
	}
}

func TestLockedApplyCollectsAllViolations(t *testing.T) {
	p := locked(t, "paranoid")
	_, err := p.Apply(Override{Advanced: boolp(false), Journal: boolp(false), Lock: boolp(false)})
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"advanced", "journal", "locked"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("violation list missing %q: %v", want, err)
		}
	}
}

func TestUnlockedProfileAcceptsOverrides(t *testing.T) {
	p, _ := Builtin("paranoid")
	got, err := p.Apply(Override{Advanced: boolp(false), Workers: intp(16)})
	if err != nil {
		t.Fatalf("unlocked override rejected: %v", err)
	}
	if got.Advanced || got.Workers != 16 {
		t.Fatalf("override not applied: %+v", got)
	}
}

func TestOverrideValidatesResult(t *testing.T) {
	p, _ := Builtin("standard")
	if _, err := p.Apply(Override{Workers: intp(0)}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := p.Apply(Override{AbortAfterFailureFraction: float64p(1.5)}); err == nil {
		t.Fatal("abort fraction 1.5 accepted")
	}
}

func float64p(f float64) *float64 { return &f }

func TestSwitchLockedRefusesDowngradeAndCarriesLock(t *testing.T) {
	active := locked(t, "paranoid")
	quick, _ := Builtin("quick")
	if _, err := Switch(active, quick); err == nil {
		t.Fatal("locked paranoid switched down to quick")
	}
	forensic, _ := Builtin("forensic")
	got, err := Switch(active, forensic)
	if err != nil {
		t.Fatalf("upgrade rejected: %v", err)
	}
	if !got.Locked {
		t.Fatal("lock did not carry over to the switched-to profile")
	}
	// Unlocked switches go anywhere.
	std, _ := Builtin("standard")
	if _, err := Switch(std, quick); err != nil {
		t.Fatalf("unlocked downgrade rejected: %v", err)
	}
}

func TestDiagnoseCoversEveryKnob(t *testing.T) {
	p := locked(t, "paranoid")
	d := Diagnose(p)
	for _, key := range DiagnoseKeys(d) {
		if d[key] == "" {
			t.Errorf("diagnose key %q empty", key)
		}
	}
	if d["profile-locked"] != "true" {
		t.Errorf("profile-locked = %q, want true", d["profile-locked"])
	}
	if d["profile-name"] != "paranoid" {
		t.Errorf("profile-name = %q", d["profile-name"])
	}
}
