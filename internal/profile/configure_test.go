package profile

import (
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
)

// TestUnitsPerBuiltin pins which next-generation scan units each
// built-in posture enables: quick runs the bare paper sweep, standard
// adds the cheap cross-memory and removable pairs, paranoid and
// forensic add the boot chain.
func TestUnitsPerBuiltin(t *testing.T) {
	want := map[string]core.UnitSet{
		"quick":    0,
		"standard": core.UnitCrossMem | core.UnitRemovable,
		"paranoid": core.UnitCrossMem | core.UnitBootChain | core.UnitRemovable,
		"forensic": core.UnitCrossMem | core.UnitBootChain | core.UnitRemovable,
	}
	for _, p := range Builtins() {
		if got := p.Units(); got != want[p.Name] {
			t.Errorf("%s units = %b, want %b", p.Name, got, want[p.Name])
		}
	}
}

// TestConfigureDetectorAppliesPolicy checks the one-shot detector path:
// units follow the profile's switches, and randomized ordering draws a
// fresh nonzero seed per configured detector so no two sweeps share an
// execution order an adversary could learn.
func TestConfigureDetectorAppliesPolicy(t *testing.T) {
	std, err := NewStore("").Resolve("standard")
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := core.NewDetector(nil), core.NewDetector(nil)
	std.ConfigureDetector(d1)
	std.ConfigureDetector(d2)
	if !d1.Advanced || !d1.Contain {
		t.Errorf("standard detector advanced=%v contain=%v, want both true", d1.Advanced, d1.Contain)
	}
	if d1.Units != std.Units() {
		t.Errorf("detector units = %b, want %b", d1.Units, std.Units())
	}
	if len(d1.Opts.NoiseFilters) != len(std.Filters()) {
		t.Errorf("detector got %d noise filters, want %d", len(d1.Opts.NoiseFilters), len(std.Filters()))
	}
	if d1.OrderSeed == 0 || d2.OrderSeed == 0 {
		t.Errorf("randomizing profile left a zero order seed: %d, %d", d1.OrderSeed, d2.OrderSeed)
	}
	if d1.OrderSeed == d2.OrderSeed {
		t.Errorf("two configured detectors drew the same order seed %d", d1.OrderSeed)
	}

	quick, err := NewStore("").Resolve("quick")
	if err != nil {
		t.Fatal(err)
	}
	d3 := core.NewDetector(nil)
	quick.ConfigureDetector(d3)
	if d3.Units != 0 || d3.OrderSeed != 0 {
		t.Errorf("quick detector units=%b orderSeed=%d, want the bare fixed-order paper sweep", d3.Units, d3.OrderSeed)
	}
}

// TestConfigureManagerWiresDetectorSeam checks the fleet path: every
// scheduling knob transfers, and the manager's per-host detector hook
// is the profile's own ConfigureDetector so sweeps inherit units and
// ordering too.
func TestConfigureManagerWiresDetectorSeam(t *testing.T) {
	p, err := NewStore("").Resolve("paranoid")
	if err != nil {
		t.Fatal(err)
	}
	mgr := fleet.NewManager()
	p.ConfigureManager(mgr)
	if mgr.Parallelism != p.Workers || mgr.HostParallelism != p.HostParallelism {
		t.Errorf("manager parallelism %d/%d, want %d/%d", mgr.Parallelism, mgr.HostParallelism, p.Workers, p.HostParallelism)
	}
	if mgr.MaxRetries != p.MaxRetries || mgr.HostDeadline != p.Deadline {
		t.Errorf("manager retries/deadline = %d/%v, want %d/%v", mgr.MaxRetries, mgr.HostDeadline, p.MaxRetries, p.Deadline)
	}
	if mgr.BreakerThreshold != p.BreakerThreshold || mgr.AbortAfterFailureFraction != p.AbortAfterFailureFraction {
		t.Errorf("manager breaker/abort = %d/%v, want %d/%v", mgr.BreakerThreshold, mgr.AbortAfterFailureFraction, p.BreakerThreshold, p.AbortAfterFailureFraction)
	}
	if mgr.ConfigureDetector == nil {
		t.Fatal("manager's ConfigureDetector seam not wired")
	}
	d := core.NewDetector(nil)
	mgr.ConfigureDetector(d)
	if d.Units != p.Units() {
		t.Errorf("seam-configured detector units = %b, want %b", d.Units, p.Units())
	}
	if d.OrderSeed == 0 {
		t.Error("paranoid sweep detector kept the fixed order; want a drawn seed")
	}
}
