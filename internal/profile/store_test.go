package profile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/faultinject"
)

func custom(name string) Profile {
	p, _ := Builtin("standard")
	p.Name = name
	p.Description = "site policy"
	p.Interval = 2 * time.Hour
	return p
}

func TestStoreImportResolveExportRoundtrip(t *testing.T) {
	s := NewStore(t.TempDir())
	want := custom("site-policy")
	if _, err := s.Import(Encode(want)); err != nil {
		t.Fatalf("import: %v", err)
	}
	got, err := s.Resolve("site-policy")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if got != want {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	exported, err := s.Export("site-policy")
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	reimported, err := Decode(exported)
	if err != nil {
		t.Fatalf("decode export: %v", err)
	}
	if reimported != want {
		t.Fatal("export is not re-importable")
	}
}

func TestImportWithoutChecksumGetsOne(t *testing.T) {
	s := NewStore(t.TempDir())
	// A hand-written profile (no checksum field) imports fine; the
	// store adds the checksum on write.
	data, _ := json.Marshal(custom("hand-written"))
	if _, err := s.Import(data); err != nil {
		t.Fatalf("import without checksum: %v", err)
	}
	onDisk, _ := os.ReadFile(filepath.Join(s.Dir, "hand-written.json"))
	if !strings.Contains(string(onDisk), `"checksum"`) {
		t.Fatal("store file missing content checksum")
	}
}

// TestImportRefusesBuiltinCollision: the built-in namespace cannot be
// shadowed — "paranoid" must always mean the built-in paranoid.
func TestImportRefusesBuiltinCollision(t *testing.T) {
	s := NewStore(t.TempDir())
	for _, name := range BuiltinNames() {
		if _, err := s.Import(Encode(custom(name))); err == nil {
			t.Errorf("import shadowing built-in %q accepted", name)
		} else if !strings.Contains(err.Error(), "built-in") {
			t.Errorf("collision error unclear: %v", err)
		}
	}
	// Even a file smuggled into the store directory cannot shadow:
	// built-ins resolve first.
	path := filepath.Join(s.Dir, "paranoid.json")
	weak := custom("paranoid")
	weak.Advanced = false
	if err := os.WriteFile(path, Encode(weak), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resolve("paranoid")
	if err != nil {
		t.Fatalf("resolve paranoid: %v", err)
	}
	if !got.Advanced {
		t.Fatal("smuggled store file shadowed the built-in paranoid")
	}
}

// TestResolveRefusesTraversalNames: hostile names fail validation
// before they ever become paths, so nothing outside the store dir is
// readable (or deletable) through the profile API.
func TestResolveRefusesTraversalNames(t *testing.T) {
	dir := t.TempDir()
	outside := filepath.Join(dir, "escape.json")
	if err := os.WriteFile(outside, Encode(custom("escape")), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(filepath.Join(dir, "store"))
	for _, name := range []string{"../escape", "..", "x/../../escape", `..\escape`} {
		if _, err := s.Resolve(name); err == nil {
			t.Errorf("Resolve(%q) accepted a traversal name", name)
		}
		if err := s.Delete(name); err == nil {
			t.Errorf("Delete(%q) accepted a traversal name", name)
		}
	}
	if _, err := os.Stat(outside); err != nil {
		t.Fatal("traversal name deleted a file outside the store")
	}
}

// TestCorruptedStoreFilesFailLoudly: truncated, bit-flipped, trailing
// garbage, unknown fields, renamed — every corruption is a loud,
// distinct error; resolution never falls back to another profile.
func TestCorruptedStoreFilesFailLoudly(t *testing.T) {
	newStoreWith := func(t *testing.T, name string) (*Store, string) {
		t.Helper()
		s := NewStore(t.TempDir())
		if _, err := s.Import(Encode(custom(name))); err != nil {
			t.Fatal(err)
		}
		return s, filepath.Join(s.Dir, name+".json")
	}

	t.Run("truncated", func(t *testing.T) {
		s, path := newStoreWith(t, "trunc")
		data, _ := os.ReadFile(path)
		for _, keep := range []int{0, 1, len(data) / 2, len(data) - 2} {
			if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Resolve("trunc"); err == nil {
				t.Errorf("truncation to %d bytes resolved silently", keep)
			}
		}
	})

	t.Run("bit-flipped", func(t *testing.T) {
		s, path := newStoreWith(t, "flip")
		orig, _ := os.ReadFile(path)
		// Deterministic fault-injection mixing picks the flip sites —
		// every single-bit flip anywhere in the file must surface as an
		// error (parse failure or checksum mismatch), never resolve.
		for seed := int64(1); seed <= 64; seed++ {
			data := append([]byte(nil), orig...)
			pick := faultinject.Mix(seed, uint64(len(data)))
			data[pick%uint64(len(data))] ^= 1 << (pick % 8)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Resolve("flip"); err == nil {
				t.Fatalf("seed %d: bit flip at byte %d resolved silently",
					seed, pick%uint64(len(data)))
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		s, path := newStoreWith(t, "trail")
		data, _ := os.ReadFile(path)
		if err := os.WriteFile(path, append(data, []byte(`{"name":"evil"}`)...), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Resolve("trail"); err == nil {
			t.Error("trailing garbage resolved silently")
		}
	})

	t.Run("unknown-field", func(t *testing.T) {
		s := NewStore(t.TempDir())
		if _, err := s.Import([]byte(`{"name":"sneaky","noiseFilter":"baseline","workers":1,"intervalNs":60000000000,"disableAllScans":true}`)); err == nil {
			t.Error("unknown field imported silently")
		}
	})

	t.Run("renamed", func(t *testing.T) {
		s, path := newStoreWith(t, "original")
		if err := os.Rename(path, filepath.Join(s.Dir, "renamed.json")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Resolve("renamed"); err == nil {
			t.Error("renamed store file resolved under the wrong name")
		}
	})

	t.Run("checksum-stripped", func(t *testing.T) {
		s, path := newStoreWith(t, "stripped")
		data, _ := json.Marshal(custom("stripped")) // no checksum field
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Resolve("stripped"); err == nil {
			t.Error("store file without checksum resolved")
		}
	})
}

func TestListFailsLoudlyOnCorruptFile(t *testing.T) {
	s := NewStore(t.TempDir())
	if _, err := s.Import(Encode(custom("good"))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.List(); err == nil {
		t.Fatal("List over a store with a corrupt file succeeded")
	}
}

func TestDeleteProtectsBuiltins(t *testing.T) {
	s := NewStore(t.TempDir())
	if err := s.Delete("paranoid"); err == nil {
		t.Fatal("deleted a built-in")
	}
	if _, err := s.Import(Encode(custom("mine"))); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("mine"); err != nil {
		t.Fatalf("deleting own import: %v", err)
	}
	if _, err := s.Resolve("mine"); err == nil {
		t.Fatal("resolved a deleted profile")
	}
}

func TestUnknownProfileNeverFallsBack(t *testing.T) {
	s := NewStore("")
	if _, err := s.Resolve("no-such-profile"); err == nil {
		t.Fatal("unknown profile resolved")
	} else if !strings.Contains(err.Error(), "no-such-profile") {
		t.Fatalf("error does not name the missing profile: %v", err)
	}
}
