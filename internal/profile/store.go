// The profile store: custom profiles as checksummed JSON files in one
// directory, resolved by name alongside the built-ins. The adversarial
// contract is enforced here:
//
//   - a profile name never becomes a path without passing ValidateName,
//     so traversal names ("../evil", "a/b") cannot escape the store;
//   - an import whose name collides with a built-in is refused — the
//     built-ins cannot be shadowed by look-alike files;
//   - a stored file that fails to parse, fails strict field checking,
//     carries trailing garbage, or fails its content checksum is a loud
//     error naming the file. There is no fallback profile: a corrupted
//     "paranoid" resolves to an error, never to something weaker.
package profile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ghostbuster/internal/journal"
)

// stored is the on-disk form: the profile plus a content checksum over
// its canonical serialization. Any bit flip in a stored field — even
// one that still parses as valid JSON — breaks the checksum.
type stored struct {
	Profile
	Checksum string `json:"checksum,omitempty"`
}

// Checksum returns the profile's canonical content checksum: SHA-256
// over its canonical JSON serialization, hex-encoded (the same hash
// the sweep journal uses).
func Checksum(p Profile) string {
	data, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("profile: checksum marshal: %v", err))
	}
	return journal.Hash(data)
}

// Encode serializes a profile in the stored form, checksum included.
func Encode(p Profile) []byte {
	data, err := json.MarshalIndent(stored{Profile: p, Checksum: Checksum(p)}, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("profile: encode marshal: %v", err))
	}
	return append(data, '\n')
}

// Decode parses a stored profile, requiring a valid checksum — the
// form for state the system wrote itself (store files, the daemon's
// persisted active profile). Corruption of any kind is a loud error.
func Decode(data []byte) (Profile, error) {
	return parse(data, true)
}

// storedKeys is the exact-case key set of the stored form. Go's JSON
// decoder matches struct fields case-insensitively, so without this
// check a bit flip in a key's letter case ("breakeRThreshold") would
// decode to identical content and re-checksum cleanly — the one
// single-bit corruption the content checksum cannot see.
var storedKeys = map[string]bool{
	"name": true, "description": true, "rank": true, "locked": true,
	"advanced": true, "noiseFilter": true, "deadlineNs": true,
	"maxRetries": true, "journal": true, "intervalNs": true,
	"contain": true, "workers": true, "hostParallelism": true,
	"scanCrossMem": true, "scanBootChain": true, "scanRemovable": true,
	"randomizeOrder": true,
	"retryBackoffNs": true, "breakerThreshold": true,
	"abortAfterFailureFraction": true, "checksum": true,
}

// parse is the single profile deserializer. Strict on structure
// (unknown or case-mangled fields and trailing bytes are errors),
// strict on content (Validate), and — when requireChecksum, or
// whenever a checksum is present — strict on integrity.
func parse(data []byte, requireChecksum bool) (Profile, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return Profile{}, fmt.Errorf("profile: corrupt profile data: %w", err)
	}
	for k := range raw {
		if !storedKeys[k] {
			return Profile{}, fmt.Errorf("profile: corrupt profile data: unknown field %q", k)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var st stored
	if err := dec.Decode(&st); err != nil {
		return Profile{}, fmt.Errorf("profile: corrupt profile data: %w", err)
	}
	if dec.More() {
		return Profile{}, fmt.Errorf("profile: corrupt profile data: trailing bytes after profile object")
	}
	if st.Checksum == "" && requireChecksum {
		return Profile{}, fmt.Errorf("profile %q: missing content checksum", st.Name)
	}
	if st.Checksum != "" {
		if got := Checksum(st.Profile); got != st.Checksum {
			return Profile{}, fmt.Errorf("profile %q: checksum mismatch (recorded %.12s, content %.12s) — file corrupted or tampered",
				st.Name, st.Checksum, got)
		}
	}
	if err := st.Profile.Validate(); err != nil {
		return Profile{}, err
	}
	return st.Profile, nil
}

// Store resolves profiles by name: built-ins first, then checksummed
// JSON files under Dir. A zero-dir store serves only the built-ins.
type Store struct {
	Dir string
}

// NewStore returns a store over dir; empty dir means built-ins only.
func NewStore(dir string) *Store { return &Store{Dir: dir} }

// path maps a validated profile name to its file. Callers must have
// passed name through ValidateName first.
func (s *Store) path(name string) string {
	return filepath.Join(s.Dir, name+".json")
}

// Resolve returns the named profile: a built-in, or an imported file.
// Unknown names, invalid names, and corrupted files are all loud,
// distinct errors; nothing ever falls back to a different profile.
func (s *Store) Resolve(name string) (Profile, error) {
	if err := ValidateName(name); err != nil {
		return Profile{}, err
	}
	if p, ok := Builtin(name); ok {
		return p, nil
	}
	if s.Dir == "" {
		return Profile{}, fmt.Errorf("profile: unknown profile %q (built-ins: %s; no profile directory configured)",
			name, strings.Join(BuiltinNames(), ", "))
	}
	data, err := os.ReadFile(s.path(name))
	if os.IsNotExist(err) {
		return Profile{}, fmt.Errorf("profile: unknown profile %q (built-ins: %s; nothing imported under %s)",
			name, strings.Join(BuiltinNames(), ", "), s.Dir)
	}
	if err != nil {
		return Profile{}, fmt.Errorf("profile: reading %s: %w", s.path(name), err)
	}
	p, err := parse(data, true)
	if err != nil {
		return Profile{}, fmt.Errorf("profile: %s: %w", s.path(name), err)
	}
	if p.Name != name {
		return Profile{}, fmt.Errorf("profile: %s declares name %q — store file renamed or tampered", s.path(name), p.Name)
	}
	return p, nil
}

// Import validates a profile payload (flat JSON, checksum optional on
// input) and persists it to the store under its declared name. The
// built-in namespace is protected: importing "paranoid" is an error,
// not a shadow.
func (s *Store) Import(data []byte) (Profile, error) {
	p, err := parse(data, false)
	if err != nil {
		return Profile{}, err
	}
	if IsBuiltin(p.Name) {
		return Profile{}, fmt.Errorf("profile: name %q collides with a built-in profile — built-ins cannot be overridden", p.Name)
	}
	if s.Dir == "" {
		return Profile{}, fmt.Errorf("profile: cannot import %q: no profile directory configured", p.Name)
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return Profile{}, fmt.Errorf("profile: creating store directory: %w", err)
	}
	if err := os.WriteFile(s.path(p.Name), Encode(p), 0o644); err != nil {
		return Profile{}, fmt.Errorf("profile: writing %s: %w", s.path(p.Name), err)
	}
	return p, nil
}

// ImportFile imports the profile stored in the named file.
func (s *Store) ImportFile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("profile: reading %s: %w", path, err)
	}
	p, err := s.Import(data)
	if err != nil {
		return Profile{}, fmt.Errorf("profile: importing %s: %w", path, err)
	}
	return p, nil
}

// Export returns the named profile in the stored form (checksummed),
// suitable for re-import elsewhere.
func (s *Store) Export(name string) ([]byte, error) {
	p, err := s.Resolve(name)
	if err != nil {
		return nil, err
	}
	return Encode(p), nil
}

// Delete removes an imported profile. Built-ins cannot be deleted.
func (s *Store) Delete(name string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if IsBuiltin(name) {
		return fmt.Errorf("profile: cannot delete built-in profile %q", name)
	}
	if s.Dir == "" {
		return fmt.Errorf("profile: unknown profile %q (no profile directory configured)", name)
	}
	if err := os.Remove(s.path(name)); err != nil {
		return fmt.Errorf("profile: deleting %q: %w", name, err)
	}
	return nil
}

// List returns every resolvable profile, built-ins first (rank order)
// then imports (name order). A corrupted store file fails the whole
// listing loudly — a store with a tampered file in it is not partially
// trustworthy.
func (s *Store) List() ([]Profile, error) {
	out := Builtins()
	if s.Dir == "" {
		return out, nil
	}
	entries, err := os.ReadDir(s.Dir)
	if os.IsNotExist(err) {
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("profile: listing %s: %w", s.Dir, err)
	}
	var names []string
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || e.IsDir() {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p, err := s.Resolve(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
