// Package profile defines named scan-policy profiles: bundles of every
// knob a GhostBuster deployment tunes — scan strictness (the CID-table
// traversal, noise filters, deadlines, retries), throughput (fleet
// workers, intra-host lanes), robustness (containment, breakers, the
// fleet error budget), and the resident daemon's re-scan interval — so
// the one-shot CLI and the monitoring daemon share one policy codepath
// instead of two drifting flag sets.
//
// Four built-ins cover the deployment spectrum (quick < standard <
// paranoid < forensic, by Rank); custom profiles are imported as
// checksummed JSON files through a Store. A profile can be **locked**:
// once locked, no runtime override, profile switch, or API call may
// weaken the detection posture — weakening attempts return explicit
// errors naming every violated field, never a silently-degraded scan.
// The adversarial contract (built-in name collisions, path traversal
// via profile names, corrupted profile files) fails loudly in every
// case: there is no fallback profile.
package profile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
)

// Noise-filter set names. Baseline keeps only the always-benign ADS
// markers; standard adds the outside-the-box churn classifiers, which
// filter away more findings and are therefore the *weaker* setting for
// lock purposes.
const (
	NoiseBaseline = "baseline"
	NoiseStandard = "standard"
)

// Profile is one named scan policy. The first field group is
// security-critical: on a locked profile these can only be overridden
// in the strengthening direction (see Apply). The second group is
// operational and freely overridable.
type Profile struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Rank orders profiles by strictness (quick 0 < standard 1 <
	// paranoid 2 < forensic 3). A locked profile can only be switched
	// to a profile of equal or higher rank.
	Rank int `json:"rank"`
	// Locked freezes the security-critical posture: overrides that
	// weaken it, switches to lower-ranked profiles, and unlock attempts
	// all return explicit errors. Locking is one-way at runtime.
	Locked bool `json:"locked,omitempty"`

	// --- security-critical (lock-protected) ---

	// Advanced selects the CID-table traversal for the process low
	// scan (catches DKOM). Disabling it weakens.
	Advanced bool `json:"advanced"`
	// NoiseFilter names the noise-filter set: NoiseBaseline or
	// NoiseStandard. Moving baseline → standard filters away more
	// findings and weakens.
	NoiseFilter string `json:"noiseFilter"`
	// Deadline bounds each host scan attempt in virtual time; zero is
	// unbounded. Introducing or shortening a deadline abandons scan
	// units and weakens.
	Deadline time.Duration `json:"deadlineNs"`
	// MaxRetries grants failed or degraded scans extra attempts.
	// Lowering it weakens.
	MaxRetries int `json:"maxRetries"`
	// Journal makes fleet sweeps durable and tamper-evident. Disabling
	// it weakens.
	Journal bool `json:"journal"`
	// Interval is the resident daemon's re-scan period per host (the
	// actual wait is jittered ±10% so evasive ghostware cannot predict
	// scan times). Lengthening it scans less often and weakens.
	Interval time.Duration `json:"intervalNs"`
	// Contain demotes per-unit faults to degraded reports instead of
	// failing the scan. Turning containment ON where the profile has it
	// off masks faults and weakens (forensic runs fail-loud).
	Contain bool `json:"contain"`
	// ScanCrossMem enables the kmem pool-carve scan unit (catches
	// memory-only ghostware scrubbed from every kernel list). Disabling
	// it weakens.
	ScanCrossMem bool `json:"scanCrossMem"`
	// ScanBootChain enables the boot-chain scan unit (catches bootkits
	// that sanitize inside boot-sector reads). Disabling it weakens.
	ScanBootChain bool `json:"scanBootChain"`
	// ScanRemovable enables the removable-device scan unit (the USBcat
	// counter). Disabling it weakens.
	ScanRemovable bool `json:"scanRemovable"`
	// RandomizeOrder randomizes the execution order of a sweep's scan
	// units, denying adaptive ghostware the timing oracle a fixed order
	// hands it. Disabling it weakens.
	RandomizeOrder bool `json:"randomizeOrder"`

	// --- operational (freely overridable) ---

	// Workers bounds concurrent host scans in a sweep.
	Workers int `json:"workers"`
	// HostParallelism fans each host's eight scan units across lanes.
	HostParallelism int `json:"hostParallelism"`
	// RetryBackoff is the first retry wait (doubling, saturating at
	// fleet.MaxRetryBackoff); zero takes the fleet default.
	RetryBackoff time.Duration `json:"retryBackoffNs,omitempty"`
	// BreakerThreshold quarantines a host after this many consecutive
	// failed attempts; zero disables the breaker.
	BreakerThreshold int `json:"breakerThreshold,omitempty"`
	// AbortAfterFailureFraction is the fleet error budget in [0,1];
	// zero disables it.
	AbortAfterFailureFraction float64 `json:"abortAfterFailureFraction,omitempty"`
}

// Builtins returns the four built-in profiles in rank order. The slice
// and its entries are fresh copies; callers may mutate them.
func Builtins() []Profile {
	return []Profile{
		{
			Name:        "quick",
			Description: "fast daily triage: bounded, filtered, no retries",
			Rank:        0,
			Advanced:    false,
			NoiseFilter: NoiseStandard,
			Deadline:    30 * time.Second,
			MaxRetries:  0,
			Journal:     false,
			Interval:    24 * time.Hour,
			Contain:     true,
			Workers:     8, HostParallelism: 8,
		},
		{
			Name:           "standard",
			Description:    "the default monitoring posture: advanced scans, journaled, retried",
			Rank:           1,
			Advanced:       true,
			NoiseFilter:    NoiseStandard,
			Deadline:       2 * time.Minute,
			MaxRetries:     1,
			Journal:        true,
			Interval:       6 * time.Hour,
			Contain:        true,
			ScanCrossMem:   true,
			ScanRemovable:  true,
			RandomizeOrder: true,
			Workers:        4, HostParallelism: 4,
			BreakerThreshold: 3,
		},
		{
			Name:           "paranoid",
			Description:    "unbounded advanced scans with raw findings, hourly",
			Rank:           2,
			Advanced:       true,
			NoiseFilter:    NoiseBaseline,
			Deadline:       0,
			MaxRetries:     2,
			Journal:        true,
			Interval:       time.Hour,
			Contain:        true,
			ScanCrossMem:   true,
			ScanBootChain:  true,
			ScanRemovable:  true,
			RandomizeOrder: true,
			Workers:        2, HostParallelism: 8,
			BreakerThreshold: 5,
		},
		{
			Name:           "forensic",
			Description:    "evidence-grade: sequential, fail-loud, every fault is an error",
			Rank:           3,
			Advanced:       true,
			NoiseFilter:    NoiseBaseline,
			Deadline:       0,
			MaxRetries:     3,
			Journal:        true,
			Interval:       15 * time.Minute,
			Contain:        false,
			ScanCrossMem:   true,
			ScanBootChain:  true,
			ScanRemovable:  true,
			RandomizeOrder: true,
			Workers:        1, HostParallelism: 1,
		},
	}
}

// Builtin resolves a built-in profile by name.
func Builtin(name string) (Profile, bool) {
	for _, p := range Builtins() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// IsBuiltin reports whether name collides with a built-in profile.
func IsBuiltin(name string) bool {
	_, ok := Builtin(name)
	return ok
}

// BuiltinNames returns the built-in profile names in rank order.
func BuiltinNames() []string {
	bs := Builtins()
	out := make([]string, len(bs))
	for i, p := range bs {
		out[i] = p.Name
	}
	return out
}

// ValidateName enforces the profile-name grammar: lowercase ASCII
// letters, digits, and single dashes, starting with a letter, at most
// 32 characters. Everything a hostile name could smuggle — path
// separators, "..", NUL, Windows device names, unicode confusables —
// fails this grammar, so a profile name can never escape the store
// directory or alias another file.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("profile: empty profile name")
	}
	if len(name) > 32 {
		return fmt.Errorf("profile: name %q exceeds 32 characters", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9' && i > 0:
		case c == '-' && i > 0 && i < len(name)-1:
		default:
			return fmt.Errorf("profile: invalid profile name %q: names are lowercase [a-z0-9-], must start with a letter, and cannot contain path separators or dots", name)
		}
	}
	return nil
}

// Validate checks a profile's internal consistency. Invalid profiles
// are rejected wherever they enter the system (import, override,
// decode) — a profile that validated once stays valid.
func (p Profile) Validate() error {
	if err := ValidateName(p.Name); err != nil {
		return err
	}
	switch p.NoiseFilter {
	case NoiseBaseline, NoiseStandard:
	default:
		return fmt.Errorf("profile %q: unknown noise-filter set %q (want %q or %q)", p.Name, p.NoiseFilter, NoiseBaseline, NoiseStandard)
	}
	if p.Rank < 0 {
		return fmt.Errorf("profile %q: negative rank %d", p.Name, p.Rank)
	}
	if p.Deadline < 0 || p.RetryBackoff < 0 {
		return fmt.Errorf("profile %q: negative duration", p.Name)
	}
	if p.Interval <= 0 {
		return fmt.Errorf("profile %q: re-scan interval must be positive (got %v)", p.Name, p.Interval)
	}
	if p.MaxRetries < 0 || p.BreakerThreshold < 0 || p.HostParallelism < 0 {
		return fmt.Errorf("profile %q: negative retry/breaker/parallelism setting", p.Name)
	}
	if p.Workers < 1 {
		return fmt.Errorf("profile %q: workers must be >= 1 (got %d)", p.Name, p.Workers)
	}
	if p.AbortAfterFailureFraction < 0 || p.AbortAfterFailureFraction > 1 {
		return fmt.Errorf("profile %q: abort fraction %v outside [0,1]", p.Name, p.AbortAfterFailureFraction)
	}
	return nil
}

// Override is a partial runtime reconfiguration of a profile: nil
// fields are left alone. CLI flags and the daemon's profile API both
// funnel through it, so locked-profile enforcement lives in exactly one
// place (Apply).
type Override struct {
	Advanced    *bool          `json:"advanced,omitempty"`
	NoiseFilter *string        `json:"noiseFilter,omitempty"`
	Deadline    *time.Duration `json:"deadlineNs,omitempty"`
	MaxRetries  *int           `json:"maxRetries,omitempty"`
	Journal     *bool          `json:"journal,omitempty"`
	Interval    *time.Duration `json:"intervalNs,omitempty"`
	Contain     *bool          `json:"contain,omitempty"`

	ScanCrossMem   *bool `json:"scanCrossMem,omitempty"`
	ScanBootChain  *bool `json:"scanBootChain,omitempty"`
	ScanRemovable  *bool `json:"scanRemovable,omitempty"`
	RandomizeOrder *bool `json:"randomizeOrder,omitempty"`

	Workers                   *int           `json:"workers,omitempty"`
	HostParallelism           *int           `json:"hostParallelism,omitempty"`
	RetryBackoff              *time.Duration `json:"retryBackoffNs,omitempty"`
	BreakerThreshold          *int           `json:"breakerThreshold,omitempty"`
	AbortAfterFailureFraction *float64       `json:"abortAfterFailureFraction,omitempty"`

	// Lock requests locking (true) or unlocking (false). Locking is
	// always allowed; unlocking a locked profile is always refused.
	Lock *bool `json:"lock,omitempty"`
}

// noiseRank orders noise-filter sets by how much they filter away.
func noiseRank(set string) int {
	if set == NoiseStandard {
		return 1
	}
	return 0
}

// Apply merges an override into the profile and returns the result.
// On a locked profile every security-critical field may only move in
// the strengthening direction; all violations are collected into one
// explicit error, and the profile is left untouched. This is the
// single enforcement point for the locked-profile contract — the CLI,
// the daemon API, and config files all pass through here.
func (p Profile) Apply(o Override) (Profile, error) {
	next := p
	var violations []string
	weak := func(field, detail string) {
		violations = append(violations, fmt.Sprintf("%s (%s)", field, detail))
	}

	if o.Advanced != nil {
		if p.Locked && p.Advanced && !*o.Advanced {
			weak("advanced", "disables the DKOM-catching CID-table traversal")
		} else {
			next.Advanced = *o.Advanced
		}
	}
	if o.NoiseFilter != nil {
		if p.Locked && noiseRank(*o.NoiseFilter) > noiseRank(p.NoiseFilter) {
			weak("noiseFilter", fmt.Sprintf("%s filters away more findings than %s", *o.NoiseFilter, p.NoiseFilter))
		} else {
			next.NoiseFilter = *o.NoiseFilter
		}
	}
	if o.Deadline != nil {
		d := *o.Deadline
		shorter := (p.Deadline == 0 && d != 0) || (p.Deadline != 0 && d != 0 && d < p.Deadline)
		if p.Locked && shorter {
			weak("deadline", "a shorter scan deadline abandons scan units")
		} else {
			next.Deadline = d
		}
	}
	if o.MaxRetries != nil {
		if p.Locked && *o.MaxRetries < p.MaxRetries {
			weak("maxRetries", "fewer retries leaves transient faults unresolved")
		} else {
			next.MaxRetries = *o.MaxRetries
		}
	}
	if o.Journal != nil {
		if p.Locked && p.Journal && !*o.Journal {
			weak("journal", "disables the durable, tamper-evident sweep record")
		} else {
			next.Journal = *o.Journal
		}
	}
	if o.Interval != nil {
		if p.Locked && *o.Interval > p.Interval {
			weak("interval", "a longer re-scan interval monitors less often")
		} else {
			next.Interval = *o.Interval
		}
	}
	if o.Contain != nil {
		if p.Locked && !p.Contain && *o.Contain {
			weak("contain", "containment masks faults a fail-loud profile must surface")
		} else {
			next.Contain = *o.Contain
		}
	}
	if o.ScanCrossMem != nil {
		if p.Locked && p.ScanCrossMem && !*o.ScanCrossMem {
			weak("scanCrossMem", "disables the pool carve that catches memory-only ghostware")
		} else {
			next.ScanCrossMem = *o.ScanCrossMem
		}
	}
	if o.ScanBootChain != nil {
		if p.Locked && p.ScanBootChain && !*o.ScanBootChain {
			weak("scanBootChain", "disables the boot-chain truth source that catches bootkits")
		} else {
			next.ScanBootChain = *o.ScanBootChain
		}
	}
	if o.ScanRemovable != nil {
		if p.Locked && p.ScanRemovable && !*o.ScanRemovable {
			weak("scanRemovable", "disables the removable-device truth source")
		} else {
			next.ScanRemovable = *o.ScanRemovable
		}
	}
	if o.RandomizeOrder != nil {
		if p.Locked && p.RandomizeOrder && !*o.RandomizeOrder {
			weak("randomizeOrder", "a fixed scan order hands adaptive ghostware a timing oracle")
		} else {
			next.RandomizeOrder = *o.RandomizeOrder
		}
	}
	if o.Lock != nil {
		if !*o.Lock && p.Locked {
			weak("locked", "a locked profile cannot be unlocked at runtime")
		} else if *o.Lock {
			next.Locked = true
		}
	}

	if o.Workers != nil {
		next.Workers = *o.Workers
	}
	if o.HostParallelism != nil {
		next.HostParallelism = *o.HostParallelism
	}
	if o.RetryBackoff != nil {
		next.RetryBackoff = *o.RetryBackoff
	}
	if o.BreakerThreshold != nil {
		next.BreakerThreshold = *o.BreakerThreshold
	}
	if o.AbortAfterFailureFraction != nil {
		next.AbortAfterFailureFraction = *o.AbortAfterFailureFraction
	}

	if len(violations) > 0 {
		return Profile{}, fmt.Errorf("profile %q is locked: override would weaken %s", p.Name, strings.Join(violations, ", "))
	}
	if err := next.Validate(); err != nil {
		return Profile{}, err
	}
	return next, nil
}

// Switch validates a transition from the active profile to next. A
// locked active profile only admits targets of equal or higher rank,
// and the lock carries over to the target — switching profiles is not
// an unlock path.
func Switch(active, next Profile) (Profile, error) {
	if active.Locked {
		if next.Rank < active.Rank {
			return Profile{}, fmt.Errorf("profile %q is locked at rank %d: cannot switch to weaker profile %q (rank %d)",
				active.Name, active.Rank, next.Name, next.Rank)
		}
		next.Locked = true
	}
	return next, nil
}

// Filters returns the profile's noise-filter set.
func (p Profile) Filters() []core.NoiseFilter {
	if p.NoiseFilter == NoiseStandard {
		return core.StandardNoiseFilters()
	}
	return core.BaselineNoiseFilters()
}

// ConfigureDetector applies the profile to a one-shot detector — the
// CLI's single-machine scan path. Usable as a method value for
// fleet.Manager.ConfigureDetector, where it runs after the sweep
// defaults and therefore wins.
func (p Profile) ConfigureDetector(d *core.Detector) {
	d.Advanced = p.Advanced
	d.Contain = p.Contain
	d.Deadline = p.Deadline
	d.Opts.NoiseFilters = p.Filters()
	d.Units = p.Units()
	if p.RandomizeOrder {
		d.OrderSeed = nextOrderSeed()
	}
}

// Units maps the profile's scan-unit switches to the detector bitmask.
func (p Profile) Units() core.UnitSet {
	var u core.UnitSet
	if p.ScanCrossMem {
		u |= core.UnitCrossMem
	}
	if p.ScanBootChain {
		u |= core.UnitBootChain
	}
	if p.ScanRemovable {
		u |= core.UnitRemovable
	}
	return u
}

// orderSeedCounter feeds nextOrderSeed. A process-local counter keeps
// runs reproducible (the Nth configured detector always draws seed N)
// while giving every sweep a different unit order — the property that
// matters is that ghostware on the scanned machine cannot predict the
// order, and it never sees this counter.
var orderSeedCounter atomic.Int64

func nextOrderSeed() int64 { return orderSeedCounter.Add(1) }

// ConfigureManager applies the profile to a fleet manager — the sweep
// path both the CLI fleet mode and the resident daemon run.
func (p Profile) ConfigureManager(mgr *fleet.Manager) {
	mgr.Parallelism = p.Workers
	mgr.HostParallelism = p.HostParallelism
	mgr.MaxRetries = p.MaxRetries
	mgr.RetryBackoff = p.RetryBackoff
	mgr.HostDeadline = p.Deadline
	mgr.BreakerThreshold = p.BreakerThreshold
	mgr.AbortAfterFailureFraction = p.AbortAfterFailureFraction
	mgr.ConfigureDetector = p.ConfigureDetector
}

// Diagnose renders the profile as sorted key→value diagnostics, the
// quick-diagnostics surface the daemon's profile API and the CLI
// expose (modeled on the rcc configuration diagnostics contract).
func Diagnose(p Profile) map[string]string {
	return map[string]string{
		"profile-name":           p.Name,
		"profile-rank":           strconv.Itoa(p.Rank),
		"profile-locked":         strconv.FormatBool(p.Locked),
		"profile-advanced":       strconv.FormatBool(p.Advanced),
		"profile-noise-filter":   p.NoiseFilter,
		"profile-deadline":       p.Deadline.String(),
		"profile-max-retries":    strconv.Itoa(p.MaxRetries),
		"profile-journal":        strconv.FormatBool(p.Journal),
		"profile-interval":       p.Interval.String(),
		"profile-contain":        strconv.FormatBool(p.Contain),
		"profile-scan-crossmem":  strconv.FormatBool(p.ScanCrossMem),
		"profile-scan-bootchain": strconv.FormatBool(p.ScanBootChain),
		"profile-scan-removable": strconv.FormatBool(p.ScanRemovable),
		"profile-random-order":   strconv.FormatBool(p.RandomizeOrder),
		"profile-workers":        strconv.Itoa(p.Workers),
		"profile-host-lanes":     strconv.Itoa(p.HostParallelism),
		"profile-breaker":        strconv.Itoa(p.BreakerThreshold),
		"profile-abort-fraction": strconv.FormatFloat(p.AbortAfterFailureFraction, 'g', -1, 64),
	}
}

// DiagnoseKeys returns Diagnose's keys in sorted order, for stable
// text rendering.
func DiagnoseKeys(d map[string]string) []string {
	keys := make([]string, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
