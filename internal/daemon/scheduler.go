// The priority scheduler and sweep executor. Two triggers feed it:
//
//   - delta: a host whose substrate generation key moved since its last
//     completed sweep carries fresh bytes the last verdict never saw —
//     it goes to the front of the next sweep. The key is read *before*
//     the sweep scans the host, so a mutation racing the scan leaves
//     the keys unequal and the host re-triggers next pass: a delta can
//     be scanned twice, never lost.
//   - interval: every host re-scans on the active profile's cadence
//     even when quiet (cross-view diffs only catch what scans run into,
//     and a generation counter can't see a dormant sample that wrote
//     nothing). Intervals are jittered ±10% and the scan order within
//     each priority class is shuffled, so evasive ghostware cannot
//     learn the schedule and sleep through it.
//
// Every sweep is journaled under StateDir/sweeps with a sidecar pinning
// the exact host subset and the exact profile bytes in force; a `.done`
// marker seals completion. Resume rebuilds the manager from the sidecar
// (same hosts, same profile), so the merged report's digest equals the
// uninterrupted run's.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/fleetshard"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/profile"
)

// sweepMeta is the journal sidecar: everything Resume needs to rebuild
// the sweep exactly — the host subset (registry order is not enough,
// the sweep may cover a shuffled strict subset) and the profile bytes
// in force when the sweep started (the active profile may have been
// switched between crash and restart; resumed re-scans must use the
// original policy or the digests diverge).
type sweepMeta struct {
	ID      int             `json:"id"`
	Trigger string          `json:"trigger"`
	Hosts   []string        `json:"hosts"`
	Sharded bool            `json:"sharded,omitempty"`
	Shards  int             `json:"shards,omitempty"`
	Profile json.RawMessage `json:"profile"`
}

// loop is the background scheduler: each poll tick collects due hosts
// and sweeps them. It exits on Shutdown.
func (d *Daemon) loop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-d.stopc:
			return
		case now := <-t.C:
			if _, err := d.Tick(now); err != nil {
				d.logf("daemon: sweep failed: %v", err)
			}
		}
	}
}

// Tick runs one scheduler pass at the given instant: collects the due
// hosts (delta priority first, then interval, shuffled within each
// class) and sweeps them. Returns nil info when nothing is due — the
// quiet-fleet steady state, which costs only one generation-key read
// per host. Exported so tests drive the scheduler deterministically.
func (d *Daemon) Tick(now time.Time) (*SweepInfo, error) {
	due, trigger := d.collectDue(now)
	if len(due) == 0 {
		return nil, nil
	}
	return d.runSweep(due, trigger, now)
}

// SweepNow sweeps every registered host immediately (API trigger).
func (d *Daemon) SweepNow() (*SweepInfo, error) {
	d.mu.Lock()
	names := d.hostNamesLocked()
	d.mu.Unlock()
	if len(names) == 0 {
		return nil, fmt.Errorf("daemon: no hosts registered")
	}
	return d.runSweep(names, "manual", time.Now())
}

// collectDue partitions the fleet into delta-due and interval-due
// hosts, shuffles each class (unpredictable order within the priority),
// and returns delta hosts first. The sweep trigger is "delta" when any
// generation moved — that is the signal an operator pages on.
func (d *Daemon) collectDue(now time.Time) ([]string, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var delta, interval []string
	for _, name := range d.hostNamesLocked() {
		h := d.hosts[name]
		switch {
		case h.genKey == "":
			// Never swept: first scan establishes the baseline.
			delta = append(delta, name)
		case core.GenerationKey(h.m) != h.genKey:
			delta = append(delta, name)
		case !h.nextDue.IsZero() && !now.Before(h.nextDue):
			interval = append(interval, name)
		}
	}
	d.rng.Shuffle(len(delta), func(i, j int) { delta[i], delta[j] = delta[j], delta[i] })
	d.rng.Shuffle(len(interval), func(i, j int) { interval[i], interval[j] = interval[j], interval[i] })
	trigger := "interval"
	if len(delta) > 0 {
		trigger = "delta"
	}
	return append(delta, interval...), trigger
}

// runSweep executes one journaled sweep over the named hosts. One
// sweep runs at a time (the per-host caches and the journal sequence
// are shared); the sidecar is written before the first scan so a crash
// at any point leaves enough on disk to resume.
func (d *Daemon) runSweep(names []string, trigger string, now time.Time) (*SweepInfo, error) {
	d.sweepMu.Lock()
	defer d.sweepMu.Unlock()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("daemon: shut down")
	}
	id := d.seq
	d.seq++
	prof := d.active
	var hosts []dueHost
	for _, name := range names {
		h, ok := d.hosts[name]
		if !ok {
			continue // deregistered since collection
		}
		// Pre-scan baseline read: see the package comment's race rule.
		hosts = append(hosts, dueHost{name, h.m, h.cache, core.GenerationKey(h.m)})
	}
	d.mu.Unlock()
	if len(hosts) == 0 {
		return nil, fmt.Errorf("daemon: sweep %d: no hosts left to scan", id)
	}

	sharded := d.cfg.Shards >= 2
	meta := sweepMeta{ID: id, Trigger: trigger, Sharded: sharded, Shards: d.cfg.Shards, Profile: profile.Encode(prof)}
	for _, h := range hosts {
		meta.Hosts = append(meta.Hosts, h.name)
	}
	if err := d.writeSidecar(meta); err != nil {
		return nil, err
	}

	info := &SweepInfo{ID: id, Trigger: trigger, Profile: prof.Name, Hosts: meta.Hosts, Started: now}
	var err error
	if sharded {
		err = d.sweepSharded(info, prof, hostSet(hosts), false)
	} else {
		mgr := fleet.NewManager()
		prof.ConfigureManager(mgr)
		mgr.OnResult = d.resultSink(id, info)
		for _, h := range hosts {
			mgr.AddWithCache(h.name, h.m, h.cache)
		}
		var rep *fleet.Report
		rep, err = mgr.SweepJournaled(fleet.SweepInside, prof.Workers, d.journalPath(id))
		if rep != nil {
			info.Digest, info.Infected, info.Scanned, info.Aborted =
				rep.Digest, rep.Infected(), len(rep.Results), rep.Aborted
		}
	}
	if err != nil {
		info.Err = err.Error()
		d.commitSweep(info, trigger, nil)
		return info, err
	}
	if err := d.markDone(id); err != nil {
		return info, err
	}

	// Advance host baselines to the pre-scan keys and schedule the next
	// jittered interval. A host whose scan errored keeps its old key so
	// the delta trigger fires again next pass.
	pre := map[string]string{}
	for _, h := range hosts {
		pre[h.name] = h.preKey
	}
	d.commitSweep(info, trigger, pre)
	return info, nil
}

// dueHost is one host snapshot a sweep scans: the live machine, its
// long-lived cache, and its pre-scan generation baseline.
type dueHost struct {
	name   string
	m      *machine.Machine
	cache  *core.ScanCache
	preKey string
}

// hostSet adapts the due slice to a fleetshard host source.
func hostSet(hosts []dueHost) memSource {
	var src memSource
	for _, h := range hosts {
		src.names = append(src.names, h.name)
		src.machines = append(src.machines, h.m)
	}
	return src
}

// memSource serves the daemon's live registered machines to the shard
// coordinator. Sharded sweeps rebuild per-shard managers each run, so
// they trade the daemon's long-lived warm caches for horizontal scale.
type memSource struct {
	names    []string
	machines []*machine.Machine
}

func (s memSource) Len() int                              { return len(s.names) }
func (s memSource) Name(i int) string                     { return s.names[i] }
func (s memSource) Build(i int) (*machine.Machine, error) { return s.machines[i], nil }

// shardConfig maps the scan-policy profile onto the fleet-of-fleets
// coordinator (the same knobs one tier up).
func (d *Daemon) shardConfig(id int, prof profile.Profile, info *SweepInfo) fleetshard.Config {
	sink := d.resultSink(id, info)
	return fleetshard.Config{
		Kind:                      fleet.SweepInside,
		Shards:                    d.cfg.Shards,
		ShardWorkers:              prof.Workers,
		JournalDir:                d.shardDir(id),
		HostParallelism:           prof.HostParallelism,
		MaxRetries:                prof.MaxRetries,
		RetryBackoff:              prof.RetryBackoff,
		HostDeadline:              prof.Deadline,
		BreakerThreshold:          prof.BreakerThreshold,
		AbortAfterFailureFraction: prof.AbortAfterFailureFraction,
		ConfigureDetector:         prof.ConfigureDetector,
		// Supervision knobs pass through verbatim; see the Config doc
		// comments (Hedge in particular duplicates scans of the same
		// resident machine).
		Watchdog:          d.cfg.Watchdog,
		Hedge:             d.cfg.Hedge,
		BackoffJitterSeed: d.cfg.BackoffJitterSeed,
		OnResult:          func(_ int, res fleet.HostResult) { sink(res) },
	}
}

// sweepSharded runs (or resumes) sweep id through the coordinator.
func (d *Daemon) sweepSharded(info *SweepInfo, prof profile.Profile, src memSource, resume bool) error {
	c, err := fleetshard.New(d.shardConfig(info.ID, prof, info), src)
	if err != nil {
		return err
	}
	var rep *fleetshard.Report
	if resume {
		rep, err = c.Resume()
	} else {
		rep, err = c.Sweep()
	}
	if rep != nil {
		info.Digest, info.MergedDigest = rep.Digest, rep.MergedDigest
		info.Scanned, info.Aborted = rep.Scanned, rep.Aborted
		info.Resumed = info.Resumed || rep.Replayed > 0
	}
	return err
}

// resultSink returns the OnResult hook for sweep id: it broadcasts each
// committed result to API subscribers the moment it lands and records
// the per-host last verdict. Fleet serializes the calls.
func (d *Daemon) resultSink(id int, info *SweepInfo) func(fleet.HostResult) {
	return func(res fleet.HostResult) {
		r := res
		d.mu.Lock()
		if h, ok := d.hosts[r.Host]; ok {
			h.last = &r
		}
		if r.Infected {
			info.Infected = appendUnique(info.Infected, r.Host)
		}
		d.mu.Unlock()
		d.broadcast(Event{Type: "result", Sweep: id, Result: &r})
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// commitSweep records the finished sweep, reschedules the swept hosts,
// and broadcasts the sweep event. pre maps host name to its pre-scan
// generation key; nil skips baseline advancement (failed sweep).
func (d *Daemon) commitSweep(info *SweepInfo, trigger string, pre map[string]string) {
	info.Finished = time.Now()
	if info.Journal == "" {
		if info.Sharded() {
			info.Journal = d.shardDir(info.ID)
		} else {
			info.Journal = d.journalPath(info.ID)
		}
	}
	d.mu.Lock()
	d.sweeps = append(d.sweeps, *info)
	d.counts.byTrigger[trigger]++
	now := info.Finished
	for name, key := range pre {
		h, ok := d.hosts[name]
		if !ok {
			continue
		}
		if h.last == nil || h.last.Err == "" {
			h.genKey = key
		}
		h.lastSweep = now
		h.nextDue = now.Add(d.jitterLocked(d.active.Interval))
	}
	d.mu.Unlock()
	cp := *info
	d.broadcast(Event{Type: "sweep", Sweep: info.ID, Info: &cp})
	d.logf("daemon: sweep %d (%s, profile %s): %d hosts, %d infected, digest %.12s",
		info.ID, trigger, info.Profile, len(info.Hosts), len(info.Infected), info.Digest)
}

// Sharded reports whether the sweep ran through the shard coordinator.
func (s *SweepInfo) Sharded() bool { return s.MergedDigest != "" }

// jitterLocked spreads an interval over [0.9, 1.1) of itself so scan
// times drift unpredictably. Caller holds d.mu (the rng is shared).
func (d *Daemon) jitterLocked(iv time.Duration) time.Duration {
	if iv <= 0 {
		return iv
	}
	return time.Duration(float64(iv) * (0.9 + 0.2*d.rng.Float64()))
}

// writeSidecar persists the sweep's resume metadata before any scan.
func (d *Daemon) writeSidecar(meta sweepMeta) error {
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(d.sidecarPath(meta.ID), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("daemon: sweep %d sidecar: %w", meta.ID, err)
	}
	return nil
}

// markDone seals a completed sweep's journal with a marker file; on
// restart, journals without one are the crash victims to resume.
func (d *Daemon) markDone(id int) error {
	if err := os.WriteFile(d.doneMarker(id), []byte("done\n"), 0o644); err != nil {
		return fmt.Errorf("daemon: sweep %d done marker: %w", id, err)
	}
	return nil
}

// resumeDangling finds sweep journals left without a completion marker
// by a crashed predecessor and resumes each: committed results replay
// hash-verified from the journal, in-flight hosts re-scan, and the
// merged report's digest equals the uninterrupted run's. An empty
// journal (crash before the first commit) restarts the sweep fresh.
// Resume failures are loud — a dangling journal that cannot be resumed
// (corrupt sidecar, host no longer registered) fails daemon startup
// rather than silently dropping a half-finished sweep.
func (d *Daemon) resumeDangling() ([]SweepInfo, error) {
	ids, err := d.journaledSweepIDs()
	if err != nil {
		return nil, err
	}
	var resumed []SweepInfo
	for _, id := range ids {
		if _, err := os.Stat(d.doneMarker(id)); err == nil {
			continue
		}
		info, err := d.resumeSweep(id)
		if err != nil {
			return resumed, fmt.Errorf("daemon: resuming sweep %d: %w", id, err)
		}
		resumed = append(resumed, *info)
	}
	return resumed, nil
}

// resumeSweep resumes one dangling journal from its sidecar.
func (d *Daemon) resumeSweep(id int) (*SweepInfo, error) {
	d.sweepMu.Lock()
	defer d.sweepMu.Unlock()

	data, err := os.ReadFile(d.sidecarPath(id))
	if err != nil {
		return nil, fmt.Errorf("reading sweep sidecar: %w", err)
	}
	var meta sweepMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("sweep sidecar corrupt: %w", err)
	}
	// The sidecar pins the profile in force when the sweep started; a
	// corrupted pin fails loudly like every other profile on disk.
	prof, err := profile.Decode(meta.Profile)
	if err != nil {
		return nil, fmt.Errorf("sweep sidecar profile: %w", err)
	}

	var hosts []dueHost
	d.mu.Lock()
	for _, name := range meta.Hosts {
		h, ok := d.hosts[name]
		if !ok {
			d.mu.Unlock()
			return nil, fmt.Errorf("journaled host %q is not registered (ephemeral hosts cannot be resumed)", name)
		}
		hosts = append(hosts, dueHost{name, h.m, h.cache, core.GenerationKey(h.m)})
	}
	d.mu.Unlock()

	info := &SweepInfo{ID: id, Trigger: "resume", Profile: prof.Name, Hosts: meta.Hosts, Resumed: true, Started: time.Now()}
	if meta.Sharded {
		err = d.sweepSharded(info, prof, hostSet(hosts), true)
	} else {
		mgr := fleet.NewManager()
		prof.ConfigureManager(mgr)
		mgr.OnResult = d.resultSink(id, info)
		for _, h := range hosts {
			mgr.AddWithCache(h.name, h.m, h.cache)
		}
		var rep *fleet.Report
		rep, err = mgr.Resume(fleet.SweepInside, prof.Workers, d.journalPath(id))
		if errors.Is(err, fleet.ErrEmptyJournal) {
			// Crash before the first journal commit: nothing to replay,
			// restart the sweep from scratch under the same id.
			if rmErr := os.Remove(d.journalPath(id)); rmErr != nil {
				return nil, rmErr
			}
			rep, err = mgr.SweepJournaled(fleet.SweepInside, prof.Workers, d.journalPath(id))
		}
		if rep != nil {
			info.Digest, info.Infected, info.Scanned, info.Aborted =
				rep.Digest, rep.Infected(), len(rep.Results), rep.Aborted
		}
	}
	if err != nil {
		info.Err = err.Error()
		d.commitSweep(info, "resume", nil)
		return info, err
	}
	if err := d.markDone(id); err != nil {
		return info, err
	}
	pre := map[string]string{}
	for _, h := range hosts {
		pre[h.name] = h.preKey
	}
	d.commitSweep(info, "resume", pre)
	return info, nil
}
