// Package daemon is the resident monitoring service (`ghostbusterd`):
// the long-running process the one-shot cross-view diff grows into.
// Stealth software is a continuous threat — evasive samples behave
// differently while a visible scan runs — so the daemon re-scans
// registered hosts *incrementally* (generation counters short-circuit
// quiet hosts to a couple of verify passes) and *unpredictably*
// (jittered per-profile intervals, randomized scan ordering), journals
// every sweep for crash resume, and streams results over a JSON/HTTP
// API while sweeps are still running.
//
// Architecture: the daemon owns a registry of hosts (each with a
// long-lived incremental-scan cache), an active scan-policy profile
// (internal/profile, lockable), and a priority scheduler. Each
// scheduler pass collects hosts whose substrate generations moved
// (delta priority) and hosts whose jittered re-scan interval elapsed
// (interval priority), then runs one journaled sweep over them through
// a short-lived fleet.Manager (or, above the shard threshold, a
// fleetshard.Coordinator) — the daemon adds no second scan engine, it
// gives the existing ones a place to live. Every sweep journal lands
// in StateDir/sweeps; on restart, journals without a completion marker
// are resumed with digest equality to the uninterrupted run.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/profile"
	"ghostbuster/internal/supervise"
)

// Config tunes a Daemon.
type Config struct {
	// StateDir holds everything durable: registered host specs, the
	// active profile, and one journal per sweep. Required.
	StateDir string
	// ProfileDir is the custom-profile store directory; empty serves
	// built-ins only.
	ProfileDir string
	// Profile names the initial active profile (default "standard").
	// When the state directory already holds a persisted active
	// profile, that profile wins and this acts as a switch request —
	// subject to the locked-profile rules.
	Profile string
	// LockProfile locks the active profile at startup. Locking is
	// one-way: no API call or override can undo it.
	LockProfile bool
	// Override adjusts the resolved profile at startup, through the
	// same locked-profile enforcement as every other override path.
	Override *profile.Override
	// Shards >= 2 routes sweeps through the fleetshard coordinator
	// (one journal dir per sweep) instead of a single fleet manager.
	// Sharded sweeps trade the long-lived warm caches for scale: shard
	// managers materialize hosts per sweep.
	Shards int
	// Poll is the scheduler cadence (wall clock). Zero disables the
	// background loop; sweeps then run only via Tick/SweepNow — the
	// deterministic mode tests use.
	Poll time.Duration
	// Seed drives the scheduler's jitter and scan-order shuffle. The
	// randomness is adversarial (evasive ghostware must not predict
	// scan times), but a fixed seed keeps tests reproducible.
	Seed int64
	// Watchdog, when enabled, arms heartbeat supervision on sharded
	// sweeps: a shard missing its progress beacons is cancelled and its
	// unfinished hosts re-homed onto surviving shards mid-sweep.
	Watchdog supervise.Policy
	// Hedge, when set, duplicates straggling scans in sharded sweeps.
	// WARNING: the daemon serves its *live* registered machines to the
	// shard coordinator, so a hedged duplicate scans the same resident
	// machine concurrently with the straggler. That is only sound for
	// fleets without evasive scan-watchers (concurrent scans can trip
	// watcher state and diverge digests). Leave nil unless the fleet is
	// known passive.
	Hedge *fleet.HedgePolicy
	// BackoffJitterSeed enables deterministic full jitter on shard/host
	// retry backoff (0 keeps the legacy doubling schedule).
	BackoffJitterSeed int64
	// AdmitQueue bounds how many sweep-triggering API requests may wait
	// behind the in-flight sweep; requests past the bound are shed with
	// 429 + Retry-After instead of piling up behind the sweep mutex.
	// Only one sweep runs at a time, so the gate has a single slot.
	AdmitQueue int
	// RequestDeadline caps how long a sweep request may wait in the
	// admission queue before timing out (503). Zero waits as long as
	// the client does.
	RequestDeadline time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// HostSpec describes a registered host so it can be rebuilt
// deterministically after a daemon restart — the same construction
// contract the CLI fleet uses, so resumed sweeps hash identically.
type HostSpec struct {
	Name       string  `json:"name"`
	Seed       int64   `json:"seed,omitempty"`
	DiskUsedGB float64 `json:"diskUsedGB,omitempty"`
	// Infect installs the named ghostware after build (tests, demos,
	// and red-team drills).
	Infect string `json:"infect,omitempty"`
}

// BuildHost constructs the machine a spec describes. Deterministic:
// the same spec always yields a machine whose scans hash identically.
func BuildHost(spec HostSpec) (*machine.Machine, error) {
	p := machine.DefaultProfile()
	p.DiskUsedGB = spec.DiskUsedGB
	if p.DiskUsedGB <= 0 {
		p.DiskUsedGB = 1
	}
	p.Churn = nil
	if spec.Seed != 0 {
		p.Seed = spec.Seed
	}
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	for _, f := range []string{`C:\Private\diary.txt`, `C:\Shared\docs.txt`} {
		if err := m.DropFile(f, []byte("user data")); err != nil {
			return nil, err
		}
	}
	if spec.Infect != "" {
		e, ok := ghostware.Lookup(spec.Infect)
		if !ok {
			return nil, fmt.Errorf("daemon: unknown ghostware %q", spec.Infect)
		}
		g := e.New()
		if err := g.Install(m); err != nil {
			return nil, err
		}
		if e.Arm != nil {
			if err := e.Arm(m, g); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// host is one registered host's runtime state.
type host struct {
	spec HostSpec
	m    *machine.Machine
	// cache is the long-lived incremental-scan cache: it outlives the
	// per-sweep fleet managers (AddWithCache), so a quiet host's
	// re-scan costs generation checks, not reparses.
	cache *core.ScanCache
	// ephemeral hosts were registered with a live machine instead of a
	// spec; they cannot be rebuilt after a restart and are excluded
	// from the persisted registry.
	ephemeral bool

	// genKey is the substrate generation key observed immediately
	// before the host's last completed sweep; a different current key
	// means bytes moved and the host is delta-due. Read-before-scan:
	// a mutation racing the scan leaves the keys different, so the
	// next pass re-sweeps — a delta can be scanned twice, never lost.
	genKey string
	// lastSweep/nextDue drive the interval trigger (wall clock;
	// nextDue carries the ±10% jitter).
	nextDue   time.Time
	lastSweep time.Time
	last      *fleet.HostResult
}

// HostStatus is the API view of one registered host.
type HostStatus struct {
	Name          string    `json:"name"`
	Seed          int64     `json:"seed,omitempty"`
	Infect        string    `json:"infect,omitempty"`
	Ephemeral     bool      `json:"ephemeral,omitempty"`
	GenerationKey string    `json:"generationKey"`
	Dirty         bool      `json:"dirty"` // substrates moved since last sweep
	LastSweep     time.Time `json:"lastSweep,omitempty"`
	NextDue       time.Time `json:"nextDue,omitempty"`
	Infected      bool      `json:"infected,omitempty"`
	Hidden        int       `json:"hidden,omitempty"`
	Degraded      int       `json:"degraded,omitempty"`
	Quarantined   bool      `json:"quarantined,omitempty"`
	Error         string    `json:"error,omitempty"`
}

// SweepInfo is one sweep's row in the daemon's history.
type SweepInfo struct {
	ID      int      `json:"id"`
	Trigger string   `json:"trigger"` // delta | interval | manual | resume
	Profile string   `json:"profile"`
	Hosts   []string `json:"hosts"`
	// Digest is the sealed fleet-report digest; MergedDigest the
	// cross-shard seal (sharded sweeps only).
	Digest       string    `json:"digest,omitempty"`
	MergedDigest string    `json:"mergedDigest,omitempty"`
	Infected     []string  `json:"infected,omitempty"`
	Scanned      int       `json:"scanned"`
	Aborted      bool      `json:"aborted,omitempty"`
	Resumed      bool      `json:"resumed,omitempty"`
	Err          string    `json:"error,omitempty"`
	Journal      string    `json:"journal,omitempty"`
	Started      time.Time `json:"started"`
	Finished     time.Time `json:"finished"`
}

// Event is one entry on the daemon's result stream.
type Event struct {
	Type   string            `json:"type"` // "result" | "sweep"
	Sweep  int               `json:"sweep"`
	Result *fleet.HostResult `json:"result,omitempty"`
	Info   *SweepInfo        `json:"info,omitempty"`
}

// Metrics is the /v1/metrics snapshot.
type Metrics struct {
	Hosts            int            `json:"hosts"`
	Sweeps           int            `json:"sweeps"`
	SweepsByTrigger  map[string]int `json:"sweepsByTrigger,omitempty"`
	Results          int            `json:"results"`
	InfectedResults  int            `json:"infectedResults"`
	CacheHits        int            `json:"cacheHits"`
	CacheMisses      int            `json:"cacheMisses"`
	LockedRejections int            `json:"lockedRejections"`
	ProfileSwitches  int            `json:"profileSwitches"`
	DroppedEvents    int            `json:"droppedEvents"`
	// Admission-gate counters for sweep-triggering requests.
	SweepRequestsAdmitted int64   `json:"sweepRequestsAdmitted"`
	SweepRequestsShed     int64   `json:"sweepRequestsShed"`
	SweepRequestsTimedOut int64   `json:"sweepRequestsTimedOut"`
	Profile               string  `json:"profile"`
	ProfileLocked         bool    `json:"profileLocked"`
	UptimeSeconds         float64 `json:"uptimeSeconds"`
}

// Daemon is the resident monitoring service.
type Daemon struct {
	cfg   Config
	store *profile.Store
	// admit is the overload valve for sweep-triggering API requests:
	// one slot (sweeps are serialized anyway), a bounded wait queue,
	// and fast 429s past the bound.
	admit *supervise.Admission

	mu     sync.Mutex
	hosts  map[string]*host
	active profile.Profile
	sweeps []SweepInfo
	events []Event
	subs   map[chan Event]struct{}
	seq    int
	rng    *rand.Rand
	closed bool

	counts struct {
		results, infected, lockedRejections, profileSwitches, dropped int
		byTrigger                                                     map[string]int
	}

	// sweepMu serializes sweep execution: one sweep at a time touches
	// the shared per-host caches and the journal sequence.
	sweepMu sync.Mutex

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	started  time.Time
}

// hostNameRE is the host-name grammar: like profile names it can never
// smuggle a path separator or dot-dot into a journal filename.
var hostNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ErrDuplicateHost marks a Register call whose name is already
// enrolled. Callers re-registering a persisted fleet on restart treat
// it as success.
var ErrDuplicateHost = errors.New("daemon: host already registered")

const (
	activeProfileFile = "profile.json"
	hostsFile         = "hosts.json"
	sweepsDirName     = "sweeps"
	maxEvents         = 512
)

// New builds a daemon over its state directory: loads (or initializes)
// the active profile through the locked-profile rules, rebuilds the
// persisted host registry, and finds the next sweep sequence number.
// It does not start the scheduler or resume dangling journals — Start
// does, so callers can inspect state between the two.
func New(cfg Config) (*Daemon, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("daemon: Config.StateDir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, sweepsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("daemon: state dir: %w", err)
	}
	d := &Daemon{
		cfg:     cfg,
		store:   profile.NewStore(cfg.ProfileDir),
		admit:   supervise.NewAdmission(1, cfg.AdmitQueue),
		hosts:   map[string]*host{},
		subs:    map[chan Event]struct{}{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stopc:   make(chan struct{}),
		started: time.Now(),
	}
	d.counts.byTrigger = map[string]int{}
	if err := d.initProfile(); err != nil {
		return nil, err
	}
	if err := d.loadHosts(); err != nil {
		return nil, err
	}
	if err := d.initSeq(); err != nil {
		return nil, err
	}
	return d, nil
}

// initProfile resolves the startup profile: persisted state wins, the
// config's profile name acts as a switch request against it, and the
// lock flag plus overrides go through the single enforcement path.
func (d *Daemon) initProfile() error {
	var active profile.Profile
	persisted, err := os.ReadFile(filepath.Join(d.cfg.StateDir, activeProfileFile))
	switch {
	case err == nil:
		// A corrupted persisted profile is a loud startup failure; the
		// daemon never silently reverts to a default posture.
		active, err = profile.Decode(persisted)
		if err != nil {
			return fmt.Errorf("daemon: persisted active profile: %w", err)
		}
		if d.cfg.Profile != "" && d.cfg.Profile != active.Name {
			next, rerr := d.store.Resolve(d.cfg.Profile)
			if rerr != nil {
				return rerr
			}
			active, rerr = profile.Switch(active, next)
			if rerr != nil {
				return rerr
			}
		}
	case os.IsNotExist(err):
		name := d.cfg.Profile
		if name == "" {
			name = "standard"
		}
		active, err = d.store.Resolve(name)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("daemon: reading active profile: %w", err)
	}
	if d.cfg.LockProfile {
		active.Locked = true
	}
	if d.cfg.Override != nil {
		active, err = active.Apply(*d.cfg.Override)
		if err != nil {
			return err
		}
	}
	d.active = active
	return d.persistProfile()
}

// persistProfile writes the active profile atomically. Callers hold no
// locks or d.mu; the write is serialized by whoever mutates d.active.
func (d *Daemon) persistProfile() error {
	path := filepath.Join(d.cfg.StateDir, activeProfileFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, profile.Encode(d.active), 0o644); err != nil {
		return fmt.Errorf("daemon: persisting profile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("daemon: persisting profile: %w", err)
	}
	return nil
}

// loadHosts rebuilds the persisted host registry.
func (d *Daemon) loadHosts() error {
	data, err := os.ReadFile(filepath.Join(d.cfg.StateDir, hostsFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("daemon: reading host registry: %w", err)
	}
	var specs []HostSpec
	if err := json.Unmarshal(data, &specs); err != nil {
		return fmt.Errorf("daemon: host registry corrupt: %w", err)
	}
	for _, spec := range specs {
		if err := d.Register(spec); err != nil {
			return fmt.Errorf("daemon: rebuilding host %q: %w", spec.Name, err)
		}
	}
	return nil
}

// persistHosts writes the non-ephemeral host specs. Caller holds d.mu.
func (d *Daemon) persistHosts() error {
	specs := []HostSpec{}
	for _, name := range d.hostNamesLocked() {
		if h := d.hosts[name]; !h.ephemeral {
			specs = append(specs, h.spec)
		}
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(d.cfg.StateDir, hostsFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("daemon: persisting host registry: %w", err)
	}
	return os.Rename(tmp, path)
}

// initSeq finds the next sweep sequence number from the journals
// already on disk, so a restarted daemon never reuses a journal path.
func (d *Daemon) initSeq() error {
	ids, err := d.journaledSweepIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if id >= d.seq {
			d.seq = id + 1
		}
	}
	return nil
}

// journaledSweepIDs lists the sweep ids that have a journal on disk
// (single-node .gbj files and sharded .shards dirs), ascending.
func (d *Daemon) journaledSweepIDs() ([]int, error) {
	entries, err := os.ReadDir(d.sweepDir())
	if err != nil {
		return nil, fmt.Errorf("daemon: listing sweeps: %w", err)
	}
	var ids []int
	for _, e := range entries {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "sweep-%06d.gbj", &id); n == 1 && strings.HasSuffix(e.Name(), ".gbj") {
			ids = append(ids, id)
		} else if n, _ := fmt.Sscanf(e.Name(), "sweep-%06d.shards", &id); n == 1 && strings.HasSuffix(e.Name(), ".shards") && e.IsDir() {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

func (d *Daemon) sweepDir() string { return filepath.Join(d.cfg.StateDir, sweepsDirName) }

func (d *Daemon) journalPath(id int) string {
	return filepath.Join(d.sweepDir(), fmt.Sprintf("sweep-%06d.gbj", id))
}
func (d *Daemon) shardDir(id int) string {
	return filepath.Join(d.sweepDir(), fmt.Sprintf("sweep-%06d.shards", id))
}
func (d *Daemon) doneMarker(id int) string {
	return filepath.Join(d.sweepDir(), fmt.Sprintf("sweep-%06d.done", id))
}
func (d *Daemon) sidecarPath(id int) string {
	return filepath.Join(d.sweepDir(), fmt.Sprintf("sweep-%06d.hosts.json", id))
}

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// --- host registry --------------------------------------------------------

// Register enrolls a host built from a deterministic spec; it survives
// daemon restarts (the spec is persisted and the machine rebuilt).
// The new host is immediately due for its first sweep.
func (d *Daemon) Register(spec HostSpec) error {
	if !hostNameRE.MatchString(spec.Name) || strings.Contains(spec.Name, "..") {
		return fmt.Errorf("daemon: invalid host name %q", spec.Name)
	}
	m, err := BuildHost(spec)
	if err != nil {
		return err
	}
	return d.enroll(&host{spec: spec, m: m, cache: core.NewScanCache(m)})
}

// RegisterMachine enrolls a live machine directly. Ephemeral: it
// cannot be rebuilt after a restart, so it is excluded from the
// persisted registry (and resume of its sweeps fails loudly).
func (d *Daemon) RegisterMachine(name string, m *machine.Machine) error {
	if !hostNameRE.MatchString(name) || strings.Contains(name, "..") {
		return fmt.Errorf("daemon: invalid host name %q", name)
	}
	return d.enroll(&host{spec: HostSpec{Name: name}, m: m, cache: core.NewScanCache(m), ephemeral: true})
}

func (d *Daemon) enroll(h *host) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("daemon: shut down")
	}
	if _, dup := d.hosts[h.spec.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateHost, h.spec.Name)
	}
	d.hosts[h.spec.Name] = h
	if h.ephemeral {
		return nil
	}
	return d.persistHosts()
}

// Deregister removes a host. Its in-flight results (if a sweep is
// running) still commit; it is simply never scheduled again.
func (d *Daemon) Deregister(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.hosts[name]; !ok {
		return fmt.Errorf("daemon: unknown host %q", name)
	}
	delete(d.hosts, name)
	return d.persistHosts()
}

// hostNamesLocked returns the registered names sorted. Caller holds d.mu.
func (d *Daemon) hostNamesLocked() []string {
	names := make([]string, 0, len(d.hosts))
	for n := range d.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Hosts returns the API view of every registered host, sorted by name.
func (d *Daemon) Hosts() []HostStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]HostStatus, 0, len(d.hosts))
	for _, name := range d.hostNamesLocked() {
		h := d.hosts[name]
		cur := core.GenerationKey(h.m)
		st := HostStatus{
			Name: name, Seed: h.spec.Seed, Infect: h.spec.Infect,
			Ephemeral: h.ephemeral, GenerationKey: cur,
			Dirty: cur != h.genKey, LastSweep: h.lastSweep, NextDue: h.nextDue,
		}
		if r := h.last; r != nil {
			st.Infected, st.Hidden, st.Degraded, st.Quarantined, st.Error =
				r.Infected, r.Hidden, r.Degraded, r.Quarantined, r.Err
		}
		out = append(out, st)
	}
	return out
}

// --- profile management ---------------------------------------------------

// ActiveProfile returns the current scan policy.
func (d *Daemon) ActiveProfile() profile.Profile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// ProfileStore exposes the daemon's profile store (import/export).
func (d *Daemon) ProfileStore() *profile.Store { return d.store }

// SwitchProfile makes the named profile active, through the
// locked-profile transition rules (a lock follows the switch and
// refuses lower-ranked targets).
func (d *Daemon) SwitchProfile(name string) (profile.Profile, error) {
	next, err := d.store.Resolve(name)
	if err != nil {
		return profile.Profile{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switched, err := profile.Switch(d.active, next)
	if err != nil {
		d.counts.lockedRejections++
		return profile.Profile{}, err
	}
	d.active = switched
	d.counts.profileSwitches++
	if err := d.persistProfile(); err != nil {
		return profile.Profile{}, err
	}
	return switched, nil
}

// OverrideProfile applies a runtime override to the active profile —
// the single enforcement point rejects anything that would weaken a
// locked profile, and the rejection is counted and explicit.
func (d *Daemon) OverrideProfile(o profile.Override) (profile.Profile, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	next, err := d.active.Apply(o)
	if err != nil {
		d.counts.lockedRejections++
		return profile.Profile{}, err
	}
	d.active = next
	if err := d.persistProfile(); err != nil {
		return profile.Profile{}, err
	}
	return next, nil
}

// --- events and metrics ---------------------------------------------------

// Subscribe returns a channel of live sweep events and a cancel
// function. The channel is closed on cancel or daemon shutdown. Slow
// subscribers drop events (counted) rather than stall sweeps.
func (d *Daemon) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	d.subs[ch] = struct{}{}
	d.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			d.mu.Lock()
			if _, ok := d.subs[ch]; ok {
				delete(d.subs, ch)
				close(ch)
			}
			d.mu.Unlock()
		})
	}
	return ch, cancel
}

func (d *Daemon) broadcast(ev Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.events = append(d.events, ev)
	if len(d.events) > maxEvents {
		d.events = d.events[len(d.events)-maxEvents:]
	}
	if ev.Type == "result" && ev.Result != nil {
		d.counts.results++
		if ev.Result.Infected {
			d.counts.infected++
		}
	}
	for ch := range d.subs {
		select {
		case ch <- ev:
		default:
			d.counts.dropped++
		}
	}
}

// Events returns the retained event ring (most recent maxEvents).
func (d *Daemon) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.events...)
}

// Sweeps returns the sweep history.
func (d *Daemon) Sweeps() []SweepInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SweepInfo(nil), d.sweeps...)
}

// Snapshot returns the metrics snapshot.
func (d *Daemon) Snapshot() Metrics {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := Metrics{
		Hosts:            len(d.hosts),
		Sweeps:           len(d.sweeps),
		SweepsByTrigger:  map[string]int{},
		Results:          d.counts.results,
		InfectedResults:  d.counts.infected,
		LockedRejections: d.counts.lockedRejections,
		ProfileSwitches:  d.counts.profileSwitches,
		DroppedEvents:    d.counts.dropped,
		Profile:          d.active.Name,
		ProfileLocked:    d.active.Locked,
		UptimeSeconds:    time.Since(d.started).Seconds(),
	}
	for k, v := range d.counts.byTrigger {
		m.SweepsByTrigger[k] = v
	}
	for _, h := range d.hosts {
		s := h.cache.Stats()
		m.CacheHits += s.Hits
		m.CacheMisses += s.Misses
	}
	as := d.admit.Stats()
	m.SweepRequestsAdmitted, m.SweepRequestsShed, m.SweepRequestsTimedOut =
		as.Admitted, as.Shed, as.TimedOut
	return m
}

// Readiness is the /v1/readyz snapshot: Live while the process serves
// requests at all, Ready while the admission gate accepts new sweep
// work, Draining once shutdown has begun.
type Readiness struct {
	Live     bool `json:"live"`
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
}

// Readiness reports the daemon's admission state.
func (d *Daemon) Readiness() Readiness {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	return Readiness{
		Live:     !closed,
		Ready:    !closed && d.admit.Ready(),
		Draining: d.admit.Draining(),
	}
}

// --- lifecycle ------------------------------------------------------------

// Start resumes any sweep journals a previous process left dangling
// (kill -9 mid-sweep), then starts the scheduler loop if Poll > 0.
// The resumed sweeps' merged reports carry the same digests an
// uninterrupted run would have.
func (d *Daemon) Start() ([]SweepInfo, error) {
	resumed, err := d.resumeDangling()
	if err != nil {
		return resumed, err
	}
	if d.cfg.Poll > 0 {
		d.wg.Add(1)
		go d.loop()
	}
	return resumed, nil
}

// Shutdown drains gracefully: new sweep requests are refused (503 via
// the admission gate), the scheduler stops, the in-flight sweep (if
// any) completes and seals its journal, and every subscriber stream is
// closed. Idempotent.
func (d *Daemon) Shutdown() {
	d.admit.Drain()
	d.stopOnce.Do(func() { close(d.stopc) })
	d.wg.Wait()
	// Drain a manual (API-triggered) sweep still in flight.
	d.sweepMu.Lock()
	d.sweepMu.Unlock() //nolint:staticcheck // acquire-release is the drain
	d.mu.Lock()
	d.closed = true
	for ch := range d.subs {
		delete(d.subs, ch)
		close(ch)
	}
	d.mu.Unlock()
}
