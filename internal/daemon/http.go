// The JSON/HTTP control-plane API. Routes (Go 1.22 method+path mux):
//
//	GET    /v1/healthz        liveness + active profile
//	GET    /v1/readyz         admission state: live/ready/draining
//	                          (503 once draining — load balancers stop
//	                          routing before shutdown completes)
//	GET    /v1/metrics        counters snapshot
//	GET    /v1/hosts          registered hosts with delta/interval state
//	POST   /v1/hosts          register {name, seed, diskUsedGB, infect}
//	DELETE /v1/hosts/{name}   deregister
//	GET    /v1/sweeps         sweep history
//	POST   /v1/sweeps         trigger a manual sweep of the whole fleet
//	                          (admission-gated: 429 + Retry-After when
//	                          the bounded queue is full, 503 draining)
//	GET    /v1/results        live result stream (SSE); ?replay=1 first
//	                          replays the retained event ring
//	GET    /v1/profile        active profile + diagnostics
//	POST   /v1/profile        {"switch": name} | {"override": {...}} |
//	                          {"import": {...}} — a locked profile
//	                          rejects weakening with 409 Conflict
//
// The API never weakens a locked profile: every mutation funnels
// through profile.Apply/Switch, the single enforcement point.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ghostbuster/internal/profile"
	"ghostbuster/internal/supervise"
)

// maxBodyBytes caps JSON POST bodies: a host spec or profile document
// is a few KB; anything near a megabyte is abuse or an accident.
const maxBodyBytes = 1 << 20

// Handler returns the daemon's HTTP API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", d.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", d.handleReadyz)
	mux.HandleFunc("GET /v1/metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/hosts", d.handleHostsGet)
	mux.HandleFunc("POST /v1/hosts", d.handleHostsPost)
	mux.HandleFunc("DELETE /v1/hosts/{name}", d.handleHostDelete)
	mux.HandleFunc("GET /v1/sweeps", d.handleSweepsGet)
	mux.HandleFunc("POST /v1/sweeps", d.handleSweepsPost)
	mux.HandleFunc("GET /v1/results", d.handleResults)
	mux.HandleFunc("GET /v1/profile", d.handleProfileGet)
	mux.HandleFunc("POST /v1/profile", d.handleProfilePost)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// errStatus maps a daemon error to its HTTP status: locked-profile
// violations are 409 Conflict (the request was well-formed; the
// policy forbids it), everything else 400.
func errStatus(err error) int {
	if strings.Contains(err.Error(), "is locked") {
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p := d.ActiveProfile()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"profile":       p.Name,
		"profileLocked": p.Locked,
	})
}

// handleReadyz is the load-balancer contract: 200 while the admission
// gate accepts sweep work, 503 once saturated or draining — traffic
// stops routing here before shutdown completes.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := d.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Snapshot())
}

func (d *Daemon) handleHostsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Hosts())
}

func (d *Daemon) handleHostsPost(w http.ResponseWriter, r *http.Request) {
	var spec HostSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("daemon: bad host spec: %w", err))
		return
	}
	if err := d.Register(spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"registered": spec.Name})
}

func (d *Daemon) handleHostDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := d.Deregister(name); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deregistered": name})
}

func (d *Daemon) handleSweepsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Sweeps())
}

// handleSweepsPost runs a manual sweep through the admission gate:
// one sweep runs at a time, a bounded queue waits behind it, and
// overflow is shed immediately — 429 with a Retry-After estimate when
// saturated, 503 while draining, 503 when the per-request deadline
// expires in the queue. Degrading into fast rejections (instead of an
// unbounded goroutine pileup behind the sweep mutex) is the overload
// contract.
func (d *Daemon) handleSweepsPost(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if d.cfg.RequestDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.RequestDeadline)
		defer cancel()
	}
	release, err := d.admit.Acquire(ctx)
	if err != nil {
		retry := strconv.Itoa(int(d.admit.RetryAfter() / time.Second))
		switch {
		case errors.Is(err, supervise.ErrSaturated):
			w.Header().Set("Retry-After", retry)
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, supervise.ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, err)
		default: // deadline or client disconnect while queued
			w.Header().Set("Retry-After", retry)
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("daemon: sweep request expired in admission queue: %w", err))
		}
		return
	}
	defer release()
	info, err := d.SweepNow()
	if err != nil {
		status := http.StatusBadRequest
		if info != nil { // the sweep ran and failed, not a bad request
			status = http.StatusInternalServerError
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleResults streams sweep events as server-sent events: one
// `data: {...}` JSON frame per committed host result and per finished
// sweep, flushed as they happen — an operator watches detections land
// while the sweep is still running. `?replay=1` first replays the
// retained ring so late subscribers see recent history.
func (d *Daemon) handleResults(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("daemon: streaming unsupported"))
		return
	}
	ch, cancel := d.Subscribe()
	defer cancel()

	// The stream is long-lived by design: lift the server's WriteTimeout
	// for this response only, so ghostbusterd can keep a strict deadline
	// on every other route.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush() // headers must reach the client before the first event
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if r.URL.Query().Get("replay") != "" {
		for _, ev := range d.Events() {
			if !send(ev) {
				return
			}
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // daemon shutting down: end the stream cleanly
			}
			if !send(ev) {
				return
			}
		}
	}
}

func (d *Daemon) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	p := d.ActiveProfile()
	writeJSON(w, http.StatusOK, map[string]any{
		"profile":  p,
		"diagnose": profile.Diagnose(p),
	})
}

// profileRequest is the POST /v1/profile body: exactly one action.
type profileRequest struct {
	Switch   string            `json:"switch,omitempty"`
	Override *profile.Override `json:"override,omitempty"`
	Import   json.RawMessage   `json:"import,omitempty"`
}

func (d *Daemon) handleProfilePost(w http.ResponseWriter, r *http.Request) {
	var req profileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("daemon: bad profile request: %w", err))
		return
	}
	actions := 0
	for _, set := range []bool{req.Switch != "", req.Override != nil, len(req.Import) > 0} {
		if set {
			actions++
		}
	}
	if actions != 1 {
		writeErr(w, http.StatusBadRequest,
			errors.New(`daemon: profile request needs exactly one of "switch", "override", "import"`))
		return
	}
	switch {
	case req.Switch != "":
		p, err := d.SwitchProfile(req.Switch)
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"profile": p})
	case req.Override != nil:
		p, err := d.OverrideProfile(*req.Override)
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"profile": p})
	default:
		p, err := d.store.Import(req.Import)
		if err != nil {
			writeErr(w, errStatus(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"imported": p.Name})
	}
}
