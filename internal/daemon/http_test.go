package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/profile"
)

func newServer(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	d := newDaemon(t, cfg)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPLifecycle(t *testing.T) {
	_, srv := newServer(t, Config{Seed: 1})

	resp, body := doJSON(t, "GET", srv.URL+"/v1/healthz", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "POST", srv.URL+"/v1/hosts", HostSpec{Name: "host-a", Seed: 1, Infect: "Urbin"})
	if resp.StatusCode != 201 {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	if resp, body = doJSON(t, "POST", srv.URL+"/v1/hosts", HostSpec{Name: "../evil"}); resp.StatusCode != 400 {
		t.Fatalf("hostile host name over API: %d %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/v1/hosts", nil)
	var hosts []HostStatus
	if err := json.Unmarshal(body, &hosts); err != nil || len(hosts) != 1 {
		t.Fatalf("hosts: %d %s (%v)", resp.StatusCode, body, err)
	}
	if !hosts[0].Dirty {
		t.Fatal("never-swept host not marked dirty")
	}

	resp, body = doJSON(t, "POST", srv.URL+"/v1/sweeps", nil)
	var info SweepInfo
	if err := json.Unmarshal(body, &info); err != nil || resp.StatusCode != 200 {
		t.Fatalf("sweep: %d %s (%v)", resp.StatusCode, body, err)
	}
	if info.Trigger != "manual" || len(info.Infected) != 1 {
		t.Fatalf("sweep info: %+v", info)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/v1/sweeps", nil)
	var sweeps []SweepInfo
	if err := json.Unmarshal(body, &sweeps); err != nil || len(sweeps) != 1 {
		t.Fatalf("sweeps: %d %s (%v)", resp.StatusCode, body, err)
	}

	resp, body = doJSON(t, "GET", srv.URL+"/v1/metrics", nil)
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil || m.Hosts != 1 || m.Sweeps != 1 || m.InfectedResults != 1 {
		t.Fatalf("metrics: %d %s (%v)", resp.StatusCode, body, err)
	}

	resp, body = doJSON(t, "DELETE", srv.URL+"/v1/hosts/host-a", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("deregister: %d %s", resp.StatusCode, body)
	}
	if resp, _ = doJSON(t, "DELETE", srv.URL+"/v1/hosts/host-a", nil); resp.StatusCode != 404 {
		t.Fatalf("double deregister: %d", resp.StatusCode)
	}
}

// TestHTTPResultStream: results arrive over the SSE stream while the
// sweep runs; ?replay=1 serves the retained ring to late subscribers.
func TestHTTPResultStream(t *testing.T) {
	d, srv := newServer(t, Config{Seed: 2})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1, Infect: "Urbin"}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	if _, err := d.SweepNow(); err != nil {
		t.Fatal(err)
	}

	types := readSSETypes(t, resp, 2)
	if !types["result"] || !types["sweep"] {
		t.Fatalf("stream events: %v", types)
	}

	// Late subscriber replays the ring.
	resp2, err := http.Get(srv.URL + "/v1/results?replay=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	types = readSSETypes(t, resp2, 2)
	if !types["result"] || !types["sweep"] {
		t.Fatalf("replayed events: %v", types)
	}
}

// readSSETypes reads SSE frames until n distinct event types were seen
// (or the deadline passes) and returns the set.
func readSSETypes(t *testing.T, resp *http.Response, n int) map[string]bool {
	t.Helper()
	types := map[string]bool{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if ev, ok := strings.CutPrefix(line, "event: "); ok {
				types[ev] = true
				if len(types) >= n {
					return
				}
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream timed out")
	}
	return types
}

// TestHTTPLockedProfileRejectsWeakening is the locked-API acceptance:
// every weakening route 409s with an explicit error; strengthening and
// reads still work.
func TestHTTPLockedProfileRejectsWeakening(t *testing.T) {
	_, srv := newServer(t, Config{Seed: 3, Profile: "paranoid", LockProfile: true})

	resp, body := doJSON(t, "GET", srv.URL+"/v1/profile", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"paranoid"`) {
		t.Fatalf("profile get: %d %s", resp.StatusCode, body)
	}

	weakening := []map[string]any{
		{"override": map[string]any{"advanced": false}},
		{"override": map[string]any{"noiseFilter": "standard"}},
		{"override": map[string]any{"maxRetries": 0}},
		{"override": map[string]any{"lock": false}},
		{"switch": "quick"},
	}
	for _, req := range weakening {
		resp, body := doJSON(t, "POST", srv.URL+"/v1/profile", req)
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("weakening %v: status %d (want 409), body %s", req, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "locked") {
			t.Errorf("weakening %v: error does not explain the lock: %s", req, body)
		}
	}

	// Strengthening is allowed and persists.
	resp, body = doJSON(t, "POST", srv.URL+"/v1/profile", map[string]any{
		"override": map[string]any{"maxRetries": 5},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("strengthening rejected: %d %s", resp.StatusCode, body)
	}
	// Upgrade switch carries the lock.
	resp, body = doJSON(t, "POST", srv.URL+"/v1/profile", map[string]any{"switch": "forensic"})
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"locked": true`) {
		t.Fatalf("upgrade switch: %d %s", resp.StatusCode, body)
	}
}

func TestHTTPProfileImport(t *testing.T) {
	dir := t.TempDir()
	d, srv := newServer(t, Config{Seed: 4, ProfileDir: dir})

	custom, _ := profile.Builtin("standard")
	custom.Name = "site-policy"
	custom.Interval = 2 * time.Hour
	resp, body := doJSON(t, "POST", srv.URL+"/v1/profile",
		map[string]any{"import": json.RawMessage(profile.Encode(custom))})
	if resp.StatusCode != 201 {
		t.Fatalf("import: %d %s", resp.StatusCode, body)
	}
	if _, err := d.SwitchProfile("site-policy"); err != nil {
		t.Fatalf("switch to imported: %v", err)
	}

	// Built-in collision is refused over the API too.
	collide, _ := profile.Builtin("standard")
	collide.Advanced = false
	resp, body = doJSON(t, "POST", srv.URL+"/v1/profile",
		map[string]any{"import": json.RawMessage(profile.Encode(collide))})
	if resp.StatusCode != 400 || !strings.Contains(string(body), "built-in") {
		t.Fatalf("builtin collision import: %d %s", resp.StatusCode, body)
	}
}

func TestHTTPProfileRequestValidation(t *testing.T) {
	_, srv := newServer(t, Config{Seed: 5})
	for _, req := range []string{
		`{}`,
		`{"switch":"quick","override":{"workers":2}}`,
		`{"unknown":"field"}`,
	} {
		resp, body := doJSON(t, "POST", srv.URL+"/v1/profile", json.RawMessage(req))
		if resp.StatusCode != 400 {
			t.Errorf("request %s: status %d, body %s", req, resp.StatusCode, body)
		}
	}
}

func TestHTTPSweepWithNoHosts(t *testing.T) {
	_, srv := newServer(t, Config{Seed: 6})
	resp, _ := doJSON(t, "POST", srv.URL+"/v1/sweeps", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("empty-fleet sweep: %d", resp.StatusCode)
	}
}

func TestHTTPHostSpecStrictDecode(t *testing.T) {
	_, srv := newServer(t, Config{Seed: 7})
	resp, body := doJSON(t, "POST", srv.URL+"/v1/hosts",
		json.RawMessage(`{"name":"h","disableScans":true}`))
	if resp.StatusCode != 400 {
		t.Fatalf("unknown host-spec field accepted: %d %s", resp.StatusCode, body)
	}
}
