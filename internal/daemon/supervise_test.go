package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ghostbuster/internal/supervise"
)

func testPolicy() supervise.Policy {
	return supervise.Policy{Deadline: 200 * time.Millisecond, Misses: 3}
}

// TestSweepAdmissionShedsWith429: with the single sweep slot held and a
// zero-depth queue, a sweep request is shed immediately with 429 and a
// parseable Retry-After header — the overload contract.
func TestSweepAdmissionShedsWith429(t *testing.T) {
	d, srv := newServer(t, Config{Seed: 7, AdmitQueue: 0})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	release, err := d.admit.Acquire(context.Background())
	if err != nil {
		t.Fatalf("priming the slot: %v", err)
	}
	defer release()

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep POST returned %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q is not a positive integer of seconds", ra)
	}
	if m := d.Snapshot(); m.SweepRequestsShed == 0 {
		t.Error("shed request not counted in metrics")
	}
}

// TestSweepAdmissionQueuesBehindSlot: with queue depth available, a
// request parks behind the held slot and succeeds once it frees — the
// queue absorbs bursts instead of shedding them.
func TestSweepAdmissionQueuesBehindSlot(t *testing.T) {
	d, srv := newServer(t, Config{Seed: 7, AdmitQueue: 2})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	release, err := d.admit.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", nil)
		if err != nil {
			t.Error(err)
			close(done)
			return
		}
		done <- resp
	}()
	time.Sleep(50 * time.Millisecond) // let the request park in the queue
	release()
	resp, ok := <-done
	if !ok {
		t.Fatal("queued request never completed")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued sweep POST returned %d after the slot freed, want 200", resp.StatusCode)
	}
}

// TestSweepAdmissionDeadlineExpiresInQueue: a queued request past its
// RequestDeadline is evicted with 503 (plus Retry-After) instead of
// waiting forever behind a stuck sweep.
func TestSweepAdmissionDeadlineExpiresInQueue(t *testing.T) {
	d, srv := newServer(t, Config{Seed: 7, AdmitQueue: 2, RequestDeadline: 50 * time.Millisecond})
	release, err := d.admit.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired request returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("expired request carries no Retry-After hint")
	}
	if m := d.Snapshot(); m.SweepRequestsTimedOut == 0 {
		t.Error("queue timeout not counted in metrics")
	}
}

// TestReadyzTracksDraining: readyz is 200/ready before shutdown and
// 503/draining after — the signal a load balancer needs to route away
// before the listener actually closes.
func TestReadyzTracksDraining(t *testing.T) {
	d, srv := newServer(t, Config{Seed: 7})
	get := func() (int, Readiness) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rd Readiness
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(buf.Bytes(), &rd); err != nil {
			t.Fatalf("readyz body %q: %v", buf.String(), err)
		}
		return resp.StatusCode, rd
	}
	if code, rd := get(); code != http.StatusOK || !rd.Ready || !rd.Live || rd.Draining {
		t.Fatalf("fresh daemon readyz = %d %+v, want 200 ready", code, rd)
	}

	d.Shutdown()
	if code, rd := get(); code != http.StatusServiceUnavailable || rd.Ready || !rd.Draining {
		t.Fatalf("post-shutdown readyz = %d %+v, want 503 draining", code, rd)
	}

	// The drained gate also turns sweep requests away with 503.
	resp, err := http.Post(srv.URL+"/v1/sweeps", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("sweep POST while draining returned %d, want 503", resp.StatusCode)
	}
}

// TestOversizedPostBodiesRejected: the body caps on the JSON POST
// routes refuse megabyte-plus payloads outright.
func TestOversizedPostBodiesRejected(t *testing.T) {
	_, srv := newServer(t, Config{Seed: 7})
	huge := `{"name":"` + strings.Repeat("a", maxBodyBytes+1) + `"}`
	for _, route := range []string{"/v1/hosts", "/v1/profile"} {
		resp, err := http.Post(srv.URL+route, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", route, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s accepted an oversized body: %d", route, resp.StatusCode)
		}
	}
}

// TestSlowSubscriberDropsWithoutStallingSweeps: a subscriber that never
// reads must not block sweep execution — its events are dropped and
// counted, the sweep completes, and DroppedEvents only ever grows.
func TestSlowSubscriberDropsWithoutStallingSweeps(t *testing.T) {
	d := newDaemon(t, Config{Seed: 7})
	for _, name := range []string{"host-a", "host-b", "host-c"} {
		if err := d.Register(HostSpec{Name: name, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Never read from ch: the 64-slot buffer fills, then drops begin.
	_, cancel := d.Subscribe()
	defer cancel()

	prev := 0
	for i := 0; i < 40; i++ {
		if _, err := d.SweepNow(); err != nil {
			t.Fatalf("sweep %d under a stalled subscriber: %v", i, err)
		}
		if dropped := d.Snapshot().DroppedEvents; dropped < prev {
			t.Fatalf("DroppedEvents went backwards: %d -> %d", prev, dropped)
		} else {
			prev = dropped
		}
	}
	if prev == 0 {
		t.Fatal("40 sweeps against a never-reading subscriber dropped nothing")
	}
}

// TestSubscriberChurnDuringSweeps: subscribers attaching and detaching
// while sweeps stream events must never deadlock or double-close; run
// under -race this also proves the broadcast path is data-race free.
func TestSubscriberChurnDuringSweeps(t *testing.T) {
	d := newDaemon(t, Config{Seed: 7})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := d.Subscribe()
				// Drain a little, then walk away mid-stream.
				for j := 0; j < 3; j++ {
					select {
					case <-ch:
					case <-time.After(time.Millisecond):
					}
				}
				cancel()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := d.SweepNow(); err != nil {
			t.Fatalf("sweep %d during subscriber churn: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDaemonForwardsSupervisionKnobs: the daemon's shard config carries
// the watchdog, hedge, and jitter settings through to the coordinator
// verbatim.
func TestDaemonForwardsSupervisionKnobs(t *testing.T) {
	d := newDaemon(t, Config{
		Seed:              7,
		Shards:            2,
		Watchdog:          testPolicy(),
		BackoffJitterSeed: 99,
	})
	cfg := d.shardConfig(1, d.ActiveProfile(), &SweepInfo{ID: 1})
	if cfg.Watchdog != testPolicy() {
		t.Errorf("watchdog not forwarded: %+v", cfg.Watchdog)
	}
	if cfg.BackoffJitterSeed != 99 {
		t.Errorf("jitter seed not forwarded: %d", cfg.BackoffJitterSeed)
	}
	if cfg.Hedge != nil {
		t.Errorf("nil hedge policy became %+v", cfg.Hedge)
	}
}

// TestShardedSweepUnderWatchdog: a healthy sharded daemon sweep with
// the watchdog armed completes normally — idle supervision must not
// perturb results or digests.
func TestShardedSweepUnderWatchdog(t *testing.T) {
	ref := newDaemon(t, Config{Seed: 7, Shards: 2})
	sup := newDaemon(t, Config{Seed: 7, Shards: 2, Watchdog: testPolicy(), BackoffJitterSeed: 3})
	for _, d := range []*Daemon{ref, sup} {
		for _, name := range []string{"host-a", "host-b", "host-c", "host-d"} {
			if err := d.Register(HostSpec{Name: name, Seed: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, err := ref.SweepNow()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sup.SweepNow()
	if err != nil {
		t.Fatalf("supervised sweep: %v", err)
	}
	if got.MergedDigest != want.MergedDigest || got.Scanned != want.Scanned {
		t.Errorf("idle supervision changed the sweep: %q/%d vs %q/%d",
			got.MergedDigest, got.Scanned, want.MergedDigest, want.Scanned)
	}
}
