package daemon

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/fleet"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/journal"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/profile"
)

func newDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("daemon.New: %v", err)
	}
	t.Cleanup(d.Shutdown)
	return d
}

func infest(t *testing.T, m *machine.Machine, name string) {
	t.Helper()
	e, ok := ghostware.Lookup(name)
	if !ok {
		t.Fatalf("no ghostware %q", name)
	}
	g := e.New()
	if err := g.Install(m); err != nil {
		t.Fatal(err)
	}
	if e.Arm != nil {
		if err := e.Arm(m, g); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuietHostCostsNothing: after the first sweep, a host whose
// substrates have not moved is never re-swept until its interval
// elapses — a scheduler pass over a quiet fleet runs zero scans.
func TestQuietHostCostsNothing(t *testing.T) {
	d := newDaemon(t, Config{Seed: 7})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	info, err := d.Tick(now)
	if err != nil {
		t.Fatalf("first tick: %v", err)
	}
	if info == nil || info.Trigger != "delta" || info.Scanned != 1 {
		t.Fatalf("first tick = %+v, want delta sweep of 1 host", info)
	}
	for i := 0; i < 3; i++ {
		info, err = d.Tick(time.Now())
		if err != nil {
			t.Fatal(err)
		}
		if info != nil {
			t.Fatalf("quiet host re-swept: %+v", info)
		}
	}
	if m := d.Snapshot(); m.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want 1", m.Sweeps)
	}
}

// TestDeltaSweepMatchesColdScanDigest is the incremental-correctness
// acceptance: mutate a host's substrate, let the generation delta
// trigger a warm incremental sweep, and require its sealed digest to
// equal a cold one-shot sweep of an identically-built-and-infected
// host. The warm cache may only save work, never change the verdict.
func TestDeltaSweepMatchesColdScanDigest(t *testing.T) {
	d := newDaemon(t, Config{Seed: 3})
	m, err := BuildHost(HostSpec{Name: "h", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterMachine("h", m); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tick(time.Now()); err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	infest(t, m, "Urbin")
	info, err := d.Tick(time.Now())
	if err != nil {
		t.Fatalf("delta sweep: %v", err)
	}
	if info == nil || info.Trigger != "delta" {
		t.Fatalf("mutation did not trigger a delta sweep: %+v", info)
	}
	if len(info.Infected) != 1 || info.Infected[0] != "h" {
		t.Fatalf("infected = %v, want [h]", info.Infected)
	}

	// Cold reference: same spec, infection included at build time, one
	// fresh journaled sweep under the same profile.
	cold, err := BuildHost(HostSpec{Name: "h", Seed: 5, Infect: "Urbin"})
	if err != nil {
		t.Fatal(err)
	}
	mgr := fleet.NewManager()
	prof := d.ActiveProfile()
	prof.ConfigureManager(mgr)
	mgr.Add("h", cold)
	rep, err := mgr.SweepJournaled(fleet.SweepInside, prof.Workers, filepath.Join(t.TempDir(), "cold.gbj"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest != info.Digest {
		t.Fatalf("warm incremental digest %s != cold one-shot digest %s", info.Digest, rep.Digest)
	}
}

// TestMutationRacingSweepRetriggers: bytes written between the
// scheduler's baseline read and the commit are never masked — the host
// stays delta-due on the next pass.
func TestMutationRacingSweepRetriggers(t *testing.T) {
	d := newDaemon(t, Config{Seed: 11})
	m, err := BuildHost(HostSpec{Name: "r", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterMachine("r", m); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tick(time.Now()); err != nil {
		t.Fatal(err)
	}
	base := d.Snapshot()
	// Mutate after the sweep committed: the baseline was read pre-scan,
	// so the current key differs and the next tick must re-sweep.
	if err := m.DropFile(`C:\Private\new.txt`, []byte("x")); err != nil {
		t.Fatal(err)
	}
	info, err := d.Tick(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Trigger != "delta" {
		t.Fatalf("post-sweep mutation not re-swept: %+v", info)
	}
	// Only the disk moved: the registry side of the incremental sweep
	// must come out of the daemon-owned warm cache.
	if warm := d.Snapshot(); warm.CacheHits <= base.CacheHits {
		t.Fatalf("file-only delta reused no cached hive parse (hits %d -> %d)", base.CacheHits, warm.CacheHits)
	}
}

// TestIntervalTriggerIsJittered: a quiet host re-sweeps once its
// (jittered) interval elapses, and the recorded nextDue actually
// carries jitter rather than the exact interval.
func TestIntervalTriggerIsJittered(t *testing.T) {
	iv := 100 * time.Millisecond
	d := newDaemon(t, Config{Seed: 13, Override: &profile.Override{Interval: &iv}})
	if err := d.Register(HostSpec{Name: "host-j", Seed: 4}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := d.Tick(start); err != nil {
		t.Fatal(err)
	}
	hosts := d.Hosts()
	gap := hosts[0].NextDue.Sub(hosts[0].LastSweep)
	if gap < 90*time.Millisecond || gap > 110*time.Millisecond {
		t.Fatalf("nextDue gap %v outside the ±10%% jitter window of %v", gap, iv)
	}
	if info, err := d.Tick(hosts[0].NextDue.Add(-time.Millisecond)); err != nil || info != nil {
		t.Fatalf("swept before due: %+v, %v", info, err)
	}
	info, err := d.Tick(hosts[0].NextDue.Add(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Trigger != "interval" {
		t.Fatalf("interval elapsed but no sweep: %+v", info)
	}
}

func TestHostNamesValidated(t *testing.T) {
	d := newDaemon(t, Config{})
	for _, name := range []string{"", "../evil", "a/b", `a\b`, "x..", strings.Repeat("n", 65)} {
		if err := d.Register(HostSpec{Name: name}); err == nil {
			t.Errorf("Register(%q) accepted a hostile host name", name)
		}
	}
	if err := d.Register(HostSpec{Name: "ok-host.01", Seed: 1}); err != nil {
		t.Errorf("legal host name rejected: %v", err)
	}
	if err := d.Register(HostSpec{Name: "ok-host.01", Seed: 1}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestRegistryAndProfilePersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	d1 := newDaemon(t, Config{StateDir: dir, Profile: "paranoid", LockProfile: true})
	if err := d1.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d1.Register(HostSpec{Name: "host-b", Seed: 2, Infect: "Urbin"}); err != nil {
		t.Fatal(err)
	}
	// Ephemeral hosts are excluded from the persisted registry.
	m, _ := BuildHost(HostSpec{Name: "eph", Seed: 9})
	if err := d1.RegisterMachine("eph", m); err != nil {
		t.Fatal(err)
	}
	d1.Shutdown()

	d2 := newDaemon(t, Config{StateDir: dir})
	hosts := d2.Hosts()
	if len(hosts) != 2 || hosts[0].Name != "host-a" || hosts[1].Name != "host-b" {
		t.Fatalf("restart lost the registry: %+v", hosts)
	}
	p := d2.ActiveProfile()
	if p.Name != "paranoid" || !p.Locked {
		t.Fatalf("restart lost the locked profile: %+v", p)
	}
	// The lock survives the restart: weakening still rejected, and the
	// rejection counted.
	if _, err := d2.SwitchProfile("quick"); err == nil {
		t.Fatal("locked profile switched down after restart")
	}
	adv := false
	if _, err := d2.OverrideProfile(profile.Override{Advanced: &adv}); err == nil {
		t.Fatal("locked profile weakened after restart")
	}
	if m := d2.Snapshot(); m.LockedRejections != 2 {
		t.Fatalf("lockedRejections = %d, want 2", m.LockedRejections)
	}
}

func TestStartupProfileCannotDowngradeLocked(t *testing.T) {
	dir := t.TempDir()
	d1 := newDaemon(t, Config{StateDir: dir, Profile: "paranoid", LockProfile: true})
	d1.Shutdown()
	if _, err := New(Config{StateDir: dir, Profile: "quick"}); err == nil {
		t.Fatal("restart with -profile quick downgraded a locked paranoid")
	}
}

func TestCorruptPersistedProfileFailsStartup(t *testing.T) {
	dir := t.TempDir()
	d1 := newDaemon(t, Config{StateDir: dir})
	d1.Shutdown()
	path := filepath.Join(dir, "profile.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{StateDir: dir}); err == nil {
		t.Fatal("daemon started over a corrupted persisted profile")
	}
}

// TestCrashResumeDigestEquality is the kill -9 acceptance: truncate a
// sealed sweep's journal mid-records (simulating the crash), restart
// the daemon, and require the resumed sweep's digest to equal the
// uninterrupted run's.
func TestCrashResumeDigestEquality(t *testing.T) {
	register := func(t *testing.T, d *Daemon) {
		for _, spec := range []HostSpec{
			{Name: "host-a", Seed: 1},
			{Name: "host-b", Seed: 2, Infect: "Urbin"},
			{Name: "host-c", Seed: 3},
		} {
			if err := d.Register(spec); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Reference: the uninterrupted sweep.
	ref := newDaemon(t, Config{Seed: 5})
	register(t, ref)
	full, err := ref.Tick(time.Now())
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		keep int
		torn bool
	}{
		{"mid-sweep-torn", 4, true},
		{"after-first-commit", 5, false},
		{"before-any-commit", 0, false}, // ErrEmptyJournal -> fresh restart
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d1 := newDaemon(t, Config{StateDir: dir, Seed: 5})
			register(t, d1)
			info, err := d1.Tick(time.Now())
			if err != nil {
				t.Fatal(err)
			}
			if info.Digest != full.Digest {
				t.Fatalf("same fleet, different digests before crash: %s vs %s", info.Digest, full.Digest)
			}
			d1.Shutdown()

			// Simulate the kill: journal cut mid-records, no done marker.
			jp := filepath.Join(dir, "sweeps", "sweep-000000.gbj")
			if _, err := journal.TruncateRecords(jp, tc.keep, tc.torn); err != nil {
				t.Fatal(err)
			}
			if err := os.Remove(filepath.Join(dir, "sweeps", "sweep-000000.done")); err != nil {
				t.Fatal(err)
			}

			d2 := newDaemon(t, Config{StateDir: dir, Seed: 5})
			resumed, err := d2.Start()
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if len(resumed) != 1 {
				t.Fatalf("resumed %d sweeps, want 1", len(resumed))
			}
			if resumed[0].Digest != full.Digest {
				t.Fatalf("resumed digest %s != uninterrupted digest %s", resumed[0].Digest, full.Digest)
			}
			if !resumed[0].Resumed || resumed[0].Trigger != "resume" {
				t.Fatalf("resume provenance missing: %+v", resumed[0])
			}
			if _, err := os.Stat(filepath.Join(dir, "sweeps", "sweep-000000.done")); err != nil {
				t.Fatal("resumed sweep not sealed with a done marker")
			}
			// The next sweep id must not collide with the resumed one.
			if info, err := d2.SweepNow(); err != nil || info.ID == 0 {
				t.Fatalf("post-resume sweep: %+v, %v", info, err)
			}
		})
	}
}

func TestResumeFailsLoudlyWithoutSidecar(t *testing.T) {
	dir := t.TempDir()
	d1 := newDaemon(t, Config{StateDir: dir})
	if err := d1.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Tick(time.Now()); err != nil {
		t.Fatal(err)
	}
	d1.Shutdown()
	if err := os.Remove(filepath.Join(dir, "sweeps", "sweep-000000.done")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "sweeps", "sweep-000000.hosts.json")); err != nil {
		t.Fatal(err)
	}
	d2 := newDaemon(t, Config{StateDir: dir})
	if _, err := d2.Start(); err == nil {
		t.Fatal("dangling journal without sidecar resumed silently")
	}
}

func TestShardedSweep(t *testing.T) {
	d := newDaemon(t, Config{Seed: 9, Shards: 2})
	for i, name := range []string{"host-a", "host-b", "host-c"} {
		if err := d.Register(HostSpec{Name: name, Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := d.SweepNow()
	if err != nil {
		t.Fatal(err)
	}
	if info.MergedDigest == "" || info.Digest == "" {
		t.Fatalf("sharded sweep missing digests: %+v", info)
	}
	if info.Scanned != 3 {
		t.Fatalf("scanned %d, want 3", info.Scanned)
	}
}

func TestSubscribeStreamsResultsAndShutdownCloses(t *testing.T) {
	d := newDaemon(t, Config{Seed: 1})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1, Infect: "Urbin"}); err != nil {
		t.Fatal(err)
	}
	ch, cancel := d.Subscribe()
	defer cancel()
	if _, err := d.Tick(time.Now()); err != nil {
		t.Fatal(err)
	}
	var gotResult, gotSweep bool
	for ev := range ch {
		switch ev.Type {
		case "result":
			gotResult = true
			if !ev.Result.Infected {
				t.Error("infected host streamed as clean")
			}
		case "sweep":
			gotSweep = true
		}
		if gotResult && gotSweep {
			break
		}
	}
	if !gotResult || !gotSweep {
		t.Fatalf("stream missing events: result=%v sweep=%v", gotResult, gotSweep)
	}
	d.Shutdown()
	select {
	case _, open := <-ch:
		if open {
			// Drain any buffered events; the channel must close.
			for range ch {
			}
		}
	case <-time.After(time.Second):
		t.Fatal("shutdown did not close subscriber stream")
	}
}

// TestGracefulShutdownDrainsInFlightSweep: Shutdown must wait for the
// running sweep to commit and seal its journal.
func TestGracefulShutdownDrainsInFlightSweep(t *testing.T) {
	dir := t.TempDir()
	d := newDaemon(t, Config{StateDir: dir, Seed: 2})
	for i := 0; i < 4; i++ {
		if err := d.Register(HostSpec{Name: "host-" + string(rune('a'+i)), Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.SweepNow()
		done <- err
	}()
	// Let the sweep start, then drain.
	time.Sleep(5 * time.Millisecond)
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("in-flight sweep failed under shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sweeps", "sweep-000000.done")); err != nil {
		t.Fatal("drained sweep left no done marker")
	}
	if _, err := d.SweepNow(); err == nil {
		t.Fatal("sweep accepted after shutdown")
	}
}

func TestDeregisterStopsScheduling(t *testing.T) {
	d := newDaemon(t, Config{Seed: 4})
	if err := d.Register(HostSpec{Name: "host-a", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Deregister("host-a"); err != nil {
		t.Fatal(err)
	}
	if info, err := d.Tick(time.Now()); err != nil || info != nil {
		t.Fatalf("deregistered host swept: %+v, %v", info, err)
	}
	if err := d.Deregister("host-a"); err == nil {
		t.Fatal("double deregister succeeded")
	}
}

// TestRemovableHotplugTriggersDeltaSweep: plugging in (or pulling) a
// removable stick moves the host's substrate generation key, so the
// scheduler's next pass is delta-due — and the warm incremental sweep
// of the hot-plugged, USBcat-infected host seals the same digest as a
// cold one-shot sweep of an identically built-and-infected machine.
func TestRemovableHotplugTriggersDeltaSweep(t *testing.T) {
	d := newDaemon(t, Config{Seed: 9})
	m, err := BuildHost(HostSpec{Name: "u", Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterMachine("u", m); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Tick(time.Now()); err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	// Hot-plug: USBcat attaches a stick, drops payloads on it, and
	// hides them from the Win32 view. The attach bumps the removable
	// generation, so this is a delta, not an interval wait.
	infest(t, m, "USBcat")
	info, err := d.Tick(time.Now())
	if err != nil {
		t.Fatalf("hot-plug sweep: %v", err)
	}
	if info == nil || info.Trigger != "delta" {
		t.Fatalf("removable attach did not trigger a delta sweep: %+v", info)
	}
	if len(info.Infected) != 1 || info.Infected[0] != "u" {
		t.Fatalf("infected = %v, want [u]", info.Infected)
	}

	// Cold reference: same spec, infection included at build time, one
	// fresh journaled sweep under the same profile. The warm cache (and
	// the different randomized unit order the cold sweep draws) may only
	// save work, never change the verdict.
	cold, err := BuildHost(HostSpec{Name: "u", Seed: 6, Infect: "USBcat"})
	if err != nil {
		t.Fatal(err)
	}
	mgr := fleet.NewManager()
	prof := d.ActiveProfile()
	prof.ConfigureManager(mgr)
	mgr.Add("u", cold)
	rep, err := mgr.SweepJournaled(fleet.SweepInside, prof.Workers, filepath.Join(t.TempDir(), "cold.gbj"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest != info.Digest {
		t.Fatalf("hot-plug incremental digest %s != cold one-shot digest %s", info.Digest, rep.Digest)
	}

	// Detach: the stick leaves with the payloads. Another generation
	// bump, another delta — and with no media the removable pair goes
	// quiet, so the host scans clean again.
	m.DetachRemovable()
	info, err = d.Tick(time.Now())
	if err != nil {
		t.Fatalf("detach sweep: %v", err)
	}
	if info == nil || info.Trigger != "delta" {
		t.Fatalf("removable detach did not trigger a delta sweep: %+v", info)
	}
	if len(info.Infected) != 0 {
		t.Fatalf("detached host still reported infected: %v", info.Infected)
	}
}
