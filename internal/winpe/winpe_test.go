package winpe

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func churnProfile() machine.Profile {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	return p // keeps the default churn services (AV, prefetch, SR, browser)
}

func quietProfile() machine.Profile {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	return p
}

func TestOutsideFileCheckFindsHiddenFiles(t *testing.T) {
	m, err := machine.New(quietProfile())
	if err != nil {
		t.Fatal(err)
	}
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := OutsideFileCheck(m, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != len(hd.HiddenFiles()) {
		t.Fatalf("hidden = %d (%+v), want %d", len(r.Hidden), r.Hidden, len(hd.HiddenFiles()))
	}
	// The machine is back up after the check.
	if _, err := m.Pid("explorer.exe"); err != nil {
		t.Errorf("machine not rebooted after check: %v", err)
	}
}

// TestOutsideCheckChurnBecomesNoise: on a machine with always-running
// services, the reboot window creates a couple of new files; the noise
// filters classify them, leaving zero real findings (paper §2: "on all
// but one machine, the number of false positives was two or less").
func TestOutsideCheckChurnBecomesNoise(t *testing.T) {
	m, err := machine.New(churnProfile())
	if err != nil {
		t.Fatal(err)
	}
	r, err := OutsideFileCheck(m, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("clean machine outside check found: %+v", r.Hidden)
	}
	if len(r.Noise) == 0 || len(r.Noise) > 2 {
		t.Errorf("noise = %d entries (%+v), want 1-2 (AV log + SR change log)", len(r.Noise), r.Noise)
	}
}

// TestCCMMachineHasMoreFalsePositives reproduces the 7 -> 2 experiment.
func TestCCMMachineHasMoreFalsePositives(t *testing.T) {
	p := churnProfile()
	p.Churn = append(p.Churn, machine.ChurnCCM)
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Without filters, the raw FP count on the CCM machine is 7.
	r, err := OutsideFileCheck(m, core.DiffOptions{NoiseFilters: []core.NoiseFilter{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 7 {
		t.Errorf("CCM machine raw FPs = %d, want 7", len(r.Hidden))
	}
	// Disable the CCM service and re-run: 2 raw FPs.
	m.DisableChurn(machine.ChurnCCM)
	r, err = OutsideFileCheck(m, core.DiffOptions{NoiseFilters: []core.NoiseFilter{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 2 {
		t.Errorf("after disabling CCM, raw FPs = %d, want 2", len(r.Hidden))
	}
}

// TestChurnNeverMasksMalware: noise filtering must not eat real hidden
// files even on a churny machine.
func TestChurnNeverMasksMalware(t *testing.T) {
	m, err := machine.New(churnProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := ghostware.NewVanquish().Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := OutsideFileCheck(m, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantHidden := 0
	for _, f := range r.Hidden {
		if strings.Contains(f.ID, "VANQUISH") {
			wantHidden++
		}
	}
	if wantHidden != 3 {
		t.Errorf("vanquish files among findings = %d, want 3 (%+v)", wantHidden, r.Hidden)
	}
	for _, f := range r.Noise {
		if strings.Contains(f.ID, "VANQUISH") {
			t.Errorf("malware classified as noise: %+v", f)
		}
	}
}

// TestOutsideASEPCheck: WinPE hive mount exposes hidden hooks.
func TestOutsideASEPCheck(t *testing.T) {
	m, err := machine.New(quietProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := ghostware.NewUrbin().Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := OutsideASEPCheck(m, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 1 || !strings.Contains(r.Hidden[0].ID, "APPINIT_DLLS") {
		t.Fatalf("hidden hooks = %+v", r.Hidden)
	}
}

// TestWinPEAddsRebootTime: the outside solution costs the CD boot.
func TestWinPEAddsRebootTime(t *testing.T) {
	m, err := machine.New(quietProfile())
	if err != nil {
		t.Fatal(err)
	}
	before := m.Clock.Now()
	s, err := BootCD(m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Clock.Now()-before < m.Profile.RebootTime {
		t.Errorf("CD boot charged %v, want at least %v", m.Clock.Now()-before, m.Profile.RebootTime)
	}
	if err := s.Exit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Exit(); err != nil {
		t.Errorf("double Exit should be a no-op: %v", err)
	}
}

// TestGhostwareDoesNotRunUnderWinPE: hooks die with the shutdown; the
// outside scan sees the truth even though the ghostware's ASEP hooks are
// intact and will re-fire on the next real boot.
func TestGhostwareDoesNotRunUnderWinPE(t *testing.T) {
	m, err := machine.New(quietProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		t.Fatal(err)
	}
	s, err := BootCD(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.API.Hooks()); got != 0 {
		t.Errorf("%d hooks alive under WinPE", got)
	}
	snap, err := s.ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for id := range snap.Entries {
		if strings.Contains(id, "HXDEF100.EXE") {
			found = true
		}
	}
	if !found {
		t.Error("outside scan should see the rootkit files")
	}
	if err := s.Exit(); err != nil {
		t.Fatal(err)
	}
	// Back inside, the rootkit reactivated via its (hidden) service hook.
	if got := len(m.API.Hooks()); got == 0 {
		t.Error("rootkit should reactivate on real boot")
	}
}
