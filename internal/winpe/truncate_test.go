package winpe

import (
	"math/rand"
	"testing"

	"ghostbuster/internal/machine"
)

func bootedSession(t *testing.T) *Session {
	t.Helper()
	m, err := machine.New(quietProfile())
	if err != nil {
		t.Fatal(err)
	}
	s, err := BootCD(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestScanFilesTruncatedImage: a disk image cut short (a failing CD
// drive, an aborted capture) must fail the outside scan loudly, never
// panic or return a partial truth that could mask hidden files.
func TestScanFilesTruncatedImage(t *testing.T) {
	s := bootedSession(t)
	full := s.diskImage
	for _, n := range []int{0, 1, 7, len(full) / 3, len(full) - 1} {
		s.diskImage = full[:n]
		if _, err := s.ScanFiles(); err == nil {
			t.Errorf("ScanFiles accepted a %d-byte image (full is %d)", n, len(full))
		}
	}
}

// TestScanASEPsTruncatedHive: same property for the captured hive files.
func TestScanASEPsTruncatedHive(t *testing.T) {
	s := bootedSession(t)
	for root, img := range s.hiveImages {
		if len(img) < 2 {
			t.Fatalf("hive %s image is degenerate: %d bytes", root, len(img))
		}
		s.hiveImages[root] = img[:len(img)/2]
		if _, err := s.ScanASEPs(); err == nil {
			t.Errorf("ScanASEPs accepted a truncated %s hive", root)
		}
		s.hiveImages[root] = img
	}
}

// TestScanASEPsNoHives: a capture that found no hives yields an empty
// truth, not a crash — the diff layer then reports every inside hook as
// suspect, which is the loud outcome.
func TestScanASEPsNoHives(t *testing.T) {
	s := bootedSession(t)
	s.hiveImages = map[string][]byte{}
	snap, err := s.ScanASEPs()
	if err != nil {
		t.Fatalf("empty hive set: %v", err)
	}
	if snap == nil || len(snap.Entries) != 0 {
		t.Errorf("empty hive set produced entries: %+v", snap)
	}
}

// TestScanFilesSurvivesRandomCorruption: arbitrary byte damage to the
// captured image either parses or errors — it never panics the scanner.
func TestScanFilesSurvivesRandomCorruption(t *testing.T) {
	s := bootedSession(t)
	base := s.diskImage
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 60; trial++ {
		img := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(32); i++ {
			img[rng.Intn(len(img))] = byte(rng.Intn(256))
		}
		s.diskImage = img
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ScanFiles panicked: %v", trial, r)
				}
			}()
			_, _ = s.ScanFiles()
		}()
	}
}
