// Package winpe implements the paper's outside-the-box solution: boot
// the suspect machine from a clean WinPE CD and scan its disk and
// Registry hives with no ghostware running, then diff against the
// high-level scan taken inside the box. "Since the ghostware programs
// are not running when we perform a scan from WinPE, there will not be
// any hiding or malicious interference" (§1).
//
// The price of the larger time gap is reboot-window churn: always-
// running services flush logs during shutdown, so the outside diff
// contains a handful of benign new files (§2's false positives), which
// the standard noise filters classify.
package winpe

import (
	"fmt"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
)

// Session is a machine booted into WinPE. While the session is open the
// suspect OS is down; Exit boots it back.
type Session struct {
	m          *machine.Machine
	diskImage  []byte
	hiveImages map[string][]byte
	exited     bool
}

// BootCD shuts the machine down (service-flush churn happens here, as in
// a real shutdown), charges the CD boot time (the paper's 1.5–3 min),
// and captures the persistent state for clean scanning.
func BootCD(m *machine.Machine) (*Session, error) {
	// Capture hive images BEFORE shutdown? No — the hive files on disk
	// are flushed at shutdown; WinPE reads the post-shutdown state.
	if err := m.Shutdown(); err != nil {
		return nil, fmt.Errorf("winpe: shutting down: %w", err)
	}
	boot := m.Profile.RebootTime
	if boot <= 0 {
		boot = 2 * time.Minute
	}
	m.Clock.Advance(boot)
	s := &Session{m: m, hiveImages: map[string][]byte{}}
	s.diskImage = m.Disk.SnapshotImage()
	for _, root := range m.Reg.Roots() {
		h, ok := m.Reg.HiveAt(root)
		if !ok {
			continue
		}
		s.hiveImages[root] = h.Snapshot()
	}
	return s, nil
}

// ScanFiles performs the clean outside file scan over the captured disk.
func (s *Session) ScanFiles() (*core.Snapshot, error) {
	return core.ScanFilesImage(s.diskImage, core.ViewWinPE, s.m.Clock, s.m.Profile)
}

// ScanASEPs mounts the captured hive files under the WinPE OS and
// collects ASEP hooks from the truth.
func (s *Session) ScanASEPs() (*core.Snapshot, error) {
	return core.ScanASEPImages(s.hiveImages, core.ViewWinPE, s.m.Clock, s.m.Profile)
}

// Exit reboots the suspect machine back into its own OS (ASEP hooks
// fire again, so surviving ghostware reactivates).
func (s *Session) Exit() error {
	if s.exited {
		return nil
	}
	s.exited = true
	boot := s.m.Profile.RebootTime
	if boot <= 0 {
		boot = 2 * time.Minute
	}
	s.m.Clock.Advance(boot / 2)
	return s.m.Boot()
}

// OutsideFileCheck runs the complete outside-the-box hidden-file
// detection: inside high-level scan, WinPE boot, outside scan, diff
// (with the standard noise filters), reboot back.
func OutsideFileCheck(m *machine.Machine, opts core.DiffOptions) (*core.Report, error) {
	inside, err := core.ScanFilesHigh(m, m.SystemCall())
	if err != nil {
		return nil, err
	}
	s, err := BootCD(m)
	if err != nil {
		return nil, err
	}
	defer func() { _ = s.Exit() }()
	outside, err := s.ScanFiles()
	if err != nil {
		return nil, err
	}
	if opts.NoiseFilters == nil {
		opts.NoiseFilters = core.StandardNoiseFilters()
	}
	report, err := core.SealedDiff(inside, outside, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Exit(); err != nil {
		return nil, err
	}
	return report, nil
}

// OutsideASEPCheck runs the complete outside-the-box hidden-ASEP
// detection.
func OutsideASEPCheck(m *machine.Machine, opts core.DiffOptions) (*core.Report, error) {
	inside, err := core.ScanASEPHigh(m, m.SystemCall())
	if err != nil {
		return nil, err
	}
	s, err := BootCD(m)
	if err != nil {
		return nil, err
	}
	defer func() { _ = s.Exit() }()
	outside, err := s.ScanASEPs()
	if err != nil {
		return nil, err
	}
	report, err := core.SealedDiff(inside, outside, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Exit(); err != nil {
		return nil, err
	}
	return report, nil
}
