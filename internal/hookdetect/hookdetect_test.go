package hookdetect

import (
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

func smallMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCleanMachineNoAlerts(t *testing.T) {
	m := smallMachine(t)
	if alerts := Scan(m); len(alerts) != 0 {
		t.Errorf("alerts on clean machine: %+v", alerts)
	}
}

func TestDetectsClassicAPIHookers(t *testing.T) {
	cases := []struct {
		name    string
		install func(m *machine.Machine) error
	}{
		{"Urbin/IAT", func(m *machine.Machine) error { return ghostware.NewUrbin().Install(m) }},
		{"HackerDefender/ntdll", func(m *machine.Machine) error { return ghostware.NewHackerDefender().Install(m) }},
		{"ProBot/SSDT", func(m *machine.Machine) error { return ghostware.NewProBotSE().Install(m) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := smallMachine(t)
			if err := tc.install(m); err != nil {
				t.Fatal(err)
			}
			if alerts := Scan(m); len(alerts) == 0 {
				t.Error("hook checker should flag classic API interception")
			}
		})
	}
}

// TestFalseNegatives reproduces the paper's first disadvantage of the
// hook-detection approach: it "cannot catch ghostware programs that do
// not use the targeted mechanism". All three of these hide successfully
// (cross-view diff finds them) yet produce zero hook alerts.
func TestFalseNegatives(t *testing.T) {
	cases := []struct {
		name    string
		install func(m *machine.Machine) error
		check   func(t *testing.T, m *machine.Machine)
	}{
		{
			"commercial filter driver",
			func(m *machine.Machine) error {
				for _, f := range []string{`C:\Private\a.doc`} {
					if err := m.DropFile(f, []byte("d")); err != nil {
						return err
					}
				}
				return ghostware.NewHideFoldersXP(ghostware.DefaultHiderTargets).Install(m)
			},
			func(t *testing.T, m *machine.Machine) {
				r, err := core.NewDetector(m).ScanFiles()
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Hidden) == 0 {
					t.Error("cross-view should still find the hidden folder")
				}
			},
		},
		{
			"FU DKOM",
			func(m *machine.Machine) error {
				fu := ghostware.NewFU()
				if err := fu.Install(m); err != nil {
					return err
				}
				if _, err := m.StartProcess("quiet.exe", `C:\q.exe`); err != nil {
					return err
				}
				return fu.HideByName(m, "quiet.exe")
			},
			func(t *testing.T, m *machine.Machine) {
				d := core.NewDetector(m)
				d.Advanced = true
				r, err := d.ScanProcesses()
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Hidden) != 1 {
					t.Errorf("cross-view advanced mode should find the DKOM process: %+v", r.Hidden)
				}
			},
		},
		{
			"Win32 name tricks",
			func(m *machine.Machine) error { return ghostware.NewWin32NameGhost().Install(m) },
			func(t *testing.T, m *machine.Machine) {
				r, err := core.NewDetector(m).ScanFiles()
				if err != nil {
					t.Fatal(err)
				}
				if len(r.Hidden) != 4 {
					t.Errorf("cross-view should find the name-trick files: %+v", r.Hidden)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := smallMachine(t)
			if err := tc.install(m); err != nil {
				t.Fatal(err)
			}
			if alerts := Scan(m); len(alerts) != 0 {
				t.Errorf("hook checker should be blind here, got %+v", alerts)
			}
			tc.check(t, m)
		})
	}
}

// TestFalsePositiveOnLegitimateDetour reproduces the second
// disadvantage: "it may catch as false positives legitimate uses of API
// interceptions for in-memory software patching, fault-tolerance
// wrappers, etc." — while the cross-view diff ignores the passthrough.
func TestFalsePositiveOnLegitimateDetour(t *testing.T) {
	m := smallMachine(t)
	m.API.Install(winapi.NewPassthroughFileHook("ft-wrapper", winapi.LevelUserCode, "fault-tolerance wrapper"))
	alerts := Scan(m)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	v := Assess(alerts, map[string]bool{"ft-wrapper": true})
	if !v.FalsePositive || v.TruePositive {
		t.Errorf("verdict = %+v, want pure false positive", v)
	}
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("cross-view must not flag a passthrough hook: %+v", r.Hidden)
	}
}
