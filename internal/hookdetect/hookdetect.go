// Package hookdetect implements the paper's "first approach" baseline
// (§1): detect the hiding *mechanism* by scanning for API interceptions
// (VICE [YV04], ApiHookCheck [YK] style) — compare IAT entries, in-memory
// API prologues and Service Dispatch Table entries against known-good
// state and flag deviations.
//
// The paper names its two structural weaknesses, both reproduced here:
//
//   - false positives: legitimate software also installs detours
//     (in-memory patching, fault-tolerance wrappers, AV shims);
//   - false negatives: ghostware that hides without those hooks —
//     filter drivers (standard OS extension points), DKOM, PEB blanking,
//     and pure name tricks — shows no deviation at all.
package hookdetect

import (
	"fmt"
	"sort"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/winapi"
)

// Alert is one detected API interception.
type Alert struct {
	API       winapi.API
	Level     winapi.Level
	Module    string // attribution recovered from the patched code
	Technique string
}

// String renders the alert the way hook checkers print them.
func (a Alert) String() string {
	return fmt.Sprintf("%s intercepted at %s by %s (%s)", a.API, a.Level, a.Module, a.Technique)
}

// Scan inspects the machine's API stack for interceptions at the levels
// a hook checker can audit: IAT entries, user-mode API code, ntdll code
// and the SSDT. Filter drivers and Registry callbacks attach through
// supported OS extension interfaces and are indistinguishable from
// legitimate drivers, so they are NOT flagged — exactly the blind spot
// the paper describes. Techniques that install no hook at all (DKOM,
// name tricks) are invisible by construction.
func Scan(m *machine.Machine) []Alert {
	var out []Alert
	for _, h := range m.API.Hooks() {
		switch h.Level {
		case winapi.LevelIAT, winapi.LevelUserCode, winapi.LevelNtdll, winapi.LevelSSDT:
			out = append(out, Alert{API: h.API, Level: h.Level, Module: h.Owner, Technique: h.Technique})
		default:
			// LevelFilter / LevelNone: structurally legitimate or absent.
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].API < out[j].API
	})
	return out
}

// Verdict classifies a scan outcome against ground truth for the
// comparison benchmarks.
type Verdict struct {
	Alerts        []Alert
	TruePositive  bool // an actual hider was flagged
	FalsePositive bool // a benign hook was flagged
}

// Assess labels each alert using the known benign-owner set.
func Assess(alerts []Alert, benignOwners map[string]bool) Verdict {
	v := Verdict{Alerts: alerts}
	for _, a := range alerts {
		if benignOwners[a.Module] {
			v.FalsePositive = true
		} else {
			v.TruePositive = true
		}
	}
	return v
}
