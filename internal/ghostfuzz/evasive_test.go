package ghostfuzz

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/crosstime"
	"ghostbuster/internal/faultinject"
)

// procFindings counts how many of the names appear as hidden findings
// in the report (IDs end with ": NAME" uppercased).
func procFindings(r *core.Report, names []string) int {
	n := 0
	for _, f := range r.Hidden {
		for _, name := range names {
			if strings.HasSuffix(f.ID, ": "+strings.ToUpper(name)) {
				n++
			}
		}
	}
	return n
}

// TestEvasiveDifferentialOracle is the adaptive-evasion regression: a
// scan-detecting adversary that un-hides when it sees the fixed-order
// sweep's opening file walk must be MISSED by the paper's fixed unit
// order and CAUGHT by both of its counters — randomized scan-unit
// ordering and the cross-time diff.
func TestEvasiveDifferentialOracle(t *testing.T) {
	spec, err := ParseSpec("ghostfuzz-v1 seed=70 atoms=evasive@ssdt/2/all")
	if err != nil {
		t.Fatal(err)
	}

	// Fixed order: files walk first, the watcher trips, and by the time
	// the process pair runs both views agree — a clean miss.
	c, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Expect.Evasive) != 2 {
		t.Fatalf("expected 2 evasive processes, got %v", c.Expect.Evasive)
	}
	naive := core.NewDetector(c.M)
	naive.Advanced = true
	naive.Units = allUnits
	reports, err := naive.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if n := procFindings(reports[2], c.Expect.Evasive); n != 0 {
		t.Errorf("fixed-order sweep caught %d evasive processes; the adversary should have un-hidden in time", n)
	}

	// Counter 1, same machine: the cross-time diff against the
	// pre-infection checkpoint names the payload images no matter what
	// the hooks say at scan time.
	after, err := crosstime.TakeCheckpoint(c.M)
	if err != nil {
		t.Fatal(err)
	}
	diff := crosstime.Compare(c.Baseline, after)
	for _, name := range c.Expect.Evasive {
		if len(diff.PathsMatching(name)) == 0 {
			t.Errorf("cross-time diff missed evasive payload %s", name)
		}
	}

	// Counter 2, fresh machine (the first build's watcher stays tripped
	// for the whole evasion window): a randomized order that draws the
	// process pair before any file walk catches the still-hiding payload.
	c2, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	ordered := core.NewDetector(c2.M)
	ordered.Advanced = true
	ordered.Units = allUnits
	ordered.OrderSeed = evasiveSeed(fullUnitCount)
	reports2, err := ordered.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if n := procFindings(reports2[2], c2.Expect.Evasive); n != len(c2.Expect.Evasive) {
		t.Errorf("randomized order caught %d of %d evasive processes", n, len(c2.Expect.Evasive))
	}

	// The packaged oracle agrees end to end.
	for _, v := range RunCaseEvasive(spec) {
		t.Errorf("RunCaseEvasive: %s", v)
	}
}

// TestEvasiveSeedOrdersProcsFirst pins the seed-picker's contract.
func TestEvasiveSeedOrdersProcsFirst(t *testing.T) {
	seed := evasiveSeed(fullUnitCount)
	procAt, fileAt := -1, -1
	for at, u := range core.ScanOrder(seed, fullUnitCount) {
		switch u {
		case unitProcHigh:
			procAt = at
		case unitFileHigh:
			fileAt = at
		}
	}
	if procAt < 0 || fileAt < 0 || procAt >= fileAt {
		t.Fatalf("evasiveSeed(%d)=%d orders proc high at %d, file high at %d", fullUnitCount, seed, procAt, fileAt)
	}
}

// TestNextGenNaiveMissCounterCatch: each next-generation family must
// evade the configuration that lacks its counter and be caught by the
// sweep that has it — memory-only by the kmem carve pair, the bootkit
// by the boot-chain pair, removable hiding by the raw-stick pair.
func TestNextGenNaiveMissCounterCatch(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		without core.UnitSet // naive sweep: counter disabled
		report  int          // report index of the counter's pair
		planted func(*Case) []string
		match   func(id, want string) bool
	}{
		{
			name:    "memonly",
			spec:    "ghostfuzz-v1 seed=73 atoms=memonly/2/all",
			without: core.UnitBootChain | core.UnitRemovable,
			report:  4,
			planted: func(c *Case) []string { return c.Expect.MemOnly },
			match: func(id, want string) bool {
				return strings.HasSuffix(id, ": "+strings.ToUpper(want))
			},
		},
		{
			name:    "bootkit",
			spec:    "ghostfuzz-v1 seed=76 atoms=bootkit@filter/1/all",
			without: core.UnitCrossMem | core.UnitRemovable,
			report:  5,
			planted: func(c *Case) []string { return c.Expect.Boot },
			match: func(id, want string) bool {
				return strings.HasPrefix(id, want+":")
			},
		},
		{
			name:    "usbhide",
			spec:    "ghostfuzz-v1 seed=79 atoms=usbhide@filter/2/all",
			without: core.UnitCrossMem | core.UnitBootChain,
			report:  6,
			planted: func(c *Case) []string { return c.Expect.USB },
			match:   func(id, want string) bool { return id == want },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			planted := tc.planted(c)
			if len(planted) == 0 {
				t.Fatal("spec planted nothing for this family")
			}

			// Naive sweep: the family's counter unit disabled. Nothing in
			// any report may match the planted artifacts.
			naive := core.NewDetector(c.M)
			naive.Advanced = true
			naive.Units = tc.without
			naiveReports, err := naive.ScanAll()
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range naiveReports {
				for _, f := range r.Hidden {
					for _, want := range planted {
						if tc.match(f.ID, want) {
							t.Errorf("naive sweep (units %b) caught %s in %q", tc.without, want, f.ID)
						}
					}
				}
			}

			// Counter sweep: full units. Every planted artifact surfaces in
			// the counter pair's report.
			full := core.NewDetector(c.M)
			full.Advanced = true
			full.Units = allUnits
			reports, err := full.ScanAll()
			if err != nil {
				t.Fatal(err)
			}
			r := reports[tc.report]
			for _, want := range planted {
				found := false
				for _, f := range r.Hidden {
					if tc.match(f.ID, want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("counter sweep missed %s (report %d hidden: %v)", want, tc.report, r.Hidden)
				}
			}
		})
	}
}

// TestChaosBootRemovableLoudNeverSilent: fault plans over the
// boot-chain and removable readers must always be loud. A contained
// sweep under fire never errors, and a planted boot or removable
// artifact is either reported or its pair is visibly damaged — torn
// media and flipped bits can suppress a finding, but never silently.
func TestChaosBootRemovableLoudNeverSilent(t *testing.T) {
	spec, err := ParseSpec("ghostfuzz-v1 seed=91 atoms=bootkit@filter/1/all;usbhide@ssdt/2/all")
	if err != nil {
		t.Fatal(err)
	}
	plans := [][]faultinject.Fault{
		{{Source: faultinject.SourceDisk, Kind: faultinject.KindErr, After: 1, Count: 1}},
		{{Source: faultinject.SourceDisk, Kind: faultinject.KindErr, After: 1, Count: 4}},
		{{Source: faultinject.SourceRemovable, Kind: faultinject.KindErr, After: 1, Count: 1}},
		{{Source: faultinject.SourceRemovable, Kind: faultinject.KindTorn, After: 1, Count: 1}},
		{{Source: faultinject.SourceRemovable, Kind: faultinject.KindFlip, After: 1, Count: 1}},
		{
			{Source: faultinject.SourceDisk, Kind: faultinject.KindErr, After: 1, Count: 2},
			{Source: faultinject.SourceRemovable, Kind: faultinject.KindErr, After: 1, Count: 1},
		},
	}
	for _, faults := range plans {
		name := faultinject.FormatFaults(faults)
		c, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		inj, err := faultinject.New(c.M, faultinject.Plan{Seed: spec.Seed, Faults: faults})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		inj.Arm()
		d := core.NewDetector(c.M)
		d.Advanced = true
		d.Units = allUnits
		d.Contain = true
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatalf("%s: contained sweep errored: %v", name, err)
		}
		if len(reports) != 7 {
			t.Fatalf("%s: %d reports, want 7", name, len(reports))
		}
		boot, rem := reports[5], reports[6]
		for _, region := range c.Expect.Boot {
			found := false
			for _, f := range boot.Hidden {
				if strings.HasPrefix(f.ID, region+":") {
					found = true
					break
				}
			}
			if !found && !damaged(boot) {
				t.Errorf("%s: boot region %s silently missed (report undamaged)", name, region)
			}
		}
		for _, want := range c.Expect.USB {
			found := false
			for _, f := range rem.Hidden {
				if f.ID == want {
					found = true
					break
				}
			}
			if !found && !damaged(rem) {
				t.Errorf("%s: removable payload %s silently missed (report undamaged)", name, want)
			}
		}
		// No fault fabricates a finding on either pair.
		for _, idx := range []int{5, 6} {
			for _, id := range sortedKeys(unmatchedHidden(c, idx, reports[idx])) {
				t.Errorf("%s: fault-induced false positive in report %d: %s", name, idx, id)
			}
		}
	}
}
