// Package ghostfuzz is a seeded, deterministic property-based adversary
// generator and differential detection oracle for the GhostBuster
// pipeline. It composes random ghostware from the full technique
// lattice (hook levels × resource types, plus the hookless name tricks,
// DKOM, targeting and decoy behaviours), installs each on a randomized
// workload machine, runs every detection configuration — sequential,
// parallel lanes, warm and cold cache, crash dump, WinPE — and asserts
// three invariants: every planted artifact is caught by the mode the
// paper claims catches it, every configuration agrees byte-for-byte,
// and zero innocent artifacts are flagged after noise filtering.
// Failures shrink to a one-line reproducible spec kept as a permanent
// regression corpus.
package ghostfuzz

import (
	"fmt"
	"strconv"
	"strings"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/winapi"
)

// specVersion prefixes every spec line; bump only with a format change.
const specVersion = "ghostfuzz-v1"

// CaseSpec fully determines one fuzz case: the seed picks the machine
// profile (and nothing else — artifact names derive from atom indices),
// the atom list is the composed ghostware. A spec round-trips through
// its one-line String form, which is the corpus format.
type CaseSpec struct {
	Seed  int64
	Atoms []ghostware.Atom
	// Faults, when non-empty, makes this a chaos case: the plan (seeded
	// with Seed) is armed against the machine and the case is judged by
	// the degradation oracle (RunCaseFaulted) instead of the differential
	// one.
	Faults []faultinject.Fault
}

var levelTokens = map[winapi.Level]string{
	winapi.LevelNone:     "none",
	winapi.LevelIAT:      "iat",
	winapi.LevelUserCode: "user",
	winapi.LevelNtdll:    "ntdll",
	winapi.LevelSSDT:     "ssdt",
	winapi.LevelFilter:   "filter",
}

var kindTokens = map[string]ghostware.AtomKind{
	"file": ghostware.AtomFileHide, "win32": ghostware.AtomWin32Name,
	"ads": ghostware.AtomADS, "reg": ghostware.AtomRegHide,
	"regnul": ghostware.AtomRegNul, "proc": ghostware.AtomProcHide,
	"dkom": ghostware.AtomProcDKOM, "mod": ghostware.AtomModHide,
	"decoy": ghostware.AtomDecoy, "evasive": ghostware.AtomEvasive,
	"memonly": ghostware.AtomMemOnly, "bootkit": ghostware.AtomBootkit,
	"usbhide": ghostware.AtomUSBHide,
}

// String renders the one-line corpus form:
//
//	ghostfuzz-v1 seed=7 atoms=file@ssdt/2/all;ads/1/all;decoy@filter/120/utils
//	ghostfuzz-v1 seed=9 atoms=reg@ntdll/2/all faults=hive:torn@1;api:err@3x2
//
// Hooked atoms carry "@level"; every atom carries "/count/scope" with
// scope one of all, utils, except=<name>. Chaos cases append a fourth
// "faults=" field in the faultinject plan grammar.
func (s CaseSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d atoms=", specVersion, s.Seed)
	for i, a := range s.Atoms {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(a.Kind.String())
		if a.Kind.Hooked() {
			b.WriteByte('@')
			b.WriteString(levelTokens[a.Level])
		}
		count := a.Count
		if count <= 0 {
			count = 1
		}
		fmt.Fprintf(&b, "/%d/%s", count, scopeToken(a))
	}
	if len(s.Faults) > 0 {
		b.WriteString(" faults=")
		b.WriteString(faultinject.FormatFaults(s.Faults))
	}
	return b.String()
}

func scopeToken(a ghostware.Atom) string {
	switch a.Scope {
	case ghostware.ScopeUtilities:
		return "utils"
	case ghostware.ScopeExcept:
		return "except=" + a.ExemptName
	default:
		return "all"
	}
}

// ParseSpec parses a one-line spec back into a CaseSpec. It is the
// inverse of String and rejects anything it would not itself emit.
func ParseSpec(line string) (CaseSpec, error) {
	var s CaseSpec
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 3 || len(fields) > 4 || fields[0] != specVersion {
		return s, fmt.Errorf("ghostfuzz: spec must be %q seed=N atoms=... [faults=...]: %q", specVersion, line)
	}
	seedStr, ok := strings.CutPrefix(fields[1], "seed=")
	if !ok {
		return s, fmt.Errorf("ghostfuzz: missing seed= in %q", line)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return s, fmt.Errorf("ghostfuzz: bad seed %q: %w", seedStr, err)
	}
	s.Seed = seed
	atomsStr, ok := strings.CutPrefix(fields[2], "atoms=")
	if !ok {
		return s, fmt.Errorf("ghostfuzz: missing atoms= in %q", line)
	}
	for _, tok := range strings.Split(atomsStr, ";") {
		a, err := parseAtom(tok)
		if err != nil {
			return s, err
		}
		s.Atoms = append(s.Atoms, a)
	}
	if len(s.Atoms) == 0 {
		return s, fmt.Errorf("ghostfuzz: spec has no atoms: %q", line)
	}
	if len(fields) == 4 {
		faultsStr, ok := strings.CutPrefix(fields[3], "faults=")
		if !ok || faultsStr == "" {
			return s, fmt.Errorf("ghostfuzz: fourth field must be faults=... in %q", line)
		}
		faults, err := faultinject.ParseFaults(faultsStr)
		if err != nil {
			return s, err
		}
		s.Faults = faults
	}
	return s, nil
}

// hasEvasive reports whether the atom list contains the adaptive-evasion
// kind, which routes the spec to the order-sensitive evasive oracle.
func hasEvasive(atoms []ghostware.Atom) bool {
	for _, a := range atoms {
		if a.Kind == ghostware.AtomEvasive {
			return true
		}
	}
	return false
}

func parseAtom(tok string) (ghostware.Atom, error) {
	var a ghostware.Atom
	parts := strings.Split(tok, "/")
	if len(parts) != 3 {
		return a, fmt.Errorf("ghostfuzz: atom %q: want kind[@level]/count/scope", tok)
	}
	kindTok, levelTok, hasLevel := parts[0], "", false
	if i := strings.IndexByte(parts[0], '@'); i >= 0 {
		kindTok, levelTok, hasLevel = parts[0][:i], parts[0][i+1:], true
	}
	kind, ok := kindTokens[kindTok]
	if !ok {
		return a, fmt.Errorf("ghostfuzz: unknown atom kind %q", kindTok)
	}
	a.Kind = kind
	if hasLevel {
		if !kind.Hooked() {
			return a, fmt.Errorf("ghostfuzz: hookless atom %q cannot take a level", tok)
		}
		found := false
		for lvl, name := range levelTokens {
			if name == levelTok {
				a.Level, found = lvl, true
				break
			}
		}
		if !found {
			return a, fmt.Errorf("ghostfuzz: unknown hook level %q", levelTok)
		}
	} else if kind.Hooked() {
		return a, fmt.Errorf("ghostfuzz: hooked atom %q needs @level", tok)
	}
	count, err := strconv.Atoi(parts[1])
	if err != nil || count < 1 {
		return a, fmt.Errorf("ghostfuzz: atom %q: bad count %q", tok, parts[1])
	}
	a.Count = count
	switch {
	case parts[2] == "all":
		a.Scope = ghostware.ScopeAll
	case parts[2] == "utils":
		a.Scope = ghostware.ScopeUtilities
	case strings.HasPrefix(parts[2], "except="):
		a.Scope = ghostware.ScopeExcept
		a.ExemptName = strings.TrimPrefix(parts[2], "except=")
		if a.ExemptName == "" {
			return a, fmt.Errorf("ghostfuzz: atom %q: empty except name", tok)
		}
	default:
		return a, fmt.Errorf("ghostfuzz: atom %q: unknown scope %q", tok, parts[2])
	}
	if a.Scope != ghostware.ScopeAll && !kind.Hooked() {
		return a, fmt.Errorf("ghostfuzz: hookless atom %q cannot be scoped", tok)
	}
	return a, nil
}
