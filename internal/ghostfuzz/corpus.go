package ghostfuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The corpus directory holds one file per shrunk failure, each a single
// spec line (plus optional "#" comment lines). go test replays every
// entry forever; a fixed bug stays fixed.

// specFileName derives a stable corpus filename from the spec line
// (FNV-1a), so re-finding the same minimized failure is idempotent.
func specFileName(line string) string {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(line); i++ {
		h ^= uint32(line[i])
		h *= prime32
	}
	return fmt.Sprintf("%08x.spec", h)
}

// WriteSpec records a shrunk failing spec in the corpus directory,
// annotated with the violation it reproduces. Returns the file path.
func WriteSpec(dir string, spec CaseSpec, v Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("ghostfuzz: corpus dir: %w", err)
	}
	line := spec.String()
	path := filepath.Join(dir, specFileName(line))
	content := fmt.Sprintf("# %s\n%s\n", v, line)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return "", fmt.Errorf("ghostfuzz: writing corpus spec: %w", err)
	}
	return path, nil
}

// LoadCorpus reads every *.spec file under dir (sorted by name, for a
// stable replay order). A missing directory is an empty corpus.
func LoadCorpus(dir string) ([]CaseSpec, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ghostfuzz: reading corpus: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".spec") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var specs []CaseSpec
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			spec, err := ParseSpec(line)
			if err != nil {
				return nil, fmt.Errorf("ghostfuzz: corpus %s: %w", name, err)
			}
			specs = append(specs, spec)
		}
	}
	return specs, nil
}
