package ghostfuzz

import (
	"math/rand"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/winapi"
)

// CaseSeed derives the seed for case index i of a run from the run's
// base seed (splitmix64-style mixing, so adjacent indices land far
// apart in seed space).
func CaseSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

var hookLevels = []winapi.Level{
	winapi.LevelIAT, winapi.LevelUserCode, winapi.LevelNtdll,
	winapi.LevelSSDT, winapi.LevelFilter,
}

// atomKinds is the random-composition lattice. AtomEvasive is
// deliberately absent: evasive specs need the order-sensitive
// sequential oracle (RunCaseEvasive) and enter only via the corpus.
var atomKinds = []ghostware.AtomKind{
	ghostware.AtomFileHide, ghostware.AtomWin32Name, ghostware.AtomADS,
	ghostware.AtomRegHide, ghostware.AtomRegNul, ghostware.AtomProcHide,
	ghostware.AtomProcDKOM, ghostware.AtomModHide, ghostware.AtomDecoy,
	ghostware.AtomMemOnly, ghostware.AtomBootkit, ghostware.AtomUSBHide,
}

// Generate composes a random adversary for the given case seed: 1–4
// atoms drawn from the full technique lattice, hooked atoms at a random
// interception level and occasionally §5-scoped, the decoy atom with a
// count that sometimes crosses the mass-hiding threshold. The result is
// a pure function of seed.
func Generate(seed int64) CaseSpec {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(4)
	spec := CaseSpec{Seed: seed}
	for i := 0; i < n; i++ {
		kind := atomKinds[rng.Intn(len(atomKinds))]
		a := ghostware.Atom{Kind: kind}
		switch kind {
		case ghostware.AtomFileHide, ghostware.AtomWin32Name:
			a.Count = 1 + rng.Intn(3)
		case ghostware.AtomADS, ghostware.AtomRegNul, ghostware.AtomModHide:
			a.Count = 1 + rng.Intn(2)
		case ghostware.AtomRegHide:
			a.Count = 1 + rng.Intn(4)
		case ghostware.AtomProcHide:
			a.Count = 1 + rng.Intn(2)
		case ghostware.AtomProcDKOM:
			a.Count = 1
		case ghostware.AtomMemOnly:
			a.Count = 1 + rng.Intn(2)
		case ghostware.AtomBootkit:
			a.Count = 1
		case ghostware.AtomUSBHide:
			a.Count = 1 + rng.Intn(3)
		case ghostware.AtomDecoy:
			// 5–124 innocents: above ~95 the atom alone (innocents + dir
			// + payload) crosses the default mass-hiding threshold, so
			// both sides of that anomaly check get exercised.
			a.Count = 5 + rng.Intn(120)
		}
		if kind.Hooked() {
			a.Level = hookLevels[rng.Intn(len(hookLevels))]
			switch rng.Intn(10) {
			case 0:
				a.Scope = ghostware.ScopeUtilities
			case 1:
				a.Scope = ghostware.ScopeExcept
				a.ExemptName = "inocit.exe"
			}
		}
		spec.Atoms = append(spec.Atoms, a)
	}
	return spec
}

// faultMenu spans the allowed source/kind matrix. maxAfter scales the
// access offset to each source's traffic in one inside sweep: the raw
// disk is read once, hives a few times, kernel memory and the API chain
// hundreds of times.
var faultMenu = []struct {
	src      faultinject.Source
	kind     faultinject.Kind
	maxAfter int
}{
	{faultinject.SourceDisk, faultinject.KindErr, 2},
	{faultinject.SourceDisk, faultinject.KindTorn, 2},
	{faultinject.SourceDisk, faultinject.KindFlip, 2},
	{faultinject.SourceDisk, faultinject.KindMut, 2},
	{faultinject.SourceHive, faultinject.KindErr, 4},
	{faultinject.SourceHive, faultinject.KindTorn, 4},
	{faultinject.SourceHive, faultinject.KindFlip, 4},
	{faultinject.SourceKmem, faultinject.KindErr, 300},
	{faultinject.SourceKmem, faultinject.KindTorn, 300},
	{faultinject.SourceKmem, faultinject.KindFlip, 300},
	{faultinject.SourceAPI, faultinject.KindErr, 40},
	{faultinject.SourceAPI, faultinject.KindLag, 40},
	{faultinject.SourceRemovable, faultinject.KindErr, 2},
	{faultinject.SourceRemovable, faultinject.KindTorn, 2},
	{faultinject.SourceRemovable, faultinject.KindFlip, 2},
}

// GenerateFaulted composes the same adversary Generate would for this
// seed and layers a seeded fault plan (1–3 faults across the allowed
// matrix) on top, so a chaos case differs from its clean twin only by
// the plan. Pure function of seed.
func GenerateFaulted(seed int64) CaseSpec {
	spec := Generate(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5fa17))
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		pick := faultMenu[rng.Intn(len(faultMenu))]
		spec.Faults = append(spec.Faults, faultinject.Fault{
			Source: pick.src,
			Kind:   pick.kind,
			After:  1 + rng.Intn(pick.maxAfter),
			Count:  1 + rng.Intn(2),
		})
	}
	return spec
}
