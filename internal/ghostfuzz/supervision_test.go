package ghostfuzz

import "testing"

// TestSupervisionChaos is the self-healing property suite: for each
// seed, a sharded real-machine sweep is wedged (a disk:lag stall gate
// that blocks in wall-clock time), crashed after the wedge, straggled,
// and fault-retried under jitter — and every healed run must reproduce
// the uninterrupted run's merged digest with all verification layers
// passing.
func TestSupervisionChaos(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	variants := 0
	for i := 0; i < seeds; i++ {
		seed := CaseSeed(131, i)
		s, err := RunSupervisionChaos(seed, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		variants += s.Variants
		for _, v := range s.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
	if want := seeds * 5; variants != want {
		t.Errorf("supervision suite ran %d variants, want %d", variants, want)
	}
}
