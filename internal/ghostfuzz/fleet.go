package ghostfuzz

import (
	"fmt"

	"ghostbuster/internal/fleet"
)

// FleetOptions configures a fleet-mode fuzz: one generated adversary
// per host, swept through fleet.Manager's bounded scheduler.
type FleetOptions struct {
	Seed  int64
	Hosts int
	// Parallelism is the manager's worker-pool width; zero keeps the
	// scheduler default (GOMAXPROCS).
	Parallelism int
	// HostParallelism fans each host's eight scan units across lanes.
	HostParallelism int
	Breaker         *Breaker
}

// FleetSummary is the fleet fuzz outcome. Deterministic: per-host
// expected/actual hidden counts, no wall-clock times.
type FleetSummary struct {
	Seed       int64       `json:"seed"`
	Hosts      int         `json:"hosts"`
	Violations []Violation `json:"violations,omitempty"`
}

// fleetSeedBase offsets fleet host seeds away from single-case seeds so
// `-seed 1 -n 200` and `-seed 1 -fleet 8` never build the same machine.
const fleetSeedBase = 1 << 20

// RunFleet builds Hosts infected machines, enrolls them in a
// fleet.Manager, and runs a parallel inside sweep. Per-host panics are
// captured by the manager's scheduler and surface as errors, which the
// oracle turns into violations. Each host must come back infected with
// exactly the planted hidden count.
func RunFleet(opts FleetOptions) (*FleetSummary, error) {
	s := &FleetSummary{Seed: opts.Seed, Hosts: opts.Hosts}
	mgr := fleet.NewManager()
	mgr.Parallelism = opts.Parallelism
	mgr.HostParallelism = opts.HostParallelism
	expected := map[string]int{}
	for i := 0; i < opts.Hosts; i++ {
		spec := Generate(CaseSeed(opts.Seed, fleetSeedBase+i))
		c, err := Build(spec)
		host := fmt.Sprintf("fuzz-%03d", i)
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvError, "fleet/" + host, err.Error()})
			continue
		}
		mgr.Add(host, c.M)
		expected[host] = c.Expect.HiddenTotal()
	}
	for _, res := range mgr.ParallelInsideSweep() {
		mode := "fleet/" + res.Host
		if res.Err != "" {
			s.Violations = append(s.Violations, Violation{InvError, mode, res.Err})
			continue
		}
		reports := res.Reports
		if opts.Breaker != nil {
			reports = opts.Breaker.apply(mode, reports)
		}
		hidden := 0
		for _, r := range reports {
			hidden += len(r.Hidden)
		}
		want := expected[res.Host]
		if hidden != want {
			inv := InvCoverage
			if hidden > want {
				inv = InvInnocent
			}
			s.Violations = append(s.Violations, Violation{inv, mode,
				fmt.Sprintf("%d hidden findings, planted %d", hidden, want)})
		}
		if !res.Infected && want > 0 {
			s.Violations = append(s.Violations, Violation{InvCoverage, mode, "host not reported infected"})
		}
	}
	return s, nil
}
