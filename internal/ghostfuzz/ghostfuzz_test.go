package ghostfuzz

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/winapi"
)

func TestSpecRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		spec := Generate(CaseSeed(3, i))
		line := spec.String()
		back, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", spec, back)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"ghostfuzz-v0 seed=1 atoms=ads/1/all",
		"ghostfuzz-v1 atoms=ads/1/all",
		"ghostfuzz-v1 seed=x atoms=ads/1/all",
		"ghostfuzz-v1 seed=1 atoms=",
		"ghostfuzz-v1 seed=1 atoms=nosuch/1/all",
		"ghostfuzz-v1 seed=1 atoms=file/1/all",        // hooked kind without level
		"ghostfuzz-v1 seed=1 atoms=ads@ssdt/1/all",    // hookless kind with level
		"ghostfuzz-v1 seed=1 atoms=ads/0/all",         // zero count
		"ghostfuzz-v1 seed=1 atoms=ads/1/utils",       // hookless kind scoped
		"ghostfuzz-v1 seed=1 atoms=file@ssdt/1/weird", // unknown scope
	} {
		if _, err := ParseSpec(line); err == nil {
			t.Errorf("ParseSpec accepted %q", line)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		seed := CaseSeed(7, i)
		if a, b := Generate(seed), Generate(seed); !reflect.DeepEqual(a, b) {
			t.Fatalf("Generate(%d) differs across calls", seed)
		}
	}
}

// TestSmallBatchClean: generated adversaries must all be caught cleanly
// — every invariant, every mode. The CI smoke run covers a larger batch
// through cmd/ghostfuzz.
func TestSmallBatchClean(t *testing.T) {
	summary, err := Run(Options{Seed: 1, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Cases != 8 {
		t.Errorf("cases = %d, want 8", summary.Cases)
	}
	for _, f := range summary.Failures {
		t.Errorf("spec %s: %v", f.Spec, f.Violations)
	}
}

// TestSummaryJSONDeterministic: same seed, same N, byte-identical JSON.
func TestSummaryJSONDeterministic(t *testing.T) {
	marshal := func() []byte {
		s, err := Run(Options{Seed: 2, N: 4})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), string(marshal())
	if string(a) != b {
		t.Errorf("summary JSON differs across runs:\n%s\n%s", a, b)
	}
}

// The technique-lattice pillars, replayed directly: one spec per hiding
// family, all caught.
func TestLatticePillars(t *testing.T) {
	for _, line := range []string{
		"ghostfuzz-v1 seed=21 atoms=file@iat/1/all",
		"ghostfuzz-v1 seed=22 atoms=file@ssdt/1/all",
		"ghostfuzz-v1 seed=23 atoms=file@filter/1/utils",
		"ghostfuzz-v1 seed=24 atoms=win32/2/all",
		"ghostfuzz-v1 seed=25 atoms=ads/2/all",
		"ghostfuzz-v1 seed=26 atoms=reg@ntdll/2/all",
		"ghostfuzz-v1 seed=27 atoms=regnul/2/all",
		"ghostfuzz-v1 seed=28 atoms=proc@user/1/all",
		"ghostfuzz-v1 seed=29 atoms=dkom/1/all",
		"ghostfuzz-v1 seed=30 atoms=mod@ssdt/1/all",
		"ghostfuzz-v1 seed=31 atoms=decoy@ssdt/110/all",
	} {
		violations, err := Replay(line, nil)
		if err != nil {
			t.Fatalf("%s: %v", line, err)
		}
		for _, v := range violations {
			t.Errorf("%s: %s", line, v)
		}
	}
}

// TestBrokenDetectorShrinksToMinimalSpec is the acceptance path: a
// deliberately broken detector (drops every ADS finding in every mode)
// must fail, shrink to a spec of at most 3 techniques, write a corpus
// entry, and replay to the same failure.
func TestBrokenDetectorShrinksToMinimalSpec(t *testing.T) {
	broken := &Breaker{DropHidden: func(mode string, f core.Finding) bool {
		// An ADS finding ID is PATH:STREAM — a colon beyond the drive's.
		return f.Kind == core.KindFiles && strings.Contains(f.ID[2:], ":")
	}}
	spec := CaseSpec{Seed: 41, Atoms: []ghostware.Atom{
		{Kind: ghostware.AtomFileHide, Level: winapi.LevelSSDT, Count: 2},
		{Kind: ghostware.AtomADS, Count: 2},
		{Kind: ghostware.AtomRegNul, Count: 1},
		{Kind: ghostware.AtomProcHide, Level: winapi.LevelIAT, Count: 1},
	}}
	violations := runSpec(spec, broken)
	if len(violations) == 0 {
		t.Fatal("broken detector produced no violations")
	}
	target := violations[0]
	if target.Invariant != InvCoverage {
		t.Fatalf("first violation = %s, want coverage", target)
	}

	shrunk := Shrink(spec, target, broken)
	if len(shrunk.Atoms) > 3 {
		t.Errorf("shrunk to %d techniques, want <= 3: %s", len(shrunk.Atoms), shrunk)
	}
	if len(shrunk.Atoms) != 1 || shrunk.Atoms[0].Kind != ghostware.AtomADS || shrunk.Atoms[0].Count != 1 {
		t.Errorf("expected minimal spec of one 1-artifact ads atom, got %s", shrunk)
	}

	// The shrunk spec must replay to the same invariant+mode failure.
	replayed, err := Replay(shrunk.String(), broken)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range replayed {
		if sameFailure(v, target) {
			found = true
		}
	}
	if !found {
		t.Errorf("shrunk spec %s does not reproduce %s (got %v)", shrunk, target, replayed)
	}

	// And the run harness records it in the corpus.
	dir := t.TempDir()
	path, err := WriteSpec(dir, shrunk, target)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || !reflect.DeepEqual(specs[0], shrunk) {
		t.Errorf("corpus round trip: wrote %s to %s, loaded %v", shrunk, path, specs)
	}

	// Without the breaker the same spec passes: the corpus entry guards
	// the fix, it does not encode a permanent failure.
	clean, err := Replay(shrunk.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Errorf("shrunk spec fails even with a healthy detector: %v", clean)
	}
}

// TestBreakerConsistencySabotage: a breaker that sabotages only one
// parallel mode must trip the consistency invariant, not coverage.
func TestBreakerConsistencySabotage(t *testing.T) {
	broken := &Breaker{DropHidden: func(mode string, f core.Finding) bool {
		return mode == "inside-par8"
	}}
	violations := runSpec(CaseSpec{Seed: 42, Atoms: []ghostware.Atom{
		{Kind: ghostware.AtomFileHide, Level: winapi.LevelNtdll, Count: 1},
	}}, broken)
	found := false
	for _, v := range violations {
		if v.Invariant == InvConsistency && v.Mode == "inside-par8" {
			found = true
		} else {
			t.Errorf("unexpected violation %s", v)
		}
	}
	if !found {
		t.Error("single-mode sabotage did not trip the consistency invariant")
	}
}

// TestCorpusReplay replays the repository's permanent regression
// corpus; every shrunk repro ever recorded must stay green.
func TestCorpusReplay(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "ghostfuzz", "corpus")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("corpus dir missing: %v", err)
	}
	specs, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("corpus is empty; expected the seeded specs")
	}
	failures, err := ReplayAll(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for spec, vs := range failures {
		t.Errorf("corpus spec %s regressed: %v", spec, vs)
	}
}

func TestFleetFuzz(t *testing.T) {
	summary, err := RunFleet(FleetOptions{Seed: 5, Hosts: 4, Parallelism: 2, HostParallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Hosts != 4 {
		t.Errorf("hosts = %d, want 4", summary.Hosts)
	}
	for _, v := range summary.Violations {
		t.Errorf("fleet violation: %s", v)
	}
}

// TestBudgetTruncates: an absurdly small budget stops the run early and
// marks it truncated rather than failing.
func TestBudgetTruncates(t *testing.T) {
	s, err := Run(Options{Seed: 1, N: 1 << 20, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Truncated {
		t.Error("1ns budget did not truncate the run")
	}
	if s.Cases >= 1<<20 {
		t.Error("budget did not bound the case count")
	}
}
