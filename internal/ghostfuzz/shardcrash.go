package ghostfuzz

import (
	"fmt"
	"os"
	"path/filepath"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/fleetshard"
	"ghostbuster/internal/journal"
	"ghostbuster/internal/machine"
)

// The sharded crash-resume oracle: the fleet-of-fleets version of
// RunCrashResume. A coordinator sweeps a generated fleet across N
// journaled shards to completion as the reference, then each variant
// destroys K of the N shard journals (and optionally wounds a
// survivor), resumes on a freshly rebuilt coordinator, and demands the
// merged (topology-independent) digest equal the uninterrupted run's —
// lost hosts re-hashed across survivors, committed work never
// re-scanned, damage never accepted silently.

// shardCrashSeedBase offsets sharded-crash host seeds away from every
// other ghostfuzz seed space.
const shardCrashSeedBase = 1 << 22

// shardCrashHostsPerShard sizes the fleet so every shard owns a few
// hosts: losing one shard leaves committed, adopted, and replayed
// hosts all in play.
const shardCrashHostsPerShard = 3

// shardCrashSource lazily builds the generated fleet; deterministic per
// (seed, index) so every resume's rebuilt hosts hash identically.
type shardCrashSource struct {
	seed int64
	n    int
}

func (s shardCrashSource) Len() int { return s.n }

func (s shardCrashSource) Name(i int) string { return fmt.Sprintf("crash-%03d", i) }

func (s shardCrashSource) Build(i int) (*machine.Machine, error) {
	c, err := Build(Generate(CaseSeed(s.seed, shardCrashSeedBase+i)))
	if err != nil {
		return nil, err
	}
	return c.M, nil
}

// shardCrashVariant is one way to wreck the shard journal set.
type shardCrashVariant struct {
	name string
	// kill lists shard ids whose journals the crash destroyed.
	kill []int
	// torn additionally tears the last record off the busiest surviving
	// journal — that shard died mid-commit.
	torn bool
	// flip corrupts a committed record inside the busiest surviving
	// journal; the resume must surface the damage, never absorb it.
	flip bool
}

func shardCrashVariants(shards int) []shardCrashVariant {
	half := make([]int, 0, shards/2)
	for s := 0; s < shards/2; s++ {
		half = append(half, s)
	}
	all := make([]int, shards)
	for s := range all {
		all[s] = s
	}
	return []shardCrashVariant{
		{name: "lose-one", kill: []int{shards - 1}},
		{name: "lose-half", kill: half},
		{name: "lose-all", kill: all},
		{name: "lose-one+torn", kill: []int{shards - 1}, torn: true},
		{name: "flip-survivor", flip: true},
	}
}

// busiestJournal returns the surviving shard journal with the most
// records — torn/flip damage must land on a journal that actually
// committed work, or the variant degenerates (a host-poor shard's
// journal can be header-only).
func busiestJournal(dir string, shards int, killed map[string]bool) (string, int, error) {
	best, bestRecs := "", 0
	for s := 0; s < shards; s++ {
		name := shardJournalName(s)
		if killed[name] {
			continue
		}
		recs, _, err := journal.Read(filepath.Join(dir, name))
		if err != nil {
			return "", 0, err
		}
		if len(recs) > bestRecs {
			best, bestRecs = filepath.Join(dir, name), len(recs)
		}
	}
	if bestRecs < 3 {
		return "", 0, fmt.Errorf("ghostfuzz: no surviving shard journal has committed records to damage")
	}
	return best, bestRecs, nil
}

// RunShardCrashResume runs the sharded crash-resume oracle for one
// seed. Journals live under private temp directories, removed before
// return; the summary is deterministic for a given (seed, shards).
func RunShardCrashResume(seed int64, shards int) (*CrashSummary, error) {
	if shards < 2 {
		return nil, fmt.Errorf("ghostfuzz: sharded crash-resume needs at least 2 shards (got %d)", shards)
	}
	s := &CrashSummary{Seed: seed}
	dir, err := os.MkdirTemp("", "ghostfuzz-shardcrash-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	src := shardCrashSource{seed: seed, n: shards * shardCrashHostsPerShard}
	cfg := fleetshard.Config{Shards: shards}

	// Expected infections, computed from the generators' own ledgers.
	expected := map[string]int{}
	for i := 0; i < src.n; i++ {
		c, err := Build(Generate(CaseSeed(seed, shardCrashSeedBase+i)))
		if err != nil {
			return nil, err
		}
		expected[src.Name(i)] = c.Expect.HiddenTotal()
	}

	refDir := filepath.Join(dir, "reference")
	refCfg := cfg
	refCfg.JournalDir = refDir
	infected := map[string]bool{}
	refCfg.OnResult = func(shard int, res fleet.HostResult) {
		if res.Infected {
			infected[res.Host] = true
		}
	}
	refCoord, err := fleetshard.New(refCfg, src)
	if err != nil {
		return nil, err
	}
	ref, err := refCoord.Sweep()
	if err != nil {
		return nil, fmt.Errorf("ghostfuzz: reference sharded sweep: %w", err)
	}
	if err := ref.Verify(); err != nil {
		s.Violations = append(s.Violations, Violation{InvDurability, "shardcrash/reference", err.Error()})
		return s, nil
	}
	for host, want := range expected {
		if want > 0 && !infected[host] {
			s.Violations = append(s.Violations, Violation{InvCoverage, "shardcrash/reference",
				fmt.Sprintf("host %s not reported infected (planted %d)", host, want)})
		}
	}

	refFiles, err := os.ReadDir(refDir)
	if err != nil {
		return nil, err
	}

	for _, v := range shardCrashVariants(shards) {
		s.Variants++
		mode := "shardcrash/" + v.name
		vdir := filepath.Join(dir, v.name)
		if err := os.MkdirAll(vdir, 0o755); err != nil {
			return nil, err
		}
		killed := map[string]bool{}
		for _, k := range v.kill {
			killed[shardJournalName(k)] = true
		}
		for _, f := range refFiles {
			if killed[f.Name()] {
				continue
			}
			data, err := os.ReadFile(filepath.Join(refDir, f.Name()))
			if err != nil {
				return nil, err
			}
			if err := os.WriteFile(filepath.Join(vdir, f.Name()), data, 0o644); err != nil {
				return nil, err
			}
		}
		if v.torn {
			path, recs, err := busiestJournal(vdir, shards, killed)
			if err != nil {
				return nil, err
			}
			if _, err := journal.TruncateRecords(path, recs-1, true); err != nil {
				return nil, err
			}
		}
		if v.flip {
			path, _, err := busiestJournal(vdir, shards, killed)
			if err != nil {
				return nil, err
			}
			if err := journal.Corrupt(path, faultinject.KindFlip, seed); err != nil {
				return nil, err
			}
		}

		vcfg := cfg
		vcfg.JournalDir = vdir
		coord, err := fleetshard.New(vcfg, src)
		if err != nil {
			return nil, err
		}
		rep, err := coord.Resume()
		if v.flip {
			// The damaged survivor must fail its sweep, not resume
			// quietly: either the resume itself errors or the shard is
			// reported failed with its hosts left unscanned.
			if err == nil && !anyShardErr(rep) && rep.NotScanned == 0 {
				s.Violations = append(s.Violations, Violation{InvDurability, mode,
					"bit-flipped shard journal resumed without any reported damage"})
			}
			continue
		}
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode,
				fmt.Sprintf("resume failed: %v", err)})
			continue
		}
		s.Violations = append(s.Violations, checkShardResumed(mode, ref, rep, vdir, len(v.kill), shards)...)
	}
	return s, nil
}

// checkShardResumed compares a resumed fleet-of-fleets report against
// the uninterrupted reference and deep-audits the final journal set.
func checkShardResumed(mode string, ref, resumed *fleetshard.Report, dir string, lost, shards int) []Violation {
	var out []Violation
	if err := resumed.Verify(); err != nil {
		out = append(out, Violation{InvDurability, mode, "resumed report: " + err.Error()})
	}
	if resumed.Scanned != ref.Scanned {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("%d hosts scanned after resume, reference scanned %d", resumed.Scanned, ref.Scanned)})
	}
	if resumed.MergedDigest != ref.MergedDigest {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("merged digest %.12s != reference %.12s", resumed.MergedDigest, ref.MergedDigest)})
	}
	if resumed.Infected != ref.Infected || resumed.HiddenTotal != ref.HiddenTotal {
		out = append(out, Violation{InvConsistency, mode,
			fmt.Sprintf("verdicts diverged: %d infected/%d hidden vs reference %d/%d",
				resumed.Infected, resumed.HiddenTotal, ref.Infected, ref.HiddenTotal)})
	}
	if lost < shards && resumed.Replayed == 0 {
		out = append(out, Violation{InvDurability, mode,
			"surviving shards replayed nothing — committed work was re-scanned or lost"})
	}
	if lost > 0 && lost < shards && len(resumed.LostShards) != lost {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("report names %d lost shards, crash destroyed %d", len(resumed.LostShards), lost)})
	}
	// The deep audit re-verifies every committed result down the chain
	// and rejects any host committed in two journals.
	if err := resumed.VerifyJournals(dir); err != nil {
		out = append(out, Violation{InvDurability, mode, "journal audit: " + err.Error()})
	}
	return out
}

// shardJournalName mirrors the coordinator's journal naming so the
// oracle can destroy specific shards' journals.
func shardJournalName(shard int) string {
	return fmt.Sprintf("shard-%03d.gbj", shard)
}

func anyShardErr(rep *fleetshard.Report) bool {
	for _, sr := range rep.ShardResults {
		if sr.Err != "" {
			return true
		}
	}
	return false
}
