package ghostfuzz

import (
	"ghostbuster/internal/core"
	"ghostbuster/internal/crosstime"
)

// The evasive oracle is order-sensitive, so it names units by their
// fixed sweep positions: unit 2i is pair i's high scan, and a full
// sweep with every next-gen unit enabled runs seven pairs.
const (
	unitFileHigh  = 0
	unitProcHigh  = 4
	fullUnitCount = 14
)

// evasiveSeed returns the smallest positive order seed whose
// permutation draws the process high scan before the file high walk —
// the order that beats a scan-detecting adversary. A pure function of
// the unit count, so every run picks the same seed.
func evasiveSeed(n int) int64 {
	for seed := int64(1); ; seed++ {
		procAt, fileAt := 0, 0
		for at, u := range core.ScanOrder(seed, n) {
			switch u {
			case unitProcHigh:
				procAt = at
			case unitFileHigh:
				fileAt = at
			}
		}
		if procAt < fileAt {
			return seed
		}
	}
}

// RunCaseEvasive is the differential oracle for adaptive-evasion
// specs. The adversary watches for file enumeration of the system
// drive's root — the tell of a sweep starting in the paper's fixed
// order — and un-hides its processes for an evasion window, so both
// views of the process pair agree and the cross-view diff is clean.
// Three sequential configurations pin the family's contract:
//
//  1. evasive-naive: the fixed-order sweep must MISS — checkInside's
//     innocence rule doubles as the assertion, since any evasive
//     finding would be flagged (Expect.Procs excludes those names);
//  2. evasive-crosstime: a cross-time diff against the case's
//     pre-infection checkpoint must name every payload image, whatever
//     the hooks say at scan time;
//  3. evasive-ordered: on a fresh machine (the first build's watcher
//     stays tripped for the whole evasion window), a randomized order
//     that draws the process pair before any file walk must catch the
//     still-hiding payload like any other hidden process.
//
// Parallel lanes run the file walk and the process pair concurrently,
// racing the watcher in host time, so the evasive oracle is
// sequential-only; clean and chaos specs keep lane coverage.
func RunCaseEvasive(spec CaseSpec) []Violation {
	var out []Violation

	c, err := Build(spec)
	if err != nil {
		return []Violation{{InvError, "evasive-naive", "build: " + err.Error()}}
	}
	d := core.NewDetector(c.M)
	d.Advanced = true
	d.Units = allUnits
	if reports, err := d.ScanAll(); err != nil {
		out = append(out, Violation{InvError, "evasive-naive", err.Error()})
	} else {
		out = append(out, checkInside(c, "evasive-naive", reports)...)
	}

	if c.Baseline == nil {
		out = append(out, Violation{InvError, "evasive-crosstime", "no pre-infection baseline checkpoint"})
	} else if after, err := crosstime.TakeCheckpoint(c.M); err != nil {
		out = append(out, Violation{InvError, "evasive-crosstime", err.Error()})
	} else {
		diff := crosstime.Compare(c.Baseline, after)
		for _, name := range c.Expect.Evasive {
			if len(diff.PathsMatching(name)) == 0 {
				out = append(out, Violation{InvCoverage, "evasive-crosstime", "cross-time diff missed evasive payload: " + name})
			}
		}
	}

	c2, err := Build(spec)
	if err != nil {
		out = append(out, Violation{InvError, "evasive-ordered", "build: " + err.Error()})
		return out
	}
	c2.Expect.Procs = append(c2.Expect.Procs, c2.Expect.Evasive...)
	d2 := core.NewDetector(c2.M)
	d2.Advanced = true
	d2.Units = allUnits
	d2.OrderSeed = evasiveSeed(fullUnitCount)
	if reports, err := d2.ScanAll(); err != nil {
		out = append(out, Violation{InvError, "evasive-ordered", err.Error()})
	} else {
		out = append(out, checkInside(c2, "evasive-ordered", reports)...)
	}
	return out
}
