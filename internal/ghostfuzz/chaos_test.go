package ghostfuzz

import (
	"reflect"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/faultinject"
)

// TestChaosSuite is the headline property suite: seeded fault scenarios
// across every faulted mode (lanes 1/2/8 and the warm-cache path) must
// (a) never panic or error out of a contained scan, (b) never induce a
// false positive, and (c) keep detecting every planted ghost whose scan
// units survived undamaged. 70 seeds × 4 modes = 280 scenarios.
func TestChaosSuite(t *testing.T) {
	seeds := 70
	if testing.Short() {
		seeds = 3
	}
	scenarios := 0
	for i := 0; i < seeds; i++ {
		spec := GenerateFaulted(CaseSeed(99, i))
		scenarios += len(faultedModes)
		for _, v := range RunCaseFaulted(spec) {
			t.Errorf("%s: %s", spec, v)
		}
	}
	if !testing.Short() && scenarios < 200 {
		t.Errorf("chaos suite ran %d scenarios, want >= 200", scenarios)
	}
}

// TestFaultedSpecRoundTrip: chaos specs round-trip through the one-line
// corpus form, fault plan included.
func TestFaultedSpecRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		spec := GenerateFaulted(CaseSeed(31, i))
		if len(spec.Faults) == 0 {
			t.Fatalf("GenerateFaulted(%d) produced no faults", CaseSeed(31, i))
		}
		line := spec.String()
		back, err := ParseSpec(line)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", line, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", spec, back)
		}
	}
}

func TestGenerateFaultedDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		seed := CaseSeed(57, i)
		a, b := GenerateFaulted(seed), GenerateFaulted(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("GenerateFaulted(%d) differs across calls", seed)
		}
		if clean := Generate(seed); !reflect.DeepEqual(a.Atoms, clean.Atoms) {
			t.Fatalf("GenerateFaulted(%d) changed the ghostware half", seed)
		}
	}
}

func TestParseSpecRejectsBadFaults(t *testing.T) {
	for _, line := range []string{
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=",
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=hive:lag@1",    // hive has no lag
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=api:mut@1",     // api has no mut
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=disk:torn@0",   // after < 1
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=disk:torn@1x0", // count < 1
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=nonsense",
		"ghostfuzz-v1 seed=1 atoms=ads/1/all bogus=disk:torn@1",
		"ghostfuzz-v1 seed=1 atoms=ads/1/all faults=disk:torn@1 extra",
	} {
		if _, err := ParseSpec(line); err == nil {
			t.Errorf("ParseSpec accepted %q", line)
		}
	}
}

// TestEmptyFaultPlanByteIdentity: arming an empty plan — and arming a
// plan whose faults never reach their trigger offsets — must not change
// a single report byte relative to an uninstrumented machine. The fault
// layer's hooks have to be invisible until they fire.
func TestEmptyFaultPlanByteIdentity(t *testing.T) {
	spec := Generate(CaseSeed(17, 0))
	runWith := func(faults []faultinject.Fault, arm bool) string {
		c, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			inj, err := faultinject.New(c.M, faultinject.Plan{Seed: spec.Seed, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			inj.Arm()
		}
		d := core.NewDetector(c.M)
		d.Advanced = true
		d.Contain = true
		reports, err := d.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		return canonicalJSON(reports, false)
	}

	base := runWith(nil, false)
	if got := runWith(nil, true); got != base {
		t.Errorf("armed empty plan changed report bytes: %s", firstDiff(base, got))
	}
	unfired := []faultinject.Fault{
		{Source: faultinject.SourceDisk, Kind: faultinject.KindTorn, After: 1 << 20, Count: 1},
		{Source: faultinject.SourceHive, Kind: faultinject.KindErr, After: 1 << 20, Count: 1},
		{Source: faultinject.SourceKmem, Kind: faultinject.KindFlip, After: 1 << 30, Count: 1},
		{Source: faultinject.SourceAPI, Kind: faultinject.KindErr, After: 1 << 30, Count: 1},
	}
	if got := runWith(unfired, true); got != base {
		t.Errorf("armed never-firing plan changed report bytes: %s", firstDiff(base, got))
	}
}

// TestChaosCrashResume is the durability property suite: for each seed,
// a journaled fleet sweep is killed at several offsets (scheduled-only,
// mid-sweep, last record, torn tail) and its journal damaged (bit
// flip), then resumed on a freshly rebuilt fleet. Every resume must
// reproduce the uninterrupted run's verdicts, hashes, and fleet digest,
// never re-scan a committed host, and refuse damaged journals loudly.
func TestChaosCrashResume(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 1
	}
	variants := 0
	for i := 0; i < seeds; i++ {
		seed := CaseSeed(77, i)
		s, err := RunCrashResume(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		variants += s.Variants
		for _, v := range s.Violations {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
	if !testing.Short() && variants < 20 {
		t.Errorf("crash suite ran %d variants, want >= 20", variants)
	}
}
