package ghostfuzz

import "time"

// Options configures a fuzz run.
type Options struct {
	// Seed is the base seed; case i uses CaseSeed(Seed, i).
	Seed int64
	// N is how many cases to generate and run.
	N int
	// Budget bounds wall-clock time; zero means unlimited. A run that
	// hits the budget stops early and marks the summary Truncated — it
	// never affects per-case results, so an un-truncated run's JSON is
	// identical whatever the budget.
	Budget time.Duration
	// Faulted draws each case from GenerateFaulted instead of Generate:
	// the composed adversary plus a seeded fault plan, judged by the
	// chaos oracle (RunCaseFaulted) instead of the differential one.
	Faulted bool
	// Breaker, when set, sabotages reports before invariant checks
	// (tests only; ignored by faulted cases, whose sabotage is the fault
	// plan itself).
	Breaker *Breaker
	// CorpusDir, when non-empty, receives a shrunk spec file for every
	// failure.
	CorpusDir string
	// NoShrink skips minimization (failures report the raw spec as
	// shrunk).
	NoShrink bool
}

// Failure is one fuzz case that violated an invariant, with its
// minimized reproduction.
type Failure struct {
	Spec       string      `json:"spec"`
	Shrunk     string      `json:"shrunk"`
	Violations []Violation `json:"violations"`
	CorpusFile string      `json:"corpusFile,omitempty"`
}

// Summary is a fuzz run's deterministic result: no wall-clock times, so
// the same seed and N marshal byte-identically run after run.
type Summary struct {
	Seed      int64     `json:"seed"`
	Cases     int       `json:"cases"`
	Failures  []Failure `json:"failures,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
}

// Run generates and checks N cases. The error return covers harness
// problems (corpus I/O); detector failures land in Summary.Failures.
func Run(opts Options) (*Summary, error) {
	s := &Summary{Seed: opts.Seed}
	start := time.Now()
	for i := 0; i < opts.N; i++ {
		if opts.Budget > 0 && time.Since(start) > opts.Budget {
			s.Truncated = true
			break
		}
		spec := Generate(CaseSeed(opts.Seed, i))
		if opts.Faulted {
			spec = GenerateFaulted(CaseSeed(opts.Seed, i))
		}
		violations := runSpec(spec, opts.Breaker)
		s.Cases++
		if len(violations) == 0 {
			continue
		}
		f := Failure{Spec: spec.String(), Violations: violations}
		shrunk := spec
		if !opts.NoShrink {
			shrunk = Shrink(spec, violations[0], opts.Breaker)
		}
		f.Shrunk = shrunk.String()
		if opts.CorpusDir != "" {
			path, err := WriteSpec(opts.CorpusDir, shrunk, violations[0])
			if err != nil {
				return s, err
			}
			f.CorpusFile = path
		}
		s.Failures = append(s.Failures, f)
	}
	return s, nil
}

// runSpec builds and checks one spec; a build error is itself an
// invariant violation (the generator must only emit installable specs).
// A spec carrying a fault plan routes to the chaos oracle, and one with
// adaptive-evasion atoms to the order-sensitive evasive oracle; both
// build per mode themselves and ignore the breaker (their sabotage is
// the adversary itself).
func runSpec(spec CaseSpec, b *Breaker) []Violation {
	if len(spec.Faults) > 0 {
		return RunCaseFaulted(spec)
	}
	if hasEvasive(spec.Atoms) {
		return RunCaseEvasive(spec)
	}
	c, err := Build(spec)
	if err != nil {
		return []Violation{{InvError, "build", err.Error()}}
	}
	return RunCase(c, b)
}

// Replay re-runs one spec line and returns its violations; a corpus
// entry that replays clean means the bug it recorded stays fixed.
func Replay(line string, b *Breaker) ([]Violation, error) {
	spec, err := ParseSpec(line)
	if err != nil {
		return nil, err
	}
	return runSpec(spec, b), nil
}

// ReplayAll replays every corpus spec under dir and returns violations
// keyed by spec line.
func ReplayAll(dir string, b *Breaker) (map[string][]Violation, error) {
	specs, err := LoadCorpus(dir)
	if err != nil {
		return nil, err
	}
	out := map[string][]Violation{}
	for _, spec := range specs {
		if vs := runSpec(spec, b); len(vs) > 0 {
			out[spec.String()] = vs
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
