package ghostfuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/fleetshard"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/supervise"
)

// The supervision chaos oracle: wedges and stragglers injected into a
// real-machine sharded sweep, healed live by the supervision layer, and
// judged by one invariant — the merged digest (and every verification
// layer under it) must be byte-identical to the uninterrupted run's.
// The wedge is a faultinject disk:lag fault whose stall gate blocks in
// wall-clock time with no virtual charge, exactly the failure shape
// (dying spindle, wedged fsync) the watchdog exists to catch: virtual
// time stops while real time runs on.

// supervisionSeedBase offsets supervision-chaos host seeds away from
// every other ghostfuzz seed space.
const supervisionSeedBase = 1 << 23

// supervisionHostsPerShard sizes the fleet so the wedged shard has
// committed work to seal AND unfinished hosts to re-home.
const supervisionHostsPerShard = 4

// supervisionSource builds the generated fleet; the victim host's
// FIRST build (and only the first — the failover or hedge rebuild must
// come up clean) arms a one-shot disk:lag fault whose stall gate is the
// oracle's wedge.
type supervisionSource struct {
	seed   int64
	n      int
	victim int // index whose first build stalls; -1 for a clean source
	armed  *atomic.Bool
	stall  func()
}

func cleanSupervisionSource(seed int64, n int) supervisionSource {
	return supervisionSource{seed: seed, n: n, victim: -1}
}

func stalledSupervisionSource(seed int64, n, victim int, stall func()) supervisionSource {
	return supervisionSource{seed: seed, n: n, victim: victim, armed: &atomic.Bool{}, stall: stall}
}

func (s supervisionSource) Len() int { return s.n }

func (s supervisionSource) Name(i int) string { return fmt.Sprintf("chaos-%03d", i) }

func (s supervisionSource) Build(i int) (*machine.Machine, error) {
	c, err := Build(Generate(CaseSeed(s.seed, supervisionSeedBase+i)))
	if err != nil {
		return nil, err
	}
	if i == s.victim && s.armed.CompareAndSwap(false, true) {
		inj, err := faultinject.New(c.M, faultinject.Plan{Seed: s.seed, Faults: []faultinject.Fault{
			{Source: faultinject.SourceDisk, Kind: faultinject.KindLag, After: 1, Count: 1},
		}})
		if err != nil {
			return nil, err
		}
		inj.SetStall(func(faultinject.Source) { s.stall() })
		inj.Arm()
	}
	return c.M, nil
}

// chaosWatchdog is deliberately tight: the victim stalls forever, every
// healthy host scan takes single-digit milliseconds of wall time, and a
// spurious wedge of a slow-but-healthy shard is correctness-preserving
// by design — the digest checks below hold either way.
func chaosWatchdog() supervise.Policy {
	return supervise.Policy{Deadline: 150 * time.Millisecond, Misses: 2}
}

// RunSupervisionChaos runs the supervision chaos matrix for one seed:
// a live wedge healed mid-sweep (journaled and unjournaled), a crash
// after the wedge resumed from the wedge markers, a straggler covered
// by a hedged duplicate, and a jittered shard retry — each compared
// against the same uninterrupted reference.
func RunSupervisionChaos(seed int64, shards int) (*CrashSummary, error) {
	if shards < 2 {
		return nil, fmt.Errorf("ghostfuzz: supervision chaos needs at least 2 shards (got %d)", shards)
	}
	s := &CrashSummary{Seed: seed}
	dir, err := os.MkdirTemp("", "ghostfuzz-supervise-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	n := shards * supervisionHostsPerShard
	victim := n - 1 // last in sorted scan order: its shard commits beats first
	cfg := fleetshard.Config{Shards: shards}

	refCoord, err := fleetshard.New(cfg, cleanSupervisionSource(seed, n))
	if err != nil {
		return nil, err
	}
	ref, err := refCoord.Sweep()
	if err != nil {
		return nil, fmt.Errorf("ghostfuzz: reference sweep: %w", err)
	}
	if err := ref.Verify(); err != nil {
		s.Violations = append(s.Violations, Violation{InvDurability, "supervise/reference", err.Error()})
		return s, nil
	}

	// --- wedge-live: watchdog cancels the stuck shard, survivors adopt
	// its unfinished hosts mid-sweep, journals audit clean.
	s.Variants++
	{
		mode := "supervise/wedge-live"
		vdir := filepath.Join(dir, "wedge")
		gate := make(chan struct{})
		wcfg := cfg
		wcfg.JournalDir = vdir
		wcfg.Watchdog = chaosWatchdog()
		coord, err := fleetshard.New(wcfg, stalledSupervisionSource(seed, n, victim, func() { <-gate }))
		if err != nil {
			return nil, err
		}
		rep, err := coord.Sweep()
		close(gate) // free the stuck scan; its result is discarded
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode, "sweep failed: " + err.Error()})
		} else {
			if !anyWedged(rep) {
				s.Violations = append(s.Violations, Violation{InvDurability, mode,
					"victim shard stalled forever yet no shard was declared wedged"})
			}
			s.Violations = append(s.Violations, checkSupervised(mode, ref, rep)...)
			if err := rep.VerifyJournals(vdir); err != nil {
				s.Violations = append(s.Violations, Violation{InvDurability, mode, "journal audit: " + err.Error()})
			}
		}
	}

	// --- wedge-resume: crash after the wedge (the recovery journals the
	// live failover wrote are lost); resume must honor the wedge markers.
	s.Variants++
	{
		mode := "supervise/wedge-resume"
		vdir := filepath.Join(dir, "wedge")
		recov, err := filepath.Glob(filepath.Join(vdir, "*.recover*.gbj"))
		if err != nil {
			return nil, err
		}
		for _, p := range recov {
			if err := os.Remove(p); err != nil {
				return nil, err
			}
		}
		rcfg := cfg
		rcfg.JournalDir = vdir
		coord, err := fleetshard.New(rcfg, cleanSupervisionSource(seed, n))
		if err != nil {
			return nil, err
		}
		rep, err := coord.Resume()
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode, "resume failed: " + err.Error()})
		} else {
			if rep.Replayed == 0 {
				s.Violations = append(s.Violations, Violation{InvDurability, mode,
					"resume replayed nothing — the sealed wedge journals were ignored"})
			}
			s.Violations = append(s.Violations, checkSupervised(mode, ref, rep)...)
			if err := rep.VerifyJournals(vdir); err != nil {
				s.Violations = append(s.Violations, Violation{InvDurability, mode, "journal audit: " + err.Error()})
			}
		}
	}

	// --- wedge-unjournaled: supervision must not depend on journaling.
	s.Variants++
	{
		mode := "supervise/wedge-unjournaled"
		gate := make(chan struct{})
		wcfg := cfg
		wcfg.Watchdog = chaosWatchdog()
		coord, err := fleetshard.New(wcfg, stalledSupervisionSource(seed, n, victim, func() { <-gate }))
		if err != nil {
			return nil, err
		}
		rep, err := coord.Sweep()
		close(gate)
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode, "sweep failed: " + err.Error()})
		} else {
			if !anyWedged(rep) {
				s.Violations = append(s.Violations, Violation{InvDurability, mode,
					"victim shard stalled forever yet no shard was declared wedged"})
			}
			s.Violations = append(s.Violations, checkSupervised(mode, ref, rep)...)
		}
	}

	// --- hedge: the victim straggles (bounded stall) instead of dying;
	// a duplicate scan on a clean rebuild must win without double-commit.
	s.Variants++
	{
		mode := "supervise/hedge"
		hcfg := cfg
		hcfg.Hedge = &fleet.HedgePolicy{MinSamples: 1, Multiplier: 1, Floor: 30 * time.Millisecond}
		coord, err := fleetshard.New(hcfg, stalledSupervisionSource(seed, n, victim,
			func() { time.Sleep(400 * time.Millisecond) }))
		if err != nil {
			return nil, err
		}
		rep, err := coord.Sweep()
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode, "sweep failed: " + err.Error()})
		} else {
			if hedgedCount(rep) == 0 {
				s.Violations = append(s.Violations, Violation{InvDurability, mode,
					"victim straggled 400ms yet no hedge was launched"})
			}
			s.Violations = append(s.Violations, checkSupervised(mode, ref, rep)...)
		}
	}

	// --- jitter-retry: a transient shard-infrastructure fault retried
	// under deterministic full jitter must not perturb the digest.
	s.Variants++
	{
		mode := "supervise/jitter-retry"
		faulted := &atomic.Bool{}
		jcfg := cfg
		jcfg.BackoffJitterSeed = seed | 1
		jcfg.ShardMaxRetries = 2
		jcfg.ShardFault = func(shard, attempt int) error {
			if attempt == 1 && faulted.CompareAndSwap(false, true) {
				return fmt.Errorf("injected transient shard fault")
			}
			return nil
		}
		coord, err := fleetshard.New(jcfg, cleanSupervisionSource(seed, n))
		if err != nil {
			return nil, err
		}
		rep, err := coord.Sweep()
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode, "sweep failed: " + err.Error()})
		} else {
			s.Violations = append(s.Violations, checkSupervised(mode, ref, rep)...)
		}
	}

	return s, nil
}

// checkSupervised is the shared digest-equality judgment: whatever the
// supervision layer did — wedge failover, hedged duplicates, jittered
// retries — the healed run must be indistinguishable from the
// uninterrupted one at every verification layer.
func checkSupervised(mode string, ref, rep *fleetshard.Report) []Violation {
	var out []Violation
	if rep.Aborted {
		out = append(out, Violation{InvDurability, mode, "run aborted: " + rep.AbortReason})
	}
	if rep.Scanned != ref.Scanned || rep.NotScanned != 0 {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("%d scanned / %d unscanned, reference scanned %d", rep.Scanned, rep.NotScanned, ref.Scanned)})
	}
	if rep.Infected != ref.Infected || rep.HiddenTotal != ref.HiddenTotal {
		out = append(out, Violation{InvConsistency, mode,
			fmt.Sprintf("verdicts diverged: %d infected/%d hidden vs reference %d/%d",
				rep.Infected, rep.HiddenTotal, ref.Infected, ref.HiddenTotal)})
	}
	if rep.MergedDigest != ref.MergedDigest {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("merged digest %.12s != reference %.12s", rep.MergedDigest, ref.MergedDigest)})
	}
	if err := rep.Verify(); err != nil {
		out = append(out, Violation{InvDurability, mode, "report verification: " + err.Error()})
	}
	return out
}

func anyWedged(rep *fleetshard.Report) bool {
	for _, sr := range rep.ShardResults {
		if sr.Wedged {
			return true
		}
	}
	return false
}

func hedgedCount(rep *fleetshard.Report) int64 {
	var total int64
	for _, sr := range rep.ShardResults {
		if sr.Summary != nil {
			total += sr.Summary.Hedged
		}
	}
	return total
}
