package ghostfuzz

import (
	"fmt"
	"os"
	"path/filepath"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/fleet"
	"ghostbuster/internal/journal"
)

// The crash-resume differential oracle: run a journaled sweep to
// completion as the reference, then simulate process death at several
// journal offsets (plus torn-tail and bit-flip damage to the journal
// file itself), resume each wreck on a freshly rebuilt identical fleet,
// and demand the merged report match the uninterrupted run — same
// verdicts, same per-host content hashes, same fleet digest — with no
// host re-scanned after its committed terminal record.

// crashSeedBase offsets crash-fleet host seeds away from both the
// single-case and fleet-mode seed spaces.
const crashSeedBase = 1 << 21

// crashHosts is the crash fleet size: small enough to sweep quickly,
// large enough that a mid-sweep kill leaves committed, in-flight, and
// unvisited hosts all at once.
const crashHosts = 3

// InvDurability: a resumed sweep diverged from the uninterrupted run,
// lost work it had committed, or accepted a damaged journal silently.
const InvDurability = "durability"

// CrashSummary is the deterministic outcome of one crash-resume fuzz.
type CrashSummary struct {
	Seed       int64       `json:"seed"`
	Variants   int         `json:"variants"`
	Violations []Violation `json:"violations,omitempty"`
}

// buildCrashFleet deterministically builds the crash fleet for a seed.
// Called once per crash variant: each resume happens on a fresh fleet,
// modeling the restarted process rebuilding its view of the hosts.
func buildCrashFleet(seed int64) (*fleet.Manager, map[string]int, error) {
	mgr := fleet.NewManager()
	expected := map[string]int{}
	for i := 0; i < crashHosts; i++ {
		spec := Generate(CaseSeed(seed, crashSeedBase+i))
		c, err := Build(spec)
		if err != nil {
			return nil, nil, err
		}
		host := fmt.Sprintf("crash-%03d", i)
		mgr.Add(host, c.M)
		expected[host] = c.Expect.HiddenTotal()
	}
	return mgr, expected, nil
}

// crashVariant is one way to wreck the reference journal before resume.
type crashVariant struct {
	name string
	// keep is how many records survive the simulated kill, as an offset
	// into the reference journal; negative counts from the end.
	keep int
	// torn leaves a partial record after the kept ones.
	torn bool
	// corrupt, when set, damages the journal file instead of truncating.
	corrupt faultinject.Kind
	// wantResumeError: the resume itself must fail loudly.
	wantResumeError bool
}

func crashVariants() []crashVariant {
	return []crashVariant{
		// Kill before any host ran: resume re-runs the whole fleet.
		{name: "kill@sched", keep: 1 + crashHosts},
		// Kill mid-sweep: one host committed, one in flight, one unvisited.
		{name: "kill@mid", keep: 1 + crashHosts + 3},
		// Kill after the last host started but before it committed.
		{name: "kill@last", keep: -1},
		// The kill tore the final record in half: recoverable, resumable.
		{name: "torn", keep: 1 + crashHosts + 3, torn: true},
		// A bit rotted inside the journal body: resume must refuse it.
		{name: "flip", corrupt: faultinject.KindFlip, wantResumeError: true},
	}
}

// RunCrashResume runs the crash-resume oracle for one seed. The only
// I/O is journal files under a private temp directory, removed before
// return; the summary is deterministic.
func RunCrashResume(seed int64) (*CrashSummary, error) {
	s := &CrashSummary{Seed: seed}
	dir, err := os.MkdirTemp("", "ghostfuzz-crash-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	refMgr, expected, err := buildCrashFleet(seed)
	if err != nil {
		return nil, err
	}
	refPath := filepath.Join(dir, "reference.gbj")
	ref, err := refMgr.SweepJournaled(fleet.SweepInside, 1, refPath)
	if err != nil {
		return nil, fmt.Errorf("ghostfuzz: reference sweep: %w", err)
	}
	if err := ref.Verify(); err != nil {
		s.Violations = append(s.Violations, Violation{InvDurability, "crash/reference", err.Error()})
		return s, nil
	}
	for host, want := range expected {
		if want > 0 && !hostResult(ref, host).Infected {
			s.Violations = append(s.Violations, Violation{InvCoverage, "crash/reference",
				fmt.Sprintf("host %s not reported infected (planted %d)", host, want)})
		}
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		return nil, err
	}
	refRecords, _, err := journal.Read(refPath)
	if err != nil {
		return nil, err
	}

	for _, v := range crashVariants() {
		s.Variants++
		mode := "crash/" + v.name
		path := filepath.Join(dir, v.name+".gbj")
		if err := os.WriteFile(path, refBytes, 0o644); err != nil {
			return nil, err
		}
		if v.corrupt != "" {
			if err := journal.Corrupt(path, v.corrupt, seed); err != nil {
				return nil, err
			}
		} else {
			keep := v.keep
			if keep < 0 {
				keep = len(refRecords) + keep
			}
			if _, err := journal.TruncateRecords(path, keep, v.torn); err != nil {
				return nil, err
			}
		}

		mgr, _, err := buildCrashFleet(seed)
		if err != nil {
			return nil, err
		}
		resumed, err := mgr.Resume(fleet.SweepInside, 1, path)
		if v.wantResumeError {
			if err == nil {
				s.Violations = append(s.Violations, Violation{InvDurability, mode,
					"damaged journal resumed without error"})
			}
			continue
		}
		if err != nil {
			s.Violations = append(s.Violations, Violation{InvDurability, mode,
				fmt.Sprintf("resume failed: %v", err)})
			continue
		}
		s.Violations = append(s.Violations, checkResumed(mode, ref, resumed, path)...)
	}
	return s, nil
}

// checkResumed compares a resumed sweep against the uninterrupted
// reference and audits the final journal for double scans.
func checkResumed(mode string, ref, resumed *fleet.Report, path string) []Violation {
	var out []Violation
	if err := resumed.Verify(); err != nil {
		out = append(out, Violation{InvDurability, mode, "resumed report: " + err.Error()})
	}
	if len(resumed.Results) != len(ref.Results) {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("%d results after resume, reference has %d", len(resumed.Results), len(ref.Results))})
		return out
	}
	for i, hr := range resumed.Results {
		want := ref.Results[i]
		if hr.Host != want.Host || hr.Hash != want.Hash || hr.Infected != want.Infected {
			out = append(out, Violation{InvConsistency, mode,
				fmt.Sprintf("host %s diverged: hash %.12s vs %.12s, infected %v vs %v",
					want.Host, hr.Hash, want.Hash, hr.Infected, want.Infected)})
		}
	}
	if resumed.Digest != ref.Digest {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("fleet digest %.12s != reference %.12s", resumed.Digest, ref.Digest)})
	}
	if qs := fmt.Sprint(resumed.Quarantined); qs != fmt.Sprint(ref.Quarantined) {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("quarantine list %v != reference %v", resumed.Quarantined, ref.Quarantined)})
	}
	// The final journal must show each host committed exactly once, with
	// no attempt started after its terminal record — committed work is
	// never re-scanned.
	recs, dropped, err := journal.Read(path)
	if err != nil || dropped != 0 {
		out = append(out, Violation{InvDurability, mode,
			fmt.Sprintf("final journal unreadable: %v (dropped %d)", err, dropped)})
		return out
	}
	committed := map[string]bool{}
	for _, rec := range recs {
		switch {
		case rec.State == journal.StateRunning && committed[rec.Host]:
			out = append(out, Violation{InvDurability, mode,
				fmt.Sprintf("host %s re-scanned after its terminal record (seq %d)", rec.Host, rec.Seq)})
		case rec.State.Terminal():
			if committed[rec.Host] {
				out = append(out, Violation{InvDurability, mode,
					fmt.Sprintf("host %s committed twice (seq %d)", rec.Host, rec.Seq)})
			}
			committed[rec.Host] = true
		}
	}
	for _, hr := range ref.Results {
		if !committed[hr.Host] {
			out = append(out, Violation{InvDurability, mode,
				fmt.Sprintf("host %s has no terminal record after resume", hr.Host)})
		}
	}
	return out
}

func hostResult(r *fleet.Report, host string) fleet.HostResult {
	for _, hr := range r.Results {
		if hr.Host == host {
			return hr
		}
	}
	return fleet.HostResult{}
}
