package ghostfuzz

import "ghostbuster/internal/ghostware"

// Shrink greedily minimizes a failing spec while the same failure (same
// invariant, same mode) persists: first drop whole atoms, then reduce
// surviving atoms' artifact counts to 1. Every candidate is rebuilt and
// re-run from scratch, so the result is a spec that still reproduces
// the target violation on replay. Build errors during shrinking count
// as "not failing" — the shrinker never trades the target failure for a
// different one. A chaos spec's fault plan is the failure's environment,
// not its payload, so it is carried into every candidate unshrunk.
func Shrink(spec CaseSpec, target Violation, b *Breaker) CaseSpec {
	fails := func(s CaseSpec) bool {
		for _, v := range runSpec(s, b) {
			if sameFailure(v, target) {
				return true
			}
		}
		return false
	}

	cur := spec
	// Pass 1: remove atoms. Removing atom i renumbers later atoms'
	// artifact names, so each candidate is judged by a full re-run.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Atoms) && len(cur.Atoms) > 1; i++ {
			cand := CaseSpec{Seed: cur.Seed, Faults: cur.Faults}
			cand.Atoms = append(cand.Atoms, cur.Atoms[:i]...)
			cand.Atoms = append(cand.Atoms, cur.Atoms[i+1:]...)
			if fails(cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	// Pass 2: minimize artifact counts.
	for i := range cur.Atoms {
		if cur.Atoms[i].Count <= 1 {
			continue
		}
		cand := CaseSpec{Seed: cur.Seed, Faults: cur.Faults, Atoms: append([]ghostware.Atom(nil), cur.Atoms...)}
		cand.Atoms[i].Count = 1
		if fails(cand) {
			cur = cand
		}
	}
	return cur
}
