package ghostfuzz

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/crosstime"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/workload"
)

// Expectation is the ground truth the oracle checks reports against:
// exactly these artifacts, and nothing else, must surface as hidden.
type Expectation struct {
	// Files holds exact uppercase finding IDs (full paths; ADS entries
	// as PATH:STREAM).
	Files []string
	// ASEPs holds ground-truth hook specs, "KEY" or "KEY|VALUE",
	// matched the way the ghostware table tests match them.
	ASEPs []string
	// Procs holds hidden process image names (finding IDs end with
	// ": NAME" uppercased).
	Procs []string
	// Mods holds uppercase DLL base names (finding IDs contain them).
	Mods []string
	// MassHiding is whether file reports must flag the §5 anomaly.
	MassHiding bool
	// Evasive holds adaptive-evasion process image names. They stay
	// hidden only until the ghostware's scan watcher trips, so the naive
	// fixed-order sweep must miss them while randomized ordering and the
	// cross-time diff must catch them (RunCaseEvasive).
	Evasive []string
	// MemOnly holds memory-only process image names, visible only to
	// the kernel-vs-pool-carve cross-view unit (report index 4).
	MemOnly []string
	// Boot holds tampered boot-sector region names ("CODE"); boot-chain
	// finding IDs are "NAME:STATUS" (report index 5).
	Boot []string
	// USB holds exact uppercase finding IDs of hidden removable-volume
	// payloads — full E:\ paths (report index 6).
	USB []string
}

// Case is one built fuzz case: a populated machine infected with the
// spec's composite ghostware, plus what the detectors must find.
type Case struct {
	Spec   CaseSpec
	M      *machine.Machine
	G      *ghostware.Composite
	Expect Expectation
	// Baseline is a pre-infection cross-time checkpoint, taken only for
	// specs with evasive atoms: the cross-time counter needs a before
	// image that predates the payload drop.
	Baseline *crosstime.Checkpoint
}

// Build realizes a spec: derive the machine profile from the seed,
// populate it, install the composed ghostware, run a little live churn,
// and precompute the expectation. Deterministic for a given spec.
func Build(spec CaseSpec) (*Case, error) {
	m, err := workload.NewPaperMachine(workload.FuzzProfile(spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("ghostfuzz: building machine: %w", err)
	}
	var baseline *crosstime.Checkpoint
	if hasEvasive(spec.Atoms) {
		baseline, err = crosstime.TakeCheckpoint(m)
		if err != nil {
			return nil, fmt.Errorf("ghostfuzz: baseline checkpoint: %w", err)
		}
	}
	g := ghostware.NewComposite(fmt.Sprintf("s%d", uint64(spec.Seed)%100000), spec.Atoms)
	if err := g.Install(m); err != nil {
		return nil, fmt.Errorf("ghostfuzz: installing %s: %w", spec, err)
	}
	// A few minutes of live service churn between infection and scan,
	// as on a real in-service host.
	if err := m.RunChurn(5); err != nil {
		return nil, fmt.Errorf("ghostfuzz: churn: %w", err)
	}
	return &Case{Spec: spec, M: m, G: g, Expect: expectationFor(g), Baseline: baseline}, nil
}

func expectationFor(g *ghostware.Composite) Expectation {
	var e Expectation
	for _, f := range g.HiddenFiles() {
		e.Files = append(e.Files, strings.ToUpper(f))
	}
	e.ASEPs = g.HiddenASEPs()
	e.Procs = g.HiddenProcs()
	e.Mods = g.HiddenModules()
	e.MassHiding = len(e.Files) > core.DefaultMassHidingThreshold
	e.Evasive = g.EvasiveProcs()
	e.MemOnly = g.MemOnlyProcs()
	e.Boot = g.BootRegions()
	for _, f := range g.RemovableFiles() {
		e.USB = append(e.USB, strings.ToUpper(f))
	}
	return e
}

// HiddenTotal is the non-noise hidden finding count a paper-order
// (four-report) inside sweep must report: one finding per planted
// artifact on the four paper surfaces. Next-gen artifacts (memory-only,
// boot, removable) are excluded by construction — they produce zero
// findings without their dedicated scan units, which is exactly what
// fleet sweeps run.
func (e Expectation) HiddenTotal() int {
	return len(e.Files) + len(e.ASEPs) + len(e.Procs) + len(e.Mods)
}
