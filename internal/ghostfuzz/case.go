package ghostfuzz

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/workload"
)

// Expectation is the ground truth the oracle checks reports against:
// exactly these artifacts, and nothing else, must surface as hidden.
type Expectation struct {
	// Files holds exact uppercase finding IDs (full paths; ADS entries
	// as PATH:STREAM).
	Files []string
	// ASEPs holds ground-truth hook specs, "KEY" or "KEY|VALUE",
	// matched the way the ghostware table tests match them.
	ASEPs []string
	// Procs holds hidden process image names (finding IDs end with
	// ": NAME" uppercased).
	Procs []string
	// Mods holds uppercase DLL base names (finding IDs contain them).
	Mods []string
	// MassHiding is whether file reports must flag the §5 anomaly.
	MassHiding bool
}

// Case is one built fuzz case: a populated machine infected with the
// spec's composite ghostware, plus what the detectors must find.
type Case struct {
	Spec   CaseSpec
	M      *machine.Machine
	G      *ghostware.Composite
	Expect Expectation
}

// Build realizes a spec: derive the machine profile from the seed,
// populate it, install the composed ghostware, run a little live churn,
// and precompute the expectation. Deterministic for a given spec.
func Build(spec CaseSpec) (*Case, error) {
	m, err := workload.NewPaperMachine(workload.FuzzProfile(spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("ghostfuzz: building machine: %w", err)
	}
	g := ghostware.NewComposite(fmt.Sprintf("s%d", uint64(spec.Seed)%100000), spec.Atoms)
	if err := g.Install(m); err != nil {
		return nil, fmt.Errorf("ghostfuzz: installing %s: %w", spec, err)
	}
	// A few minutes of live service churn between infection and scan,
	// as on a real in-service host.
	if err := m.RunChurn(5); err != nil {
		return nil, fmt.Errorf("ghostfuzz: churn: %w", err)
	}
	return &Case{Spec: spec, M: m, G: g, Expect: expectationFor(g)}, nil
}

func expectationFor(g *ghostware.Composite) Expectation {
	var e Expectation
	for _, f := range g.HiddenFiles() {
		e.Files = append(e.Files, strings.ToUpper(f))
	}
	e.ASEPs = g.HiddenASEPs()
	e.Procs = g.HiddenProcs()
	e.Mods = g.HiddenModules()
	e.MassHiding = len(e.Files) > core.DefaultMassHidingThreshold
	return e
}

// HiddenTotal is the non-noise hidden finding count an inside sweep
// must report: one finding per planted artifact.
func (e Expectation) HiddenTotal() int {
	return len(e.Files) + len(e.ASEPs) + len(e.Procs) + len(e.Mods)
}
