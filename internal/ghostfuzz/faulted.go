package ghostfuzz

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/faultinject"
)

// faultedMode is one chaos configuration: the detector layout the fault
// plan runs against.
type faultedMode struct {
	name        string
	parallelism int
	cached      bool
}

// faultedModes covers the lane counts of the clean differential modes
// (1, 2, 8) plus the warm-cache path, which additionally proves a fired
// fault can never poison the scan cache.
var faultedModes = []faultedMode{
	{name: "faulted-seq"},
	{name: "faulted-par2", parallelism: 2},
	{name: "faulted-par8", parallelism: 8},
	{name: "faulted-cached", cached: true},
}

// RunCaseFaulted is the chaos oracle. It realizes the spec once per
// faulted mode — each mode gets a fresh machine, so fault side effects
// (a mid-scan dropped file, warmed caches) never leak across modes —
// and checks the degradation invariants:
//
//  1. the scan never fails or panics: faults are contained as
//     Report.DegradedUnits;
//  2. no fault ever induces a false positive — every hidden finding
//     still maps to a planted artifact, damaged or not;
//  3. a report whose units all survived undamaged keeps full coverage:
//     every planted artifact is still detected;
//  4. once the plan is exhausted, the still-armed layer is transparent
//     (in cached mode this proves the warm cache never serves a
//     fault-poisoned parse), and after disarming the machine scans
//     fully clean — no fault leaves permanent damage behind.
func RunCaseFaulted(spec CaseSpec) []Violation {
	var out []Violation
	for _, mode := range faultedModes {
		// Parallel lanes run the file walk and the process pair
		// concurrently, racing an evasive atom's scan watcher in host
		// time; chaos specs with evasive atoms keep only the
		// deterministic sequential configurations.
		if mode.parallelism > 1 && hasEvasive(spec.Atoms) {
			continue
		}
		out = append(out, runFaultedMode(spec, mode)...)
	}
	return out
}

func runFaultedMode(spec CaseSpec, mode faultedMode) []Violation {
	c, err := Build(spec)
	if err != nil {
		return []Violation{{InvError, mode.name, "build: " + err.Error()}}
	}
	inj, err := faultinject.New(c.M, faultinject.Plan{Seed: spec.Seed, Faults: spec.Faults})
	if err != nil {
		return []Violation{{InvError, mode.name, "plan: " + err.Error()}}
	}
	inj.Arm()

	newDetector := func() *core.Detector {
		d := core.NewDetector(c.M)
		if mode.cached {
			d = core.NewCachedDetector(c.M)
		}
		d.Advanced = true
		d.Units = allUnits
		d.Parallelism = mode.parallelism
		d.Contain = true
		return d
	}

	var out []Violation
	d := newDetector()

	// Pass 1: scan under fire. Containment must hold the error at nil;
	// findings are judged by the lenient degradation checks.
	reports, err := d.ScanAll()
	if err != nil {
		out = append(out, Violation{InvError, mode.name, err.Error()})
	} else {
		out = append(out, checkFaulted(c, mode.name, reports)...)
	}

	// Pass 2: once every planned fault has fired its full count, the
	// still-armed layer must be transparent — the same detector (and, in
	// cached mode, the now-warm cache) produces a fully clean scan.
	if inj.Exhausted() {
		reports, err := d.ScanAll()
		if err != nil {
			out = append(out, Violation{InvError, mode.name + "/exhausted", err.Error()})
		} else {
			out = append(out, checkInside(c, mode.name+"/exhausted", reports)...)
		}
	}

	// Pass 3: disarmed, a fresh detector scans clean.
	inj.Disarm()
	d2 := newDetector()
	reports, err = d2.ScanAll()
	if err != nil {
		out = append(out, Violation{InvError, mode.name + "/disarmed", err.Error()})
	} else {
		out = append(out, checkInside(c, mode.name+"/disarmed", reports)...)
	}
	return out
}

// damaged reports whether any unit feeding r was lost or partial: a
// degraded unit, or skipped targets on either side. Claims of absence
// ("artifact X was not reported") are not trustworthy for such a report.
func damaged(r *core.Report) bool {
	return r.Degraded() || r.HighSkipped > 0 || r.LowSkipped > 0
}

// checkFaulted applies the degradation invariants to one faulted sweep:
// innocence is unconditional — a fault must never fabricate a finding —
// while coverage and the mass-hiding anomaly are only required of
// reports whose units all survived undamaged.
func checkFaulted(c *Case, mode string, reports []*core.Report) []Violation {
	if len(reports) != 7 {
		return []Violation{{InvError, mode, fmt.Sprintf("%d reports, want 7", len(reports))}}
	}
	var out []Violation
	for i, r := range reports {
		if !damaged(r) {
			switch i {
			case 0:
				out = append(out, checkFiles(c, mode, r)...)
				out = append(out, checkMassHiding(c, mode, r)...)
			case 1:
				out = append(out, checkASEPs(c, mode, r)...)
			case 2:
				out = append(out, checkProcs(c, mode, r)...)
			case 3:
				out = append(out, checkMods(c, mode, r)...)
			case 4:
				out = append(out, checkMemOnly(c, mode, r)...)
			case 5:
				out = append(out, checkBootChain(c, mode, r)...)
			case 6:
				out = append(out, checkRemovable(c, mode, r)...)
			}
			continue
		}
		for _, id := range sortedKeys(unmatchedHidden(c, i, r)) {
			out = append(out, Violation{InvInnocent, mode, "fault-induced false positive: " + printable(id)})
		}
	}
	return out
}

// unmatchedHidden returns the hidden finding IDs of report index idx
// (sweep order: files, ASEPs, processes, modules, kmem carve, boot
// chain, removable) that match no planted artifact — the fault-induced
// false positives.
func unmatchedHidden(c *Case, idx int, r *core.Report) map[string]bool {
	found := hiddenIDs(r)
	switch idx {
	case 0:
		for _, want := range c.Expect.Files {
			delete(found, want)
		}
	case 1:
		for id := range found {
			for _, spec := range c.Expect.ASEPs {
				if hookMatches(id, spec) {
					delete(found, id)
					break
				}
			}
		}
	case 2:
		deleteProcMatches(found, c.Expect.Procs)
	case 3:
		for _, frag := range c.Expect.Mods {
			for id := range found {
				if strings.Contains(id, frag) {
					delete(found, id)
					break
				}
			}
		}
	case 4:
		deleteProcMatches(found, c.Expect.MemOnly)
	case 5:
		for _, region := range c.Expect.Boot {
			for id := range found {
				if strings.HasPrefix(id, region+":") {
					delete(found, id)
					break
				}
			}
		}
	case 6:
		for _, want := range c.Expect.USB {
			delete(found, want)
		}
	}
	return found
}

// deleteProcMatches removes at most one finding per planted process
// name (IDs end with ": NAME" uppercased).
func deleteProcMatches(found map[string]bool, names []string) {
	for _, name := range names {
		suffix := ": " + strings.ToUpper(name)
		for id := range found {
			if strings.HasSuffix(id, suffix) {
				delete(found, id)
				break
			}
		}
	}
}
