package ghostfuzz

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/crashdump"
	"ghostbuster/internal/winpe"
)

// The oracle's invariant names, stable so shrinking can match on them.
const (
	// InvCoverage: a planted artifact is missing from the report of a
	// mode the paper claims catches it.
	InvCoverage = "coverage"
	// InvConsistency: a parallel or cached configuration's reports
	// diverge from the sequential cold-scan reports.
	InvConsistency = "consistency"
	// InvInnocent: a finding survived noise filtering that matches no
	// planted artifact — a false positive.
	InvInnocent = "innocent"
	// InvMassHiding: the §5 anomaly flag disagrees with the planted
	// hidden-file count.
	InvMassHiding = "mass-hiding"
	// InvError: a detection mode failed outright (error or captured
	// panic).
	InvError = "error"
)

// Violation is one invariant breach in one detection mode.
type Violation struct {
	Invariant string `json:"invariant"`
	Mode      string `json:"mode"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s]: %s", v.Invariant, v.Mode, v.Detail)
}

// sameFailure reports whether two violations are the same invariant in
// the same mode — the shrinker's notion of "still the same bug".
func sameFailure(a, b Violation) bool {
	return a.Invariant == b.Invariant && a.Mode == b.Mode
}

// Breaker is the test-only detector saboteur: it drops hidden findings
// from reports after scanning and before invariant checks, simulating a
// detector that silently misses a class of artifacts. The acceptance
// path proves a broken detector produces a shrunk, replayable spec.
type Breaker struct {
	// DropHidden returns true to delete a hidden finding from the named
	// mode's report.
	DropHidden func(mode string, f core.Finding) bool
}

// apply returns reports with the breaker's drops applied (deep enough a
// copy that the originals stay intact). A nil breaker is the identity.
func (b *Breaker) apply(mode string, reports []*core.Report) []*core.Report {
	if b == nil || b.DropHidden == nil {
		return reports
	}
	out := make([]*core.Report, len(reports))
	for i, r := range reports {
		cp := *r
		cp.Hidden = nil
		for _, f := range r.Hidden {
			if !b.DropHidden(mode, f) {
				cp.Hidden = append(cp.Hidden, f)
			}
		}
		out[i] = &cp
	}
	return out
}

// The inside-the-box detection configurations the oracle compares. Each
// builds a fresh detector over the same machine; lanes and caching must
// not change a single report byte (cached runs modulo virtual elapsed
// time, which legitimately shrinks on a warm cache).
type insideMode struct {
	name        string
	parallelism int
	cached      bool
	// warmup runs ScanAll once before the measured run (warm cache).
	warmup bool
	// zeroElapsed compares reports with Elapsed zeroed: cache hits
	// charge cheaper verify costs, so elapsed differs by design.
	zeroElapsed bool
}

var insideModes = []insideMode{
	{name: "inside-seq"},
	{name: "inside-par2", parallelism: 2},
	{name: "inside-par8", parallelism: 8},
	{name: "inside-cached-cold", cached: true, zeroElapsed: true},
	{name: "inside-cached-warm", cached: true, warmup: true, zeroElapsed: true},
}

// allUnits enables every next-gen scan unit: the oracle always judges
// the full 7-report sweep (four paper pairs plus kmem carve, boot
// chain, and the removable volume).
const allUnits = core.UnitCrossMem | core.UnitBootChain | core.UnitRemovable

// RunCase runs every detection configuration against the case and
// returns all invariant violations (nil means the case passed). The
// breaker, when non-nil, sabotages reports before checking — used only
// by tests and the shrinker acceptance path.
func RunCase(c *Case, b *Breaker) []Violation {
	var out []Violation
	report := func(v ...Violation) { out = append(out, v...) }

	// Inside-the-box: sequential is the reference; every other lane and
	// cache configuration must agree with it.
	var refReports []*core.Report
	var refJSON string
	for _, mode := range insideModes {
		d := core.NewDetector(c.M)
		if mode.cached {
			d = core.NewCachedDetector(c.M)
		}
		d.Advanced = true
		d.Units = allUnits
		d.Parallelism = mode.parallelism
		if mode.warmup {
			if _, err := d.ScanAll(); err != nil {
				report(Violation{InvError, mode.name, "warmup: " + err.Error()})
				continue
			}
		}
		reports, err := d.ScanAll()
		if err != nil {
			report(Violation{InvError, mode.name, err.Error()})
			continue
		}
		reports = b.apply(mode.name, reports)
		if refReports == nil {
			refReports = reports
			refJSON = canonicalJSON(reports, false)
			report(checkInside(c, mode.name, reports)...)
			continue
		}
		got := canonicalJSON(reports, mode.zeroElapsed)
		want := refJSON
		if mode.zeroElapsed {
			want = canonicalJSON(refReports, true)
		}
		if got != want {
			report(Violation{InvConsistency, mode.name,
				fmt.Sprintf("reports diverge from inside-seq: %s", firstDiff(want, got))})
		}
	}

	// Outside-the-box volatile state: crash-dump walks, no reboot.
	if r, err := crashdump.OutsideProcessCheck(c.M, true); err != nil {
		report(Violation{InvError, "crashdump-procs", err.Error()})
	} else {
		r = b.apply("crashdump-procs", []*core.Report{r})[0]
		report(checkProcs(c, "crashdump-procs", r)...)
	}
	if r, err := crashdump.OutsideModuleCheck(c.M); err != nil {
		report(Violation{InvError, "crashdump-mods", err.Error()})
	} else {
		r = b.apply("crashdump-mods", []*core.Report{r})[0]
		report(checkMods(c, "crashdump-mods", r)...)
	}

	// Outside-the-box persistent state: WinPE CD boots. These reboot the
	// machine (churn, ASEP refire), so they run last.
	if r, err := winpe.OutsideFileCheck(c.M, core.DiffOptions{}); err != nil {
		report(Violation{InvError, "winpe-files", err.Error()})
	} else {
		r = b.apply("winpe-files", []*core.Report{r})[0]
		report(checkFiles(c, "winpe-files", r)...)
		report(checkMassHiding(c, "winpe-files", r)...)
	}
	if r, err := winpe.OutsideASEPCheck(c.M, core.DiffOptions{}); err != nil {
		report(Violation{InvError, "winpe-aseps", err.Error()})
	} else {
		r = b.apply("winpe-aseps", []*core.Report{r})[0]
		report(checkASEPs(c, "winpe-aseps", r)...)
	}
	return out
}

// checkInside verifies coverage + innocence for a full-unit inside
// sweep (paper order: files, ASEPs, processes, modules, then the
// next-gen units: kmem carve, boot chain, removable).
func checkInside(c *Case, mode string, reports []*core.Report) []Violation {
	if len(reports) != 7 {
		return []Violation{{InvError, mode, fmt.Sprintf("%d reports, want 7", len(reports))}}
	}
	var out []Violation
	out = append(out, checkFiles(c, mode, reports[0])...)
	out = append(out, checkMassHiding(c, mode, reports[0])...)
	out = append(out, checkASEPs(c, mode, reports[1])...)
	out = append(out, checkProcs(c, mode, reports[2])...)
	out = append(out, checkMods(c, mode, reports[3])...)
	out = append(out, checkMemOnly(c, mode, reports[4])...)
	out = append(out, checkBootChain(c, mode, reports[5])...)
	out = append(out, checkRemovable(c, mode, reports[6])...)
	return out
}

func hiddenIDs(r *core.Report) map[string]bool {
	ids := make(map[string]bool, len(r.Hidden))
	for _, f := range r.Hidden {
		ids[f.ID] = true
	}
	return ids
}

// checkFiles: the hidden set must equal the planted file IDs exactly.
func checkFiles(c *Case, mode string, r *core.Report) []Violation {
	var out []Violation
	found := hiddenIDs(r)
	for _, want := range c.Expect.Files {
		if !found[want] {
			out = append(out, Violation{InvCoverage, mode, "hidden file not reported: " + printable(want)})
			continue
		}
		delete(found, want)
	}
	for _, id := range sortedKeys(found) {
		out = append(out, Violation{InvInnocent, mode, "innocent file flagged: " + printable(id)})
	}
	return out
}

// checkASEPs: every planted hook spec matches a finding, every finding
// matches a planted spec, counts agree.
func checkASEPs(c *Case, mode string, r *core.Report) []Violation {
	var out []Violation
	found := hiddenIDs(r)
	for _, spec := range c.Expect.ASEPs {
		if !hookDetected(found, spec) {
			out = append(out, Violation{InvCoverage, mode, "hidden ASEP not reported: " + printable(spec)})
		}
	}
	for _, id := range sortedKeys(found) {
		ok := false
		for _, spec := range c.Expect.ASEPs {
			if hookMatches(id, spec) {
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, Violation{InvInnocent, mode, "innocent ASEP flagged: " + printable(id)})
		}
	}
	if len(found) != len(c.Expect.ASEPs) && len(out) == 0 {
		out = append(out, Violation{InvInnocent, mode,
			fmt.Sprintf("%d hidden ASEP findings for %d planted hooks", len(found), len(c.Expect.ASEPs))})
	}
	return out
}

// checkProcs: process finding IDs end with ": NAME"; one per planted
// process.
func checkProcs(c *Case, mode string, r *core.Report) []Violation {
	return checkProcNames(mode, r, c.Expect.Procs, "process")
}

// checkMemOnly: the kernel-vs-pool-carve unit reports exactly the
// memory-only processes. Every other hider class stays visible to the
// CID handle table, so the carve diff is empty for them.
func checkMemOnly(c *Case, mode string, r *core.Report) []Violation {
	return checkProcNames(mode, r, c.Expect.MemOnly, "memory-only process")
}

func checkProcNames(mode string, r *core.Report, want []string, what string) []Violation {
	var out []Violation
	found := hiddenIDs(r)
	for _, name := range want {
		suffix := ": " + strings.ToUpper(name)
		matched := ""
		for id := range found {
			if strings.HasSuffix(id, suffix) {
				matched = id
				break
			}
		}
		if matched == "" {
			out = append(out, Violation{InvCoverage, mode, "hidden " + what + " not reported: " + name})
			continue
		}
		delete(found, matched)
	}
	for _, id := range sortedKeys(found) {
		out = append(out, Violation{InvInnocent, mode, "innocent " + what + " flagged: " + id})
	}
	return out
}

// checkBootChain: boot-region finding IDs are "NAME:STATUS"; the raw
// view of a tampered region surfaces as hidden ("CODE:tampered@...")
// while the sanitizer's pristine lie becomes phantom. Several bootkit
// atoms patch the same CODE region, so expectations dedupe by name.
func checkBootChain(c *Case, mode string, r *core.Report) []Violation {
	var out []Violation
	found := hiddenIDs(r)
	want := map[string]bool{}
	for _, region := range c.Expect.Boot {
		want[region] = true
	}
	for _, region := range sortedKeys(want) {
		matched := ""
		for id := range found {
			if strings.HasPrefix(id, region+":") {
				matched = id
				break
			}
		}
		if matched == "" {
			out = append(out, Violation{InvCoverage, mode, "tampered boot region not reported: " + region})
			continue
		}
		delete(found, matched)
	}
	for _, id := range sortedKeys(found) {
		out = append(out, Violation{InvInnocent, mode, "innocent boot region flagged: " + id})
	}
	return out
}

// checkRemovable: the hidden set must equal the planted removable
// payload paths exactly (full uppercase E:\ finding IDs).
func checkRemovable(c *Case, mode string, r *core.Report) []Violation {
	var out []Violation
	found := hiddenIDs(r)
	for _, want := range c.Expect.USB {
		if !found[want] {
			out = append(out, Violation{InvCoverage, mode, "hidden removable file not reported: " + printable(want)})
			continue
		}
		delete(found, want)
	}
	for _, id := range sortedKeys(found) {
		out = append(out, Violation{InvInnocent, mode, "innocent removable file flagged: " + printable(id)})
	}
	return out
}

// checkMods: module finding IDs contain the hidden DLL base name; one
// per planted module.
func checkMods(c *Case, mode string, r *core.Report) []Violation {
	var out []Violation
	found := hiddenIDs(r)
	for _, frag := range c.Expect.Mods {
		matched := ""
		for id := range found {
			if strings.Contains(id, frag) {
				matched = id
				break
			}
		}
		if matched == "" {
			out = append(out, Violation{InvCoverage, mode, "hidden module not reported: " + frag})
			continue
		}
		delete(found, matched)
	}
	for _, id := range sortedKeys(found) {
		out = append(out, Violation{InvInnocent, mode, "innocent module flagged: " + id})
	}
	return out
}

// checkMassHiding: the anomaly flag must match the planted count.
func checkMassHiding(c *Case, mode string, r *core.Report) []Violation {
	flagged := r.MassHiding != nil
	if flagged == c.Expect.MassHiding {
		return nil
	}
	return []Violation{{InvMassHiding, mode,
		fmt.Sprintf("anomaly flagged=%v with %d planted hidden files (threshold %d)",
			flagged, len(c.Expect.Files), core.DefaultMassHidingThreshold)}}
}

// hookDetected matches a ground-truth spec ("KEY" or "KEY|VALUE")
// against finding IDs ("KEY -> VALUE", upper-cased), the same way the
// ghostware table tests do.
func hookDetected(found map[string]bool, spec string) bool {
	for id := range found {
		if hookMatches(id, spec) {
			return true
		}
	}
	return false
}

func hookMatches(id, spec string) bool {
	keyPart, valPart := spec, ""
	if i := strings.IndexByte(spec, '|'); i >= 0 {
		keyPart, valPart = spec[:i], spec[i+1:]
	}
	if !strings.HasPrefix(id, strings.ToUpper(keyPart)) {
		return false
	}
	return valPart == "" || strings.HasSuffix(id, strings.ToUpper(valPart))
}

// canonicalJSON renders reports for byte comparison; zeroElapsed strips
// the virtual scan times (cached runs are cheaper by design).
func canonicalJSON(reports []*core.Report, zeroElapsed bool) string {
	if zeroElapsed {
		stripped := make([]*core.Report, len(reports))
		for i, r := range reports {
			cp := *r
			cp.Elapsed = 0
			stripped[i] = &cp
		}
		reports = stripped
	}
	data, err := json.Marshal(reports)
	if err != nil {
		return "marshal error: " + err.Error()
	}
	return string(data)
}

// firstDiff summarizes where two canonical JSON strings diverge.
func firstDiff(want, got string) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	lo := i - 30
	if lo < 0 {
		lo = 0
	}
	hiW, hiG := i+30, i+30
	if hiW > len(want) {
		hiW = len(want)
	}
	if hiG > len(got) {
		hiG = len(got)
	}
	return fmt.Sprintf("at byte %d: want ...%s..., got ...%s...", i, want[lo:hiW], got[lo:hiG])
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func printable(s string) string { return strings.ReplaceAll(s, "\x00", `\0`) }
