package ghostfuzz

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/machine"
)

// TestDiffEnginesAgreeAcrossCorpus is the columnar-migration
// differential: for every spec in the committed corpus plus a spread of
// generated ones (clean, faulted, and mass-hiding), the legacy map-probe
// diff and the columnar merge-join diff must produce byte-identical
// sealed Reports from the same pair of snapshots. The snapshots come
// through the public scan API (map adapters), are re-encoded into one
// shared intern table, and diffed by both engines.
func TestDiffEnginesAgreeAcrossCorpus(t *testing.T) {
	specs, err := LoadCorpus(filepath.Join("..", "..", "testdata", "ghostfuzz", "corpus"))
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		specs = append(specs, Generate(seed))
	}
	for seed := int64(1); seed <= 2; seed++ {
		specs = append(specs, GenerateFaulted(seed))
	}
	mass, err := ParseSpec("ghostfuzz-v1 seed=7 atoms=file@ssdt/2/all;ads/1/all;decoy@filter/120/utils")
	if err != nil {
		t.Fatalf("mass-hiding spec: %v", err)
	}
	specs = append(specs, mass)

	comparedPairs := 0
	for _, spec := range specs {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			c, err := Build(spec)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if len(spec.Faults) > 0 {
				// Armed faults exercise the engines over degraded inputs
				// (skipped targets, partial views). Scans that error under
				// a fault are skipped — there is nothing to diff.
				inj, err := faultinject.New(c.M, faultinject.Plan{Seed: spec.Seed, Faults: spec.Faults})
				if err != nil {
					t.Fatalf("fault plan: %v", err)
				}
				inj.Arm()
			}
			comparedPairs += diffAllPairsBothEngines(t, c.M)
		})
	}
	if comparedPairs == 0 {
		t.Fatal("differential compared no snapshot pairs")
	}
	t.Logf("compared %d snapshot pairs across %d specs", comparedPairs, len(specs))
}

// diffAllPairsBothEngines gathers the four resource snapshot pairs via
// the public scan API and asserts engine agreement on each; returns how
// many pairs were actually compared.
func diffAllPairsBothEngines(t *testing.T, m *machine.Machine) int {
	t.Helper()
	call := m.SystemCall()
	type pair struct {
		name      string
		high, low func() (*core.Snapshot, error)
	}
	pids, pidsErr := core.TruthPids(m)
	pairs := []pair{
		{"files",
			func() (*core.Snapshot, error) { return core.ScanFilesHigh(m, call) },
			func() (*core.Snapshot, error) { return core.ScanFilesLow(m) }},
		{"ASEPs",
			func() (*core.Snapshot, error) { return core.ScanASEPHigh(m, call) },
			func() (*core.Snapshot, error) { return core.ScanASEPLow(m) }},
		{"processes",
			func() (*core.Snapshot, error) { return core.ScanProcsHigh(m, call) },
			func() (*core.Snapshot, error) { return core.ScanProcsLow(m, true) }},
		{"modules",
			func() (*core.Snapshot, error) {
				if pidsErr != nil {
					return nil, pidsErr
				}
				return core.ScanModsHigh(m, call, pids)
			},
			func() (*core.Snapshot, error) {
				if pidsErr != nil {
					return nil, pidsErr
				}
				return core.ScanModsLow(m, pids)
			}},
	}
	opts := core.DiffOptions{NoiseFilters: core.BaselineNoiseFilters()}
	compared := 0
	for _, p := range pairs {
		high, err := p.high()
		if err != nil {
			t.Logf("%s: high scan skipped under fault: %v", p.name, err)
			continue
		}
		low, err := p.low()
		if err != nil {
			t.Logf("%s: low scan skipped under fault: %v", p.name, err)
			continue
		}
		mapR, err := core.SealedDiff(high, low, opts)
		if err != nil {
			t.Fatalf("%s: map diff: %v", p.name, err)
		}
		tab := core.NewInternTable()
		colR, err := core.DiffColumnar(core.SnapshotColumnar(high, tab), core.SnapshotColumnar(low, tab), opts)
		if err != nil {
			t.Fatalf("%s: columnar diff: %v", p.name, err)
		}
		colR.Seal()
		mapJSON, _ := json.Marshal(mapR)
		colJSON, _ := json.Marshal(colR)
		if string(mapJSON) != string(colJSON) {
			t.Errorf("%s: engines disagree: %s", p.name, firstDiff(string(mapJSON), string(colJSON)))
		}
		if mapR.Digest == "" || mapR.Digest != colR.Digest {
			t.Errorf("%s: sealed digests differ: map %q columnar %q", p.name, mapR.Digest, colR.Digest)
		}
		compared++
	}
	return compared
}
