// Package vmscan implements the §5 virtual-machine automation of the
// outside-the-box scan: run the infected high-level scan inside the
// guest, "power down" the VM, and scan the released virtual disk from
// the host. Because the host reads exactly the drive image the guest
// scan saw — no reboot window, no service churn in between — the diff
// has zero false positives ("a diff of the two scans revealed all the
// hidden files and contained zero false positive because the two scans
// were performed on exactly the same drive image").
package vmscan

import (
	"fmt"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
)

// GuestResult carries the artifacts captured from a powered-down guest.
type GuestResult struct {
	InsideHigh *core.Snapshot
	DiskImage  []byte
	HiveImages map[string][]byte
}

// PowerDownAndCapture runs the inside high-level scan in the guest, then
// powers the VM off without an orderly shutdown (the host simply stops
// the VM process), releasing the virtual disk in exactly the scanned
// state.
func PowerDownAndCapture(guest *machine.Machine) (*GuestResult, error) {
	inside, err := core.ScanFilesHigh(guest, guest.SystemCall())
	if err != nil {
		return nil, fmt.Errorf("vmscan: guest scan: %w", err)
	}
	res := &GuestResult{InsideHigh: inside, HiveImages: map[string][]byte{}}
	res.DiskImage = guest.Disk.SnapshotImage()
	for _, root := range guest.Reg.Roots() {
		h, ok := guest.Reg.HiveAt(root)
		if !ok {
			continue
		}
		res.HiveImages[root] = h.Snapshot()
	}
	// Power-off is near-instant compared to a CD boot.
	guest.Clock.Advance(5 * time.Second)
	return res, nil
}

// HostFileCheck mounts the released virtual drive on the host ("a
// utility that allows a virtual drive to appear as a normal drive") and
// diffs the host's clean scan against the guest's infected scan.
func HostFileCheck(guest *machine.Machine, res *GuestResult, opts core.DiffOptions) (*core.Report, error) {
	outside, err := core.ScanFilesImage(res.DiskImage, core.ViewVMHost, guest.Clock, guest.Profile)
	if err != nil {
		return nil, err
	}
	if opts.NoiseFilters == nil {
		// No reboot window exists in the VM flow, so only the baseline
		// filters (benign ADS markers) apply.
		opts.NoiseFilters = core.BaselineNoiseFilters()
	}
	return core.Diff(res.InsideHigh, outside, opts)
}

// Check runs the full VM flow: guest scan, power down, host scan, diff.
func Check(guest *machine.Machine, opts core.DiffOptions) (*core.Report, error) {
	res, err := PowerDownAndCapture(guest)
	if err != nil {
		return nil, err
	}
	return HostFileCheck(guest, res, opts)
}
