package vmscan

import (
	"strings"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func guestMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	// The guest runs churn services; the VM flow must still be FP-free.
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestVMCheckZeroFalsePositives reproduces the §5 claim: the host scans
// exactly the image the guest scan saw, so a clean guest diffs clean —
// no reboot-window churn at all.
func TestVMCheckZeroFalsePositives(t *testing.T) {
	guest := guestMachine(t)
	// Let the guest churn a while first; steady-state writes must not
	// matter because both views are of the same instant.
	if err := guest.RunChurn(30); err != nil {
		t.Fatal(err)
	}
	r, err := Check(guest, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != 0 {
		t.Errorf("VM check on clean guest: hidden=%+v", r.Hidden)
	}
	// Browser downloads carry Zone.Identifier streams; those are benign
	// ADS markers, classified as noise, never findings.
	for _, f := range r.Noise {
		if !strings.HasSuffix(f.ID, ":ZONE.IDENTIFIER") {
			t.Errorf("unexpected noise entry: %+v", f)
		}
	}
	if len(r.Phantom) != 0 {
		t.Errorf("phantom = %+v", r.Phantom)
	}
}

// TestVMCheckFindsHackerDefender reproduces the §5 demo: a Hacker
// Defender-infected VM, scanned inside then from the host.
func TestVMCheckFindsHackerDefender(t *testing.T) {
	guest := guestMachine(t)
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(guest); err != nil {
		t.Fatal(err)
	}
	r, err := Check(guest, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != len(hd.HiddenFiles()) {
		t.Fatalf("hidden = %d (%+v), want %d", len(r.Hidden), r.Hidden, len(hd.HiddenFiles()))
	}
	for _, f := range r.Hidden {
		if !strings.Contains(f.ID, "HXDEF") {
			t.Errorf("unexpected finding %s", f.ID)
		}
	}
	if len(r.Noise) != 0 {
		t.Errorf("VM flow should have zero noise, got %+v", r.Noise)
	}
}

// TestCaptureTakesInsideViewFirst: the captured disk image reflects the
// exact scan moment — files created after capture don't appear.
func TestCaptureTakesInsideViewFirst(t *testing.T) {
	guest := guestMachine(t)
	res, err := PowerDownAndCapture(guest)
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.DropFile(`C:\after-capture.txt`, []byte("late")); err != nil {
		t.Fatal(err)
	}
	r, err := HostFileCheck(guest, res, core.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range append(r.Hidden, r.Noise...) {
		if strings.Contains(f.ID, "AFTER-CAPTURE") {
			t.Error("post-capture file leaked into the host view")
		}
	}
}
