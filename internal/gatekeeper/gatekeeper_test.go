package gatekeeper

import (
	"strings"
	"testing"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func smallMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNoChangesOnIdleMachine(t *testing.T) {
	m := smallMachine(t)
	b, err := Take(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Check(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Changes) != 0 {
		t.Errorf("idle machine changes: %+v", r.Changes)
	}
}

func TestBenignInstallFlaggedForReview(t *testing.T) {
	m := smallMachine(t)
	b, err := Take(m)
	if err != nil {
		t.Fatal(err)
	}
	// A legitimate updater registers a visible Run hook.
	if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
		"AcmeUpdater", `C:\Program Files\Acme\update.exe`); err != nil {
		t.Fatal(err)
	}
	r, err := Check(m, b)
	if err != nil {
		t.Fatal(err)
	}
	added := r.AddedHooks()
	if len(added) != 1 || added[0].Hidden {
		t.Fatalf("added = %+v", added)
	}
	if !strings.Contains(added[0].Severity(), "review") {
		t.Errorf("severity = %s", added[0].Severity())
	}
	if len(r.HiddenAdditions()) != 0 {
		t.Error("visible hook must not be critical")
	}
}

// TestHidingRootkitIsCritical: a Hacker Defender install adds hooks AND
// hides them — Gatekeeper + GhostBuster correlation marks them CRITICAL.
func TestHidingRootkitIsCritical(t *testing.T) {
	m := smallMachine(t)
	b, err := Take(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ghostware.NewHackerDefender().Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := Check(m, b)
	if err != nil {
		t.Fatal(err)
	}
	critical := r.HiddenAdditions()
	if len(critical) != 2 {
		t.Fatalf("critical additions = %+v", critical)
	}
	for _, c := range critical {
		if !strings.Contains(c.Severity(), "CRITICAL") {
			t.Errorf("severity = %s", c.Severity())
		}
		if !strings.Contains(c.ID, "HACKERDEFENDER") {
			t.Errorf("unexpected critical hook %s", c.ID)
		}
	}
}

func TestRemovalReported(t *testing.T) {
	m := smallMachine(t)
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}
	b, err := Take(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range hd.HiddenASEPs() {
		if err := m.Reg.DeleteKeyTree(key); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Check(m, b)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, c := range r.Changes {
		if !c.Added {
			removed++
			if !strings.Contains(c.Severity(), "info") {
				t.Errorf("removal severity = %s", c.Severity())
			}
		}
	}
	if removed != 2 {
		t.Errorf("removals = %d, want 2", removed)
	}
}
