// Package gatekeeper models the companion system the paper builds on
// [WRV+04] ("Gatekeeper: Monitoring Auto-Start Extensibility Points
// (ASEPs) for Spyware Management"): a cross-TIME monitor over the ASEP
// catalog. It baselines the machine's auto-start hooks and reports any
// additions or removals — catching hiding and non-hiding auto-start
// malware alike, at the cost of flagging every legitimate install too.
//
// Combined with GhostBuster the two compose: Gatekeeper says *a hook was
// added*; the cross-view diff says *and it is being hidden* — the
// highest-severity signal a monitor can produce.
package gatekeeper

import (
	"fmt"
	"sort"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/registry"
)

// Baseline is a point-in-time record of every ASEP hook (taken from the
// truth — raw hive parse — so hiding cannot poison the baseline).
type Baseline struct {
	Hooks map[string]string // hook ID -> rendered form
}

// Take records the current ASEP hook population.
func Take(m *machine.Machine) (*Baseline, error) {
	hooks, err := collectTruth(m)
	if err != nil {
		return nil, err
	}
	b := &Baseline{Hooks: map[string]string{}}
	for _, h := range hooks {
		b.Hooks[h.ID()] = h.String()
	}
	return b, nil
}

func collectTruth(m *machine.Machine) ([]registry.Hook, error) {
	q := func(keyPath string) (registry.KeyView, error) {
		subs, err := m.Reg.EnumKeys(keyPath)
		if err != nil {
			return registry.KeyView{}, err
		}
		vals, err := m.Reg.EnumValues(keyPath)
		if err != nil {
			return registry.KeyView{}, err
		}
		view := registry.KeyView{Subkeys: subs}
		for _, v := range vals {
			view.Values = append(view.Values, registry.ValueView{Name: v.Name, Data: v.String()})
		}
		return view, nil
	}
	return registry.CollectHooks(q, registry.StandardASEPs())
}

// Change is one ASEP population difference.
type Change struct {
	ID      string
	Display string
	Added   bool // false = removed
	// Hidden is set when the added hook is also invisible to the Win32
	// view — a hiding auto-start hook, the worst case.
	Hidden bool
}

// Report is a Gatekeeper monitoring result.
type Report struct {
	Changes []Change
}

// AddedHooks returns only the additions.
func (r *Report) AddedHooks() []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.Added {
			out = append(out, c)
		}
	}
	return out
}

// HiddenAdditions returns additions that are also hidden from the API
// view — the GhostBuster-correlated high-severity subset.
func (r *Report) HiddenAdditions() []Change {
	var out []Change
	for _, c := range r.Changes {
		if c.Added && c.Hidden {
			out = append(out, c)
		}
	}
	return out
}

// Check compares the current hook population against the baseline and
// correlates additions with the cross-view diff.
func Check(m *machine.Machine, baseline *Baseline) (*Report, error) {
	current, err := collectTruth(m)
	if err != nil {
		return nil, err
	}
	// Which hooks are hidden right now?
	hiddenIDs := map[string]bool{}
	asepReport, err := core.NewDetector(m).ScanASEPs()
	if err != nil {
		return nil, fmt.Errorf("gatekeeper: correlating with cross-view diff: %w", err)
	}
	for _, f := range asepReport.Hidden {
		hiddenIDs[f.ID] = true
	}

	r := &Report{}
	seen := map[string]bool{}
	for _, h := range current {
		id := h.ID()
		seen[id] = true
		if _, existed := baseline.Hooks[id]; !existed {
			r.Changes = append(r.Changes, Change{ID: id, Display: h.String(), Added: true, Hidden: hiddenIDs[id]})
		}
	}
	for id, display := range baseline.Hooks {
		if !seen[id] {
			r.Changes = append(r.Changes, Change{ID: id, Display: display, Added: false})
		}
	}
	sort.Slice(r.Changes, func(i, j int) bool { return r.Changes[i].ID < r.Changes[j].ID })
	return r, nil
}

// Severity classifies a change for triage.
func (c Change) Severity() string {
	switch {
	case c.Added && c.Hidden:
		return "CRITICAL (new auto-start hook, actively hidden)"
	case c.Added:
		return "review (new auto-start hook)"
	default:
		return "info (hook removed)"
	}
}

// String renders the change.
func (c Change) String() string {
	verb := "added"
	if !c.Added {
		verb = "removed"
	}
	return fmt.Sprintf("%s: %s [%s]", verb, strings.ReplaceAll(c.Display, "\x00", `\0`), c.Severity())
}
