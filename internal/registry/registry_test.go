package registry

import (
	"errors"
	"strings"
	"testing"

	"ghostbuster/internal/hive"
)

func mustRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestStandardSkeleton(t *testing.T) {
	r := mustRegistry(t)
	wantKeys := []string{
		`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\SYSTEM\CurrentControlSet\Services`,
		`HKU\.DEFAULT\Software\Microsoft\Windows\CurrentVersion\Run`,
	}
	for _, k := range wantKeys {
		if !r.KeyExists(k) {
			t.Errorf("missing skeleton key %s", k)
		}
	}
	v, err := r.GetValue(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`, "AppInit_DLLs")
	if err != nil || v.String() != "" {
		t.Errorf("AppInit_DLLs = %q, err %v", v.String(), err)
	}
}

func TestResolveMatchesLongestRoot(t *testing.T) {
	r := mustRegistry(t)
	h, sub, err := r.Resolve(`HKLM\SOFTWARE\Microsoft`)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "SOFTWARE" || sub != "Microsoft" {
		t.Errorf("Resolve = %s %q", h.Name(), sub)
	}
	h, sub, err = r.Resolve(`hklm\system\CurrentControlSet`)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "SYSTEM" || sub != "CurrentControlSet" {
		t.Errorf("case-insensitive Resolve = %s %q", h.Name(), sub)
	}
	if _, _, err := r.Resolve(`HKCR\clsid`); !errors.Is(err, ErrNoHive) {
		t.Errorf("unmounted root = %v", err)
	}
}

func TestFullPathOperations(t *testing.T) {
	r := mustRegistry(t)
	key := `HKLM\SYSTEM\CurrentControlSet\Services\HackerDefender100`
	if err := r.CreateKey(key); err != nil {
		t.Fatal(err)
	}
	if err := r.SetString(key, "ImagePath", `C:\hxdef\hxdef100.exe`); err != nil {
		t.Fatal(err)
	}
	v, err := r.GetValue(key, "imagepath")
	if err != nil || v.String() != `C:\hxdef\hxdef100.exe` {
		t.Errorf("GetValue = %q err %v", v.String(), err)
	}
	keys, err := r.EnumKeys(`HKLM\SYSTEM\CurrentControlSet\Services`)
	if err != nil || len(keys) != 1 {
		t.Errorf("EnumKeys = %v err %v", keys, err)
	}
	if err := r.DeleteValue(key, "ImagePath"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteKeyTree(key); err != nil {
		t.Fatal(err)
	}
	if r.KeyExists(key) {
		t.Error("key should be gone")
	}
}

func TestMountUnmount(t *testing.T) {
	r := mustRegistry(t)
	extra := hive.New("MOUNTED")
	r.Mount(`HKLM\MOUNTED`, extra)
	if err := r.CreateKey(`HKLM\MOUNTED\sub`); err != nil {
		t.Fatal(err)
	}
	if !r.KeyExists(`HKLM\MOUNTED\sub`) {
		t.Error("mounted hive not reachable")
	}
	r.Unmount(`HKLM\MOUNTED`)
	if r.KeyExists(`HKLM\MOUNTED\sub`) {
		t.Error("unmounted hive still reachable")
	}
	if len(r.Roots()) != 3 {
		t.Errorf("roots = %v", r.Roots())
	}
}

// regQuery adapts a Registry directly to a QueryFunc (an unhooked,
// configuration-manager-level vantage point for tests).
func regQuery(r *Registry) QueryFunc {
	return func(keyPath string) (KeyView, error) {
		subs, err := r.EnumKeys(keyPath)
		if err != nil {
			return KeyView{}, err
		}
		vals, err := r.EnumValues(keyPath)
		if err != nil {
			return KeyView{}, err
		}
		view := KeyView{Subkeys: subs}
		for _, v := range vals {
			view.Values = append(view.Values, ValueView{Name: v.Name, Data: v.String()})
		}
		return view, nil
	}
}

func TestCollectHooksAllKinds(t *testing.T) {
	r := mustRegistry(t)
	// Service hook (subkey kind).
	svc := `HKLM\SYSTEM\CurrentControlSet\Services\Vanquish`
	if err := r.CreateKey(svc); err != nil {
		t.Fatal(err)
	}
	if err := r.SetString(svc, "ImagePath", `C:\WINDOWS\vanquish.exe`); err != nil {
		t.Fatal(err)
	}
	// Run hook (values kind).
	if err := r.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`, "probot", `C:\WINDOWS\system32\pb.exe`); err != nil {
		t.Fatal(err)
	}
	// AppInit hook (named value kind).
	if err := r.SetString(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`, "AppInit_DLLs", "msvsres.dll"); err != nil {
		t.Fatal(err)
	}
	hooks, err := CollectHooks(regQuery(r), StandardASEPs())
	if err != nil {
		t.Fatal(err)
	}
	byASEP := map[string][]Hook{}
	for _, h := range hooks {
		byASEP[h.ASEP] = append(byASEP[h.ASEP], h)
	}
	if len(byASEP["Services"]) != 1 || byASEP["Services"][0].Data != `C:\WINDOWS\vanquish.exe` {
		t.Errorf("Services hooks = %+v", byASEP["Services"])
	}
	if len(byASEP["Run"]) != 1 || byASEP["Run"][0].ValueName != "probot" {
		t.Errorf("Run hooks = %+v", byASEP["Run"])
	}
	if len(byASEP["AppInit_DLLs"]) != 1 || byASEP["AppInit_DLLs"][0].Data != "msvsres.dll" {
		t.Errorf("AppInit hooks = %+v", byASEP["AppInit_DLLs"])
	}
	// Empty AppInit_DLLs must NOT count as a hook (stock machines have
	// the empty value).
	if err := r.SetString(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`, "AppInit_DLLs", ""); err != nil {
		t.Fatal(err)
	}
	hooks, err = CollectHooks(regQuery(r), StandardASEPs())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hooks {
		if h.ASEP == "AppInit_DLLs" {
			t.Error("empty AppInit_DLLs should not be a hook")
		}
	}
}

func TestCollectHooksSkipsMissingKeys(t *testing.T) {
	r := mustRegistry(t)
	if err := r.DeleteKeyTree(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\RunOnce`); err != nil {
		t.Fatal(err)
	}
	if _, err := CollectHooks(regQuery(r), StandardASEPs()); err != nil {
		t.Errorf("missing catalog key should be skipped, got %v", err)
	}
}

func TestHookIDAndString(t *testing.T) {
	h := Hook{ASEP: "Run", KeyPath: `HKLM\SOFTWARE\...\Run`, ValueName: "evil\x00hidden", Data: "evil.exe"}
	if !strings.Contains(h.String(), `\0`) {
		t.Errorf("String should escape NULs: %q", h.String())
	}
	h2 := h
	h2.ValueName = "evil"
	if h.ID() == h2.ID() {
		t.Error("NUL-differing names must have distinct IDs")
	}
	if h.ID() != strings.ToUpper(h.ID()) {
		t.Error("ID should be case-folded")
	}
}

func TestUnopenableSubkeyStillCountsAsHook(t *testing.T) {
	// A service subkey that is listed but cannot be opened (e.g. the
	// ghostware filters the open) must still surface as a hook.
	q := func(keyPath string) (KeyView, error) {
		if strings.HasSuffix(keyPath, "Services") {
			return KeyView{Subkeys: []string{"Locked"}}, nil
		}
		return KeyView{}, errors.New("access denied")
	}
	catalog := []ASEP{{Name: "Services", KeyPath: `HKLM\SYSTEM\CurrentControlSet\Services`, Kind: ASEPSubkeys, TargetValue: "ImagePath"}}
	hooks, err := CollectHooks(q, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(hooks) != 1 || !strings.HasSuffix(hooks[0].KeyPath, "Locked") {
		t.Errorf("hooks = %+v", hooks)
	}
}
