// Package registry provides the Windows Registry façade over hive files:
// root-to-hive mounting and full-path operations (the configuration
// manager role), plus the Auto-Start Extensibility Point (ASEP) catalog
// that GhostBuster's Registry scans target.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ghostbuster/internal/hive"
)

// Standard hive mount points.
const (
	RootSoftware = `HKLM\SOFTWARE`
	RootSystem   = `HKLM\SYSTEM`
	RootUser     = `HKU\.DEFAULT` // stands in for the per-user ntuser.dat hive
)

// ErrNoHive reports a path that does not fall under any mounted hive.
var ErrNoHive = errors.New("registry: path not under a mounted hive")

// Registry is a set of mounted hives addressed by full key paths such as
// "HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run".
//
// The mount table is guarded by a read-write lock; per-key operations
// additionally synchronize on the resolved hive's own lock, so scans may
// read concurrently with ghostware committing Registry changes.
type Registry struct {
	mu     sync.RWMutex
	mounts map[string]*hive.Hive // upper-cased root -> hive
	roots  []string              // display-cased, sorted long-to-short for matching
	gen    uint64                // mount-table generation, see Generation
}

// New creates a registry with the three standard hives mounted and the
// well-known key skeleton created.
func New() (*Registry, error) {
	r := &Registry{mounts: map[string]*hive.Hive{}}
	r.Mount(RootSoftware, hive.New("SOFTWARE"))
	r.Mount(RootSystem, hive.New("SYSTEM"))
	r.Mount(RootUser, hive.New("NTUSER.DAT"))
	skeleton := []string{
		`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\RunOnce`,
		`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Explorer\Browser Helper Objects`,
		`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`,
		`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Winlogon`,
		`HKLM\SYSTEM\CurrentControlSet\Services`,
		`HKLM\SYSTEM\CurrentControlSet\Control`,
		`HKU\.DEFAULT\Software\Microsoft\Windows\CurrentVersion\Run`,
	}
	for _, k := range skeleton {
		if err := r.CreateKey(k); err != nil {
			return nil, err
		}
	}
	// AppInit_DLLs exists (empty) on a stock system.
	if err := r.SetValue(`HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`, hive.StringValue("AppInit_DLLs", "")); err != nil {
		return nil, err
	}
	return r, nil
}

// Generation returns the mount-table generation: bumped whenever a hive
// is mounted or unmounted. Combined with the per-hive generations it
// lets incremental scanners detect any change to the Registry's backing
// bytes, including swapping a whole hive for a different one.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Mount attaches a hive at root, replacing any previous mount.
func (r *Registry) Mount(root string, h *hive.Hive) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	key := strings.ToUpper(root)
	if _, exists := r.mounts[key]; !exists {
		r.roots = append(r.roots, root)
		sort.Slice(r.roots, func(i, j int) bool { return len(r.roots[i]) > len(r.roots[j]) })
	}
	r.mounts[key] = h
}

// Unmount detaches the hive at root.
func (r *Registry) Unmount(root string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	key := strings.ToUpper(root)
	delete(r.mounts, key)
	for i, existing := range r.roots {
		if strings.ToUpper(existing) == key {
			r.roots = append(r.roots[:i], r.roots[i+1:]...)
			return
		}
	}
}

// Roots returns the mounted root paths.
func (r *Registry) Roots() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.roots...)
}

// HiveAt returns the hive mounted at root.
func (r *Registry) HiveAt(root string) (*hive.Hive, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.mounts[strings.ToUpper(root)]
	return h, ok
}

// Resolve splits a full key path into its mounted hive and the
// hive-relative subpath.
func (r *Registry) Resolve(keyPath string) (*hive.Hive, string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	up := strings.ToUpper(keyPath)
	for _, root := range r.roots {
		upRoot := strings.ToUpper(root)
		if up == upRoot {
			return r.mounts[upRoot], "", nil
		}
		if strings.HasPrefix(up, upRoot+`\`) {
			return r.mounts[upRoot], keyPath[len(root)+1:], nil
		}
	}
	return nil, "", fmt.Errorf("%w: %s", ErrNoHive, keyPath)
}

// CreateKey creates a key (and intermediates) at a full path.
func (r *Registry) CreateKey(keyPath string) error {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return err
	}
	return h.CreateKey(sub)
}

// KeyExists reports whether the full key path resolves.
func (r *Registry) KeyExists(keyPath string) bool {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return false
	}
	return h.KeyExists(sub)
}

// SetValue sets a value at a full key path.
func (r *Registry) SetValue(keyPath string, v hive.Value) error {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return err
	}
	return h.SetValue(sub, v)
}

// SetString sets a REG_SZ value at a full key path.
func (r *Registry) SetString(keyPath, name, data string) error {
	return r.SetValue(keyPath, hive.StringValue(name, data))
}

// GetValue reads a value at a full key path.
func (r *Registry) GetValue(keyPath, name string) (hive.Value, error) {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return hive.Value{}, err
	}
	return h.GetValue(sub, name)
}

// DeleteValue removes a value at a full key path.
func (r *Registry) DeleteValue(keyPath, name string) error {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return err
	}
	return h.DeleteValue(sub, name)
}

// DeleteKeyTree removes a key and its descendants at a full path.
func (r *Registry) DeleteKeyTree(keyPath string) error {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return err
	}
	return h.DeleteKeyTree(sub)
}

// EnumKeys lists subkey names at a full path. This is the configuration
// manager's direct answer — the base of the hookable chain.
func (r *Registry) EnumKeys(keyPath string) ([]string, error) {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return nil, err
	}
	return h.EnumKeys(sub)
}

// EnumValues lists values at a full path.
func (r *Registry) EnumValues(keyPath string) ([]hive.Value, error) {
	h, sub, err := r.Resolve(keyPath)
	if err != nil {
		return nil, err
	}
	return h.EnumValues(sub)
}
