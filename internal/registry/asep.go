package registry

import (
	"fmt"
	"strings"
)

// ASEPKind distinguishes how hooks attach at a location.
type ASEPKind int

// ASEP attachment shapes.
const (
	// ASEPValues: each value under the key is one hook (Run keys).
	ASEPValues ASEPKind = iota + 1
	// ASEPSubkeys: each subkey is one hook, its launch target read from
	// a well-known value (Services → ImagePath, BHO → InprocServer32).
	ASEPSubkeys
	// ASEPNamedValue: a single well-known value whose data is the hook
	// (AppInit_DLLs, Winlogon Shell/Userinit).
	ASEPNamedValue
)

// ASEP describes one Auto-Start Extensibility Point [WRV+04].
type ASEP struct {
	Name        string
	KeyPath     string
	Kind        ASEPKind
	ValueName   string // for ASEPNamedValue
	TargetValue string // for ASEPSubkeys: value naming the started image
	Description string
}

// StandardASEPs returns the catalog GhostBuster scans — the Registry
// locations the paper names (§3) plus the common Winlogon points.
func StandardASEPs() []ASEP {
	return []ASEP{
		{
			Name:        "Services",
			KeyPath:     `HKLM\SYSTEM\CurrentControlSet\Services`,
			Kind:        ASEPSubkeys,
			TargetValue: "ImagePath",
			Description: "auto-starting drivers and services",
		},
		{
			Name:        "Run",
			KeyPath:     `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
			Kind:        ASEPValues,
			Description: "auto-starting processes",
		},
		{
			Name:        "RunOnce",
			KeyPath:     `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\RunOnce`,
			Kind:        ASEPValues,
			Description: "single-shot auto-start",
		},
		{
			Name:        "UserRun",
			KeyPath:     `HKU\.DEFAULT\Software\Microsoft\Windows\CurrentVersion\Run`,
			Kind:        ASEPValues,
			Description: "per-user auto-starting processes",
		},
		{
			Name:        "AppInit_DLLs",
			KeyPath:     `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`,
			Kind:        ASEPNamedValue,
			ValueName:   "AppInit_DLLs",
			Description: "DLLs loaded into every process that loads User32.dll [AID]",
		},
		{
			Name:        "WinlogonShell",
			KeyPath:     `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Winlogon`,
			Kind:        ASEPNamedValue,
			ValueName:   "Shell",
			Description: "shell replacement",
		},
		{
			Name:        "WinlogonUserinit",
			KeyPath:     `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Winlogon`,
			Kind:        ASEPNamedValue,
			ValueName:   "Userinit",
			Description: "logon initialization program",
		},
		{
			Name:        "BHO",
			KeyPath:     `HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Explorer\Browser Helper Objects`,
			Kind:        ASEPSubkeys,
			TargetValue: "DllPath",
			Description: "DLLs auto-loaded into Internet Explorer",
		},
	}
}

// Hook is one concrete ASEP hook: a Registry entry that causes code to
// run automatically. Its identity (ID) is what cross-view diffs compare.
type Hook struct {
	ASEP      string // catalog entry name
	KeyPath   string // full key holding the hook
	ValueName string // value naming/launching the hooked code ("" for key-only)
	Data      string // launch target (image path, DLL list, command line)
}

// ID returns the canonical identity used in diffs: key path plus value
// name, upper-cased. Embedded NULs are preserved — two names differing
// only past a NUL are different hooks.
func (h Hook) ID() string {
	return strings.ToUpper(h.KeyPath) + " -> " + strings.ToUpper(h.ValueName)
}

// String renders the hook the way Figure 4 prints them.
func (h Hook) String() string {
	name := strings.ReplaceAll(h.ValueName, "\x00", `\0`)
	if h.Data != "" {
		return fmt.Sprintf("%s\\%s -> %s", h.KeyPath, name, h.Data)
	}
	return fmt.Sprintf("%s\\%s", h.KeyPath, name)
}

// KeyView is a point-in-time view of one key, as some scanner sees it.
type KeyView struct {
	Subkeys []string
	Values  []ValueView
}

// ValueView is one value as some scanner sees it.
type ValueView struct {
	Name string
	Data string
}

// QueryFunc answers "what does this key contain?" from a particular
// vantage point: the Win32 chain (high level), the Native chain, a raw
// hive parse (low level), or a WinPE mount (outside). CollectHooks is
// agnostic to which.
type QueryFunc func(keyPath string) (KeyView, error)

// CollectHooks walks the ASEP catalog through q and returns every hook
// visible from that vantage point. Missing catalog keys are skipped (a
// stock machine may not have every ASEP populated).
func CollectHooks(q QueryFunc, catalog []ASEP) ([]Hook, error) {
	var out []Hook
	for _, a := range catalog {
		view, err := q(a.KeyPath)
		if err != nil {
			continue // key absent from this view
		}
		switch a.Kind {
		case ASEPValues:
			for _, v := range view.Values {
				out = append(out, Hook{ASEP: a.Name, KeyPath: a.KeyPath, ValueName: v.Name, Data: v.Data})
			}
		case ASEPSubkeys:
			for _, sub := range view.Subkeys {
				subPath := a.KeyPath + `\` + sub
				subView, err := q(subPath)
				if err != nil {
					// The subkey was listed but cannot be opened — count
					// the key itself as a hook with unknown target.
					out = append(out, Hook{ASEP: a.Name, KeyPath: subPath})
					continue
				}
				data := ""
				for _, v := range subView.Values {
					if strings.EqualFold(v.Name, a.TargetValue) {
						data = v.Data
					}
				}
				out = append(out, Hook{ASEP: a.Name, KeyPath: subPath, ValueName: a.TargetValue, Data: data})
			}
		case ASEPNamedValue:
			for _, v := range view.Values {
				if strings.EqualFold(v.Name, a.ValueName) && v.Data != "" {
					out = append(out, Hook{ASEP: a.Name, KeyPath: a.KeyPath, ValueName: v.Name, Data: v.Data})
				}
			}
		default:
			return nil, fmt.Errorf("registry: unknown ASEP kind %d", a.Kind)
		}
	}
	return out, nil
}
