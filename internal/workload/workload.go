// Package workload synthesizes the paper's evaluation machines: the 8
// hosts of §2 (4 corporate desktops, 3 home machines, 1 laptop, spanning
// 5–34 GB of disk usage and 550 MHz–2.2 GHz, plus the dual-proc 3 GHz
// workstation with 95 GB used), and the population generators that fill
// a machine with files and Registry noise so scans have realistic work.
package workload

import (
	"fmt"
	"time"

	"ghostbuster/internal/hive"
	"ghostbuster/internal/machine"
)

// PaperMachines returns profiles for the paper's test fleet. Disk and
// CPU figures are drawn from the ranges the paper reports; per-machine
// specifics are synthetic.
func PaperMachines() []machine.Profile {
	base := func(name, kind string, usedGB float64, mhz int, churn []machine.ChurnKind) machine.Profile {
		return machine.Profile{
			Name: name, Kind: kind,
			DiskGB: usedGB * 2, DiskUsedGB: usedGB, CPUMHz: mhz,
			FilesPerGB: 30, RealFilesPerGB: 1500,
			RegNoiseKeys: 800, RealRegKeys: 80000, DiskMBps: 25,
			RebootTime: 2 * time.Minute, Seed: ProfileSeed(name),
			Churn: churn,
		}
	}
	std := []machine.ChurnKind{machine.ChurnAVLogger, machine.ChurnPrefetch, machine.ChurnSystemRestore, machine.ChurnBrowserTemp}
	withCCM := append(append([]machine.ChurnKind(nil), std...), machine.ChurnCCM)
	profiles := []machine.Profile{
		base("corp-1", "corporate desktop", 12, 2200, std),
		base("corp-2", "corporate desktop", 18, 1800, std),
		base("corp-3", "corporate desktop", 26, 2000, std),
		base("corp-4", "corporate desktop", 34, 1500, withCCM), // the 7-FP machine
		base("home-1", "home machine", 5, 550, std),
		base("home-2", "home machine", 8, 800, std),
		base("home-3", "home machine", 14, 1200, std),
		base("laptop", "laptop", 10, 1000, std),
	}
	// The 8th machine in the paper's timing discussion: a dual-proc
	// 3 GHz workstation with 95 GB of 111 GB used (38-minute scan).
	ws := base("workstation", "dual-proc workstation", 95, 3000, std)
	ws.DiskGB = 111
	ws.RealFilesPerGB = 4000 // developer box: far denser file population
	ws.RealRegKeys = 150000
	profiles = append(profiles, ws)
	return profiles
}

// ProfileSeed derives a machine RNG seed from the full profile name
// with FNV-1a, so every catalog profile gets its own stream. (The old
// len(name)*7919 scheme handed identical streams to any two same-length
// names — corp-1 and home-1 populated byte-identically.)
func ProfileSeed(name string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int64(h)
}

// SmallProfile returns a fast profile for tests and examples.
func SmallProfile() machine.Profile {
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.RegNoiseKeys = 100
	return p
}

// FuzzProfile derives a randomized machine profile for ghostfuzz cases:
// small enough that a case builds in milliseconds, varied enough (disk
// usage, CPU speed, Registry noise, churn mix) that detector invariants
// get exercised across machine shapes. Fully determined by seed.
func FuzzProfile(seed int64) machine.Profile {
	p := machine.DefaultProfile()
	// Cheap splitmix-style mixing; must not consult wall clock or
	// global RNG so the same seed always yields the same profile.
	mix := uint64(seed) * 0x9e3779b97f4a7c15
	mix ^= mix >> 31
	mix *= 0xbf58476d1ce4e5b9
	mix ^= mix >> 29
	p.Name = fmt.Sprintf("fuzz-%d", seed)
	p.Kind = "ghostfuzz host"
	p.DiskUsedGB = 0.25 + float64(mix%4)*0.25 // 0.25–1 GB
	p.DiskGB = p.DiskUsedGB * 2
	p.CPUMHz = 550 + int(mix>>2%8)*350
	p.RegNoiseKeys = 40 + int(mix>>5%4)*40
	p.Churn = []machine.ChurnKind{machine.ChurnAVLogger, machine.ChurnPrefetch, machine.ChurnSystemRestore, machine.ChurnBrowserTemp}
	if mix>>7%3 == 0 {
		p.Churn = append(p.Churn, machine.ChurnCCM)
	}
	// Small NTFS headroom keeps device images ~14 MB instead of ~50 MB.
	p.MFTHeadroom = 1024
	p.ClusterHeadroom = 2048
	p.Seed = ProfileSeed(p.Name)
	return p
}

// NewPaperMachine builds and populates one of the paper's machines.
func NewPaperMachine(p machine.Profile) (*machine.Machine, error) {
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	if err := Populate(m); err != nil {
		return nil, err
	}
	return m, nil
}

var populationDirs = []string{
	`C:\Program Files`,
	`C:\WINDOWS\system32`,
	`C:\Documents and Settings\user\My Documents`,
	`C:\Documents and Settings\user\Application Data`,
	`C:\data`,
}

var fileExts = []string{".dll", ".exe", ".dat", ".txt", ".doc", ".ini", ".log", ".xml", ".htm", ".jpg"}

// Populate fills the machine's disk and Registry according to its
// profile: DiskUsedGB*FilesPerGB files across a realistic directory
// layout (declared sizes sum to the profile's disk usage) and
// RegNoiseKeys Registry keys.
func Populate(m *machine.Machine) error {
	p := m.Profile
	targetFiles := int(p.DiskUsedGB * float64(p.FilesPerGB))
	existing := m.Disk.FileCount()
	toCreate := targetFiles - existing
	if toCreate < 0 {
		toCreate = 0
	}
	var avgSize uint64
	if toCreate > 0 {
		avgSize = uint64(p.DiskUsedGB * float64(1<<30) / float64(toCreate))
	}
	rng := m.Rand
	for i := 0; i < toCreate; i++ {
		dir := populationDirs[rng.Intn(len(populationDirs))]
		// Two levels of subdirectories keep directory fan-out realistic.
		sub := fmt.Sprintf(`%s\app%02d\part%d`, dir, rng.Intn(40), rng.Intn(4))
		name := fmt.Sprintf("file%06d%s", i, fileExts[rng.Intn(len(fileExts))])
		size := avgSize/2 + uint64(rng.Int63n(int64(avgSize)+1))
		if err := m.DropFileSized(sub+`\`+name, []byte("data"), size); err != nil {
			return fmt.Errorf("workload: populating %s: %w", name, err)
		}
	}
	// Registry noise: vendor settings trees plus benign ASEP entries
	// (they appear identically in both views, so they are diff-neutral).
	for i := 0; i < p.RegNoiseKeys; i++ {
		key := fmt.Sprintf(`HKLM\SOFTWARE\Vendor%02d\App%d\Settings%d`, rng.Intn(50), rng.Intn(8), i%4)
		if err := m.Reg.CreateKey(key); err != nil {
			return err
		}
		if err := m.Reg.SetValue(key, hive.DwordValue(fmt.Sprintf("opt%d", i%7), uint32(i))); err != nil {
			return err
		}
	}
	for _, svc := range []string{"Spooler", "Themes", "AudioSrv", "wuauserv"} {
		key := `HKLM\SYSTEM\CurrentControlSet\Services\` + svc
		if err := m.Reg.CreateKey(key); err != nil {
			return err
		}
		if err := m.Reg.SetString(key, "ImagePath", `C:\WINDOWS\system32\svchost.exe -k `+svc); err != nil {
			return err
		}
	}
	if err := m.Reg.SetString(`HKLM\SOFTWARE\Microsoft\Windows\CurrentVersion\Run`,
		"SoundTray", `C:\WINDOWS\system32\soundtray.exe`); err != nil {
		return err
	}
	return nil
}
