package workload

import (
	"reflect"
	"testing"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
)

func TestPaperMachinesMatchReportedRanges(t *testing.T) {
	profiles := PaperMachines()
	if len(profiles) != 9 {
		t.Fatalf("profiles = %d, want 8 + workstation", len(profiles))
	}
	kinds := map[string]int{}
	for _, p := range profiles[:8] {
		kinds[p.Kind]++
		if p.DiskUsedGB < 5 || p.DiskUsedGB > 34 {
			t.Errorf("%s: disk usage %g GB outside the paper's 5-34 range", p.Name, p.DiskUsedGB)
		}
		if p.CPUMHz < 550 || p.CPUMHz > 2200 {
			t.Errorf("%s: CPU %d MHz outside 550-2200", p.Name, p.CPUMHz)
		}
	}
	if kinds["corporate desktop"] != 4 || kinds["home machine"] != 3 || kinds["laptop"] != 1 {
		t.Errorf("fleet mix = %v, want 4 corporate + 3 home + 1 laptop", kinds)
	}
	ws := profiles[8]
	if ws.DiskUsedGB != 95 || ws.DiskGB != 111 || ws.CPUMHz != 3000 {
		t.Errorf("workstation = %+v", ws)
	}
}

// TestProfileSeedsDistinct: the old len(name)*7919 scheme gave corp-1
// and home-1 (same length) identical RNG streams; seeds must now be
// pairwise distinct across the catalog.
func TestProfileSeedsDistinct(t *testing.T) {
	profiles := PaperMachines()
	seen := map[int64]string{}
	for _, p := range profiles {
		if prev, dup := seen[p.Seed]; dup {
			t.Errorf("profiles %s and %s share seed %d", prev, p.Name, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
	if ProfileSeed("corp-1") == ProfileSeed("home-1") {
		t.Error("same-length names still collide")
	}
}

// TestFuzzProfileDeterministic: FuzzProfile is a pure function of seed,
// and different seeds vary the machine shape.
func TestFuzzProfileDeterministic(t *testing.T) {
	a, b := FuzzProfile(42), FuzzProfile(42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("FuzzProfile(42) not deterministic:\n%+v\n%+v", a, b)
	}
	varied := false
	base := FuzzProfile(0)
	for s := int64(1); s < 8; s++ {
		p := FuzzProfile(s)
		if p.Seed == base.Seed {
			t.Errorf("FuzzProfile(%d) shares seed with FuzzProfile(0)", s)
		}
		if p.DiskUsedGB != base.DiskUsedGB || p.CPUMHz != base.CPUMHz {
			varied = true
		}
	}
	if !varied {
		t.Error("FuzzProfile shape never varies across seeds 0-7")
	}
}

func TestPopulateCreatesTargetPopulation(t *testing.T) {
	p := SmallProfile()
	p.Churn = nil
	m, err := NewPaperMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	want := int(p.DiskUsedGB * float64(p.FilesPerGB))
	if got := m.Disk.FileCount(); got < want {
		t.Errorf("file count = %d, want at least %d", got, want)
	}
	// Declared usage should land near the profile's disk usage.
	used := float64(m.Disk.UsedBytes()) / float64(1<<30)
	if used < p.DiskUsedGB*0.4 || used > p.DiskUsedGB*2.5 {
		t.Errorf("declared usage = %.2f GB, profile says %.2f GB", used, p.DiskUsedGB)
	}
}

func TestPopulatedMachineScansClean(t *testing.T) {
	p := SmallProfile()
	p.Churn = nil
	m, err := NewPaperMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	d := core.NewDetector(m)
	d.Advanced = true
	reports, err := d.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Infected() {
			t.Errorf("populated clean machine: %s hidden = %+v", r.Kind, r.Hidden[:capInt(3, len(r.Hidden))])
		}
	}
}

func TestPopulatedMachineDetectsMalware(t *testing.T) {
	p := SmallProfile()
	p.Churn = nil
	m, err := NewPaperMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hidden) != len(hd.HiddenFiles()) {
		t.Errorf("hidden = %d, want %d", len(r.Hidden), len(hd.HiddenFiles()))
	}
}

// TestScanTimeShapeAcrossFleet: scan time must grow with disk usage and
// the workstation must dominate everything (the paper's 38-minute
// outlier). Using reduced populations keeps the test fast while the
// virtual-time model preserves the shape.
func TestScanTimeShapeAcrossFleet(t *testing.T) {
	profiles := PaperMachines()
	pick := map[string]bool{"home-1": true, "corp-4": true, "workstation": true}
	elapsed := map[string]float64{}
	for _, p := range profiles {
		if !pick[p.Name] {
			continue
		}
		p.FilesPerGB = 10 // lighter population, same represented density
		m, err := NewPaperMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		high, err := core.ScanFilesHigh(m, m.SystemCall())
		if err != nil {
			t.Fatal(err)
		}
		low, err := core.ScanFilesLow(m)
		if err != nil {
			t.Fatal(err)
		}
		elapsed[p.Name] = (high.Elapsed + low.Elapsed).Seconds()
	}
	if !(elapsed["home-1"] < elapsed["corp-4"] && elapsed["corp-4"] < elapsed["workstation"]) {
		t.Errorf("scan-time ordering broken: %v", elapsed)
	}
	// Paper shape: small machines in the 30s-7min band, workstation far
	// beyond it.
	if elapsed["home-1"] < 10 || elapsed["corp-4"] > 600 {
		t.Errorf("small-machine scan times out of band: %v", elapsed)
	}
	if elapsed["workstation"] < 600 {
		t.Errorf("workstation should be a many-minute outlier: %v", elapsed)
	}
}

func capInt(limit, n int) int {
	if n < limit {
		return n
	}
	return limit
}
