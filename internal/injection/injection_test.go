package injection

import (
	"strings"
	"testing"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func smallMachine(t *testing.T) *machine.Machine {
	t.Helper()
	p := machine.DefaultProfile()
	p.DiskUsedGB = 1
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCleanMachineNoFindingsAnywhere(t *testing.T) {
	m := smallMachine(t)
	res, err := ScanFilesEverywhere(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infected() {
		t.Errorf("clean machine: %+v", res.Union)
	}
}

// TestInjectionDefeatsUtilityTargeting (§5): ghostware hiding only from
// Task Manager evades a plain GhostBuster.exe but not the injected
// sweep, because one of the identities IS taskmgr.exe.
func TestInjectionDefeatsUtilityTargeting(t *testing.T) {
	m := smallMachine(t)
	if err := ghostware.NewTargeted(ghostware.HideFromUtilities).Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("taskmgr.exe", `C:\WINDOWS\system32\taskmgr.exe`); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFilesEverywhere(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infected() {
		t.Fatal("injected sweep missed the targeting ghostware")
	}
	foundVia := ""
	for _, pp := range res.PerProc {
		for _, f := range pp.Hidden {
			if strings.Contains(f.ID, "SECRET-PAYLOAD") {
				foundVia = pp.Process
			}
		}
	}
	if !strings.EqualFold(foundVia, "taskmgr.exe") && !strings.EqualFold(foundVia, "explorer.exe") &&
		!strings.EqualFold(foundVia, "cmd.exe") && !strings.EqualFold(foundVia, "regedit.exe") {
		t.Errorf("payload found via %q, expected one of the targeted utilities", foundVia)
	}
}

// TestInjectionDefeatsAntiGhostBusterTargeting (§5): hiding from
// everything except ghostbuster.exe is exposed by any other identity.
func TestInjectionDefeatsAntiGhostBusterTargeting(t *testing.T) {
	m := smallMachine(t)
	if err := ghostware.NewTargeted(ghostware.HideExceptGhostBuster).Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartProcess("ghostbuster.exe", `C:\tools\ghostbuster.exe`); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFilesEverywhere(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infected() {
		t.Fatal("injected sweep missed the anti-GhostBuster ghostware")
	}
	// And the process-hiding side too.
	procRes, err := ScanProcsEverywhere(m)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range procRes.Union {
		if strings.Contains(f.ID, "SECRET-PAYLOAD.EXE") {
			found = true
		}
	}
	if !found {
		t.Errorf("hidden process not in union: %+v", procRes.Union)
	}
}

// TestUnionDeduplicatesAcrossIdentities: ordinary (unscoped) hiding is
// seen identically by every identity; the union must not multiply it.
func TestUnionDeduplicatesAcrossIdentities(t *testing.T) {
	m := smallMachine(t)
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFilesEverywhere(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Union) != len(hd.HiddenFiles()) {
		t.Errorf("union = %d findings, want %d", len(res.Union), len(hd.HiddenFiles()))
	}
	if len(res.PerProc) < 2 {
		t.Errorf("expected several identities to see the hiding, got %d", len(res.PerProc))
	}
}

// TestASEPSweep: the injected Registry sweep works the same way.
func TestASEPSweep(t *testing.T) {
	m := smallMachine(t)
	if err := ghostware.NewUrbin().Install(m); err != nil {
		t.Fatal(err)
	}
	res, err := ScanASEPsEverywhere(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Union) != 1 || !strings.Contains(res.Union[0].ID, "APPINIT_DLLS") {
		t.Errorf("union = %+v", res.Union)
	}
}
