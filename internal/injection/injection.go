// Package injection implements the §5 GhostBuster extension against
// targeting ghostware: instead of a single GhostBuster.exe (which
// malware can special-case), a GhostBuster DLL is injected into every
// running process and the scans-and-diff run from inside each,
// "essentially turning every process into a GhostBuster". A program
// that hides from common utilities but not from GhostBuster — or vice
// versa — is exposed by whichever identity experiences the lie.
package injection

import (
	"fmt"
	"sort"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
)

// PerProcessResult records what one injected instance found.
type PerProcessResult struct {
	Process string
	Pid     uint64
	Hidden  []core.Finding
}

// Result aggregates the per-process scans.
type Result struct {
	Kind    core.ResourceKind
	PerProc []PerProcessResult
	// Union is the deduplicated set of hidden findings across all
	// identities — the overall verdict.
	Union []core.Finding
}

// Infected reports whether any injected instance saw hiding.
func (r *Result) Infected() bool { return len(r.Union) > 0 }

// ScanFilesEverywhere runs the hidden-file detection from inside every
// running process (truth view, so hidden processes scan too).
func ScanFilesEverywhere(m *machine.Machine) (*Result, error) {
	return scanEverywhere(m, core.KindFiles, func(d *core.Detector) (*core.Report, error) { return d.ScanFiles() })
}

// ScanProcsEverywhere runs the hidden-process detection from inside
// every running process.
func ScanProcsEverywhere(m *machine.Machine) (*Result, error) {
	return scanEverywhere(m, core.KindProcesses, func(d *core.Detector) (*core.Report, error) {
		d.Advanced = true
		return d.ScanProcesses()
	})
}

// ScanASEPsEverywhere runs the hidden-ASEP detection from inside every
// running process.
func ScanASEPsEverywhere(m *machine.Machine) (*Result, error) {
	return scanEverywhere(m, core.KindASEPHooks, func(d *core.Detector) (*core.Report, error) { return d.ScanASEPs() })
}

func scanEverywhere(m *machine.Machine, kind core.ResourceKind, scan func(*core.Detector) (*core.Report, error)) (*Result, error) {
	procs, err := m.Kern.ProcessesAdvanced()
	if err != nil {
		return nil, fmt.Errorf("injection: enumerating hosts: %w", err)
	}
	res := &Result{Kind: kind}
	seen := map[string]core.Finding{}
	scanned := map[string]bool{}
	for _, p := range procs {
		if p.Name == "System" || scanned[p.Name] {
			continue // one instance per image name is enough
		}
		scanned[p.Name] = true
		d := core.NewDetector(m)
		d.AsProcess = p.Name
		report, err := scan(d)
		if err != nil {
			// A process may exit mid-sweep; skip it.
			continue
		}
		if len(report.Hidden) == 0 {
			continue
		}
		res.PerProc = append(res.PerProc, PerProcessResult{Process: p.Name, Pid: p.Pid, Hidden: report.Hidden})
		for _, f := range report.Hidden {
			seen[f.ID] = f
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		res.Union = append(res.Union, seen[id])
	}
	return res, nil
}
