package supervise

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSaturated is returned by Acquire when the wait queue is full: the
// caller should shed the request (HTTP 429) rather than park it.
var ErrSaturated = errors.New("supervise: admission queue saturated")

// ErrDraining is returned by Acquire once Drain has been called: the
// gate accepts no new work while shutting down (HTTP 503).
var ErrDraining = errors.New("supervise: admission gate draining")

// Admission is a bounded admission gate: up to `slots` requests run
// concurrently, up to `queue` more wait their turn, and everything past
// that is rejected immediately with ErrSaturated. It is the daemon's
// overload valve — a stampede of sweep requests degrades into fast 429s
// instead of an unbounded goroutine pileup behind the sweep mutex.
type Admission struct {
	mu       sync.Mutex
	slots    int
	queue    int
	active   int
	waiting  int
	draining bool
	// avgHold is an EWMA of how long admitted requests held their slot,
	// used to estimate Retry-After for shed callers.
	avgHold time.Duration

	admitted int64
	shed     int64
	timedOut int64

	// waitc is closed and replaced whenever a slot frees, waking queued
	// waiters to re-contend.
	waitc chan struct{}
}

// NewAdmission builds a gate with the given concurrency and queue
// bounds. slots < 1 is clamped to 1; queue < 0 to 0.
func NewAdmission(slots, queue int) *Admission {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{slots: slots, queue: queue, waitc: make(chan struct{})}
}

// Acquire claims a slot, waiting in the bounded queue if necessary.
// On success it returns a release func that must be called exactly
// once. It fails fast with ErrSaturated when the queue is full,
// ErrDraining once Drain has begun, or ctx.Err() when the caller's
// deadline expires while queued.
func (a *Admission) Acquire(ctx context.Context) (func(), error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, ErrDraining
	}
	if a.active < a.slots {
		a.active++
		a.admitted++
		start := time.Now()
		a.mu.Unlock()
		return func() { a.release(start) }, nil
	}
	if a.waiting >= a.queue {
		a.shed++
		a.mu.Unlock()
		return nil, ErrSaturated
	}
	a.waiting++
	for {
		wait := a.waitc
		a.mu.Unlock()
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.waiting--
			a.timedOut++
			a.mu.Unlock()
			return nil, ctx.Err()
		case <-wait:
		}
		a.mu.Lock()
		if a.draining {
			a.waiting--
			a.mu.Unlock()
			return nil, ErrDraining
		}
		if a.active < a.slots {
			a.active++
			a.waiting--
			a.admitted++
			start := time.Now()
			a.mu.Unlock()
			return func() { a.release(start) }, nil
		}
	}
}

func (a *Admission) release(start time.Time) {
	held := time.Since(start)
	a.mu.Lock()
	a.active--
	if a.avgHold == 0 {
		a.avgHold = held
	} else {
		a.avgHold = (a.avgHold*3 + held) / 4
	}
	close(a.waitc)
	a.waitc = make(chan struct{})
	a.mu.Unlock()
}

// Drain flips the gate into draining mode: every queued waiter and all
// future Acquire calls fail with ErrDraining. Requests already admitted
// keep their slots until they release.
func (a *Admission) Drain() {
	a.mu.Lock()
	a.draining = true
	close(a.waitc)
	a.waitc = make(chan struct{})
	a.mu.Unlock()
}

// Ready reports whether the gate is accepting new work (not draining
// and not saturated past its queue bound).
func (a *Admission) Ready() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return !a.draining && (a.active < a.slots || a.waiting < a.queue)
}

// Draining reports whether Drain has been called.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// RetryAfter estimates how long a shed caller should wait before
// retrying: roughly the time for the queue ahead of it to drain, based
// on observed slot hold times. Never less than one second, so the
// Retry-After header stays meaningful.
func (a *Admission) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	hold := a.avgHold
	if hold <= 0 {
		hold = time.Second
	}
	depth := a.waiting + 1
	est := hold * time.Duration(depth) / time.Duration(a.slots)
	if est < time.Second {
		est = time.Second
	}
	return est
}

// AdmissionStats is a point-in-time snapshot of gate activity.
type AdmissionStats struct {
	Active   int
	Waiting  int
	Admitted int64
	Shed     int64
	TimedOut int64
	Draining bool
}

// Stats returns current counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Active:   a.active,
		Waiting:  a.waiting,
		Admitted: a.admitted,
		Shed:     a.shed,
		TimedOut: a.timedOut,
		Draining: a.draining,
	}
}
