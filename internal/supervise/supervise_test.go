package supervise

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestWatchdogFiresOnceAfterSilence(t *testing.T) {
	s := New(Policy{Deadline: 10 * time.Millisecond, Misses: 3})
	fired := 0
	s.Watch("shard-0", func() { fired++ })

	base := time.Now()
	if got := s.Check(base.Add(15 * time.Millisecond)); len(got) != 0 {
		t.Fatalf("wedged too early: %v", got)
	}
	got := s.Check(base.Add(time.Second))
	if len(got) != 1 || got[0] != "shard-0" {
		t.Fatalf("Check = %v, want [shard-0]", got)
	}
	if fired != 1 {
		t.Fatalf("onWedge fired %d times, want 1", fired)
	}
	// A second check must not re-fire the same watch.
	if got := s.Check(base.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("re-fired wedged watch: %v", got)
	}
	if fired != 1 {
		t.Fatalf("onWedge fired %d times after re-check, want 1", fired)
	}
	st := s.Stats()
	if st.Wedged != 1 || st.Watching != 0 {
		t.Fatalf("Stats = %+v, want Wedged=1 Watching=0", st)
	}
}

func TestWatchdogBeatsKeepWatchAlive(t *testing.T) {
	s := New(Policy{Deadline: 20 * time.Millisecond, Misses: 2})
	s.Watch("shard-1", func() { t.Error("healthy watch wedged") })
	for i := 0; i < 5; i++ {
		s.Beat("shard-1")
		if got := s.Check(time.Now().Add(30 * time.Millisecond)); len(got) != 0 {
			t.Fatalf("beating watch wedged: %v", got)
		}
	}
	s.Done("shard-1")
	// Done watches never wedge, however long the silence.
	if got := s.Check(time.Now().Add(time.Hour)); len(got) != 0 {
		t.Fatalf("done watch wedged: %v", got)
	}
	if b := s.Stats().Beats; b != 5 {
		t.Fatalf("Beats = %d, want 5", b)
	}
}

func TestWatchdogLateBeatDoesNotResurrect(t *testing.T) {
	s := New(Policy{Deadline: time.Millisecond})
	s.Watch("w", nil)
	if got := s.Check(time.Now().Add(time.Second)); len(got) != 1 {
		t.Fatalf("Check = %v, want one wedge", got)
	}
	s.Beat("w") // late beat from the cancelled worker
	if got := s.Check(time.Now().Add(2 * time.Second)); len(got) != 0 {
		t.Fatalf("late beat resurrected wedged watch: %v", got)
	}
}

func TestDisabledPolicyIsInert(t *testing.T) {
	s := New(Policy{})
	s.Watch("x", func() { t.Error("disabled supervisor fired") })
	s.Beat("x")
	if got := s.Check(time.Now().Add(time.Hour)); got != nil {
		t.Fatalf("disabled Check = %v, want nil", got)
	}
	s.Start() // no-op
	s.Stop()
	s.Done("x")
}

func TestBackgroundTickerDetectsWedge(t *testing.T) {
	s := New(Policy{Deadline: 5 * time.Millisecond, Misses: 2})
	wedged := make(chan struct{})
	s.Watch("bg", func() { close(wedged) })
	s.Start()
	defer s.Stop()
	select {
	case <-wedged:
	case <-time.After(5 * time.Second):
		t.Fatal("background ticker never detected the wedge")
	}
}

func TestPolicyTimeoutTotal(t *testing.T) {
	if got := (Policy{Deadline: time.Second}).TimeoutTotal(); got != time.Second {
		t.Fatalf("TimeoutTotal misses=0 = %v, want 1s", got)
	}
	if got := (Policy{Deadline: time.Second, Misses: 3}).TimeoutTotal(); got != 3*time.Second {
		t.Fatalf("TimeoutTotal misses=3 = %v, want 3s", got)
	}
}

func TestQuantileTrackerThreshold(t *testing.T) {
	tr := &QuantileTracker{Quantile: 0.5, Multiplier: 2, MinSamples: 3}
	if th := tr.Threshold(); th != 0 {
		t.Fatalf("threshold with no samples = %v, want 0", th)
	}
	tr.Observe(10 * time.Millisecond)
	tr.Observe(20 * time.Millisecond)
	if th := tr.Threshold(); th != 0 {
		t.Fatalf("threshold below MinSamples = %v, want 0", th)
	}
	tr.Observe(30 * time.Millisecond)
	// median of {10,20,30}ms is 20ms; ×2 = 40ms.
	if th := tr.Threshold(); th != 40*time.Millisecond {
		t.Fatalf("threshold = %v, want 40ms", th)
	}
	if n := tr.Samples(); n != 3 {
		t.Fatalf("Samples = %d, want 3", n)
	}
}

func TestQuantileTrackerFloorAndDefaults(t *testing.T) {
	tr := &QuantileTracker{Floor: time.Second} // defaults: median ×2, 3 samples
	for i := 0; i < 10; i++ {
		tr.Observe(time.Millisecond)
	}
	if th := tr.Threshold(); th != time.Second {
		t.Fatalf("floored threshold = %v, want 1s", th)
	}
	tr2 := &QuantileTracker{}
	tr2.Observe(-5) // clamped to 0
	for i := 0; i < 4; i++ {
		tr2.Observe(100 * time.Millisecond)
	}
	if th := tr2.Threshold(); th != 200*time.Millisecond {
		t.Fatalf("default threshold = %v, want 200ms", th)
	}
}

func TestQuantileTrackerWindowSlides(t *testing.T) {
	tr := &QuantileTracker{Quantile: 0.5, Multiplier: 1, MinSamples: 1}
	for i := 0; i < trackerCap; i++ {
		tr.Observe(time.Hour) // ancient slow samples
	}
	for i := 0; i < trackerCap; i++ {
		tr.Observe(10 * time.Millisecond) // the fleet sped up
	}
	if th := tr.Threshold(); th != 10*time.Millisecond {
		t.Fatalf("threshold after window slide = %v, want 10ms", th)
	}
}

func TestAdmissionSlotsAndQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Second caller parks in the queue.
	acquired := make(chan func(), 1)
	go func() {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		acquired <- rel
	}()
	waitForWaiting(t, a, 1)

	// Third caller overflows the queue: shed immediately.
	if _, err := a.Acquire(context.Background()); err != ErrSaturated {
		t.Fatalf("overflow acquire err = %v, want ErrSaturated", err)
	}
	if ra := a.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", ra)
	}

	rel1()
	rel2 := <-acquired
	rel2()

	st := a.Stats()
	if st.Admitted != 2 || st.Shed != 1 || st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("Stats = %+v, want Admitted=2 Shed=1 Active=0 Waiting=0", st)
	}
}

func TestAdmissionContextDeadline(t *testing.T) {
	a := NewAdmission(1, 4)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("queued acquire err = %v, want DeadlineExceeded", err)
	}
	if st := a.Stats(); st.TimedOut != 1 || st.Waiting != 0 {
		t.Fatalf("Stats = %+v, want TimedOut=1 Waiting=0", st)
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(1, 4)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	errs := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background())
		errs <- err
	}()
	waitForWaiting(t, a, 1)

	a.Drain()
	if err := <-errs; err != ErrDraining {
		t.Fatalf("queued acquire after drain = %v, want ErrDraining", err)
	}
	if _, err := a.Acquire(context.Background()); err != ErrDraining {
		t.Fatalf("new acquire after drain = %v, want ErrDraining", err)
	}
	if a.Ready() {
		t.Fatal("draining gate reports Ready")
	}
	if !a.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	rel() // releasing an already-admitted request still works
}

func TestAdmissionConcurrentChurn(t *testing.T) {
	a := NewAdmission(2, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, shed := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(context.Background())
			mu.Lock()
			if err != nil {
				shed++
			} else {
				admitted++
			}
			mu.Unlock()
			if err == nil {
				time.Sleep(time.Millisecond)
				rel()
			}
		}()
	}
	wg.Wait()
	if admitted == 0 {
		t.Fatal("no requests admitted")
	}
	if st := a.Stats(); st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("gate not drained after churn: %+v", st)
	}
	if !a.Ready() {
		t.Fatal("idle gate not Ready")
	}
}

func waitForWaiting(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Waiting < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}
