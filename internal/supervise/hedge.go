package supervise

import (
	"sort"
	"sync"
	"time"
)

// trackerCap bounds the sliding window of completed-scan durations the
// tracker keeps. 256 samples is enough for a stable median and keeps
// Threshold's copy-and-sort cost trivial next to a host scan.
const trackerCap = 256

// QuantileTracker watches completed-scan wall durations and turns them
// into a hedge threshold: "this host has run longer than multiplier ×
// the q-quantile of its peers — duplicate it." It keeps a bounded
// sliding window so a fleet whose hosts slow down over time adapts
// instead of hedging everything against stale early samples.
type QuantileTracker struct {
	// Quantile in (0,1]; the reference point for "normal" scan time.
	// Zero means 0.5 (the median).
	Quantile float64
	// Multiplier scales the quantile into the hedge threshold. Zero
	// means 2.
	Multiplier float64
	// MinSamples is how many completed scans must be observed before
	// Threshold returns nonzero. Zero means 3 — hedging against one or
	// two samples just duplicates noise.
	MinSamples int
	// Floor is the minimum threshold ever returned; it keeps uniformly
	// fast fleets from hedging on scheduler jitter.
	Floor time.Duration

	mu      sync.Mutex
	ring    [trackerCap]time.Duration
	n       int // total observations ever
	scratch []time.Duration
}

// Observe records one completed scan's wall duration.
func (t *QuantileTracker) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.ring[t.n%trackerCap] = d
	t.n++
	t.mu.Unlock()
}

// Samples is the number of durations observed so far.
func (t *QuantileTracker) Samples() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Threshold returns the current hedge threshold, or 0 when too few
// samples have been observed to estimate one.
func (t *QuantileTracker) Threshold() time.Duration {
	min := t.MinSamples
	if min <= 0 {
		min = 3
	}
	q := t.Quantile
	if q <= 0 || q > 1 {
		q = 0.5
	}
	mult := t.Multiplier
	if mult <= 0 {
		mult = 2
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < min {
		return 0
	}
	have := t.n
	if have > trackerCap {
		have = trackerCap
	}
	if cap(t.scratch) < have {
		t.scratch = make([]time.Duration, have)
	}
	s := t.scratch[:have]
	copy(s, t.ring[:have])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(have-1))
	th := time.Duration(float64(s[idx]) * mult)
	if th < t.Floor {
		th = t.Floor
	}
	return th
}
