// Package supervise is the live-recovery layer: watchdogs that notice
// when a worker stops making progress, a quantile tracker that decides
// when a host scan has become a straggler worth hedging, and a bounded
// admission gate that sheds load before the daemon melts down.
//
// The package deliberately knows nothing about shards, hosts, or HTTP.
// Callers register opaque watch IDs and emit beats; the supervisor's
// only output is a wedge callback. That keeps the policy testable in
// isolation and reusable across the fleet and fleetshard layers.
//
// Unlike the scan engine, supervision runs on *wall* clock: the whole
// point of a watchdog is to notice that virtual time has stopped
// advancing because a real read wedged underneath it.
package supervise

import (
	"sort"
	"sync"
	"time"
)

// Policy tunes a Supervisor. A watch is declared wedged when it has
// emitted no beat for Deadline × max(1, Misses) of wall time: Deadline
// is the expected beacon cadence, Misses how many consecutive beacons
// may be skipped before the watchdog fires.
type Policy struct {
	// Deadline is the expected interval between progress beacons.
	Deadline time.Duration
	// Misses is how many beacon intervals may elapse in silence before
	// the watch is declared wedged. Zero means 1.
	Misses int
}

// TimeoutTotal is the effective wall-clock silence that wedges a watch.
func (p Policy) TimeoutTotal() time.Duration {
	m := p.Misses
	if m < 1 {
		m = 1
	}
	return p.Deadline * time.Duration(m)
}

// Enabled reports whether the policy actually supervises anything.
func (p Policy) Enabled() bool { return p.Deadline > 0 }

type watch struct {
	last    time.Time
	onWedge func()
	wedged  bool
}

// Supervisor tracks progress beacons for a set of watches and fires a
// per-watch callback exactly once when one goes silent past the policy
// deadline. All methods are safe for concurrent use. The zero value is
// not usable; construct with New.
type Supervisor struct {
	policy Policy

	mu      sync.Mutex
	watches map[string]*watch
	beats   int64
	wedged  int64

	stopc chan struct{}
	done  chan struct{}
}

// New builds a Supervisor for the given policy. If the policy is
// disabled (zero Deadline) the supervisor is inert: Watch/Beat/Done are
// cheap no-ops and Check never fires.
func New(policy Policy) *Supervisor {
	return &Supervisor{policy: policy, watches: map[string]*watch{}}
}

// Watch registers id and counts an initial beat, so a watch that wedges
// before its first unit of progress still fires one full timeout after
// registration. onWedge runs at most once, from whichever goroutine
// calls Check (or the background ticker); it must not call back into
// the supervisor for the same id.
func (s *Supervisor) Watch(id string, onWedge func()) {
	if !s.policy.Enabled() {
		return
	}
	s.mu.Lock()
	s.watches[id] = &watch{last: time.Now(), onWedge: onWedge}
	s.mu.Unlock()
}

// Beat records progress for id. Beats for unknown (or already wedged)
// ids are dropped — a cancelled worker's late beats must not resurrect
// its watch.
func (s *Supervisor) Beat(id string) {
	if !s.policy.Enabled() {
		return
	}
	s.mu.Lock()
	if w, ok := s.watches[id]; ok && !w.wedged {
		w.last = time.Now()
		s.beats++
	}
	s.mu.Unlock()
}

// Done deregisters id. A watch that finishes cleanly can no longer
// wedge, even if Check races with the removal.
func (s *Supervisor) Done(id string) {
	if !s.policy.Enabled() {
		return
	}
	s.mu.Lock()
	delete(s.watches, id)
	s.mu.Unlock()
}

// Check scans every live watch against now and fires the wedge callback
// for each one that has been silent past the policy timeout. It returns
// the wedged ids in sorted order (deterministic for tests). Callbacks
// run outside the supervisor lock.
func (s *Supervisor) Check(now time.Time) []string {
	if !s.policy.Enabled() {
		return nil
	}
	limit := s.policy.TimeoutTotal()
	var fired []string
	var callbacks []func()
	s.mu.Lock()
	for id, w := range s.watches {
		if w.wedged || now.Sub(w.last) < limit {
			continue
		}
		w.wedged = true
		s.wedged++
		fired = append(fired, id)
		if w.onWedge != nil {
			callbacks = append(callbacks, w.onWedge)
		}
	}
	s.mu.Unlock()
	sort.Strings(fired)
	for _, cb := range callbacks {
		cb()
	}
	return fired
}

// Start launches a background ticker that calls Check at half the
// policy deadline (so a wedge is detected within ~1.5× the configured
// timeout). Stop halts it. Start on a disabled policy is a no-op.
func (s *Supervisor) Start() {
	if !s.policy.Enabled() || s.stopc != nil {
		return
	}
	interval := s.policy.Deadline / 2
	if interval <= 0 {
		interval = time.Millisecond
	}
	s.stopc = make(chan struct{})
	s.done = make(chan struct{})
	go func(stopc, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopc:
				return
			case now := <-t.C:
				s.Check(now)
			}
		}
	}(s.stopc, s.done)
}

// Stop halts the background ticker started by Start and waits for it to
// exit. Safe to call when Start was never called.
func (s *Supervisor) Stop() {
	if s.stopc == nil {
		return
	}
	close(s.stopc)
	<-s.done
	s.stopc, s.done = nil, nil
}

// Stats is a point-in-time snapshot of supervisor activity.
type Stats struct {
	// Watching is the number of currently registered, non-wedged watches.
	Watching int
	// Beats is the total number of accepted progress beacons.
	Beats int64
	// Wedged is the total number of watches declared wedged.
	Wedged int64
}

// Stats returns current counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := 0
	for _, w := range s.watches {
		if !w.wedged {
			live++
		}
	}
	return Stats{Watching: live, Beats: s.beats, Wedged: s.wedged}
}
