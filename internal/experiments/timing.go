package experiments

import (
	"fmt"

	"ghostbuster/internal/core"
	"ghostbuster/internal/crashdump"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/workload"
)

// ScanTimes regenerates the §2/§3/§4 timing discussion across the
// 9-machine fleet: inside-the-box file scan (30 s–7 min for the seven
// 5–34 GB machines, 38 min on the 95 GB workstation), WinPE boot adding
// 1.5–3 min, ASEP scan 18–63 s, process+module scan 1–5 s.
func ScanTimes() (*Table, error) {
	t := &Table{ID: "scantime", Title: "Scan times across the machine fleet (virtual time)",
		Header: []string{"Machine", "Kind", "CPU", "Disk used", "File scan (inside)", "ASEP scan", "Proc+mod scan", "WinPE boot adds"}}
	for _, p := range workload.PaperMachines() {
		m, err := workload.NewPaperMachine(p)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", p.Name, err)
		}
		call := m.SystemCall()
		high, err := core.ScanFilesHigh(m, call)
		if err != nil {
			return nil, err
		}
		low, err := core.ScanFilesLow(m)
		if err != nil {
			return nil, err
		}
		fileScan := (high.Elapsed + low.Elapsed).Seconds()

		aHigh, err := core.ScanASEPHigh(m, call)
		if err != nil {
			return nil, err
		}
		aLow, err := core.ScanASEPLow(m)
		if err != nil {
			return nil, err
		}
		asepScan := (aHigh.Elapsed + aLow.Elapsed).Seconds()

		d := core.NewDetector(m)
		d.Advanced = true
		procStart := m.Clock.Now()
		if _, err := d.ScanProcesses(); err != nil {
			return nil, err
		}
		if _, err := d.ScanModules(); err != nil {
			return nil, err
		}
		procScan := (m.Clock.Now() - procStart).Seconds()

		t.AddRow(p.Name, p.Kind, fmt.Sprintf("%d MHz", p.CPUMHz),
			fmt.Sprintf("%.0f GB", p.DiskUsedGB),
			fmtDur(fileScan), fmtDur(asepScan), fmtDur(procScan),
			fmtDur(p.RebootTime.Seconds()))
	}
	t.AddNote("paper: file scans 30s-7min on the 5-34GB machines, 38min on the 95GB workstation; ASEP scans 18-63s; proc+mod scans 1-5s; WinPE adds 1.5-3min")
	return t, nil
}

// ProcScanTimes regenerates the §4 text: process/module scans take
// seconds, and the blue-screen crash dump adds 15–45 s.
func ProcScanTimes() (*Table, error) {
	t := &Table{ID: "procscan", Title: "Process/module scan and crash-dump timing",
		Header: []string{"Scenario", "Processes", "Scan+diff", "Dump write adds", "Hidden found"}}
	for _, extra := range []int{0, 10, 40} {
		m, err := labMachine()
		if err != nil {
			return nil, err
		}
		for i := 0; i < extra; i++ {
			if _, err := m.StartProcess(fmt.Sprintf("svc%02d.exe", i), fmt.Sprintf(`C:\svc\svc%02d.exe`, i)); err != nil {
				return nil, err
			}
		}
		if err := ghostware.NewBerbew().Install(m); err != nil {
			return nil, err
		}
		d := core.NewDetector(m)
		d.Advanced = true
		start := m.Clock.Now()
		pr, err := d.ScanProcesses()
		if err != nil {
			return nil, err
		}
		if _, err := d.ScanModules(); err != nil {
			return nil, err
		}
		scan := (m.Clock.Now() - start).Seconds()

		dumpStart := m.Clock.Now()
		dumpBytes, err := crashdump.Write(m)
		if err != nil {
			return nil, err
		}
		dump := (m.Clock.Now() - dumpStart).Seconds()
		parsed, err := crashdump.Parse(dumpBytes)
		if err != nil {
			return nil, err
		}
		procs, err := parsed.Processes(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d extra services", extra), fmt.Sprintf("%d", len(procs)),
			fmtDur(scan), fmtDur(dump), fmt.Sprintf("%d", len(pr.Hidden)))
	}
	t.AddNote("paper: combined hidden-process and hidden-module scan+diff took 1-5s; the kernel dump through blue screen added 15-45s")
	return t, nil
}
