package experiments

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/winapi"
)

// Fig2Taxonomy regenerates Figure 2: how each of the 10 file-hiding
// programs intercepts the file-query call path. The level column is
// introspected from the hooks each program actually installs.
func Fig2Taxonomy() (*Table, error) {
	t := &Table{ID: "fig2", Title: "How ghostware programs hide files",
		Header: []string{"Ghostware", "Class", "Interception level", "Technique"}}
	for _, g := range ghostware.Fig3Corpus() {
		m, err := labMachine()
		if err != nil {
			return nil, err
		}
		if err := g.Install(m); err != nil {
			return nil, fmt.Errorf("installing %s: %w", g.Name(), err)
		}
		// Verify declared techniques against the live hook stack.
		installed := map[string]bool{}
		for _, h := range m.API.Hooks() {
			if h.API == winapi.APIFileEnum {
				installed[h.Level.String()] = true
			}
		}
		for _, tech := range g.Techniques() {
			if tech.API != winapi.APIFileEnum {
				continue
			}
			level := tech.Level.String()
			if tech.Level != winapi.LevelNone && !installed[level] {
				return nil, fmt.Errorf("%s declares %s but did not install it", g.Name(), level)
			}
			t.AddRow(g.Name(), g.Class(), level, tech.Label)
		}
	}
	t.AddNote("paper: six techniques from per-process IAT patching down to file-system filter drivers; all levels appear above")
	return t, nil
}

// Fig3HiddenFiles regenerates Figure 3: for each program, a fresh
// machine is infected and the inside-the-box cross-view file diff lists
// exactly the program's hidden files.
func Fig3HiddenFiles() (*Table, error) {
	t := &Table{ID: "fig3", Title: "GhostBuster hidden-file detection",
		Header: []string{"Ghostware", "Hidden files detected", "Examples", "Match"}}
	for _, g := range ghostware.Fig3Corpus() {
		m, err := labMachine()
		if err != nil {
			return nil, err
		}
		if err := g.Install(m); err != nil {
			return nil, err
		}
		r, err := core.NewDetector(m).ScanFiles()
		if err != nil {
			return nil, err
		}
		examples := make([]string, 0, 2)
		for _, f := range r.Hidden {
			if len(examples) < 2 {
				examples = append(examples, f.Display)
			}
		}
		match := "OK"
		if len(r.Hidden) < len(g.HiddenFiles()) {
			match = fmt.Sprintf("MISSING %d", len(g.HiddenFiles())-len(r.Hidden))
		}
		t.AddRow(g.Name(), fmt.Sprintf("%d", len(r.Hidden)), strings.Join(examples, ", "), match)
	}
	t.AddNote("paper: 1 (Urbin), 1 (Mersting), 3+ (Vanquish), prefix-matched (Aphex), 3+ (Hacker Defender), 4 (ProBot SE), user-selected (file hiders)")
	return t, nil
}

// Fig4HiddenASEPs regenerates Figure 4: hidden auto-start hooks per
// program.
func Fig4HiddenASEPs() (*Table, error) {
	t := &Table{ID: "fig4", Title: "GhostBuster hidden ASEP hook detection",
		Header: []string{"Ghostware", "Hidden ASEP hooks detected", "Match"}}
	for _, g := range ghostware.Fig4Corpus() {
		m, err := labMachine()
		if err != nil {
			return nil, err
		}
		if err := g.Install(m); err != nil {
			return nil, err
		}
		r, err := core.NewDetector(m).ScanASEPs()
		if err != nil {
			return nil, err
		}
		var hooks []string
		for _, f := range r.Hidden {
			hooks = append(hooks, f.Display)
		}
		match := "OK"
		if len(r.Hidden) != len(g.HiddenASEPs()) {
			match = fmt.Sprintf("got %d want %d", len(r.Hidden), len(g.HiddenASEPs()))
		}
		t.AddRow(g.Name(), strings.Join(hooks, " ; "), match)
	}
	t.AddNote("paper: AppInit_DLLs (Urbin, Mersting), two service keys (Hacker Defender), service key (Vanquish), two services + Run (ProBot SE), Run (Aphex)")
	return t, nil
}

// Fig5ProcTaxonomy regenerates Figure 5: process-hiding techniques.
func Fig5ProcTaxonomy() (*Table, error) {
	t := &Table{ID: "fig5", Title: "How ghostware programs hide processes",
		Header: []string{"Ghostware", "Interception level", "Technique"}}
	for _, g := range ghostware.Fig6Corpus() {
		for _, tech := range g.Techniques() {
			if tech.API != winapi.APIProcEnum && tech.API != winapi.APIModEnum {
				continue
			}
			t.AddRow(g.Name(), tech.Level.String(), tech.Label)
		}
	}
	t.AddNote("paper: IAT (Aphex), in-memory jmp (Hacker Defender, Berbew), DKOM (FU), PEB blanking (Vanquish, modules)")
	return t, nil
}

// Fig6HiddenProcs regenerates Figure 6: hidden processes and modules per
// program, including FU's advanced-mode requirement.
func Fig6HiddenProcs() (*Table, error) {
	t := &Table{ID: "fig6", Title: "GhostBuster hidden process/module detection",
		Header: []string{"Ghostware", "Normal mode (APL truth)", "Advanced mode (CID truth)", "Hidden modules"}}

	apiHiders := []ghostware.Ghostware{ghostware.NewAphex(), ghostware.NewHackerDefender(), ghostware.NewBerbew()}
	for _, g := range apiHiders {
		m, err := labMachine()
		if err != nil {
			return nil, err
		}
		if err := g.Install(m); err != nil {
			return nil, err
		}
		d := core.NewDetector(m)
		normal, err := d.ScanProcesses()
		if err != nil {
			return nil, err
		}
		d.Advanced = true
		advanced, err := d.ScanProcesses()
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), summarizeProcs(normal), summarizeProcs(advanced), "-")
	}

	// FU: detectable only in advanced mode.
	m, err := labMachine()
	if err != nil {
		return nil, err
	}
	fu := ghostware.NewFU()
	if err := fu.Install(m); err != nil {
		return nil, err
	}
	if _, err := m.StartProcess("backdoor.exe", `C:\fu\backdoor.exe`); err != nil {
		return nil, err
	}
	if err := fu.HideByName(m, "backdoor.exe"); err != nil {
		return nil, err
	}
	d := core.NewDetector(m)
	normal, err := d.ScanProcesses()
	if err != nil {
		return nil, err
	}
	d.Advanced = true
	advanced, err := d.ScanProcesses()
	if err != nil {
		return nil, err
	}
	t.AddRow("FU (fu -ph)", summarizeProcs(normal)+" (DKOM evades APL)", summarizeProcs(advanced), "-")

	// Vanquish: module hiding.
	m2, err := labMachine()
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewVanquish().Install(m2); err != nil {
		return nil, err
	}
	mods, err := core.NewDetector(m2).ScanModules()
	if err != nil {
		return nil, err
	}
	t.AddRow("Vanquish", "-", "-", fmt.Sprintf("vanquish.dll hidden in %d processes", len(mods.Hidden)))

	t.AddNote("paper: Aphex/Hacker Defender/Berbew detected with Active Process List as truth; FU only in advanced mode; vanquish.dll reported once per injected process")
	return t, nil
}

func summarizeProcs(r *core.Report) string {
	if len(r.Hidden) == 0 {
		return "none"
	}
	names := make([]string, 0, len(r.Hidden))
	for _, f := range r.Hidden {
		names = append(names, f.Display)
	}
	return strings.Join(names, ", ")
}
