package experiments

import (
	"fmt"

	"ghostbuster/internal/avscanner"
	"ghostbuster/internal/core"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/injection"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/vmscan"
	"ghostbuster/internal/vtime"
)

// Targeting regenerates the §5 targeting experiments: ghostware that
// scopes its hiding defeats a plain GhostBuster.exe; the DLL-injection
// extension (every process becomes a GhostBuster) restores detection;
// and the injected-into-InocIT.exe combination creates the detection
// dilemma.
func Targeting() (*Table, error) {
	t := &Table{ID: "targeting", Title: "Targeted hiding vs the DLL-injection extension",
		Header: []string{"Scenario", "Plain GhostBuster.exe", "Injected sweep", "Signature AV"}}

	// Scenario 1: hide only from OS utilities.
	m1, err := labMachine()
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewTargeted(ghostware.HideFromUtilities).Install(m1); err != nil {
		return nil, err
	}
	if _, err := m1.StartProcess("ghostbuster.exe", `C:\tools\ghostbuster.exe`); err != nil {
		return nil, err
	}
	if _, err := m1.StartProcess("taskmgr.exe", `C:\WINDOWS\system32\taskmgr.exe`); err != nil {
		return nil, err
	}
	plain := scanAs(m1, "ghostbuster.exe")
	swept, err := injection.ScanFilesEverywhere(m1)
	if err != nil {
		return nil, err
	}
	t.AddRow("hides only from Task Manager/tlist/Explorer", verdict(plain > 0), verdict(swept.Infected()), "-")

	// Scenario 2: hide from everything except ghostbuster.exe.
	m2, err := labMachine()
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewTargeted(ghostware.HideExceptGhostBuster).Install(m2); err != nil {
		return nil, err
	}
	if _, err := m2.StartProcess("ghostbuster.exe", `C:\tools\ghostbuster.exe`); err != nil {
		return nil, err
	}
	plain = scanAs(m2, "ghostbuster.exe")
	swept, err = injection.ScanFilesEverywhere(m2)
	if err != nil {
		return nil, err
	}
	t.AddRow("hides from everything except ghostbuster.exe", verdict(plain > 0), verdict(swept.Infected()), "-")

	// Scenario 3: the InocIT demo. Hacker Defender hides from everything
	// including the AV scanner: signatures blind, injected diff catches.
	m3, err := labMachine()
	if err != nil {
		return nil, err
	}
	av3, err := avscanner.New(m3, avscanner.DefaultSignatures())
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewHackerDefender().Install(m3); err != nil {
		return nil, err
	}
	sigDets, err := av3.OnDemandScan(m3)
	if err != nil {
		return nil, err
	}
	injected := scanAs(m3, av3.ProcessName)
	t.AddRow("Hacker Defender, eTrust signatures current", "-", verdict(injected > 0), verdict(len(sigDets) > 0))

	// Scenario 4: the other horn — HD exempts InocIT.exe from hiding.
	m4, err := labMachine()
	if err != nil {
		return nil, err
	}
	av4, err := avscanner.New(m4, avscanner.DefaultSignatures())
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewHackerDefenderExempting([]string{av4.ProcessName}).Install(m4); err != nil {
		return nil, err
	}
	sigDets, err = av4.OnDemandScan(m4)
	if err != nil {
		return nil, err
	}
	injected = scanAs(m4, av4.ProcessName)
	t.AddRow("Hacker Defender shows itself to InocIT.exe", "-", verdict(injected > 0), verdict(len(sigDets) > 0))
	t.AddNote("paper: 'they will be detected by GhostBuster if they hide from InocIT.exe and by the eTrust signatures if they do not hide'")
	return t, nil
}

// scanAs runs the hidden-file detection under the given process
// identity and returns the hidden count (panics propagate as 0-row
// errors upstream; experiments treat scan failure as fatal).
func scanAs(m *machine.Machine, proc string) int {
	d := core.NewDetector(m)
	d.AsProcess = proc
	r, err := d.ScanFiles()
	if err != nil {
		return -1
	}
	return len(r.Hidden)
}

// Decoy regenerates the §5 mass-hiding attack: hiding thousands of
// innocent files buries the payload in triage noise, but the hidden
// count itself is the anomaly signal.
func DecoyAnomaly() (*Table, error) {
	t := &Table{ID: "decoy", Title: "Mass-hiding decoy attack",
		Header: []string{"Scenario", "Hidden entries", "Anomaly raised", "Payload in findings"}}
	m, err := labMachine()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 300; i++ {
		if err := m.DropFile(fmt.Sprintf(`C:\Shared\docs\file%04d.txt`, i), []byte("innocent")); err != nil {
			return nil, err
		}
	}
	if err := ghostware.NewDecoy([]string{`C:\Shared`}).Install(m); err != nil {
		return nil, err
	}
	r, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		return nil, err
	}
	payload := false
	for _, f := range r.Hidden {
		if f.ID == `C:\WINDOWS\SYSTEM32\DCYSVC.EXE` {
			payload = true
		}
	}
	t.AddRow("300 innocent files + payload hidden",
		fmt.Sprintf("%d", len(r.Hidden)),
		verdict(r.MassHiding != nil),
		verdict(payload))
	t.AddNote("paper: 'the existence of a large number of hidden files is a serious anomaly' — detection survives even when per-file triage does not")
	return t, nil
}

// VMScan regenerates the §5 VM demonstration: guest scan, power down,
// host scan of the released virtual disk; all hidden files revealed with
// zero false positives.
func VMScan() (*Table, error) {
	t := &Table{ID: "vm", Title: "VM-based outside-the-box scan",
		Header: []string{"Guest", "Hidden found", "False positives", "Wall time"}}
	for _, infected := range []bool{false, true} {
		guest, err := labMachine()
		if err != nil {
			return nil, err
		}
		want := 0
		label := "clean guest"
		if infected {
			hd := ghostware.NewHackerDefender()
			if err := hd.Install(guest); err != nil {
				return nil, err
			}
			want = len(hd.HiddenFiles())
			label = "Hacker Defender-infected guest"
		}
		sw := vtime.NewStopwatch(guest.Clock)
		r, err := vmscan.Check(guest, core.DiffOptions{})
		if err != nil {
			return nil, err
		}
		match := ""
		if len(r.Hidden) != want {
			match = fmt.Sprintf(" (want %d!)", want)
		}
		t.AddRow(label, fmt.Sprintf("%d%s", len(r.Hidden), match),
			fmt.Sprintf("%d", len(r.Noise)),
			vtime.String(sw.Elapsed()))
	}
	t.AddNote("paper: 'a diff of the two scans revealed all the hidden files and contained zero false positive because the two scans were performed on exactly the same drive image'")
	return t, nil
}

func verdict(detected bool) string {
	if detected {
		return "DETECTED"
	}
	return "missed"
}
