package experiments

import (
	"fmt"
	"strings"

	"ghostbuster/internal/askstrider"
	"ghostbuster/internal/core"
	"ghostbuster/internal/gatekeeper"
	"ghostbuster/internal/ghostware"
)

// RaceWindow is the DESIGN.md scan-ordering ablation: files created in
// the small window between the high- and low-level scans become
// transient diff entries (§2: "files may be created in the very small
// time window between when the high- and low-level scans are taken.
// However, in practice the noise level from this is extremely low").
// The direction of the transient depends on which scan ran first.
func RaceWindow() (*Table, error) {
	t := &Table{ID: "race", Title: "Scan-ordering race window (ablation)",
		Header: []string{"Ordering", "Mid-scan activity", "Transient hidden", "Transient phantom"}}

	type ordering struct {
		name      string
		highFirst bool
	}
	for _, ord := range []ordering{{"high then low (GhostBuster's order)", true}, {"low then high", false}} {
		for _, active := range []bool{false, true} {
			m, err := labMachine()
			if err != nil {
				return nil, err
			}
			call := m.SystemCall()
			var high, low *core.Snapshot
			burst := func() error {
				if !active {
					return nil
				}
				// A service writes two files right between the scans.
				for i := 0; i < 2; i++ {
					if err := m.DropFile(fmt.Sprintf(`C:\WINDOWS\midscan%d.tmp`, i), []byte("x")); err != nil {
						return err
					}
				}
				return nil
			}
			if ord.highFirst {
				if high, err = core.ScanFilesHigh(m, call); err != nil {
					return nil, err
				}
				if err := burst(); err != nil {
					return nil, err
				}
				if low, err = core.ScanFilesLow(m); err != nil {
					return nil, err
				}
			} else {
				if low, err = core.ScanFilesLow(m); err != nil {
					return nil, err
				}
				if err := burst(); err != nil {
					return nil, err
				}
				if high, err = core.ScanFilesHigh(m, call); err != nil {
					return nil, err
				}
			}
			r, err := core.Diff(high, low, core.DiffOptions{})
			if err != nil {
				return nil, err
			}
			activity := "idle"
			if active {
				activity = "2 files created mid-scan"
			}
			t.AddRow(ord.name, activity, fmt.Sprintf("%d", len(r.Hidden)), fmt.Sprintf("%d", len(r.Phantom)))
		}
	}
	t.AddNote("high-then-low turns mid-scan creations into transient hidden entries; low-then-high turns them into phantoms; an idle window is exact in both orders")
	t.AddNote("a re-scan confirms transients: real hidden files persist, race artifacts do not")
	return t, nil
}

// Extensions exercises the detection surfaces this reproduction adds
// beyond the paper's four (its §6 future-work list and §4 asides): ADS
// payloads, driver-list hiding, AskStrider's recent-driver lead,
// Gatekeeper ASEP monitoring, and deleted-file forensics.
func Extensions() (*Table, error) {
	t := &Table{ID: "extensions", Title: "Extension surfaces (paper §4 asides and §6 future work)",
		Header: []string{"Surface", "Adversary", "Result"}}

	// 1. ADS payloads (no hook anywhere).
	m1, err := labMachine()
	if err != nil {
		return nil, err
	}
	ads := ghostware.NewADSGhost()
	if err := ads.Install(m1); err != nil {
		return nil, err
	}
	r1, err := core.NewDetector(m1).ScanFiles()
	if err != nil {
		return nil, err
	}
	t.AddRow("alternate data streams (raw MFT parse)", ads.Name(),
		fmt.Sprintf("%d hidden streams found, e.g. %s", len(r1.Hidden), firstDisplay(r1.Hidden)))

	// 2. Driver-list hiding.
	m2, err := labMachine()
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewDriverHider().Install(m2); err != nil {
		return nil, err
	}
	r2, err := core.NewDetector(m2).ScanDrivers()
	if err != nil {
		return nil, err
	}
	t.AddRow("loaded-driver cross-view diff", "DriverHider", verdict(len(r2.Hidden) == 1))

	// 3. AskStrider: the unhidden Hacker Defender driver is "recent".
	m3, err := labMachine()
	if err != nil {
		return nil, err
	}
	since := m3.Now()
	m3.Clock.Advance(1)
	if err := ghostware.NewHackerDefender().Install(m3); err != nil {
		return nil, err
	}
	as, err := askstrider.Run(m3, since)
	if err != nil {
		return nil, err
	}
	t.AddRow("AskStrider recent-change shortlist", "Hacker Defender (driver not hidden)",
		verdict(len(as.FindRecent("hxdefdrv.sys")) == 1))

	// 4. Gatekeeper + GhostBuster correlation.
	m4, err := labMachine()
	if err != nil {
		return nil, err
	}
	baseline, err := gatekeeper.Take(m4)
	if err != nil {
		return nil, err
	}
	if err := ghostware.NewHackerDefender().Install(m4); err != nil {
		return nil, err
	}
	gk, err := gatekeeper.Check(m4, baseline)
	if err != nil {
		return nil, err
	}
	t.AddRow("Gatekeeper ASEP monitor + cross-view correlation", "Hacker Defender",
		fmt.Sprintf("%d additions, %d CRITICAL (hidden)", len(gk.AddedHooks()), len(gk.HiddenAdditions())))

	// 5. Deleted-file forensics.
	m5, err := labMachine()
	if err != nil {
		return nil, err
	}
	if err := m5.DropFile(`C:\mal\dropper.exe`, []byte("MZ")); err != nil {
		return nil, err
	}
	if err := m5.RemoveFile(`C:\mal\dropper.exe`); err != nil {
		return nil, err
	}
	deleted, err := core.ScanDeletedFiles(m5)
	if err != nil {
		return nil, err
	}
	recovered := false
	for _, d := range deleted {
		if strings.EqualFold(d.Name, "dropper.exe") {
			recovered = true
		}
	}
	t.AddRow("deleted-file forensics (stale MFT records)", "self-deleting dropper", verdict(recovered))
	return t, nil
}

func firstDisplay(fs []core.Finding) string {
	if len(fs) == 0 {
		return "-"
	}
	return fs[0].Display
}
