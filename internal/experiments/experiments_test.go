package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the complete paper-reproduction
// matrix and sanity-checks each table. The per-figure assertions live in
// the package tests of core/ghostware/winpe/etc.; here the contract is:
// every experiment completes, produces rows, and contains no mismatch
// markers.
func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "scantime" && testing.Short() {
				t.Skip("fleet build is slow; run without -short")
			}
			table, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Errorf("table ID = %q, want %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range table.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "MISSING") || strings.Contains(cell, "want") && strings.Contains(cell, "got") {
						t.Errorf("mismatch cell in %s: %q (row %v)", e.ID, cell, row)
					}
				}
			}
			var buf bytes.Buffer
			table.Render(&buf)
			if !strings.Contains(buf.String(), table.Title) {
				t.Error("render missing title")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig3"); !ok {
		t.Error("fig3 should resolve")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestTableRenderAlignsAndEscapes(t *testing.T) {
	table := &Table{ID: "x", Title: "T", Header: []string{"A", "B"}}
	table.AddRow("short", "with\x00nul")
	table.AddRow("a-much-longer-cell", "b")
	table.AddNote("note %d", 1)
	var buf bytes.Buffer
	table.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, `\0`) {
		t.Error("NUL not escaped in render")
	}
	if !strings.Contains(out, "note: note 1") {
		t.Error("note missing")
	}
}

// TestHookDetectTableShowsBothFailureModes pins the §1 argument: the
// baseline table must contain at least one FALSE NEGATIVE and one FALSE
// POSITIVE row while cross-view stays correct.
func TestHookDetectTableShowsBothFailureModes(t *testing.T) {
	table, err := HookDetectComparison()
	if err != nil {
		t.Fatal(err)
	}
	var fn, fp int
	for _, row := range table.Rows {
		switch row[len(row)-1] {
		case "FALSE NEGATIVE":
			fn++
		case "FALSE POSITIVE":
			fp++
		}
	}
	if fn < 2 {
		t.Errorf("false negatives = %d, want >= 2 (filter driver, DKOM, name tricks)", fn)
	}
	if fp != 1 {
		t.Errorf("false positives = %d, want 1 (benign detour)", fp)
	}
}

// TestHDLifecycleEndsClean pins the §6 story: the final scan row must
// report zero hidden files and the timeline must not carry budget
// warnings.
func TestHDLifecycleEndsClean(t *testing.T) {
	table, err := HDLifecycle()
	if err != nil {
		t.Fatal(err)
	}
	last := table.Rows[len(table.Rows)-1]
	if !strings.Contains(last[2], "final hidden count 0") {
		t.Errorf("final row = %v", last)
	}
	for _, n := range table.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("budget warning: %s", n)
		}
	}
}

// TestTargetingTablePinsTheDilemma: the §5 story requires (a) targeted
// hiding to defeat the plain tool while the injected sweep catches it,
// and (b) the AV dilemma — hide and the injected diff wins, show and the
// signatures win.
func TestTargetingTablePinsTheDilemma(t *testing.T) {
	table, err := Targeting()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for i := 0; i < 2; i++ {
		if table.Rows[i][1] != "missed" || table.Rows[i][2] != "DETECTED" {
			t.Errorf("row %d: plain=%s injected=%s", i, table.Rows[i][1], table.Rows[i][2])
		}
	}
	if table.Rows[2][2] != "DETECTED" || table.Rows[2][3] != "missed" {
		t.Errorf("hiding horn: %v", table.Rows[2])
	}
	if table.Rows[3][2] != "missed" || table.Rows[3][3] != "DETECTED" {
		t.Errorf("showing horn: %v", table.Rows[3])
	}
}

// TestScanTimesLandInPaperBands pins the timing reproduction: the seven
// small machines' file scans sit in the paper's 30s-7min band (with a
// little slack at the bottom), the workstation is a >20-minute outlier,
// ASEP scans sit near 18-63s, and process scans stay under 5s.
func TestScanTimesLandInPaperBands(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet build is slow; run without -short")
	}
	table, err := ScanTimes()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		var m, sec float64
		if n, _ := fmt.Sscanf(s, "%fm%fs", &m, &sec); n == 2 {
			return m*60 + sec
		}
		if n, _ := fmt.Sscanf(s, "%fs", &sec); n == 1 {
			return sec
		}
		t.Fatalf("unparseable duration %q", s)
		return 0
	}
	for _, row := range table.Rows {
		name, file, asep, proc := row[0], parse(row[4]), parse(row[5]), parse(row[6])
		if name == "workstation" {
			if file < 20*60 {
				t.Errorf("workstation file scan = %s, want a >20min outlier", row[4])
			}
		} else {
			if file < 30 || file > 7*60 {
				t.Errorf("%s file scan = %s, outside the paper's 30s-7min band", name, row[4])
			}
		}
		if asep < 10 || asep > 70 {
			t.Errorf("%s ASEP scan = %s, outside ~18-63s", name, row[5])
		}
		if proc > 5 {
			t.Errorf("%s proc scan = %s, paper says 1-5s", name, row[6])
		}
	}
}
