// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// builds fresh machines, runs GhostBuster, and returns a Table whose
// rows correspond to the paper's; cmd/paperbench renders them and the
// repository benchmarks wrap them.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"ghostbuster/internal/machine"
	"ghostbuster/internal/workload"
)

// Table is one regenerated table or figure.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // paper-vs-measured commentary
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = displayLen(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && displayLen(c) > widths[i] {
				widths[i] = displayLen(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - displayLen(c)
			}
			parts[i] = escape(c) + strings.Repeat(" ", pad)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  | "), " "))
	}
	printRow(t.Header)
	total := 2
	for _, wd := range widths {
		total += wd + 5
	}
	fmt.Fprintln(w, "  "+strings.Repeat("-", total-4))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func escape(s string) string  { return strings.ReplaceAll(s, "\x00", `\0`) }
func displayLen(s string) int { return len([]rune(escape(s))) }

// Experiment is one runnable experiment.
type Experiment struct {
	ID          string
	Description string
	Run         func() (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "File-hiding technique taxonomy (Figure 2)", Fig2Taxonomy},
		{"fig3", "Hidden-file detection per program (Figure 3)", Fig3HiddenFiles},
		{"fig4", "Hidden ASEP hook detection per program (Figure 4)", Fig4HiddenASEPs},
		{"fig5", "Process-hiding technique taxonomy (Figure 5)", Fig5ProcTaxonomy},
		{"fig6", "Hidden process/module detection per program (Figure 6)", Fig6HiddenProcs},
		{"scantime", "Inside-the-box scan times across the 9-machine fleet (§2, §3, §4 text)", ScanTimes},
		{"fp", "Outside-the-box false positives and the CCM 7->2 experiment (§2 text)", OutsideFP},
		{"regfp", "Registry corruption false positive and its fix (§3 text)", RegistryCorruptionFP},
		{"procscan", "Process/module scan and crash-dump timing (§4 text)", ProcScanTimes},
		{"targeting", "Targeted hiding vs the DLL-injection extension and the AV dilemma (§5)", Targeting},
		{"decoy", "Mass-hiding decoy attack anomaly (§5)", DecoyAnomaly},
		{"vm", "VM-based outside-the-box scan, zero false positives (§5)", VMScan},
		{"linux", "Linux/Unix rootkit detection (§5)", LinuxRootkits},
		{"hdlifecycle", "Hacker Defender end-to-end detect/disable/remove timeline (§6)", HDLifecycle},
		{"crosstime", "Cross-view vs cross-time false-positive burden (§1 contrast)", CrossTimeComparison},
		{"hookdetect", "Hook-detection baseline: misses and false alarms (§1 contrast)", HookDetectComparison},
		{"race", "Scan-ordering race window (DESIGN.md ablation)", RaceWindow},
		{"extensions", "Extension surfaces: ADS, driver diff, AskStrider, Gatekeeper, forensics", Extensions},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// labMachine builds the standard small machine the per-program
// experiments install onto (with the user content the file hiders
// protect).
func labMachine() (*machine.Machine, error) {
	p := workload.SmallProfile()
	p.Churn = nil
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	for _, f := range []string{`C:\Private\diary.txt`, `C:\Private\taxes.xls`} {
		if err := m.DropFile(f, []byte("user data")); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// fmtDur renders a virtual duration for tables.
func fmtDur(secs float64) string {
	switch {
	case secs < 60:
		return fmt.Sprintf("%.1fs", secs)
	default:
		return fmt.Sprintf("%.0fm%02.0fs", secs/60, float64(int(secs)%60))
	}
}
