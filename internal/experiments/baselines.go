package experiments

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/crosstime"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/hookdetect"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/vtime"
	"ghostbuster/internal/winapi"
	"ghostbuster/internal/workload"
)

// HDLifecycle regenerates the §6 end-to-end story: "we were able to
// deterministically detect [Hacker Defender's] presence within 5 seconds
// through hidden-process detection, locate its hidden auto-start
// Registry keys within one minute, remove the keys to disable the
// malware, and reboot the machine to delete the now-visible files."
func HDLifecycle() (*Table, error) {
	t := &Table{ID: "hdlifecycle", Title: "Hacker Defender detect / disable / remove timeline",
		Header: []string{"Step", "Virtual elapsed", "Outcome", "Paper budget"}}
	m, err := labMachine()
	if err != nil {
		return nil, err
	}
	hd := ghostware.NewHackerDefender()
	if err := hd.Install(m); err != nil {
		return nil, err
	}
	d := core.NewDetector(m)

	// Step 1: hidden-process detection within 5 seconds.
	sw := vtime.NewStopwatch(m.Clock)
	procs, err := d.ScanProcesses()
	if err != nil {
		return nil, err
	}
	procTime := sw.Elapsed()
	outcome := "no infection?"
	if len(procs.Hidden) > 0 {
		outcome = "infection detected: " + procs.Hidden[0].Display
	}
	t.AddRow("1. hidden-process scan", vtime.String(procTime), outcome, "<= 5s")
	if procTime.Seconds() > 5 {
		t.AddNote("WARNING: process detection exceeded the 5-second budget")
	}

	// Step 2: locate hidden ASEP keys within one minute.
	sw = vtime.NewStopwatch(m.Clock)
	aseps, err := d.ScanASEPs()
	if err != nil {
		return nil, err
	}
	asepTime := sw.Elapsed()
	keys := make([]string, 0, len(aseps.Hidden))
	for _, f := range aseps.Hidden {
		keys = append(keys, f.Display)
	}
	t.AddRow("2. hidden-ASEP scan", vtime.String(asepTime), fmt.Sprintf("%d hidden keys located", len(keys)), "<= 1min")
	if asepTime.Seconds() > 60 {
		t.AddNote("WARNING: ASEP location exceeded the one-minute budget")
	}

	// Step 3: remove the keys to disable the malware.
	for _, spec := range hd.HiddenASEPs() {
		if err := m.Reg.DeleteKeyTree(spec); err != nil {
			return nil, err
		}
	}
	t.AddRow("3. delete hidden service keys", vtime.String(0), fmt.Sprintf("%d keys removed", len(hd.HiddenASEPs())), "-")

	// Step 4: reboot — the rootkit cannot restart.
	sw = vtime.NewStopwatch(m.Clock)
	if err := m.Reboot(); err != nil {
		return nil, err
	}
	after, err := d.ScanFiles()
	if err != nil {
		return nil, err
	}
	visible := 0
	call := m.SystemCall()
	for _, f := range hd.HiddenFiles() {
		if entries, err := m.API.EnumDirWin32(call, parentDir(f)); err == nil {
			for _, e := range entries {
				if strings.EqualFold(e.Path, f) {
					visible++
				}
			}
		}
	}
	t.AddRow("4. reboot", vtime.String(sw.Elapsed()),
		fmt.Sprintf("hidden diff now %d; %d/%d rootkit files visible", len(after.Hidden), visible, len(hd.HiddenFiles())), "-")

	// Step 5: delete the now-visible files.
	files := hd.HiddenFiles()
	removed := 0
	for i := len(files) - 1; i >= 0; i-- {
		if err := m.RemoveFile(files[i]); err == nil {
			removed++
		}
	}
	final, err := d.ScanFiles()
	if err != nil {
		return nil, err
	}
	t.AddRow("5. delete files, final scan", vtime.String(0),
		fmt.Sprintf("%d files deleted, final hidden count %d", removed, len(final.Hidden)), "machine clean")
	return t, nil
}

func parentDir(path string) string {
	if i := strings.LastIndexByte(path, '\\'); i > 2 {
		return path[:i]
	}
	return machine.Drive
}

// CrossTimeComparison regenerates the §1 contrast: on the same churny
// machine over the same day, the Tripwire-style cross-time diff reports
// dozens of legitimate changes to triage while the cross-view diff
// reports zero — and on an infected machine, both find the malware but
// only cross-view isolates it.
func CrossTimeComparison() (*Table, error) {
	t := &Table{ID: "crosstime", Title: "Cross-view vs cross-time diff",
		Header: []string{"Scenario", "Cross-time changes", "Cross-view hidden", "Triage burden"}}

	p := workload.SmallProfile()
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	cp1, err := crosstime.TakeCheckpoint(m)
	if err != nil {
		return nil, err
	}
	if err := m.RunChurn(8 * 60); err != nil {
		return nil, err
	}
	cp2, err := crosstime.TakeCheckpoint(m)
	if err != nil {
		return nil, err
	}
	timeReport := crosstime.Compare(cp1, cp2)
	viewReport, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		return nil, err
	}
	t.AddRow("clean machine, one working day",
		fmt.Sprintf("%d", timeReport.Total()),
		fmt.Sprintf("%d", len(viewReport.Hidden)),
		"cross-time: every change needs manual review")

	// Infected day.
	if err := ghostware.NewVanquish().Install(m); err != nil {
		return nil, err
	}
	if err := m.RunChurn(60); err != nil {
		return nil, err
	}
	cp3, err := crosstime.TakeCheckpoint(m)
	if err != nil {
		return nil, err
	}
	timeReport = crosstime.Compare(cp2, cp3)
	viewReport, err = core.NewDetector(m).ScanFiles()
	if err != nil {
		return nil, err
	}
	t.AddRow("same machine after Vanquish infection",
		fmt.Sprintf("%d (malware mixed with churn)", timeReport.Total()),
		fmt.Sprintf("%d (all malware)", len(viewReport.Hidden)),
		"cross-view isolates the hiding files exactly")
	t.AddNote("paper §1: cross-time is broader but 'typically includes a significant number of false positives stemming from legitimate changes'; cross-view 'usually has zero or very few false positives because legitimate programs rarely hide'")
	return t, nil
}

// HookDetectComparison regenerates the §1 critique of the
// hiding-mechanism approach: hook detection misses non-hook hiders and
// false-alarms on benign detours; cross-view does neither.
func HookDetectComparison() (*Table, error) {
	t := &Table{ID: "hookdetect", Title: "Hook-detection baseline vs cross-view diff",
		Header: []string{"Adversary / software", "Hook alerts", "Cross-view hidden", "Hook-detector verdict"}}

	type scenario struct {
		name    string
		install func(m *machine.Machine) error
		benign  bool
	}
	scenarios := []scenario{
		{"Hacker Defender (ntdll detours)", func(m *machine.Machine) error {
			return ghostware.NewHackerDefender().Install(m)
		}, false},
		{"Hide Folders XP (filter driver)", func(m *machine.Machine) error {
			if err := m.DropFile(`C:\Private\x.doc`, []byte("d")); err != nil {
				return err
			}
			return ghostware.NewHideFoldersXP(ghostware.DefaultHiderTargets).Install(m)
		}, false},
		{"FU (DKOM, no hook at all)", func(m *machine.Machine) error {
			fu := ghostware.NewFU()
			if err := fu.Install(m); err != nil {
				return err
			}
			if _, err := m.StartProcess("quiet.exe", `C:\q.exe`); err != nil {
				return err
			}
			return fu.HideByName(m, "quiet.exe")
		}, false},
		{"Win32 name tricks (no hook)", func(m *machine.Machine) error {
			return ghostware.NewWin32NameGhost().Install(m)
		}, false},
		{"fault-tolerance wrapper (benign detour)", func(m *machine.Machine) error {
			m.API.Install(winapi.NewPassthroughFileHook("ft-wrapper", winapi.LevelUserCode, "in-memory patch"))
			return nil
		}, true},
	}
	for _, sc := range scenarios {
		m, err := labMachine()
		if err != nil {
			return nil, err
		}
		if err := sc.install(m); err != nil {
			return nil, err
		}
		alerts := hookdetect.Scan(m)
		d := core.NewDetector(m)
		d.Advanced = true
		files, err := d.ScanFiles()
		if err != nil {
			return nil, err
		}
		procs, err := d.ScanProcesses()
		if err != nil {
			return nil, err
		}
		hidden := len(files.Hidden) + len(procs.Hidden)
		verdictStr := "correct"
		if sc.benign && len(alerts) > 0 {
			verdictStr = "FALSE POSITIVE"
		}
		if !sc.benign && len(alerts) == 0 && hidden > 0 {
			verdictStr = "FALSE NEGATIVE"
		}
		t.AddRow(sc.name, fmt.Sprintf("%d", len(alerts)), fmt.Sprintf("%d", hidden), verdictStr)
	}
	t.AddNote("paper §1: the mechanism-targeting approach 'cannot catch ghostware programs that do not use the targeted mechanism' and 'may catch as false positives legitimate uses of API interceptions'")
	return t, nil
}
