package experiments

import (
	"fmt"
	"strings"

	"ghostbuster/internal/core"
	"ghostbuster/internal/hive"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/unixfs"
	"ghostbuster/internal/winpe"
	"ghostbuster/internal/workload"
)

// OutsideFP regenerates the §2 false-positive discussion: inside-the-box
// scans are FP-free; the outside-the-box reboot window produces a couple
// of benign new files (service logs, System Restore entries, prefetch,
// browser temp), and disabling the CCM service on the noisy machine
// drops its raw FP count from 7 to 2.
func OutsideFP() (*Table, error) {
	t := &Table{ID: "fp", Title: "False positives: inside vs outside-the-box",
		Header: []string{"Scenario", "Raw diff entries", "After noise filters", "Breakdown"}}

	// Inside-the-box on a churny machine: zero FPs.
	p := workload.SmallProfile()
	m, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	if err := m.RunChurn(30); err != nil {
		return nil, err
	}
	inside, err := core.NewDetector(m).ScanFiles()
	if err != nil {
		return nil, err
	}
	t.AddRow("inside-the-box, churny desktop", fmt.Sprintf("%d", len(inside.Hidden)), fmt.Sprintf("%d", len(inside.Hidden)), "-")

	// Outside-the-box, standard churn.
	m2, err := machine.New(p)
	if err != nil {
		return nil, err
	}
	r, err := winpe.OutsideFileCheck(m2, core.DiffOptions{})
	if err != nil {
		return nil, err
	}
	t.AddRow("outside-the-box, standard services",
		fmt.Sprintf("%d", len(r.Hidden)+len(r.Noise)),
		fmt.Sprintf("%d", len(r.Hidden)),
		noiseBreakdown(r))

	// Outside-the-box on the CCM machine: 7 raw FPs, then disable CCM.
	pCCM := workload.SmallProfile()
	pCCM.Churn = append(pCCM.Churn, machine.ChurnCCM)
	m3, err := machine.New(pCCM)
	if err != nil {
		return nil, err
	}
	raw, err := winpe.OutsideFileCheck(m3, core.DiffOptions{NoiseFilters: []core.NoiseFilter{}})
	if err != nil {
		return nil, err
	}
	t.AddRow("outside-the-box, CCM machine (unfiltered)", fmt.Sprintf("%d", len(raw.Hidden)), "-", "CCM inventory + logs")
	m3.DisableChurn(machine.ChurnCCM)
	raw2, err := winpe.OutsideFileCheck(m3, core.DiffOptions{NoiseFilters: []core.NoiseFilter{}})
	if err != nil {
		return nil, err
	}
	t.AddRow("same machine, CCM service disabled", fmt.Sprintf("%d", len(raw2.Hidden)), "-", "AV log + SR entry")
	t.AddNote("paper: zero inside-the-box FPs; outside-the-box FPs were 'two or less' on all but one machine; on the CCM machine disabling the service reduced 7 FPs to 2")
	return t, nil
}

func noiseBreakdown(r *core.Report) string {
	counts := map[string]int{}
	for _, f := range r.Noise {
		counts[f.Reason]++
	}
	parts := make([]string, 0, len(counts))
	for reason, n := range counts {
		parts = append(parts, fmt.Sprintf("%s x%d", reason, n))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}

// RegistryCorruptionFP regenerates the §3 text: the one Registry false
// positive came from a corrupted AppInit_DLLs data field that RegEdit
// (NUL-terminated Win32 strings) rendered empty while the raw hive parse
// saw the full counted data. The fix is the paper's: export the parent
// key through the Win32 view, delete it, and re-import.
func RegistryCorruptionFP() (*Table, error) {
	t := &Table{ID: "regfp", Title: "Registry corruption false positive and fix",
		Header: []string{"Step", "Hidden-ASEP findings", "Detail"}}
	m, err := labMachine()
	if err != nil {
		return nil, err
	}
	key := `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion\Windows`
	d := core.NewDetector(m)

	r, err := d.ScanASEPs()
	if err != nil {
		return nil, err
	}
	t.AddRow("clean machine", fmt.Sprintf("%d", len(r.Hidden)), "-")

	// Corruption: the data field starts with a NUL followed by garbage.
	if err := m.Reg.SetString(key, "AppInit_DLLs", "\x00�GARBAGE\x13"); err != nil {
		return nil, err
	}
	r, err = d.ScanASEPs()
	if err != nil {
		return nil, err
	}
	detail := "-"
	if len(r.Hidden) > 0 {
		detail = r.Hidden[0].Display
	}
	t.AddRow("corrupted AppInit_DLLs data", fmt.Sprintf("%d", len(r.Hidden)), detail)

	// The paper's fix: export the parent key (through the Win32 view, so
	// the corrupted data is not carried along), delete it, re-import.
	exported, err := exportKeyWin32(m, key)
	if err != nil {
		return nil, err
	}
	if err := m.Reg.DeleteKeyTree(key); err != nil {
		return nil, err
	}
	if err := m.Reg.CreateKey(key); err != nil {
		return nil, err
	}
	for _, v := range exported {
		if err := m.Reg.SetString(key, v.name, v.data); err != nil {
			return nil, err
		}
	}
	r, err = d.ScanASEPs()
	if err != nil {
		return nil, err
	}
	t.AddRow("after export/delete/re-import fix", fmt.Sprintf("%d", len(r.Hidden)), "-")
	t.AddNote("paper: 'the data field of the AppInit_DLLs entry contained corrupted data that did not show up in RegEdit, but appeared in the raw hive parsing'; fixed by exporting, deleting and re-importing the parent key")
	return t, nil
}

type exportedValue struct{ name, data string }

// exportKeyWin32 reads a key's values through the Win32 view — exactly
// what "exporting the parent key to a text file" does, which is why the
// corrupted tail is dropped.
func exportKeyWin32(m *machine.Machine, key string) ([]exportedValue, error) {
	snap, err := m.API.QueryKeyWin32(m.SystemCall(), key)
	if err != nil {
		return nil, err
	}
	out := make([]exportedValue, 0, len(snap.Values))
	for _, v := range snap.Values {
		s := hive.Value{Name: v.Name, Type: v.Type, Data: v.Data}.String()
		if i := strings.IndexByte(s, 0); i >= 0 {
			s = s[:i]
		}
		out = append(out, exportedValue{name: v.Name, data: s})
	}
	return out, nil
}

// LinuxRootkits regenerates the §5 Unix experiments: Darkside, Superkit,
// Synapsis and T0rnkit all detected by the ls-vs-clean-CD cross-view
// diff, with at most four daemon-churn false positives.
func LinuxRootkits() (*Table, error) {
	t := &Table{ID: "linux", Title: "Linux/Unix ghostware detection",
		Header: []string{"Rootkit", "OS", "Kind", "Hidden found", "False positives", "Match"}}
	cases := []struct {
		os      string
		install func(m *unixfs.Machine) (*unixfs.Rootkit, error)
	}{
		{"FreeBSD", unixfs.InstallDarkside},
		{"Linux", unixfs.InstallSuperkit},
		{"Linux", unixfs.InstallSynapsis},
		{"Linux", unixfs.InstallT0rnkit},
	}
	for _, tc := range cases {
		m, err := unixfs.NewMachine(tc.os)
		if err != nil {
			return nil, err
		}
		rk, err := tc.install(m)
		if err != nil {
			return nil, err
		}
		if err := m.RunDaemons(30); err != nil {
			return nil, err
		}
		hidden, fps, err := m.OutsideCheck()
		if err != nil {
			return nil, err
		}
		match := "OK"
		if len(hidden) != len(rk.HiddenPaths) {
			match = fmt.Sprintf("got %d want %d", len(hidden), len(rk.HiddenPaths))
		}
		if len(fps) > 4 {
			match += " (FPs > 4!)"
		}
		t.AddRow(rk.Name, tc.os, rk.Kind, fmt.Sprintf("%d", len(hidden)), fmt.Sprintf("%d", len(fps)), match)
	}
	t.AddNote("paper: 'in all cases, the number of false positives was four or less, and they were mostly temporary files and log files generated by system daemons such as FTP'")
	return t, nil
}
