// Package unixfs implements the §5 Linux/Unix side of the paper: a
// simple inode filesystem, a hookable getdents syscall (what LKM
// rootkits intercept), a replaceable /bin/ls (what T0rnkit trojanizes),
// always-running daemons (the false-positive source), and the clean
// bootable-CD scan. The same cross-view diff catches Darkside, Superkit,
// Synapsis and T0rnkit.
package unixfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ghostbuster/internal/vtime"
)

// ErrNotFound reports a missing path.
var ErrNotFound = errors.New("unixfs: not found")

// ErrNotDir reports a non-directory path component.
var ErrNotDir = errors.New("unixfs: not a directory")

type inode struct {
	name     string
	dir      bool
	data     []byte
	children map[string]*inode
}

// FS is the in-memory Unix filesystem. The inode tree is the truth.
type FS struct {
	root *inode
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{root: &inode{name: "/", dir: true, children: map[string]*inode{}}}
}

func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

func (f *FS) lookup(path string) (*inode, error) {
	cur := f.root
	for _, comp := range splitPath(path) {
		if !cur.dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next, ok := cur.children[comp]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		cur = next
	}
	return cur, nil
}

// MkdirAll creates a directory and parents.
func (f *FS) MkdirAll(path string) error {
	cur := f.root
	for _, comp := range splitPath(path) {
		next, ok := cur.children[comp]
		if !ok {
			next = &inode{name: comp, dir: true, children: map[string]*inode{}}
			cur.children[comp] = next
		}
		if !next.dir {
			return fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces a file, creating parents.
func (f *FS) WriteFile(path string, data []byte) error {
	comps := splitPath(path)
	if len(comps) == 0 {
		return fmt.Errorf("%w: empty path", ErrNotFound)
	}
	dir := "/" + strings.Join(comps[:len(comps)-1], "/")
	if err := f.MkdirAll(dir); err != nil {
		return err
	}
	parent, err := f.lookup(dir)
	if err != nil {
		return err
	}
	name := comps[len(comps)-1]
	node, ok := parent.children[name]
	if !ok {
		node = &inode{name: name}
		parent.children[name] = node
	}
	if node.dir {
		return fmt.Errorf("unixfs: %s is a directory", path)
	}
	node.data = append([]byte(nil), data...)
	return nil
}

// Append appends to a file (creating it if needed).
func (f *FS) Append(path string, data []byte) error {
	node, err := f.lookup(path)
	if err != nil {
		return f.WriteFile(path, data)
	}
	node.data = append(node.data, data...)
	return nil
}

// ReadFile returns file contents.
func (f *FS) ReadFile(path string) ([]byte, error) {
	node, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if node.dir {
		return nil, fmt.Errorf("unixfs: %s is a directory", path)
	}
	return append([]byte(nil), node.data...), nil
}

// Remove deletes a file or empty directory.
func (f *FS) Remove(path string) error {
	comps := splitPath(path)
	if len(comps) == 0 {
		return fmt.Errorf("unixfs: cannot remove /")
	}
	parent, err := f.lookup("/" + strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return err
	}
	name := comps[len(comps)-1]
	node, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if node.dir && len(node.children) > 0 {
		return fmt.Errorf("unixfs: %s not empty", path)
	}
	delete(parent.children, name)
	return nil
}

// Exists reports whether the path resolves.
func (f *FS) Exists(path string) bool {
	_, err := f.lookup(path)
	return err == nil
}

// Dirent is one directory entry as returned by getdents.
type Dirent struct {
	Name string
	Dir  bool
	Size int
}

// readDirRaw lists a directory straight from the inodes (the kernel's
// own view, below the syscall table).
func (f *FS) readDirRaw(path string) ([]Dirent, error) {
	node, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if !node.dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	out := make([]Dirent, 0, len(node.children))
	for _, c := range node.children {
		out = append(out, Dirent{Name: c.name, Dir: c.dir, Size: len(c.data)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Walk lists every path in the tree directly from the inodes — the
// clean-CD truth.
func (f *FS) Walk() []string {
	var out []string
	var rec func(node *inode, prefix string)
	rec = func(node *inode, prefix string) {
		names := make([]string, 0, len(node.children))
		for n := range node.children {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			c := node.children[n]
			p := prefix + "/" + n
			out = append(out, p)
			if c.dir {
				rec(c, p)
			}
		}
	}
	rec(f.root, "")
	return out
}

// GetdentsFilter is an LKM-installed syscall-table hook: it sees each
// getdents result and may remove entries.
type GetdentsFilter struct {
	Owner  string
	Filter func(dir string, entries []Dirent) []Dirent
}

// LSBinary is the /bin/ls implementation. T0rnkit replaces it with a
// trojan that filters its *own* output (the kernel stays clean).
type LSBinary func(m *Machine, dir string, entries []Dirent) []Dirent

// Machine is one Unix host.
type Machine struct {
	OS    string // "Linux" or "FreeBSD"
	FS    *FS
	Clock *vtime.Clock

	lkmHooks []GetdentsFilter
	lsTrojan LSBinary // nil = genuine ls
	daemons  []string // daemon names, for FP bookkeeping
	shutdown int      // shutdown counter for unique flush names
}

// NewMachine builds a host with the standard tree and daemons.
func NewMachine(osName string) (*Machine, error) {
	m := &Machine{OS: osName, FS: NewFS(), Clock: &vtime.Clock{}, daemons: []string{"ftpd", "syslogd"}}
	base := []string{"/bin", "/sbin", "/etc", "/usr/bin", "/usr/lib", "/var/log", "/var/run", "/tmp", "/home/user"}
	for _, d := range base {
		if err := m.FS.MkdirAll(d); err != nil {
			return nil, err
		}
	}
	files := map[string]string{
		"/bin/ls":           "ELF genuine ls",
		"/bin/ps":           "ELF genuine ps",
		"/bin/sh":           "ELF sh",
		"/etc/passwd":       "root:x:0:0",
		"/etc/inetd.conf":   "ftp stream tcp",
		"/var/log/messages": "boot ok\n",
		"/usr/bin/find":     "ELF find",
	}
	for p, c := range files {
		if err := m.FS.WriteFile(p, []byte(c)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// InstallLKM loads a kernel module that hooks the getdents syscall.
func (m *Machine) InstallLKM(hook GetdentsFilter) { m.lkmHooks = append(m.lkmHooks, hook) }

// LKMCount returns how many syscall hooks are loaded.
func (m *Machine) LKMCount() int { return len(m.lkmHooks) }

// TrojanizeLS replaces /bin/ls with a trojan implementation.
func (m *Machine) TrojanizeLS(binary []byte, impl LSBinary) error {
	if err := m.FS.WriteFile("/bin/ls", binary); err != nil {
		return err
	}
	m.lsTrojan = impl
	return nil
}

// Getdents is the syscall: kernel view filtered through the LKM hooks.
func (m *Machine) Getdents(dir string) ([]Dirent, error) {
	entries, err := m.FS.readDirRaw(dir)
	if err != nil {
		return nil, err
	}
	for _, h := range m.lkmHooks {
		entries = h.Filter(dir, entries)
	}
	m.Clock.ChargeOps(int64(len(entries))+1, 30*time.Microsecond)
	return entries, nil
}

// LS runs the installed /bin/ls recursively over root and returns full
// paths — the inside-the-box high-level scan ("we used the 'ls' command
// to scan all mounted partitions").
func (m *Machine) LS(root string) ([]string, error) {
	var out []string
	var rec func(dir string) error
	rec = func(dir string) error {
		entries, err := m.Getdents(dir)
		if err != nil {
			return err
		}
		if m.lsTrojan != nil {
			entries = m.lsTrojan(m, dir, entries)
		}
		prefix := strings.TrimSuffix(dir, "/")
		for _, e := range entries {
			p := prefix + "/" + e.Name
			out = append(out, p)
			if e.Dir {
				if err := rec(p); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(root); err != nil {
		return nil, err
	}
	return out, nil
}

// RunDaemons simulates ticks of daemon activity (log appends, the
// occasional temp file).
func (m *Machine) RunDaemons(ticks int) error {
	for i := 0; i < ticks; i++ {
		m.Clock.Advance(time.Minute)
		if err := m.FS.Append("/var/log/messages", []byte("tick\n")); err != nil {
			return err
		}
	}
	return nil
}

// ShutdownFlush is what daemons write while the host goes down for the
// CD boot — the paper's Unix false positives ("mostly temporary files
// and log files generated by system daemons such as FTP"): up to 4 new
// files.
func (m *Machine) ShutdownFlush() error {
	m.shutdown++
	writes := []string{
		fmt.Sprintf("/var/log/xferlog.%d", m.shutdown),
		fmt.Sprintf("/tmp/ftp%04d.tmp", m.shutdown),
		fmt.Sprintf("/var/run/syslogd.%d.pid", m.shutdown),
	}
	for _, p := range writes {
		if err := m.FS.WriteFile(p, []byte("flush")); err != nil {
			return err
		}
	}
	return nil
}

// CleanBootScan is the outside-the-box scan: boot the same ls command
// from a clean, bootable CD distribution — genuine binary, clean kernel,
// so it reads the inodes directly.
func (m *Machine) CleanBootScan() []string {
	m.Clock.Advance(90 * time.Second) // CD boot
	return m.FS.Walk()
}

// Diff returns paths present in outside but missing from inside — the
// hidden files.
func Diff(inside, outside []string) []string {
	seen := make(map[string]bool, len(inside))
	for _, p := range inside {
		seen[p] = true
	}
	var hidden []string
	for _, p := range outside {
		if !seen[p] {
			hidden = append(hidden, p)
		}
	}
	sort.Strings(hidden)
	return hidden
}

// OutsideCheck runs the full §5 Unix flow: inside ls scan, shutdown
// (daemon flush), CD boot, clean scan, diff. It returns the hidden
// paths and the benign false positives, classified by the same "mostly
// temporary files and log files" rule the paper applied by hand.
func (m *Machine) OutsideCheck() (hidden, falsePositives []string, err error) {
	inside, err := m.LS("/")
	if err != nil {
		return nil, nil, err
	}
	if err := m.ShutdownFlush(); err != nil {
		return nil, nil, err
	}
	outside := m.CleanBootScan()
	for _, p := range Diff(inside, outside) {
		if isDaemonChurn(p) {
			falsePositives = append(falsePositives, p)
		} else {
			hidden = append(hidden, p)
		}
	}
	return hidden, falsePositives, nil
}

func isDaemonChurn(path string) bool {
	return strings.HasPrefix(path, "/tmp/") ||
		strings.HasPrefix(path, "/var/log/") ||
		strings.HasPrefix(path, "/var/run/")
}
