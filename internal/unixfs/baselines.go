package unixfs

import (
	"sort"
	"strings"
)

// This file implements the two classic Unix detection baselines the
// paper cites: the "ls vs echo *" comparison [B99] and a
// chkrootkit-style known-path checker [YC].

// EchoGlob models the shell built-in `echo *` expansion: the shell reads
// the directory itself through the getdents syscall — it never executes
// /bin/ls. Comparing its output with ls output detects a *trojanized
// ls* (T0rnkit), because the two programs disagree; but an LKM rootkit
// hooks the syscall both programs share, so the comparison stays silent
// (the paper's point: you must compare across *levels*, not across
// *programs at the same level*).
func (m *Machine) EchoGlob(dir string) ([]string, error) {
	entries, err := m.Getdents(dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	prefix := strings.TrimSuffix(dir, "/")
	for _, e := range entries {
		out = append(out, prefix+"/"+e.Name)
	}
	sort.Strings(out)
	return out, nil
}

// LsVsEcho runs the [B99] check over one directory: entries `echo *`
// sees that `ls` does not.
func (m *Machine) LsVsEcho(dir string) ([]string, error) {
	glob, err := m.EchoGlob(dir)
	if err != nil {
		return nil, err
	}
	// ls on a single directory (non-recursive): same pipeline LS uses.
	entries, err := m.Getdents(dir)
	if err != nil {
		return nil, err
	}
	if m.lsTrojan != nil {
		entries = m.lsTrojan(m, dir, entries)
	}
	lsSet := map[string]bool{}
	prefix := strings.TrimSuffix(dir, "/")
	for _, e := range entries {
		lsSet[prefix+"/"+e.Name] = true
	}
	var hidden []string
	for _, p := range glob {
		if !lsSet[p] {
			hidden = append(hidden, p)
		}
	}
	return hidden, nil
}

// KnownRootkitPaths are the filesystem locations a chkrootkit-style
// scanner probes for known rootkits. Probing is a *targeted lookup*, not
// an enumeration — which matters: getdents hooks filter listings, but a
// direct lookup of an exact path still succeeds on most LKM rootkits
// (they rarely hook every path-resolution syscall).
var KnownRootkitPaths = []string{
	"/usr/src/.puta",     // T0rnkit
	"/usr/lib/.darkside", // Darkside
	"/sbin/superkit",     // Superkit
	"/usr/lib/.syn",      // Synapsis
	"/dev/ptyp",          // generic
	"/usr/share/.zk",     // generic
}

// ChkrootkitScan probes the known paths and returns hits. Like the real
// tool, it only knows rootkits someone has already catalogued — a new
// rootkit with fresh paths is invisible to it, while the cross-view diff
// needs no signatures at all.
func (m *Machine) ChkrootkitScan() []string {
	var hits []string
	for _, p := range KnownRootkitPaths {
		if m.FS.Exists(p) {
			hits = append(hits, p)
		}
	}
	return hits
}
