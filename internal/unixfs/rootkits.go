package unixfs

import "strings"

// This file models the Unix rootkits of §5: Darkside 0.2.3 (FreeBSD),
// Superkit and Synapsis (Linux LKM), and T0rnkit (trojanized binaries).

// Rootkit describes one installed Unix rootkit and its ground truth.
type Rootkit struct {
	Name        string
	Kind        string // "LKM" or "trojan binaries"
	HiddenPaths []string
}

func hideByFragment(owner, fragment string) GetdentsFilter {
	return GetdentsFilter{
		Owner: owner,
		Filter: func(dir string, entries []Dirent) []Dirent {
			out := entries[:0:0]
			for _, e := range entries {
				if strings.Contains(strings.ToLower(e.Name), strings.ToLower(fragment)) {
					continue
				}
				out = append(out, e)
			}
			return out
		},
	}
}

// InstallDarkside installs Darkside 0.2.3 for FreeBSD: an LKM hooking
// getdents to hide its ".darkside" tree.
func InstallDarkside(m *Machine) (*Rootkit, error) {
	paths := []string{
		"/usr/lib/.darkside",
		"/usr/lib/.darkside/ds",
		"/usr/lib/.darkside/ds.conf",
	}
	if err := m.FS.MkdirAll(paths[0]); err != nil {
		return nil, err
	}
	for _, p := range paths[1:] {
		if err := m.FS.WriteFile(p, []byte("darkside")); err != nil {
			return nil, err
		}
	}
	m.InstallLKM(hideByFragment("Darkside", ".darkside"))
	return &Rootkit{Name: "Darkside 0.2.3", Kind: "LKM", HiddenPaths: paths}, nil
}

// InstallSuperkit installs the Superkit Linux rootkit: LKM getdents
// hook hiding its "superkit" files.
func InstallSuperkit(m *Machine) (*Rootkit, error) {
	paths := []string{
		"/sbin/superkit",
		"/usr/lib/superkit.ko",
		"/var/superkit.log",
	}
	for _, p := range paths {
		if err := m.FS.WriteFile(p, []byte("superkit")); err != nil {
			return nil, err
		}
	}
	m.InstallLKM(hideByFragment("Superkit", "superkit"))
	return &Rootkit{Name: "Superkit", Kind: "LKM", HiddenPaths: paths}, nil
}

// InstallSynapsis installs the Synapsis Linux rootkit: LKM getdents
// hook hiding its ".syn" dotfiles.
func InstallSynapsis(m *Machine) (*Rootkit, error) {
	paths := []string{
		"/usr/lib/.syn",
		"/usr/lib/.syn/synapsis",
		"/usr/lib/.syn/net",
	}
	if err := m.FS.MkdirAll(paths[0]); err != nil {
		return nil, err
	}
	for _, p := range paths[1:] {
		if err := m.FS.WriteFile(p, []byte("synapsis")); err != nil {
			return nil, err
		}
	}
	m.InstallLKM(hideByFragment("Synapsis", ".syn"))
	return &Rootkit{Name: "Synapsis", Kind: "LKM", HiddenPaths: paths}, nil
}

// InstallT0rnkit installs the T0rnkit rootkit, which "replaces OS
// utility programs with trojanized versions": the kernel stays clean,
// but /bin/ls itself filters out the rootkit's files.
func InstallT0rnkit(m *Machine) (*Rootkit, error) {
	paths := []string{
		"/usr/src/.puta",
		"/usr/src/.puta/t0rns",
		"/usr/src/.puta/t0rnsb",
		"/usr/src/.puta/t0rnp",
	}
	if err := m.FS.MkdirAll(paths[0]); err != nil {
		return nil, err
	}
	for _, p := range paths[1:] {
		if err := m.FS.WriteFile(p, []byte("t0rn")); err != nil {
			return nil, err
		}
	}
	trojan := func(m *Machine, dir string, entries []Dirent) []Dirent {
		out := entries[:0:0]
		for _, e := range entries {
			low := strings.ToLower(e.Name)
			if strings.Contains(low, ".puta") || strings.Contains(low, "t0rn") {
				continue
			}
			out = append(out, e)
		}
		return out
	}
	if err := m.TrojanizeLS([]byte("ELF trojaned ls (t0rn)"), trojan); err != nil {
		return nil, err
	}
	return &Rootkit{Name: "T0rnkit", Kind: "trojan binaries", HiddenPaths: paths}, nil
}
