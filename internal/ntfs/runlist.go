package ntfs

import "fmt"

// Extent is one contiguous run of clusters.
type Extent struct {
	Start uint64 // first LCN
	Count uint64 // clusters
}

// encodeRunlist serializes extents in the NTFS runlist encoding: each run
// is a header byte whose low nibble gives the byte width of the length
// field and whose high nibble gives the byte width of the signed LCN
// delta field, followed by those fields little-endian. A zero header byte
// terminates the list.
func encodeRunlist(runs []Extent) []byte {
	var out []byte
	prev := int64(0)
	for _, r := range runs {
		lenBytes := intWidth(int64(r.Count))
		delta := int64(r.Start) - prev
		offBytes := intWidth(delta)
		out = append(out, byte(offBytes<<4|lenBytes))
		out = appendLE(out, int64(r.Count), lenBytes)
		out = appendLE(out, delta, offBytes)
		prev = int64(r.Start)
	}
	return append(out, 0)
}

// decodeRunlist parses a runlist, returning the extents and the number of
// bytes consumed (including the terminator).
func decodeRunlist(b []byte) ([]Extent, int, error) {
	var runs []Extent
	prev := int64(0)
	i := 0
	for {
		if i >= len(b) {
			return nil, 0, fmt.Errorf("%w: unterminated runlist", ErrCorrupt)
		}
		hdr := b[i]
		i++
		if hdr == 0 {
			return runs, i, nil
		}
		lenBytes := int(hdr & 0xF)
		offBytes := int(hdr >> 4)
		if lenBytes == 0 || lenBytes > 8 || offBytes > 8 || i+lenBytes+offBytes > len(b) {
			return nil, 0, fmt.Errorf("%w: bad runlist header %#x", ErrCorrupt, hdr)
		}
		count := readUnsignedLE(b[i : i+lenBytes])
		i += lenBytes
		delta := readSignedLE(b[i : i+offBytes])
		i += offBytes
		start := prev + delta
		if start < 0 || count == 0 {
			return nil, 0, fmt.Errorf("%w: negative LCN or empty run", ErrCorrupt)
		}
		runs = append(runs, Extent{Start: uint64(start), Count: count})
		prev = start
	}
}

// intWidth returns the minimum number of bytes needed to represent v as a
// little-endian signed integer.
func intWidth(v int64) int {
	for n := 1; n < 8; n++ {
		limit := int64(1) << uint(8*n-1)
		if v >= -limit && v < limit {
			return n
		}
	}
	return 8
}

func appendLE(out []byte, v int64, n int) []byte {
	for i := 0; i < n; i++ {
		out = append(out, byte(v>>(8*i)))
	}
	return out
}

func readUnsignedLE(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func readSignedLE(b []byte) int64 {
	v := readUnsignedLE(b)
	bits := uint(8 * len(b))
	if bits < 64 && v&(1<<(bits-1)) != 0 {
		v |= ^uint64(0) << bits // sign-extend
	}
	return int64(v)
}
