package ntfs

import (
	"fmt"
	"strings"
)

// RawEntry is one in-use file or directory recovered by parsing the
// device bytes directly, bypassing the filesystem driver and every API
// layer above it. This is the paper's "low-level scan ... reading the
// Master File Table directly".
type RawEntry struct {
	Path     string // full path from the volume root, "\"-separated
	Name     string
	Record   uint32
	Seq      uint16
	Size     uint64
	Dir      bool
	Created  uint64
	Modified uint64
	Attrs    uint32
	Orphan   bool // parent chain did not resolve to the root
	Stream   bool // entry is an alternate data stream ("file:stream")
}

// RawScanStats reports the work a raw scan performed, used by the virtual
// clock to charge realistic scan time.
type RawScanStats struct {
	RecordsParsed int
	BytesRead     int64
}

// RawScan parses a device image and returns every in-use user file and
// directory with a reconstructed full path. It never consults a Volume's
// in-memory index: the image bytes are the only input, so API-level and
// driver-level hiding cannot affect the result.
func RawScan(image []byte) ([]RawEntry, RawScanStats, error) {
	var stats RawScanStats
	geo, err := decodeBoot(image)
	if err != nil {
		return nil, stats, err
	}
	stats.BytesRead += BytesPerSector

	type rawNode struct {
		name    string
		parent  uint32
		dir     bool
		inUse   bool
		size    uint64
		si      StandardInformation
		seq     uint16
		streams []StreamInfo
	}
	nodes := make(map[uint32]*rawNode, geo.MFTRecords)
	mftBase := int(geo.MFTStart) * ClusterSize
	for i := uint32(0); uint64(i) < geo.MFTRecords; i++ {
		off := mftBase + int(i)*RecordSize
		if off+RecordSize > len(image) {
			return nil, stats, fmt.Errorf("%w: MFT extends past image", ErrCorrupt)
		}
		rec, err := DecodeRecord(image[off:off+RecordSize], i)
		if err != nil {
			// A single mangled record should not abort the scan; the
			// paper's tool must keep going over hostile disks.
			continue
		}
		stats.RecordsParsed++
		stats.BytesRead += RecordSize
		if !rec.InUse {
			continue
		}
		fn, err := rec.FileName()
		if err != nil {
			continue
		}
		si, _ := rec.StandardInformation()
		pnum, _ := SplitRef(fn.ParentRef)
		node := &rawNode{name: fn.Name, parent: pnum, dir: rec.Dir, inUse: true, size: fn.RealSize, si: si, seq: rec.Seq}
		for _, a := range rec.NamedStreams() {
			size := uint64(len(a.Content))
			if a.NonResident {
				size = a.RealSize
			}
			node.streams = append(node.streams, StreamInfo{Name: a.Name, Size: size})
		}
		nodes[i] = node
	}

	// Reconstruct paths by chasing parent references with memoization.
	memo := make(map[uint32]string, len(nodes))
	var pathOf func(num uint32, depth int) (string, bool)
	pathOf = func(num uint32, depth int) (string, bool) {
		if num == RecordRoot {
			return "", true
		}
		if p, ok := memo[num]; ok {
			return p, !strings.HasPrefix(p, orphanPrefix)
		}
		n, ok := nodes[num]
		if !ok || depth > 512 {
			return orphanPrefix, false
		}
		parentPath, rooted := pathOf(n.parent, depth+1)
		p := parentPath + "\\" + n.name
		if !rooted {
			p = fmt.Sprintf("%s\\rec%d\\%s", orphanPrefix, n.parent, n.name)
		}
		memo[num] = p
		return p, rooted
	}

	out := make([]RawEntry, 0, len(nodes))
	for num, n := range nodes {
		if num < firstUserRec {
			continue
		}
		p, rooted := pathOf(num, 0)
		out = append(out, RawEntry{
			Path: p, Name: n.name, Record: num, Seq: n.seq, Size: n.size, Dir: n.dir,
			Created: n.si.Created, Modified: n.si.Modified, Attrs: n.si.FileAttrs,
			Orphan: !rooted,
		})
		// Alternate data streams appear as distinct "file:stream"
		// entries: the raw parse is the only view that ever lists them.
		for _, s := range n.streams {
			out = append(out, RawEntry{
				Path: p + ":" + s.Name, Name: n.name + ":" + s.Name,
				Record: num, Seq: n.seq, Size: s.Size,
				Created: n.si.Created, Modified: n.si.Modified, Attrs: n.si.FileAttrs,
				Orphan: !rooted, Stream: true,
			})
		}
	}
	return out, stats, nil
}

const orphanPrefix = "\\$OrphanFiles"

// DeletedEntry describes a stale (not in-use) MFT record that still
// carries a decodable $FILE_NAME — the residue NTFS leaves after a
// delete. A forensic extension of GhostBuster lists these.
type DeletedEntry struct {
	Name   string
	Record uint32
	Seq    uint16
	Size   uint64
}

// ScanDeleted lists stale records recoverable from an image.
func ScanDeleted(image []byte) ([]DeletedEntry, error) {
	geo, err := decodeBoot(image)
	if err != nil {
		return nil, err
	}
	var out []DeletedEntry
	mftBase := int(geo.MFTStart) * ClusterSize
	for i := uint32(firstUserRec); uint64(i) < geo.MFTRecords; i++ {
		off := mftBase + int(i)*RecordSize
		if off+RecordSize > len(image) {
			break
		}
		rec, err := DecodeRecord(image[off:off+RecordSize], i)
		if err != nil || rec.InUse || len(rec.Attrs) == 0 {
			continue
		}
		fn, err := rec.FileName()
		if err != nil {
			continue
		}
		out = append(out, DeletedEntry{Name: fn.Name, Record: i, Seq: rec.Seq, Size: fn.RealSize})
	}
	return out, nil
}
