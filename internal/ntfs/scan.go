package ntfs

import (
	"fmt"
	"strings"
	"sync"
)

// RawEntry is one in-use file or directory recovered by parsing the
// device bytes directly, bypassing the filesystem driver and every API
// layer above it. This is the paper's "low-level scan ... reading the
// Master File Table directly".
type RawEntry struct {
	Path     string // full path from the volume root, "\"-separated
	Name     string
	Record   uint32
	Seq      uint16
	Size     uint64
	Dir      bool
	Created  uint64
	Modified uint64
	Attrs    uint32
	Orphan   bool // parent chain did not resolve to the root
	Stream   bool // entry is an alternate data stream ("file:stream")
}

// RawScanStats reports the work a raw scan performed, used by the virtual
// clock to charge realistic scan time.
type RawScanStats struct {
	RecordsParsed int
	BytesRead     int64
	// CorruptRecords counts records that carried data (nonzero magic)
	// but failed to decode — torn writes, bit flips, hostile bytes.
	// Free records are blank and do not count. A nonzero value means
	// parent chains may be severed, so orphan classification of the
	// surviving records is unreliable.
	CorruptRecords int
}

// RawScan parses a device image and returns every in-use user file and
// directory with a reconstructed full path. It never consults a Volume's
// in-memory index: the image bytes are the only input, so API-level and
// driver-level hiding cannot affect the result.
func RawScan(image []byte) ([]RawEntry, RawScanStats, error) {
	return RawScanParallel(image, 1)
}

type rawNode struct {
	name    string
	parent  uint32
	dir     bool
	used    bool // record decoded to an in-use file (slot is live)
	size    uint64
	si      StandardInformation
	seq     uint16
	streams []StreamInfo
}

// RawScanParallel is RawScan with the record-decode pass sharded across
// up to `workers` goroutines. Decoding dominates a raw scan (each 1 KiB
// record is fixed-up and attribute-walked) and records are independent,
// so workers decode disjoint contiguous record ranges into disjoint
// slots of one preallocated node table — no locks, no merge. Path
// reconstruction chases cross-record parent links and stays sequential.
// The result set and stats are identical for any worker count.
func RawScanParallel(image []byte, workers int) ([]RawEntry, RawScanStats, error) {
	var stats RawScanStats
	geo, err := decodeBoot(image)
	if err != nil {
		return nil, stats, err
	}
	stats.BytesRead += BytesPerSector

	// Bound the attacker-controlled counts in uint64 space first: a
	// forged boot sector claiming 2^62 records would overflow the int
	// arithmetic below, slip past the range check, and panic makeslice.
	imgLen := uint64(len(image))
	if geo.MFTStart > imgLen/ClusterSize || geo.MFTRecords > imgLen/RecordSize {
		return nil, stats, fmt.Errorf("%w: MFT extends past image", ErrCorrupt)
	}
	nRec := int(geo.MFTRecords)
	mftBase := int(geo.MFTStart) * ClusterSize
	if mftBase+nRec*RecordSize > len(image) {
		return nil, stats, fmt.Errorf("%w: MFT extends past image", ErrCorrupt)
	}
	// One flat node arena instead of a slice of per-record heap nodes:
	// workers write disjoint index ranges in place, and the path pass
	// walks it without pointer chasing.
	nodes := make([]rawNode, nRec)
	decodeRange := func(lo, hi int) RawScanStats {
		var st RawScanStats
		// The scratch record is reused across the shard (attribute slice
		// capacity carries over), and resident attribute content borrows
		// the image bytes — the caller holds the device immutable for the
		// duration, and everything retained below (names, stream names)
		// is converted to owned strings by the UTF-16 decode.
		var rec Record
		for i := lo; i < hi; i++ {
			off := mftBase + i*RecordSize
			if err := DecodeRecordBorrowed(&rec, image[off:off+RecordSize], uint32(i)); err != nil {
				// A single mangled record should not abort the scan; the
				// paper's tool must keep going over hostile disks. Blank
				// (free) records are expected; anything else is damage.
				if image[off] != 0 || image[off+1] != 0 || image[off+2] != 0 || image[off+3] != 0 {
					st.CorruptRecords++
				}
				continue
			}
			st.RecordsParsed++
			st.BytesRead += RecordSize
			if !rec.InUse {
				continue
			}
			fn, err := rec.FileName()
			if err != nil {
				st.CorruptRecords++
				continue
			}
			si, _ := rec.StandardInformation()
			pnum, _ := SplitRef(fn.ParentRef)
			node := &nodes[i]
			node.name, node.parent, node.dir, node.used = fn.Name, pnum, rec.Dir, true
			node.size, node.si, node.seq = fn.RealSize, si, rec.Seq
			for _, a := range rec.NamedStreams() {
				size := uint64(len(a.Content))
				if a.NonResident {
					size = a.RealSize
				}
				node.streams = append(node.streams, StreamInfo{Name: a.Name, Size: size})
			}
		}
		return st
	}
	const minShard = 512 // below this, goroutine overhead beats the decode work
	if maxW := (nRec + minShard - 1) / minShard; workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		st := decodeRange(0, nRec)
		stats.RecordsParsed += st.RecordsParsed
		stats.BytesRead += st.BytesRead
		stats.CorruptRecords += st.CorruptRecords
	} else {
		shardStats := make([]RawScanStats, workers)
		var wg sync.WaitGroup
		per := (nRec + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > nRec {
				hi = nRec
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				shardStats[w] = decodeRange(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, st := range shardStats {
			stats.RecordsParsed += st.RecordsParsed
			stats.BytesRead += st.BytesRead
			stats.CorruptRecords += st.CorruptRecords
		}
	}

	live := 0
	for i := range nodes {
		if nodes[i].used {
			live++
		}
	}

	// Reconstruct paths by chasing parent references with memoization.
	memo := make(map[uint32]string, live)
	var pathOf func(num uint32, depth int) (string, bool)
	pathOf = func(num uint32, depth int) (string, bool) {
		if num == RecordRoot {
			return "", true
		}
		if p, ok := memo[num]; ok {
			return p, !strings.HasPrefix(p, orphanPrefix)
		}
		if int(num) >= len(nodes) || !nodes[num].used || depth > 512 {
			return orphanPrefix, false
		}
		n := &nodes[num]
		parentPath, rooted := pathOf(n.parent, depth+1)
		p := parentPath + "\\" + n.name
		if !rooted {
			p = fmt.Sprintf("%s\\rec%d\\%s", orphanPrefix, n.parent, n.name)
		}
		memo[num] = p
		return p, rooted
	}

	out := make([]RawEntry, 0, live)
	for num := firstUserRec; num < len(nodes); num++ {
		n := &nodes[num]
		if !n.used {
			continue
		}
		p, rooted := pathOf(uint32(num), 0)
		out = append(out, RawEntry{
			Path: p, Name: n.name, Record: uint32(num), Seq: n.seq, Size: n.size, Dir: n.dir,
			Created: n.si.Created, Modified: n.si.Modified, Attrs: n.si.FileAttrs,
			Orphan: !rooted,
		})
		// Alternate data streams appear as distinct "file:stream"
		// entries: the raw parse is the only view that ever lists them.
		for _, s := range n.streams {
			out = append(out, RawEntry{
				Path: p + ":" + s.Name, Name: n.name + ":" + s.Name,
				Record: uint32(num), Seq: n.seq, Size: s.Size,
				Created: n.si.Created, Modified: n.si.Modified, Attrs: n.si.FileAttrs,
				Orphan: !rooted, Stream: true,
			})
		}
	}
	return out, stats, nil
}

const orphanPrefix = "\\$OrphanFiles"

// DeletedEntry describes a stale (not in-use) MFT record that still
// carries a decodable $FILE_NAME — the residue NTFS leaves after a
// delete. A forensic extension of GhostBuster lists these.
type DeletedEntry struct {
	Name   string
	Record uint32
	Seq    uint16
	Size   uint64
}

// ScanDeleted lists stale records recoverable from an image.
func ScanDeleted(image []byte) ([]DeletedEntry, error) {
	geo, err := decodeBoot(image)
	if err != nil {
		return nil, err
	}
	var out []DeletedEntry
	mftBase := int(geo.MFTStart) * ClusterSize
	// Borrowed decode with a reused scratch record: everything retained
	// below (names, sizes) is owned, so nothing aliases image on return.
	var rec Record
	for i := uint32(firstUserRec); uint64(i) < geo.MFTRecords; i++ {
		off := mftBase + int(i)*RecordSize
		if off+RecordSize > len(image) {
			break
		}
		if err := DecodeRecordBorrowed(&rec, image[off:off+RecordSize], i); err != nil || rec.InUse || len(rec.Attrs) == 0 {
			continue
		}
		fn, err := rec.FileName()
		if err != nil {
			continue
		}
		out = append(out, DeletedEntry{Name: fn.Name, Record: i, Seq: rec.Seq, Size: fn.RealSize})
	}
	return out, nil
}
