package ntfs

import (
	"encoding/binary"
	"testing"
)

func TestHostileMFTRecords(t *testing.T) {
	v, err := Format(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev := v.SnapshotImage()
	// forge a huge MFTRecords in the boot sector
	binary.LittleEndian.PutUint64(dev[56:], 1<<62)
	if _, _, err := RawScan(dev); err == nil {
		t.Fatal("RawScan accepted a boot sector claiming 2^62 MFT records")
	}
}
