package ntfs

import (
	"encoding/binary"
	"testing"
)

func TestHostileMFTRecords(t *testing.T) {
	dev := FormatImage(64)
	// forge a huge MFTRecords in the boot sector
	binary.LittleEndian.PutUint64(dev[56:], 1<<62)
	_, _, err := RawScan(dev)
	t.Logf("err=%v", err)
}
