package ntfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Info describes one file or directory as seen by the filesystem driver.
type Info struct {
	Name     string
	Size     uint64
	Dir      bool
	Created  uint64
	Modified uint64
	Attrs    uint32
	Record   uint32
}

// CreateOptions controls Create.
type CreateOptions struct {
	Dir          bool
	Data         []byte
	DeclaredSize uint64 // advertised size if larger than len(Data); lets
	// workloads model multi-GB disks without storing the bytes
	Attrs    uint32
	Created  uint64
	Modified uint64
}

type node struct {
	name     string
	parent   uint32
	dir      bool
	children map[string]uint32 // upper-cased name -> record, dirs only
}

// Volume is a mounted NTFS-like volume. The device bytes are the truth;
// the node index is the filesystem driver's view, rebuilt from the bytes
// at mount time and kept in sync by mutations.
//
// A read-write lock makes the volume safe for concurrent readers
// (ReadDir, Stat, ReadFile, WithDevice raw parses) against serialized
// mutators. Device returns the live bytes without synchronization and is
// for single-threaded use only; concurrent raw reads go through
// WithDevice and out-of-band writes through PatchDevice.
type Volume struct {
	mu        sync.RWMutex
	dev       []byte
	geo       Geometry
	nodes     map[uint32]*node
	freeRec   uint32 // search hint
	usedBytes int64  // advertised bytes in use (directory sizes excluded)
	gen       uint64 // mutation generation, see Generation
	fault     DeviceFault
}

// Format creates a fresh volume with capacity for the given number of
// data clusters and MFT records.
func Format(dataClusters, mftRecords int) (*Volume, error) {
	if dataClusters < 1 || mftRecords < firstUserRec+1 {
		return nil, fmt.Errorf("ntfs: bad format parameters (%d clusters, %d records)", dataClusters, mftRecords)
	}
	mftClusters := (uint64(mftRecords)*RecordSize + ClusterSize - 1) / ClusterSize
	// Layout: [boot][bitmap][mft][data...]
	bitmapStart := uint64(1)
	// One bit per cluster; solve with a generous first guess then verify.
	total := 1 + uint64(dataClusters) + mftClusters
	bitmapClusters := (total/8 + ClusterSize) / ClusterSize // over-estimate is fine
	total += bitmapClusters
	geo := Geometry{
		TotalClusters:  total,
		BitmapStart:    bitmapStart,
		BitmapClusters: bitmapClusters,
		MFTStart:       bitmapStart + bitmapClusters,
		MFTRecords:     uint64(mftRecords),
	}
	v := &Volume{
		dev:   make([]byte, total*ClusterSize),
		geo:   geo,
		nodes: map[uint32]*node{},
	}
	encodeBoot(v.dev, geo)
	for c := uint64(0); c < geo.MFTStart+mftClusters; c++ {
		v.setBit(c, true)
	}
	// Metadata records. They hold names so that raw scans can label them.
	meta := []struct {
		num  uint32
		name string
		dir  bool
	}{
		{RecordMFT, "$MFT", false},
		{RecordBitmap, "$Bitmap", false},
		{RecordVolume, "$Volume", false},
		{RecordRoot, ".", true},
	}
	for _, m := range meta {
		rec := &Record{
			Num: m.num, Seq: 1, InUse: true, Dir: m.dir,
			Attrs: []Attribute{
				{Type: AttrStandardInformation, Content: encodeStandardInformation(StandardInformation{FileAttrs: FileAttrSystem})},
				{Type: AttrFileName, Content: encodeFileName(FileName{ParentRef: FileRef(RecordRoot, 1), Namespace: 1, Name: m.name})},
			},
		}
		if err := v.writeRecord(rec); err != nil {
			return nil, err
		}
	}
	v.nodes[RecordRoot] = &node{name: ".", parent: RecordRoot, dir: true, children: map[string]uint32{}}
	v.freeRec = firstUserRec
	return v, nil
}

// Mount re-parses a device image and rebuilds the driver index. Records
// whose parent chain is broken stay on disk but are unreachable through
// the driver — only a raw scan sees them.
func Mount(dev []byte) (*Volume, error) {
	geo, err := decodeBoot(dev)
	if err != nil {
		return nil, err
	}
	v := &Volume{dev: dev, geo: geo, nodes: map[uint32]*node{}, freeRec: firstUserRec}
	type pending struct {
		rec    uint32
		parent uint32
		name   string
		dir    bool
		size   uint64
	}
	var all []pending
	for i := uint32(0); uint64(i) < geo.MFTRecords; i++ {
		rec, err := v.readRecord(i)
		if err != nil {
			return nil, err
		}
		if !rec.InUse {
			continue
		}
		fn, err := rec.FileName()
		if err != nil {
			return nil, err
		}
		pnum, _ := SplitRef(fn.ParentRef)
		all = append(all, pending{rec: i, parent: pnum, name: fn.Name, dir: rec.Dir, size: fn.RealSize})
	}
	for _, p := range all {
		v.nodes[p.rec] = &node{name: p.name, parent: p.parent, dir: p.dir}
		if p.dir {
			v.nodes[p.rec].children = map[string]uint32{}
		}
		if !p.dir && p.rec >= firstUserRec {
			v.usedBytes += int64(p.size)
		}
	}
	for _, p := range all {
		if p.rec == RecordRoot || p.rec < firstUserRec && p.rec != RecordRoot {
			continue
		}
		parent, ok := v.nodes[p.parent]
		if ok && parent.dir {
			parent.children[strings.ToUpper(p.name)] = p.rec
		}
	}
	if _, ok := v.nodes[RecordRoot]; !ok {
		return nil, fmt.Errorf("%w: no root directory record", ErrCorrupt)
	}
	return v, nil
}

// Device returns the live device bytes. Inside-the-box low-level scans
// read these directly (GhostBuster parses them with RawScan). The
// returned slice is not synchronized with mutators; concurrent readers
// must use WithDevice instead.
func (v *Volume) Device() []byte { return v.dev }

// DeviceFault is a fault-injection hook over raw device reads. BeforeRead
// runs before the volume lock is taken (so it may call volume mutators to
// model a mid-scan mutation, or fail the read outright); CorruptImage may
// return a damaged copy of the image for this read — it must never modify
// the slice it is given, and returns nil to leave the read clean.
type DeviceFault interface {
	BeforeRead(op string) error
	CorruptImage(op string, dev []byte) []byte
}

// SetDeviceFault installs (or, with nil, removes) the raw-read fault hook.
func (v *Volume) SetDeviceFault(f DeviceFault) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.fault = f
}

func (v *Volume) deviceFault() DeviceFault {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.fault
}

// WithDevice runs f over the device bytes while holding the volume's
// read lock, so a raw parse sees a consistent image even while other
// goroutines mutate the volume. f must not retain the slice or call
// volume mutators (that would self-deadlock).
func (v *Volume) WithDevice(f func(dev []byte) error) error {
	return v.WithDeviceOp("raw-scan", f)
}

// WithDeviceOp is WithDevice with an explicit operation label passed to
// the fault hook, so fault plans can target one raw-read path (e.g. the
// boot-chain scan) without firing on every MFT parse.
func (v *Volume) WithDeviceOp(op string, f func(dev []byte) error) error {
	if fh := v.deviceFault(); fh != nil {
		if err := fh.BeforeRead(op); err != nil {
			return err
		}
		v.mu.RLock()
		defer v.mu.RUnlock()
		dev := v.dev
		if c := fh.CorruptImage(op, dev); c != nil {
			dev = c
		}
		return f(dev)
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return f(v.dev)
}

// ReadDeviceRange copies n device bytes at off under the read lock.
// This is the *driver-side* raw read (the filesystem reading its own
// disk): it does not pass through the device fault hook, which models
// scanner-facing reads only.
func (v *Volume) ReadDeviceRange(off, n int) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if off < 0 || n < 0 || off+n > len(v.dev) {
		return nil, fmt.Errorf("%w: device read [%d,%d) outside device of %d bytes", ErrCorrupt, off, off+n, len(v.dev))
	}
	out := make([]byte, n)
	copy(out, v.dev[off:])
	return out, nil
}

// PatchDevice overwrites device bytes at off, bypassing the filesystem
// driver — the direct-disk-write trick ghostware uses to dodge the
// driver stack. The write is serialized against other volume operations
// and bumps the mutation generation.
func (v *Volume) PatchDevice(off int, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if off < 0 || off+len(data) > len(v.dev) {
		return fmt.Errorf("%w: device write [%d,%d) outside device of %d bytes", ErrCorrupt, off, off+len(data), len(v.dev))
	}
	copy(v.dev[off:], data)
	v.gen++
	return nil
}

// Generation returns the volume's mutation generation. Every operation
// that can change the device bytes bumps it, conservatively: a bump may
// happen even when the bytes end up unchanged (a failed create still
// counts), but bytes never change without a bump. Incremental scanners
// key parse caches on this value. Callers that write the device bytes
// directly (bypassing the Volume mutators) must call BumpGeneration.
func (v *Volume) Generation() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gen
}

// BumpGeneration records an out-of-band mutation of the device bytes.
func (v *Volume) BumpGeneration() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen++
}

// SnapshotImage returns a copy of the device, as the WinPE / VM outside
// scans would obtain by reading the physical disk. An injected read
// error here has no error channel, so it zeroes the copy's boot sector:
// an unreadable disk yields an unparseable image, which downstream
// parsers reject loudly.
func (v *Volume) SnapshotImage() []byte {
	fh := v.deviceFault()
	var readErr error
	if fh != nil {
		readErr = fh.BeforeRead("snapshot")
	}
	v.mu.RLock()
	out := make([]byte, len(v.dev))
	copy(out, v.dev)
	v.mu.RUnlock()
	if fh != nil {
		if c := fh.CorruptImage("snapshot", out); c != nil {
			out = c
		}
		if readErr != nil {
			for i := 0; i < BytesPerSector && i < len(out); i++ {
				out[i] = 0
			}
		}
	}
	return out
}

// Geometry returns the volume geometry.
func (v *Volume) Geometry() Geometry { return v.geo }

// UsedBytes returns the advertised bytes in use by user files.
func (v *Volume) UsedBytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.usedBytes
}

// FileCount returns the number of in-use user records (files + dirs).
func (v *Volume) FileCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for rec := range v.nodes {
		if rec >= firstUserRec {
			n++
		}
	}
	return n
}

// --- raw record and bitmap access ---------------------------------------

func (v *Volume) recordOffset(num uint32) (int, error) {
	if uint64(num) >= v.geo.MFTRecords {
		return 0, fmt.Errorf("%w: record %d out of range", ErrCorrupt, num)
	}
	return int(v.geo.MFTStart*ClusterSize) + int(num)*RecordSize, nil
}

func (v *Volume) readRecord(num uint32) (*Record, error) {
	off, err := v.recordOffset(num)
	if err != nil {
		return nil, err
	}
	return DecodeRecord(v.dev[off:off+RecordSize], num)
}

func (v *Volume) writeRecord(rec *Record) error {
	off, err := v.recordOffset(rec.Num)
	if err != nil {
		return err
	}
	b, err := rec.Encode()
	if err != nil {
		return err
	}
	copy(v.dev[off:], b)
	return nil
}

func (v *Volume) setBit(cluster uint64, used bool) {
	off := v.geo.BitmapStart*ClusterSize + cluster/8
	bit := byte(1) << (cluster % 8)
	if used {
		v.dev[off] |= bit
	} else {
		v.dev[off] &^= bit
	}
}

func (v *Volume) getBit(cluster uint64) bool {
	off := v.geo.BitmapStart*ClusterSize + cluster/8
	return v.dev[off]&(1<<(cluster%8)) != 0
}

// allocClusters finds n free clusters, preferring contiguous runs.
func (v *Volume) allocClusters(n int) ([]Extent, error) {
	var runs []Extent
	remaining := n
	var runStart uint64
	runLen := uint64(0)
	flush := func() {
		if runLen > 0 {
			runs = append(runs, Extent{Start: runStart, Count: runLen})
			runLen = 0
		}
	}
	for c := uint64(0); c < v.geo.TotalClusters && remaining > 0; c++ {
		if v.getBit(c) {
			flush()
			continue
		}
		if runLen == 0 {
			runStart = c
		}
		runLen++
		remaining--
	}
	flush()
	if remaining > 0 {
		return nil, fmt.Errorf("%w: need %d more clusters", ErrVolumeFull, remaining)
	}
	for _, r := range runs {
		for c := r.Start; c < r.Start+r.Count; c++ {
			v.setBit(c, true)
		}
	}
	return runs, nil
}

func (v *Volume) freeClusters(runs []Extent) {
	for _, r := range runs {
		for c := r.Start; c < r.Start+r.Count; c++ {
			v.setBit(c, false)
		}
	}
}

func (v *Volume) allocRecord() (uint32, error) {
	userRecs := uint32(v.geo.MFTRecords) - firstUserRec
	for i := uint32(0); i < userRecs; i++ {
		num := firstUserRec + (v.freeRec-firstUserRec+i)%userRecs
		rec, err := v.readRecord(num)
		if err != nil {
			return 0, err
		}
		if !rec.InUse {
			v.freeRec = num + 1
			return num, nil
		}
	}
	return 0, fmt.Errorf("%w: MFT exhausted", ErrVolumeFull)
}

// --- path resolution ------------------------------------------------------

// SplitPath normalizes a backslash-separated volume path into components.
// Paths are rooted at "\"; an empty or "\" path refers to the root.
func SplitPath(path string) []string {
	path = strings.Trim(path, "\\")
	if path == "" {
		return nil
	}
	return strings.Split(path, "\\")
}

func (v *Volume) resolve(path string) (uint32, error) {
	cur := uint32(RecordRoot)
	for _, comp := range SplitPath(path) {
		n := v.nodes[cur]
		if n == nil || !n.dir {
			return 0, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next, ok := n.children[strings.ToUpper(comp)]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		cur = next
	}
	return cur, nil
}

func splitDirBase(path string) (dir, base string) {
	comps := SplitPath(path)
	if len(comps) == 0 {
		return "", ""
	}
	return "\\" + strings.Join(comps[:len(comps)-1], "\\"), comps[len(comps)-1]
}

// --- mutation operations ---------------------------------------------------

// Create makes a file or directory at path. The parent must exist.
func (v *Volume) Create(path string, opt CreateOptions) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.create(path, opt)
}

func (v *Volume) create(path string, opt CreateOptions) error {
	v.gen++
	dir, base := splitDirBase(path)
	if base == "" {
		return fmt.Errorf("%w: empty path", ErrNotFound)
	}
	if len(base) > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrNameTooLong, base)
	}
	parentRec, err := v.resolve(dir)
	if err != nil {
		return err
	}
	parent := v.nodes[parentRec]
	if !parent.dir {
		return fmt.Errorf("%w: %s", ErrNotDir, dir)
	}
	if _, dup := parent.children[strings.ToUpper(base)]; dup {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	num, err := v.allocRecord()
	if err != nil {
		return err
	}
	old, err := v.readRecord(num)
	if err != nil {
		return err
	}
	size := uint64(len(opt.Data))
	if opt.DeclaredSize > size {
		size = opt.DeclaredSize
	}
	if opt.Dir {
		size = 0
	}
	rec := &Record{
		Num: num, Seq: old.Seq + 1, InUse: true, Dir: opt.Dir,
		Attrs: []Attribute{
			{Type: AttrStandardInformation, Content: encodeStandardInformation(StandardInformation{
				Created: opt.Created, Modified: opt.Modified, FileAttrs: opt.Attrs,
			})},
			{Type: AttrFileName, Content: encodeFileName(FileName{
				ParentRef: FileRef(parentRec, 1), RealSize: size, Namespace: 1, Name: base,
			})},
		},
	}
	if !opt.Dir {
		data, err := v.buildDataAttr(rec, opt.Data)
		if err != nil {
			return err
		}
		rec.Attrs = append(rec.Attrs, data)
	}
	if err := v.writeRecord(rec); err != nil {
		return err
	}
	n := &node{name: base, parent: parentRec, dir: opt.Dir}
	if opt.Dir {
		n.children = map[string]uint32{}
	} else {
		v.usedBytes += int64(size)
	}
	v.nodes[num] = n
	parent.children[strings.ToUpper(base)] = num
	return nil
}

// buildDataAttr stores data resident if it fits the record budget,
// otherwise in freshly allocated clusters.
func (v *Volume) buildDataAttr(rec *Record, data []byte) (Attribute, error) {
	resident := Attribute{Type: AttrData, Content: data}
	trial := *rec
	trial.Attrs = append(append([]Attribute(nil), rec.Attrs...), resident)
	if trial.encodedSize() <= RecordSize {
		return resident, nil
	}
	clusters := (len(data) + ClusterSize - 1) / ClusterSize
	runs, err := v.allocClusters(clusters)
	if err != nil {
		return Attribute{}, err
	}
	pos := 0
	for _, r := range runs {
		off := int(r.Start) * ClusterSize
		n := copy(v.dev[off:off+int(r.Count)*ClusterSize], data[pos:])
		pos += n
	}
	return Attribute{Type: AttrData, NonResident: true, Runs: runs, RealSize: uint64(len(data))}, nil
}

// MkdirAll creates a directory and any missing parents.
func (v *Volume) MkdirAll(path string, created uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	comps := SplitPath(path)
	cur := ""
	for _, c := range comps {
		cur += "\\" + c
		err := v.create(cur, CreateOptions{Dir: true, Created: created, Modified: created})
		if err != nil && !strings.Contains(err.Error(), ErrExists.Error()) {
			return err
		}
	}
	return nil
}

// WriteFile replaces the data of an existing file.
func (v *Volume) WriteFile(path string, data []byte, modified uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.writeFile(path, data, modified)
}

func (v *Volume) writeFile(path string, data []byte, modified uint64) error {
	v.gen++
	num, err := v.resolve(path)
	if err != nil {
		return err
	}
	n := v.nodes[num]
	if n.dir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return err
	}
	// Free old non-resident clusters and strip the main data attribute
	// (alternate data streams are untouched).
	var kept []Attribute
	var oldSize uint64
	for _, a := range rec.Attrs {
		if a.Type == AttrData && a.Name == "" {
			if a.NonResident {
				v.freeClusters(a.Runs)
				oldSize = a.RealSize
			} else {
				oldSize = uint64(len(a.Content))
			}
			continue
		}
		kept = append(kept, a)
	}
	rec.Attrs = kept
	data2, err := v.buildDataAttr(rec, data)
	if err != nil {
		return err
	}
	rec.Attrs = append(rec.Attrs, data2)
	// Refresh size and mtime in $FILE_NAME and $STANDARD_INFORMATION.
	fn, err := rec.FileName()
	if err != nil {
		return err
	}
	if fn.RealSize == oldSize || uint64(len(data)) > fn.RealSize {
		v.usedBytes += int64(len(data)) - int64(fn.RealSize)
		fn.RealSize = uint64(len(data))
	}
	rec.attr(AttrFileName).Content = encodeFileName(fn)
	si, err := rec.StandardInformation()
	if err != nil {
		return err
	}
	si.Modified = modified
	rec.attr(AttrStandardInformation).Content = encodeStandardInformation(si)
	return v.writeRecord(rec)
}

// Append appends data to an existing file (creating it if absent).
func (v *Volume) Append(path string, data []byte, modified uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, err := v.resolve(path); err != nil {
		return v.create(path, CreateOptions{Data: data, Created: modified, Modified: modified})
	}
	old, err := v.readFile(path)
	if err != nil {
		return err
	}
	return v.writeFile(path, append(old, data...), modified)
}

// ReadFile returns the stored data of a file.
func (v *Volume) ReadFile(path string) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.readFile(path)
}

func (v *Volume) readFile(path string) ([]byte, error) {
	num, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if v.nodes[num].dir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return nil, err
	}
	a := rec.attr(AttrData)
	if a == nil {
		return nil, nil
	}
	if !a.NonResident {
		return append([]byte(nil), a.Content...), nil
	}
	out := make([]byte, 0, a.RealSize)
	for _, r := range a.Runs {
		off := int(r.Start) * ClusterSize
		out = append(out, v.dev[off:off+int(r.Count)*ClusterSize]...)
	}
	return out[:a.RealSize], nil
}

// Remove deletes a file or empty directory: the record's in-use flag is
// cleared and its sequence number bumped, leaving a stale record behind
// exactly as NTFS does.
func (v *Volume) Remove(path string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.remove(path)
}

func (v *Volume) remove(path string) error {
	v.gen++
	num, err := v.resolve(path)
	if err != nil {
		return err
	}
	if num < firstUserRec {
		return fmt.Errorf("ntfs: cannot remove metadata record %d", num)
	}
	n := v.nodes[num]
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return err
	}
	for _, a := range rec.Attrs {
		if a.Type == AttrData && a.NonResident {
			v.freeClusters(a.Runs)
		}
	}
	if fn, err := rec.FileName(); err == nil && !n.dir {
		v.usedBytes -= int64(fn.RealSize)
	}
	rec.InUse = false
	rec.Seq++
	if err := v.writeRecord(rec); err != nil {
		return err
	}
	delete(v.nodes[n.parent].children, strings.ToUpper(n.name))
	delete(v.nodes, num)
	return nil
}

// RemoveAll removes path and all descendants.
func (v *Volume) RemoveAll(path string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.removeAll(path)
}

func (v *Volume) removeAll(path string) error {
	num, err := v.resolve(path)
	if err != nil {
		return err
	}
	n := v.nodes[num]
	if n.dir {
		names := make([]string, 0, len(n.children))
		for _, child := range n.children {
			names = append(names, path+"\\"+v.nodes[child].name)
		}
		for _, c := range names {
			if err := v.removeAll(c); err != nil {
				return err
			}
		}
	}
	return v.remove(path)
}

// --- driver-level queries ---------------------------------------------------

func (v *Volume) infoFor(num uint32) (Info, error) {
	rec, err := v.readRecord(num)
	if err != nil {
		return Info{}, err
	}
	fn, err := rec.FileName()
	if err != nil {
		return Info{}, err
	}
	si, err := rec.StandardInformation()
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name: fn.Name, Size: fn.RealSize, Dir: rec.Dir,
		Created: si.Created, Modified: si.Modified, Attrs: si.FileAttrs, Record: num,
	}, nil
}

// Stat returns metadata for path.
func (v *Volume) Stat(path string) (Info, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	num, err := v.resolve(path)
	if err != nil {
		return Info{}, err
	}
	return v.infoFor(num)
}

// Exists reports whether path resolves.
func (v *Volume) Exists(path string) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, err := v.resolve(path)
	return err == nil
}

// ReadDir lists the children of a directory in name order. This is the
// filesystem driver's answer to an enumeration IRP — the base of the
// hookable call chain.
func (v *Volume) ReadDir(path string) ([]Info, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	num, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	n := v.nodes[num]
	if !n.dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	out := make([]Info, 0, len(n.children))
	for _, child := range n.children {
		info, err := v.infoFor(child)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return strings.ToUpper(out[i].Name) < strings.ToUpper(out[j].Name) })
	return out, nil
}

// SetAttrs updates the DOS attribute bits of a file (used to model
// hidden/system attribute tricks).
func (v *Volume) SetAttrs(path string, attrs uint32, modified uint64) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen++
	num, err := v.resolve(path)
	if err != nil {
		return err
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return err
	}
	si, err := rec.StandardInformation()
	if err != nil {
		return err
	}
	si.FileAttrs = attrs
	si.Modified = modified
	rec.attr(AttrStandardInformation).Content = encodeStandardInformation(si)
	return v.writeRecord(rec)
}
