package ntfs

import "fmt"

// Boot-chain truth source. A bootkit lives in the slack space of the
// boot sector (the bytes between the BPB geometry fields and the 0x55AA
// signature, where real NTFS keeps its bootstrap code) and sanitizes
// inside-the-box reads of sector 0. GhostBuster diffs the boot sector
// the API returns against the raw device bytes, region by region: a
// region that is clean in the high view but tampered in the low view is
// the bootkit.

// Boot-chain region boundaries. The four regions partition the sector:
// the jump+OEM header, the BPB geometry fields, the bootstrap code area
// (bootkit payload space), and the 0x55AA signature.
const (
	BootCodeOff = bootBitmapLenOff + 8 // 80: first byte after the geometry fields
	BootCodeLen = bootSigOff - BootCodeOff
)

// bootRegions names the sector's regions and their byte ranges.
var bootRegions = []struct {
	name     string
	off, end int
}{
	{"OEM", 0, bootBytesPerSecOff},
	{"GEOMETRY", bootBytesPerSecOff, BootCodeOff},
	{"CODE", BootCodeOff, bootSigOff},
	{"SIG", bootSigOff, BytesPerSector},
}

// BootRegion is the decoded status of one boot-sector region.
type BootRegion struct {
	Name   string // OEM | GEOMETRY | CODE | SIG
	Status string // "clean", or "tampered@<hash>" when it departs the baseline
}

// ID is the region's cross-view identity: regions that hold different
// bytes get different IDs, so the columnar diff surfaces a region the
// API sanitizes but the device holds tampered.
func (r BootRegion) ID() string { return r.Name + ":" + r.Status }

// DecodeBootRegions splits a boot sector into its regions and labels
// each against the pristine baseline captured at machine build time. A
// nil baseline labels every region with its content hash instead (both
// views of an untampered machine still agree). A sector shorter than
// BytesPerSector is a torn read and fails loudly.
func DecodeBootRegions(sector, baseline []byte) ([]BootRegion, error) {
	if len(sector) < BytesPerSector {
		return nil, fmt.Errorf("%w: boot sector read returned %d bytes, want %d", ErrCorrupt, len(sector), BytesPerSector)
	}
	out := make([]BootRegion, 0, len(bootRegions))
	for _, reg := range bootRegions {
		got := sector[reg.off:reg.end]
		status := fmt.Sprintf("tampered@%08x", bootHash(got))
		if baseline == nil {
			status = fmt.Sprintf("content@%08x", bootHash(got))
		} else if len(baseline) >= reg.end && bytesEqual(got, baseline[reg.off:reg.end]) {
			status = "clean"
		}
		out = append(out, BootRegion{Name: reg.name, Status: status})
	}
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bootHash is FNV-1a over a region's bytes, for stable tamper labels.
func bootHash(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}
