package ntfs

import (
	"encoding/binary"
	"fmt"
)

// Record is the parsed form of one MFT FILE record.
type Record struct {
	Num   uint32
	Seq   uint16
	InUse bool
	Dir   bool
	Attrs []Attribute
}

// Attribute is one typed attribute within a FILE record. Resident
// attributes carry Content; non-resident attributes carry a cluster
// runlist and the real (byte) size of the stream. A non-empty Name on a
// $DATA attribute makes it an Alternate Data Stream (ADS) — invisible to
// ordinary directory enumeration, which is exactly why stealth software
// hides payloads there (paper §6 lists ADS as future work; this
// implementation covers it).
type Attribute struct {
	Type        uint32
	Name        string
	NonResident bool
	Content     []byte
	Runs        []Extent
	RealSize    uint64
}

// StandardInformation is the decoded $STANDARD_INFORMATION content.
type StandardInformation struct {
	Created   uint64 // FILETIME-style 100ns ticks of virtual time
	Modified  uint64
	FileAttrs uint32
}

// FileName is the decoded $FILE_NAME content.
type FileName struct {
	ParentRef uint64 // (seq << 48) | parent record number
	RealSize  uint64 // size the directory entry advertises
	Namespace byte
	Name      string
}

// FileRef packs a record number and sequence into a 64-bit file
// reference, as NTFS does.
func FileRef(num uint32, seq uint16) uint64 {
	return uint64(seq)<<48 | uint64(num)
}

// SplitRef unpacks a file reference.
func SplitRef(ref uint64) (num uint32, seq uint16) {
	return uint32(ref & 0xFFFFFFFFFFFF), uint16(ref >> 48)
}

func encodeStandardInformation(si StandardInformation) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b[0:], si.Created)
	binary.LittleEndian.PutUint64(b[8:], si.Modified)
	binary.LittleEndian.PutUint32(b[16:], si.FileAttrs)
	return b
}

func decodeStandardInformation(b []byte) (StandardInformation, error) {
	var si StandardInformation
	if len(b) < 24 {
		return si, fmt.Errorf("%w: short $STANDARD_INFORMATION", ErrCorrupt)
	}
	si.Created = binary.LittleEndian.Uint64(b[0:])
	si.Modified = binary.LittleEndian.Uint64(b[8:])
	si.FileAttrs = binary.LittleEndian.Uint32(b[16:])
	return si, nil
}

func encodeFileName(fn FileName) []byte {
	name := encodeUTF16(fn.Name)
	b := make([]byte, 20+len(name))
	binary.LittleEndian.PutUint64(b[0:], fn.ParentRef)
	binary.LittleEndian.PutUint64(b[8:], fn.RealSize)
	binary.LittleEndian.PutUint16(b[16:], uint16(len(name)/2))
	b[18] = fn.Namespace
	copy(b[20:], name)
	return b
}

func decodeFileName(b []byte) (FileName, error) {
	var fn FileName
	if len(b) < 20 {
		return fn, fmt.Errorf("%w: short $FILE_NAME", ErrCorrupt)
	}
	fn.ParentRef = binary.LittleEndian.Uint64(b[0:])
	fn.RealSize = binary.LittleEndian.Uint64(b[8:])
	n := int(binary.LittleEndian.Uint16(b[16:]))
	fn.Namespace = b[18]
	if 20+2*n > len(b) {
		return fn, fmt.Errorf("%w: $FILE_NAME name overruns attribute", ErrCorrupt)
	}
	fn.Name = decodeUTF16(b[20 : 20+2*n])
	return fn, nil
}

const (
	recHdrSize     = 24
	attrResHdr     = 16
	attrNonResHdr  = 24
	recSeqOff      = 4
	recLinksOff    = 6
	recFirstAttOff = 8
	recFlagsOff    = 10
	recUsedOff     = 12
	recAllocOff    = 16
	recNumOff      = 20
)

func align8(n int) int { return (n + 7) &^ 7 }

// encodedSize returns the bytes a record would occupy, so callers can
// check the RecordSize budget before committing a mutation.
func (r *Record) encodedSize() int {
	n := recHdrSize
	for _, a := range r.Attrs {
		name := len(encodeUTF16(a.Name))
		if a.NonResident {
			n += align8(attrNonResHdr + name + len(encodeRunlist(a.Runs)))
		} else {
			n += align8(attrResHdr + name + len(a.Content))
		}
	}
	return n + 8 // terminator
}

// Encode serializes the record into a RecordSize-byte buffer.
func (r *Record) Encode() ([]byte, error) {
	if sz := r.encodedSize(); sz > RecordSize {
		return nil, fmt.Errorf("%w: record %d needs %d bytes", ErrVolumeFull, r.Num, sz)
	}
	b := make([]byte, RecordSize)
	copy(b, "FILE")
	binary.LittleEndian.PutUint16(b[recSeqOff:], r.Seq)
	binary.LittleEndian.PutUint16(b[recLinksOff:], 1)
	binary.LittleEndian.PutUint16(b[recFirstAttOff:], recHdrSize)
	var flags uint16
	if r.InUse {
		flags |= flagInUse
	}
	if r.Dir {
		flags |= flagDirectory
	}
	binary.LittleEndian.PutUint16(b[recFlagsOff:], flags)
	binary.LittleEndian.PutUint32(b[recAllocOff:], RecordSize)
	binary.LittleEndian.PutUint32(b[recNumOff:], r.Num)

	off := recHdrSize
	for _, a := range r.Attrs {
		binary.LittleEndian.PutUint32(b[off:], a.Type)
		name := encodeUTF16(a.Name)
		if len(name)/2 > 255 {
			return nil, fmt.Errorf("%w: attribute name %q too long", ErrCorrupt, a.Name)
		}
		b[off+9] = byte(len(name) / 2)
		if a.NonResident {
			rl := encodeRunlist(a.Runs)
			recLen := align8(attrNonResHdr + len(name) + len(rl))
			binary.LittleEndian.PutUint32(b[off+4:], uint32(recLen))
			b[off+8] = 1
			binary.LittleEndian.PutUint32(b[off+12:], uint32(len(rl)))
			binary.LittleEndian.PutUint64(b[off+16:], a.RealSize)
			copy(b[off+attrNonResHdr:], name)
			copy(b[off+attrNonResHdr+len(name):], rl)
			off += recLen
		} else {
			recLen := align8(attrResHdr + len(name) + len(a.Content))
			binary.LittleEndian.PutUint32(b[off+4:], uint32(recLen))
			binary.LittleEndian.PutUint32(b[off+12:], uint32(len(a.Content)))
			copy(b[off+attrResHdr:], name)
			copy(b[off+attrResHdr+len(name):], a.Content)
			off += recLen
		}
	}
	binary.LittleEndian.PutUint32(b[off:], attrEnd)
	binary.LittleEndian.PutUint32(b[recUsedOff:], uint32(off+8))
	return b, nil
}

// DecodeRecord parses one RecordSize-byte FILE record. Records that were
// never written (all zero) decode as not-in-use with no attributes.
// Resident attribute Content is defensively copied out of b, so the
// record stays valid after b is reused or mutated — the contract the
// Volume mutators (which decode, edit, and re-encode records while the
// device buffer moves underneath) rely on.
func DecodeRecord(b []byte, num uint32) (*Record, error) {
	r := &Record{}
	if err := decodeRecordInto(r, b, num, false); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeRecordBorrowed decodes into rec, reusing rec's attribute slice
// capacity, with resident attribute Content *borrowing* b instead of
// copying. The caller owns b and must keep it immutable while rec (or
// anything aliasing its Content) is alive. The raw-scan hot path uses
// this: it decodes under the volume's device lock and converts every
// retained datum to an owned string before the lock is released, so
// nothing borrowed escapes.
func DecodeRecordBorrowed(rec *Record, b []byte, num uint32) error {
	return decodeRecordInto(rec, b, num, true)
}

func decodeRecordInto(r *Record, b []byte, num uint32, borrow bool) error {
	if len(b) < RecordSize {
		return fmt.Errorf("%w: short record %d", ErrCorrupt, num)
	}
	*r = Record{Num: num, Attrs: r.Attrs[:0]}
	if string(b[0:4]) != "FILE" {
		// Unused slot: all zeros is normal; anything else is corruption.
		for _, c := range b[:recHdrSize] {
			if c != 0 {
				return fmt.Errorf("%w: record %d has bad magic", ErrCorrupt, num)
			}
		}
		return nil
	}
	r.Seq = binary.LittleEndian.Uint16(b[recSeqOff:])
	flags := binary.LittleEndian.Uint16(b[recFlagsOff:])
	r.InUse = flags&flagInUse != 0
	r.Dir = flags&flagDirectory != 0
	used := int(binary.LittleEndian.Uint32(b[recUsedOff:]))
	if used > RecordSize {
		return fmt.Errorf("%w: record %d used size %d", ErrCorrupt, num, used)
	}
	off := int(binary.LittleEndian.Uint16(b[recFirstAttOff:]))
	for {
		if off+4 > RecordSize {
			return fmt.Errorf("%w: record %d attribute overrun", ErrCorrupt, num)
		}
		typ := binary.LittleEndian.Uint32(b[off:])
		if typ == attrEnd {
			break
		}
		if off+attrResHdr > RecordSize {
			return fmt.Errorf("%w: record %d attribute header overrun", ErrCorrupt, num)
		}
		recLen := int(binary.LittleEndian.Uint32(b[off+4:]))
		if recLen < attrResHdr || off+recLen > RecordSize {
			return fmt.Errorf("%w: record %d attribute length %d", ErrCorrupt, num, recLen)
		}
		a := Attribute{Type: typ, NonResident: b[off+8] == 1}
		nameBytes := 2 * int(b[off+9])
		if a.NonResident {
			if recLen < attrNonResHdr+nameBytes {
				return fmt.Errorf("%w: record %d non-resident attr too short", ErrCorrupt, num)
			}
			rlLen := int(binary.LittleEndian.Uint32(b[off+12:]))
			a.RealSize = binary.LittleEndian.Uint64(b[off+16:])
			a.Name = decodeUTF16(b[off+attrNonResHdr : off+attrNonResHdr+nameBytes])
			rlStart := off + attrNonResHdr + nameBytes
			if attrNonResHdr+nameBytes+rlLen > recLen {
				return fmt.Errorf("%w: record %d runlist overrun", ErrCorrupt, num)
			}
			runs, _, err := decodeRunlist(b[rlStart : rlStart+rlLen])
			if err != nil {
				return err
			}
			a.Runs = runs
		} else {
			cl := int(binary.LittleEndian.Uint32(b[off+12:]))
			if attrResHdr+nameBytes+cl > recLen {
				return fmt.Errorf("%w: record %d content overrun", ErrCorrupt, num)
			}
			a.Name = decodeUTF16(b[off+attrResHdr : off+attrResHdr+nameBytes])
			start := off + attrResHdr + nameBytes
			if borrow {
				a.Content = b[start : start+cl : start+cl]
			} else {
				a.Content = append([]byte(nil), b[start:start+cl]...)
			}
		}
		r.Attrs = append(r.Attrs, a)
		off += recLen
	}
	return nil
}

// attr returns the first *unnamed* attribute of the given type, or nil.
// For $DATA that is the file's main stream; alternate data streams are
// the named instances (see NamedStreams).
func (r *Record) attr(typ uint32) *Attribute {
	for i := range r.Attrs {
		if r.Attrs[i].Type == typ && r.Attrs[i].Name == "" {
			return &r.Attrs[i]
		}
	}
	return nil
}

// NamedStreams returns the record's alternate data streams.
func (r *Record) NamedStreams() []Attribute {
	var out []Attribute
	for _, a := range r.Attrs {
		if a.Type == AttrData && a.Name != "" {
			out = append(out, a)
		}
	}
	return out
}

// StandardInformation decodes the record's $STANDARD_INFORMATION.
func (r *Record) StandardInformation() (StandardInformation, error) {
	a := r.attr(AttrStandardInformation)
	if a == nil {
		return StandardInformation{}, fmt.Errorf("%w: record %d missing $STANDARD_INFORMATION", ErrCorrupt, r.Num)
	}
	return decodeStandardInformation(a.Content)
}

// FileName decodes the record's $FILE_NAME.
func (r *Record) FileName() (FileName, error) {
	a := r.attr(AttrFileName)
	if a == nil {
		return FileName{}, fmt.Errorf("%w: record %d missing $FILE_NAME", ErrCorrupt, r.Num)
	}
	return decodeFileName(a.Content)
}
