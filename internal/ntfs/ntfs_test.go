package ntfs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mustFormat(t *testing.T) *Volume {
	t.Helper()
	v, err := Format(512, 256)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	return v
}

func TestFormatAndBootSector(t *testing.T) {
	v := mustFormat(t)
	geo, err := decodeBoot(v.Device())
	if err != nil {
		t.Fatalf("decodeBoot: %v", err)
	}
	if geo.MFTRecords != 256 {
		t.Errorf("MFTRecords = %d, want 256", geo.MFTRecords)
	}
	if geo.MFTStart == 0 || geo.BitmapStart == 0 {
		t.Errorf("geometry regions unset: %+v", geo)
	}
	// Metadata clusters must be marked allocated.
	for c := uint64(0); c < geo.MFTStart; c++ {
		if !v.getBit(c) {
			t.Errorf("cluster %d should be allocated", c)
		}
	}
}

func TestCreateStatReadDir(t *testing.T) {
	v := mustFormat(t)
	if err := v.MkdirAll(`\windows\system32`, 100); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\windows\system32\kernel32.dll`, CreateOptions{Data: []byte("MZcode"), Created: 5, Modified: 7}); err != nil {
		t.Fatal(err)
	}
	info, err := v.Stat(`\windows\system32\kernel32.dll`)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "kernel32.dll" || info.Size != 6 || info.Dir {
		t.Errorf("Stat = %+v", info)
	}
	if info.Created != 5 || info.Modified != 7 {
		t.Errorf("timestamps = %d/%d, want 5/7", info.Created, info.Modified)
	}
	list, err := v.ReadDir(`\windows\system32`)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "kernel32.dll" {
		t.Errorf("ReadDir = %+v", list)
	}
}

func TestCaseInsensitiveLookup(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\File.TXT`, CreateOptions{Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Stat(`\FILE.txt`); err != nil {
		t.Errorf("case-insensitive Stat failed: %v", err)
	}
	if err := v.Create(`\file.txt`, CreateOptions{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate differing only in case should be ErrExists, got %v", err)
	}
}

func TestErrorPaths(t *testing.T) {
	v := mustFormat(t)
	if _, err := v.Stat(`\nope`); !errors.Is(err, ErrNotFound) {
		t.Errorf("Stat missing = %v, want ErrNotFound", err)
	}
	if err := v.Create(`\a\b\c`, CreateOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Create under missing parent = %v", err)
	}
	if err := v.Create(`\f`, CreateOptions{Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadDir(`\f`); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir on file = %v, want ErrNotDir", err)
	}
	if _, err := v.ReadFile(`\`); !errors.Is(err, ErrIsDir) {
		t.Errorf("ReadFile on root = %v, want ErrIsDir", err)
	}
	if err := v.Create(`\`+strings.Repeat("x", MaxNameLen+1), CreateOptions{}); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("overlong name = %v, want ErrNameTooLong", err)
	}
	if err := v.MkdirAll(`\d1\d2`, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\d1\d2\x`, CreateOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove(`\d1\d2`); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("Remove non-empty dir = %v, want ErrNotEmpty", err)
	}
}

func TestResidentAndNonResidentData(t *testing.T) {
	v := mustFormat(t)
	small := []byte("small resident payload")
	if err := v.Create(`\small.bin`, CreateOptions{Data: small}); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 3*ClusterSize+123)
	if err := v.Create(`\big.bin`, CreateOptions{Data: big}); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(`\small.bin`)
	if err != nil || !bytes.Equal(got, small) {
		t.Errorf("small round trip failed: %v", err)
	}
	got, err = v.ReadFile(`\big.bin`)
	if err != nil || !bytes.Equal(got, big) {
		t.Errorf("big round trip failed: err=%v equal=%v", err, bytes.Equal(got, big))
	}
	// The big file must really be non-resident on disk.
	num, err := v.resolve(`\big.bin`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.readRecord(num)
	if err != nil {
		t.Fatal(err)
	}
	a := rec.attr(AttrData)
	if a == nil || !a.NonResident {
		t.Error("3-cluster file should have a non-resident $DATA attribute")
	}
	if a.RealSize != uint64(len(big)) {
		t.Errorf("RealSize = %d, want %d", a.RealSize, len(big))
	}
}

func TestWriteFileGrowAndShrink(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\f.log`, CreateOptions{Data: []byte("start")}); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{1}, 2*ClusterSize)
	if err := v.WriteFile(`\f.log`, big, 50); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(`\f.log`)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("grow round trip failed: %v", err)
	}
	if err := v.WriteFile(`\f.log`, []byte("tiny"), 60); err != nil {
		t.Fatal(err)
	}
	got, err = v.ReadFile(`\f.log`)
	if err != nil || string(got) != "tiny" {
		t.Fatalf("shrink round trip: %q err=%v", got, err)
	}
	info, err := v.Stat(`\f.log`)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 4 || info.Modified != 60 {
		t.Errorf("after shrink Stat = %+v", info)
	}
}

func TestAppendCreatesAndExtends(t *testing.T) {
	v := mustFormat(t)
	if err := v.Append(`\svc.log`, []byte("line1\n"), 10); err != nil {
		t.Fatal(err)
	}
	if err := v.Append(`\svc.log`, []byte("line2\n"), 20); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadFile(`\svc.log`)
	if err != nil || string(got) != "line1\nline2\n" {
		t.Errorf("Append result = %q, err=%v", got, err)
	}
}

func TestRemoveFreesClustersForReuse(t *testing.T) {
	v, err := Format(8, 64) // tiny data area
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{7}, 5*ClusterSize)
	if err := v.Create(`\a`, CreateOptions{Data: big}); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\b`, CreateOptions{Data: big}); !errors.Is(err, ErrVolumeFull) {
		t.Fatalf("second big file should exhaust clusters, got %v", err)
	}
	if err := v.Remove(`\a`); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\b`, CreateOptions{Data: big}); err != nil {
		t.Errorf("create after remove should reuse clusters: %v", err)
	}
}

func TestRemoveLeavesStaleRecord(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\ghost.txt`, CreateOptions{Data: []byte("boo")}); err != nil {
		t.Fatal(err)
	}
	num, err := v.resolve(`\ghost.txt`)
	if err != nil {
		t.Fatal(err)
	}
	recBefore, err := v.readRecord(num)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Remove(`\ghost.txt`); err != nil {
		t.Fatal(err)
	}
	deleted, err := ScanDeleted(v.Device())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deleted {
		if d.Name == "ghost.txt" {
			found = true
			if d.Seq != recBefore.Seq+1 {
				t.Errorf("stale seq = %d, want %d", d.Seq, recBefore.Seq+1)
			}
		}
	}
	if !found {
		t.Error("deleted file should leave a recoverable stale record")
	}
}

func TestRemoveAll(t *testing.T) {
	v := mustFormat(t)
	if err := v.MkdirAll(`\tree\deep\deeper`, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := v.Create(fmt.Sprintf(`\tree\deep\f%d`, i), CreateOptions{Data: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.RemoveAll(`\tree`); err != nil {
		t.Fatal(err)
	}
	if v.Exists(`\tree`) {
		t.Error("tree should be gone")
	}
}

func TestRawScanSeesEverything(t *testing.T) {
	v := mustFormat(t)
	paths := []string{
		`\windows`, `\windows\system32`, `\windows\system32\hxdef100.exe`,
		`\windows\vanquish.dll`, `\data`, `\data\report.doc`,
	}
	for _, p := range paths {
		isDir := !strings.Contains(p[strings.LastIndex(p, `\`):], ".")
		if isDir {
			if err := v.MkdirAll(p, 1); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := v.Create(p, CreateOptions{Data: []byte("d"), Created: 1, Modified: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, stats, err := RawScan(v.Device())
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsParsed == 0 || stats.BytesRead == 0 {
		t.Error("scan stats not populated")
	}
	got := map[string]bool{}
	for _, e := range entries {
		got[strings.ToUpper(e.Path)] = true
	}
	for _, p := range paths {
		if !got[strings.ToUpper(p)] {
			t.Errorf("RawScan missing %s (got %d entries)", p, len(entries))
		}
	}
}

// TestRawScanMatchesDriverView is the core cross-view invariant on a
// clean volume: the raw byte parse and the driver index agree exactly.
func TestRawScanMatchesDriverView(t *testing.T) {
	v := mustFormat(t)
	if err := v.MkdirAll(`\a\b\c`, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := v.Create(fmt.Sprintf(`\a\b\file%02d.dat`, i), CreateOptions{Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	raw, _, err := RawScan(v.Device())
	if err != nil {
		t.Fatal(err)
	}
	var rawPaths []string
	for _, e := range raw {
		rawPaths = append(rawPaths, strings.ToUpper(e.Path))
	}
	var driverPaths []string
	var walk func(dir string)
	walk = func(dir string) {
		list, err := v.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, inf := range list {
			p := dir + `\` + inf.Name
			if dir == `\` {
				p = `\` + inf.Name
			}
			driverPaths = append(driverPaths, strings.ToUpper(p))
			if inf.Dir {
				walk(p)
			}
		}
	}
	walk(`\`)
	sort.Strings(rawPaths)
	sort.Strings(driverPaths)
	if len(rawPaths) != len(driverPaths) {
		t.Fatalf("raw %d entries, driver %d", len(rawPaths), len(driverPaths))
	}
	for i := range rawPaths {
		if rawPaths[i] != driverPaths[i] {
			t.Errorf("view mismatch at %d: raw %s driver %s", i, rawPaths[i], driverPaths[i])
		}
	}
}

func TestMountRebuildsIndex(t *testing.T) {
	v := mustFormat(t)
	if err := v.MkdirAll(`\x\y`, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\x\y\z.txt`, CreateOptions{Data: []byte("persist")}); err != nil {
		t.Fatal(err)
	}
	img := v.SnapshotImage()
	v2, err := Mount(img)
	if err != nil {
		t.Fatal(err)
	}
	data, err := v2.ReadFile(`\x\y\z.txt`)
	if err != nil || string(data) != "persist" {
		t.Errorf("remounted read = %q, err=%v", data, err)
	}
	if v2.FileCount() != v.FileCount() {
		t.Errorf("FileCount after mount = %d, want %d", v2.FileCount(), v.FileCount())
	}
	// Mutations on the remounted volume must work too.
	if err := v2.Create(`\x\new.txt`, CreateOptions{Data: []byte("n")}); err != nil {
		t.Errorf("create on remounted volume: %v", err)
	}
}

func TestDeclaredSizeAdvertisedButNotStored(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\huge.vhd`, CreateOptions{Data: []byte("hdr"), DeclaredSize: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	info, err := v.Stat(`\huge.vhd`)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 1<<30 {
		t.Errorf("declared size = %d, want 1GiB", info.Size)
	}
	if v.UsedBytes() < 1<<30 {
		t.Errorf("UsedBytes = %d, should include declared size", v.UsedBytes())
	}
	data, err := v.ReadFile(`\huge.vhd`)
	if err != nil || string(data) != "hdr" {
		t.Errorf("stored data = %q", data)
	}
}

func TestNamesNTFSAllowsButWin32Restricts(t *testing.T) {
	// NTFS itself must happily store the names the Win32 layer will later
	// refuse — that asymmetry is a hiding technique in the paper (§2).
	v := mustFormat(t)
	weird := []string{`\trailing.`, `\trailing `, `\CON`, `\NUL.txt`, `\sp ace.`}
	for _, p := range weird {
		if err := v.Create(p, CreateOptions{Data: []byte("w")}); err != nil {
			t.Errorf("NTFS should accept %q: %v", p, err)
		}
	}
	raw, _, err := RawScan(v.Device())
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range raw {
		for _, p := range weird {
			if `\`+e.Name == p {
				found++
			}
		}
	}
	if found != len(weird) {
		t.Errorf("raw scan found %d/%d Win32-hostile names", found, len(weird))
	}
}

func TestOrphanRecordsSurfaceInRawScan(t *testing.T) {
	v := mustFormat(t)
	if err := v.MkdirAll(`\dir`, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\dir\stranded.txt`, CreateOptions{Data: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the parent linkage on disk: point the file at a bogus record.
	num, err := v.resolve(`\dir\stranded.txt`)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := v.readRecord(num)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := rec.FileName()
	if err != nil {
		t.Fatal(err)
	}
	fn.ParentRef = FileRef(200, 9) // unused record
	rec.attr(AttrFileName).Content = encodeFileName(fn)
	if err := v.writeRecord(rec); err != nil {
		t.Fatal(err)
	}
	raw, _, err := RawScan(v.Device())
	if err != nil {
		t.Fatal(err)
	}
	var hit *RawEntry
	for i := range raw {
		if raw[i].Name == "stranded.txt" {
			hit = &raw[i]
		}
	}
	if hit == nil {
		t.Fatal("orphaned record should still appear in raw scan")
	}
	if !hit.Orphan || !strings.HasPrefix(hit.Path, orphanPrefix) {
		t.Errorf("orphan entry = %+v", hit)
	}
}

func TestRunlistRoundTripProperty(t *testing.T) {
	f := func(starts []uint32, counts []uint8) bool {
		n := len(starts)
		if len(counts) < n {
			n = len(counts)
		}
		if n > 16 {
			n = 16
		}
		runs := make([]Extent, 0, n)
		for i := 0; i < n; i++ {
			runs = append(runs, Extent{Start: uint64(starts[i]), Count: uint64(counts[i]%63) + 1})
		}
		enc := encodeRunlist(runs)
		dec, used, err := decodeRunlist(enc)
		if err != nil || used != len(enc) || len(dec) != len(runs) {
			return false
		}
		for i := range runs {
			if dec[i] != runs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRecordEncodeDecodeProperty(t *testing.T) {
	f := func(name string, data []byte, created, modified uint64, attrs uint32, dir bool) bool {
		runes := []rune(name)
		if len(runes) > 40 {
			runes = runes[:40]
		}
		clean := make([]rune, 0, len(runes))
		for _, r := range runes {
			if r != '\\' && r != 0 && r != utf16ReplacementGuard {
				clean = append(clean, r)
			}
		}
		if len(clean) == 0 {
			clean = []rune("x")
		}
		if len(data) > 200 {
			data = data[:200]
		}
		rec := &Record{
			Num: 42, Seq: 3, InUse: true, Dir: dir,
			Attrs: []Attribute{
				{Type: AttrStandardInformation, Content: encodeStandardInformation(StandardInformation{Created: created, Modified: modified, FileAttrs: attrs})},
				{Type: AttrFileName, Content: encodeFileName(FileName{ParentRef: FileRef(5, 1), RealSize: uint64(len(data)), Namespace: 1, Name: string(clean)})},
				{Type: AttrData, Content: data},
			},
		}
		b, err := rec.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeRecord(b, 42)
		if err != nil || !got.InUse || got.Dir != dir || got.Seq != 3 {
			return false
		}
		fn, err := got.FileName()
		if err != nil || fn.Name != string(clean) {
			return false
		}
		si, err := got.StandardInformation()
		if err != nil || si.Created != created || si.Modified != modified || si.FileAttrs != attrs {
			return false
		}
		return bytes.Equal(got.attr(AttrData).Content, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// utf16ReplacementGuard excludes runes that do not survive UTF-16
// round-tripping (unpaired surrogates map to U+FFFD).
const utf16ReplacementGuard = '�'

func TestMFTExhaustion(t *testing.T) {
	v, err := Format(64, 10) // 4 usable user records (6..9)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	created := 0
	for i := 0; i < 10; i++ {
		lastErr = v.Create(fmt.Sprintf(`\f%d`, i), CreateOptions{})
		if lastErr != nil {
			break
		}
		created++
	}
	if created != 4 {
		t.Errorf("created %d records, want 4", created)
	}
	if !errors.Is(lastErr, ErrVolumeFull) {
		t.Errorf("exhaustion error = %v", lastErr)
	}
	// Freeing one record makes room again.
	if err := v.Remove(`\f0`); err != nil {
		t.Fatal(err)
	}
	if err := v.Create(`\again`, CreateOptions{}); err != nil {
		t.Errorf("create after record free: %v", err)
	}
}

func TestRawScanRejectsGarbageImage(t *testing.T) {
	if _, _, err := RawScan(make([]byte, 4096)); err == nil {
		t.Error("garbage image should not parse")
	}
	if _, _, err := RawScan(nil); err == nil {
		t.Error("nil image should not parse")
	}
}

func TestADSRoundTrip(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\host.txt`, CreateOptions{Data: []byte("innocent")}); err != nil {
		t.Fatal(err)
	}
	if err := v.CreateStream(`\host.txt`, "payload", []byte("MZ evil")); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadStream(`\host.txt`, "PAYLOAD")
	if err != nil || string(data) != "MZ evil" {
		t.Errorf("stream read = %q err %v", data, err)
	}
	// The main stream is untouched.
	main, err := v.ReadFile(`\host.txt`)
	if err != nil || string(main) != "innocent" {
		t.Errorf("main stream = %q err %v", main, err)
	}
	streams, err := v.ListStreams(`\host.txt`)
	if err != nil || len(streams) != 1 || streams[0].Name != "payload" {
		t.Errorf("ListStreams = %+v err %v", streams, err)
	}
	// Replacing a stream does not duplicate it.
	if err := v.CreateStream(`\host.txt`, "payload", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	streams, _ = v.ListStreams(`\host.txt`)
	if len(streams) != 1 {
		t.Errorf("replace duplicated the stream: %+v", streams)
	}
	if err := v.RemoveStream(`\host.txt`, "payload"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadStream(`\host.txt`, "payload"); !errors.Is(err, ErrNotFound) {
		t.Errorf("removed stream read = %v", err)
	}
	if err := v.RemoveStream(`\host.txt`, "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("removing missing stream = %v", err)
	}
}

func TestADSInvisibleToReadDirButInRawScan(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\doc.txt`, CreateOptions{Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := v.CreateStream(`\doc.txt`, "hidden.exe", []byte("MZ")); err != nil {
		t.Fatal(err)
	}
	// Directory enumeration never mentions the stream.
	list, err := v.ReadDir(`\`)
	if err != nil {
		t.Fatal(err)
	}
	for _, inf := range list {
		if strings.Contains(inf.Name, ":") {
			t.Errorf("stream leaked into ReadDir: %s", inf.Name)
		}
	}
	// The raw MFT scan surfaces it as file:stream.
	raw, _, err := RawScan(v.Device())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range raw {
		if e.Stream && e.Path == `\doc.txt:hidden.exe` {
			found = true
			if e.Size != 2 {
				t.Errorf("stream size = %d", e.Size)
			}
		}
	}
	if !found {
		t.Error("raw scan missed the alternate data stream")
	}
}

func TestADSWriteFilePreservesStreams(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\f.txt`, CreateOptions{Data: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if err := v.CreateStream(`\f.txt`, "s", []byte("stream")); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile(`\f.txt`, []byte("v2 much longer content"), 9); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadStream(`\f.txt`, "s")
	if err != nil || string(data) != "stream" {
		t.Errorf("stream lost after WriteFile: %q err %v", data, err)
	}
}

func TestADSSurvivesMount(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\f.txt`, CreateOptions{Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := v.CreateStream(`\f.txt`, "p", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	v2, err := Mount(v.SnapshotImage())
	if err != nil {
		t.Fatal(err)
	}
	data, err := v2.ReadStream(`\f.txt`, "p")
	if err != nil || string(data) != "persisted" {
		t.Errorf("stream after mount = %q err %v", data, err)
	}
}

func TestStreamNameValidation(t *testing.T) {
	v := mustFormat(t)
	if err := v.Create(`\f`, CreateOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", `a\b`, "a:b"} {
		if err := v.CreateStream(`\f`, bad, nil); err == nil {
			t.Errorf("stream name %q should be rejected", bad)
		}
	}
	if err := v.CreateStream(`\`, "s", nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("stream on directory = %v", err)
	}
}
