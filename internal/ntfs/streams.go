package ntfs

import (
	"fmt"
	"strings"
)

// Alternate Data Stream (ADS) support. An ADS is a named $DATA attribute
// on a file record: "file.txt:payload". Ordinary directory enumeration —
// at every level of the API stack, and even the filesystem driver's
// ReadDir — never mentions streams, which is why stealth software uses
// them (paper §6). Only a raw MFT parse reveals them, so GhostBuster's
// low-level scan surfaces them with no hook anywhere.

// StreamInfo describes one alternate data stream.
type StreamInfo struct {
	Name string // stream name (without the colon)
	Size uint64
}

// CreateStream adds (or replaces) a named data stream on an existing
// file. Stream data is stored resident for simplicity; typical ADS
// payloads are small executables or scripts.
func (v *Volume) CreateStream(path, stream string, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen++
	if stream == "" || strings.ContainsAny(stream, `\:`) {
		return fmt.Errorf("%w: bad stream name %q", ErrNameTooLong, stream)
	}
	num, err := v.resolve(path)
	if err != nil {
		return err
	}
	if v.nodes[num].dir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return err
	}
	kept := rec.Attrs[:0:0]
	for _, a := range rec.Attrs {
		if a.Type == AttrData && strings.EqualFold(a.Name, stream) {
			if a.NonResident {
				v.freeClusters(a.Runs)
			}
			continue
		}
		kept = append(kept, a)
	}
	rec.Attrs = append(kept, Attribute{Type: AttrData, Name: stream, Content: data})
	return v.writeRecord(rec)
}

// ReadStream returns the contents of a named stream.
func (v *Volume) ReadStream(path, stream string) ([]byte, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	num, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return nil, err
	}
	for _, a := range rec.NamedStreams() {
		if strings.EqualFold(a.Name, stream) {
			if !a.NonResident {
				return append([]byte(nil), a.Content...), nil
			}
			out := make([]byte, 0, a.RealSize)
			for _, r := range a.Runs {
				off := int(r.Start) * ClusterSize
				out = append(out, v.dev[off:off+int(r.Count)*ClusterSize]...)
			}
			return out[:a.RealSize], nil
		}
	}
	return nil, fmt.Errorf("%w: stream %s:%s", ErrNotFound, path, stream)
}

// RemoveStream deletes a named stream.
func (v *Volume) RemoveStream(path, stream string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.gen++
	num, err := v.resolve(path)
	if err != nil {
		return err
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return err
	}
	kept := rec.Attrs[:0:0]
	found := false
	for _, a := range rec.Attrs {
		if a.Type == AttrData && strings.EqualFold(a.Name, stream) {
			found = true
			if a.NonResident {
				v.freeClusters(a.Runs)
			}
			continue
		}
		kept = append(kept, a)
	}
	if !found {
		return fmt.Errorf("%w: stream %s:%s", ErrNotFound, path, stream)
	}
	rec.Attrs = kept
	return v.writeRecord(rec)
}

// ListStreams enumerates a file's alternate data streams. Note that this
// is a *targeted* query: nothing in the directory-enumeration call path
// ever invokes it, so stream existence stays invisible to "dir /s /b".
func (v *Volume) ListStreams(path string) ([]StreamInfo, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	num, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	rec, err := v.readRecord(num)
	if err != nil {
		return nil, err
	}
	var out []StreamInfo
	for _, a := range rec.NamedStreams() {
		size := uint64(len(a.Content))
		if a.NonResident {
			size = a.RealSize
		}
		out = append(out, StreamInfo{Name: a.Name, Size: size})
	}
	return out, nil
}
