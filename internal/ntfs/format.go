// Package ntfs implements a simplified NTFS-like volume: a byte-
// addressable virtual disk holding a boot sector, a Master File Table of
// fixed-size FILE records with typed attributes, a cluster allocation
// bitmap, and non-resident data runs in the real NTFS runlist encoding.
//
// The design goal is fidelity of the *scanning* story from the paper: the
// truth about which files exist lives only in these bytes. The Volume
// type additionally maintains an in-memory directory index so that the
// simulated filesystem driver can answer enumeration IRPs quickly, but
// GhostBuster's low-level scan (RawScan) never touches that index — it
// re-parses the device image the way the paper's MFT scanner reads the
// disk under the APIs.
package ntfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unicode/utf16"
)

// Geometry constants. Real NTFS values are configurable at format time;
// we fix the common defaults.
const (
	BytesPerSector    = 512
	SectorsPerCluster = 8
	ClusterSize       = BytesPerSector * SectorsPerCluster // 4096
	RecordSize        = 1024                               // MFT FILE record

	// Well-known MFT record numbers, following NTFS conventions.
	RecordMFT    = 0
	RecordBitmap = 1
	RecordVolume = 2
	RecordRoot   = 5 // root directory, as in real NTFS
	firstUserRec = 6

	// FirstUserRecord is the first MFT record number available to user
	// files; records below it hold filesystem metadata. Fault layers use
	// it to target damage at user records only.
	FirstUserRecord = firstUserRec
)

// Attribute type codes (the NTFS on-disk values).
const (
	AttrStandardInformation = 0x10
	AttrFileName            = 0x30
	AttrData                = 0x80
	attrEnd                 = 0xFFFFFFFF
)

// FILE record flags.
const (
	flagInUse     = 0x0001
	flagDirectory = 0x0002
)

// DOS-style file attribute bits stored in $STANDARD_INFORMATION.
const (
	FileAttrReadOnly = 0x0001
	FileAttrHidden   = 0x0002
	FileAttrSystem   = 0x0004
)

// MaxNameLen is the longest component name storable in a $FILE_NAME
// attribute (UTF-16 code units), as in NTFS.
const MaxNameLen = 255

// Boot sector field offsets.
const (
	bootOEMOff           = 3  // "NTFS    "
	bootBytesPerSecOff   = 11 // u16
	bootSecPerClusterOff = 13 // u8
	bootTotalClustersOff = 40 // u64
	bootMFTStartOff      = 48 // u64
	bootMFTRecordsOff    = 56 // u64 (simulation extension)
	bootBitmapStartOff   = 64 // u64
	bootBitmapLenOff     = 72 // u64 clusters
	bootSigOff           = 510
)

var (
	// ErrNotFound reports a path that does not resolve.
	ErrNotFound = errors.New("ntfs: not found")
	// ErrExists reports a create over an existing name.
	ErrExists = errors.New("ntfs: already exists")
	// ErrNotDir reports a path component that is not a directory.
	ErrNotDir = errors.New("ntfs: not a directory")
	// ErrIsDir reports a data operation on a directory.
	ErrIsDir = errors.New("ntfs: is a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("ntfs: directory not empty")
	// ErrVolumeFull reports exhaustion of MFT records or clusters.
	ErrVolumeFull = errors.New("ntfs: volume full")
	// ErrCorrupt reports an unparseable on-disk structure.
	ErrCorrupt = errors.New("ntfs: corrupt structure")
	// ErrNameTooLong reports a component name over MaxNameLen.
	ErrNameTooLong = errors.New("ntfs: name too long")
)

// Geometry describes where the on-disk regions live, as recorded in the
// boot sector.
type Geometry struct {
	TotalClusters  uint64
	MFTStart       uint64 // cluster index of first MFT record
	MFTRecords     uint64 // capacity in records
	BitmapStart    uint64 // cluster index
	BitmapClusters uint64
}

// encodeBoot writes a boot sector describing geo into the first sector.
func encodeBoot(dev []byte, geo Geometry) {
	dev[0], dev[1], dev[2] = 0xEB, 0x52, 0x90
	copy(dev[bootOEMOff:], "NTFS    ")
	binary.LittleEndian.PutUint16(dev[bootBytesPerSecOff:], BytesPerSector)
	dev[bootSecPerClusterOff] = SectorsPerCluster
	binary.LittleEndian.PutUint64(dev[bootTotalClustersOff:], geo.TotalClusters)
	binary.LittleEndian.PutUint64(dev[bootMFTStartOff:], geo.MFTStart)
	binary.LittleEndian.PutUint64(dev[bootMFTRecordsOff:], geo.MFTRecords)
	binary.LittleEndian.PutUint64(dev[bootBitmapStartOff:], geo.BitmapStart)
	binary.LittleEndian.PutUint64(dev[bootBitmapLenOff:], geo.BitmapClusters)
	dev[bootSigOff] = 0x55
	dev[bootSigOff+1] = 0xAA
}

// decodeBoot parses the boot sector of a device image.
// DecodeBootSector parses the boot sector of a device image into its
// geometry, validating signatures and bounds.
func DecodeBootSector(dev []byte) (Geometry, error) {
	return decodeBoot(dev)
}

func decodeBoot(dev []byte) (Geometry, error) {
	var geo Geometry
	if len(dev) < BytesPerSector {
		return geo, fmt.Errorf("%w: image smaller than a sector", ErrCorrupt)
	}
	if string(dev[bootOEMOff:bootOEMOff+8]) != "NTFS    " {
		return geo, fmt.Errorf("%w: missing NTFS OEM signature", ErrCorrupt)
	}
	if dev[bootSigOff] != 0x55 || dev[bootSigOff+1] != 0xAA {
		return geo, fmt.Errorf("%w: missing boot signature", ErrCorrupt)
	}
	geo.TotalClusters = binary.LittleEndian.Uint64(dev[bootTotalClustersOff:])
	geo.MFTStart = binary.LittleEndian.Uint64(dev[bootMFTStartOff:])
	geo.MFTRecords = binary.LittleEndian.Uint64(dev[bootMFTRecordsOff:])
	geo.BitmapStart = binary.LittleEndian.Uint64(dev[bootBitmapStartOff:])
	geo.BitmapClusters = binary.LittleEndian.Uint64(dev[bootBitmapLenOff:])
	if geo.TotalClusters == 0 || geo.TotalClusters*ClusterSize > uint64(len(dev)) {
		return geo, fmt.Errorf("%w: geometry exceeds image", ErrCorrupt)
	}
	return geo, nil
}

// encodeUTF16 converts a Go string to UTF-16LE bytes.
func encodeUTF16(s string) []byte {
	u := utf16.Encode([]rune(s))
	b := make([]byte, 2*len(u))
	for i, c := range u {
		binary.LittleEndian.PutUint16(b[2*i:], c)
	}
	return b
}

// decodeUTF16 converts UTF-16LE bytes to a Go string.
func decodeUTF16(b []byte) string {
	u := make([]uint16, len(b)/2)
	for i := range u {
		u[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return string(utf16.Decode(u))
}
