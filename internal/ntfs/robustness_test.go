package ntfs

import (
	"math/rand"
	"testing"
)

// buildPopulatedImage returns a volume image with a realistic tree.
func buildPopulatedImage(t *testing.T) []byte {
	t.Helper()
	v := mustFormat(t)
	if err := v.MkdirAll(`\windows\system32`, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		name := `\windows\system32\f` + string(rune('a'+i%26)) + ".dll"
		if i%7 == 0 {
			name = `\windows\f` + string(rune('a'+i%26))
		}
		if v.Exists(name) {
			continue
		}
		if err := v.Create(name, CreateOptions{Data: []byte("MZ")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.CreateStream(`\windows\system32\fa.dll`, "s", []byte("ads")); err != nil {
		t.Fatal(err)
	}
	return v.SnapshotImage()
}

// TestRawScanSurvivesRandomCorruption: a hostile disk must never panic
// the scanner; it may return an error or a partial result, but it must
// return. (Ghostware with disk access could corrupt structures
// specifically to crash the scanner.)
func TestRawScanSurvivesRandomCorruption(t *testing.T) {
	base := buildPopulatedImage(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		img := append([]byte(nil), base...)
		// Flip a burst of random bytes.
		for i := 0; i < 1+rng.Intn(64); i++ {
			img[rng.Intn(len(img))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: RawScan panicked: %v", trial, r)
				}
			}()
			_, _, _ = RawScan(img)
			_, _ = ScanDeleted(img)
		}()
	}
}

// TestRawScanSurvivesTruncation: every possible truncation point.
func TestRawScanSurvivesTruncation(t *testing.T) {
	base := buildPopulatedImage(t)
	for _, cut := range []int{0, 1, BytesPerSector - 1, BytesPerSector, ClusterSize, len(base) / 2, len(base) - 1} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panicked: %v", cut, r)
				}
			}()
			_, _, _ = RawScan(base[:cut])
		}()
	}
}

// TestMountSurvivesCorruption: mounting a damaged image must error or
// succeed, never panic, and a successful mount must stay usable.
func TestMountSurvivesCorruption(t *testing.T) {
	base := buildPopulatedImage(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		img := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(16); i++ {
			img[rng.Intn(len(img))] ^= 1 << uint(rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Mount panicked: %v", trial, r)
				}
			}()
			v, err := Mount(img)
			if err != nil {
				return
			}
			_, _ = v.ReadDir(`\`)
			_ = v.Exists(`\windows`)
		}()
	}
}
