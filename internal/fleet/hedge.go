// Straggler hedging for streaming sweeps: when one host's scan runs
// far past what its peers needed, the sweep launches a duplicate scan
// on a clone of the host and takes whichever result seals first. The
// scan engine is deterministic in the machine build, so the clone's
// result content-hashes identically to the primary's — which is what
// makes hedging digest-invisible:
//
//   - Exactly one result per host is ever committed (journaled, folded
//     into the accumulator, offered to the sink). The loser's result is
//     discarded on a buffered channel and never observed.
//   - ResultHash excludes Elapsed/RetryNs/Attempts, so even the racers'
//     timing skew cannot leak into layer 2..4 digests.
//   - Hedge-capable hosts journal no per-attempt StateRunning records
//     (neither racer does): a late loser can therefore never append an
//     attempt record after the winner's terminal commit, which would
//     poison analyzeJournal on a later resume. The only cost is that a
//     crash mid-hedged-scan loses that host's dangling-attempt count —
//     it re-runs from attempt 1, like a host that never started.
package fleet

import (
	"sync/atomic"
	"time"

	"ghostbuster/internal/supervise"
)

// HedgePolicy tunes straggler hedging. The threshold adapts to the
// sweep: a host hedges once its scan's wall-clock age exceeds
// Multiplier × the Quantile of completed-scan durations (but never less
// than Floor, and only after MinSamples completions).
type HedgePolicy struct {
	// Quantile in (0,1] of completed-scan wall durations used as the
	// "normal" reference; zero means the median.
	Quantile float64
	// Multiplier scales the quantile into the hedge trigger; zero means 2.
	Multiplier float64
	// MinSamples gates hedging until this many scans have completed;
	// zero means 3.
	MinSamples int
	// Floor is the minimum trigger age — uniform fast fleets must not
	// hedge on scheduler jitter.
	Floor time.Duration
	// MaxConcurrent bounds simultaneous duplicate scans (each holds an
	// extra materialized machine); zero means 2.
	MaxConcurrent int
}

// hedger is the per-sweep hedging state.
type hedger struct {
	tracker supervise.QuantileTracker
	slots   chan struct{}
	hedged  atomic.Int64
	wins    atomic.Int64
}

func newHedger(p *HedgePolicy) *hedger {
	if p == nil {
		return nil
	}
	maxc := p.MaxConcurrent
	if maxc <= 0 {
		maxc = 2
	}
	h := &hedger{slots: make(chan struct{}, maxc)}
	h.tracker.Quantile = p.Quantile
	h.tracker.Multiplier = p.Multiplier
	h.tracker.MinSamples = p.MinSamples
	h.tracker.Floor = p.Floor
	return h
}

// hedgeable reports whether a duplicate scan of h can run on an
// independent clone: lazy hosts rebuild their machine from the builder,
// and ScanHost-seam hosts are synthetic. An eager host's single
// resident machine cannot be scanned by two workers at once.
func (mgr *Manager) hedgeable(h *Host) bool {
	return mgr.ScanHost != nil || h.build != nil
}

// cloneForHedge makes the independent host the duplicate scan runs on.
func (h *Host) cloneForHedge() *Host { return &Host{Name: h.Name, build: h.build} }

// hedgedRun races run(h) against a late-started duplicate on a clone
// and returns the first result. run must be safe to invoke on h and on
// h.cloneForHedge() concurrently (it must not journal attempt records —
// see the package comment).
func (hg *hedger) hedgedRun(h *Host, run func(*Host) HostResult) HostResult {
	type raced struct {
		res   HostResult
		clone bool
	}
	start := time.Now()
	resc := make(chan raced, 2) // buffered: the loser's send never blocks, never leaks
	go func() { resc <- raced{res: capturedScan(h, run)} }()

	var winner raced
	th := hg.tracker.Threshold()
	if th <= 0 {
		winner = <-resc
	} else {
		timer := time.NewTimer(th)
		select {
		case winner = <-resc:
			timer.Stop()
		case <-timer.C:
			select {
			case hg.slots <- struct{}{}:
				hg.hedged.Add(1)
				clone := h.cloneForHedge()
				go func() {
					defer func() { <-hg.slots }()
					resc <- raced{res: capturedScan(clone, run), clone: true}
				}()
			default:
				// No hedge slot free; keep waiting on the primary.
			}
			winner = <-resc
		}
	}
	if winner.clone {
		hg.wins.Add(1)
	}
	hg.tracker.Observe(time.Since(start))
	return winner.res
}
