// Durable sweeps: the Manager's journaled sweep flow. Every host state
// transition is committed to an append-only checksummed journal
// (internal/journal), so a sweep killed or wedged mid-run can be
// resumed: committed terminal results are replayed (after hash
// verification) instead of re-scanned, in-flight hosts are re-run with
// their attempt accounting continued, and the merged report is
// tamper-evident end-to-end — per-host content hashes plus a fleet-
// level digest over them.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ghostbuster/internal/core"
	"ghostbuster/internal/journal"
)

// ErrEmptyJournal marks a journal with no committed records — the
// process died before the sweep header reached disk (or a torn tail
// swallowed it). Nothing in such a journal can be trusted or replayed;
// callers that own the host assignment (the shard coordinator) recover
// by starting that sweep over.
var ErrEmptyJournal = errors.New("fleet: journal has no committed records — nothing to resume (start a fresh sweep)")

// Report is the merged outcome of a journaled sweep: the fleet-level
// artifact an operator acts on, carrying enough evidence to prove it
// was not altered after the fact.
type Report struct {
	Kind    SweepKind    `json:"kind"`
	Results []HostResult `json:"results"`
	// Quarantined lists hosts whose per-host circuit breaker opened,
	// sorted by name. Their last results are still in Results, marked
	// Quarantined.
	Quarantined []string `json:"quarantined,omitempty"`
	// Aborted is set when the fleet error budget stopped the sweep;
	// NotScanned lists the hosts the abort left unvisited.
	Aborted     bool     `json:"aborted,omitempty"`
	AbortReason string   `json:"abortReason,omitempty"`
	NotScanned  []string `json:"notScanned,omitempty"`
	// Replayed lists hosts whose results were restored from the
	// journal on resume (hash-verified, not re-scanned), sorted.
	Replayed []string `json:"replayed,omitempty"`
	// Digest is the fleet-level tamper-evidence seal: a hash over the
	// per-host result hashes and the sweep verdict structure.
	Digest string `json:"digest,omitempty"`
}

// ResultHash is the canonical content hash of one host result: SHA-256
// over its JSON form with timing and attempt accounting zeroed
// (Elapsed, RetryNs, Attempts, per-report Elapsed, and the hash field
// itself). Retry accounting is bookkeeping about how the sweep got the
// verdict; the hash covers the verdict — so an interrupted-and-resumed
// sweep and an uninterrupted one hash identically when they found the
// same things.
func ResultHash(r HostResult) string {
	c := r
	c.Elapsed, c.RetryNs, c.Attempts, c.Hash = 0, 0, 0, ""
	if len(r.Reports) > 0 {
		reports := make([]*core.Report, len(r.Reports))
		for i, rep := range r.Reports {
			cp := *rep
			cp.Elapsed = 0
			reports[i] = &cp
		}
		c.Reports = reports
	}
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("fleet: result hash marshal: %v", err))
	}
	return journal.Hash(data)
}

// digestBody is the canonical form the fleet-level digest covers.
type digestBody struct {
	Kind        SweepKind `json:"kind"`
	Hosts       []string  `json:"hosts"`
	Hashes      []string  `json:"hashes"`
	Quarantined []string  `json:"quarantined,omitempty"`
	Aborted     bool      `json:"aborted,omitempty"`
	AbortReason string    `json:"abortReason,omitempty"`
	NotScanned  []string  `json:"notScanned,omitempty"`
}

// ComputeDigest returns the fleet report's canonical digest: a hash
// over the per-host result hashes and the sweep verdict structure.
// Replayed is excluded — where the results came from is provenance,
// not verdict: a resumed sweep that found the same things as an
// uninterrupted one carries the same digest.
func (r *Report) ComputeDigest() string {
	body := digestBody{
		Kind: r.Kind, Quarantined: r.Quarantined,
		Aborted: r.Aborted, AbortReason: r.AbortReason, NotScanned: r.NotScanned,
	}
	for _, hr := range r.Results {
		body.Hosts = append(body.Hosts, hr.Host)
		body.Hashes = append(body.Hashes, hr.Hash)
	}
	data, err := json.Marshal(body)
	if err != nil {
		panic(fmt.Sprintf("fleet: report digest marshal: %v", err))
	}
	return journal.Hash(data)
}

// Seal stamps the report with its fleet-level digest.
func (r *Report) Seal() { r.Digest = r.ComputeDigest() }

// Verify checks the report's tamper-evidence chain end-to-end: the
// fleet digest, every host result's content hash, and every scan
// report's canonical digest. Any mutation after sealing fails here.
func (r *Report) Verify() error {
	if r.Digest == "" {
		return fmt.Errorf("fleet: report is unsealed (no digest)")
	}
	if got := r.ComputeDigest(); got != r.Digest {
		return fmt.Errorf("fleet: report digest mismatch: sealed %s, content hashes %s — report altered after sealing",
			r.Digest[:12], got[:12])
	}
	for _, hr := range r.Results {
		if hr.Hash == "" {
			return fmt.Errorf("fleet: host %s result is unhashed", hr.Host)
		}
		if got := ResultHash(hr); got != hr.Hash {
			return fmt.Errorf("fleet: host %s result hash mismatch: recorded %s, content hashes %s",
				hr.Host, hr.Hash[:12], got[:12])
		}
		for _, rep := range hr.Reports {
			if err := rep.VerifyDigest(); err != nil {
				return fmt.Errorf("fleet: host %s: %w", hr.Host, err)
			}
		}
	}
	return nil
}

// Infected returns the infected host names, sorted.
func (r *Report) Infected() []string {
	var out []string
	for _, hr := range r.Results {
		if hr.Infected {
			out = append(out, hr.Host)
		}
	}
	return out
}

// Degraded reports whether any host result was degraded or errored
// without being a finding — the "couldn't fully look" verdict.
func (r *Report) Degraded() bool {
	if len(r.NotScanned) > 0 || len(r.Quarantined) > 0 {
		return true
	}
	for _, hr := range r.Results {
		if hr.Err != "" || hr.Degraded > 0 {
			return true
		}
	}
	return false
}

// hostReplay is what the journal says about one host: its committed
// terminal result (if any) and the attempt history the breaker needs.
type hostReplay struct {
	committed *HostResult
	// attempts is the highest attempt number journaled for the host.
	attempts int
	// dangling counts attempts that started but never committed a
	// terminal record — each one is a crash the host's scan did not
	// survive, and counts as a failed attempt for the circuit breaker.
	dangling int
}

// SweepJournaled runs a sweep recording every host state transition to
// a fresh journal at path, and returns the merged, sealed report. The
// journal file is left behind deliberately: it is the recovery point
// if this process dies, and the audit trail if it does not.
func (mgr *Manager) SweepJournaled(kind SweepKind, workers int, path string) (*Report, error) {
	j, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	if _, err := j.Append(journal.Record{State: journal.StateSweep, Kind: string(kind), Hosts: mgr.Hosts()}); err != nil {
		return nil, err
	}
	for _, h := range mgr.hosts {
		if _, err := j.Append(journal.Record{State: journal.StateScheduled, Host: h.Name}); err != nil {
			return nil, err
		}
	}
	return mgr.sweepJournaled(kind, workers, j, nil)
}

// Resume continues an interrupted journaled sweep. The journal is
// replayed (recovering a torn tail, failing loudly on interior
// corruption), committed terminal results are verified against their
// content hashes and replayed without re-scanning, and hosts that were
// scheduled or in flight at the crash are re-run — with attempt
// numbering and the circuit breaker's failure count continuing across
// the crash boundary. The merged report covers the whole sweep, both
// halves of the crash.
func (mgr *Manager) Resume(kind SweepKind, workers int, path string) (*Report, error) {
	j, rec, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	replay, err := mgr.analyzeJournal(kind, rec.Records)
	if err != nil {
		return nil, err
	}
	return mgr.sweepJournaled(kind, workers, j, replay)
}

// analyzeJournal validates the journal against this manager's sweep
// and folds its records into per-host replay state.
func (mgr *Manager) analyzeJournal(kind SweepKind, recs []journal.Record) (map[string]*hostReplay, error) {
	if len(recs) == 0 {
		return nil, ErrEmptyJournal
	}
	head := recs[0]
	if head.State != journal.StateSweep {
		return nil, fmt.Errorf("fleet: journal does not start with a sweep header (got %q)", head.State)
	}
	if head.Kind != string(kind) {
		return nil, fmt.Errorf("fleet: journal records a %q sweep, resuming as %q", head.Kind, kind)
	}
	enrolled := mgr.Hosts()
	if fmt.Sprint(head.Hosts) != fmt.Sprint(enrolled) {
		return nil, fmt.Errorf("fleet: journal host set %v does not match enrolled fleet %v", head.Hosts, enrolled)
	}
	replay := map[string]*hostReplay{}
	byName := map[string]bool{}
	for _, h := range enrolled {
		byName[h] = true
	}
	for _, rec := range recs[1:] {
		if rec.State == journal.StateAborted {
			continue // the operator resuming overrides a past abort
		}
		if !byName[rec.Host] {
			return nil, fmt.Errorf("fleet: journal record %d names unknown host %q", rec.Seq, rec.Host)
		}
		hr := replay[rec.Host]
		if hr == nil {
			hr = &hostReplay{}
			replay[rec.Host] = hr
		}
		switch {
		case rec.State == journal.StateRunning:
			if hr.committed != nil {
				return nil, fmt.Errorf("fleet: journal record %d re-runs host %s after its terminal record", rec.Seq, rec.Host)
			}
			if rec.Attempt > hr.attempts {
				hr.attempts = rec.Attempt
			}
			hr.dangling++
		case rec.State.Terminal():
			if hr.committed != nil {
				return nil, fmt.Errorf("fleet: journal record %d commits host %s twice", rec.Seq, rec.Host)
			}
			var res HostResult
			if err := json.Unmarshal(rec.Result, &res); err != nil {
				return nil, fmt.Errorf("fleet: journal record %d result for %s unparseable: %w", rec.Seq, rec.Host, err)
			}
			if got := ResultHash(res); got != rec.ResultHash || rec.ResultHash == "" {
				return nil, fmt.Errorf("fleet: journal result for host %s fails hash verification (recorded %.12s, content %.12s) — journal tampered or corrupt",
					rec.Host, rec.ResultHash, got)
			}
			for _, rep := range res.Reports {
				if err := rep.VerifyDigest(); err != nil {
					return nil, fmt.Errorf("fleet: journal result for host %s: %w", rec.Host, err)
				}
			}
			res.Hash = rec.ResultHash
			hr.committed = &res
			hr.dangling = 0
		}
	}
	return replay, nil
}

// terminalState maps a finished host result to its journal state.
func terminalState(res HostResult) journal.State {
	switch {
	case res.Quarantined:
		return journal.StateQuarantined
	case res.Err != "":
		return journal.StateFailed
	case res.Degraded > 0:
		return journal.StateDegraded
	default:
		return journal.StateDone
	}
}

// sweepJournaled is the shared body of SweepJournaled and Resume: scan
// every host without a committed terminal record, journal transitions,
// enforce the error budget, and merge the halves into a sealed report.
func (mgr *Manager) sweepJournaled(kind SweepKind, workers int, j *journal.Journal, replay map[string]*hostReplay) (*Report, error) {
	mgr.ensureSorted()
	rep := &Report{Kind: kind}
	results := make([]HostResult, len(mgr.hosts))
	scanned := make([]bool, len(mgr.hosts))
	var toRun []int
	failed := 0
	for i, h := range mgr.hosts {
		hr := replay[h.Name]
		if hr != nil && hr.committed != nil {
			results[i] = *hr.committed
			scanned[i] = true
			rep.Replayed = append(rep.Replayed, h.Name)
			if results[i].Err != "" || results[i].Quarantined {
				failed++
			}
			if mgr.OnResult != nil {
				mgr.OnResult(results[i])
			}
			continue
		}
		toRun = append(toRun, i)
	}

	// Journal appends happen on worker goroutines; the first write
	// failure aborts the sweep loudly — a sweep that cannot commit its
	// progress must not pretend to be durable.
	var (
		appendErrOnce sync.Once
		appendErr     error
		stop          = make(chan struct{})
		stopOnce      sync.Once
	)
	halt := func(err error) {
		appendErrOnce.Do(func() { appendErr = err })
		stopOnce.Do(func() { close(stop) })
	}
	append_ := func(rec journal.Record) {
		if _, err := j.Append(rec); err != nil {
			halt(err)
		}
	}

	scan := func(h *Host) HostResult {
		var prior hostReplay
		if hr := replay[h.Name]; hr != nil {
			prior = *hr
		}
		res := mgr.runHostFrom(h, kind, prior.attempts, prior.dangling, func(attempt int) {
			append_(journal.Record{State: journal.StateRunning, Host: h.Name, Attempt: attempt})
		})
		return res
	}

	total := len(mgr.hosts)
	for ir := range mgr.scheduleHosts(workers, toRun, stop, scan) {
		res := ir.r
		if res.Kind == "" {
			res.Kind = kind // panic-captured results carry only Host and Err
		}
		res.Hash = ResultHash(res)
		results[ir.i] = res
		scanned[ir.i] = true
		if mgr.OnResult != nil {
			mgr.OnResult(res)
		}
		state := terminalState(res)
		resJSON, err := json.Marshal(res)
		if err != nil {
			halt(fmt.Errorf("fleet: marshal result for %s: %w", res.Host, err))
			continue
		}
		rec := journal.Record{
			State: state, Host: res.Host, Attempt: res.Attempts,
			ElapsedNs: int64(res.Elapsed), RetryNs: int64(res.RetryNs),
			ResultHash: res.Hash, Result: resJSON,
		}
		if res.Quarantined {
			rec.Reason = fmt.Sprintf("circuit breaker open: %d consecutive failed attempts", mgr.BreakerThreshold)
		}
		append_(rec)
		if res.Err != "" || res.Quarantined {
			failed++
			if f := mgr.AbortAfterFailureFraction; f > 0 && float64(failed) > f*float64(total) && !rep.Aborted {
				rep.Aborted = true
				rep.AbortReason = fmt.Sprintf("error budget exceeded: %d of %d hosts failed (budget %.0f%%) — aborting sweep",
					failed, total, f*100)
				append_(journal.Record{State: journal.StateAborted, Reason: rep.AbortReason})
				stopOnce.Do(func() { close(stop) })
			}
		}
	}
	if appendErr != nil {
		return nil, appendErr
	}

	// Merge: completed hosts in host order; the abort's unvisited hosts
	// listed, not silently absent.
	merged := make([]HostResult, 0, total)
	for i, h := range mgr.hosts {
		if !scanned[i] {
			rep.NotScanned = append(rep.NotScanned, h.Name)
			continue
		}
		merged = append(merged, results[i])
		if results[i].Quarantined {
			rep.Quarantined = append(rep.Quarantined, h.Name)
		}
	}
	rep.Results = merged
	sort.Strings(rep.Quarantined)
	sort.Strings(rep.Replayed)
	sort.Strings(rep.NotScanned)
	rep.Seal()
	return rep, nil
}
