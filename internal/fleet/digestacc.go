// The order-independent digest accumulator behind the cross-shard
// (fourth) layer of the verification chain. A sharded sweep commits
// host results in whatever order its shards finish them, and a resume
// after losing shards re-hashes the lost hosts onto different shards —
// so the fleet-of-fleets digest cannot be a hash over an ordered result
// list the way the per-shard (third-layer) digest is. Instead each host
// folds in as SHA-256(host ∥ resultHash) added limb-wise into a 256-bit
// accumulator (an LtHash-style homomorphic fold): commutative and
// associative, so any partition of the fleet into shards, any completion
// order, and any resume topology produce the same sum as long as every
// host contributed exactly the same verdict exactly once.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Accumulator is a commutative 256-bit hash accumulator over host
// results. The zero value is ready to use. It is not safe for
// concurrent use; each shard folds locally and the coordinator merges.
type Accumulator struct {
	// N is how many host contributions were folded in.
	N int `json:"n"`
	// Limbs is the running sum: four little-endian uint64 limbs added
	// with independent wraparound (limb-wise mod 2^64).
	Limbs [4]uint64 `json:"limbs"`
}

// Fold adds one host's contribution: SHA-256 over the host name, a NUL
// separator, and the host's canonical result hash (ResultHash). The
// separator keeps ("ab","c") and ("a","bc") from colliding.
func (a *Accumulator) Fold(host, resultHash string) {
	// Stack scratch sized for a hex result hash plus any sane host name;
	// a longer name just spills the append to the heap.
	var scratch [160]byte
	b := append(scratch[:0], host...)
	b = append(b, 0)
	b = append(b, resultHash...)
	sum := sha256.Sum256(b)
	for i := range a.Limbs {
		a.Limbs[i] += binary.LittleEndian.Uint64(sum[i*8:])
	}
	a.N++
}

// Merge adds another accumulator's sum into this one — how the
// coordinator folds per-shard accumulators into the fleet-wide one.
func (a *Accumulator) Merge(b Accumulator) {
	for i := range a.Limbs {
		a.Limbs[i] += b.Limbs[i]
	}
	a.N += b.N
}

// Sum seals the accumulator into a hex digest string: SHA-256 over the
// limbs and the contribution count, so an accumulator that folded a
// different number of hosts can never sum equal.
func (a Accumulator) Sum() string {
	var buf [4*8 + 8]byte
	for i, l := range a.Limbs {
		binary.LittleEndian.PutUint64(buf[i*8:], l)
	}
	binary.LittleEndian.PutUint64(buf[32:], uint64(a.N))
	sum := sha256.Sum256(buf[:])
	return hex.EncodeToString(sum[:])
}

// AccumulateReport folds a classic (third-layer) fleet report's host
// results into an accumulator — the bridge that lets tests prove a
// sharded sweep's merged digest equals a single-manager sweep's over
// the same hosts. Every result must already carry its content hash.
func AccumulateReport(r *Report) (Accumulator, error) {
	var acc Accumulator
	for _, hr := range r.Results {
		if hr.Hash == "" {
			return acc, fmt.Errorf("fleet: accumulate: host %s result is unhashed", hr.Host)
		}
		acc.Fold(hr.Host, hr.Hash)
	}
	return acc, nil
}
