package fleet

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghostbuster/internal/core"
)

// syntheticBody is a deterministic ScanHost seam: the verdict depends
// only on the host name, never on which racer or attempt computed it —
// the property straggler hedging relies on.
func syntheticBody(h *Host, kind SweepKind) HostResult {
	res := HostResult{Host: h.Name, Kind: kind, Elapsed: 2 * time.Millisecond}
	if h.Name == hostName(1) {
		res.Infected = true
		res.Hidden = 2
	}
	return res
}

func addSynthetic(mgr *Manager, n int) {
	for i := 0; i < n; i++ {
		mgr.AddLazy(hostName(i), nil)
	}
}

// stragglerBody wraps syntheticBody so the victim's FIRST scan stalls
// on wall-clock (the straggler a hedge must cover); the duplicate scan
// of the same host passes straight through and wins the race.
func stragglerBody(victim string, stall time.Duration) func(*Host, SweepKind) HostResult {
	var first sync.Once
	return func(h *Host, kind SweepKind) HostResult {
		if h.Name == victim {
			hit := false
			first.Do(func() { hit = true })
			if hit {
				time.Sleep(stall)
			}
		}
		return syntheticBody(h, kind)
	}
}

func testHedge() *HedgePolicy {
	return &HedgePolicy{MinSamples: 3, Floor: 5 * time.Millisecond, Multiplier: 1}
}

// TestHedgedSweepMatchesUnhedgedDigest: a streamed sweep with one
// straggler hedged must seal the exact summary digest of an unhedged
// sweep — hedging may change who computed a result, never the result —
// and the sink must see every host exactly once (the loser's duplicate
// is discarded, never observed).
func TestHedgedSweepMatchesUnhedgedDigest(t *testing.T) {
	const n = 12
	ref := NewManager()
	addSynthetic(ref, n)
	ref.ScanHost = syntheticBody
	want, err := ref.SweepStreamed(SweepInside, 3, nil)
	if err != nil {
		t.Fatal(err)
	}

	mgr := NewManager()
	addSynthetic(mgr, n)
	// The victim is late in the sorted host order so the tracker has
	// its MinSamples of completions before the straggler's scan starts.
	mgr.ScanHost = stragglerBody(hostName(n-1), 400*time.Millisecond)
	mgr.Hedge = testHedge()
	seen := map[string]int{}
	sum, err := mgr.SweepStreamed(SweepInside, 3, func(res HostResult) { seen[res.Host]++ })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hedged == 0 {
		t.Fatal("straggler never hedged — threshold did not fire")
	}
	if sum.HedgeWins == 0 {
		t.Error("duplicate scan never won against a 400ms straggler")
	}
	if sum.Digest != want.Digest {
		t.Errorf("hedged digest %.12s != unhedged %.12s", sum.Digest, want.Digest)
	}
	if len(seen) != n {
		t.Fatalf("sink saw %d hosts, want %d", len(seen), n)
	}
	for h, c := range seen {
		if c != 1 {
			t.Errorf("host %s streamed %d times — a hedge loser leaked", h, c)
		}
	}
	if err := sum.VerifyDigest(); err != nil {
		t.Errorf("hedged summary fails its own seal: %v", err)
	}
}

// TestHedgedJournaledSweepReplaysClean: hedge-capable hosts journal no
// per-attempt records, so a journal written under hedging must replay
// completely — no dangling attempts, no duplicate terminals — and
// reproduce the unhedged digest.
func TestHedgedJournaledSweepReplaysClean(t *testing.T) {
	const n = 10
	dir := t.TempDir()
	ref := NewManager()
	addSynthetic(ref, n)
	ref.ScanHost = syntheticBody
	want, err := ref.SweepJournaledStream(SweepInside, 2, filepath.Join(dir, "ref.gbj"), nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "hedged.gbj")
	mgr := NewManager()
	addSynthetic(mgr, n)
	mgr.ScanHost = stragglerBody(hostName(n-1), 400*time.Millisecond)
	mgr.Hedge = testHedge()
	sum, err := mgr.SweepJournaledStream(SweepInside, 2, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hedged == 0 {
		t.Fatal("straggler never hedged")
	}
	if sum.Digest != want.Digest {
		t.Errorf("hedged journaled digest %.12s != reference %.12s", sum.Digest, want.Digest)
	}

	re := NewManager()
	addSynthetic(re, n)
	re.ScanHost = func(h *Host, kind SweepKind) HostResult {
		t.Errorf("resume of a complete hedged journal re-scanned %s", h.Name)
		return syntheticBody(h, kind)
	}
	resumed, err := re.ResumeStream(SweepInside, 2, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Replayed != n {
		t.Errorf("replayed %d of %d hosts", resumed.Replayed, n)
	}
	if resumed.Digest != want.Digest {
		t.Errorf("replayed digest %.12s != reference %.12s", resumed.Digest, want.Digest)
	}
}

// TestCancelSealsPartialSummaryAndResumes: closing Manager.Cancel
// mid-sweep must stop host issuance, seal the journal at the last
// committed record, and return an Interrupted partial summary whose
// committed work a later resume completes into the uninterrupted
// run's digest.
func TestCancelSealsPartialSummaryAndResumes(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	ref := NewManager()
	addSynthetic(ref, n)
	ref.ScanHost = syntheticBody
	want, err := ref.SweepJournaledStream(SweepInside, 2, filepath.Join(dir, "ref.gbj"), nil)
	if err != nil {
		t.Fatal(err)
	}

	// The victim's first scan blocks until released, so the sweep
	// cannot outrun the cancel; commits from other hosts trigger it.
	gate := make(chan struct{})
	var first, release sync.Once
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	path := filepath.Join(dir, "cut.gbj")
	mgr := NewManager()
	addSynthetic(mgr, n)
	mgr.ScanHost = func(h *Host, kind SweepKind) HostResult {
		if h.Name == hostName(0) {
			hit := false
			first.Do(func() { hit = true })
			if hit {
				<-gate
			}
		}
		return syntheticBody(h, kind)
	}
	mgr.Cancel = cancel
	committed := 0
	sum, err := mgr.SweepJournaledStream(SweepInside, 2, path, func(res HostResult) {
		committed++
		if committed == 2 {
			cancelOnce.Do(func() { close(cancel) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	release.Do(func() { close(gate) })
	if !sum.Interrupted {
		t.Fatal("cancelled sweep not marked Interrupted")
	}
	if sum.NotScanned == 0 {
		t.Error("cancelled sweep claims every host scanned")
	}
	if sum.Scanned+sum.NotScanned != n {
		t.Errorf("scanned %d + not scanned %d != %d", sum.Scanned, sum.NotScanned, n)
	}
	if err := sum.VerifyDigest(); err != nil {
		t.Errorf("partial summary fails its own seal: %v", err)
	}

	re := NewManager()
	addSynthetic(re, n)
	re.ScanHost = syntheticBody
	resumed, err := re.ResumeStream(SweepInside, 2, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Interrupted {
		t.Error("resumed sweep still marked Interrupted")
	}
	if resumed.Scanned != n || resumed.Digest != want.Digest {
		t.Errorf("resume after cancel: scanned %d, digest %.12s (want %d, %.12s)",
			resumed.Scanned, resumed.Digest, n, want.Digest)
	}
}

// TestResultCancelledDetectsCasualties: the casualty filter must catch
// a cancellation surfacing as the host error (fail-fast mode) or buried
// in a contained unit's fault, and must not flag ordinary failures.
func TestResultCancelledDetectsCasualties(t *testing.T) {
	marker := core.ErrCancelled.Error()
	cases := []struct {
		name string
		res  HostResult
		want bool
	}{
		{"fail-fast error", HostResult{Err: "inside sweep: " + marker}, true},
		{"contained degraded unit", HostResult{Reports: []*core.Report{{
			DegradedUnits: []core.DegradedUnit{{Unit: "disk/high", Fault: marker}},
		}}}, true},
		{"ordinary failure", HostResult{Err: "disk: read fault"}, false},
		{"ordinary degradation", HostResult{Reports: []*core.Report{{
			DegradedUnits: []core.DegradedUnit{{Unit: "disk/high", Fault: "disk: read fault"}},
		}}}, false},
		{"clean result", HostResult{Host: "h"}, false},
	}
	for _, c := range cases {
		if got := resultCancelled(&c.res); got != c.want {
			t.Errorf("%s: resultCancelled = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestJitteredBackoffDeterministicBoundedCapped: full jitter is a pure
// function of (seed, tags) — same inputs, same wait — every jittered
// wait stays within [1, backoff], the saturation cap still binds, and
// seed zero is the exact legacy schedule.
func TestJitteredBackoffDeterministicBoundedCapped(t *testing.T) {
	cur := 32 * time.Second
	if a, b := JitteredBackoff(cur, 42, 7, 3), JitteredBackoff(cur, 42, 7, 3); a != b {
		t.Errorf("same (seed, tags) gave %v then %v", a, b)
	}
	distinct := map[time.Duration]bool{}
	for tag := uint64(0); tag < 64; tag++ {
		w := JitteredBackoff(cur, 42, tag, 1)
		if w < 1 || w > cur {
			t.Fatalf("jittered wait %v escaped [1, %v]", w, cur)
		}
		distinct[w] = true
	}
	if len(distinct) < 2 {
		t.Error("64 hosts drew identical jitter — the herd still thunders")
	}
	if w := JitteredBackoff(48*time.Hour, 42, 1); w > MaxRetryBackoff {
		t.Errorf("jitter above the saturation cap: %v", w)
	}
	if w := JitteredBackoff(cur, 0, 7, 3); w != cur {
		t.Errorf("seed 0 changed the wait: %v != %v", w, cur)
	}
}

// TestJitteredRetryPreservesVerdicts: a retried sweep with jitter
// enabled reaches the same verdicts as the zero-jitter schedule — the
// jitter only moves waits, never outcomes — and every retried host's
// wait stays within the doubling schedule's budget.
func TestJitteredRetryPreservesVerdicts(t *testing.T) {
	run := func(seed int64) *SweepSummary {
		mgr := NewManager()
		addSynthetic(mgr, 6)
		var flaky atomic.Int64
		mgr.ScanHost = func(h *Host, kind SweepKind) HostResult {
			if h.Name == hostName(3) && flaky.Add(1) == 1 {
				return HostResult{Host: h.Name, Kind: kind, Err: "transient: io"}
			}
			return syntheticBody(h, kind)
		}
		mgr.MaxRetries = 2
		mgr.RetryBackoff = 2 * time.Second
		mgr.BackoffJitterSeed = seed
		sum, err := mgr.SweepStreamed(SweepInside, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	plain, jittered := run(0), run(99)
	if plain.Failed != 0 || jittered.Failed != 0 {
		t.Fatalf("retry did not recover: plain %d failed, jittered %d failed",
			plain.Failed, jittered.Failed)
	}
	if jittered.Infected != plain.Infected || jittered.Scanned != plain.Scanned {
		t.Errorf("jitter changed verdicts: %+v vs %+v", jittered, plain)
	}
	// The jittered wait is bounded by the deterministic one, so total
	// virtual cost can only shrink.
	if jittered.VirtualNs > plain.VirtualNs {
		t.Errorf("jittered virtual cost %d exceeds zero-jitter %d", jittered.VirtualNs, plain.VirtualNs)
	}
}
