package fleet

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/journal"
)

// journaledFleet builds the canonical crash-test fleet: four hosts, one
// infected, so resumes must preserve a true finding across the crash.
func journaledFleet(t *testing.T) *Manager {
	t.Helper()
	return buildFleet(t, 4, map[int]ghostware.Ghostware{1: ghostware.NewHackerDefender()})
}

// truncateAfterCommits cuts the journal right after its nth terminal
// record — a crash point that is stable even though worker-side running
// records interleave freely with collector-side commits.
func truncateAfterCommits(t *testing.T, path string, n int, torn bool) {
	t.Helper()
	recs, _, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i, rec := range recs {
		if rec.State.Terminal() {
			count++
			if count == n {
				if _, err := journal.TruncateRecords(path, i+1, torn); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
	}
	t.Fatalf("journal has only %d terminal records, want %d", count, n)
}

// truncateAfterRunning cuts the journal right after the named host's
// first running record, leaving that host in flight.
func truncateAfterRunning(t *testing.T, path string, host string) {
	t.Helper()
	recs, _, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if rec.State == journal.StateRunning && rec.Host == host {
			if _, err := journal.TruncateRecords(path, i+1, false); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("journal has no running record for %s", host)
}

func TestJournaledSweepRecordsAndSeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	mgr := journaledFleet(t)
	rep, err := mgr.SweepJournaled(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("fresh sweep report fails verification: %v", err)
	}
	if got := rep.Infected(); len(got) != 1 || got[0] != hostName(1) {
		t.Fatalf("infected = %v, want exactly %s", got, hostName(1))
	}
	if len(rep.Results) != 4 || rep.Aborted || len(rep.Replayed) != 0 {
		t.Fatalf("report shape off: %+v", rep)
	}

	// Journal shape: sweep header, one scheduled per host, then a
	// running + terminal pair per host (sequential, one worker).
	recs, dropped, err := journal.Read(path)
	if err != nil || dropped != 0 {
		t.Fatalf("journal unreadable: %v (dropped %d)", err, dropped)
	}
	if len(recs) != 1+4+4*2 {
		t.Fatalf("journal has %d records, want 13", len(recs))
	}
	if recs[0].State != journal.StateSweep || recs[0].Kind != "inside" || len(recs[0].Hosts) != 4 {
		t.Fatalf("bad header: %+v", recs[0])
	}
	terminal := map[string]journal.Record{}
	for _, rec := range recs[1:] {
		if rec.State.Terminal() {
			terminal[rec.Host] = rec
		}
	}
	for _, hr := range rep.Results {
		rec, ok := terminal[hr.Host]
		if !ok {
			t.Fatalf("host %s has no terminal record", hr.Host)
		}
		if rec.ResultHash != hr.Hash {
			t.Errorf("host %s: journal hash %.12s != report hash %.12s", hr.Host, rec.ResultHash, hr.Hash)
		}
		var res HostResult
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			t.Fatalf("host %s result unparseable: %v", hr.Host, err)
		}
		if res.Infected != hr.Infected {
			t.Errorf("host %s journal verdict %v != report %v", hr.Host, res.Infected, hr.Infected)
		}
	}
}

// TestResumeReplaysCommittedHosts: kill the sweep after two hosts
// committed, resume on a freshly built identical fleet, and the merged
// report must match the uninterrupted run host-for-host — with the
// committed hosts replayed from the journal, not re-scanned.
func TestResumeReplaysCommittedHosts(t *testing.T) {
	for _, torn := range []bool{false, true} {
		name := "clean-cut"
		if torn {
			name = "torn-tail"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.gbj")
			full, err := journaledFleet(t).SweepJournaled(SweepInside, 1, path)
			if err != nil {
				t.Fatal(err)
			}
			// Crash right after hosts a and b committed; the torn variant
			// leaves a partial record after the cut.
			truncateAfterCommits(t, path, 2, torn)

			mgr2 := journaledFleet(t)
			clockBefore := mgrHost(t, mgr2, hostName(0)).Clock.Now()
			resumed, err := mgr2.Resume(SweepInside, 1, path)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Verify(); err != nil {
				t.Fatalf("resumed report fails verification: %v", err)
			}
			wantReplayed := []string{hostName(0), hostName(1)}
			if len(resumed.Replayed) != 2 || resumed.Replayed[0] != wantReplayed[0] || resumed.Replayed[1] != wantReplayed[1] {
				t.Fatalf("replayed = %v, want %v", resumed.Replayed, wantReplayed)
			}
			// A replayed host is not scanned again: its machine's virtual
			// clock never moves.
			if now := mgrHost(t, mgr2, hostName(0)).Clock.Now(); now != clockBefore {
				t.Errorf("replayed host was re-scanned: clock moved %v", now-clockBefore)
			}
			// Host-for-host, the merged report matches the uninterrupted
			// run: same verdicts, same content hashes.
			if len(resumed.Results) != len(full.Results) {
				t.Fatalf("results = %d, want %d", len(resumed.Results), len(full.Results))
			}
			for i, hr := range resumed.Results {
				ref := full.Results[i]
				if hr.Host != ref.Host || hr.Infected != ref.Infected || hr.Hash != ref.Hash {
					t.Errorf("host %s diverged after resume: hash %.12s vs %.12s, infected %v vs %v",
						ref.Host, hr.Hash, ref.Hash, hr.Infected, ref.Infected)
				}
			}
			if resumed.Digest != full.Digest {
				t.Errorf("resumed sweep digest %.12s != uninterrupted %.12s", resumed.Digest, full.Digest)
			}
		})
	}
}

// TestResumeContinuesAttemptNumbering: a host that was mid-scan at the
// crash (dangling running record) is re-run with its attempt count
// carried forward, so the crash shows up in the accounting.
func TestResumeContinuesAttemptNumbering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	if _, err := journaledFleet(t).SweepJournaled(SweepInside, 1, path); err != nil {
		t.Fatal(err)
	}
	// Crash with host c in flight: its running record committed, its
	// terminal record lost.
	truncateAfterRunning(t, path, hostName(2))
	resumed, err := journaledFleet(t).Resume(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	var c HostResult
	for _, hr := range resumed.Results {
		if hr.Host == hostName(2) {
			c = hr
		}
	}
	if c.Attempts != 2 {
		t.Errorf("in-flight host resumed with attempts = %d, want 2 (1 lost to crash + 1 after)", c.Attempts)
	}
	if c.Err != "" || c.Infected {
		t.Errorf("in-flight host verdict wrong after resume: %+v", c)
	}
	// Its new terminal record carries the continued attempt number.
	recs, _, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	for _, rec := range recs {
		if rec.Host == hostName(2) && rec.State.Terminal() {
			if rec.Attempt != 2 {
				t.Errorf("journal terminal attempt = %d, want 2", rec.Attempt)
			}
		}
	}
	if !last.State.Terminal() {
		t.Errorf("journal does not end on a terminal record: %+v", last)
	}
}

// TestResumeRejectsTamperedResult: a journal whose committed result was
// rewritten must fail Resume loudly, at either tamper-evidence layer —
// a stale record hash, or a recomputed hash over reports whose own
// digests no longer verify.
func TestResumeRejectsTamperedResult(t *testing.T) {
	build := func(t *testing.T, mutate func(*journal.Record, *HostResult)) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "sweep.gbj")
		if _, err := journaledFleet(t).SweepJournaled(SweepInside, 1, path); err != nil {
			t.Fatal(err)
		}
		recs, _, err := journal.Read(path)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the journal wholesale — the attacker controls the file,
		// so framing CRCs are recomputed and pass; only the content
		// hashes inside can betray the edit.
		forged := filepath.Join(t.TempDir(), "forged.gbj")
		j, err := journal.Create(forged)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Host == hostName(1) && rec.State.Terminal() {
				var res HostResult
				if err := json.Unmarshal(rec.Result, &res); err != nil {
					t.Fatal(err)
				}
				mutate(&rec, &res)
				if rec.Result, err = json.Marshal(res); err != nil {
					t.Fatal(err)
				}
			}
			rec.Seq = 0
			if _, err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return forged
	}

	t.Run("stale record hash", func(t *testing.T) {
		// Flip the infected host's verdict; the record hash goes stale.
		path := build(t, func(rec *journal.Record, res *HostResult) {
			res.Infected = false
			res.Hidden = 0
		})
		_, err := journaledFleet(t).Resume(SweepInside, 1, path)
		if err == nil || !strings.Contains(err.Error(), "hash verification") {
			t.Fatalf("tampered journal resumed: %v", err)
		}
	})
	t.Run("recomputed hash, stale report digest", func(t *testing.T) {
		// A cleverer attacker recomputes the record hash — but the scan
		// reports inside were sealed at emission, and dropping findings
		// without resealing breaks their digests.
		path := build(t, func(rec *journal.Record, res *HostResult) {
			for _, rep := range res.Reports {
				rep.Hidden = nil
			}
			res.Infected = false
			res.Hidden = 0
			rec.ResultHash = ResultHash(*res)
		})
		_, err := journaledFleet(t).Resume(SweepInside, 1, path)
		if err == nil || !strings.Contains(err.Error(), "altered after sealing") {
			t.Fatalf("re-hashed tampered journal resumed: %v", err)
		}
	})
}

// TestResumeRejectsMismatchedSweep: resuming with the wrong kind or a
// different fleet is an operator error, caught before any scanning.
func TestResumeRejectsMismatchedSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	if _, err := journaledFleet(t).SweepJournaled(SweepInside, 1, path); err != nil {
		t.Fatal(err)
	}
	if _, err := journaledFleet(t).Resume(SweepOutside, 1, path); err == nil {
		t.Error("resumed an inside journal as an outside sweep")
	}
	if _, err := buildFleet(t, 2, nil).Resume(SweepInside, 1, path); err == nil {
		t.Error("resumed a 4-host journal on a 2-host fleet")
	}
}

// TestResumeInteriorCorruptionIsLoud: a bit flipped inside the journal
// body (not the recoverable torn tail) must fail Resume, not silently
// drop records.
func TestResumeInteriorCorruptionIsLoud(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	if _, err := journaledFleet(t).SweepJournaled(SweepInside, 1, path); err != nil {
		t.Fatal(err)
	}
	if err := journal.Corrupt(path, faultinject.KindFlip, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := journaledFleet(t).Resume(SweepInside, 1, path); err == nil {
		t.Fatal("bit-flipped journal resumed silently")
	}
}

// TestBreakerQuarantinesHost: K consecutive hard-failed attempts open
// the host's circuit breaker; the sweep completes with the host
// quarantined instead of burning the full retry budget on it.
func TestBreakerQuarantinesHost(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	mgr := buildFleet(t, 3, nil)
	mgr.MaxRetries = 5
	mgr.BreakerThreshold = 2
	mgrHost(t, mgr, hostName(1)).Disk = nil // every attempt panics

	rep, err := mgr.SweepJournaled(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != hostName(1) {
		t.Fatalf("quarantined = %v, want [%s]", rep.Quarantined, hostName(1))
	}
	var broken HostResult
	for _, hr := range rep.Results {
		if hr.Host == hostName(1) {
			broken = hr
		}
	}
	if !broken.Quarantined || broken.Err == "" {
		t.Fatalf("quarantined result wrong: %+v", broken)
	}
	if broken.Attempts != 2 {
		t.Errorf("breaker tripped after %d attempts, want threshold 2 (not MaxRetries+1 = 6)", broken.Attempts)
	}
	recs, _, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	var state journal.State
	var reason string
	for _, rec := range recs {
		if rec.Host == hostName(1) && rec.State.Terminal() {
			state, reason = rec.State, rec.Reason
		}
	}
	if state != journal.StateQuarantined || !strings.Contains(reason, "circuit breaker") {
		t.Errorf("journal terminal = %q reason %q, want quarantined record citing the breaker", state, reason)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("quarantine report fails verification: %v", err)
	}
}

// TestBreakerCountsAcrossResume: dangling running records are failed
// attempts the crash ate; the breaker must count them, so a host that
// keeps killing the sweep gets quarantined on resume rather than
// crash-looping forever.
func TestBreakerCountsAcrossResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	mgr := buildFleet(t, 2, nil)
	if _, err := mgr.SweepJournaled(SweepInside, 1, path); err != nil {
		t.Fatal(err)
	}
	// Rewind to host a's running record, then add a second dangling
	// attempt: simulate two prior runs that each died inside a's scan.
	truncateAfterRunning(t, path, hostName(0))
	j, _, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(journal.Record{State: journal.StateRunning, Host: hostName(0), Attempt: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	mgr2 := buildFleet(t, 2, nil)
	mgr2.BreakerThreshold = 3
	mgr2.MaxRetries = 5
	mgrHost(t, mgr2, hostName(0)).Disk = nil // still broken after the resume
	rep, err := mgr2.Resume(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	var a HostResult
	for _, hr := range rep.Results {
		if hr.Host == hostName(0) {
			a = hr
		}
	}
	if !a.Quarantined {
		t.Fatalf("crash-looping host not quarantined: %+v", a)
	}
	// Two dangling pre-crash attempts + one failed post-resume attempt
	// reach the threshold of 3; attempt numbering continues at 3.
	if a.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (2 eaten by crashes + 1 live)", a.Attempts)
	}
}

// TestAbortAfterFailureFraction: the fleet error budget stops feeding
// hosts once failures exceed the fraction, journals the abort, and the
// report lists what was never scanned instead of omitting it.
func TestAbortAfterFailureFraction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	mgr := buildFleet(t, 4, nil)
	mgr.AbortAfterFailureFraction = 0.25
	mgrHost(t, mgr, hostName(0)).Disk = nil
	mgrHost(t, mgr, hostName(1)).Disk = nil

	rep, err := mgr.SweepJournaled(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Aborted || !strings.Contains(rep.AbortReason, "error budget") {
		t.Fatalf("sweep not aborted: %+v", rep)
	}
	// One worker scans in order: a fails (1 of 4, within budget), b
	// fails (2 of 4, over budget). The scheduler stops feeding, but c
	// may already be in flight when the budget trips — the guarantee is
	// that d is never fed and nothing unscanned goes unlisted.
	if len(rep.NotScanned) == 0 || rep.NotScanned[len(rep.NotScanned)-1] != hostName(3) {
		t.Fatalf("notScanned = %v, want at least [%s]", rep.NotScanned, hostName(3))
	}
	if len(rep.Results)+len(rep.NotScanned) != 4 {
		t.Fatalf("results %d + notScanned %d != 4 hosts", len(rep.Results), len(rep.NotScanned))
	}
	if !rep.Degraded() {
		t.Error("aborted sweep not reported degraded")
	}
	recs, _, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	var sawAbort bool
	for _, rec := range recs {
		if rec.State == journal.StateAborted {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Error("abort not journaled")
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("aborted report fails verification: %v", err)
	}

	// Resuming past the abort finishes the fleet: the abort record is
	// an operator note, not a tombstone.
	mgr2 := buildFleet(t, 4, nil)
	resumed, err := mgr2.Resume(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.NotScanned) != 0 || len(resumed.Results) != 4 {
		t.Fatalf("resume did not finish aborted sweep: %+v", resumed)
	}
}

// TestFleetReportTamperEvident: any post-seal mutation of the merged
// report fails Verify.
func TestFleetReportTamperEvident(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.gbj")
	rep, err := journaledFleet(t).SweepJournaled(SweepInside, 1, path)
	if err != nil {
		t.Fatal(err)
	}
	tamper := map[string]func(*Report){
		"flip verdict":    func(r *Report) { r.Results[1].Infected = false; r.Results[1].Hidden = 0 },
		"drop host":       func(r *Report) { r.Results = r.Results[:3] },
		"hide quarantine": func(r *Report) { r.Quarantined = []string{"host-x"} },
		"forge host hash": func(r *Report) { r.Results[0].Hash = strings.Repeat("0", 64) },
		"unhash host":     func(r *Report) { r.Results[0].Hash = "" },
		"hide abort":      func(r *Report) { r.Aborted = true },
		"strip digest":    func(r *Report) { r.Digest = "" },
	}
	for name, mutate := range tamper {
		var cp Report
		data, _ := json.Marshal(rep)
		if err := json.Unmarshal(data, &cp); err != nil {
			t.Fatal(err)
		}
		mutate(&cp)
		if err := cp.Verify(); err == nil {
			t.Errorf("%s: tampered fleet report still verifies", name)
		}
	}
	// The round-trip itself is verdict-preserving.
	var cp Report
	data, _ := json.Marshal(rep)
	if err := json.Unmarshal(data, &cp); err != nil {
		t.Fatal(err)
	}
	if err := cp.Verify(); err != nil {
		t.Errorf("JSON round-trip broke verification: %v", err)
	}
}

// TestResultHashExcludesRetryAccounting: how many attempts a verdict
// took is not part of the verdict.
func TestResultHashExcludesRetryAccounting(t *testing.T) {
	mgr := buildFleet(t, 1, nil)
	r := mgr.InsideSweep()[0]
	a := r
	b := r
	b.Elapsed *= 3
	b.RetryNs = 12345
	b.Attempts = 4
	if ResultHash(a) != ResultHash(b) {
		t.Error("result hash depends on timing/attempt accounting")
	}
	b.Infected = !b.Infected
	if ResultHash(a) == ResultHash(b) {
		t.Error("result hash ignores the verdict")
	}
}
