package fleet

import (
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/ghostware"
)

// armHost installs and arms a fault plan on the named host's machine.
func armHost(t *testing.T, mgr *Manager, name string, faults ...faultinject.Fault) *faultinject.Injector {
	t.Helper()
	inj, err := faultinject.New(mgrHost(t, mgr, name), faultinject.Plan{Seed: 1, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	return inj
}

// TestRetryRecoversTransientFault: a fault that fires once degrades the
// first attempt; with retries granted, the sweep re-scans the host and
// the final result is clean, with the abandoned attempt's cost kept out
// of Elapsed.
func TestRetryRecoversTransientFault(t *testing.T) {
	mgr := buildFleet(t, 2, nil)
	mgr.MaxRetries = 2
	armHost(t, mgr, hostName(0),
		faultinject.Fault{Source: faultinject.SourceAPI, Kind: faultinject.KindErr, After: 1, Count: 1})
	m := mgrHost(t, mgr, hostName(0))
	clockStart := m.Clock.Now()

	results := mgr.InsideSweep()
	r := results[0]
	if r.Err != "" || r.Degraded != 0 {
		t.Fatalf("retried host not clean: err=%q degraded=%d", r.Err, r.Degraded)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", r.Attempts)
	}
	if r.RetryNs <= 0 {
		t.Errorf("retryNs = %v, want > 0", r.RetryNs)
	}
	if len(r.Reports) != 4 {
		t.Errorf("reports = %d, want 4", len(r.Reports))
	}
	// Conservation: everything the host's clock consumed is accounted as
	// either the final attempt (Elapsed) or retry overhead (RetryNs) — so
	// benchmark aggregates summing elapsedNs never double-charge a host.
	if total := m.Clock.Now() - clockStart; total != r.Elapsed+r.RetryNs {
		t.Errorf("clock advanced %v, Elapsed %v + RetryNs %v = %v",
			total, r.Elapsed, r.RetryNs, r.Elapsed+r.RetryNs)
	}
	// The untouched host retried nothing.
	if results[1].Attempts != 0 || results[1].RetryNs != 0 {
		t.Errorf("clean host charged retries: %+v", results[1])
	}
}

// TestRetryExhaustionKeepsDegradedResult: a persistent fault survives
// every granted retry; the host stays degraded but its reports are still
// attached, and the attempt count records the whole story.
func TestRetryExhaustionKeepsDegradedResult(t *testing.T) {
	mgr := buildFleet(t, 1, nil)
	mgr.MaxRetries = 2
	mgr.RetryBackoff = time.Second
	armHost(t, mgr, hostName(0),
		faultinject.Fault{Source: faultinject.SourceAPI, Kind: faultinject.KindErr, After: 1, Count: 1 << 20})

	r := mgr.InsideSweep()[0]
	if r.Degraded == 0 {
		t.Fatal("persistent fault left no degradation")
	}
	if r.Err != "" {
		t.Fatalf("contained degradation surfaced as host error: %q", r.Err)
	}
	if r.Attempts != 3 {
		t.Errorf("attempts = %d, want MaxRetries+1 = 3", r.Attempts)
	}
	if len(r.Reports) != 4 {
		t.Errorf("degraded host lost its reports: %d", len(r.Reports))
	}
	// RetryNs covers two abandoned attempts plus the 1s and 2s backoffs.
	if r.RetryNs < 3*time.Second {
		t.Errorf("retryNs = %v, want >= 3s of backoff alone", r.RetryNs)
	}
}

// TestRetryDisabledByDefault: with MaxRetries zero a degraded first
// attempt stands, unretried and unannotated.
func TestRetryDisabledByDefault(t *testing.T) {
	mgr := buildFleet(t, 1, nil)
	armHost(t, mgr, hostName(0),
		faultinject.Fault{Source: faultinject.SourceAPI, Kind: faultinject.KindErr, After: 1, Count: 1})

	r := mgr.InsideSweep()[0]
	if r.Degraded == 0 {
		t.Fatal("fault did not degrade the sweep")
	}
	if r.Attempts != 0 || r.RetryNs != 0 {
		t.Errorf("unretried host annotated with attempts=%d retryNs=%v", r.Attempts, r.RetryNs)
	}
}

// TestHostDeadlineDegradesNotErrors: a too-tight per-host scan budget
// abandons units but keeps the host reportable — degraded stub reports,
// no host error — and the sweep's other hosts are unaffected.
func TestHostDeadlineDegradesNotErrors(t *testing.T) {
	mgr := buildFleet(t, 1, nil)
	mgr.HostDeadline = time.Nanosecond

	r := mgr.InsideSweep()[0]
	if r.Err != "" {
		t.Fatalf("deadline surfaced as host error: %q", r.Err)
	}
	if r.Degraded == 0 {
		t.Fatal("1ns deadline degraded nothing")
	}
	if len(r.Reports) != 4 {
		t.Fatalf("deadline host lost reports: %d", len(r.Reports))
	}
	for _, rep := range r.Reports {
		for _, du := range rep.DegradedUnits {
			if !strings.Contains(du.Fault, "deadline") {
				t.Errorf("degraded by %q, want a deadline fault", du.Fault)
			}
		}
	}
}

// TestScanPanicBecomesHostError: a panic that escapes scan-unit
// containment is captured per host; the sweep completes and the broken
// host carries the panic as its error.
func TestScanPanicBecomesHostError(t *testing.T) {
	mgr := buildFleet(t, 3, nil)
	mgrHost(t, mgr, hostName(1)).Disk = nil // detonates at scan entry

	results := mgr.Sweep(SweepInside, 2)
	if len(results) != 3 {
		t.Fatalf("sweep lost results: %d of 3", len(results))
	}
	if !strings.Contains(results[1].Err, "scan panic") {
		t.Fatalf("host 1 err = %q, want captured scan panic", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != "" || len(results[i].Reports) != 4 {
			t.Errorf("healthy host %s damaged by neighbor panic: %+v", results[i].Host, results[i])
		}
	}
}

// TestRetriedSweepStillDetects: retry must not eat true findings — an
// infected host whose first attempt is degraded by a transient fault is
// still convicted on the clean retry.
func TestRetriedSweepStillDetects(t *testing.T) {
	mgr := buildFleet(t, 2, map[int]ghostware.Ghostware{1: ghostware.NewHackerDefender()})
	mgr.MaxRetries = 1
	armHost(t, mgr, hostName(1),
		faultinject.Fault{Source: faultinject.SourceAPI, Kind: faultinject.KindErr, After: 1, Count: 1})

	s := Summarize(mgr.InsideSweep())
	if len(s.Errors) != 0 {
		t.Fatalf("errors = %v", s.Errors)
	}
	if len(s.Infected) != 1 || s.Infected[0] != hostName(1) {
		t.Fatalf("infected = %v, want exactly %s", s.Infected, hostName(1))
	}
}

// TestRetryNsDeadlineOnFinalAttempt: when the host deadline degrades
// every attempt and the final permitted attempt still stands, the
// abandoned attempts' cost lands in RetryNs and the conservation
// invariant (clock delta = Elapsed + RetryNs) holds exactly.
func TestRetryNsDeadlineOnFinalAttempt(t *testing.T) {
	mgr := buildFleet(t, 1, nil)
	mgr.MaxRetries = 1
	mgr.RetryBackoff = time.Second
	mgr.HostDeadline = time.Nanosecond
	m := mgrHost(t, mgr, hostName(0))
	clockStart := m.Clock.Now()

	r := mgr.InsideSweep()[0]
	if r.Err != "" {
		t.Fatalf("deadline surfaced as host error: %q", r.Err)
	}
	if r.Degraded == 0 {
		t.Fatal("1ns deadline degraded nothing on the final attempt")
	}
	if r.Attempts != 2 {
		t.Errorf("attempts = %d, want MaxRetries+1 = 2", r.Attempts)
	}
	// RetryNs covers the abandoned first attempt plus the 1s backoff.
	if r.RetryNs < time.Second {
		t.Errorf("retryNs = %v, want >= the 1s backoff", r.RetryNs)
	}
	if total := m.Clock.Now() - clockStart; total != r.Elapsed+r.RetryNs {
		t.Errorf("clock advanced %v, Elapsed %v + RetryNs %v = %v",
			total, r.Elapsed, r.RetryNs, r.Elapsed+r.RetryNs)
	}
}

// TestBackoffCapSaturates: doubling stops at maxRetryBackoff, so a
// huge MaxRetries cannot overflow time.Duration into a negative wait.
func TestBackoffCapSaturates(t *testing.T) {
	b := defaultRetryBackoff
	for i := 0; i < 200; i++ { // far past where naive doubling overflows int64
		b = nextBackoff(b)
		if b <= 0 || b > maxRetryBackoff {
			t.Fatalf("backoff escaped [0, %v] after %d doublings: %v", maxRetryBackoff, i+1, b)
		}
	}
	if b != maxRetryBackoff {
		t.Errorf("backoff saturated at %v, want %v", b, maxRetryBackoff)
	}
	// A configured backoff above the cap is clamped, not honored.
	if got := nextBackoff(48 * time.Hour); got != maxRetryBackoff {
		t.Errorf("nextBackoff(48h) = %v, want cap %v", got, maxRetryBackoff)
	}
}
