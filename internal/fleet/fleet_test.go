package fleet

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func buildFleet(t *testing.T, n int, infect map[int]ghostware.Ghostware) *Manager {
	t.Helper()
	mgr := NewManager()
	for i := 0; i < n; i++ {
		p := machine.DefaultProfile()
		p.DiskUsedGB = 1
		p.Churn = nil
		p.Seed = int64(i + 1)
		m, err := machine.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := infect[i]; ok {
			if err := g.Install(m); err != nil {
				t.Fatal(err)
			}
		}
		mgr.Add(hostName(i), m)
	}
	return mgr
}

func hostName(i int) string { return "host-" + string(rune('a'+i)) }

func TestInsideSweepClassifiesFleet(t *testing.T) {
	mgr := buildFleet(t, 4, map[int]ghostware.Ghostware{
		1: ghostware.NewHackerDefender(),
		3: ghostware.NewUrbin(),
	})
	results := mgr.InsideSweep()
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	s := Summarize(results)
	if s.Hosts != 4 || len(s.Errors) != 0 {
		t.Fatalf("summary = %+v", s)
	}
	want := map[string]bool{hostName(1): true, hostName(3): true}
	if len(s.Infected) != 2 {
		t.Fatalf("infected = %v", s.Infected)
	}
	for _, h := range s.Infected {
		if !want[h] {
			t.Errorf("false positive host %s", h)
		}
	}
	for _, r := range results {
		if r.Elapsed <= 0 {
			t.Errorf("host %s consumed no virtual time", r.Host)
		}
	}
}

func TestOutsideSweepRebootsHostsBack(t *testing.T) {
	mgr := buildFleet(t, 2, map[int]ghostware.Ghostware{0: ghostware.NewVanquish()})
	results := mgr.OutsideSweep()
	s := Summarize(results)
	if len(s.Infected) != 1 || s.Infected[0] != hostName(0) {
		t.Fatalf("infected = %v", s.Infected)
	}
	// Every host is back in service after the netboot scan.
	for i := 0; i < 2; i++ {
		m := mgrHost(t, mgr, hostName(i))
		if _, err := m.Pid("explorer.exe"); err != nil {
			t.Errorf("%s not rebooted: %v", hostName(i), err)
		}
	}
}

func mgrHost(t *testing.T, mgr *Manager, name string) *machine.Machine {
	t.Helper()
	for _, h := range mgr.hosts {
		if h.Name == name {
			return h.M
		}
	}
	t.Fatalf("no host %s", name)
	return nil
}

func TestMarshalResultsIsValidJSON(t *testing.T) {
	mgr := buildFleet(t, 2, map[int]ghostware.Ghostware{1: ghostware.NewBerbew()})
	results := mgr.InsideSweep()
	data, err := MarshalResults(results)
	if err != nil {
		t.Fatal(err)
	}
	var back []HostResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back) != 2 {
		t.Errorf("round trip lost hosts: %d", len(back))
	}
	if !strings.Contains(string(data), `"infected": true`) {
		t.Error("JSON missing infection flag")
	}
}

// TestParallelSweepMatchesSequential: the fan-out must produce exactly
// the sequential results (machines are independent; determinism holds)
// at every scheduler bound the acceptance matrix names.
func TestParallelSweepMatchesSequential(t *testing.T) {
	build := func() *Manager {
		return buildFleet(t, 5, map[int]ghostware.Ghostware{
			1: ghostware.NewHackerDefender(),
			4: ghostware.NewVanquish(),
		})
	}
	seq := build().InsideSweep()
	for _, workers := range []int{1, 4, 64} {
		mgr := build()
		mgr.Parallelism = workers
		par := mgr.ParallelInsideSweep()
		if len(seq) != len(par) {
			t.Fatalf("workers=%d: result counts differ: %d vs %d", workers, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].Host != par[i].Host || seq[i].Infected != par[i].Infected || seq[i].Hidden != par[i].Hidden {
				t.Errorf("workers=%d host %s: seq {inf %v hid %d} vs par {inf %v hid %d}",
					workers, seq[i].Host, seq[i].Infected, seq[i].Hidden, par[i].Infected, par[i].Hidden)
			}
		}
	}
}

// tinyFleet builds n minimal hosts cheaply (small format headroom, no
// population) for scheduler-focused tests.
func tinyFleet(t testing.TB, n int) *Manager {
	t.Helper()
	mgr := NewManager()
	for i := 0; i < n; i++ {
		p := machine.DefaultProfile()
		p.DiskUsedGB = 0.05
		p.Churn = nil
		p.Seed = int64(i + 1)
		p.MFTHeadroom = 64
		p.ClusterHeadroom = 64
		m, err := machine.New(p)
		if err != nil {
			t.Fatal(err)
		}
		mgr.Add(fmt.Sprintf("host-%03d", i), m)
	}
	return mgr
}

// TestSchedulerBoundsConcurrency: at parallelism k, no more than k host
// scans may ever be in flight, regardless of fleet size.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	mgr := tinyFleet(t, 16)
	const workers = 3
	var inFlight, peak int32
	for ir := range mgr.schedule(workers, func(h *Host) HostResult {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&inFlight, -1)
		return HostResult{Host: h.Name}
	}) {
		_ = ir
	}
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Fatalf("concurrency peaked at %d, bound is %d", p, workers)
	}
	if p := atomic.LoadInt32(&peak); p == 0 {
		t.Fatal("no scan ever ran")
	}
}

// TestSchedulerCapturesPanics: one exploding host must not take down the
// sweep; it becomes that host's error result.
func TestSchedulerCapturesPanics(t *testing.T) {
	mgr := tinyFleet(t, 4)
	n := 0
	var failed string
	for ir := range mgr.schedule(2, func(h *Host) HostResult {
		if h.Name == "host-002" {
			panic("disk on fire")
		}
		return HostResult{Host: h.Name}
	}) {
		n++
		if ir.r.Err != "" {
			failed = ir.r.Host + ": " + ir.r.Err
		}
	}
	if n != 4 {
		t.Fatalf("sweep lost results: %d of 4", n)
	}
	if !strings.Contains(failed, "host-002") || !strings.Contains(failed, "disk on fire") {
		t.Fatalf("panic not captured per-host: %q", failed)
	}
}

// TestSweepStreamDeliversAllHosts: the streaming variant yields every
// host exactly once and closes.
func TestSweepStreamDeliversAllHosts(t *testing.T) {
	mgr := buildFleet(t, 3, map[int]ghostware.Ghostware{2: ghostware.NewVanquish()})
	seen := map[string]int{}
	infected := 0
	for r := range mgr.SweepStream(SweepInside, 4) {
		seen[r.Host]++
		if r.Infected {
			infected++
		}
	}
	if len(seen) != 3 {
		t.Fatalf("stream delivered %d hosts, want 3", len(seen))
	}
	for h, n := range seen {
		if n != 1 {
			t.Errorf("host %s delivered %d times", h, n)
		}
	}
	if infected != 1 {
		t.Errorf("infected = %d, want 1", infected)
	}
}

// TestWarmSweepCostsLessVirtualTime: the second inside sweep of an
// unchanged fleet replaces the MFT and hive reparses with verify
// passes. The high-level API scans still re-run at full (dominant,
// seek-bound) virtual cost — the cache must charge strictly less, never
// more, and the verdicts must not drift.
func TestWarmSweepCostsLessVirtualTime(t *testing.T) {
	mgr := buildFleet(t, 3, map[int]ghostware.Ghostware{1: ghostware.NewHackerDefender()})
	cold := mgr.InsideSweep()
	warm := mgr.InsideSweep()
	for i := range cold {
		if warm[i].Infected != cold[i].Infected || warm[i].Hidden != cold[i].Hidden {
			t.Errorf("host %s verdict drifted between sweeps", cold[i].Host)
		}
		if warm[i].Elapsed >= cold[i].Elapsed {
			t.Errorf("host %s: warm sweep %v vs cold %v — cache not engaged",
				cold[i].Host, warm[i].Elapsed, cold[i].Elapsed)
		}
	}
}

// TestEmptyFleetSweeps: scheduling over zero hosts terminates cleanly.
func TestEmptyFleetSweeps(t *testing.T) {
	mgr := NewManager()
	if got := mgr.ParallelInsideSweep(); len(got) != 0 {
		t.Fatalf("results = %v", got)
	}
	if got := mgr.OutsideSweep(); len(got) != 0 {
		t.Fatalf("results = %v", got)
	}
}

// TestParallelOutsideSweepMatchesSequential: the outside flow goes
// through the same scheduler.
func TestParallelOutsideSweepMatchesSequential(t *testing.T) {
	build := func() *Manager {
		return buildFleet(t, 3, map[int]ghostware.Ghostware{0: ghostware.NewVanquish()})
	}
	seq := build().OutsideSweep()
	mgr := build()
	mgr.Parallelism = 4
	par := mgr.ParallelOutsideSweep()
	for i := range seq {
		if seq[i].Host != par[i].Host || seq[i].Infected != par[i].Infected {
			t.Errorf("host %s: seq inf=%v vs par inf=%v", seq[i].Host, seq[i].Infected, par[i].Infected)
		}
		if par[i].Kind != SweepOutside {
			t.Errorf("host %s: kind = %q", par[i].Host, par[i].Kind)
		}
	}
}

// TestHostParallelismSweepMatchesSequential pins the intra-host fan-out
// plumbing: a sweep with HostParallelism set must classify the fleet
// exactly like the per-host sequential sweep.
func TestHostParallelismSweepMatchesSequential(t *testing.T) {
	infections := map[int]ghostware.Ghostware{1: ghostware.NewHackerDefender()}
	want := Summarize(buildFleet(t, 3, infections).InsideSweep())

	mgr := buildFleet(t, 3, infections)
	mgr.Parallelism = 2
	mgr.HostParallelism = 4
	results := mgr.ParallelInsideSweep()
	got := Summarize(results)
	if len(got.Errors) != 0 {
		t.Fatalf("errors = %v", got.Errors)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("parallel-host summary %+v != sequential %+v", got, want)
	}
	for _, r := range results {
		if len(r.Reports) != 4 {
			t.Errorf("%s: reports = %d", r.Host, len(r.Reports))
		}
	}
}
