package fleet

import (
	"encoding/json"
	"strings"
	"testing"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/machine"
)

func buildFleet(t *testing.T, n int, infect map[int]ghostware.Ghostware) *Manager {
	t.Helper()
	mgr := NewManager()
	for i := 0; i < n; i++ {
		p := machine.DefaultProfile()
		p.DiskUsedGB = 1
		p.Churn = nil
		p.Seed = int64(i + 1)
		m, err := machine.New(p)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := infect[i]; ok {
			if err := g.Install(m); err != nil {
				t.Fatal(err)
			}
		}
		mgr.Add(hostName(i), m)
	}
	return mgr
}

func hostName(i int) string { return "host-" + string(rune('a'+i)) }

func TestInsideSweepClassifiesFleet(t *testing.T) {
	mgr := buildFleet(t, 4, map[int]ghostware.Ghostware{
		1: ghostware.NewHackerDefender(),
		3: ghostware.NewUrbin(),
	})
	results := mgr.InsideSweep()
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	s := Summarize(results)
	if s.Hosts != 4 || len(s.Errors) != 0 {
		t.Fatalf("summary = %+v", s)
	}
	want := map[string]bool{hostName(1): true, hostName(3): true}
	if len(s.Infected) != 2 {
		t.Fatalf("infected = %v", s.Infected)
	}
	for _, h := range s.Infected {
		if !want[h] {
			t.Errorf("false positive host %s", h)
		}
	}
	for _, r := range results {
		if r.Elapsed <= 0 {
			t.Errorf("host %s consumed no virtual time", r.Host)
		}
	}
}

func TestOutsideSweepRebootsHostsBack(t *testing.T) {
	mgr := buildFleet(t, 2, map[int]ghostware.Ghostware{0: ghostware.NewVanquish()})
	results := mgr.OutsideSweep()
	s := Summarize(results)
	if len(s.Infected) != 1 || s.Infected[0] != hostName(0) {
		t.Fatalf("infected = %v", s.Infected)
	}
	// Every host is back in service after the netboot scan.
	for i := 0; i < 2; i++ {
		m := mgrHost(t, mgr, hostName(i))
		if _, err := m.Pid("explorer.exe"); err != nil {
			t.Errorf("%s not rebooted: %v", hostName(i), err)
		}
	}
}

func mgrHost(t *testing.T, mgr *Manager, name string) *machine.Machine {
	t.Helper()
	for _, h := range mgr.hosts {
		if h.Name == name {
			return h.M
		}
	}
	t.Fatalf("no host %s", name)
	return nil
}

func TestMarshalResultsIsValidJSON(t *testing.T) {
	mgr := buildFleet(t, 2, map[int]ghostware.Ghostware{1: ghostware.NewBerbew()})
	results := mgr.InsideSweep()
	data, err := MarshalResults(results)
	if err != nil {
		t.Fatal(err)
	}
	var back []HostResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back) != 2 {
		t.Errorf("round trip lost hosts: %d", len(back))
	}
	if !strings.Contains(string(data), `"infected": true`) {
		t.Error("JSON missing infection flag")
	}
}

// TestParallelSweepMatchesSequential: the fan-out must produce exactly
// the sequential results (machines are independent; determinism holds).
func TestParallelSweepMatchesSequential(t *testing.T) {
	build := func() *Manager {
		return buildFleet(t, 5, map[int]ghostware.Ghostware{
			1: ghostware.NewHackerDefender(),
			4: ghostware.NewVanquish(),
		})
	}
	seq := build().InsideSweep()
	par := build().ParallelInsideSweep()
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Host != par[i].Host || seq[i].Infected != par[i].Infected || seq[i].Hidden != par[i].Hidden {
			t.Errorf("host %s: seq {inf %v hid %d} vs par {inf %v hid %d}",
				seq[i].Host, seq[i].Infected, seq[i].Hidden, par[i].Infected, par[i].Hidden)
		}
	}
}
