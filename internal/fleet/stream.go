// Streaming sweeps: the bounded-memory flavor of the journaled sweep a
// fleetshard sweeper shard runs. Instead of retaining every HostResult
// and merging them into a Report at the end, each result is folded into
// a compact SweepSummary (counts, virtual-time charges, and an
// order-independent digest accumulator) the moment it commits, handed
// to an optional sink, and dropped — so a shard sweeping a hundred
// thousand hosts keeps O(in-flight) results resident, never O(hosts).
// The summary's digest is the per-shard entry in the cross-shard
// (fourth) verification layer; internal/fleetshard merges summaries
// across shards.
package fleet

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"ghostbuster/internal/journal"
)

// ResidentGauge counts host results that are in flight or awaiting
// aggregation. Streaming sweeps raise it when a host scan starts and
// lower it once the result has been folded and released, so its peak is
// the bounded-memory invariant a test can pin: peak ≤ workers (+1 for
// the result crossing the channel), or summed across a coordinator's
// shards, O(shards + in-flight hosts).
type ResidentGauge struct {
	cur, peak atomic.Int64
}

// Inc marks one more result resident.
func (g *ResidentGauge) Inc() {
	c := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// Dec marks one result folded and released.
func (g *ResidentGauge) Dec() { g.cur.Add(-1) }

// Current returns the resident count right now.
func (g *ResidentGauge) Current() int { return int(g.cur.Load()) }

// Peak returns the highest resident count observed.
func (g *ResidentGauge) Peak() int { return int(g.peak.Load()) }

// SweepSummary is the bounded-memory outcome of a streamed sweep: what
// a sweeper shard sends back to its coordinator instead of a full
// Report. Everything in it is O(1) in the host count.
type SweepSummary struct {
	Kind SweepKind `json:"kind"`
	// Hosts is the enrolled host count; Scanned how many produced a
	// committed result (replayed ones included).
	Hosts   int `json:"hosts"`
	Scanned int `json:"scanned"`
	// Verdict counters over the scanned hosts.
	Infected      int `json:"infected"`
	HiddenTotal   int `json:"hiddenTotal"`
	Failed        int `json:"failed"`
	DegradedHosts int `json:"degradedHosts"`
	Quarantined   int `json:"quarantined"`
	// Replayed counts hosts restored from the journal on resume;
	// provenance, excluded from the digest like Report.Replayed.
	Replayed int `json:"replayed,omitempty"`
	// NotScanned counts hosts an abort left unvisited.
	NotScanned  int    `json:"notScanned,omitempty"`
	Aborted     bool   `json:"aborted,omitempty"`
	AbortReason string `json:"abortReason,omitempty"`
	// Interrupted marks a sweep cut short through Manager.Cancel: the
	// journal is sealed at the last committed record and NotScanned
	// counts the abandoned hosts. Provenance (like Replayed), excluded
	// from the digest — a wedged shard's committed work must merge into
	// the same cross-shard digest an uninterrupted run produces.
	Interrupted bool `json:"interrupted,omitempty"`
	// Hedged counts duplicate scans launched for stragglers; HedgeWins
	// how many of those beat the primary. Provenance, excluded from the
	// digest: hedging may only change who computed a result, never the
	// result.
	Hedged    int64 `json:"hedged,omitempty"`
	HedgeWins int64 `json:"hedgeWins,omitempty"`
	// VirtualNs sums every host's Elapsed + RetryNs: the shard's total
	// virtual scan cost. A shard models one sweeper process scanning
	// its hosts, so this is also the shard's virtual makespan.
	VirtualNs int64 `json:"virtualNs"`
	// PeakResident is the gauge's high-water mark (shared gauge: the
	// coordinator-wide peak). Diagnostic, excluded from the digest.
	PeakResident int `json:"peakResident,omitempty"`
	// Acc is the order-independent fold of every scanned host's
	// (name, result hash) contribution.
	Acc Accumulator `json:"acc"`
	// Digest seals the summary (see ComputeDigest).
	Digest string `json:"digest,omitempty"`
}

// summaryDigestBody is the canonical form the summary digest covers:
// verdict structure and the host-content accumulator — not timing, not
// provenance, not the memory gauge.
type summaryDigestBody struct {
	Kind          SweepKind `json:"kind"`
	Hosts         int       `json:"hosts"`
	Scanned       int       `json:"scanned"`
	Infected      int       `json:"infected"`
	HiddenTotal   int       `json:"hiddenTotal"`
	Failed        int       `json:"failed"`
	DegradedHosts int       `json:"degradedHosts"`
	Quarantined   int       `json:"quarantined"`
	NotScanned    int       `json:"notScanned,omitempty"`
	Aborted       bool      `json:"aborted,omitempty"`
	AbortReason   string    `json:"abortReason,omitempty"`
	Acc           string    `json:"acc"`
}

func (s *SweepSummary) digestBody() summaryDigestBody {
	return summaryDigestBody{
		Kind: s.Kind, Hosts: s.Hosts, Scanned: s.Scanned,
		Infected: s.Infected, HiddenTotal: s.HiddenTotal,
		Failed: s.Failed, DegradedHosts: s.DegradedHosts,
		Quarantined: s.Quarantined, NotScanned: s.NotScanned,
		Aborted: s.Aborted, AbortReason: s.AbortReason,
		Acc: s.Acc.Sum(),
	}
}

// ComputeDigest returns the summary's canonical digest.
func (s *SweepSummary) ComputeDigest() string {
	data, err := json.Marshal(s.digestBody())
	if err != nil {
		panic(fmt.Sprintf("fleet: summary digest marshal: %v", err))
	}
	return journal.Hash(data)
}

// Seal stamps the summary with its digest.
func (s *SweepSummary) Seal() { s.Digest = s.ComputeDigest() }

// VerifyDigest checks the seal against the summary's content.
func (s *SweepSummary) VerifyDigest() error {
	if s.Digest == "" {
		return fmt.Errorf("fleet: sweep summary is unsealed (no digest)")
	}
	if got := s.ComputeDigest(); got != s.Digest {
		return fmt.Errorf("fleet: sweep summary digest mismatch: sealed %.12s, content hashes %.12s — summary altered after sealing",
			s.Digest, got)
	}
	return nil
}

// fold absorbs one committed host result. The result must already
// carry its content hash.
func (s *SweepSummary) fold(res HostResult) {
	s.Scanned++
	s.VirtualNs += int64(res.Elapsed + res.RetryNs)
	if res.Infected {
		s.Infected++
		s.HiddenTotal += res.Hidden
	}
	if res.Err != "" {
		s.Failed++
	}
	if res.Degraded > 0 {
		s.DegradedHosts++
	}
	if res.Quarantined {
		s.Quarantined++
	}
	s.Acc.Fold(res.Host, res.Hash)
}

// Merge folds another summary of the same sweep kind into this one —
// how a coordinator combines a resumed shard's primary summary with the
// recovery pass that adopted a lost shard's hosts. The merged summary
// is unsealed; call Seal again.
func (s *SweepSummary) Merge(o *SweepSummary) {
	s.Hosts += o.Hosts
	s.Scanned += o.Scanned
	s.Infected += o.Infected
	s.HiddenTotal += o.HiddenTotal
	s.Failed += o.Failed
	s.DegradedHosts += o.DegradedHosts
	s.Quarantined += o.Quarantined
	s.Replayed += o.Replayed
	s.NotScanned += o.NotScanned
	if o.Aborted {
		s.Aborted = true
		if s.AbortReason == "" {
			s.AbortReason = o.AbortReason
		}
	}
	if o.Interrupted {
		s.Interrupted = true
	}
	s.Hedged += o.Hedged
	s.HedgeWins += o.HedgeWins
	s.VirtualNs += o.VirtualNs
	if o.PeakResident > s.PeakResident {
		s.PeakResident = o.PeakResident
	}
	s.Acc.Merge(o.Acc)
	s.Digest = ""
}

// SweepStreamed runs an unjournaled streaming sweep: every committed
// result is folded into the summary, offered to sink (which may be
// nil), and dropped. This is the path the million-host benchmark pins:
// no journal I/O, no retained results, O(in-flight) memory.
func (mgr *Manager) SweepStreamed(kind SweepKind, workers int, sink func(HostResult)) (*SweepSummary, error) {
	return mgr.sweepStream(kind, workers, nil, nil, sink)
}

// SweepJournaledStream is SweepJournaled with streaming aggregation:
// the journal still commits every host state transition (so the sweep
// is resumable), but results fold into a SweepSummary instead of
// accumulating into a Report.
func (mgr *Manager) SweepJournaledStream(kind SweepKind, workers int, path string, sink func(HostResult)) (*SweepSummary, error) {
	j, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	if _, err := j.Append(journal.Record{State: journal.StateSweep, Kind: string(kind), Hosts: mgr.Hosts()}); err != nil {
		return nil, err
	}
	for _, h := range mgr.hosts {
		if _, err := j.Append(journal.Record{State: journal.StateScheduled, Host: h.Name}); err != nil {
			return nil, err
		}
	}
	return mgr.sweepStream(kind, workers, j, nil, sink)
}

// ResumeStream continues an interrupted streamed sweep from its
// journal: committed results are hash-verified, folded, and offered to
// sink without re-scanning; dangling hosts re-run with attempt
// numbering continued — the same resume contract as Resume, at
// O(in-flight) result residency.
func (mgr *Manager) ResumeStream(kind SweepKind, workers int, path string, sink func(HostResult)) (*SweepSummary, error) {
	j, rec, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	replay, err := mgr.analyzeJournal(kind, rec.Records)
	if err != nil {
		return nil, err
	}
	return mgr.sweepStream(kind, workers, j, replay, sink)
}

// sweepStream is the streaming scan loop shared by the three entry
// points. j == nil means unjournaled.
func (mgr *Manager) sweepStream(kind SweepKind, workers int, j *journal.Journal, replay map[string]*hostReplay, sink func(HostResult)) (*SweepSummary, error) {
	mgr.ensureSorted()
	sum := &SweepSummary{Kind: kind, Hosts: len(mgr.hosts)}
	gauge := mgr.Resident
	if gauge == nil {
		gauge = &ResidentGauge{}
	}

	total := len(mgr.hosts)
	failed := 0
	emit := func(res HostResult) {
		sum.fold(res)
		if sink != nil {
			sink(res)
		}
	}

	// Replay committed results first: verified by analyzeJournal, folded
	// and released one at a time.
	var toRun []int
	for i, h := range mgr.hosts {
		hr := replay[h.Name]
		if hr != nil && hr.committed != nil {
			res := *hr.committed
			hr.committed = nil // folded; free the parsed result
			gauge.Inc()
			sum.Replayed++
			emit(res)
			gauge.Dec()
			if res.Err != "" || res.Quarantined {
				failed++
			}
			continue
		}
		toRun = append(toRun, i)
	}

	var (
		appendErrOnce sync.Once
		appendErr     error
		stop          = make(chan struct{})
		stopOnce      sync.Once
	)
	halt := func(err error) {
		appendErrOnce.Do(func() { appendErr = err })
		stopOnce.Do(func() { close(stop) })
	}
	append_ := func(rec journal.Record) {
		if j == nil {
			return
		}
		if _, err := j.Append(rec); err != nil {
			halt(err)
		}
	}

	hg := newHedger(mgr.Hedge)
	scan := func(h *Host) HostResult {
		gauge.Inc() // raised for the whole in-flight window, dec'd after fold
		var prior hostReplay
		if hr := replay[h.Name]; hr != nil {
			prior = *hr
		}
		if hg != nil && mgr.hedgeable(h) {
			// Hedge-capable hosts journal no attempt records; see the
			// dedupe rules in hedge.go.
			return hg.hedgedRun(h, func(hh *Host) HostResult {
				r := mgr.runHostFrom(hh, kind, prior.attempts, prior.dangling, nil)
				hh.release()
				return r
			})
		}
		res := mgr.runHostFrom(h, kind, prior.attempts, prior.dangling, func(attempt int) {
			append_(journal.Record{State: journal.StateRunning, Host: h.Name, Attempt: attempt})
		})
		h.release() // lazy hosts drop their machine once the result stands
		return res
	}

	results := mgr.scheduleHosts(workers, toRun, stop, scan)
collect:
	for {
		var ir indexedResult
		var ok bool
		// A nil Cancel channel never fires; the select degenerates to a
		// plain receive.
		select {
		case <-mgr.Cancel:
			// Wedged-shard abandonment: stop issuing hosts, discard any
			// results still in flight (they were never journaled or
			// folded, so the committed set stays exactly the journal's),
			// and return the partial summary. Terminal records are only
			// ever appended by this loop, so breaking out of it IS the
			// seal at the last committed record.
			sum.Interrupted = true
			stopOnce.Do(func() { close(stop) })
			go func() {
				for range results {
				}
			}()
			break collect
		case ir, ok = <-results:
			if !ok {
				break collect
			}
		}
		res := ir.r
		if mgr.cancelFired() && resultCancelled(&res) {
			// A scan the cancellation caught mid-flight: partial by
			// construction, never committed. The host stays unfinished
			// (its journal record, if any, is a dangling attempt) and is
			// re-scanned in full by whoever adopts it.
			gauge.Dec()
			continue
		}
		if res.Kind == "" {
			res.Kind = kind // panic-captured results carry only Host and Err
		}
		res.Hash = ResultHash(res)
		state := terminalState(res)
		if j != nil {
			resJSON, err := json.Marshal(res)
			if err != nil {
				halt(fmt.Errorf("fleet: marshal result for %s: %w", res.Host, err))
				gauge.Dec()
				continue
			}
			rec := journal.Record{
				State: state, Host: res.Host, Attempt: res.Attempts,
				ElapsedNs: int64(res.Elapsed), RetryNs: int64(res.RetryNs),
				ResultHash: res.Hash, Result: resJSON,
			}
			if res.Quarantined {
				rec.Reason = fmt.Sprintf("circuit breaker open: %d consecutive failed attempts", mgr.BreakerThreshold)
			}
			append_(rec)
		}
		emit(res)
		gauge.Dec()
		if res.Err != "" || res.Quarantined {
			failed++
			if f := mgr.AbortAfterFailureFraction; f > 0 && float64(failed) > f*float64(total) && !sum.Aborted {
				sum.Aborted = true
				sum.AbortReason = fmt.Sprintf("error budget exceeded: %d of %d hosts failed (budget %.0f%%) — aborting sweep",
					failed, total, f*100)
				append_(journal.Record{State: journal.StateAborted, Reason: sum.AbortReason})
				stopOnce.Do(func() { close(stop) })
			}
		}
	}
	if appendErr != nil {
		return nil, appendErr
	}
	if hg != nil {
		sum.Hedged = hg.hedged.Load()
		sum.HedgeWins = hg.wins.Load()
	}
	sum.NotScanned = total - sum.Scanned
	sum.PeakResident = gauge.Peak()
	sum.Seal()
	return sum, nil
}

// ReplayStream folds a sealed (possibly partial) journal's committed
// results without re-running anything. This is how a coordinator
// resuming after a crash accounts for a shard that had already been
// declared wedged: its journal is replay-only — the unfinished hosts
// belong to the survivors that adopted them, so re-scanning them here
// would commit them twice. The manager must enroll the shard's full
// original assignment (the journal header is validated against it);
// the summary comes back Interrupted with NotScanned counting the
// adopted hosts.
func (mgr *Manager) ReplayStream(kind SweepKind, path string, sink func(HostResult)) (*SweepSummary, error) {
	j, rec, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	replay, err := mgr.analyzeJournal(kind, rec.Records)
	if err != nil {
		return nil, err
	}
	mgr.ensureSorted()
	sum := &SweepSummary{Kind: kind, Hosts: len(mgr.hosts), Interrupted: true}
	for _, h := range mgr.hosts {
		hr := replay[h.Name]
		if hr == nil || hr.committed == nil {
			continue
		}
		res := *hr.committed
		hr.committed = nil
		sum.Replayed++
		sum.fold(res)
		if sink != nil {
			sink(res)
		}
	}
	sum.NotScanned = len(mgr.hosts) - sum.Scanned
	sum.Seal()
	return sum, nil
}
