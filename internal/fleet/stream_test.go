package fleet

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ghostbuster/internal/ghostware"
	"ghostbuster/internal/journal"
	"ghostbuster/internal/machine"
)

// TestStreamedSweepMatchesJournaled: the bounded-memory streaming sweep
// must reach exactly the verdicts (and the same host-content
// accumulator) as the classic journaled sweep over an identical fleet.
func TestStreamedSweepMatchesJournaled(t *testing.T) {
	infections := map[int]ghostware.Ghostware{1: ghostware.NewHackerDefender()}
	dir := t.TempDir()

	classic, err := buildFleet(t, 3, infections).SweepJournaled(SweepInside, 2, filepath.Join(dir, "classic.gbj"))
	if err != nil {
		t.Fatal(err)
	}
	wantAcc, err := AccumulateReport(classic)
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]int{}
	sum, err := buildFleet(t, 3, infections).SweepJournaledStream(SweepInside, 2, filepath.Join(dir, "stream.gbj"),
		func(res HostResult) { seen[res.Host]++ })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Hosts != 3 || sum.Scanned != 3 || sum.Infected != 1 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(seen) != 3 {
		t.Fatalf("sink saw %d hosts, want 3", len(seen))
	}
	for h, n := range seen {
		if n != 1 {
			t.Errorf("host %s streamed %d times", h, n)
		}
	}
	if sum.Acc.Sum() != wantAcc.Sum() {
		t.Errorf("streamed accumulator %.12s != classic %.12s", sum.Acc.Sum(), wantAcc.Sum())
	}
	if err := sum.VerifyDigest(); err != nil {
		t.Errorf("summary fails its own seal: %v", err)
	}
}

// TestStreamedResumeReproducesSummaryDigest: kill a streamed sweep
// mid-journal, resume on a rebuilt fleet, and the sealed summary must
// match the uninterrupted run's digest exactly.
func TestStreamedResumeReproducesSummaryDigest(t *testing.T) {
	infections := map[int]ghostware.Ghostware{2: ghostware.NewUrbin()}
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.gbj")

	ref, err := buildFleet(t, 3, infections).SweepJournaledStream(SweepInside, 1, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill after the first host's commit (the scheduler pipelines, so
	// the second host's running record precedes the first's done): one
	// committed, one dangling mid-attempt, one unvisited.
	if _, err := journal.TruncateRecords(path, 1+3+3, false); err != nil {
		t.Fatal(err)
	}
	replayed := 0
	resumed, err := buildFleet(t, 3, infections).ResumeStream(SweepInside, 1, path,
		func(res HostResult) { _ = res })
	if err != nil {
		t.Fatal(err)
	}
	replayed = resumed.Replayed
	if replayed == 0 {
		t.Error("resume replayed nothing — committed work was re-scanned or lost")
	}
	if resumed.Digest != ref.Digest {
		t.Errorf("resumed summary digest %.12s != uninterrupted %.12s", resumed.Digest, ref.Digest)
	}
	if resumed.Acc.Sum() != ref.Acc.Sum() {
		t.Errorf("resumed accumulator diverged")
	}
}

// TestLazyHostsBuildOnceAndRelease: a lazy host's machine is built when
// its scan starts and dropped after its result commits in a streamed
// sweep.
func TestLazyHostsBuildOnceAndRelease(t *testing.T) {
	mgr := NewManager()
	builds := map[string]int{}
	for i := 0; i < 4; i++ {
		name := hostName(i)
		seed := int64(i + 1)
		mgr.AddLazy(name, func() (*machine.Machine, error) {
			builds[name]++
			p := machine.DefaultProfile()
			p.DiskUsedGB = 0.05
			p.Churn = nil
			p.Seed = seed
			p.MFTHeadroom = 64
			p.ClusterHeadroom = 64
			return machine.New(p)
		})
	}
	sum, err := mgr.SweepStreamed(SweepInside, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scanned != 4 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	for i := 0; i < 4; i++ {
		if n := builds[hostName(i)]; n != 1 {
			t.Errorf("host %s built %d times, want 1", hostName(i), n)
		}
	}
	for _, h := range mgr.hosts {
		if h.M != nil || h.cache != nil {
			t.Errorf("host %s still resident after streamed sweep", h.Name)
		}
	}
}

// TestResidentGaugeBoundsStreamedSweep: with w workers, no more than
// w+1 results may ever be resident (in flight plus one crossing the
// aggregation channel), regardless of fleet size.
func TestResidentGaugeBoundsStreamedSweep(t *testing.T) {
	const hosts, workers = 200, 3
	mgr := NewManager()
	for i := 0; i < hosts; i++ {
		mgr.AddLazy(hostName(i%26)+string(rune('0'+i/26%10))+string(rune('0'+i/260)), nil)
	}
	mgr.ScanHost = func(h *Host, kind SweepKind) HostResult {
		time.Sleep(50 * time.Microsecond)
		return HostResult{Host: h.Name, Kind: kind, Elapsed: time.Millisecond}
	}
	gauge := &ResidentGauge{}
	mgr.Resident = gauge
	sum, err := mgr.SweepStreamed(SweepInside, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scanned != hosts {
		t.Fatalf("scanned %d of %d", sum.Scanned, hosts)
	}
	if peak := gauge.Peak(); peak > workers+1 {
		t.Errorf("peak resident results %d, bound is workers+1 = %d", peak, workers+1)
	}
	if gauge.Current() != 0 {
		t.Errorf("gauge not drained: %d still resident", gauge.Current())
	}
	if sum.PeakResident == 0 {
		t.Error("summary did not record the resident peak")
	}
}

// TestSweepSummaryDigestDetectsTamper: the third-layer seal must catch
// any post-hoc edit to the summary's verdict fields.
func TestSweepSummaryDigestDetectsTamper(t *testing.T) {
	sum, err := buildFleet(t, 2, map[int]ghostware.Ghostware{0: ghostware.NewBerbew()}).
		SweepStreamed(SweepInside, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.VerifyDigest(); err != nil {
		t.Fatalf("fresh summary fails verification: %v", err)
	}
	tampered := *sum
	tampered.Infected = 0
	if err := tampered.VerifyDigest(); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("tampered summary verified: %v", err)
	}
}

// TestNextBackoffSharedSaturation: the exported saturation rule is the
// same one the per-host retry loop uses — doubling stops exactly at
// MaxRetryBackoff from any starting point.
func TestNextBackoffSharedSaturation(t *testing.T) {
	b := 2 * time.Second
	for i := 0; i < 100; i++ {
		b = NextBackoff(b)
		if b <= 0 || b > MaxRetryBackoff {
			t.Fatalf("backoff escaped (0, %v] after %d doublings: %v", MaxRetryBackoff, i+1, b)
		}
	}
	if b != MaxRetryBackoff {
		t.Errorf("backoff saturated at %v, want %v", b, MaxRetryBackoff)
	}
	if got := NextBackoff(48 * time.Hour); got != MaxRetryBackoff {
		t.Errorf("NextBackoff(48h) = %v, want cap %v", got, MaxRetryBackoff)
	}
}
