// Package fleet implements the enterprise deployment story (§1:
// "corporate IT organizations can remotely deploy the solution on a
// large number of desktops without requiring user cooperation"; §5: the
// Remote Installation Service network boot that automates outside-the-
// box scans). A Manager owns a set of hosts and runs inside sweeps —
// fast, daily — and outside sweeps — the RIS netboot flow — collecting
// machine-readable results.
//
// Sweeps run through a bounded worker-pool scheduler: a 10k-host sweep
// costs a fixed number of goroutines (the configured parallelism), not
// one per host. Each host carries an incremental-scan cache, so the
// daily re-sweep of an unchanged desktop charges only generation-check
// verify passes instead of a full MFT and hive reparse.
package fleet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/faultinject"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/winpe"
)

// Host is one managed desktop.
type Host struct {
	Name string
	M    *machine.Machine

	// cache memoizes the host's low-level parses across sweeps. It is
	// only touched by the worker scanning this host; the scheduler never
	// hands one host to two workers at once.
	cache *core.ScanCache

	// build constructs the host's machine on demand (AddLazy). A lazy
	// host is materialized when its scan starts and released after its
	// result is committed in a streaming sweep, so a million-host shard
	// never holds more than its in-flight machines resident.
	build func() (*machine.Machine, error)
}

// materialize builds a lazy host's machine if it is not resident.
func (h *Host) materialize() error {
	if h.M != nil {
		return nil
	}
	if h.build == nil {
		return fmt.Errorf("fleet: host %s has no machine and no builder", h.Name)
	}
	m, err := h.build()
	if err != nil {
		return fmt.Errorf("fleet: building host %s: %w", h.Name, err)
	}
	h.M = m
	h.cache = core.NewScanCache(m)
	return nil
}

// release drops a lazy host's machine and cache; the builder can
// re-materialize it if the host is ever re-scanned. Eager hosts (Add)
// are never released — their warm caches are the point.
func (h *Host) release() {
	if h.build != nil {
		h.M, h.cache = nil, nil
	}
}

// HostResult is the scan outcome for one host.
type HostResult struct {
	Host     string         `json:"host"`
	Kind     SweepKind      `json:"kind"` // "inside" or "outside"
	Reports  []*core.Report `json:"reports"`
	Infected bool           `json:"infected"`
	Hidden   int            `json:"hiddenCount"`
	Elapsed  time.Duration  `json:"elapsedNs"` // virtual time of the final attempt
	Err      string         `json:"error,omitempty"`
	// Degraded counts scan units lost to contained faults across the
	// reports (see core.Report.DegradedUnits).
	Degraded int `json:"degraded,omitempty"`
	// Attempts is how many scan attempts this result took; omitted when
	// the first attempt stood.
	Attempts int `json:"attempts,omitempty"`
	// RetryNs is the virtual time consumed by abandoned attempts and
	// backoff waits. It is kept out of Elapsed so a retried host's scan
	// cost is not double-charged in benchmark aggregates; the total
	// virtual cost of the host is Elapsed + RetryNs.
	RetryNs time.Duration `json:"retryNs,omitempty"`
	// Quarantined marks a host whose per-host circuit breaker opened:
	// too many consecutive failed attempts (across resumes), so the
	// sweep stopped burning retry budget on it. See Report.Quarantined.
	Quarantined bool `json:"quarantined,omitempty"`
	// Hash is the content hash of this result (see ResultHash), set by
	// journaled sweeps; it excludes timing and attempt accounting, so a
	// replayed result hashes identically to the run that committed it.
	Hash string `json:"hash,omitempty"`
}

// SweepKind selects which detection flow a sweep runs on every host.
type SweepKind string

// The two deployment flows of the paper.
const (
	SweepInside  SweepKind = "inside"  // daily in-service cross-view scan
	SweepOutside SweepKind = "outside" // RIS netboot clean-OS scan
)

// Manager coordinates scans across hosts.
type Manager struct {
	hosts []*Host
	// sorted tracks whether hosts is in name order; Add/AddLazy mark it
	// dirty and every sweep entry point re-sorts lazily, so enrolling a
	// million hosts is O(n log n) total instead of O(n² log n).
	sorted bool
	// Parallelism bounds the scheduler's worker pool for the parallel
	// sweeps. Zero or negative means runtime.GOMAXPROCS(0).
	Parallelism int
	// HostParallelism is the intra-host fan-out: each inside scan runs
	// its eight scan units across this many lanes (core.Detector
	// Parallelism). Zero or one keeps per-host scans sequential.
	HostParallelism int
	// MaxRetries grants each failed or degraded host scan this many
	// additional attempts within one sweep (transient faults — a torn
	// read, a mid-scan mutation — often clear on re-scan). Zero retries
	// nothing.
	MaxRetries int
	// RetryBackoff is the virtual-time wait before the first retry,
	// doubling on each subsequent one; zero means 2s.
	RetryBackoff time.Duration
	// HostDeadline bounds each inside scan attempt in virtual time
	// (core.Detector Deadline); zero means no deadline.
	HostDeadline time.Duration
	// BreakerThreshold opens a per-host circuit breaker after this many
	// consecutive hard-failed attempts (counted across resumes of a
	// journaled sweep): the host is quarantined instead of retried
	// forever. Zero disables the breaker.
	BreakerThreshold int
	// AbortAfterFailureFraction stops a sweep loudly once more than
	// this fraction of the fleet has failed or been quarantined — a
	// failure rate that high means the run itself is compromised, not
	// the hosts. Zero disables the error budget. Only journaled sweeps
	// (SweepJournaled/Resume) enforce it.
	AbortAfterFailureFraction float64
	// ConfigureDetector, when set, customizes each inside scan's
	// detector after the sweep defaults (Advanced, Contain, Cache,
	// Parallelism, Deadline) are applied — the seam scan-policy
	// profiles reach per-host scans through: a quick profile turns the
	// CID-table traversal off, a forensic one turns containment off and
	// swaps the noise-filter set. Must be safe for concurrent calls;
	// profile method values are.
	ConfigureDetector func(d *core.Detector)
	// OnResult, when set, receives every host result a journaled sweep
	// commits, the moment it commits — fresh scans and hash-verified
	// journal replays alike. Calls are serialized. The resident daemon
	// streams these to its API subscribers while the sweep is still
	// running.
	OnResult func(HostResult)
	// ScanHost, when set, replaces the real per-host scan body. It is
	// the control-plane simulation seam: shard-scaling and million-host
	// benchmarks exercise the scheduler, journal, and digest machinery
	// against deterministic synthetic results without paying a full
	// machine build per host. Production sweeps leave it nil.
	ScanHost func(h *Host, kind SweepKind) HostResult
	// Resident, when set, tracks how many host results are in flight or
	// awaiting aggregation at once — the bounded-memory gauge streaming
	// sweeps pin in tests and benchmarks. A fleetshard coordinator
	// shares one gauge across every shard manager it drives.
	Resident *ResidentGauge
	// Cancel, when non-nil, aborts a streaming sweep from outside once
	// the channel closes: no new hosts are issued, in-flight scans are
	// abandoned (their results discarded, never journaled), and the
	// sweep returns a partial summary marked Interrupted with the
	// journal sealed at the last committed record. This is the seam the
	// fleetshard watchdog cancels a wedged shard through.
	Cancel <-chan struct{}
	// Hedge, when set, enables straggler hedging in streaming sweeps: a
	// host scan that outlives the policy threshold gets a duplicate scan
	// on a clone of the host, and the first result to seal wins. See
	// HedgePolicy for the digest-equality rules.
	Hedge *HedgePolicy
	// BackoffJitterSeed, when nonzero, applies deterministic full jitter
	// to every retry backoff wait: the wait becomes a splitmix64-seeded
	// uniform sample in [1, backoff] (per host and attempt), so a fleet
	// of hosts that all failed together does not retry in lockstep. The
	// doubling-and-saturating schedule still bounds every wait. Zero is
	// the explicit zero-jitter mode: waits are the exact NextBackoff
	// schedule, as before.
	BackoffJitterSeed int64
}

// defaultRetryBackoff is the initial retry wait when RetryBackoff is 0.
const defaultRetryBackoff = 2 * time.Second

// maxRetryBackoff caps the doubling retry backoff. Without the cap a
// large MaxRetries overflows time.Duration (2s doubled 62 times goes
// negative) and Clock.Advance would walk the virtual clock backwards.
const maxRetryBackoff = 5 * time.Minute

// MaxRetryBackoff is the saturation ceiling for every doubling retry
// backoff in the control plane — per-host retries here and shard-level
// retries in the fleetshard coordinator share it through NextBackoff.
const MaxRetryBackoff = maxRetryBackoff

// NextBackoff doubles a retry wait, saturating at MaxRetryBackoff.
// This is the single saturation rule for retry backoff at every level:
// duplicating the doubling logic is how a coordinator ends up with an
// uncapped wait that overflows time.Duration.
func NextBackoff(cur time.Duration) time.Duration {
	if cur >= maxRetryBackoff/2 {
		return maxRetryBackoff
	}
	return cur * 2
}

// nextBackoff is the package-internal alias retained for the retry loop.
func nextBackoff(cur time.Duration) time.Duration { return NextBackoff(cur) }

// JitteredBackoff maps a deterministic backoff wait to its full-jitter
// form: a uniform sample in [1, cur] drawn from the shared splitmix64
// mixer over (seed, tags). The doubling schedule (NextBackoff) still
// governs the *ceiling*, so the cap is preserved — jitter only spreads
// waits below it, which is what breaks retry thundering herds. Seed 0
// is the explicit zero-jitter mode and returns cur unchanged.
func JitteredBackoff(cur time.Duration, seed int64, tags ...uint64) time.Duration {
	if cur > maxRetryBackoff {
		cur = maxRetryBackoff
	}
	if seed == 0 || cur <= 1 {
		return cur
	}
	return 1 + time.Duration(faultinject.Mix(seed, tags...)%uint64(cur))
}

// backoffTag folds a host name into a mixer discriminator so two hosts
// retrying after the same failure wave jitter independently.
func backoffTag(name string) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// NewManager returns an empty fleet.
func NewManager() *Manager { return &Manager{} }

// Add enrolls a host.
func (mgr *Manager) Add(name string, m *machine.Machine) {
	mgr.hosts = append(mgr.hosts, &Host{Name: name, M: m, cache: core.NewScanCache(m)})
	mgr.sorted = false
}

// AddWithCache enrolls a host with a caller-owned scan cache. The cache
// must have been built on m (core.NewScanCache(m)). This is how the
// resident daemon keeps incremental scans warm across sweeps: it builds
// a short-lived Manager per sweep over just the due hosts, but owns one
// long-lived cache per registration, so a quiet host's re-scan charges
// only the generation-check verify passes no matter how many managers
// have come and gone. A nil cache behaves like Add.
func (mgr *Manager) AddWithCache(name string, m *machine.Machine, cache *core.ScanCache) {
	if cache == nil {
		cache = core.NewScanCache(m)
	}
	mgr.hosts = append(mgr.hosts, &Host{Name: name, M: m, cache: cache})
	mgr.sorted = false
}

// AddLazy enrolls a host whose machine is built on demand when its scan
// starts. Streaming sweeps release the machine again after the result
// is committed, so enrolling a huge shard costs one small descriptor
// per host, not one simulated machine per host.
func (mgr *Manager) AddLazy(name string, build func() (*machine.Machine, error)) {
	mgr.hosts = append(mgr.hosts, &Host{Name: name, build: build})
	mgr.sorted = false
}

// ensureSorted restores the name-order invariant every sweep relies on.
func (mgr *Manager) ensureSorted() {
	if mgr.sorted {
		return
	}
	sort.Slice(mgr.hosts, func(i, j int) bool { return mgr.hosts[i].Name < mgr.hosts[j].Name })
	mgr.sorted = true
}

// Hosts returns the enrolled host names.
func (mgr *Manager) Hosts() []string {
	mgr.ensureSorted()
	out := make([]string, len(mgr.hosts))
	for i, h := range mgr.hosts {
		out[i] = h.Name
	}
	return out
}

// --- per-host scan bodies -------------------------------------------------

// insideScan runs the inside-the-box detection (all four paper resource
// types, advanced process mode) on one host, reusing the host's scan
// cache for the truth-side parses. Scan-unit failures are contained:
// they degrade the affected report instead of failing the host. If the
// scan panics outside a contained unit, the reports assembled so far are
// still attached to the result, so a degraded host stays reportable.
func (h *Host) insideScan(parallelism int, deadline time.Duration, configure func(*core.Detector)) (res HostResult) {
	res = HostResult{Host: h.Name, Kind: SweepInside}
	start := h.M.Clock.Now()
	var partial []*core.Report
	defer func() {
		if p := recover(); p != nil {
			res = HostResult{Host: h.Name, Kind: SweepInside, Err: fmt.Sprintf("scan panic: %v", p)}
			h.finish(&res, partial, nil, start)
		}
	}()
	d := core.NewDetector(h.M)
	d.Advanced = true
	d.Cache = h.cache
	d.Parallelism = parallelism
	d.Contain = true
	d.Deadline = deadline
	if configure != nil {
		configure(d)
	}
	d.OnReport = func(r *core.Report) { partial = append(partial, r) }
	reports, err := d.ScanAll()
	if reports == nil {
		reports = partial
	}
	h.finish(&res, reports, err, start)
	return res
}

// outsideScan runs the RIS-automated outside-the-box file check on one
// host: the machine reboots into the network boot image, is scanned
// clean, and reboots back into service.
func (h *Host) outsideScan() HostResult {
	res := HostResult{Host: h.Name, Kind: SweepOutside}
	start := h.M.Clock.Now()
	report, err := winpe.OutsideFileCheck(h.M, core.DiffOptions{})
	var reports []*core.Report
	if report != nil {
		reports = []*core.Report{report}
	}
	h.finish(&res, reports, err, start)
	return res
}

// finish fills the shared result fields from a scan outcome. Reports
// are attached even alongside an error, so partial results from a
// degraded host are never dropped.
func (h *Host) finish(res *HostResult, reports []*core.Report, err error, start time.Duration) {
	res.Reports = reports
	for _, r := range reports {
		res.Hidden += len(r.Hidden)
		res.Degraded += len(r.DegradedUnits)
	}
	res.Infected = res.Hidden > 0
	if err != nil {
		res.Err = err.Error()
	}
	res.Elapsed = h.M.Clock.Now() - start
}

func (h *Host) scanOnce(kind SweepKind, hostParallelism int, deadline time.Duration, configure func(*core.Detector)) HostResult {
	if kind == SweepOutside {
		return h.outsideScan()
	}
	return h.insideScan(hostParallelism, deadline, configure)
}

// scanHost runs one scan attempt on a host: the ScanHost simulation
// seam if set, otherwise the real scan on a (possibly just
// materialized) machine.
func (mgr *Manager) scanHost(h *Host, kind SweepKind) HostResult {
	if mgr.ScanHost != nil {
		return mgr.ScanHost(h, kind)
	}
	if err := h.materialize(); err != nil {
		return HostResult{Host: h.Name, Kind: kind, Err: err.Error()}
	}
	configure := mgr.ConfigureDetector
	if mgr.Cancel != nil {
		// Thread the sweep's cancel seam into the detector: a cancelled
		// in-flight scan abandons its remaining units at the next unit
		// boundary instead of running the sweep to completion.
		cancel, inner := mgr.Cancel, configure
		configure = func(d *core.Detector) {
			d.Cancel = cancel
			if inner != nil {
				inner(d)
			}
		}
	}
	return h.scanOnce(kind, mgr.HostParallelism, mgr.HostDeadline, configure)
}

// cancelFired reports whether the sweep's Cancel channel has closed.
func (mgr *Manager) cancelFired() bool {
	if mgr.Cancel == nil {
		return false
	}
	select {
	case <-mgr.Cancel:
		return true
	default:
		return false
	}
}

// resultCancelled reports whether a host result is a cancellation
// casualty: a scan that abandoned units because Manager.Cancel closed
// mid-flight. The detector's ErrCancelled text survives both the
// fail-fast error and a contained unit's DegradedUnit fault, so either
// surface marks the result partial by construction — the collector
// discards it rather than committing a weaker verdict than the host
// would earn from a full scan.
func resultCancelled(res *HostResult) bool {
	marker := core.ErrCancelled.Error()
	if strings.Contains(res.Err, marker) {
		return true
	}
	for _, r := range res.Reports {
		for _, du := range r.DegradedUnits {
			if strings.Contains(du.Fault, marker) {
				return true
			}
		}
	}
	return false
}

// runHost scans one host with bounded retry: a failed or degraded
// attempt is retried after a doubling virtual-time backoff, up to
// MaxRetries extra attempts. The returned result is the final attempt's;
// vtime burned by abandoned attempts and backoff waits accumulates in
// RetryNs so Elapsed never double-charges a host.
func (mgr *Manager) runHost(h *Host, kind SweepKind) HostResult {
	return mgr.runHostFrom(h, kind, 0, 0, nil)
}

// runHostFrom is runHost continuing from journaled history: attempt
// numbering starts after priorAttempts and the circuit breaker counts
// priorFailed dangling attempts from before the crash. onAttempt, when
// set, commits each attempt start to the journal before it runs.
func (mgr *Manager) runHostFrom(h *Host, kind SweepKind, priorAttempts, priorFailed int, onAttempt func(attempt int)) HostResult {
	backoff := mgr.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	if backoff > maxRetryBackoff {
		backoff = maxRetryBackoff
	}
	var retryNs time.Duration
	consecFailed := priorFailed
	for local := 1; ; local++ {
		attempt := priorAttempts + local
		if onAttempt != nil {
			onAttempt(attempt)
		}
		res := mgr.scanHost(h, kind)
		if resultCancelled(&res) {
			// The sweep is being torn down; retrying would spin against
			// the closed channel. Return the casualty as-is — the
			// collector discards it and the host stays unfinished.
			return res
		}
		if res.Err != "" {
			consecFailed++
		} else {
			consecFailed = 0
		}
		done := (res.Err == "" && res.Degraded == 0) || local > mgr.MaxRetries
		if mgr.BreakerThreshold > 0 && consecFailed >= mgr.BreakerThreshold {
			res.Quarantined = true
			done = true
		}
		if done {
			if attempt > 1 {
				res.Attempts = attempt
				res.RetryNs = retryNs
			}
			return res
		}
		wait := backoff
		if mgr.BackoffJitterSeed != 0 {
			wait = JitteredBackoff(backoff, mgr.BackoffJitterSeed, backoffTag(h.Name), uint64(attempt))
		}
		retryNs += res.Elapsed + wait
		if h.M != nil { // synthetic hosts have no machine clock to wait on
			h.M.Clock.Advance(wait)
		}
		backoff = nextBackoff(backoff)
	}
}

// --- bounded scheduler ----------------------------------------------------

type indexedResult struct {
	i int
	r HostResult
}

// schedule fans scan out over the fleet with at most `workers`
// goroutines and streams completions. This is the single scan loop every
// sweep flavor goes through: the sequential sweeps run it with one
// worker, the parallel sweeps with the configured bound. A panicking
// host scan is captured as that host's error instead of tearing down the
// whole sweep.
func (mgr *Manager) schedule(workers int, scan func(*Host) HostResult) <-chan indexedResult {
	mgr.ensureSorted()
	indices := make([]int, len(mgr.hosts))
	for i := range indices {
		indices[i] = i
	}
	return mgr.scheduleHosts(workers, indices, nil, scan)
}

// scheduleHosts is the scheduler core: it fans scan over the given
// host indices only, and stops issuing new hosts once stop is closed
// (in-flight scans still complete and report). Journaled sweeps use
// the subset form to skip hosts already committed in the journal, and
// stop to enforce the fleet error budget.
func (mgr *Manager) scheduleHosts(workers int, indices []int, stop <-chan struct{}, scan func(*Host) HostResult) <-chan indexedResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(indices) {
		workers = len(indices)
	}
	jobs := make(chan int)
	out := make(chan indexedResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out <- indexedResult{i: i, r: capturedScan(mgr.hosts[i], scan)}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, i := range indices {
			select {
			case jobs <- i:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// capturedScan runs one host scan, converting a panic into a per-host
// error result.
func capturedScan(h *Host, scan func(*Host) HostResult) (res HostResult) {
	defer func() {
		if p := recover(); p != nil {
			res = HostResult{Host: h.Name, Err: fmt.Sprintf("scan panic: %v", p)}
		}
	}()
	return scan(h)
}

// Sweep runs the given sweep kind over every host with at most `workers`
// concurrent host scans (0 means runtime.GOMAXPROCS(0)) and returns the
// results in host order.
func (mgr *Manager) Sweep(kind SweepKind, workers int) []HostResult {
	results := make([]HostResult, len(mgr.hosts))
	for ir := range mgr.schedule(workers, func(h *Host) HostResult { return mgr.runHost(h, kind) }) {
		results[ir.i] = ir.r
	}
	return results
}

// SweepStream is Sweep without the ordering barrier: results arrive on
// the returned channel as hosts complete, so a management console can
// act on early completions while a large fleet is still scanning. The
// channel closes after the last host.
func (mgr *Manager) SweepStream(kind SweepKind, workers int) <-chan HostResult {
	out := make(chan HostResult)
	go func() {
		for ir := range mgr.schedule(workers, func(h *Host) HostResult { return mgr.runHost(h, kind) }) {
			out <- ir.r
		}
		close(out)
	}()
	return out
}

// InsideSweep runs the inside-the-box detection on every host, one at a
// time. Hosts keep running; this is the "scan their machines daily"
// mode.
func (mgr *Manager) InsideSweep() []HostResult { return mgr.Sweep(SweepInside, 1) }

// ParallelInsideSweep runs the inside sweep through the bounded
// scheduler at the manager's configured parallelism. Each simulated
// machine is single-threaded, but distinct machines are independent, so
// the management console fans out across the fleet the way a real
// deployment does — at fixed goroutine cost. Results come back in host
// order.
func (mgr *Manager) ParallelInsideSweep() []HostResult {
	return mgr.Sweep(SweepInside, mgr.Parallelism)
}

// OutsideSweep runs the RIS-automated outside-the-box file check on
// every host, one at a time.
func (mgr *Manager) OutsideSweep() []HostResult { return mgr.Sweep(SweepOutside, 1) }

// ParallelOutsideSweep runs the outside sweep through the bounded
// scheduler at the manager's configured parallelism.
func (mgr *Manager) ParallelOutsideSweep() []HostResult {
	return mgr.Sweep(SweepOutside, mgr.Parallelism)
}

// Summary aggregates sweep results.
type Summary struct {
	Hosts    int      `json:"hosts"`
	Infected []string `json:"infected"`
	Errors   []string `json:"errors,omitempty"`
}

// Summarize builds the fleet-level verdict.
func Summarize(results []HostResult) Summary {
	s := Summary{Hosts: len(results)}
	for _, r := range results {
		if r.Err != "" {
			s.Errors = append(s.Errors, fmt.Sprintf("%s: %s", r.Host, r.Err))
			continue
		}
		if r.Infected {
			s.Infected = append(s.Infected, r.Host)
		}
	}
	return s
}

// MarshalResults renders results as JSON for the management console.
func MarshalResults(results []HostResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
