// Package fleet implements the enterprise deployment story (§1:
// "corporate IT organizations can remotely deploy the solution on a
// large number of desktops without requiring user cooperation"; §5: the
// Remote Installation Service network boot that automates outside-the-
// box scans). A Manager owns a set of hosts and runs inside sweeps —
// fast, daily — and outside sweeps — the RIS netboot flow — collecting
// machine-readable results.
package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"ghostbuster/internal/core"
	"ghostbuster/internal/machine"
	"ghostbuster/internal/winpe"
)

// Host is one managed desktop.
type Host struct {
	Name string
	M    *machine.Machine
}

// HostResult is the scan outcome for one host.
type HostResult struct {
	Host     string         `json:"host"`
	Kind     string         `json:"kind"` // "inside" or "outside"
	Reports  []*core.Report `json:"reports"`
	Infected bool           `json:"infected"`
	Hidden   int            `json:"hiddenCount"`
	Elapsed  time.Duration  `json:"elapsedNs"` // virtual time on the host
	Err      string         `json:"error,omitempty"`
}

// Manager coordinates scans across hosts.
type Manager struct {
	hosts []*Host
}

// NewManager returns an empty fleet.
func NewManager() *Manager { return &Manager{} }

// Add enrolls a host.
func (mgr *Manager) Add(name string, m *machine.Machine) {
	mgr.hosts = append(mgr.hosts, &Host{Name: name, M: m})
	sort.Slice(mgr.hosts, func(i, j int) bool { return mgr.hosts[i].Name < mgr.hosts[j].Name })
}

// Hosts returns the enrolled host names.
func (mgr *Manager) Hosts() []string {
	out := make([]string, len(mgr.hosts))
	for i, h := range mgr.hosts {
		out[i] = h.Name
	}
	return out
}

// InsideSweep runs the inside-the-box detection (all four paper resource
// types, advanced process mode) on every host. Hosts keep running; this
// is the "scan their machines daily" mode.
func (mgr *Manager) InsideSweep() []HostResult {
	results := make([]HostResult, 0, len(mgr.hosts))
	for _, h := range mgr.hosts {
		res := HostResult{Host: h.Name, Kind: "inside"}
		start := h.M.Clock.Now()
		d := core.NewDetector(h.M)
		d.Advanced = true
		reports, err := d.ScanAll()
		if err != nil {
			res.Err = err.Error()
		} else {
			res.Reports = reports
			for _, r := range reports {
				res.Hidden += len(r.Hidden)
			}
			res.Infected = res.Hidden > 0
		}
		res.Elapsed = h.M.Clock.Now() - start
		results = append(results, res)
	}
	return results
}

// ParallelInsideSweep runs the inside sweep with one worker per host.
// Each simulated machine is single-threaded, but distinct machines are
// independent, so the management console fans out across the fleet the
// way a real deployment does. Results come back in host order.
func (mgr *Manager) ParallelInsideSweep() []HostResult {
	results := make([]HostResult, len(mgr.hosts))
	var wg sync.WaitGroup
	for i, h := range mgr.hosts {
		i, h := i, h
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := HostResult{Host: h.Name, Kind: "inside"}
			start := h.M.Clock.Now()
			d := core.NewDetector(h.M)
			d.Advanced = true
			reports, err := d.ScanAll()
			if err != nil {
				res.Err = err.Error()
			} else {
				res.Reports = reports
				for _, r := range reports {
					res.Hidden += len(r.Hidden)
				}
				res.Infected = res.Hidden > 0
			}
			res.Elapsed = h.M.Clock.Now() - start
			results[i] = res
		}()
	}
	wg.Wait()
	return results
}

// OutsideSweep runs the RIS-automated outside-the-box file check on
// every host: each machine reboots into the network boot image, is
// scanned clean, and reboots back into service.
func (mgr *Manager) OutsideSweep() []HostResult {
	results := make([]HostResult, 0, len(mgr.hosts))
	for _, h := range mgr.hosts {
		res := HostResult{Host: h.Name, Kind: "outside"}
		start := h.M.Clock.Now()
		report, err := winpe.OutsideFileCheck(h.M, core.DiffOptions{})
		if err != nil {
			res.Err = err.Error()
		} else {
			res.Reports = []*core.Report{report}
			res.Hidden = len(report.Hidden)
			res.Infected = report.Infected()
		}
		res.Elapsed = h.M.Clock.Now() - start
		results = append(results, res)
	}
	return results
}

// Summary aggregates sweep results.
type Summary struct {
	Hosts    int      `json:"hosts"`
	Infected []string `json:"infected"`
	Errors   []string `json:"errors,omitempty"`
}

// Summarize builds the fleet-level verdict.
func Summarize(results []HostResult) Summary {
	s := Summary{Hosts: len(results)}
	for _, r := range results {
		if r.Err != "" {
			s.Errors = append(s.Errors, fmt.Sprintf("%s: %s", r.Host, r.Err))
			continue
		}
		if r.Infected {
			s.Infected = append(s.Infected, r.Host)
		}
	}
	return s
}

// MarshalResults renders results as JSON for the management console.
func MarshalResults(results []HostResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}
