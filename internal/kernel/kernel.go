package kernel

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"ghostbuster/internal/kmem"
)

// SystemPid is the pid of the always-present System process, as on NT.
const SystemPid = 4

const cidCapacity = 4096

// ErrNoSuchProcess reports a pid that is not in the CID table.
var ErrNoSuchProcess = errors.New("kernel: no such process")

// ErrNoSuchModule reports a module lookup miss.
var ErrNoSuchModule = errors.New("kernel: no such module")

// Kernel owns the arena and the global structure addresses, and provides
// the mutation operations an OS performs: process/thread creation and
// exit, module load, driver load. Truth about what exists lives in the
// arena; the maps here are only an id convenience index (the CID table
// in arena memory is the authoritative id mapping).
//
// Mutators serialize on an internal lock so id allocation and compound
// structure updates stay consistent; readers go straight to the arena,
// whose per-access locking makes concurrent traversal memory-safe.
type Kernel struct {
	Mem     *kmem.Arena
	mu      sync.Mutex // guards mutators and the id allocators below
	layout  Layout
	nextPid uint64
	nextTid uint64
	nextVA  uint64 // fake image base allocator for modules

	faultMu sync.RWMutex
	fault   ScanFault
}

// ScanFault is a fault-injection hook over scanner-facing kernel-memory
// access: cross-view scan reads (ScanMem) and crash-dump images
// (DumpImage). The OS's own structure walks use the raw arena and are
// never faulted — the kernel does not fail against itself.
type ScanFault interface {
	// WrapReader interposes on scan reads of kernel memory.
	WrapReader(r kmem.Reader) kmem.Reader
	// CorruptDump may return a damaged replacement for a dump image
	// copy, or nil to leave it clean. It must not modify img in place
	// beyond returning it.
	CorruptDump(img []byte) []byte
}

// SetScanFault installs (or, with nil, removes) the scan fault hook.
func (k *Kernel) SetScanFault(f ScanFault) {
	k.faultMu.Lock()
	defer k.faultMu.Unlock()
	k.fault = f
}

func (k *Kernel) scanFault() ScanFault {
	k.faultMu.RLock()
	defer k.faultMu.RUnlock()
	return k.fault
}

// ScanMem returns the kernel-memory reader cross-view scanners must
// use: the raw arena, wrapped by the scan fault hook when one is armed.
func (k *Kernel) ScanMem() kmem.Reader {
	if f := k.scanFault(); f != nil {
		return f.WrapReader(k.Mem)
	}
	return k.Mem
}

// DumpImage returns a crash-dump memory image: a snapshot of the arena,
// passed through the scan fault hook when one is armed.
func (k *Kernel) DumpImage() []byte {
	img := k.Mem.Snapshot()
	if f := k.scanFault(); f != nil {
		if c := f.CorruptDump(img); c != nil {
			img = c
		}
	}
	return img
}

// New boots a kernel: allocates the global lists and the System process.
func New() (*Kernel, error) {
	a := kmem.New()
	k := &Kernel{Mem: a, nextPid: SystemPid, nextTid: 100, nextVA: 0x10000000}
	k.layout.ActiveProcessHead = a.Alloc(kmem.ListEntrySize)
	k.layout.LoadedModuleHead = a.Alloc(kmem.ListEntrySize)
	if err := a.ListInit(k.layout.ActiveProcessHead); err != nil {
		return nil, err
	}
	if err := a.ListInit(k.layout.LoadedModuleHead); err != nil {
		return nil, err
	}
	k.layout.CidTable = a.Alloc(cidHdrSize + cidCapacity*cidSlotSize)
	if err := a.WriteU64(k.layout.CidTable+cidHdrCapacity, cidCapacity); err != nil {
		return nil, err
	}
	if _, err := k.createProcess("System", "", 0); err != nil {
		return nil, err
	}
	return k, nil
}

// Layout returns the global structure addresses (stored in crash dumps).
func (k *Kernel) Layout() Layout { return k.layout }

func (k *Kernel) writeStringCell(s string) (uint64, error) {
	addr := k.Mem.Alloc(4 + len(s))
	if err := k.Mem.WriteU32(addr, uint32(len(s))); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteBytes(addr+4, []byte(s)); err != nil {
		return 0, err
	}
	return addr, nil
}

func (k *Kernel) cidInsert(id, obj, typ uint64) error {
	for i := uint64(0); i < cidCapacity; i++ {
		slot := k.layout.CidTable + cidHdrSize + i*cidSlotSize
		t, err := k.Mem.ReadU64(slot + cidSlotType)
		if err != nil {
			return err
		}
		if t == CidFree {
			if err := k.Mem.WriteU64(slot+cidSlotID, id); err != nil {
				return err
			}
			if err := k.Mem.WriteU64(slot+cidSlotObj, obj); err != nil {
				return err
			}
			return k.Mem.WriteU64(slot+cidSlotType, typ)
		}
	}
	return fmt.Errorf("kernel: CID table full")
}

func (k *Kernel) cidRemove(id, typ uint64) error {
	for i := uint64(0); i < cidCapacity; i++ {
		slot := k.layout.CidTable + cidHdrSize + i*cidSlotSize
		t, err := k.Mem.ReadU64(slot + cidSlotType)
		if err != nil {
			return err
		}
		if t != typ {
			continue
		}
		sid, err := k.Mem.ReadU64(slot + cidSlotID)
		if err != nil {
			return err
		}
		if sid == id {
			return k.Mem.WriteU64(slot+cidSlotType, CidFree)
		}
	}
	return nil
}

// EprocessByPid resolves a pid to its EPROCESS address via the CID
// table, so it finds processes even after DKOM unlinked them from the
// Active Process List.
func (k *Kernel) EprocessByPid(pid uint64) (uint64, error) {
	for i := uint64(0); i < cidCapacity; i++ {
		slot := k.layout.CidTable + cidHdrSize + i*cidSlotSize
		t, err := k.Mem.ReadU64(slot + cidSlotType)
		if err != nil {
			return 0, err
		}
		if t != CidProcess {
			continue
		}
		id, err := k.Mem.ReadU64(slot + cidSlotID)
		if err != nil {
			return 0, err
		}
		if id == pid {
			return k.Mem.ReadU64(slot + cidSlotObj)
		}
	}
	return 0, fmt.Errorf("%w: pid %d", ErrNoSuchProcess, pid)
}

// CreateProcess allocates and links a new process with one initial
// thread and the standard module list (its own image, ntdll, kernel32).
// It returns the new pid.
func (k *Kernel) CreateProcess(name, imagePath string, parent uint64) (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.createProcess(name, imagePath, parent)
}

func (k *Kernel) createProcess(name, imagePath string, parent uint64) (uint64, error) {
	pid := k.nextPid
	k.nextPid += 4 // NT pids are multiples of 4
	eproc := k.Mem.Alloc(EprocSize)
	if err := k.Mem.WriteU64(eproc+EprocPid, pid); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU32(eproc+EprocPoolTag, PoolTagProc); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteCString(eproc+EprocImageName, name, eprocNameCap); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(eproc+EprocParentPid, parent); err != nil {
		return 0, err
	}
	pathCell, err := k.writeStringCell(imagePath)
	if err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(eproc+EprocImagePath, pathCell); err != nil {
		return 0, err
	}
	if err := k.Mem.ListInit(eproc + EprocLdrHead); err != nil {
		return 0, err
	}
	if err := k.Mem.ListInit(eproc + EprocThreadHead); err != nil {
		return 0, err
	}
	if err := k.Mem.ListInit(eproc + EprocVadHead); err != nil {
		return 0, err
	}
	if err := k.Mem.ListInsertTail(k.layout.ActiveProcessHead, eproc+EprocActiveLinks); err != nil {
		return 0, err
	}
	if err := k.cidInsert(pid, eproc, CidProcess); err != nil {
		return 0, err
	}
	if _, err := k.createThread(pid); err != nil {
		return 0, err
	}
	if imagePath != "" {
		if _, err := k.loadModule(pid, imagePath); err != nil {
			return 0, err
		}
		for _, dll := range []string{`C:\WINDOWS\system32\ntdll.dll`, `C:\WINDOWS\system32\kernel32.dll`} {
			if _, err := k.loadModule(pid, dll); err != nil {
				return 0, err
			}
		}
	}
	return pid, nil
}

// CreateThread adds a schedulable thread to an existing process.
func (k *Kernel) CreateThread(pid uint64) (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.createThread(pid)
}

func (k *Kernel) createThread(pid uint64) (uint64, error) {
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return 0, err
	}
	tid := k.nextTid
	k.nextTid += 4
	eth := k.Mem.Alloc(EthreadSize)
	if err := k.Mem.WriteU64(eth+EthreadTid, tid); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(eth+EthreadOwner, eproc); err != nil {
		return 0, err
	}
	if err := k.Mem.ListInsertTail(eproc+EprocThreadHead, eth+EthreadListEntry); err != nil {
		return 0, err
	}
	if err := k.cidInsert(tid, eth, CidThread); err != nil {
		return 0, err
	}
	return tid, nil
}

// ExitProcess terminates a process: its threads leave the CID table and
// the thread list, and the EPROCESS is unlinked and marked exited. The
// object memory itself remains in the arena (kernel pool residue).
func (k *Kernel) ExitProcess(pid uint64) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if pid == SystemPid {
		return fmt.Errorf("kernel: refusing to exit the System process")
	}
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return err
	}
	threads, err := k.Mem.ListWalk(eproc+EprocThreadHead, maxWalk)
	if err != nil {
		return err
	}
	for _, t := range threads {
		eth := t - EthreadListEntry
		tid, err := k.Mem.ReadU64(eth + EthreadTid)
		if err != nil {
			return err
		}
		if err := k.cidRemove(tid, CidThread); err != nil {
			return err
		}
		if err := k.Mem.ListRemove(t); err != nil {
			return err
		}
	}
	// Unlink from the active list. The entry may already be unlinked by
	// DKOM; ListRemove on a self-linked entry is a harmless no-op.
	if err := k.Mem.ListRemove(eproc + EprocActiveLinks); err != nil {
		return err
	}
	if err := k.cidRemove(pid, CidProcess); err != nil {
		return err
	}
	// Clear the pool tag so memory carving never resurrects freed
	// residue, then mark the object exited.
	if err := k.Mem.WriteU32(eproc+EprocPoolTag, 0); err != nil {
		return err
	}
	return k.Mem.WriteU64(eproc+EprocFlags, flagsExited)
}

// ConcealProcess is the memory-only hiding primitive: it unlinks a live
// process from the Active Process List AND retires its CID entries
// (process and threads), so neither the normal nor the advanced
// process walk can see it. The threads stay on the process's own thread
// list and the object keeps its pool tag and live flags — the process
// is still running, and only a pool-tag carve of kernel memory (or a
// crash dump) finds it. Removing the thread CID entries together with
// the process entry keeps the table self-consistent: WalkCidProcesses
// treats a thread whose owner is absent as corruption and fails loudly.
func (k *Kernel) ConcealProcess(pid uint64) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if pid == SystemPid {
		return fmt.Errorf("kernel: refusing to conceal the System process")
	}
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return err
	}
	threads, err := k.Mem.ListWalk(eproc+EprocThreadHead, maxWalk)
	if err != nil {
		return err
	}
	for _, t := range threads {
		eth := t - EthreadListEntry
		tid, err := k.Mem.ReadU64(eth + EthreadTid)
		if err != nil {
			return err
		}
		if err := k.cidRemove(tid, CidThread); err != nil {
			return err
		}
	}
	if err := k.Mem.ListRemove(eproc + EprocActiveLinks); err != nil {
		return err
	}
	return k.cidRemove(pid, CidProcess)
}

// LoadModule maps a module into a process: it appends an entry to the
// PEB module list (what the APIs read) and a matching entry to the VAD
// image list (the kernel's truth). Each entry owns its own name cell, so
// blanking one does not affect the other. Returns the LDR entry address.
func (k *Kernel) LoadModule(pid uint64, path string) (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.loadModule(pid, path)
}

func (k *Kernel) loadModule(pid uint64, path string) (uint64, error) {
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return 0, err
	}
	base := k.nextVA
	k.nextVA += 0x100000
	ldr, err := k.newModEntry(path, base, 0x10000)
	if err != nil {
		return 0, err
	}
	if err := k.Mem.ListInsertTail(eproc+EprocLdrHead, ldr+LdrLinks); err != nil {
		return 0, err
	}
	vad, err := k.newModEntry(path, base, 0x10000)
	if err != nil {
		return 0, err
	}
	if err := k.Mem.ListInsertTail(eproc+EprocVadHead, vad+LdrLinks); err != nil {
		return 0, err
	}
	return ldr, nil
}

// newModEntry allocates one LDR-style entry with its own name cell.
func (k *Kernel) newModEntry(path string, base, size uint64) (uint64, error) {
	entry := k.Mem.Alloc(LdrEntrySz)
	if err := k.Mem.WriteU64(entry+LdrBase, base); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(entry+LdrSize, size); err != nil {
		return 0, err
	}
	nameCell, err := k.writeStringCell(path)
	if err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(entry+LdrNamePtr, nameCell); err != nil {
		return 0, err
	}
	return entry, nil
}

// ModulesTruth returns the VAD image list of a process — the low-level
// module view.
func (k *Kernel) ModulesTruth(pid uint64) ([]ModView, error) {
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return nil, err
	}
	return ProcessVadImages(k.ScanMem(), eproc)
}

// LoadDriver appends a driver to the system module list.
func (k *Kernel) LoadDriver(path string) (uint64, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	entry := k.Mem.Alloc(LdrEntrySz)
	base := k.nextVA
	k.nextVA += 0x100000
	if err := k.Mem.WriteU64(entry+LdrBase, base); err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(entry+LdrSize, 0x8000); err != nil {
		return 0, err
	}
	nameCell, err := k.writeStringCell(path)
	if err != nil {
		return 0, err
	}
	if err := k.Mem.WriteU64(entry+LdrNamePtr, nameCell); err != nil {
		return 0, err
	}
	if err := k.Mem.ListInsertTail(k.layout.LoadedModuleHead, entry+LdrLinks); err != nil {
		return 0, err
	}
	return entry, nil
}

// UnloadDriver removes the driver whose path ends with name.
func (k *Kernel) UnloadDriver(name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	mods, err := WalkDrivers(k.Mem, k.layout)
	if err != nil {
		return err
	}
	for _, m := range mods {
		if strings.EqualFold(baseName(m.Path), name) || strings.EqualFold(m.Path, name) {
			return k.Mem.ListRemove(m.Addr + LdrLinks)
		}
	}
	return fmt.Errorf("%w: driver %s", ErrNoSuchModule, name)
}

// FindModuleEntry locates a module LDR entry of a process by file name.
func (k *Kernel) FindModuleEntry(pid uint64, name string) (uint64, error) {
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return 0, err
	}
	mods, err := ProcessModules(k.Mem, eproc)
	if err != nil {
		return 0, err
	}
	for _, m := range mods {
		if strings.EqualFold(baseName(m.Path), name) {
			return m.Addr, nil
		}
	}
	return 0, fmt.Errorf("%w: %s in pid %d", ErrNoSuchModule, name, pid)
}

// BlankModuleName zeroes the name cell of a module entry — the Vanquish
// technique for hiding vanquish.dll from PEB-based module enumeration.
func (k *Kernel) BlankModuleName(entryAddr uint64) error {
	namePtr, err := k.Mem.ReadU64(entryAddr + LdrNamePtr)
	if err != nil {
		return err
	}
	if namePtr == 0 {
		return nil
	}
	return k.Mem.WriteU32(namePtr, 0)
}

// Processes returns the Active Process List view of the live kernel
// (what NtQuerySystemInformation's kernel handler reads).
func (k *Kernel) Processes() ([]ProcView, error) {
	return WalkActiveProcessList(k.Mem, k.layout)
}

// ProcessesAdvanced returns the CID-table view (advanced mode).
func (k *Kernel) ProcessesAdvanced() ([]ProcView, error) {
	return WalkCidProcesses(k.Mem, k.layout)
}

// Modules returns the module list of a process.
func (k *Kernel) Modules(pid uint64) ([]ModView, error) {
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		return nil, err
	}
	return ProcessModules(k.Mem, eproc)
}

// Drivers returns the system driver list.
func (k *Kernel) Drivers() ([]ModView, error) {
	return WalkDrivers(k.Mem, k.layout)
}

// PidByName returns the pid of the first live process with the given
// image name (via the CID table, so DKOM-hidden processes resolve too).
func (k *Kernel) PidByName(name string) (uint64, error) {
	procs, err := k.ProcessesAdvanced()
	if err != nil {
		return 0, err
	}
	for _, p := range procs {
		if strings.EqualFold(p.Name, name) && !p.Exited {
			return p.Pid, nil
		}
	}
	return 0, fmt.Errorf("%w: %s", ErrNoSuchProcess, name)
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '\\'); i >= 0 {
		return path[i+1:]
	}
	return path
}
