package kernel

import (
	"errors"
	"testing"
	"testing/quick"

	"ghostbuster/internal/kmem"
)

func mustKernel(t *testing.T) *Kernel {
	t.Helper()
	k, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return k
}

func names(ps []ProcView) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func TestBootHasSystemProcess(t *testing.T) {
	k := mustKernel(t)
	procs, err := k.Processes()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 1 || procs[0].Name != "System" || procs[0].Pid != SystemPid {
		t.Errorf("boot processes = %+v", procs)
	}
	if procs[0].Threads != 1 {
		t.Errorf("System threads = %d", procs[0].Threads)
	}
}

func TestCreateProcessVisibleInBothViews(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("explorer.exe", `C:\WINDOWS\explorer.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	if pid%4 != 0 {
		t.Errorf("pid %d not a multiple of 4", pid)
	}
	normal, err := k.Processes()
	if err != nil {
		t.Fatal(err)
	}
	advanced, err := k.ProcessesAdvanced()
	if err != nil {
		t.Fatal(err)
	}
	if len(normal) != 2 || len(advanced) != 2 {
		t.Fatalf("views: normal %v advanced %v", names(normal), names(advanced))
	}
	var exp *ProcView
	for i := range normal {
		if normal[i].Pid == pid {
			exp = &normal[i]
		}
	}
	if exp == nil || exp.Name != "explorer.exe" || exp.ImagePath != `C:\WINDOWS\explorer.exe` {
		t.Errorf("explorer view = %+v", exp)
	}
	if exp.ParentPid != SystemPid {
		t.Errorf("parent = %d", exp.ParentPid)
	}
}

func TestProcessModules(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("app.exe", `C:\app\app.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	mods, err := k.Modules(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 3 {
		t.Fatalf("default modules = %d, want exe+ntdll+kernel32", len(mods))
	}
	if mods[0].Path != `C:\app\app.exe` {
		t.Errorf("first module = %q", mods[0].Path)
	}
	if _, err := k.LoadModule(pid, `C:\WINDOWS\vanquish.dll`); err != nil {
		t.Fatal(err)
	}
	mods, err = k.Modules(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 4 || mods[3].Path != `C:\WINDOWS\vanquish.dll` {
		t.Errorf("after load: %+v", mods)
	}
	if mods[3].Base == mods[2].Base {
		t.Error("module bases should be distinct")
	}
}

func TestBlankModuleNameHidesPath(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("victim.exe", `C:\victim.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.LoadModule(pid, `C:\WINDOWS\vanquish.dll`); err != nil {
		t.Fatal(err)
	}
	entry, err := k.FindModuleEntry(pid, "vanquish.dll")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.BlankModuleName(entry); err != nil {
		t.Fatal(err)
	}
	mods, err := k.Modules(pid)
	if err != nil {
		t.Fatal(err)
	}
	// The entry is still on the list (same count) but its path reads empty.
	if len(mods) != 4 {
		t.Fatalf("module count changed: %d", len(mods))
	}
	blanked := 0
	for _, m := range mods {
		if m.Path == "" {
			blanked++
		}
	}
	if blanked != 1 {
		t.Errorf("blanked modules = %d, want 1", blanked)
	}
	if _, err := k.FindModuleEntry(pid, "vanquish.dll"); !errors.Is(err, ErrNoSuchModule) {
		t.Errorf("blanked module should no longer resolve by name: %v", err)
	}
}

func TestExitProcessRemovesFromBothViews(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("tmp.exe", `C:\tmp.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.ExitProcess(pid); err != nil {
		t.Fatal(err)
	}
	normal, err := k.Processes()
	if err != nil {
		t.Fatal(err)
	}
	advanced, err := k.ProcessesAdvanced()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range append(normal, advanced...) {
		if p.Pid == pid {
			t.Errorf("exited pid %d still visible", pid)
		}
	}
	if _, err := k.EprocessByPid(pid); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("EprocessByPid after exit = %v", err)
	}
	if err := k.ExitProcess(SystemPid); err == nil {
		t.Error("exiting System should be refused")
	}
}

// TestDKOMUnlinkHidesFromActiveListOnly is the FU rootkit scenario and
// the heart of the paper's §4: after unlinking an EPROCESS from the
// Active Process List, the normal walk misses it while the CID-table
// walk still reports it (the process owns a schedulable thread).
func TestDKOMUnlinkHidesFromActiveListOnly(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("hidden.exe", `C:\hidden.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateProcess("bystander.exe", `C:\b.exe`, SystemPid); err != nil {
		t.Fatal(err)
	}
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		t.Fatal(err)
	}
	// fu -ph <pid>
	if err := k.Mem.ListRemove(eproc + EprocActiveLinks); err != nil {
		t.Fatal(err)
	}
	normal, err := k.Processes()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range normal {
		if p.Pid == pid {
			t.Error("DKOM-unlinked process visible on Active Process List")
		}
	}
	if len(normal) != 2 {
		t.Errorf("bystanders disturbed: %v", names(normal))
	}
	advanced, err := k.ProcessesAdvanced()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range advanced {
		if p.Pid == pid && p.Name == "hidden.exe" {
			found = true
		}
	}
	if !found {
		t.Error("advanced mode must still see the DKOM-hidden process")
	}
	// The hidden process is still fully functional: it can spawn threads
	// and exit cleanly.
	if _, err := k.CreateThread(pid); err != nil {
		t.Errorf("hidden process cannot create threads: %v", err)
	}
	if err := k.ExitProcess(pid); err != nil {
		t.Errorf("hidden process cannot exit: %v", err)
	}
}

func TestDriversLoadUnload(t *testing.T) {
	k := mustKernel(t)
	if _, err := k.LoadDriver(`C:\WINDOWS\system32\drivers\tcpip.sys`); err != nil {
		t.Fatal(err)
	}
	if _, err := k.LoadDriver(`C:\WINDOWS\system32\hxdefdrv.sys`); err != nil {
		t.Fatal(err)
	}
	drv, err := k.Drivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(drv) != 2 {
		t.Fatalf("drivers = %+v", drv)
	}
	if err := k.UnloadDriver("hxdefdrv.sys"); err != nil {
		t.Fatal(err)
	}
	drv, err = k.Drivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(drv) != 1 || drv[0].Path != `C:\WINDOWS\system32\drivers\tcpip.sys` {
		t.Errorf("after unload: %+v", drv)
	}
	if err := k.UnloadDriver("nope.sys"); !errors.Is(err, ErrNoSuchModule) {
		t.Errorf("unload missing = %v", err)
	}
}

func TestPidByNameFindsHiddenProcesses(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("hxdef100.exe", `C:\hxdef\hxdef100.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Mem.ListRemove(eproc + EprocActiveLinks); err != nil {
		t.Fatal(err)
	}
	got, err := k.PidByName("HXDEF100.EXE")
	if err != nil {
		t.Fatal(err)
	}
	if got != pid {
		t.Errorf("PidByName = %d, want %d", got, pid)
	}
}

// TestDumpTraversalMatchesLive: the same walkers over a snapshot image
// must produce identical results — the basis of the crash-dump scan.
func TestDumpTraversalMatchesLive(t *testing.T) {
	k := mustKernel(t)
	for i := 0; i < 5; i++ {
		if _, err := k.CreateProcess("svc.exe", `C:\svc.exe`, SystemPid); err != nil {
			t.Fatal(err)
		}
	}
	live, err := k.Processes()
	if err != nil {
		t.Fatal(err)
	}
	img := kmem.NewImageReader(k.Mem.Snapshot())
	dumped, err := WalkActiveProcessList(img, k.Layout())
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != len(dumped) {
		t.Fatalf("live %d vs dump %d", len(live), len(dumped))
	}
	for i := range live {
		if live[i].Pid != dumped[i].Pid || live[i].Name != dumped[i].Name {
			t.Errorf("entry %d: live %+v dump %+v", i, live[i], dumped[i])
		}
	}
	liveAdv, err := k.ProcessesAdvanced()
	if err != nil {
		t.Fatal(err)
	}
	dumpAdv, err := WalkCidProcesses(img, k.Layout())
	if err != nil {
		t.Fatal(err)
	}
	if len(liveAdv) != len(dumpAdv) {
		t.Errorf("advanced: live %d vs dump %d", len(liveAdv), len(dumpAdv))
	}
}

// Property: for any sequence of creates and exits, the Active Process
// List view and the CID view agree exactly (absent DKOM).
func TestQuickViewsAgreeWithoutDKOM(t *testing.T) {
	f := func(ops []bool) bool {
		k, err := New()
		if err != nil {
			return false
		}
		var livePids []uint64
		for _, create := range ops {
			if create || len(livePids) == 0 {
				pid, err := k.CreateProcess("p.exe", `C:\p.exe`, SystemPid)
				if err != nil {
					return false
				}
				livePids = append(livePids, pid)
			} else {
				pid := livePids[0]
				livePids = livePids[1:]
				if err := k.ExitProcess(pid); err != nil {
					return false
				}
			}
		}
		normal, err := k.Processes()
		if err != nil {
			return false
		}
		advanced, err := k.ProcessesAdvanced()
		if err != nil {
			return false
		}
		if len(normal) != len(advanced) || len(normal) != len(livePids)+1 {
			return false
		}
		seen := map[uint64]bool{}
		for _, p := range normal {
			seen[p.Pid] = true
		}
		for _, p := range advanced {
			if !seen[p.Pid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestVadIsIndependentTruth: blanking the PEB module name must leave the
// VAD image list intact — the asymmetry hidden-module detection exploits.
func TestVadIsIndependentTruth(t *testing.T) {
	k := mustKernel(t)
	pid, err := k.CreateProcess("victim2.exe", `C:\victim2.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.LoadModule(pid, `C:\WINDOWS\vanquish.dll`); err != nil {
		t.Fatal(err)
	}
	entry, err := k.FindModuleEntry(pid, "vanquish.dll")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.BlankModuleName(entry); err != nil {
		t.Fatal(err)
	}
	truth, err := k.ModulesTruth(pid)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range truth {
		if m.Path == `C:\WINDOWS\vanquish.dll` {
			found = true
		}
	}
	if !found {
		t.Error("VAD truth lost the blanked module")
	}
	// And the two views now disagree by exactly one named path.
	peb, err := k.Modules(pid)
	if err != nil {
		t.Fatal(err)
	}
	pebNames := map[string]bool{}
	for _, m := range peb {
		if m.Path != "" {
			pebNames[m.Path] = true
		}
	}
	missing := 0
	for _, m := range truth {
		if !pebNames[m.Path] {
			missing++
		}
	}
	if missing != 1 {
		t.Errorf("views differ by %d paths, want 1", missing)
	}
}

func TestErrorPaths(t *testing.T) {
	k := mustKernel(t)
	if _, err := k.CreateThread(99999); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("CreateThread on missing pid = %v", err)
	}
	if _, err := k.LoadModule(99999, `C:\x.dll`); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("LoadModule on missing pid = %v", err)
	}
	if err := k.ExitProcess(99999); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("ExitProcess on missing pid = %v", err)
	}
	if _, err := k.Modules(99999); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("Modules on missing pid = %v", err)
	}
	if _, err := k.ModulesTruth(99999); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("ModulesTruth on missing pid = %v", err)
	}
	if _, err := k.PidByName("ghost.exe"); !errors.Is(err, ErrNoSuchProcess) {
		t.Errorf("PidByName miss = %v", err)
	}
	if _, err := k.FindModuleEntry(SystemPid, "none.dll"); !errors.Is(err, ErrNoSuchModule) {
		t.Errorf("FindModuleEntry miss = %v", err)
	}
}

func TestUnloadDriverByFullPath(t *testing.T) {
	k := mustKernel(t)
	if _, err := k.LoadDriver(`C:\drivers\exact.sys`); err != nil {
		t.Fatal(err)
	}
	if err := k.UnloadDriver(`C:\drivers\exact.sys`); err != nil {
		t.Errorf("unload by full path: %v", err)
	}
}

func TestExitedProcessStaysReadableInMemory(t *testing.T) {
	// Kernel pool residue: the EPROCESS memory survives exit, so a
	// forensic walker could still decode it by address.
	k := mustKernel(t)
	pid, err := k.CreateProcess("gone.exe", `C:\gone.exe`, SystemPid)
	if err != nil {
		t.Fatal(err)
	}
	eproc, err := k.EprocessByPid(pid)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.ExitProcess(pid); err != nil {
		t.Fatal(err)
	}
	name, err := k.Mem.ReadCString(eproc+EprocImageName, 32)
	if err != nil || name != "gone.exe" {
		t.Errorf("residue name = %q err %v", name, err)
	}
	flags, err := k.Mem.ReadU64(eproc + EprocFlags)
	if err != nil || flags&1 == 0 {
		t.Errorf("exited flag not set: %#x err %v", flags, err)
	}
}
